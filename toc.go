// Package toc is the public facade of the tuple-oriented compression
// library, a Go implementation of "Tuple-oriented Compression for
// Large-scale Mini-batch Stochastic Gradient Descent" (Li et al., SIGMOD
// 2019).
//
// TOC losslessly compresses mini-batches (small dense matrices) through
// three layers — sparse encoding, LZW-style prefix-tree logical encoding,
// and bit-packed/value-indexed physical encoding — while preserving tuple
// boundaries, so the matrix operations mini-batch gradient descent needs
// (A·v, v·A, A·M, M·A, sparse-safe element-wise ops) execute directly on
// the compressed representation with no decompression step.
//
// Quick start:
//
//	m := toc.NewDense(2, 3)
//	m.Set(0, 0, 1.5)
//	batch := toc.Compress(m)
//	r := batch.MulVec([]float64{1, 2, 3}) // runs on the compressed form
//
// The package also exposes the paper's evaluation stack: the seven
// compared encodings behind one interface (Encode), the four ML models
// with an MGD training driver (NewModel, Train), synthetic stand-ins for
// the six evaluation datasets (GenerateDataset), and a memory-budgeted
// batch store that reproduces the out-of-core regime (NewStore).
package toc

import (
	"io"
	"time"

	"toc/internal/checkpoint"
	"toc/internal/core"
	"toc/internal/data"
	"toc/internal/dist"
	"toc/internal/engine"
	"toc/internal/faultpoint"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
	"toc/internal/storage"
)

// Dense is a row-major dense matrix, the uncompressed mini-batch form.
type Dense = matrix.Dense

// NewDense allocates a rows × cols zero matrix.
func NewDense(rows, cols int) *Dense { return matrix.NewDense(rows, cols) }

// NewDenseFromRows builds a matrix from per-row slices, copying them.
func NewDenseFromRows(rows [][]float64) *Dense { return matrix.NewDenseFromRows(rows) }

// Batch is a TOC-compressed mini-batch (the paper's contribution).
type Batch = core.Batch

// Pair is a column-index:value pair, TOC's compression unit.
type Pair = core.Pair

// Variant selects TOC encoding layers (Full, SparseLogical, SparseOnly).
type Variant = core.Variant

// TOC encoding-layer variants, used by the paper's ablation studies.
const (
	Full          = core.Full
	SparseLogical = core.SparseLogical
	SparseOnly    = core.SparseOnly
)

// Compress encodes a dense mini-batch with the full TOC pipeline.
func Compress(m *Dense) *Batch { return core.Compress(m) }

// CompressVariant encodes with a subset of the TOC layers.
func CompressVariant(m *Dense, v Variant) *Batch { return core.CompressVariant(m, v) }

// Deserialize reconstructs a TOC batch from its Serialize image.
func Deserialize(img []byte) (*Batch, error) { return core.Deserialize(img) }

// CompressedMatrix is the interface every mini-batch encoding implements:
// TOC, the light-weight schemes (CSR, CVI, DVI, CLA) and the general
// schemes (Gzip, Snappy).
type CompressedMatrix = formats.CompressedMatrix

// ParallelOps is the optional interface of encodings whose multiplication
// kernels shard across goroutines — the right multiplications A·v and A·M
// over result rows and columns, the left multiplications v·A and M·A over
// accumulators — and whose per-batch KernelPlan amortizes decode state
// across a step's kernel calls. Every parallel kernel returns results
// bitwise identical to its sequential counterpart for any worker count,
// so switching worker counts never changes a training trajectory. TOC
// (and *Batch) implements it.
type ParallelOps = formats.ParallelOps

// KernelPlan caches one mini-batch's decode state (TOC's decode tree C')
// so the 2-3 kernel calls a gradient step makes on that batch share a
// single O(|I|+|D|) build instead of paying it per operation. Obtain one
// from ParallelOps.NewKernelPlan (or *Batch.NewKernelPlan); plans are
// safe for concurrent use, and every plan call is bitwise identical to
// the corresponding per-op kernel. The ml layer threads one plan through
// each Grad automatically — DecodeTreeBuilds is the white-box counter
// proving it.
type KernelPlan = formats.KernelPlan

// DecodeTreeBuilds returns the cumulative number of decode-tree (C')
// builds in this process. With plan reuse, training builds the tree once
// per (batch, gradient step) rather than once per multiplication; this
// counter makes the amortization observable (cmd/toctrain prints it).
func DecodeTreeBuilds() uint64 { return core.TreeBuilds() }

// Codec pairs a scheme's encoder with its wire decoder.
type Codec = formats.Codec

// Methods lists every registered encoding method name.
func Methods() []string { return formats.Names() }

// PaperMethods lists the paper's compared methods in figure order.
func PaperMethods() []string { return formats.PaperMethods() }

// Encode compresses a mini-batch with the named method ("TOC", "CSR",
// "CVI", "DVI", "CLA", "DEN", "Gzip", "Snappy", or a TOC ablation
// variant). It panics on unknown names; use GetCodec to probe.
func Encode(method string, m *Dense) CompressedMatrix {
	return formats.MustGet(method)(m)
}

// GetCodec returns the codec registered under name.
func GetCodec(name string) (Codec, bool) { return formats.GetCodec(name) }

// Dataset is a generated dataset with features, labels and label arity.
type Dataset = data.Dataset

// DatasetNames lists the six paper evaluation dataset names.
func DatasetNames() []string { return data.Names() }

// GenerateDataset builds a synthetic stand-in for one of the paper's
// datasets ("census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b").
func GenerateDataset(name string, rows int, seed int64) (*Dataset, error) {
	return data.Generate(name, rows, seed)
}

// Model is an empirical-risk model trained by mini-batch SGD.
type Model = ml.Model

// BatchSource supplies compressed mini-batches to the training driver.
type BatchSource = ml.BatchSource

// TrainResult records per-epoch losses and timings of a training run.
type TrainResult = ml.TrainResult

// NewModel constructs a model by name: "linreg", "lr", "svm" or "nn".
// LR and SVM become one-vs-rest ensembles when classes > 2.
func NewModel(name string, dims, classes int, hiddenScale float64, seed int64) (Model, error) {
	return ml.NewModel(name, dims, classes, hiddenScale, seed)
}

// NewMemorySource slices a dataset into mini-batches encoded with method.
func NewMemorySource(d *Dataset, batchSize int, method string) *ml.MemorySource {
	return ml.NewMemorySource(d, batchSize, formats.MustGet(method))
}

// Train runs mini-batch gradient descent (Equation 2 of the paper) for the
// given epochs over a batch source. cb may be nil.
func Train(m Model, src BatchSource, epochs int, lr float64, cb ml.EpochCallback) *TrainResult {
	return ml.Train(m, src, epochs, lr, cb)
}

// EvaluateError returns a model's error rate over a batch source.
func EvaluateError(m Model, src BatchSource) float64 { return ml.EvaluateError(m, src) }

// GradModel is a Model whose gradient computation and parameter update
// are separable, which is what data-parallel training needs. Every model
// NewModel returns implements it.
type GradModel = ml.GradModel

// KernelParallel is a Model whose compressed-kernel calls (the Table 1
// multiplications) can use multiple goroutines per gradient; every model
// NewModel returns implements it. The engine sets it automatically from
// its worker pool; serial callers may set it directly (for example
// model.(toc.KernelParallel).SetKernelWorkers(8)) to parallelize the
// kernels inside ml.Train, Loss and Predict without changing any result.
type KernelParallel = ml.KernelParallel

// Engine is the concurrent mini-batch training engine: it shards
// compression across a worker pool, runs data-parallel MGD with
// deterministic batch-order gradient merging (the trajectory is identical
// for any worker count), routes workers left over after the group's slots
// into the parallel kernels inside each gradient, and keeps the spill
// prefetcher aimed at the upcoming batches — including across shuffled
// epoch boundaries.
type Engine = engine.Engine

// EngineConfig sizes the engine: Workers, GroupSize, Seed, Shuffle.
type EngineConfig = engine.Config

// NewEngine builds a concurrent training engine.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// TrainParallel runs data-parallel MGD across workers goroutines: each
// step's mini-batch gradients are computed concurrently against frozen
// parameters and merged deterministically before one update. Models that
// cannot split gradient from update fall back to the serial Train.
func TrainParallel(m Model, src BatchSource, epochs int, lr float64, workers int, cb ml.EpochCallback) *TrainResult {
	gm, ok := m.(ml.GradModel)
	if !ok {
		return ml.Train(m, src, epochs, lr, cb)
	}
	return engine.New(engine.Config{Workers: workers}).Train(gm, src, epochs, lr, cb)
}

// SnapshotModel is a GradModel whose flat parameter vector can be
// exported (Params), restored (SetParams) and cloned — what asynchronous
// training needs so workers read stable parameter views while the
// updater writes. Every model NewModel returns implements it.
type SnapshotModel = ml.SnapshotModel

// AsyncEngine is the asynchronous bounded-staleness training engine, the
// alternative to Engine's synchronous group steps: workers pull batches
// from a shared queue and compute gradients on private clones refreshed
// from versioned parameter snapshots, and a single updater applies the
// results in visit order, admitting each gradient only if its snapshot
// missed at most Staleness updates. Staleness 0 reproduces the
// synchronous GroupSize-1 trajectory bitwise for any worker count;
// StalenessUnbounded free-runs Hogwild-style, so one slow batch never
// stalls another worker's compute.
type AsyncEngine = engine.Async

// AsyncConfig sizes the async engine: Workers, Staleness, Seed, Shuffle.
type AsyncConfig = engine.AsyncConfig

// AsyncStats reports an async run's applied updates, staleness-rejected
// gradients, and the max/mean staleness among applied gradients.
type AsyncStats = engine.AsyncStats

// StalenessUnbounded disables the async engine's staleness bound
// (Hogwild-style free-running).
const StalenessUnbounded = engine.StalenessUnbounded

// ElasticEvent is one membership change in an elastic schedule: after
// Step applied updates, add (Delta > 0) or remove (Delta < 0) workers.
// Feed a slice of them to AsyncEngine.ElasticHook, or call
// AsyncEngine.AddWorkers / RemoveWorkers directly from any goroutine.
type ElasticEvent = engine.ElasticEvent

// ParseElasticSchedule parses the "200:+4,500:-2" grammar used by
// toctrain's -elastic flag into a step-sorted schedule.
func ParseElasticSchedule(spec string) ([]ElasticEvent, error) {
	return engine.ParseElasticSchedule(spec)
}

// NewAsyncEngine builds an asynchronous bounded-staleness engine.
func NewAsyncEngine(cfg AsyncConfig) *AsyncEngine { return engine.NewAsync(cfg) }

// TrainAsync runs asynchronous bounded-staleness MGD: each mini-batch
// gradient is one parameter update, applied in visit order under the
// staleness discipline. It returns an error (with the pool fully
// drained) if a worker fails mid-epoch. cb may be nil.
func TrainAsync(m Model, src BatchSource, epochs int, lr float64, workers, staleness int, cb ml.EpochCallback) (*TrainResult, error) {
	sm, ok := m.(ml.SnapshotModel)
	if !ok {
		return ml.Train(m, src, epochs, lr, cb), nil
	}
	return engine.NewAsync(engine.AsyncConfig{Workers: workers, Staleness: staleness}).Train(sm, src, epochs, lr, cb)
}

// Store is a memory-budgeted mini-batch store: batches beyond the budget
// spill to disk and are re-read every epoch, reproducing the paper's
// out-of-core training regime. The spill side is sharded across N files
// (optionally N directories, modeling N devices), its residency is a
// pluggable eviction policy, and its simulated disk supports two
// bandwidth models — see the StoreOption constructors.
type Store = storage.Store

// StoreOption configures a Store at construction (shard count, shard
// directories, bandwidth model, eviction policy, ...).
type StoreOption = storage.Option

// BandwidthModel selects how the store's simulated read bandwidth is
// enforced: PerRequest (each read throttled independently; aggregate
// throughput scales with queue depth, like cloud block stores) or
// SharedBucket (one token bucket per device caps aggregate throughput at
// the configured rate, like a spindle behind a fixed bus).
type BandwidthModel = storage.BandwidthModel

// The two simulated-disk bandwidth models.
const (
	PerRequest   = storage.PerRequest
	SharedBucket = storage.SharedBucket
)

// ParseBandwidthModel resolves a flag value ("per-request", "shared-bucket",
// ...) to a BandwidthModel.
func ParseBandwidthModel(name string) (BandwidthModel, error) {
	return storage.ParseBandwidthModel(name)
}

// EvictionPolicy decides which batches stay resident when the store's
// memory budget overflows during ingest; see FirstFitPolicy,
// LargestFirstPolicy and AccessOrderPolicy.
type EvictionPolicy = storage.EvictionPolicy

// FirstFitPolicy admits batches in arrival order until the budget is
// exhausted and never evicts — the historical residency behavior.
func FirstFitPolicy() EvictionPolicy { return storage.FirstFit() }

// LargestFirstPolicy keeps the smallest compressed batches resident,
// minimizing the number of spilled reads per epoch (the dominant cost on
// seek-bound devices).
func LargestFirstPolicy() EvictionPolicy { return storage.LargestFirst() }

// AccessOrderPolicy is the Belady-style policy: batches visited earliest
// in the announced epoch order (Store.SetUpcomingOrder; the engine's
// FillStore announces it automatically) stay resident.
func AccessOrderPolicy() EvictionPolicy { return storage.AccessOrder() }

// NewEvictionPolicy resolves a flag value ("first-fit", "largest-first",
// "access-order") to a fresh policy.
func NewEvictionPolicy(name string) (EvictionPolicy, error) {
	return storage.NewEvictionPolicy(name)
}

// WithShards spreads the store's spill across n files; placement balances
// bytes and the prefetcher reads distinct shards concurrently.
func WithShards(n int) StoreOption { return storage.WithShards(n) }

// WithShardDirs places spill shards round-robin across directories,
// modeling distinct devices (each gets its own SharedBucket budget).
func WithShardDirs(dirs ...string) StoreOption { return storage.WithShardDirs(dirs...) }

// WithBandwidthModel selects PerRequest (default) or SharedBucket.
func WithBandwidthModel(m BandwidthModel) StoreOption { return storage.WithBandwidthModel(m) }

// WithReadBandwidth sets the simulated read bandwidth (bytes/second) at
// construction; 0 leaves reads unthrottled.
func WithReadBandwidth(bytesPerSec int64) StoreOption {
	return storage.WithReadBandwidth(bytesPerSec)
}

// WithAccessLatency adds a fixed per-request latency to every spilled
// read (a spindle's seek, a cloud store's request overhead).
func WithAccessLatency(d time.Duration) StoreOption { return storage.WithAccessLatency(d) }

// WithEviction selects the store's residency policy (default first-fit).
func WithEviction(p EvictionPolicy) StoreOption { return storage.WithEviction(p) }

// RetryPolicy bounds how a Store retries transient spilled-read
// failures: Attempts tries total, exponential backoff from Base capped
// at Max, with deterministic Seed-driven jitter.
type RetryPolicy = storage.RetryPolicy

// DefaultRetryPolicy is the retry discipline stores use out of the box.
func DefaultRetryPolicy() RetryPolicy { return storage.DefaultRetryPolicy() }

// WithReadRetry overrides the store's spilled-read retry policy.
func WithReadRetry(p RetryPolicy) StoreOption { return storage.WithReadRetry(p) }

// ReadError is the typed permanent-read failure a Store surfaces after
// its retry budget is spent; the final cause is in its chain.
type ReadError = storage.ReadError

// NewStore creates a store holding batches encoded with method under a
// resident-bytes budget; dir "" uses the OS temp dir. Options configure
// spill sharding, the disk model and the eviction policy.
func NewStore(dir, method string, budgetBytes int64, opts ...StoreOption) (*Store, error) {
	return storage.NewStore(dir, method, budgetBytes, opts...)
}

// Prefetcher reads spilled batches ahead of the training loop so their IO
// and wire decoding overlap compute instead of sitting on the critical
// path. It is a BatchSource; the engine feeds it each epoch's visit order.
// Its reader pool is split across the store's spill shards, so sharded
// stores serve truly concurrent reads.
type Prefetcher = storage.Prefetcher

// PrefetchStats reports prefetch hits, misses, issued reads and residual
// stall time.
type PrefetchStats = storage.PrefetchStats

// PrefetchOption configures a Prefetcher at construction.
type PrefetchOption = storage.PrefetchOption

// WithPrefetchBytes bounds the compressed bytes held prefetched or in
// flight, so a deep window on large batches cannot outgrow the memory
// budget the store is protecting. 0 (the default) disables the bound.
func WithPrefetchBytes(maxBytes int64) PrefetchOption {
	return storage.WithPrefetchBytes(maxBytes)
}

// NewPrefetcher wraps a fully-loaded store with an async spill prefetcher
// holding up to depth upcoming batches, served by readers background
// goroutines split across the store's spill shards (readers <= 0 picks a
// small default; every shard gets at least one). Engine.NewPrefetcher
// sizes one automatically from the worker pool and shard layout.
func NewPrefetcher(s *Store, depth, readers int, opts ...PrefetchOption) *Prefetcher {
	return storage.NewPrefetcher(s, depth, readers, opts...)
}

// ---- Fault tolerance: checkpoint/resume and crash-safe spill recovery ----

// CheckpointState is one versioned, CRC-guarded training snapshot: model
// parameters, optimizer schedule position, epoch permutation cursor and
// (async) update clock plus staleness frontier. A run resumed from it
// reproduces the uninterrupted run's trajectory bitwise for every
// deterministic configuration (sync engine, async staleness 0, async
// Deterministic mode).
type CheckpointState = checkpoint.State

// CheckpointWriter persists snapshots into a directory — atomically
// (temp file, fsync, rename) and off the training hot path on a
// background goroutine that coalesces bursts.
type CheckpointWriter = checkpoint.Writer

// NewCheckpointWriter opens (creating if needed) a checkpoint directory.
// Hand the writer to EngineConfig.Checkpoint or AsyncConfig.Checkpoint.
func NewCheckpointWriter(dir string) (*CheckpointWriter, error) { return checkpoint.NewWriter(dir) }

// LatestCheckpoint loads the newest checkpoint in dir. A corrupt newest
// checkpoint is an error — never a silent fallback to an older one. When
// dir holds no checkpoints the error wraps os.ErrNotExist.
func LatestCheckpoint(dir string) (*CheckpointState, error) { return checkpoint.Latest(dir) }

// LoadCheckpoint loads one checkpoint file, verifying its CRC.
func LoadCheckpoint(path string) (*CheckpointState, error) { return checkpoint.Load(path) }

// ErrHalted is returned by the engines' TrainFrom when Halt stopped the
// run after writing a final checkpoint.
var ErrHalted = engine.ErrHalted

// OpenStore recovers a spill store from the manifest WriteManifest
// wrote: shard files are reopened read-only, every spilled span is
// CRC-verified, and resident batches are decoded back into memory — no
// re-ingest. Truncated or bit-flipped shard files fail loudly here.
func OpenStore(manifestPath string, opts ...StoreOption) (*Store, error) {
	return storage.OpenStore(manifestPath, opts...)
}

// ArmFaultpoints arms the fault-injection registry from a spec like
// "checkpoint.rename=crash:2,storage.spill.mid=delay:5ms" — the test
// hook behind the crash-matrix suite, also reachable via the
// TOC_FAULTPOINTS environment variable. No-op cost when disarmed.
func ArmFaultpoints(spec string) error { return faultpoint.ArmSpec(spec) }

// ---- Distributed data-parallel training over net/rpc ----

// DistServer is the parameter server of a distributed run: it owns the
// model and the update clock, releases schedule positions to trainers
// under the async engine's staleness gate (carried over the wire), and
// applies pushed gradients strictly in position order. A trainer that
// vanishes without a clean goodbye is a crash; its in-flight positions
// are requeued to the survivors. One trainer with the dense codec at
// staleness 0 walks the local async engine's trajectory bitwise.
type DistServer = dist.Server

// DistServerConfig sizes a parameter-server run: schedule (Epochs,
// NumBatches, Seed, Shuffle), learning rate, staleness bound, gradient
// codec, simulated link, and checkpoint/resume.
type DistServerConfig = dist.ServerConfig

// DistServerStats counts a distributed run: applied/rejected/duplicate
// pushes, staleness, membership (joins, crashes, reassigned positions),
// and bytes-on-wire against the dense baseline (WireRatio).
type DistServerStats = dist.ServerStats

// DistTrainer is one worker process of a distributed run: it joins a
// DistServer over any io.ReadWriteCloser, pulls compressed parameter
// images, and pushes compressed gradients for the positions it is
// assigned.
type DistTrainer = dist.Trainer

// DistTrainerConfig configures a trainer's codec (must match the
// server's) and its pull policy.
type DistTrainerConfig = dist.TrainerConfig

// DistTrainerStats counts one trainer's steps, recomputes, pulls and
// payload bytes.
type DistTrainerStats = dist.TrainerStats

// GradCodec compresses the two directions of parameter-server traffic:
// dense (exact baseline), top-k sparsification with error-feedback
// residuals, or error-compensated stochastic quantization.
type GradCodec = dist.GradCodec

// DistLink is a simulated network link: payloads in each direction
// drain through a token bucket at the configured bandwidth, so bytes
// saved by a codec become wall-clock saved, measurably.
type DistLink = dist.Link

// ParseGradCodec resolves a codec spec — "dense", "topk:<ratio>"
// (fraction of coordinates kept, e.g. topk:0.01) or "dsq:<bits>" (2–8
// bit quantization). seed drives dsq's stochastic rounding stream.
func ParseGradCodec(spec string, seed int64) (GradCodec, error) { return dist.ParseCodec(spec, seed) }

// NewDistServer builds a parameter server around m; read the final
// parameters from m after Wait returns.
func NewDistServer(cfg DistServerConfig, m SnapshotModel) (*DistServer, error) {
	return dist.NewServer(cfg, m)
}

// NewDistTrainer wraps a connection to a DistServer. The model must
// have the server model's parameter count and src the schedule's batch
// count.
func NewDistTrainer(conn io.ReadWriteCloser, m SnapshotModel, src BatchSource, cfg DistTrainerConfig) *DistTrainer {
	return dist.NewTrainer(conn, m, src, cfg)
}

// NewDistLinkMbps builds a symmetric simulated link of the given
// megabits per second; mbps <= 0 returns nil (unmetered).
func NewDistLinkMbps(mbps float64) *DistLink { return dist.NewLinkMbps(mbps) }
