package toc

// One benchmark per paper table and figure (deliverable d): each wraps the
// corresponding internal/bench experiment runner, so `go test -bench=.`
// regenerates every artifact. cmd/tocbench prints the same tables with
// full control over scale; EXPERIMENTS.md records paper-vs-measured.
//
// Micro-benchmarks for the core TOC pipeline (compress, decompress, the
// four multiplication kernels vs CSR/DEN) follow the experiment wrappers.

import (
	"math/rand"
	"testing"

	"toc/internal/bench"
	"toc/internal/bitpack"
	"toc/internal/formats"
	"toc/internal/matrix"
)

// runExperiment executes a paper artifact reproduction b.N times.
func runExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := bench.DefaultConfig()
	cfg.Scale = scale
	cfg.Dir = b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MGDConvergence(b *testing.B)    { runExperiment(b, "fig2", 0.5) }
func BenchmarkFig5CompressionRatios(b *testing.B) { runExperiment(b, "fig5", 1) }
func BenchmarkFig6Ablation(b *testing.B)          { runExperiment(b, "fig6", 1) }
func BenchmarkFig7LargeBatches(b *testing.B)      { runExperiment(b, "fig7", 0.5) }
func BenchmarkFig8MatOps(b *testing.B)            { runExperiment(b, "fig8", 1) }
func BenchmarkFig9RuntimeVsSize(b *testing.B)     { runExperiment(b, "fig9", 0.25) }
func BenchmarkFig10MGDAblation(b *testing.B)      { runExperiment(b, "fig10", 0.25) }
func BenchmarkFig11AccuracyVsTime(b *testing.B)   { runExperiment(b, "fig11", 0.25) }
func BenchmarkFig12CodecSpeed(b *testing.B)       { runExperiment(b, "fig12", 1) }
func BenchmarkTable6EndToEnd(b *testing.B)        { runExperiment(b, "table6", 0.25) }
func BenchmarkTable7EndToEnd(b *testing.B)        { runExperiment(b, "table7", 0.25) }
func BenchmarkScalingEngine(b *testing.B)         { runExperiment(b, "scaling", 0.25) }
func BenchmarkSpillShardScaling(b *testing.B)     { runExperiment(b, "spillscale", 0.25) }
func BenchmarkRightMulScaling(b *testing.B)       { runExperiment(b, "rightmul", 0.25) }
func BenchmarkAsyncScaling(b *testing.B)          { runExperiment(b, "asyncscale", 0.25) }
func BenchmarkNetScaling(b *testing.B)            { runExperiment(b, "netscale", 0.25) }

// --- micro-benchmarks on a census-like 250-row mini-batch ---

func benchBatch(b *testing.B) *matrix.Dense {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	d := matrix.NewDense(250, 68)
	pool := []float64{0.25, 0.5, 1, 2, 3}
	templates := make([][]float64, 4)
	for t := range templates {
		row := make([]float64, 68)
		for j := range row {
			if rng.Float64() < 0.43 {
				row[j] = pool[rng.Intn(len(pool))]
			}
		}
		templates[t] = row
	}
	for i := 0; i < 250; i++ {
		copy(d.Row(i), templates[rng.Intn(len(templates))])
	}
	return d
}

func BenchmarkTOCCompress(b *testing.B) {
	m := benchBatch(b)
	b.SetBytes(int64(m.SerializedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(m)
	}
}

func BenchmarkTOCDecode(b *testing.B) {
	c := Compress(benchBatch(b))
	b.SetBytes(int64(c.UncompressedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode()
	}
}

func benchKernels(b *testing.B, method string) {
	m := benchBatch(b)
	c := formats.MustGet(method)(m)
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, m.Cols())
	u := make([]float64, m.Rows())
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	mr := matrix.NewDense(m.Cols(), 20)
	ml := matrix.NewDense(20, m.Rows())
	b.Run("MulVec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulVec(v)
		}
	})
	b.Run("VecMul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.VecMul(u)
		}
	})
	b.Run("MulMat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulMat(mr)
		}
	})
	b.Run("MatMul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MatMul(ml)
		}
	})
	b.Run("Scale", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Scale(1.01)
		}
	})
}

func BenchmarkKernelsTOC(b *testing.B) { benchKernels(b, "TOC") }
func BenchmarkKernelsCSR(b *testing.B) { benchKernels(b, "CSR") }
func BenchmarkKernelsDEN(b *testing.B) { benchKernels(b, "DEN") }
func BenchmarkKernelsCLA(b *testing.B) { benchKernels(b, "CLA") }

// BenchmarkParallelMulMat measures the DESIGN §7 parallel right-mul
// extension against the sequential kernel on a 250-row batch.
func BenchmarkParallelMulMat(b *testing.B) {
	m := benchBatch(b)
	c := Compress(m)
	w := matrix.NewDense(m.Cols(), 20)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulMat(w)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulMatParallel(w, 0)
		}
	})
}

// BenchmarkParallelLeftMul measures the accumulator-sharded left-mul
// kernels against their sequential counterparts on a 250-row batch; the
// results are bitwise identical by contract.
func BenchmarkParallelLeftMul(b *testing.B) {
	m := benchBatch(b)
	c := Compress(m)
	rng := rand.New(rand.NewSource(3))
	u := make([]float64, m.Rows())
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	w := matrix.NewDense(20, m.Rows())
	for i := 0; i < w.Rows(); i++ {
		for j := 0; j < w.Cols(); j++ {
			w.Set(i, j, rng.NormFloat64())
		}
	}
	b.Run("VecMul-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.VecMul(u)
		}
	})
	b.Run("VecMul-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.VecMulParallel(u, 0)
		}
	})
	b.Run("MatMul-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MatMul(w)
		}
	})
	b.Run("MatMul-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MatMulParallel(w, 0)
		}
	})
}

// BenchmarkVarintVsBitpack is the §3.2 "future work" ablation: varint
// against fixed-width bit packing on TOC-shaped index arrays.
func BenchmarkVarintVsBitpack(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	// Node-index-like distribution: mostly small values, occasional large.
	vals := make([]uint32, 10000)
	for i := range vals {
		if rng.Intn(20) == 0 {
			vals[i] = uint32(rng.Intn(1 << 18))
		} else {
			vals[i] = uint32(rng.Intn(300))
		}
	}
	b.Run("bitpack", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = bitpack.Pack(vals).EncodedSize()
		}
		b.ReportMetric(float64(size), "bytes")
	})
	b.Run("varint", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(bitpack.PackVarint(vals))
		}
		b.ReportMetric(float64(size), "bytes")
	})
}
