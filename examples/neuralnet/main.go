// Feed-forward neural network on the mnist-like multiclass dataset,
// trained over TOC-compressed mini-batches. The input layer touches the
// compressed batch through A·M (forward) and M·A (input-weight gradient)
// only — the paper's Table 1 usage for neural networks.
package main

import (
	"fmt"
	"log"

	"toc"
)

func main() {
	train, err := toc.GenerateDataset("mnist", 2400, 3)
	if err != nil {
		log.Fatal(err)
	}
	train.ShuffleOnce(4)
	test, err := toc.GenerateDataset("mnist", 600, 5)
	if err != nil {
		log.Fatal(err)
	}

	src := toc.NewMemorySource(train, 250, "TOC")
	testSrc := toc.NewMemorySource(test, 250, "TOC")

	// hiddenScale 0.25 gives hidden layers of 50 and 12 neurons (the paper
	// uses 200 and 50; scale 1.0 reproduces that).
	model, err := toc.NewModel("nn", train.X.Cols(), train.Classes, 0.25, 9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mnist-like: %d train rows, %d classes, TOC footprint %d bytes\n\n",
		train.X.Rows(), train.Classes, src.CompressedBytes())
	fmt.Println("epoch  loss      train_err  test_err")
	for e := 1; e <= 8; e++ {
		res := toc.Train(model, src, 1, 0.6, nil)
		fmt.Printf("%5d  %.6f  %.3f      %.3f\n",
			e, res.EpochLoss[0],
			toc.EvaluateError(model, src),
			toc.EvaluateError(model, testSrc))
	}
}
