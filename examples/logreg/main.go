// Logistic regression on census-like data with compressed mini-batches:
// the paper's core workload. Trains the same model with TOC, CSR and
// Gzip encodings and shows that the learned weights are identical while
// footprints and runtimes differ.
package main

import (
	"fmt"
	"log"

	"toc"
)

func main() {
	d, err := toc.GenerateDataset("census", 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	d.ShuffleOnce(2) // the paper's shuffle-once policy (§2.1.3)

	const (
		batchSize = 250
		epochs    = 5
		lr        = 0.5
	)
	fmt.Printf("census-like: %d rows x %d cols, sparsity %.2f, batch=%d\n\n",
		d.X.Rows(), d.X.Cols(), d.Sparsity(), batchSize)

	var refLoss float64
	for _, method := range []string{"TOC", "CSR", "Gzip"} {
		src := toc.NewMemorySource(d, batchSize, method)
		model, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 7)
		if err != nil {
			log.Fatal(err)
		}
		res := toc.Train(model, src, epochs, lr, nil)
		finalLoss := res.EpochLoss[len(res.EpochLoss)-1]
		errRate := toc.EvaluateError(model, src)
		fmt.Printf("%-6s footprint %8d bytes  train %8.1fms  loss %.6f  err %.3f\n",
			method, src.CompressedBytes(),
			res.Total.Seconds()*1e3, finalLoss, errRate)
		if method == "TOC" {
			refLoss = finalLoss
		} else if diff := finalLoss - refLoss; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("%s training diverged from TOC: %v vs %v", method, finalLoss, refLoss)
		}
	}
	fmt.Println("\nall encodings reach identical losses: the compressed kernels are exact.")
}
