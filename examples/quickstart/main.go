// Quickstart: compress the paper's Figure 3 running example, run every
// class of matrix operation directly on the compressed mini-batch, and
// verify the results against dense execution.
package main

import (
	"fmt"
	"log"

	"toc"
)

func main() {
	// The original table A of the paper's Figure 3.
	a := toc.NewDenseFromRows([][]float64{
		{1.1, 2, 3, 1.4},
		{1.1, 2, 3, 0},
		{0, 1.1, 3, 1.4},
		{1.1, 2, 0, 0},
	})

	batch := toc.Compress(a)
	fmt.Printf("compressed %dx%d mini-batch: %d -> %d bytes (%.2fx)\n",
		batch.Rows(), batch.Cols(),
		batch.UncompressedSize(), batch.CompressedSize(), batch.CompressionRatio())
	fmt.Printf("first layer |I| = %d pairs, encoded table has %d codes\n",
		batch.NumFirstLayer(), batch.NumCodes())

	// Right multiplication A·v (Algorithm 4) — no decompression.
	v := []float64{1, -1, 0.5, 2}
	fmt.Printf("A·v  = %v\n", batch.MulVec(v))

	// Left multiplication v·A (Algorithm 5).
	u := []float64{1, 0, -1, 2}
	fmt.Printf("v·A  = %v\n", batch.VecMul(u))

	// Sparse-safe element-wise A.*c (Algorithm 3): touches only the
	// unique values, O(|I|).
	scaled := batch.Scale(10)
	fmt.Printf("A.*10 row 0 = %v\n", scaled.Decode().Row(0))

	// Sparse-unsafe A.+c (Algorithm 6): requires full decoding.
	plus := batch.AddScalar(1)
	fmt.Printf("A.+1 row 3 = %v\n", plus.Row(3))

	// Lossless round trip through the wire format.
	img := batch.Serialize()
	back, err := toc.Deserialize(img)
	if err != nil {
		log.Fatal(err)
	}
	if !back.Decode().Equal(a) {
		log.Fatal("round trip mismatch")
	}
	fmt.Printf("serialize -> deserialize -> decode: lossless (%d wire bytes)\n", len(img))

	// The same data under every registered encoding scheme.
	fmt.Println("\nmethod sizes on this tiny batch:")
	for _, m := range toc.PaperMethods() {
		c := toc.Encode(m, a)
		fmt.Printf("  %-7s %4d bytes\n", m, c.CompressedSize())
	}
}
