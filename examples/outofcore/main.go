// Out-of-core training: the Figure 1D story. A fixed memory budget holds
// all of the TOC-encoded dataset but only part of the DEN/CSR encodings;
// spilled batches are re-read from disk every epoch, so the encodings
// that do not fit pay IO on every pass. TOC trains fastest because its
// data alone stays resident AND its kernels need no decompression.
package main

import (
	"fmt"
	"log"

	"toc"
)

func main() {
	d, err := toc.GenerateDataset("imagenet", 3000, 11)
	if err != nil {
		log.Fatal(err)
	}
	d.ShuffleOnce(12)
	const batchSize = 250

	// Budget: 1.3x the TOC footprint — the "15 GB RAM vs 170 GB dataset"
	// regime of the paper's Table 6, scaled to laptop size.
	tocBytes := 0
	for i := 0; i < d.NumBatches(batchSize); i++ {
		x, _ := d.Batch(i, batchSize)
		tocBytes += toc.Encode("TOC", x).CompressedSize()
	}
	budget := int64(float64(tocBytes) * 1.3)
	fmt.Printf("imagenet-like: %d rows, memory budget %d KB (1.3x TOC footprint)\n\n",
		d.X.Rows(), budget/1024)

	fmt.Println("method  resident  spilled  spill_KB   epoch_ms  io_ms")
	for _, method := range []string{"TOC", "CSR", "DEN", "Gzip"} {
		store, err := toc.NewStore("", method, budget)
		if err != nil {
			log.Fatal(err)
		}
		store.SetReadBandwidth(150 << 20) // the paper's ~150 MB/s cloud disk
		for i := 0; i < d.NumBatches(batchSize); i++ {
			x, y := d.Batch(i, batchSize)
			if err := store.Add(x, y); err != nil {
				log.Fatal(err)
			}
		}
		model, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 7)
		if err != nil {
			log.Fatal(err)
		}
		res := toc.Train(model, store, 2, 0.3, nil)
		st := store.Stats()
		fmt.Printf("%-6s  %8d  %7d  %8d  %9.1f  %5.1f\n",
			method, st.ResidentBatches, st.SpilledBatches, st.SpilledBytes/1024,
			res.Total.Seconds()*1e3/2, st.ReadTime.Seconds()*1e3/2)
		if err := store.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nspilled encodings pay disk IO every epoch; TOC stays resident.")
}
