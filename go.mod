module toc

go 1.24
