package toc_test

// Testable godoc examples for the facade's three entry points — the TOC
// pipeline (Compress), the MGD driver (Train) and the out-of-core store
// (NewStore) — plus the concurrent engine. `go test` executes them, so
// every Output block is a checked claim.

import (
	"fmt"

	"toc"
)

// ExampleCompress encodes a mini-batch with the full TOC pipeline and runs
// a matrix operation directly on the compressed form.
func ExampleCompress() {
	m := toc.NewDenseFromRows([][]float64{
		{1.5, 2, 0, 3},
		{1.5, 2, 0, 0},
		{0, 2, 0, 3},
	})
	batch := toc.Compress(m)
	fmt.Println(batch.Rows(), "x", batch.Cols())
	fmt.Println("A.v =", batch.MulVec([]float64{1, 1, 1, 1})) // no decompression
	fmt.Println("lossless:", batch.Decode().Equal(m))
	// Output:
	// 3 x 4
	// A.v = [6.5 3.5 5]
	// lossless: true
}

// ExampleTrain runs mini-batch gradient descent over TOC-compressed
// batches; every gradient executes on the compressed form.
func ExampleTrain() {
	d, err := toc.GenerateDataset("census", 400, 1)
	if err != nil {
		panic(err)
	}
	d.ShuffleOnce(2)
	src := toc.NewMemorySource(d, 50, "TOC")
	model, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		panic(err)
	}
	res := toc.Train(model, src, 4, 0.5, nil)
	fmt.Println("epochs trained:", len(res.EpochLoss))
	fmt.Println("loss decreased:", res.EpochLoss[3] < res.EpochLoss[0])
	// Output:
	// epochs trained: 4
	// loss decreased: true
}

// ExampleNewStore builds a memory-budgeted batch store: batches beyond
// the budget spill to disk and are re-read (real IO plus wire decoding)
// every epoch — the paper's out-of-core regime.
func ExampleNewStore() {
	store, err := toc.NewStore("", "TOC", 1) // 1-byte budget: everything spills
	if err != nil {
		panic(err)
	}
	defer store.Close()
	x := toc.NewDenseFromRows([][]float64{{1, 2, 0}, {1, 0, 3}})
	if err := store.Add(x, []float64{0, 1}); err != nil {
		panic(err)
	}
	st := store.Stats()
	fmt.Println("batches:", store.NumBatches())
	fmt.Println("resident:", st.ResidentBatches, "spilled:", st.SpilledBatches)
	y, labels := store.Batch(0) // read back from the spill file
	fmt.Println("round trip:", y.Decode().Equal(x), labels)
	// Output:
	// batches: 1
	// resident: 0 spilled: 1
	// round trip: true [0 1]
}

// ExampleParallelOps shards the left-multiplication kernel v·A across
// goroutines. Parallel kernels partition the accumulator space instead of
// the rows, so the result is bitwise identical to the sequential kernel
// for any worker count — which is why a kernel-parallel training run
// walks exactly the sequential trajectory.
func ExampleParallelOps() {
	m := toc.NewDenseFromRows([][]float64{
		{1.5, 2, 0, 3},
		{1.5, 2, 0, 0},
		{0, 2, 0, 3},
		{1.5, 0, 0, 3},
	})
	batch := toc.Compress(m)
	v := []float64{0.5, -1, 2, 0.25}
	seq := batch.VecMul(v)            // v·A, one goroutine
	par := batch.VecMulParallel(v, 8) // v·A, sharded over 8 goroutines
	identical := true
	for i := range seq {
		identical = identical && seq[i] == par[i]
	}
	fmt.Println("v.A =", seq)
	fmt.Println("bitwise identical:", identical)
	// Output:
	// v.A = [-0.375 3 0 8.25]
	// bitwise identical: true
}

// ExampleNewEngine trains data-parallel across a worker pool. The engine
// merges each step's shard gradients in batch order, so the resulting
// weights are identical for any worker count.
func ExampleNewEngine() {
	d, err := toc.GenerateDataset("census", 400, 1)
	if err != nil {
		panic(err)
	}
	d.ShuffleOnce(2)
	src := toc.NewMemorySource(d, 50, "TOC")

	train := func(workers int) float64 {
		model, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
		if err != nil {
			panic(err)
		}
		eng := toc.NewEngine(toc.EngineConfig{Workers: workers, GroupSize: 4})
		res := eng.Train(model.(toc.GradModel), src, 4, 0.5, nil)
		return res.EpochLoss[3]
	}
	fmt.Println("workers=1 == workers=8:", train(1) == train(8))
	// Output:
	// workers=1 == workers=8: true
}

// ExampleNewAsyncEngine is the `toctrain -async` path as library code:
// asynchronous bounded-staleness training, where workers pull batches
// from a shared queue and a single updater applies each gradient only if
// its parameter snapshot missed at most Staleness updates. There is no
// merge barrier, so a slow batch never idles the other workers — and at
// Staleness 0 every gradient is computed at exactly the version it is
// applied to, reproducing the serial trajectory bitwise for any worker
// count.
func ExampleNewAsyncEngine() {
	d, err := toc.GenerateDataset("census", 400, 1)
	if err != nil {
		panic(err)
	}
	d.ShuffleOnce(2)
	src := toc.NewMemorySource(d, 50, "TOC")

	model, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		panic(err)
	}
	serial := toc.Train(model, src, 3, 0.5, nil) // the reference trajectory

	async, err := toc.NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		panic(err)
	}
	eng := toc.NewAsyncEngine(toc.AsyncConfig{Workers: 8, Staleness: 0})
	res, err := eng.Train(async.(toc.SnapshotModel), src, 3, 0.5, nil)
	if err != nil {
		panic(err)
	}
	stats := eng.Stats()
	fmt.Println("loss sequence identical:",
		serial.EpochLoss[0] == res.EpochLoss[0] &&
			serial.EpochLoss[1] == res.EpochLoss[1] &&
			serial.EpochLoss[2] == res.EpochLoss[2])
	fmt.Println("updates:", stats.Updates, "max staleness:", stats.MaxStaleness)
	// Output:
	// loss sequence identical: true
	// updates: 24 max staleness: 0
}
