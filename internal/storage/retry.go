package storage

import (
	"errors"
	"fmt"
	"time"
)

// ErrReadCanceled marks a spilled read abandoned because its cancel
// channel closed mid-backoff — the Prefetcher's Close interrupting a
// retry sleep. It is wrapped inside the resulting ReadError.
var ErrReadCanceled = errors.New("storage: spilled read canceled")

// RetryPolicy bounds the retry loop a spilled-batch read runs before
// surfacing a ReadError. Transient faults — an EIO that a re-read
// clears, a torn page that rereads clean — are absorbed by the loop;
// persistent ones fail after Attempts tries with the last cause
// attached.
type RetryPolicy struct {
	// Attempts is the total number of tries per read; 1 means no retry.
	// Values < 1 are treated as 1.
	Attempts int
	// Base is the backoff before the first retry. It doubles on each
	// further retry, capped at Max, and is jittered uniformly over
	// [d/2, 3d/2) from a stream seeded by Seed — deterministic run to
	// run, decorrelated read to read. Base <= 0 retries immediately.
	Base time.Duration
	// Max caps the exponential growth; 0 means Base (no growth).
	Max time.Duration
	// Seed seeds the jitter stream so backoff sequences are
	// reproducible.
	Seed int64
}

// DefaultRetryPolicy is the retry behavior a store is built with unless
// WithReadRetry overrides it: three tries with a small capped backoff,
// enough to clear one-shot faults without stalling a real dead disk for
// long.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 20 * time.Millisecond, Seed: 1}
}

// WithReadRetry sets the retry policy for spilled-batch reads.
func WithReadRetry(p RetryPolicy) Option {
	return func(c *storeConfig) { c.retry = p }
}

// ReadError is the typed, permanent failure of a spilled-batch read:
// every attempt the retry policy allowed failed. It unwraps to the last
// attempt's cause, so errors.Is/As reach an injected faultpoint.Error
// or the underlying IO error through it.
type ReadError struct {
	Batch    int   // batch index whose read failed
	Shard    int   // spill shard it lives on
	Attempts int   // attempts made before giving up
	Err      error // the last attempt's failure
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("storage: read spilled batch %d (shard %d) failed after %d attempts: %v",
		e.Batch, e.Shard, e.Attempts, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// backoffLocked returns the jittered exponential delay before retry n
// (1-based: n attempts have already failed). Must be called with s.mu
// held — the jitter stream is part of the mu-guarded store state.
//
//toc:locked mu
func (s *Store) backoffLocked(n int) time.Duration {
	d := s.retry.Base
	if d <= 0 {
		return 0
	}
	max := s.retry.Max
	if max <= 0 {
		max = d
	}
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Uniform jitter over [d/2, 3d/2) from the seeded stream: retries
	// against a shared device decorrelate without losing reproducibility.
	return d/2 + time.Duration(s.jitter.Int63n(int64(d)+1))
}

// sleepOrCancel sleeps for d unless cancel closes first; it reports
// whether the full sleep completed. A nil cancel never interrupts.
func sleepOrCancel(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	if cancel == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
