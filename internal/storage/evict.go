package storage

import (
	"fmt"
	"sync"
)

// EvictionPolicy decides which batches stay resident when the memory
// budget overflows during ingest. The store consults it on every Add that
// does not fit: residents whose Value is strictly lower than the incoming
// batch's are eviction candidates, cheapest first; if spilling enough of
// them frees room, they go to disk and the incoming batch stays resident,
// otherwise the incoming batch spills (no resident is disturbed).
//
// Value is a retention score — higher means more worth keeping in memory.
// It is consulted only during the single-threaded ingest phase, never on
// the concurrent read path.
type EvictionPolicy interface {
	// Name returns the flag-friendly policy name.
	Name() string
	// Value scores batch idx of the given compressed size; batches with
	// lower values are evicted before batches with higher values, and an
	// incoming batch only displaces residents scoring strictly below it.
	Value(idx int, size int64) float64
}

// OrderAware is implemented by eviction policies that rank batches by
// their position in the upcoming epoch's visit order — the same
// permutation the engine announces to the Prefetcher via SetOrder /
// SetNextOrder. Store.SetUpcomingOrder forwards to it.
type OrderAware interface {
	SetUpcomingOrder(order []int)
}

// firstFit is the historical policy: batches are admitted in arrival
// order until the budget is exhausted and never displaced afterwards.
type firstFit struct{}

func (firstFit) Name() string { return "first-fit" }

// Value decreases with arrival order, so an incoming batch (always the
// highest index so far) never outranks a resident: no eviction, ever.
func (firstFit) Value(idx int, size int64) float64 { return -float64(idx) }

// largestFirst evicts the largest-compressed resident batches first,
// keeping the smallest ones in memory. Keeping small batches maximizes
// the resident *count*, so the number of spilled reads per epoch is
// minimized — possibly at the cost of more spilled *bytes* (a big batch
// displaced by two smalls leaves more data on disk). That is the right
// trade on seek-bound devices (SharedBucket with an access latency),
// where per-epoch IO cost is dominated by the number of spilled reads,
// and the wrong one on purely bandwidth-bound devices.
type largestFirst struct{}

func (largestFirst) Name() string { return "largest-first" }

func (largestFirst) Value(idx int, size int64) float64 { return -float64(size) }

// accessOrder is the Belady-style policy: batches visited earliest in the
// upcoming epoch are the most valuable residents. The epoch head is
// exactly where the prefetcher has had no time to run ahead, so keeping
// it resident converts cold-start stalls into hits; batches visited late
// are cheap to spill because the prefetch window reaches them long before
// the training loop does. Before any order is announced it falls back to
// arrival order (sequential epochs visit batches in that order anyway).
type accessOrder struct {
	mu sync.Mutex
	//toc:guardedby mu
	pos map[int]int
}

func (p *accessOrder) Name() string { return "access-order" }

func (p *accessOrder) SetUpcomingOrder(order []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pos = make(map[int]int, len(order))
	for at, idx := range order {
		p.pos[idx] = at
	}
}

func (p *accessOrder) Value(idx int, size int64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if at, ok := p.pos[idx]; ok {
		return -float64(at)
	}
	return -float64(idx)
}

// FirstFit returns the default residency policy: admit in arrival order
// until the budget is exhausted, never evict.
func FirstFit() EvictionPolicy { return firstFit{} }

// LargestFirst returns the cost-aware policy that keeps the smallest
// compressed batches resident, minimizing the number of spilled reads
// per epoch.
func LargestFirst() EvictionPolicy { return largestFirst{} }

// AccessOrder returns the Belady-style policy that keeps the batches
// visited earliest in the announced epoch order resident (see
// Store.SetUpcomingOrder).
func AccessOrder() EvictionPolicy { return &accessOrder{} }

// NewEvictionPolicy resolves a flag value ("first-fit", "largest-first",
// "access-order"/"belady") to a fresh policy instance.
func NewEvictionPolicy(name string) (EvictionPolicy, error) {
	switch name {
	case "first-fit", "":
		return FirstFit(), nil
	case "largest-first", "largest":
		return LargestFirst(), nil
	case "access-order", "belady":
		return AccessOrder(), nil
	default:
		return nil, fmt.Errorf("storage: unknown eviction policy %q (want first-fit, largest-first or access-order)", name)
	}
}
