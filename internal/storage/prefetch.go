package storage

import (
	"runtime"
	"sync"
	"time"

	"toc/internal/formats"
)

// PrefetchStats describes how much spilled IO the prefetcher moved off the
// training loop's critical path.
type PrefetchStats struct {
	// Hits counts spilled batches that were already prefetched (complete
	// or in flight) when the consumer asked for them; Misses counts
	// spilled batches read synchronously on the critical path. Resident
	// batches count as neither.
	Hits, Misses int64
	// Prefetched counts background reads issued.
	Prefetched int64
	// Stall accumulates time the consumer spent waiting for an in-flight
	// prefetch to land — the residual IO exposure after prefetching.
	Stall time.Duration
	// Errors counts background reads that exhausted the store's retry
	// policy; each is re-surfaced to the consumer that asked for the
	// batch rather than swallowed in a reader goroutine.
	Errors int64
}

// fetchJob asks a reader goroutine to load one spilled batch.
type fetchJob struct {
	idx int
	en  *entry
}

// entry is a prefetched (or in-flight) batch; c, y and err are valid
// after done is closed — err non-nil means the background read failed
// permanently (a *ReadError) and the consumer must surface it. size is
// the batch's on-disk length, charged against the optional byte budget
// while the entry lives in the cache.
type entry struct {
	done chan struct{}
	size int64
	c    formats.CompressedMatrix
	y    []float64
	err  error
}

// PrefetchOption configures a Prefetcher at construction.
type PrefetchOption func(*Prefetcher)

// WithPrefetchBytes bounds the compressed bytes the prefetcher holds
// prefetched or in flight at once. The positional window depth is a raw
// batch count; on large compressed batches a deep window could otherwise
// hold many times the memory budget the store is protecting. With a byte
// budget the window extends only while the next spilled batch still fits
// — but never shrinks below one entry, so a batch larger than the whole
// budget is still prefetched (alone) rather than starved. Zero (the
// default) disables the bound.
func WithPrefetchBytes(maxBytes int64) PrefetchOption {
	return func(p *Prefetcher) { p.maxBytes = maxBytes }
}

// Prefetcher wraps a Store and reads spilled batches ahead of the training
// loop instead of on its critical path — the paper's Figure 1A IO time
// overlapped with compute. It predicts the visit sequence from an order
// hint (SetOrder, which the engine refreshes with its per-epoch
// permutation; the default is sequential) and keeps up to depth upcoming
// spilled batches resident or in flight. At the epoch boundary the window
// continues into the sequence announced by SetNextOrder when there is one
// and wraps to the current head otherwise. It implements the
// ml.BatchSource contract and is safe for concurrent Batch calls,
// including duplicate indices: callers racing for the same in-flight
// batch share one read.
//
// Reads are issued per shard: each of the store's spill shards has its
// own job queue and reader goroutines, so the prefetcher keeps every
// shard busy concurrently instead of funneling all reads through one
// pool that a single slow shard can clog.
type Prefetcher struct {
	store    *Store
	depth    int
	maxBytes int64           // 0 = unbounded; see WithPrefetchBytes
	jobs     []chan fetchJob // one queue per spill shard
	quit     chan struct{}   // closed by Close; interrupts in-flight retry backoffs
	wg       sync.WaitGroup

	mu sync.Mutex
	//toc:guardedby mu
	order []int // predicted visit sequence (a permutation of 0..n-1)
	//toc:guardedby mu
	next []int // the following epoch's sequence; nil = wrap into order
	//toc:guardedby mu
	posOf []int // batch index -> position in order
	//toc:guardedby mu
	lastPos int // deepest consumed position in order (-1 before any)
	//toc:guardedby mu
	cache map[int]*entry
	//toc:guardedby mu
	cacheBytes int64 // sum of cached/in-flight entry sizes
	//toc:guardedby mu
	stats PrefetchStats
	//toc:guardedby mu
	closed bool
}

// NewPrefetcher wraps a fully-loaded store (no further Add calls) with a
// prefetch window of depth batches served by background reader
// goroutines. readers is the total reader target (readers <= 0 picks a
// small default); the pool is split across the store's spill shards with
// at least one reader per shard, so concurrent reads reach every shard.
// It immediately begins prefetching the head of the sequential order.
func NewPrefetcher(s *Store, depth, readers int, opts ...PrefetchOption) *Prefetcher {
	n := s.NumBatches()
	if depth > n-1 {
		depth = n - 1
	}
	if depth < 0 {
		depth = 0
	}
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0) / 4
		if readers < 2 {
			readers = 2
		}
	}
	shards := s.Shards()
	perShard := (readers + shards - 1) / shards // ceil: never fewer total readers than requested
	if perShard < 1 {
		perShard = 1
	}
	p := &Prefetcher{
		store:   s,
		depth:   depth,
		jobs:    make([]chan fetchJob, shards),
		quit:    make(chan struct{}),
		order:   make([]int, n),
		posOf:   make([]int, n),
		lastPos: -1,
		cache:   make(map[int]*entry, depth+1),
	}
	for _, o := range opts {
		o(p)
	}
	for i := range p.order {
		p.order[i] = i
		p.posOf[i] = i
	}
	for sh := range p.jobs {
		p.jobs[sh] = make(chan fetchJob, depth+perShard)
		for r := 0; r < perShard; r++ {
			p.wg.Add(1)
			go p.reader(p.jobs[sh])
		}
	}
	p.mu.Lock()
	p.scheduleLocked(-1)
	p.mu.Unlock()
	return p
}

// reader drains one shard's job queue. A read that fails permanently is
// recorded on the entry instead of panicking here: the panic belongs on
// the consumer's goroutine, where the engine's supervisor can catch it,
// not in an anonymous reader where it would kill the process. Close's
// quit channel interrupts a retry backoff mid-sleep.
func (p *Prefetcher) reader(jobs <-chan fetchJob) {
	defer p.wg.Done()
	for j := range jobs {
		j.en.c, j.en.y, j.en.err = p.store.batch(j.idx, p.quit)
		if j.en.err != nil {
			p.mu.Lock()
			p.stats.Errors++
			p.mu.Unlock()
		}
		close(j.en.done)
	}
}

// SetOrder replaces the predicted visit sequence (a permutation of batch
// indices) and prefetches its head. The engine calls this with its seeded
// per-epoch permutation before each epoch. Any next-epoch sequence set by
// SetNextOrder is cleared: it normally *is* this order, already consumed.
func (p *Prefetcher) SetOrder(order []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.order = append(p.order[:0], order...)
	p.next = nil
	p.lastPos = -1
	for pos, idx := range p.order {
		p.posOf[idx] = pos
	}
	p.scheduleLocked(-1)
}

// SetNextOrder announces the epoch *after* the current order, so the
// window's wrap past the boundary prefetches the right batches. Without
// it the wrap falls back to the current order's head — correct for
// in-order epochs, wasted work when every epoch is freshly permuted. The
// engine calls this right after SetOrder whenever Shuffle is on.
func (p *Prefetcher) SetNextOrder(order []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next = append(p.next[:0], order...)
	p.scheduleLocked(p.lastPos)
}

// dropLocked removes a cache entry and refunds its byte charge. Must be
// called with p.mu held.
//
//toc:locked mu
func (p *Prefetcher) dropLocked(idx int, en *entry) {
	delete(p.cache, idx)
	p.cacheBytes -= en.size
}

// scheduleLocked queues background reads for the spilled batches within
// depth positions after pos in the predicted order, continuing into the
// announced next epoch at the boundary (or wrapping to the current head
// when none is announced). The window additionally stops at the byte
// budget when one is configured. Must be called with p.mu held.
//
//toc:locked mu
func (p *Prefetcher) scheduleLocked(pos int) {
	n := len(p.order)
	if n == 0 || p.closed {
		return
	}
	for k := 1; k <= p.depth; k++ {
		var idx int
		if at := pos + k; at < n {
			idx = p.order[at]
		} else if p.next != nil {
			if at-n >= len(p.next) {
				return
			}
			idx = p.next[at-n]
		} else {
			idx = p.order[at%n]
		}
		if !p.requestLocked(idx) {
			return // byte budget or shard queue exhausted; a later access re-schedules
		}
	}
}

// Request schedules a background read of one specific batch, regardless
// of its place in the predicted order. The async engine calls this when
// its dispatch queue deviates from the announced permutation — a
// staleness-rejected gradient's batch is about to be re-read for the
// recompute — so the prefetch stream follows the actual queue rather
// than only the epoch permutation. Resident, already-cached and in-flight
// batches are no-ops; like the window, an explicit request respects the
// byte budget (but never starves below one entry) and degrades to a
// synchronous read if the shard's queue is full.
func (p *Prefetcher) Request(idx int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || idx < 0 || idx >= p.store.NumBatches() {
		return
	}
	p.requestLocked(idx)
}

// requestLocked queues a background read of batch idx if it is spilled,
// uncached, within the byte budget and the shard queue has room. It
// reports whether the window may keep extending (false = budget or queue
// exhausted). Must be called with p.mu held.
//
//toc:locked mu
func (p *Prefetcher) requestLocked(idx int) bool {
	if p.store.Resident(idx) {
		return true
	}
	if _, inFlight := p.cache[idx]; inFlight {
		return true
	}
	size := p.store.spans[idx].length
	// The byte budget stops the window from extending, but never below
	// one entry: a batch bigger than the whole budget must still be
	// fetchable once the cache drains, or it (and everything behind it)
	// would be a permanent synchronous miss.
	if p.maxBytes > 0 && len(p.cache) > 0 && p.cacheBytes+size > p.maxBytes {
		return false // budget reached; a later access re-schedules
	}
	en := &entry{done: make(chan struct{}), size: size}
	select {
	case p.jobs[p.store.ShardOf(idx)] <- fetchJob{idx: idx, en: en}:
		p.cache[idx] = en
		p.cacheBytes += size
		p.stats.Prefetched++
		return true
	default:
		return false // queue full; a later access re-schedules
	}
}

// NumBatches returns the number of stored mini-batches.
func (p *Prefetcher) NumBatches() int { return p.store.NumBatches() }

// Batch returns mini-batch i, consuming its prefetched copy when one is
// ready or in flight, and advances the prefetch window past i's position
// in the predicted order.
//
// A completed entry is consumed (dropped from the cache) immediately; an
// in-flight entry stays cached until it lands, so concurrent Batch calls
// for the same index share the one outstanding read instead of the loser
// issuing a duplicate synchronous read and being miscounted as a miss.
func (p *Prefetcher) Batch(i int) (formats.CompressedMatrix, []float64) {
	p.mu.Lock()
	en := p.cache[i]
	inFlight := false
	if en != nil {
		p.stats.Hits++
		select {
		case <-en.done:
			p.dropLocked(i, en) // consumed; re-prefetched on the next lap
		default:
			inFlight = true
		}
	} else if !p.store.Resident(i) {
		p.stats.Misses++
	}
	if pos := p.posOf[i]; pos > p.lastPos {
		p.lastPos = pos
	}
	p.scheduleLocked(p.posOf[i])
	p.mu.Unlock()

	if en == nil {
		return p.store.Batch(i) // resident, or a synchronous miss
	}
	if inFlight {
		select {
		case <-en.done: // landed between the unlock and here: no stall
		default:
			start := time.Now()
			<-en.done
			stall := time.Since(start)
			p.mu.Lock()
			p.stats.Stall += stall
			p.mu.Unlock()
		}
		// First consumer to get here retires the entry; sharers that
		// arrive later find a newer entry (or none) and leave it alone.
		// Retiring frees byte budget, so the window may extend again —
		// without this, a tight budget alternates hit/miss because the
		// next batch can only be scheduled once the current one is gone.
		p.mu.Lock()
		if p.cache[i] == en {
			p.dropLocked(i, en)
			p.scheduleLocked(p.posOf[i])
		}
		p.mu.Unlock()
	}
	if en.err != nil {
		// Surface the background read's permanent failure on the
		// consumer's goroutine, matching Store.Batch's panic contract.
		// The entry is already out of the cache, so a later retry of
		// this index schedules a fresh read.
		panic(en.err)
	}
	return en.c, en.y
}

// Stats returns a snapshot of the hit/miss counters.
func (p *Prefetcher) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Store returns the wrapped store (for its IO stats and cleanup; closing
// the store remains the caller's job).
func (p *Prefetcher) Store() *Store { return p.store }

// Close stops the background readers, interrupting any reader sitting
// in a retry-backoff sleep so it returns promptly instead of serving
// out its schedule. It does not close the wrapped store.
func (p *Prefetcher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	for _, ch := range p.jobs {
		close(ch)
	}
	p.wg.Wait()
	return nil
}
