package storage

import (
	"runtime"
	"sync"
	"time"

	"toc/internal/formats"
)

// PrefetchStats describes how much spilled IO the prefetcher moved off the
// training loop's critical path.
type PrefetchStats struct {
	// Hits counts spilled batches that were already prefetched (complete
	// or in flight) when the consumer asked for them; Misses counts
	// spilled batches read synchronously on the critical path. Resident
	// batches count as neither.
	Hits, Misses int64
	// Prefetched counts background reads issued.
	Prefetched int64
	// Stall accumulates time the consumer spent waiting for an in-flight
	// prefetch to land — the residual IO exposure after prefetching.
	Stall time.Duration
}

// fetchJob asks a reader goroutine to load one spilled batch.
type fetchJob struct {
	idx int
	en  *entry
}

// entry is a prefetched (or in-flight) batch; c and y are valid after done
// is closed.
type entry struct {
	done chan struct{}
	c    formats.CompressedMatrix
	y    []float64
}

// Prefetcher wraps a Store and reads spilled batches ahead of the training
// loop instead of on its critical path — the paper's Figure 1A IO time
// overlapped with compute. It predicts the visit sequence from an order
// hint (SetOrder, which the engine refreshes with its per-epoch
// permutation; the default is sequential) and keeps up to depth upcoming
// spilled batches resident or in flight, wrapping around the epoch
// boundary. It implements the ml.BatchSource contract and is safe for
// concurrent Batch calls.
type Prefetcher struct {
	store *Store
	depth int
	jobs  chan fetchJob
	wg    sync.WaitGroup

	mu     sync.Mutex
	order  []int       // predicted visit sequence (a permutation of 0..n-1)
	posOf  []int       // batch index -> position in order
	cache  map[int]*entry
	stats  PrefetchStats
	closed bool
}

// NewPrefetcher wraps a fully-loaded store (no further Add calls) with a
// prefetch window of depth batches served by readers background
// goroutines (readers <= 0 picks a small default). It immediately begins
// prefetching the head of the sequential order.
func NewPrefetcher(s *Store, depth, readers int) *Prefetcher {
	n := s.NumBatches()
	if depth > n-1 {
		depth = n - 1
	}
	if depth < 0 {
		depth = 0
	}
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0) / 4
		if readers < 2 {
			readers = 2
		}
	}
	p := &Prefetcher{
		store: s,
		depth: depth,
		jobs:  make(chan fetchJob, depth+readers),
		order: make([]int, n),
		posOf: make([]int, n),
		cache: make(map[int]*entry, depth+1),
	}
	for i := range p.order {
		p.order[i] = i
		p.posOf[i] = i
	}
	for r := 0; r < readers; r++ {
		p.wg.Add(1)
		go p.reader()
	}
	p.mu.Lock()
	p.scheduleLocked(-1)
	p.mu.Unlock()
	return p
}

func (p *Prefetcher) reader() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.en.c, j.en.y = p.store.Batch(j.idx)
		close(j.en.done)
	}
}

// SetOrder replaces the predicted visit sequence (a permutation of batch
// indices) and prefetches its head. The engine calls this with its seeded
// per-epoch permutation before each epoch.
func (p *Prefetcher) SetOrder(order []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.order = append(p.order[:0], order...)
	for pos, idx := range p.order {
		p.posOf[idx] = pos
	}
	p.scheduleLocked(-1)
}

// scheduleLocked queues background reads for the spilled batches within
// depth positions after pos in the predicted order (wrapping around). Must
// be called with p.mu held.
func (p *Prefetcher) scheduleLocked(pos int) {
	n := len(p.order)
	if n == 0 || p.closed {
		return
	}
	for k := 1; k <= p.depth; k++ {
		idx := p.order[(pos+k)%n]
		if p.store.Resident(idx) {
			continue
		}
		if _, inFlight := p.cache[idx]; inFlight {
			continue
		}
		en := &entry{done: make(chan struct{})}
		select {
		case p.jobs <- fetchJob{idx: idx, en: en}:
			p.cache[idx] = en
			p.stats.Prefetched++
		default:
			return // queue full; a later access re-schedules
		}
	}
}

// NumBatches returns the number of stored mini-batches.
func (p *Prefetcher) NumBatches() int { return p.store.NumBatches() }

// Batch returns mini-batch i, consuming its prefetched copy when one is
// ready or in flight, and advances the prefetch window past i's position
// in the predicted order.
func (p *Prefetcher) Batch(i int) (formats.CompressedMatrix, []float64) {
	p.mu.Lock()
	en := p.cache[i]
	if en != nil {
		delete(p.cache, i) // consumed; re-prefetched on the next lap
		p.stats.Hits++
	} else if !p.store.Resident(i) {
		p.stats.Misses++
	}
	p.scheduleLocked(p.posOf[i])
	p.mu.Unlock()

	if en == nil {
		return p.store.Batch(i) // resident, or a synchronous miss
	}
	select {
	case <-en.done: // landed ahead of time: no stall
	default:
		start := time.Now()
		<-en.done
		stall := time.Since(start)
		p.mu.Lock()
		p.stats.Stall += stall
		p.mu.Unlock()
	}
	return en.c, en.y
}

// Stats returns a snapshot of the hit/miss counters.
func (p *Prefetcher) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Store returns the wrapped store (for its IO stats and cleanup; closing
// the store remains the caller's job).
func (p *Prefetcher) Store() *Store { return p.store }

// Close stops the background readers. It does not close the wrapped store.
func (p *Prefetcher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
	return nil
}
