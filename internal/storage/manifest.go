package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"toc/internal/faultpoint"
	"toc/internal/formats"
)

// The per-shard manifest makes a spilled store crash-safe: it records
// the full batch layout — which shard file holds each spilled batch at
// which offset, every batch's labels, and a CRC per span — so a
// restarted process recovers the store from the shard files instead of
// re-ingesting the dataset. Resident batches are flushed to the shard
// files too (as "backup spans", accounted separately from the spill so
// stats and placement are unchanged), which is what makes the manifest
// sufficient: after WriteManifest every batch's bytes are on fsynced
// disk.
//
// Like the checkpoint format, the manifest is one little-endian image
// with a trailing CRC-32C, written atomically (temp + fsync + rename +
// directory fsync): a crash mid-write leaves the old manifest or none,
// never a torn one. OpenStore verifies the manifest CRC, each shard
// file's size, and — at recovery time, once — every span's CRC, so a
// truncated or bit-flipped shard file is a loud error, never silently
// wrong training data.

const (
	manifestMagic   = "TOCM"
	manifestVersion = 1
)

// WriteManifest persists the store's layout to path and flushes every
// resident batch to a shard file as its backup span. After it returns,
// the shard files are fsynced, the manifest is durably in place, and
// Close will keep the files (the store becomes persistent). Call it
// once ingest is complete, never concurrently with Batch.
func (s *Store) WriteManifest(path string) error {
	// Flush resident batches to backup spans. Placement balances file
	// sizes (wpos, which includes earlier backups), not the spill
	// accounting — backups are not spills. A second WriteManifest call
	// reuses spans already flushed.
	if s.resSpans == nil {
		s.resSpans = make([]span, len(s.resident))
	}
	for i, c := range s.resident {
		if c == nil || s.resSpans[i].length > 0 {
			continue
		}
		best := 0
		for j, sh := range s.shards {
			if sh.wpos < s.shards[best].wpos {
				best = j
			}
		}
		sp, err := s.writeSpan(best, c.Serialize())
		if err != nil {
			return fmt.Errorf("storage: back up resident batch %d: %w", i, err)
		}
		s.resSpans[i] = sp
	}
	for i, sh := range s.shards {
		if sh.file == nil {
			continue
		}
		if err := sh.file.Sync(); err != nil {
			return fmt.Errorf("storage: sync shard %d: %w", i, err)
		}
	}

	img := s.encodeManifest()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-tmp-*")
	if err != nil {
		return fmt.Errorf("storage: create manifest temp: %w", err)
	}
	name := tmp.Name()
	// Cleanup is explicit, not deferred: an injected crash must leave
	// exactly what a real kill would.
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: close manifest temp: %w", err)
	}
	faultpoint.Hit("storage.manifest.rename")
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: rename manifest: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open manifest dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: sync manifest dir: %w", err)
	}
	s.persist = true
	return nil
}

// encodeManifest serializes the store layout (with trailing CRC-32C).
func (s *Store) encodeManifest() []byte {
	s.mu.Lock()
	evictions := s.stats.Evictions
	s.mu.Unlock()
	le := binary.LittleEndian
	var img []byte
	img = append(img, manifestMagic...)
	img = append(img, manifestVersion, 0, 0, 0)
	img = appendStr(img, s.method)
	img = le.AppendUint64(img, uint64(s.budget))
	img = le.AppendUint32(img, uint32(evictions))
	img = le.AppendUint32(img, uint32(len(s.shards)))
	for _, sh := range s.shards {
		// The file's actual location, not the configured dir: a shard
		// configured with dir "" creates its file in the OS temp dir,
		// and recovery must find it where it really is.
		var dir, base string
		if sh.file != nil {
			dir = filepath.Dir(sh.file.Name())
			base = filepath.Base(sh.file.Name())
		}
		img = appendStr(img, dir)
		img = appendStr(img, base)
		img = le.AppendUint64(img, uint64(sh.wpos))
		img = le.AppendUint64(img, uint64(sh.bytes))
	}
	img = le.AppendUint32(img, uint32(len(s.resident)))
	for i := range s.resident {
		var flags byte
		sp := s.spans[i]
		if s.resident[i] != nil {
			flags |= 1
			sp = s.resSpans[i]
		}
		img = append(img, flags)
		img = le.AppendUint64(img, uint64(s.sizes[i]))
		img = le.AppendUint32(img, uint32(sp.shard))
		img = le.AppendUint64(img, uint64(sp.off))
		img = le.AppendUint64(img, uint64(sp.length))
		img = le.AppendUint32(img, sp.crc)
		img = le.AppendUint32(img, uint32(len(s.labels[i])))
		for _, v := range s.labels[i] {
			img = le.AppendUint64(img, math.Float64bits(v))
		}
	}
	return le.AppendUint32(img, crc32.Checksum(img, spanTable))
}

func appendStr(img []byte, s string) []byte {
	img = binary.LittleEndian.AppendUint16(img, uint16(len(s)))
	return append(img, s...)
}

// manifestReader walks a manifest image with bounds checking; the first
// overrun poisons every later read.
type manifestReader struct {
	buf []byte
	off int
	err error
}

func (r *manifestReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("storage: manifest truncated at byte %d", r.off)
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *manifestReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *manifestReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *manifestReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *manifestReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *manifestReader) str() string {
	n := int(r.u16())
	b := r.take(n)
	return string(b)
}

func (r *manifestReader) f64s() []float64 {
	n := int(r.u32())
	b := r.take(8 * n) // bounds-checked before allocating
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// OpenStore reopens a store from a manifest written by WriteManifest:
// it verifies the manifest's CRC, opens the shard files read-only,
// checks each file is at least as long as the manifest says it wrote
// (truncation), re-reads every span — resident backups and spills alike
// — verifying its CRC, and decodes the resident batches back into
// memory. Any mismatch is a loud error; a recovered store never serves
// bytes that differ from what was persisted.
//
// Options configure the runtime disk model (bandwidth, model, latency);
// the shard layout comes from the manifest, so WithShards/WithShardDirs
// are ignored. The reopened store is persistent: Close keeps the shard
// files for the next restart.
func OpenStore(manifestPath string, opts ...Option) (*Store, error) {
	img, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	if len(img) < 12 {
		return nil, fmt.Errorf("storage: manifest %s truncated (%d bytes)", manifestPath, len(img))
	}
	if string(img[:4]) != manifestMagic {
		return nil, fmt.Errorf("storage: %s is not a store manifest (magic %q)", manifestPath, img[:4])
	}
	if img[4] != manifestVersion {
		return nil, fmt.Errorf("storage: manifest %s has unsupported version %d", manifestPath, img[4])
	}
	body, stored := img[:len(img)-4], binary.LittleEndian.Uint32(img[len(img)-4:])
	if got := crc32.Checksum(body, spanTable); got != stored {
		return nil, fmt.Errorf("storage: manifest %s failed CRC (stored %08x, computed %08x)", manifestPath, stored, got)
	}

	r := &manifestReader{buf: body, off: 8}
	method := r.str()
	budget := int64(r.u64())
	evictions := int(r.u32())
	nShards := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	codec, ok := formats.GetCodec(method)
	if !ok {
		return nil, fmt.Errorf("storage: manifest %s names unknown method %q", manifestPath, method)
	}
	cfg := storeConfig{policy: FirstFit(), retry: DefaultRetryPolicy()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.retry.Attempts < 1 {
		cfg.retry.Attempts = 1
	}
	s := &Store{
		method:    method,
		codec:     codec,
		budget:    budget,
		policy:    cfg.policy,
		bandwidth: cfg.bandwidth,
		model:     cfg.model,
		latency:   cfg.latency,
		retry:     cfg.retry,
		jitter:    rand.New(rand.NewSource(cfg.retry.Seed)),
		persist:   true,
	}
	s.stats.Evictions = evictions
	byDir := map[string]*device{}
	for i := 0; i < nShards; i++ {
		dir := r.str()
		base := r.str()
		wpos := int64(r.u64())
		bytes := int64(r.u64())
		if r.err != nil {
			return nil, r.err
		}
		dev, ok := byDir[dir]
		if !ok {
			dev = &device{dir: dir}
			byDir[dir] = dev
			s.devices = append(s.devices, dev)
		}
		sh := &shard{dir: dir, dev: dev, wpos: wpos, bytes: bytes}
		if base != "" {
			path := filepath.Join(dir, base)
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("storage: open shard %d: %w", i, err)
			}
			fi, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("storage: stat shard %d: %w", i, err)
			}
			if fi.Size() < wpos {
				f.Close()
				return nil, fmt.Errorf("storage: shard file %s truncated: %d bytes, manifest wrote %d", path, fi.Size(), wpos)
			}
			sh.file = f
		} else if wpos > 0 {
			return nil, fmt.Errorf("storage: manifest shard %d wrote %d bytes but names no file", i, wpos)
		}
		s.shards = append(s.shards, sh)
	}

	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	s.resident = make([]formats.CompressedMatrix, n)
	s.labels = make([][]float64, n)
	s.spans = make([]span, n)
	s.sizes = make([]int64, n)
	s.resSpans = make([]span, n)
	for i := 0; i < n; i++ {
		flags := r.u8()
		size := int64(r.u64())
		sp := span{
			shard:  int(r.u32()),
			off:    int64(r.u64()),
			length: int64(r.u64()),
			crc:    r.u32(),
		}
		labels := r.f64s()
		if r.err != nil {
			return nil, r.err
		}
		if sp.shard < 0 || sp.shard >= len(s.shards) {
			return nil, fmt.Errorf("storage: batch %d names shard %d of %d", i, sp.shard, len(s.shards))
		}
		img, err := s.readSpanVerified(i, sp)
		if err != nil {
			return nil, err
		}
		s.labels[i] = labels
		s.sizes[i] = size
		if flags&1 != 0 {
			c, err := codec.Decode(img)
			if err != nil {
				return nil, fmt.Errorf("storage: decode resident batch %d backup: %w", i, err)
			}
			s.resident[i] = c
			s.resSpans[i] = sp
			s.stats.ResidentBatches++
			s.stats.ResidentBytes += size
		} else {
			s.spans[i] = sp
			s.stats.SpilledBatches++
			s.stats.SpilledBytes += sp.length
		}
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("storage: manifest has %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}

// readSpanVerified reads one span's bytes and checks them against the
// manifest CRC — the recovery-time full scan that turns silent disk
// corruption into a startup error.
func (s *Store) readSpanVerified(batch int, sp span) ([]byte, error) {
	sh := s.shards[sp.shard]
	if sh.file == nil {
		return nil, fmt.Errorf("storage: batch %d lives on shard %d, which has no file", batch, sp.shard)
	}
	buf := make([]byte, sp.length)
	if _, err := sh.file.ReadAt(buf, sp.off); err != nil {
		return nil, fmt.Errorf("storage: read batch %d during recovery: %w", batch, err)
	}
	if got := crc32.Checksum(buf, spanTable); got != sp.crc {
		return nil, fmt.Errorf("storage: batch %d failed CRC during recovery (stored %08x, read %08x): corrupt shard file", batch, sp.crc, got)
	}
	return buf, nil
}
