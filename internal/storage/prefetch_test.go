package storage

import (
	"sync"
	"testing"

	"toc/internal/matrix"
)

// spilledStore builds a store of n 4-row batches that all spill to disk.
func spilledStore(t *testing.T, n int) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir(), "TOC", 1) // 1-byte budget: everything spills
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for b := 0; b < n; b++ {
		x := matrix.NewDense(4, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				x.Set(i, j, float64((b+i*j)%5))
			}
		}
		if err := st.Add(x, []float64{0, 1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Spilled() {
		t.Fatal("expected batches to spill")
	}
	return st
}

// A sequential scan behind a warm prefetcher should be all hits: the
// window is primed at construction and stays depth batches ahead,
// wrapping across the epoch boundary.
func TestPrefetcherSequentialScanAllHits(t *testing.T) {
	const n = 12
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 2)
	defer pf.Close()
	if pf.NumBatches() != n {
		t.Fatalf("NumBatches = %d", pf.NumBatches())
	}
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < n; i++ {
			c, y := pf.Batch(i)
			want, wantY := st.Batch(i)
			if !c.Decode().Equal(want.Decode()) {
				t.Fatalf("batch %d contents differ", i)
			}
			if len(y) != len(wantY) {
				t.Fatalf("batch %d labels differ", i)
			}
		}
	}
	ps := pf.Stats()
	if ps.Misses != 0 {
		t.Errorf("sequential scan missed %d times: %+v", ps.Misses, ps)
	}
	if ps.Hits != 2*n {
		t.Errorf("Hits = %d, want %d", ps.Hits, 2*n)
	}
	if ps.Prefetched < ps.Hits {
		t.Errorf("Prefetched = %d < Hits = %d", ps.Prefetched, ps.Hits)
	}
}

// Jumping far outside the prefetch window is a miss, served synchronously.
func TestPrefetcherOutOfWindowMiss(t *testing.T) {
	const n = 12
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 3, 2)
	defer pf.Close()
	// The primed window covers batches 0..2; batch 8 cannot be in it.
	if _, y := pf.Batch(8); len(y) != 4 {
		t.Fatalf("labels = %v", y)
	}
	if ps := pf.Stats(); ps.Misses != 1 {
		t.Errorf("Misses = %d, want 1: %+v", ps.Misses, ps)
	}
}

// SetOrder re-aims the window: a scan in the announced permutation order
// never misses.
func TestPrefetcherFollowsSetOrder(t *testing.T) {
	const n = 10
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 2)
	defer pf.Close()
	order := []int{7, 3, 9, 0, 5, 1, 8, 2, 6, 4}
	pf.SetOrder(order)
	for _, i := range order {
		pf.Batch(i)
	}
	if ps := pf.Stats(); ps.Misses != 0 || ps.Hits != n {
		t.Errorf("permuted scan: %+v, want 0 misses / %d hits", ps, n)
	}
}

// Concurrent Batch calls (the engine's group fan-out) stay correct.
func TestPrefetcherConcurrentReads(t *testing.T) {
	const n = 16
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 6, 3)
	defer pf.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, y := pf.Batch(i)
			if c.Rows() != 4 || len(y) != 4 {
				t.Errorf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
			}
		}(i)
	}
	wg.Wait()
	ps := pf.Stats()
	if ps.Hits+ps.Misses != n {
		t.Errorf("Hits+Misses = %d, want %d: %+v", ps.Hits+ps.Misses, n, ps)
	}
}

// Resident batches bypass the prefetcher counters entirely.
func TestPrefetcherResidentBypass(t *testing.T) {
	st, err := NewStore(t.TempDir(), "TOC", 1<<30) // everything resident
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	x := matrix.NewDense(2, 3)
	x.Set(0, 0, 1)
	for b := 0; b < 4; b++ {
		if err := st.Add(x, []float64{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	pf := NewPrefetcher(st, 2, 1)
	defer pf.Close()
	for i := 0; i < 4; i++ {
		pf.Batch(i)
	}
	if ps := pf.Stats(); ps.Hits != 0 || ps.Misses != 0 || ps.Prefetched != 0 {
		t.Errorf("resident reads touched the prefetcher: %+v", ps)
	}
}
