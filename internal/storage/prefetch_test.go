package storage

import (
	"sync"
	"testing"

	"toc/internal/matrix"
	"toc/internal/testutil"
)

// spilledStore builds a store of n 4-row batches that all spill to disk.
func spilledStore(t *testing.T, n int) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir(), "TOC", 1) // 1-byte budget: everything spills
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for b := 0; b < n; b++ {
		x := matrix.NewDense(4, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				x.Set(i, j, float64((b+i*j)%5))
			}
		}
		if err := st.Add(x, []float64{0, 1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Spilled() {
		t.Fatal("expected batches to spill")
	}
	return st
}

// A sequential scan behind a warm prefetcher should be all hits: the
// window is primed at construction and stays depth batches ahead,
// wrapping across the epoch boundary.
func TestPrefetcherSequentialScanAllHits(t *testing.T) {
	const n = 12
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 2)
	defer pf.Close()
	if pf.NumBatches() != n {
		t.Fatalf("NumBatches = %d", pf.NumBatches())
	}
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < n; i++ {
			c, y := pf.Batch(i)
			want, wantY := st.Batch(i)
			if !c.Decode().Equal(want.Decode()) {
				t.Fatalf("batch %d contents differ", i)
			}
			if len(y) != len(wantY) {
				t.Fatalf("batch %d labels differ", i)
			}
		}
	}
	ps := pf.Stats()
	if ps.Misses != 0 {
		t.Errorf("sequential scan missed %d times: %+v", ps.Misses, ps)
	}
	if ps.Hits != 2*n {
		t.Errorf("Hits = %d, want %d", ps.Hits, 2*n)
	}
	if ps.Prefetched < ps.Hits {
		t.Errorf("Prefetched = %d < Hits = %d", ps.Prefetched, ps.Hits)
	}
}

// Jumping far outside the prefetch window is a miss, served synchronously.
func TestPrefetcherOutOfWindowMiss(t *testing.T) {
	const n = 12
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 3, 2)
	defer pf.Close()
	// The primed window covers batches 0..2; batch 8 cannot be in it.
	if _, y := pf.Batch(8); len(y) != 4 {
		t.Fatalf("labels = %v", y)
	}
	if ps := pf.Stats(); ps.Misses != 1 {
		t.Errorf("Misses = %d, want 1: %+v", ps.Misses, ps)
	}
}

// SetOrder re-aims the window: a scan in the announced permutation order
// never misses.
func TestPrefetcherFollowsSetOrder(t *testing.T) {
	const n = 10
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 2)
	defer pf.Close()
	order := []int{7, 3, 9, 0, 5, 1, 8, 2, 6, 4}
	pf.SetOrder(order)
	for _, i := range order {
		pf.Batch(i)
	}
	if ps := pf.Stats(); ps.Misses != 0 || ps.Hits != n {
		t.Errorf("permuted scan: %+v, want 0 misses / %d hits", ps, n)
	}
}

// Concurrent Batch calls (the engine's group fan-out) stay correct.
func TestPrefetcherConcurrentReads(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	const n = 16
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 6, 3)
	defer pf.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, y := pf.Batch(i)
			if c.Rows() != 4 || len(y) != 4 {
				t.Errorf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
			}
		}(i)
	}
	wg.Wait()
	ps := pf.Stats()
	if ps.Hits+ps.Misses != n {
		t.Errorf("Hits+Misses = %d, want %d: %+v", ps.Hits+ps.Misses, n, ps)
	}
}

// Concurrent Batch calls for the same in-flight index must share the one
// outstanding read: no duplicate synchronous read, no phantom miss. The
// store's bandwidth throttle keeps the primed reads in flight long enough
// that every caller arrives before they land.
func TestPrefetcherDuplicateInFlightShared(t *testing.T) {
	const n, depth, dupes = 6, 5, 8
	st := spilledStore(t, n)
	st.SetReadBandwidth(4096) // a few hundred bytes per batch → tens of ms per read
	pf := NewPrefetcher(st, depth, 2)
	defer pf.Close()
	// NewPrefetcher has primed batches 0..depth-1; hit them all, many
	// callers per index, while the reads are still in flight.
	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		for d := 0; d < dupes; d++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, y := pf.Batch(i)
				if c.Rows() != 4 || len(y) != 4 {
					t.Errorf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
				}
			}(i)
		}
	}
	wg.Wait()
	// The wrap-around window may legitimately re-prefetch consumed batches,
	// but duplicate callers must never add synchronous reads on top: without
	// sharing, up to depth*(dupes-1) extra reads would show up here.
	if got := st.Stats().Reads; got > n+depth {
		t.Errorf("store reads = %d, want <= %d (duplicate callers must share one read)", got, n+depth)
	}
	ps := pf.Stats()
	if ps.Misses != 0 {
		t.Errorf("Misses = %d, want 0: %+v", ps.Misses, ps)
	}
	if ps.Hits != depth*dupes {
		t.Errorf("Hits = %d, want %d", ps.Hits, depth*dupes)
	}
}

// Hammer Batch with duplicate indices from many goroutines (run under
// -race in CI): every request must be answered correctly and counted as
// exactly one hit or miss.
func TestPrefetcherDuplicateIndexHammer(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	const n, goroutines, rounds = 10, 16, 8
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 3)
	defer pf.Close()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r*3) % n // plenty of cross-goroutine collisions
				c, y := pf.Batch(i)
				if c.Rows() != 4 || len(y) != 4 {
					t.Errorf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
				}
			}
		}(g)
	}
	wg.Wait()
	ps := pf.Stats()
	if ps.Hits+ps.Misses != goroutines*rounds {
		t.Errorf("Hits+Misses = %d, want %d: %+v", ps.Hits+ps.Misses, goroutines*rounds, ps)
	}
}

// With the next epoch's permutation announced, the window that crosses
// the epoch boundary must hold exactly the *next* order's head — without
// SetNextOrder it would wrap around and re-prefetch the current epoch's
// head, which a fresh permutation then never asks for first.
func TestPrefetcherWindowCrossesBoundaryIntoNextOrder(t *testing.T) {
	const n, depth = 10, 4
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, depth, 2)
	defer pf.Close()
	o1 := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	o2 := []int{7, 2, 9, 4, 0, 8, 1, 6, 3, 5}
	pf.SetOrder(o1)
	pf.SetNextOrder(o2)
	for _, i := range o1 {
		pf.Batch(i)
	}
	// The tail Batch calls scheduled past the boundary: the cache must now
	// hold o2's head and nothing else (in particular not o1's head, which
	// the un-announced wrap would have re-read).
	pf.mu.Lock()
	for k := 0; k < depth; k++ {
		if _, ok := pf.cache[o2[k]]; !ok {
			t.Errorf("next epoch's head batch %d not prefetched across the boundary", o2[k])
		}
	}
	if len(pf.cache) != depth {
		t.Errorf("cache holds %d entries, want exactly the %d-deep next-order head", len(pf.cache), depth)
	}
	pf.mu.Unlock()
	pf.SetOrder(o2)
	for _, i := range o2 {
		pf.Batch(i)
	}
	if ps := pf.Stats(); ps.Misses != 0 || ps.Hits != 2*n {
		t.Errorf("shuffled boundary scan: %+v, want 0 misses / %d hits", ps, 2*n)
	}
}

// A sequential scan over a sharded store behind the per-shard readers
// stays all-hits: every shard's queue is serviced concurrently.
func TestPrefetcherShardedSequentialScanAllHits(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	const n = 12
	st, err := NewStore(t.TempDir(), "TOC", 1, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for b := 0; b < n; b++ {
		x := matrix.NewDense(4, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				x.Set(i, j, float64((b+i*j)%5))
			}
		}
		if err := st.Add(x, []float64{0, 1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	pf := NewPrefetcher(st, 4, 2) // 2 readers requested -> one per shard
	defer pf.Close()
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < n; i++ {
			c, y := pf.Batch(i)
			if c.Rows() != 4 || len(y) != 4 {
				t.Fatalf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
			}
		}
	}
	if ps := pf.Stats(); ps.Misses != 0 || ps.Hits != 2*n {
		t.Errorf("sharded scan: %+v, want 0 misses / %d hits", ps, 2*n)
	}
}

// WithPrefetchBytes bounds the window by compressed bytes instead of raw
// batch count: the cache (prefetched + in flight) never charges past the
// budget, and the window re-extends as entries are consumed.
func TestPrefetcherByteBudgetBoundsWindow(t *testing.T) {
	const n, depth = 12, 8
	st := spilledStore(t, n)
	// Budget: exactly the first two spans of the sequential order. The
	// primed window must stop there even though depth allows 8.
	budget := st.spans[0].length + st.spans[1].length
	pf := NewPrefetcher(st, depth, 2, WithPrefetchBytes(budget))
	defer pf.Close()
	pf.mu.Lock()
	if len(pf.cache) != 2 {
		t.Errorf("primed cache holds %d entries, want 2 (byte budget)", len(pf.cache))
	}
	if pf.cacheBytes > budget {
		t.Errorf("cacheBytes %d exceeds budget %d", pf.cacheBytes, budget)
	}
	pf.mu.Unlock()
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < n; i++ {
			c, y := pf.Batch(i)
			if c.Rows() != 4 || len(y) != 4 {
				t.Fatalf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
			}
			pf.mu.Lock()
			if pf.cacheBytes > budget {
				t.Fatalf("after batch %d: cacheBytes %d exceeds budget %d", i, pf.cacheBytes, budget)
			}
			var sum int64
			for _, en := range pf.cache {
				sum += en.size
			}
			if sum != pf.cacheBytes {
				t.Fatalf("cacheBytes %d out of sync with entries %d", pf.cacheBytes, sum)
			}
			pf.mu.Unlock()
		}
	}
	// Consuming the head frees budget for the tail: the scan stays ahead,
	// so a byte-bounded window still converts most reads into hits.
	if ps := pf.Stats(); ps.Hits < int64(n) {
		t.Errorf("byte-bounded scan hit only %d of %d reads: %+v", ps.Hits, 2*n, ps)
	}
}

// A byte budget smaller than any single batch must not starve the
// prefetcher: the window never shrinks below one entry, so every batch is
// still prefetched — one at a time — instead of becoming a permanent
// synchronous miss that also blocks everything behind it.
func TestPrefetcherByteBudgetSmallerThanOneBatch(t *testing.T) {
	const n = 8
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 4, 2, WithPrefetchBytes(st.spans[0].length-1))
	defer pf.Close()
	for i := 0; i < n; i++ {
		if c, _ := pf.Batch(i); c.Rows() != 4 {
			t.Fatalf("batch %d rows = %d", i, c.Rows())
		}
		pf.mu.Lock()
		if len(pf.cache) > 1 {
			t.Fatalf("after batch %d: %d entries cached, want <= 1", i, len(pf.cache))
		}
		pf.mu.Unlock()
	}
	if ps := pf.Stats(); ps.Misses != 0 {
		t.Errorf("one-at-a-time window still missed %d times: %+v", ps.Misses, ps)
	}
}

// Resident batches bypass the prefetcher counters entirely.
func TestPrefetcherResidentBypass(t *testing.T) {
	st, err := NewStore(t.TempDir(), "TOC", 1<<30) // everything resident
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	x := matrix.NewDense(2, 3)
	x.Set(0, 0, 1)
	for b := 0; b < 4; b++ {
		if err := st.Add(x, []float64{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	pf := NewPrefetcher(st, 2, 1)
	defer pf.Close()
	for i := 0; i < 4; i++ {
		pf.Batch(i)
	}
	if ps := pf.Stats(); ps.Hits != 0 || ps.Misses != 0 || ps.Prefetched != 0 {
		t.Errorf("resident reads touched the prefetcher: %+v", ps)
	}
}

// Request schedules a background read outside the predicted order; the
// batch must then be served as a hit, and requests for resident, cached
// or out-of-range indices must be harmless no-ops.
func TestPrefetcherRequestExplicitFetch(t *testing.T) {
	const n = 12
	st := spilledStore(t, n)
	pf := NewPrefetcher(st, 2, 2) // window covers 1..2 only
	defer pf.Close()

	// Far outside the primed window: a plain access would be a miss.
	pf.Request(n - 1)
	// No-ops: duplicate of an in-flight entry, and out-of-range indices.
	pf.Request(n - 1)
	pf.Request(-1)
	pf.Request(n)

	c, _ := pf.Batch(n - 1)
	want, _ := st.Batch(n - 1)
	if !c.Decode().Equal(want.Decode()) {
		t.Fatalf("requested batch contents differ")
	}
	ps := pf.Stats()
	if ps.Misses != 0 || ps.Hits != 1 {
		t.Errorf("explicitly requested batch was not a hit: %+v", ps)
	}
}

// Close must be safe while reads are still in flight: queued background
// reads drain, consumers blocked on an in-flight entry land, and a
// concurrent scheduling path (Batch, Request) never sends on the closed
// job queues.
func TestPrefetcherCloseWithReadsInFlight(t *testing.T) {
	const n = 16
	st := spilledStore(t, n)
	// Slow reads so the window is still in flight when Close races in.
	st.SetReadBandwidth(200 << 10)
	pf := NewPrefetcher(st, 8, 4)

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Consumers racing Close: some will catch in-flight entries and wait
	// on them; all must return.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c, _ := pf.Batch(i)
			if c == nil {
				t.Errorf("batch %d returned nil", i)
			}
		}(i)
	}
	// Requesters racing Close: after close they must be silent no-ops.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			pf.Request(i)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := pf.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	// Idempotent, and still safe after everything drained.
	if err := pf.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	pf.Request(0)
}
