package storage

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"toc/internal/matrix"
)

// buildPersistedStore ingests n batches into a sharded store under a
// budget that spills some of them, writes the manifest, and returns the
// store, the manifest path, and the dense originals for comparison.
func buildPersistedStore(t *testing.T, n int, budget int64) (*Store, string, []*matrix.Dense, [][]float64) {
	t.Helper()
	dir := t.TempDir()
	xs, ys := testBatches(t, n, 20, 12)
	s, err := NewStore(dir, "TOC", budget, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	manifest := filepath.Join(dir, "store.manifest")
	if err := s.WriteManifest(manifest); err != nil {
		t.Fatal(err)
	}
	return s, manifest, xs, ys
}

// assertStoreMatches checks that every batch a store serves carries the
// original compressed bytes (Serialize is the codec's wire image, so
// byte equality means the recovered batch is exactly what was stored)
// and the original labels.
func assertStoreMatches(t *testing.T, s *Store, xs []*matrix.Dense, ys [][]float64) {
	t.Helper()
	if s.NumBatches() != len(xs) {
		t.Fatalf("store has %d batches, want %d", s.NumBatches(), len(xs))
	}
	for i := range xs {
		c, y := s.Batch(i)
		if len(y) != len(ys[i]) {
			t.Fatalf("batch %d: %d labels, want %d", i, len(y), len(ys[i]))
		}
		for r, v := range ys[i] {
			if y[r] != v {
				t.Fatalf("batch %d label %d = %v, want %v", i, r, y[r], v)
			}
		}
		want := s.Encode(xs[i]).Serialize()
		got := c.Serialize()
		if len(got) != len(want) {
			t.Fatalf("batch %d serialized to %d bytes, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("batch %d differs from original at byte %d", i, j)
			}
		}
	}
}

func TestManifestCloseReopenRoundTrip(t *testing.T) {
	s, manifest, xs, ys := buildPersistedStore(t, 8, 1200)
	before := s.Stats()
	if before.SpilledBatches == 0 || before.ResidentBatches == 0 {
		t.Fatalf("test store must mix resident and spilled batches, got %+v", before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Stats()
	if after.ResidentBatches != before.ResidentBatches || after.SpilledBatches != before.SpilledBatches ||
		after.ResidentBytes != before.ResidentBytes || after.SpilledBytes != before.SpilledBytes ||
		after.Evictions != before.Evictions {
		t.Fatalf("recovered layout %+v differs from persisted %+v", after, before)
	}
	for i := 0; i < r.NumBatches(); i++ {
		if r.Resident(i) != s.Resident(i) {
			t.Fatalf("batch %d residency changed across reopen", i)
		}
	}
	assertStoreMatches(t, r, xs, ys)
}

func TestManifestKeepsFilesAcrossClose(t *testing.T) {
	s, manifest, _, _ := buildPersistedStore(t, 6, 2000)
	dir := filepath.Dir(manifest)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var spillFiles int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toc-spill-") {
			spillFiles++
		}
	}
	if spillFiles == 0 {
		t.Fatal("Close removed the shard files of a persisted store")
	}
	// A second reopen+close cycle must also keep them.
	r, err := OpenStore(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(manifest); err != nil {
		t.Fatalf("second reopen failed: %v", err)
	}
}

func TestOpenStoreRejectsTruncatedShard(t *testing.T) {
	s, manifest, _, _ := buildPersistedStore(t, 8, 1500)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate one shard file below its manifest write position.
	dir := filepath.Dir(manifest)
	entries, _ := os.ReadDir(dir)
	var truncated bool
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toc-spill-") {
			p := filepath.Join(dir, e.Name())
			fi, _ := os.Stat(p)
			if err := os.Truncate(p, fi.Size()-1); err != nil {
				t.Fatal(err)
			}
			truncated = true
			break
		}
	}
	if !truncated {
		t.Fatal("no shard file found to truncate")
	}
	if _, err := OpenStore(manifest); err == nil {
		t.Fatal("OpenStore accepted a truncated shard file")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want a truncation error, got: %v", err)
	}
}

func TestOpenStoreRejectsBitFlippedShard(t *testing.T) {
	s, manifest, _, _ := buildPersistedStore(t, 8, 1500)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(manifest)
	entries, _ := os.ReadDir(dir)
	var flipped bool
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toc-spill-") {
			p := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				continue
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no shard file found to corrupt")
	}
	if _, err := OpenStore(manifest); err == nil {
		t.Fatal("OpenStore accepted a bit-flipped shard file")
	} else if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("want a CRC error, got: %v", err)
	}
}

func TestOpenStoreRejectsCorruptManifest(t *testing.T) {
	s, manifest, _, _ := buildPersistedStore(t, 4, 1500)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b }, // bit flip
		func(b []byte) []byte { return b[:len(b)-3] },           // truncation
		func(b []byte) []byte { copy(b[:4], "NOPE"); return b }, // wrong magic
		func(b []byte) []byte { return nil },                    // empty
	} {
		bad := mutate(append([]byte(nil), img...))
		if err := os.WriteFile(manifest, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(manifest); err == nil {
			t.Fatal("OpenStore accepted a corrupt manifest")
		}
	}
}

func TestBatchReadVerifiesSpanCRC(t *testing.T) {
	s, manifest, _, _ := buildPersistedStore(t, 8, 1500)
	defer s.Close()
	_ = manifest
	// Find a spilled batch and flip one byte of its span on disk; the
	// next Batch read must panic loudly rather than decode bad bytes.
	var victim = -1
	for i := 0; i < s.NumBatches(); i++ {
		if !s.Resident(i) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no spilled batch")
	}
	sp := s.spans[victim]
	sh := s.shards[sp.shard]
	buf := make([]byte, 1)
	if _, err := sh.file.ReadAt(buf, sp.off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x04
	if _, err := sh.file.WriteAt(buf, sp.off); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Batch served a corrupt span without panicking")
		}
		// The panic value is the typed permanent-read failure, with the
		// CRC mismatch as its cause after the retry loop re-read the
		// same rotten bytes every attempt.
		re, ok := r.(*ReadError)
		if !ok {
			t.Fatalf("want a *ReadError panic, got %T: %v", r, r)
		}
		if re.Batch != victim {
			t.Fatalf("ReadError.Batch = %d, want %d", re.Batch, victim)
		}
		if !strings.Contains(re.Error(), "CRC") {
			t.Fatalf("want a CRC cause, got: %v", re)
		}
	}()
	s.Batch(victim)
}

func TestManifestPreservesLabelsBitwise(t *testing.T) {
	s, manifest, _, ys := buildPersistedStore(t, 5, 2000)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := range ys {
		_, y := r.Batch(i)
		for j := range y {
			if math.Float64bits(y[j]) != math.Float64bits(ys[i][j]) {
				t.Fatalf("batch %d label %d not bitwise identical", i, j)
			}
		}
	}
}
