// Package storage provides the memory-budgeted mini-batch store that
// reproduces the paper's out-of-core regime (Figure 1A/1D, Figure 9,
// Tables 6–7): compressed mini-batches are kept in memory until a budget
// is exhausted; the rest spill to disk and are re-read — real file IO
// plus wire decoding — every time an epoch visits them.
//
// Which schemes fit inside the budget is exactly what separates the
// paper's fast and slow configurations: at 15 GB RAM only TOC, Gzip and
// Snappy kept Imagenet25m resident, and of those only TOC executes matrix
// operations without decompression.
//
// The spill side is sharded: batches spread over N spill files
// (WithShards), optionally across N directories modeling N devices
// (WithShardDirs), with placement balancing bytes across shards. Which
// batches stay resident is a pluggable EvictionPolicy (WithEviction), and
// the simulated disk supports two bandwidth models (WithBandwidthModel):
// the per-request throttle whose aggregate scales with queue depth, and a
// shared token bucket whose aggregate is capped per device.
package storage

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"toc/internal/faultpoint"
	"toc/internal/formats"
	"toc/internal/matrix"
)

// spanTable is the CRC-32C polynomial table guarding every spilled
// span; the same polynomial the checkpoint and manifest formats use.
var spanTable = crc32.MakeTable(crc32.Castagnoli)

// Stats describes a store's layout and accumulated IO activity.
type Stats struct {
	// ResidentBatches and SpilledBatches partition the stored batches.
	ResidentBatches, SpilledBatches int
	// ResidentBytes is the compressed size held in memory;
	// SpilledBytes is the compressed size on disk.
	ResidentBytes, SpilledBytes int64
	// Evictions counts resident batches displaced to disk by the
	// eviction policy during ingest (they are also in SpilledBatches).
	Evictions int
	// Reads counts spilled-batch loads; BytesRead totals their sizes.
	Reads     int64
	BytesRead int64
	// ReadTime accumulates wall-clock time spent reading and decoding
	// spilled batches — the paper's "IO time" of Figure 1A. It includes
	// retry backoff: a flaky disk's stalls are IO time too.
	ReadTime time.Duration
	// Retries counts spilled-read attempts beyond each read's first —
	// transient faults absorbed by the retry loop.
	Retries int64
	// FailedReads counts reads that exhausted the retry policy and
	// surfaced a ReadError.
	FailedReads int64
}

// span locates one spilled batch inside a shard's spill file. crc is
// the CRC-32C of the serialized bytes, computed at spill time and
// verified on every read: a flipped bit on disk fails loudly instead of
// feeding the wire decoder silently wrong data.
type span struct {
	shard  int
	off    int64
	length int64
	crc    uint32
}

// shard is one spill file. In the SharedBucket model it services one
// request at a time (rmu is the arm); reads on distinct shards overlap.
type shard struct {
	dir   string
	dev   *device
	file  *os.File // created lazily on the shard's first spill
	wpos  int64
	bytes int64
	rmu   sync.Mutex
}

// Store holds a dataset's compressed mini-batches under a memory budget.
// It implements the ml.BatchSource contract. Once loading is done (no more
// Add calls), Batch is safe to call from multiple goroutines — the layout
// slices are then read-only, file reads use ReadAt, and the IO counters
// and disk-model configuration are mutex-guarded — which is what the
// engine's data-parallel workers and the async Prefetcher rely on.
type Store struct {
	method string
	codec  formats.Codec
	budget int64

	shards  []*shard
	devices []*device
	policy  EvictionPolicy

	resident []formats.CompressedMatrix // nil for spilled batches
	labels   [][]float64
	spans    []span  // zero length for resident batches
	sizes    []int64 // compressed size per batch (policy input)

	// resSpans holds the backup spans WriteManifest appends for
	// resident batches so a restarted process can rebuild them from the
	// shard files. They are accounted separately from the spill spans —
	// a resident batch's backup is crash insurance, not a spill, so it
	// never shows up in the spill stats or the placement balance.
	resSpans []span

	// persist marks a store whose shard files back a written manifest
	// (WriteManifest, or a store reopened by OpenStore): Close keeps the
	// files on disk so a restarted process can recover from them.
	persist bool

	// retry bounds the spilled-read retry loop; immutable after
	// construction.
	retry RetryPolicy

	// mu guards the stats and the disk-model configuration (bandwidth,
	// model, latency) under concurrent Batch calls; SetReadBandwidth et
	// al. may be called while readers are in flight.
	mu sync.Mutex
	//toc:guardedby mu
	bandwidth int64 // simulated read bandwidth in bytes/s; 0 = unthrottled
	//toc:guardedby mu
	model BandwidthModel
	//toc:guardedby mu
	latency time.Duration // simulated per-request access (seek) latency
	//toc:guardedby mu
	stats Stats
	//toc:guardedby mu
	jitter *rand.Rand // seeded backoff-jitter stream (see RetryPolicy)
}

// storeConfig collects NewStore options.
type storeConfig struct {
	shards    int
	dirs      []string
	model     BandwidthModel
	bandwidth int64
	latency   time.Duration
	policy    EvictionPolicy
	retry     RetryPolicy
}

// Option configures a Store at construction.
type Option func(*storeConfig)

// WithShards spreads the spill across n files; placement balances bytes
// across them and the Prefetcher reads distinct shards concurrently.
// The default (n <= 0) is one shard per WithShardDirs directory, or a
// single file — the historical layout. An explicit count wins over the
// directory count.
func WithShards(n int) Option { return func(c *storeConfig) { c.shards = n } }

// WithShardDirs places the spill shards round-robin across the given
// directories, modeling distinct devices: in the SharedBucket model each
// directory gets its own token bucket, so total bandwidth is the
// configured rate times the number of distinct directories in use.
// Without WithShards the shard count defaults to len(dirs).
func WithShardDirs(dirs ...string) Option {
	return func(c *storeConfig) { c.dirs = append([]string(nil), dirs...) }
}

// WithBandwidthModel selects how SetReadBandwidth is enforced: PerRequest
// (default, aggregate scales with queue depth) or SharedBucket (aggregate
// capped per device).
func WithBandwidthModel(m BandwidthModel) Option {
	return func(c *storeConfig) { c.model = m }
}

// WithReadBandwidth sets the simulated read bandwidth at construction
// (equivalent to SetReadBandwidth, but racing nothing by construction).
func WithReadBandwidth(bytesPerSec int64) Option {
	return func(c *storeConfig) { c.bandwidth = bytesPerSec }
}

// WithAccessLatency adds a fixed per-request latency to every spilled
// read — the seek/rotation cost of a spindle, or a cloud store's
// per-request overhead. In the SharedBucket model it serializes within a
// shard and overlaps across shards; in the PerRequest model it overlaps
// across concurrent requests like the bandwidth sleep does.
func WithAccessLatency(d time.Duration) Option {
	return func(c *storeConfig) { c.latency = d }
}

// WithEviction selects the residency policy (default FirstFit).
func WithEviction(p EvictionPolicy) Option {
	return func(c *storeConfig) { c.policy = p }
}

// NewStore creates a store for the given scheme. budgetBytes bounds the
// compressed bytes kept resident; batches beyond it spill to temp files
// under dir ("" means the OS temp dir). A budget <= 0 spills everything.
//
// Spill files are created lazily on each shard's first spill, so a store
// whose batches all fit the budget holds no file handle and leaks nothing
// even if Close is never called.
func NewStore(dir, method string, budgetBytes int64, opts ...Option) (*Store, error) {
	codec, ok := formats.GetCodec(method)
	if !ok {
		return nil, fmt.Errorf("storage: unknown method %q", method)
	}
	cfg := storeConfig{policy: FirstFit(), retry: DefaultRetryPolicy()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.retry.Attempts < 1 {
		cfg.retry.Attempts = 1
	}
	if len(cfg.dirs) == 0 {
		cfg.dirs = []string{dir}
	}
	// An explicit WithShards count wins (shards round-robin over the
	// dirs); otherwise one shard per directory, defaulting to one.
	if cfg.shards <= 0 {
		cfg.shards = len(cfg.dirs)
	}
	if cfg.policy == nil {
		cfg.policy = FirstFit()
	}
	s := &Store{
		method:    method,
		codec:     codec,
		budget:    budgetBytes,
		policy:    cfg.policy,
		bandwidth: cfg.bandwidth,
		model:     cfg.model,
		latency:   cfg.latency,
		retry:     cfg.retry,
		jitter:    rand.New(rand.NewSource(cfg.retry.Seed)),
	}
	// Device identity is the cleaned directory path: shards in the same
	// directory (however spelled) share one token bucket.
	byDir := map[string]*device{}
	for i := 0; i < cfg.shards; i++ {
		d := cfg.dirs[i%len(cfg.dirs)]
		if d != "" {
			d = filepath.Clean(d)
		}
		dev, ok := byDir[d]
		if !ok {
			dev = &device{dir: d}
			byDir[d] = dev
			s.devices = append(s.devices, dev)
		}
		s.shards = append(s.shards, &shard{dir: d, dev: dev})
	}
	return s, nil
}

// Method returns the scheme name this store encodes with.
func (s *Store) Method() string { return s.method }

// Shards returns the number of spill shards.
func (s *Store) Shards() int { return len(s.shards) }

// ShardBytes returns the spilled bytes placed on each shard — the
// balance the placement maintains. Call after ingest.
func (s *Store) ShardBytes() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.bytes
	}
	return out
}

// EvictionPolicyName returns the active residency policy's name.
func (s *Store) EvictionPolicyName() string { return s.policy.Name() }

// SetUpcomingOrder announces the visit order of the next training epoch
// to an order-aware eviction policy (AccessOrder) — the same permutation
// the engine hands the Prefetcher via SetOrder/SetNextOrder. It must be
// called before the Add calls whose admission it should steer; policies
// that do not rank by access order ignore it.
func (s *Store) SetUpcomingOrder(order []int) {
	if oa, ok := s.policy.(OrderAware); ok {
		oa.SetUpcomingOrder(order)
	}
}

// SetReadBandwidth simulates a storage device of the given read bandwidth
// (bytes per second). The paper's large datasets live on actual cloud
// disks (~100-200 MB/s); at laptop scale the OS page cache would
// otherwise hide the IO cost this repository needs to reproduce. Zero
// disables throttling. How the bandwidth is enforced is the store's
// BandwidthModel: per-request (aggregate scales with queue depth) or a
// shared token bucket (aggregate capped per device).
//
// Safe to call concurrently with Batch: configuration is mutex-guarded.
func (s *Store) SetReadBandwidth(bytesPerSec int64) {
	s.mu.Lock()
	s.bandwidth = bytesPerSec
	s.mu.Unlock()
}

// SetBandwidthModel switches how the simulated bandwidth is enforced.
// Safe to call concurrently with Batch.
func (s *Store) SetBandwidthModel(m BandwidthModel) {
	s.mu.Lock()
	s.model = m
	s.mu.Unlock()
}

// SetAccessLatency sets the simulated per-request access latency. Safe to
// call concurrently with Batch.
func (s *Store) SetAccessLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// Encode compresses a dense mini-batch with this store's codec; it is the
// formats.Encoder the engine's parallel ingest shards across workers.
func (s *Store) Encode(x *matrix.Dense) formats.CompressedMatrix { return s.codec.Encode(x) }

// Add encodes a dense mini-batch and places it in memory or on disk
// according to the remaining budget and the eviction policy.
func (s *Store) Add(x *matrix.Dense, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("storage: batch has %d rows but %d labels", x.Rows(), len(y))
	}
	return s.AddCompressed(s.codec.Encode(x), y)
}

// AddCompressed places an already-encoded mini-batch (produced by this
// store's Encode, possibly on another goroutine) in memory or on disk
// according to the remaining budget and the eviction policy; admitting it
// may displace lower-value residents to disk. Add calls must not race
// with Batch.
func (s *Store) AddCompressed(c formats.CompressedMatrix, y []float64) error {
	if c.Rows() != len(y) {
		return fmt.Errorf("storage: batch has %d rows but %d labels", c.Rows(), len(y))
	}
	idx := len(s.resident)
	size := int64(c.CompressedSize())
	admit, err := s.admit(idx, size)
	if err != nil {
		return err
	}
	if admit {
		s.labels = append(s.labels, append([]float64(nil), y...))
		s.resident = append(s.resident, c)
		s.spans = append(s.spans, span{})
		s.sizes = append(s.sizes, size)
		s.mu.Lock()
		s.stats.ResidentBatches++
		s.stats.ResidentBytes += size
		s.mu.Unlock()
		return nil
	}
	sp, err := s.spill(c.Serialize())
	if err != nil {
		return err
	}
	s.labels = append(s.labels, append([]float64(nil), y...))
	s.resident = append(s.resident, nil)
	s.spans = append(s.spans, sp)
	s.sizes = append(s.sizes, size)
	s.mu.Lock()
	s.stats.SpilledBatches++
	s.stats.SpilledBytes += sp.length
	s.mu.Unlock()
	return nil
}

// admit decides whether the incoming batch (idx, size) stays resident,
// evicting lower-value residents to disk if that frees enough budget.
func (s *Store) admit(idx int, size int64) (bool, error) {
	// Snapshot the resident-byte level once; it cannot change until the
	// evictions this call itself performs, which happen after need is
	// computed from the same snapshot.
	s.mu.Lock()
	residentBytes := s.stats.ResidentBytes
	s.mu.Unlock()
	if residentBytes+size <= s.budget {
		return true, nil
	}
	// First-fit can never evict (the incoming batch always scores lowest),
	// so skip the candidate scan and keep the historical O(1) spill path.
	if _, ok := s.policy.(firstFit); ok {
		return false, nil
	}
	vNew := s.policy.Value(idx, size)
	type cand struct {
		i    int
		size int64
		v    float64
	}
	var cands []cand
	for i, c := range s.resident {
		if c == nil {
			continue
		}
		if v := s.policy.Value(i, s.sizes[i]); v < vNew {
			cands = append(cands, cand{i: i, size: s.sizes[i], v: v})
		}
	}
	// Cheapest victims first; ties broken toward evicting the later
	// arrival, so equal-value layouts stay first-fit-stable.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].v != cands[b].v {
			return cands[a].v < cands[b].v
		}
		return cands[a].i > cands[b].i
	})
	need := residentBytes + size - s.budget
	var freed int64
	k := 0
	for k < len(cands) && freed < need {
		freed += cands[k].size
		k++
	}
	if freed < need {
		return false, nil
	}
	for _, v := range cands[:k] {
		if err := s.evict(v.i); err != nil {
			return false, err
		}
	}
	return true, nil
}

// evict moves resident batch i to disk.
func (s *Store) evict(i int) error {
	sp, err := s.spill(s.resident[i].Serialize())
	if err != nil {
		return fmt.Errorf("storage: evict batch %d: %w", i, err)
	}
	s.mu.Lock()
	s.stats.ResidentBatches--
	s.stats.ResidentBytes -= s.sizes[i]
	s.stats.SpilledBatches++
	s.stats.SpilledBytes += sp.length
	s.stats.Evictions++
	s.mu.Unlock()
	s.resident[i] = nil
	s.spans[i] = sp
	return nil
}

// spill writes one serialized batch to the least-loaded shard (fewest
// spilled bytes; ties to the lowest index), creating its file lazily.
func (s *Store) spill(img []byte) (span, error) {
	best := 0
	for i, sh := range s.shards {
		if sh.bytes < s.shards[best].bytes {
			best = i
		}
	}
	sp, err := s.writeSpan(best, img)
	if err != nil {
		return span{}, err
	}
	s.shards[best].bytes += sp.length
	return sp, nil
}

// writeSpan appends one serialized batch image to shard idx's file
// (created lazily) and returns its CRC-tagged span. It advances wpos
// but not the spill-balance accounting — spill() charges that, while
// WriteManifest's resident backups deliberately do not.
//
// When the storage.spill.mid faultpoint is armed the write is split in
// two so an injected crash lands between the halves, leaving a torn
// span on disk the way a real mid-write kill would.
func (s *Store) writeSpan(idx int, img []byte) (span, error) {
	sh := s.shards[idx]
	if sh.file == nil {
		f, err := os.CreateTemp(sh.dir, "toc-spill-"+filepath.Base(s.method)+"-*.bin")
		if err != nil {
			return span{}, fmt.Errorf("storage: create spill file: %w", err)
		}
		sh.file = f
	}
	if faultpoint.Armed("storage.spill.mid") && len(img) > 1 {
		half := len(img) / 2
		if _, err := sh.file.WriteAt(img[:half], sh.wpos); err != nil {
			return span{}, fmt.Errorf("storage: spill write: %w", err)
		}
		faultpoint.Hit("storage.spill.mid")
		if _, err := sh.file.WriteAt(img[half:], sh.wpos+int64(half)); err != nil {
			return span{}, fmt.Errorf("storage: spill write: %w", err)
		}
	} else if _, err := sh.file.WriteAt(img, sh.wpos); err != nil {
		return span{}, fmt.Errorf("storage: spill write: %w", err)
	}
	sp := span{shard: idx, off: sh.wpos, length: int64(len(img)), crc: crc32.Checksum(img, spanTable)}
	sh.wpos += int64(len(img))
	return sp, nil
}

// NumBatches returns the number of stored mini-batches.
func (s *Store) NumBatches() int { return len(s.resident) }

// Resident reports whether batch i is held in memory (a Batch call for it
// incurs no IO). The Prefetcher uses this to schedule only spilled reads.
func (s *Store) Resident(i int) bool { return s.resident[i] != nil }

// ShardOf returns the spill shard holding batch i, or -1 if it is
// resident. The Prefetcher routes its per-shard readers with it.
func (s *Store) ShardOf(i int) int {
	if s.resident[i] != nil {
		return -1
	}
	return s.spans[i].shard
}

// Batch returns mini-batch i, reading and decoding it from its spill
// shard if it is not resident. A read that still fails after the
// store's retry policy is exhausted panics with the typed *ReadError —
// the historical loud-failure contract for callers that treat disk
// corruption as a programming/environment error. Use TryBatch to
// observe the failure as an error instead. Safe for concurrent use once
// loading is done.
func (s *Store) Batch(i int) (formats.CompressedMatrix, []float64) {
	c, y, err := s.batch(i, nil)
	if err != nil {
		panic(err)
	}
	return c, y
}

// TryBatch is Batch with the failure surfaced as a typed error: a read
// that exhausts the retry policy returns a *ReadError (wrapping the
// last attempt's cause) instead of panicking.
func (s *Store) TryBatch(i int) (formats.CompressedMatrix, []float64, error) {
	return s.batch(i, nil)
}

// batch loads mini-batch i, retrying transient spilled-read failures
// under the store's RetryPolicy with seeded exponential backoff. cancel
// (may be nil) interrupts a backoff sleep — the Prefetcher closes it so
// its readers do not serve out a long retry schedule after Close.
func (s *Store) batch(i int, cancel <-chan struct{}) (formats.CompressedMatrix, []float64, error) {
	if c := s.resident[i]; c != nil {
		return c, s.labels[i], nil
	}
	start := time.Now()
	sp := s.spans[i]
	var last error
	attempts := 0
	for attempt := 1; attempt <= s.retry.Attempts; attempt++ {
		attempts = attempt
		c, err := s.readSpilled(i)
		if err == nil {
			s.mu.Lock()
			s.stats.Reads++
			s.stats.BytesRead += sp.length
			s.stats.ReadTime += time.Since(start)
			s.mu.Unlock()
			return c, s.labels[i], nil
		}
		last = err
		if attempt == s.retry.Attempts {
			break
		}
		s.mu.Lock()
		s.stats.Retries++
		d := s.backoffLocked(attempt)
		s.mu.Unlock()
		if !sleepOrCancel(d, cancel) {
			last = fmt.Errorf("%w while retrying: %w", ErrReadCanceled, last)
			break
		}
	}
	s.mu.Lock()
	s.stats.FailedReads++
	s.stats.ReadTime += time.Since(start)
	s.mu.Unlock()
	return nil, nil, &ReadError{Batch: i, Shard: sp.shard, Attempts: attempts, Err: last}
}

// readSpilled performs one attempt at reading and decoding spilled
// batch i under the configured disk model. Any failure — a short or
// errored ReadAt, a CRC mismatch, a decode error, or an armed
// storage.read.* faultpoint — is returned for the retry loop in batch
// to absorb or surface.
func (s *Store) readSpilled(i int) (formats.CompressedMatrix, error) {
	s.mu.Lock()
	bw, model, latency := s.bandwidth, s.model, s.latency
	s.mu.Unlock()
	start := time.Now()
	sp := s.spans[i]
	sh := s.shards[sp.shard]
	buf := make([]byte, sp.length)
	readAt := func() error {
		// storage.read.error models a transient device-level read fault
		// (an EIO a re-read clears). It sits in front of the real read
		// so the retry loop sees exactly what a flaky disk produces.
		if err := faultpoint.Err("storage.read.error"); err != nil {
			return fmt.Errorf("storage: read spilled batch %d: %w", i, err)
		}
		if _, err := sh.file.ReadAt(buf, sp.off); err != nil {
			return fmt.Errorf("storage: read spilled batch %d: %w", i, err)
		}
		return nil
	}
	if model == SharedBucket {
		// One request at a time per shard (the arm); the access latency
		// and the bucket-paced transfer both keep the shard busy, but
		// distinct shards proceed concurrently under the device's shared
		// aggregate cap.
		sh.rmu.Lock()
		if latency > 0 {
			time.Sleep(latency)
		}
		if err := readAt(); err != nil {
			sh.rmu.Unlock()
			return nil, err
		}
		if bw > 0 {
			if wait := sh.dev.bucket.reserve(sp.length, bw); wait > 0 {
				time.Sleep(wait)
			}
		}
		sh.rmu.Unlock()
	} else {
		// Per-request throttle: each read sleeps to its own deadline, so
		// concurrent requests overlap their sleeps and aggregate
		// throughput scales with queue depth.
		if err := readAt(); err != nil {
			return nil, err
		}
		want := latency
		if bw > 0 {
			want += time.Duration(float64(sp.length) / float64(bw) * float64(time.Second))
		}
		if spent := time.Since(start); want > spent {
			time.Sleep(want - spent)
		}
	}
	got := crc32.Checksum(buf, spanTable)
	if err := faultpoint.Err("storage.read.crc"); err != nil {
		// Simulated bit flip: corrupt the computed checksum so the real
		// CRC rejection below fires, exercising the same path a torn or
		// rotted span takes.
		got = ^got
	}
	if got != sp.crc {
		return nil, fmt.Errorf("storage: spilled batch %d failed CRC (stored %08x, read %08x): corrupt shard file", i, sp.crc, got)
	}
	c, err := s.codec.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: decode spilled batch %d: %w", i, err)
	}
	return c, nil
}

// Stats returns a snapshot of layout and IO counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TotalCompressedBytes returns resident + spilled compressed size.
func (s *Store) TotalCompressedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.ResidentBytes + s.stats.SpilledBytes
}

// Spilled reports whether any batch lives on disk.
func (s *Store) Spilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.SpilledBatches > 0
}

// Close closes every shard's spill file; a fully-resident store has
// none and closes trivially. Stores without a written manifest remove
// their files (spill data is worthless without the layout); once
// WriteManifest has persisted the layout — or the store was reopened by
// OpenStore — the files are kept so a restarted process can recover.
func (s *Store) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if sh.file == nil {
			continue
		}
		name := sh.file.Name()
		if err := sh.file.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if !s.persist {
			if err := os.Remove(name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.file = nil
	}
	return firstErr
}
