// Package storage provides the memory-budgeted mini-batch store that
// reproduces the paper's out-of-core regime (Figure 1A/1D, Figure 9,
// Tables 6–7): compressed mini-batches are kept in memory until a budget
// is exhausted; the rest spill to a file on disk and are re-read — real
// file IO plus wire decoding — every time an epoch visits them.
//
// Which schemes fit inside the budget is exactly what separates the
// paper's fast and slow configurations: at 15 GB RAM only TOC, Gzip and
// Snappy kept Imagenet25m resident, and of those only TOC executes matrix
// operations without decompression.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// Stats describes a store's layout and accumulated IO activity.
type Stats struct {
	// ResidentBatches and SpilledBatches partition the stored batches.
	ResidentBatches, SpilledBatches int
	// ResidentBytes is the compressed size held in memory;
	// SpilledBytes is the compressed size on disk.
	ResidentBytes, SpilledBytes int64
	// Reads counts spilled-batch loads; BytesRead totals their sizes.
	Reads     int64
	BytesRead int64
	// ReadTime accumulates wall-clock time spent reading and decoding
	// spilled batches — the paper's "IO time" of Figure 1A.
	ReadTime time.Duration
}

// span locates one spilled batch inside the spill file.
type span struct {
	off    int64
	length int64
}

// Store holds a dataset's compressed mini-batches under a memory budget.
// It implements the ml.BatchSource contract. Once loading is done (no more
// Add calls), Batch is safe to call from multiple goroutines — the layout
// slices are then read-only, file reads use ReadAt, and the IO counters
// are mutex-guarded — which is what the engine's data-parallel workers and
// the async Prefetcher rely on.
type Store struct {
	method string
	codec  formats.Codec
	budget int64
	dir    string

	resident []formats.CompressedMatrix // nil for spilled batches
	labels   [][]float64
	spans    []span // zero length for resident batches

	file      *os.File // spill backing file; created lazily on first spill
	wpos      int64
	bandwidth int64 // simulated read bandwidth in bytes/s; 0 = unthrottled

	mu    sync.Mutex // guards stats under concurrent Batch calls
	stats Stats
}

// NewStore creates a store for the given scheme. budgetBytes bounds the
// compressed bytes kept resident; batches beyond it spill to a temp file
// under dir (""  means the OS temp dir). A budget <= 0 spills everything.
//
// The spill file is created lazily on the first spill, so a store whose
// batches all fit the budget holds no file handle and leaks nothing even
// if Close is never called.
func NewStore(dir, method string, budgetBytes int64) (*Store, error) {
	codec, ok := formats.GetCodec(method)
	if !ok {
		return nil, fmt.Errorf("storage: unknown method %q", method)
	}
	return &Store{method: method, codec: codec, budget: budgetBytes, dir: dir}, nil
}

// Method returns the scheme name this store encodes with.
func (s *Store) Method() string { return s.method }

// SetReadBandwidth simulates a storage device of the given read bandwidth
// (bytes per second) by sleeping proportionally on every spilled read.
// The paper's large datasets live on actual cloud disks (~100-200 MB/s);
// at laptop scale the OS page cache would otherwise hide the IO cost this
// repository needs to reproduce. Zero disables throttling.
//
// The throttle is per request, not per device: N concurrent reads overlap
// their sleeps and see N× the configured bandwidth in aggregate, modeling
// a device whose throughput scales with queue depth (cloud block stores,
// SSDs) rather than a single saturated spindle. Interpret multi-reader
// prefetch speedups accordingly.
func (s *Store) SetReadBandwidth(bytesPerSec int64) { s.bandwidth = bytesPerSec }

// Encode compresses a dense mini-batch with this store's codec; it is the
// formats.Encoder the engine's parallel ingest shards across workers.
func (s *Store) Encode(x *matrix.Dense) formats.CompressedMatrix { return s.codec.Encode(x) }

// Add encodes a dense mini-batch and places it in memory or on disk
// according to the remaining budget.
func (s *Store) Add(x *matrix.Dense, y []float64) error {
	if x.Rows() != len(y) {
		return fmt.Errorf("storage: batch has %d rows but %d labels", x.Rows(), len(y))
	}
	return s.AddCompressed(s.codec.Encode(x), y)
}

// AddCompressed places an already-encoded mini-batch (produced by this
// store's Encode, possibly on another goroutine) in memory or on disk
// according to the remaining budget. Add calls must not race with Batch.
func (s *Store) AddCompressed(c formats.CompressedMatrix, y []float64) error {
	if c.Rows() != len(y) {
		return fmt.Errorf("storage: batch has %d rows but %d labels", c.Rows(), len(y))
	}
	size := int64(c.CompressedSize())
	if s.stats.ResidentBytes+size <= s.budget {
		s.labels = append(s.labels, append([]float64(nil), y...))
		s.resident = append(s.resident, c)
		s.spans = append(s.spans, span{})
		s.stats.ResidentBatches++
		s.stats.ResidentBytes += size
		return nil
	}
	if s.file == nil {
		f, err := os.CreateTemp(s.dir, "toc-spill-"+filepath.Base(s.method)+"-*.bin")
		if err != nil {
			return fmt.Errorf("storage: create spill file: %w", err)
		}
		s.file = f
	}
	img := c.Serialize()
	if _, err := s.file.WriteAt(img, s.wpos); err != nil {
		return fmt.Errorf("storage: spill write: %w", err)
	}
	s.labels = append(s.labels, append([]float64(nil), y...))
	s.resident = append(s.resident, nil)
	s.spans = append(s.spans, span{off: s.wpos, length: int64(len(img))})
	s.wpos += int64(len(img))
	s.stats.SpilledBatches++
	s.stats.SpilledBytes += int64(len(img))
	return nil
}

// NumBatches returns the number of stored mini-batches.
func (s *Store) NumBatches() int { return len(s.resident) }

// Resident reports whether batch i is held in memory (a Batch call for it
// incurs no IO). The Prefetcher uses this to schedule only spilled reads.
func (s *Store) Resident(i int) bool { return s.resident[i] != nil }

// Batch returns mini-batch i, reading and decoding it from the spill file
// if it is not resident. Disk corruption is a programming/environment
// error and panics with context. Safe for concurrent use once loading is
// done.
func (s *Store) Batch(i int) (formats.CompressedMatrix, []float64) {
	if c := s.resident[i]; c != nil {
		return c, s.labels[i]
	}
	start := time.Now()
	sp := s.spans[i]
	buf := make([]byte, sp.length)
	if _, err := s.file.ReadAt(buf, sp.off); err != nil {
		panic(fmt.Sprintf("storage: read spilled batch %d: %v", i, err))
	}
	if s.bandwidth > 0 {
		want := time.Duration(float64(sp.length) / float64(s.bandwidth) * float64(time.Second))
		if spent := time.Since(start); want > spent {
			time.Sleep(want - spent)
		}
	}
	c, err := s.codec.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("storage: decode spilled batch %d: %v", i, err))
	}
	s.mu.Lock()
	s.stats.Reads++
	s.stats.BytesRead += sp.length
	s.stats.ReadTime += time.Since(start)
	s.mu.Unlock()
	return c, s.labels[i]
}

// Stats returns a snapshot of layout and IO counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TotalCompressedBytes returns resident + spilled compressed size.
func (s *Store) TotalCompressedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.ResidentBytes + s.stats.SpilledBytes
}

// Spilled reports whether any batch lives on disk.
func (s *Store) Spilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.SpilledBatches > 0
}

// Close removes the spill file; a fully-resident store has none and
// closes trivially.
func (s *Store) Close() error {
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	if err := s.file.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}
