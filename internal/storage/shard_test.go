package storage

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
)

// A 4-shard store must spread its spill across four files, keep the
// placement byte-balanced, and round-trip every batch.
func TestShardedSpillRoundTripAndBalance(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, "TOC", 1, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	xs, ys := testBatches(t, 16, 20, 10)
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 4 {
		t.Fatalf("expected 4 spill files, found %d", len(entries))
	}
	var maxBatch, minShard, maxShard int64
	for i := range xs {
		if l := s.spans[i].length; l > maxBatch {
			maxBatch = l
		}
	}
	for i, b := range s.ShardBytes() {
		if b == 0 {
			t.Fatalf("shard %d received no bytes", i)
		}
		if minShard == 0 || b < minShard {
			minShard = b
		}
		if b > maxShard {
			maxShard = b
		}
	}
	// Least-loaded placement keeps shards within one batch of each other.
	if maxShard-minShard > maxBatch {
		t.Fatalf("shard imbalance %d exceeds max batch size %d: %v",
			maxShard-minShard, maxBatch, s.ShardBytes())
	}
	for i := range xs {
		if got := s.ShardOf(i); got < 0 || got >= 4 {
			t.Fatalf("ShardOf(%d) = %d", i, got)
		}
		c, y := s.Batch(i)
		if !c.Decode().Equal(xs[i]) {
			t.Fatalf("batch %d content mismatch across shards", i)
		}
		for k := range y {
			if y[k] != ys[i][k] {
				t.Fatalf("batch %d labels mismatch", i)
			}
		}
	}
}

// WithShardDirs places one spill file per directory — the N-device layout.
func TestShardDirsPlaceFilesPerDirectory(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	s, err := NewStore("", "TOC", 1, WithShardDirs(dirA, dirB))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Shards() != 2 {
		t.Fatalf("Shards() = %d, want len(dirs)", s.Shards())
	}
	xs, ys := testBatches(t, 6, 10, 8)
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, dir := range []string{dirA, dirB} {
		entries, _ := os.ReadDir(dir)
		if len(entries) != 1 {
			t.Fatalf("dir %s holds %d spill files, want 1", dir, len(entries))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{dirA, dirB} {
		if entries, _ := os.ReadDir(dir); len(entries) != 0 {
			t.Fatalf("Close left spill files in %s", dir)
		}
	}
}

// Training through a 4-shard spilled store must produce the same model as
// training fully in memory — sharding changes placement, never contents.
func TestShardedTrainingMatchesMemory(t *testing.T) {
	d, err := data.Generate("census", 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(10)

	ref, _ := ml.NewModel("lr", d.X.Cols(), d.Classes, 1, 1)
	memSrc := ml.NewMemorySource(d, 50, formats.MustGet("TOC"))
	ml.Train(ref, memSrc, 3, 0.2, nil)

	s, err := NewStore(t.TempDir(), "TOC", 0, WithShards(4), WithEviction(LargestFirst()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < d.NumBatches(50); i++ {
		x, y := d.Batch(i, 50)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	m2, _ := ml.NewModel("lr", d.X.Cols(), d.Classes, 1, 1)
	ml.Train(m2, s, 3, 0.2, nil)

	w1 := ref.(*ml.LogReg).W
	w2 := m2.(*ml.LogReg).W
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

// Hammer concurrent reads across shards while the disk-model knobs are
// being reconfigured — the SetReadBandwidth data race of the single-file
// store, now mutex-guarded and exercised under -race. Pinned to two Ps so
// goroutines genuinely interleave the way CI's GOMAXPROCS=2 pass expects.
func TestShardedConcurrentReadsAndConfigRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	s, err := NewStore(t.TempDir(), "TOC", 1, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 12
	for b := 0; b < n; b++ {
		x := matrix.NewDense(4, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				x.Set(i, j, float64((b+i*j)%5))
			}
		}
		if err := s.Add(x, []float64{0, 1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				i := (g + r*5) % n
				c, y := s.Batch(i)
				if c.Rows() != 4 || len(y) != 4 {
					t.Errorf("batch %d: rows=%d labels=%d", i, c.Rows(), len(y))
				}
			}
		}(g)
	}
	// Reconfigure the disk model while reads are in flight: all of these
	// are mutex-guarded against Batch's snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 24; r++ {
			s.SetReadBandwidth(int64(1<<20) * int64(r%3+1))
			s.SetBandwidthModel(BandwidthModel(r % 2))
			s.SetAccessLatency(time.Duration(r%2) * time.Microsecond)
			s.Stats()
		}
	}()
	wg.Wait()
	if got := s.Stats().Reads; got != 8*6 {
		t.Fatalf("Reads = %d, want %d", got, 8*6)
	}
}
