package storage

import (
	"errors"
	"testing"
	"time"

	"toc/internal/faultpoint"
	"toc/internal/testutil"
)

// retrySpilledStore builds a store whose batches all live on disk
// (budget 0) with the given retry policy.
func retrySpilledStore(t *testing.T, n int, retry RetryPolicy) *Store {
	t.Helper()
	xs, ys := testBatches(t, n, 20, 10)
	s, err := NewStore(t.TempDir(), "TOC", 0, WithReadRetry(retry))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRetryRecoversTransientReadError(t *testing.T) {
	defer faultpoint.Reset()
	s := retrySpilledStore(t, 4, RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: 10 * time.Microsecond, Seed: 1})
	// One-shot transient fault on the very first read attempt.
	faultpoint.ArmError("storage.read.error", 1)
	c, _, err := s.TryBatch(0)
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if c == nil {
		t.Fatal("nil batch after successful retry")
	}
	st := s.Stats()
	if st.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", st.Retries)
	}
	if st.FailedReads != 0 {
		t.Fatalf("FailedReads = %d, want 0", st.FailedReads)
	}
	if got := faultpoint.HitCount("storage.read.error"); got < 2 {
		t.Fatalf("fault point hit %d times, want >= 2 (original + retry)", got)
	}
}

func TestRetryRecoversOneShotCRCMismatch(t *testing.T) {
	defer faultpoint.Reset()
	s := retrySpilledStore(t, 4, RetryPolicy{Attempts: 3, Base: time.Microsecond, Seed: 1})
	faultpoint.ArmError("storage.read.crc", 1)
	if _, _, err := s.TryBatch(1); err != nil {
		t.Fatalf("one-shot CRC corruption not absorbed: %v", err)
	}
	if st := s.Stats(); st.Retries < 1 || st.FailedReads != 0 {
		t.Fatalf("stats = %+v, want >=1 retry and 0 failed reads", st)
	}
}

func TestPermanentFaultSurfacesTypedReadError(t *testing.T) {
	defer faultpoint.Reset()
	s := retrySpilledStore(t, 4, RetryPolicy{Attempts: 3, Base: time.Microsecond, Seed: 1})
	faultpoint.ArmErrorEvery("storage.read.error", 1, 1) // every attempt fails
	_, _, err := s.TryBatch(2)
	if err == nil {
		t.Fatal("permanent fault returned nil error")
	}
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("error %v (%T) is not a *ReadError", err, err)
	}
	if re.Batch != 2 || re.Attempts != 3 {
		t.Fatalf("ReadError = %+v, want Batch 2, Attempts 3", re)
	}
	// The injected fault must survive the wrapping for chain inspection.
	var fe *faultpoint.Error
	if !errors.As(err, &fe) {
		t.Fatalf("injected faultpoint.Error not reachable through %v", err)
	}
	if st := s.Stats(); st.FailedReads != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want FailedReads 1, Retries 2", st)
	}
	// Batch (the panicking variant) must throw the same typed value.
	func() {
		defer func() {
			if _, ok := recover().(*ReadError); !ok {
				t.Fatal("Batch did not panic with *ReadError")
			}
		}()
		s.Batch(2)
	}()
}

func TestBackoffIsSeededAndBounded(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		s := retrySpilledStore(t, 1, RetryPolicy{Attempts: 8, Base: 4 * time.Millisecond, Max: 16 * time.Millisecond, Seed: seed})
		var out []time.Duration
		s.mu.Lock()
		for n := 1; n <= 6; n++ {
			out = append(out, s.backoffLocked(n))
		}
		s.mu.Unlock()
		return out
	}
	a, b := seq(9), seq(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	for i, d := range a {
		// Jitter spans [d/2, 3d/2) around the capped exponential, so
		// nothing may exceed 1.5*Max.
		if d < 2*time.Millisecond || d > 24*time.Millisecond {
			t.Fatalf("retry %d backoff %v outside [Base/2, 1.5*Max]", i+1, d)
		}
	}
	if c := seq(10); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}

func TestPrefetcherSurfacesReadErrorToConsumer(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	defer faultpoint.Reset()
	s := retrySpilledStore(t, 6, RetryPolicy{Attempts: 2, Base: time.Microsecond, Seed: 1})
	faultpoint.ArmErrorEvery("storage.read.error", 1, 1)
	p := NewPrefetcher(s, 2, 2)
	defer p.Close()
	caught := func(i int) (r any) {
		defer func() { r = recover() }()
		p.Batch(i)
		return nil
	}(0)
	if caught == nil {
		t.Fatal("consumer did not observe the background read failure")
	}
	if _, ok := caught.(*ReadError); !ok {
		t.Fatalf("consumer panic is %T, want *ReadError", caught)
	}
	if st := p.Stats(); st.Errors < 1 {
		t.Fatalf("PrefetchStats.Errors = %d, want >= 1", st.Errors)
	}
	// Disarm and retry the same index: the errored entry must not be
	// stuck in the cache; a fresh read succeeds.
	faultpoint.Reset()
	if c, _ := p.Batch(0); c == nil {
		t.Fatal("batch unreadable after fault cleared")
	}
}

func TestPrefetcherCloseInterruptsRetryBackoff(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	defer faultpoint.Reset()
	// Long backoff: without cancellation Close would wait out most of
	// 10 x 2s sleeps; with the quit channel it must return promptly.
	s := retrySpilledStore(t, 6, RetryPolicy{Attempts: 10, Base: 2 * time.Second, Max: 2 * time.Second, Seed: 1})
	faultpoint.ArmErrorEvery("storage.read.error", 1, 1)
	p := NewPrefetcher(s, 3, 2)
	// Wait until at least one background read has entered its retry
	// loop (first attempt failed, sleeping before the second).
	deadline := time.After(5 * time.Second)
	for s.Stats().Retries == 0 {
		select {
		case <-deadline:
			t.Fatal("no background read entered the retry loop")
		case <-time.After(time.Millisecond):
		}
	}
	start := time.Now()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v with readers in backoff; want prompt return", elapsed)
	}
	if st := s.Stats(); st.FailedReads == 0 {
		t.Fatalf("canceled read not accounted: %+v", st)
	}
}

func TestCanceledReadWrapsErrReadCanceled(t *testing.T) {
	defer faultpoint.Reset()
	s := retrySpilledStore(t, 2, RetryPolicy{Attempts: 5, Base: time.Hour, Max: time.Hour, Seed: 1})
	faultpoint.ArmErrorEvery("storage.read.error", 1, 1)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := s.batch(0, cancel)
		done <- err
	}()
	// Give the read time to fail once and enter its hour-long backoff.
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrReadCanceled) {
			t.Fatalf("err = %v, want ErrReadCanceled in chain", err)
		}
		var re *ReadError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *ReadError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled read did not return")
	}
}
