package storage

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
)

// The store must satisfy the MGD driver's contract.
var _ ml.BatchSource = (*Store)(nil)

func testBatches(t *testing.T, n, rows, cols int) ([]*matrix.Dense, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var xs []*matrix.Dense
	var ys [][]float64
	for b := 0; b < n; b++ {
		x := matrix.NewDense(rows, cols)
		y := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.5 {
					x.Set(i, j, float64(rng.Intn(4)+1)/4)
				}
			}
			y[i] = float64(rng.Intn(2))
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func TestAllResidentUnderLargeBudget(t *testing.T) {
	xs, ys := testBatches(t, 5, 20, 10)
	s, err := NewStore(t.TempDir(), "TOC", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SpilledBatches != 0 || st.ResidentBatches != 5 {
		t.Fatalf("layout: %+v", st)
	}
	if s.Spilled() {
		t.Fatal("Spilled() should be false")
	}
	for i := range xs {
		c, y := s.Batch(i)
		if !c.Decode().Equal(xs[i]) {
			t.Fatalf("batch %d content mismatch", i)
		}
		for k := range y {
			if y[k] != ys[i][k] {
				t.Fatalf("batch %d labels mismatch", i)
			}
		}
	}
	if s.Stats().Reads != 0 {
		t.Fatal("resident reads should not count as IO")
	}
}

func TestSpillAndReadBack(t *testing.T) {
	xs, ys := testBatches(t, 6, 30, 12)
	// Budget fits roughly two TOC batches.
	probe := formats.MustGet("TOC")(xs[0]).CompressedSize()
	s, err := NewStore(t.TempDir(), "TOC", int64(probe*2+probe/2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.ResidentBatches < 1 || st.SpilledBatches < 3 {
		t.Fatalf("expected a mixed layout, got %+v", st)
	}
	// Every batch — resident or spilled — must round trip exactly.
	for i := range xs {
		c, _ := s.Batch(i)
		if !c.Decode().Equal(xs[i]) {
			t.Fatalf("batch %d content mismatch after spill", i)
		}
	}
	st = s.Stats()
	if st.Reads != int64(st.SpilledBatches) {
		t.Fatalf("reads %d != spilled %d", st.Reads, st.SpilledBatches)
	}
	if st.BytesRead != st.SpilledBytes {
		t.Fatalf("bytes read %d != spilled bytes %d", st.BytesRead, st.SpilledBytes)
	}
	if st.ReadTime <= 0 {
		t.Fatal("read time not accounted")
	}
	// Second epoch reads again.
	for i := range xs {
		s.Batch(i)
	}
	if got := s.Stats().Reads; got != 2*int64(st.SpilledBatches) {
		t.Fatalf("second epoch reads = %d", got)
	}
}

func TestZeroBudgetSpillsEverything(t *testing.T) {
	xs, ys := testBatches(t, 3, 10, 8)
	for _, method := range []string{"DEN", "CSR", "CVI", "DVI", "CLA", "TOC", "Gzip", "Snappy"} {
		s, err := NewStore(t.TempDir(), method, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if err := s.Add(xs[i], ys[i]); err != nil {
				t.Fatalf("%s: %v", method, err)
			}
		}
		if s.Stats().ResidentBatches != 0 {
			t.Fatalf("%s: nothing should be resident", method)
		}
		for i := range xs {
			c, _ := s.Batch(i)
			if !c.Decode().Equal(xs[i]) {
				t.Fatalf("%s: batch %d mismatch", method, i)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", method, err)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := NewStore(t.TempDir(), "NOPE", 0); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestLabelMismatch(t *testing.T) {
	s, _ := NewStore(t.TempDir(), "DEN", 0)
	defer s.Close()
	if err := s.Add(matrix.NewDense(3, 2), []float64{1}); err == nil {
		t.Fatal("label length mismatch should error")
	}
}

// A store whose batches all fit the budget must never create a spill
// file: nothing to leak when Close is skipped, nothing left behind in dir.
func TestFullyResidentStoreCreatesNoSpillFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, "TOC", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := testBatches(t, 4, 10, 8)
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("fully-resident store created %d files in dir", len(entries))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close without spill file: %v", err)
	}
}

// The spill file appears exactly when the budget first overflows.
func TestSpillFileCreatedLazilyOnFirstSpill(t *testing.T) {
	dir := t.TempDir()
	xs, ys := testBatches(t, 3, 20, 10)
	probe := formats.MustGet("TOC")(xs[0]).CompressedSize()
	s, err := NewStore(dir, "TOC", int64(probe)+1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add(xs[0], ys[0]); err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatal("spill file created before any batch spilled")
	}
	for i := 1; i < 3; i++ {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Spilled() {
		t.Fatal("expected later batches to spill")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatal("expected exactly one spill file after spilling")
	}
	for i := range xs {
		c, _ := s.Batch(i)
		if !c.Decode().Equal(xs[i]) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
}

// Spilled and TotalCompressedBytes promise the Stats mutex contract;
// exercised under -race against concurrent spilled reads.
func TestStatsAccessorsConcurrentWithBatch(t *testing.T) {
	xs, ys := testBatches(t, 6, 10, 8)
	s, err := NewStore(t.TempDir(), "TOC", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := range xs {
		if err := s.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range xs {
				s.Batch(i)
				if !s.Spilled() {
					t.Error("Spilled() = false on an all-spilled store")
				}
				if s.TotalCompressedBytes() <= 0 {
					t.Error("TotalCompressedBytes() <= 0")
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloseRemovesSpillFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(dir, "TOC", 0)
	xs, ys := testBatches(t, 2, 5, 4)
	for i := range xs {
		s.Add(xs[i], ys[i])
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("expected one spill file, found %d", len(entries))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatal("spill file not removed")
	}
}

// Training through a spilled store must produce the same model as
// training fully in memory.
func TestTrainingThroughSpillMatchesMemory(t *testing.T) {
	d, err := data.Generate("census", 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(10)

	ref, _ := ml.NewModel("lr", d.X.Cols(), d.Classes, 1, 1)
	memSrc := ml.NewMemorySource(d, 50, formats.MustGet("TOC"))
	ml.Train(ref, memSrc, 3, 0.2, nil)

	s, _ := NewStore(t.TempDir(), "TOC", 0) // everything on disk
	defer s.Close()
	for i := 0; i < d.NumBatches(50); i++ {
		x, y := d.Batch(i, 50)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	m2, _ := ml.NewModel("lr", d.X.Cols(), d.Classes, 1, 1)
	ml.Train(m2, s, 3, 0.2, nil)

	w1 := ref.(*ml.LogReg).W
	w2 := m2.(*ml.LogReg).W
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
	if s.Stats().Reads == 0 {
		t.Fatal("spilled training should have counted reads")
	}
}
