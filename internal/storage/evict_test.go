package storage

import (
	"testing"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// denBatch builds a rows×4 dense batch; with the DEN codec its compressed
// size is a deterministic function of the shape alone, which makes
// eviction traces exact.
func denBatch(rows int) (*matrix.Dense, []float64) {
	x := matrix.NewDense(rows, 4)
	for i := 0; i < rows; i++ {
		x.Set(i, i%4, float64(i+1))
	}
	return x, make([]float64, rows)
}

func denSize(rows int) int64 {
	x, _ := denBatch(rows)
	return int64(formats.MustGet("DEN")(x).CompressedSize())
}

// residency reports which batches are resident, as a bitmap string.
func residency(s *Store) string {
	out := make([]byte, s.NumBatches())
	for i := range out {
		if s.Resident(i) {
			out[i] = 'R'
		} else {
			out[i] = 'S'
		}
	}
	return string(out)
}

// First-fit never displaces: the big first arrival keeps its slot and the
// smalls spill, exactly the historical layout.
func TestEvictionFirstFitTrace(t *testing.T) {
	big := denSize(20)
	s, err := NewStore(t.TempDir(), "DEN", big+1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rows := range []int{20, 6, 6} {
		x, y := denBatch(rows)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if got := residency(s); got != "RSS" {
		t.Fatalf("first-fit residency = %s, want RSS", got)
	}
	st := s.Stats()
	if st.Evictions != 0 {
		t.Fatalf("first-fit evicted %d batches", st.Evictions)
	}
	if st.ResidentBytes != big || st.SpilledBatches != 2 {
		t.Fatalf("layout: %+v", st)
	}
}

// Largest-first displaces the big batch to keep both smalls resident:
// same spilled bytes, half the spilled reads per epoch.
func TestEvictionLargestFirstTrace(t *testing.T) {
	big, small := denSize(20), denSize(6)
	s, err := NewStore(t.TempDir(), "DEN", big+1, WithEviction(LargestFirst()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rows := range []int{20, 6, 6} {
		x, y := denBatch(rows)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if got := residency(s); got != "SRR" {
		t.Fatalf("largest-first residency = %s, want SRR", got)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes != 2*small || st.SpilledBatches != 1 {
		t.Fatalf("layout: %+v", st)
	}
	// Every batch — kept, displaced or spilled on arrival — round-trips.
	for i, rows := range []int{20, 6, 6} {
		c, _ := s.Batch(i)
		want, _ := denBatch(rows)
		if !c.Decode().Equal(want) {
			t.Fatalf("batch %d mismatch after eviction", i)
		}
	}
}

// Largest-first must not evict when the evictions would not free enough
// room: a batch larger than the whole budget spills without collateral.
func TestEvictionLargestFirstNoFutileEvictions(t *testing.T) {
	small := denSize(6)
	s, err := NewStore(t.TempDir(), "DEN", 2*small, WithEviction(LargestFirst()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, rows := range []int{6, 6, 40} {
		x, y := denBatch(rows)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if got := residency(s); got != "RRS" {
		t.Fatalf("residency = %s, want RRS (no futile evictions)", got)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("Evictions = %d, want 0", st.Evictions)
	}
}

// Access-order keeps the batch visited first in the announced epoch
// permutation, displacing earlier arrivals that the epoch visits later —
// the Belady choice for a once-per-epoch scan.
func TestEvictionAccessOrderTrace(t *testing.T) {
	size := denSize(10)
	s, err := NewStore(t.TempDir(), "DEN", size, WithEviction(AccessOrder()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetUpcomingOrder([]int{2, 0, 1})
	for i := 0; i < 3; i++ {
		x, y := denBatch(10)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// Batch 2 leads the epoch: it must hold the single resident slot.
	if got := residency(s); got != "SSR" {
		t.Fatalf("access-order residency = %s, want SSR", got)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

// Without an announced order, access-order degrades to arrival order —
// identical to first-fit for sequential epochs.
func TestEvictionAccessOrderFallsBackToArrival(t *testing.T) {
	size := denSize(10)
	s, err := NewStore(t.TempDir(), "DEN", size, WithEviction(AccessOrder()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		x, y := denBatch(10)
		if err := s.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	if got := residency(s); got != "RSS" {
		t.Fatalf("residency = %s, want RSS (arrival-order fallback)", got)
	}
}

func TestNewEvictionPolicyParse(t *testing.T) {
	for name, want := range map[string]string{
		"":              "first-fit",
		"first-fit":     "first-fit",
		"largest-first": "largest-first",
		"largest":       "largest-first",
		"access-order":  "access-order",
		"belady":        "access-order",
	} {
		p, err := NewEvictionPolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("%q resolved to %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := NewEvictionPolicy("lru"); err == nil {
		t.Fatal("unknown policy should error")
	}
}
