package storage

import (
	"fmt"
	"sync"
	"time"
)

// BandwidthModel selects how the simulated disk enforces the configured
// read bandwidth. The two models bracket real storage hardware: cloud
// block stores and SSDs deliver more aggregate throughput the deeper the
// request queue, while a spindle (or any device behind a fixed bus) has
// one aggregate budget that concurrent readers share.
type BandwidthModel int

const (
	// PerRequest throttles every spilled read independently: each request
	// sleeps length/bandwidth regardless of what else is in flight, so N
	// concurrent readers see N× the configured bandwidth in aggregate.
	// This models devices whose throughput scales with queue depth (cloud
	// block stores, SSDs) and is the historical default.
	PerRequest BandwidthModel = iota

	// SharedBucket meters all spilled reads of one device (all shards
	// sharing a directory) through a single token bucket, so aggregate
	// read throughput never exceeds the configured bandwidth no matter
	// how many readers pile on — the spindle/bus regime. Each shard
	// additionally services one request at a time (its file handle is the
	// arm): the per-request access latency and the transfer serialize
	// within a shard but overlap across shards, which is exactly what
	// spreading spill files over more devices buys.
	SharedBucket
)

// String returns the flag-friendly name of the model.
func (m BandwidthModel) String() string {
	switch m {
	case PerRequest:
		return "per-request"
	case SharedBucket:
		return "shared-bucket"
	default:
		return fmt.Sprintf("BandwidthModel(%d)", int(m))
	}
}

// ParseBandwidthModel resolves a flag value ("per-request"/"request",
// "shared-bucket"/"shared"/"bucket") to a BandwidthModel.
func ParseBandwidthModel(name string) (BandwidthModel, error) {
	switch name {
	case "per-request", "request", "":
		return PerRequest, nil
	case "shared-bucket", "shared", "bucket":
		return SharedBucket, nil
	default:
		return 0, fmt.Errorf("storage: unknown bandwidth model %q (want per-request or shared-bucket)", name)
	}
}

// tokenBucket paces transfers so they aggregate to a bandwidth cap. It
// tracks the virtual completion time of the last admitted transfer; a
// reservation extends it and the caller sleeps until its own transfer's
// virtual completion. Idle periods grant no credit (next never falls
// behind the wall clock), so the cap holds at any queue depth: N
// back-to-back reservations finish, in real time, no sooner than their
// total size divided by the rate.
type tokenBucket struct {
	mu sync.Mutex
	//toc:guardedby mu
	next time.Time
}

// reserve admits a transfer of n bytes at rate bps and returns how long
// the caller must sleep for the transfer to be paced correctly.
func (b *tokenBucket) reserve(n, bps int64) time.Duration {
	if n <= 0 || bps <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if b.next.Before(now) {
		b.next = now
	}
	b.next = b.next.Add(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
	return b.next.Sub(now)
}

// device is one simulated storage device: every shard placed in the same
// directory shares the device's token bucket, so SharedBucket bandwidth
// is an aggregate cap per directory. Spreading shards over distinct
// directories (WithShardDirs) models distinct devices, each with its own
// full bandwidth budget.
type device struct {
	dir    string
	bucket tokenBucket
}
