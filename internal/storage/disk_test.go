package storage

import (
	"sync"
	"testing"
	"time"

	"toc/internal/matrix"
)

// shardedSpilledStore builds a store of n identical-shape batches that all
// spill, spread over the given shard count.
func shardedSpilledStore(t *testing.T, n, shards int, opts ...Option) *Store {
	t.Helper()
	opts = append([]Option{WithShards(shards)}, opts...)
	st, err := NewStore(t.TempDir(), "TOC", 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for b := 0; b < n; b++ {
		x := matrix.NewDense(4, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				x.Set(i, j, float64((b+i*j)%5))
			}
		}
		if err := st.Add(x, []float64{0, 1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Spilled() {
		t.Fatal("expected batches to spill")
	}
	return st
}

// readAll reads every batch exactly once across the given number of
// concurrent readers and returns the wall-clock elapsed.
func readAll(st *Store, readers int) time.Duration {
	n := st.NumBatches()
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; i < n; i += readers {
				st.Batch(i)
			}
		}(r)
	}
	wg.Wait()
	return time.Since(start)
}

// The acceptance property of the shared token bucket: measured aggregate
// read throughput stays at the configured cap whether one reader queues
// requests or eight do. The per-request model — the historical throttle —
// instead scales with queue depth, which is exactly the dishonesty the
// bucket fixes; both behaviors are pinned here.
func TestSharedBucketHoldsAggregateCapRegardlessOfQueueDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	const n = 16
	for _, readers := range []int{1, 8} {
		st := shardedSpilledStore(t, n, 4, WithBandwidthModel(SharedBucket))
		total := st.Stats().SpilledBytes
		// Size the simulated disk so one full scan costs ~400ms of pure
		// token waiting: sleep inaccuracy (~1ms/request) is then noise.
		bw := total * 1000 / 400
		st.SetReadBandwidth(bw)
		elapsed := readAll(st, readers)
		throughput := float64(total) / elapsed.Seconds()
		// The ceiling is the honesty property and is tight: the bucket can
		// never hand out more than the cap. The floor only shows it does
		// not underdeliver; it is nominally within ~5% but idle periods
		// grant no credit, so a GC or scheduler stall mid-scan (race-mode
		// CI) legitimately lowers it — keep generous slack there.
		if ratio := throughput / float64(bw); ratio < 0.70 || ratio > 1.05 {
			t.Errorf("shared bucket, %d readers: throughput %.0f B/s is %.2fx the %d B/s cap (want ~1.0)",
				readers, throughput, ratio, bw)
		}
	}
	// Contrast: the per-request model's aggregate grows with queue depth.
	st := shardedSpilledStore(t, n, 4, WithBandwidthModel(PerRequest))
	total := st.Stats().SpilledBytes
	bw := total * 1000 / 400
	st.SetReadBandwidth(bw)
	elapsed := readAll(st, 8)
	if throughput := float64(total) / elapsed.Seconds(); throughput < 2*float64(bw) {
		t.Errorf("per-request model with 8 readers: throughput %.0f B/s should exceed 2x the %d B/s per-request rate",
			throughput, bw)
	}
}

// The acceptance property of sharding: under one fixed aggregate
// bandwidth, four shards turn an epoch's reads around faster than one,
// because the per-request access latency (the seek) serializes within a
// shard but overlaps across shards. This is the mechanism behind the
// spillscale bench regime, asserted here deterministically enough for CI.
func TestShardingRaisesEpochThroughputUnderSharedBucket(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	const (
		n       = 32
		readers = 8
		seek    = 2 * time.Millisecond
		bw      = 1 << 20 // ample: the seek, not the transfer, dominates
	)
	opts := []Option{
		WithBandwidthModel(SharedBucket),
		WithReadBandwidth(bw),
		WithAccessLatency(seek),
	}
	one := shardedSpilledStore(t, n, 1, opts...)
	four := shardedSpilledStore(t, n, 4, opts...)
	t1 := readAll(one, readers)
	t4 := readAll(four, readers)
	// One shard serializes all n seeks (~64ms); four shards overlap them
	// four ways (~16ms). Demand a clear, not merely positive, gap — the
	// nominal ratio is ~0.3, so 0.85 leaves ~3x headroom for race-mode
	// scheduling noise.
	if t4 >= t1*85/100 {
		t.Errorf("4-shard epoch read %v, 1-shard %v — sharding should cut seek-bound epoch time", t4, t1)
	}
	// The bucket stays honest under sharding: neither layout may beat the
	// aggregate transfer cap by more than its seek overlap allows.
	total := one.Stats().SpilledBytes
	if minTime := time.Duration(float64(total) / float64(bw) * float64(time.Second)); t4 < minTime {
		t.Errorf("4-shard epoch %v beat the bandwidth floor %v — bucket leaked", t4, minTime)
	}
}

func TestParseBandwidthModel(t *testing.T) {
	for name, want := range map[string]BandwidthModel{
		"":              PerRequest,
		"request":       PerRequest,
		"per-request":   PerRequest,
		"shared":        SharedBucket,
		"bucket":        SharedBucket,
		"shared-bucket": SharedBucket,
	} {
		got, err := ParseBandwidthModel(name)
		if err != nil || got != want {
			t.Fatalf("ParseBandwidthModel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBandwidthModel("warp"); err == nil {
		t.Fatal("unknown model should error")
	}
	if PerRequest.String() != "per-request" || SharedBucket.String() != "shared-bucket" {
		t.Fatalf("String(): %s / %s", PerRequest, SharedBucket)
	}
}
