// Package snappy is a from-scratch implementation of the Snappy block
// format (the raw format, without framing), used as the "Snappy" general
// compression baseline of the paper's §5 evaluation. The Go standard
// library has no Snappy codec, so this package provides one: an LZ77
// compressor with a hash-table match finder and the standard tag-byte
// encoding of literals and copies.
//
// Block format summary:
//
//	preamble: uvarint length of the uncompressed data
//	elements: tag byte, low 2 bits select the element kind
//	  00 literal  — length 1..60 inline in tag, 61..64 -> 1..4 extra bytes
//	  01 copy1    — length 4..11, 11-bit offset (3 bits in tag + 1 byte)
//	  10 copy2    — length 1..64, 16-bit little-endian offset
//	  11 copy4    — length 1..64, 32-bit little-endian offset
package snappy

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned by Decode when the input is not valid Snappy data.
var ErrCorrupt = errors.New("snappy: corrupt input")

// ErrTooLarge is returned when the decoded length exceeds what this
// implementation is willing to allocate.
var ErrTooLarge = errors.New("snappy: decoded block is too large")

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	// maxBlockSize keeps every match offset within 16 bits, so the encoder
	// never needs tagCopy4 (the decoder still accepts it).
	maxBlockSize = 65536

	// decode length guard: 1 GiB is far above anything this repo produces.
	maxDecodedLen = 1 << 30

	// match finder parameters
	tableBits = 14
	tableSize = 1 << tableBits

	minMatchLen = 4
)

// MaxEncodedLen returns an upper bound on the size of Encode output for an
// input of n bytes.
func MaxEncodedLen(n int) int {
	// worst case: uvarint preamble + input emitted as literals with one tag
	// byte + length bytes per 2^24 chunk; 32 + n + n/6 is a safe bound (the
	// canonical implementation uses the same shape).
	return 32 + n + n/6
}

// Encode compresses src using the Snappy block format and returns the
// compressed bytes.
func Encode(src []byte) []byte {
	dst := make([]byte, 0, MaxEncodedLen(len(src)))
	dst = appendUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		block := src
		if len(block) > maxBlockSize {
			block = block[:maxBlockSize]
		}
		src = src[len(block):]
		dst = encodeBlock(dst, block)
	}
	return dst
}

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - tableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// encodeBlock compresses one block (≤ 64 KiB) into dst. Match offsets are
// local to the block, so they always fit in 16 bits.
func encodeBlock(dst, src []byte) []byte {
	if len(src) < minMatchLen+4 {
		return emitLiteral(dst, src)
	}
	var table [tableSize]int32
	for i := range table {
		table[i] = -1
	}

	litStart := 0 // start of pending literal run
	s := 0
	// sLimit leaves room so load32 never reads past the end.
	sLimit := len(src) - minMatchLen
	for s < sLimit {
		h := hash4(load32(src, s))
		cand := table[h]
		table[h] = int32(s)
		if cand < 0 || load32(src, int(cand)) != load32(src, s) {
			s++
			continue
		}
		// Found a match at cand. Emit pending literals first.
		if litStart < s {
			dst = emitLiteral(dst, src[litStart:s])
		}
		// Extend the match forward.
		matchLen := minMatchLen
		for s+matchLen < len(src) && src[int(cand)+matchLen] == src[s+matchLen] {
			matchLen++
		}
		dst = emitCopy(dst, s-int(cand), matchLen)
		s += matchLen
		litStart = s
		// Seed the table with a position inside the match so long runs chain.
		if s < sLimit {
			table[hash4(load32(src, s-1))] = int32(s - 1)
		}
	}
	if litStart < len(src) {
		dst = emitLiteral(dst, src[litStart:])
	}
	return dst
}

func emitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 0:
		return dst
	case n < 60:
		dst = append(dst, byte(n)<<2|tagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// emitCopy emits one or more copy elements covering length bytes at the
// given offset (1 ≤ offset < 65536).
func emitCopy(dst []byte, offset, length int) []byte {
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Emit 60 so the remainder stays ≥ 4 (keeps copy1 eligible).
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 4 && length <= 11 && offset < 2048 {
		dst = append(dst,
			byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1,
			byte(offset))
		return dst
	}
	return append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
}

// DecodedLen returns the declared uncompressed length of a Snappy block.
func DecodedLen(src []byte) (int, error) {
	n, c, err := readUvarint(src)
	if err != nil {
		return 0, ErrCorrupt
	}
	if n > maxDecodedLen {
		return 0, ErrTooLarge
	}
	_ = c
	return int(n), nil
}

// Decode decompresses a Snappy block and returns the original bytes.
func Decode(src []byte) ([]byte, error) {
	n, c, err := readUvarint(src)
	if err != nil {
		return nil, ErrCorrupt
	}
	if n > maxDecodedLen {
		return nil, ErrTooLarge
	}
	src = src[c:]
	dst := make([]byte, n)
	d := 0
	for len(src) > 0 {
		tag := src[0]
		var litLen, copyLen, offset int
		switch tag & 3 {
		case tagLiteral:
			l := int(tag >> 2)
			switch {
			case l < 60:
				litLen = l + 1
				src = src[1:]
			case l == 60:
				if len(src) < 2 {
					return nil, ErrCorrupt
				}
				litLen = int(src[1]) + 1
				src = src[2:]
			case l == 61:
				if len(src) < 3 {
					return nil, ErrCorrupt
				}
				litLen = int(binary.LittleEndian.Uint16(src[1:])) + 1
				src = src[3:]
			case l == 62:
				if len(src) < 4 {
					return nil, ErrCorrupt
				}
				litLen = int(src[1]) | int(src[2])<<8 | int(src[3])<<16
				litLen++
				src = src[4:]
			default: // 63
				if len(src) < 5 {
					return nil, ErrCorrupt
				}
				v := binary.LittleEndian.Uint32(src[1:])
				if v > maxDecodedLen {
					return nil, ErrCorrupt
				}
				litLen = int(v) + 1
				src = src[5:]
			}
			if litLen > len(src) || d+litLen > len(dst) {
				return nil, ErrCorrupt
			}
			copy(dst[d:], src[:litLen])
			d += litLen
			src = src[litLen:]
			continue

		case tagCopy1:
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			copyLen = 4 + int(tag>>2)&0x7
			offset = int(tag&0xe0)<<3 | int(src[1])
			src = src[2:]

		case tagCopy2:
			if len(src) < 3 {
				return nil, ErrCorrupt
			}
			copyLen = 1 + int(tag>>2)
			offset = int(binary.LittleEndian.Uint16(src[1:]))
			src = src[3:]

		default: // tagCopy4
			if len(src) < 5 {
				return nil, ErrCorrupt
			}
			copyLen = 1 + int(tag>>2)
			v := binary.LittleEndian.Uint32(src[1:])
			if v > maxDecodedLen {
				return nil, ErrCorrupt
			}
			offset = int(v)
			src = src[5:]
		}
		if offset <= 0 || offset > d || d+copyLen > len(dst) {
			return nil, ErrCorrupt
		}
		// Byte-at-a-time copy: offsets smaller than the length deliberately
		// replicate the overlapping region (RLE-style runs).
		for i := 0; i < copyLen; i++ {
			dst[d] = dst[d-offset]
			d++
		}
	}
	if d != len(dst) {
		return nil, ErrCorrupt
	}
	return dst, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(buf []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if i == 10 {
			return 0, 0, ErrCorrupt
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrCorrupt
}
