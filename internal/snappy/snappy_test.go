package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Encode(src)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil)
	enc := Encode(nil)
	if len(enc) != 1 || enc[0] != 0 {
		t.Fatalf("Encode(nil) = %v, want [0]", enc)
	}
}

func TestRoundTripShortLiterals(t *testing.T) {
	roundTrip(t, []byte("a"))
	roundTrip(t, []byte("abc"))
	roundTrip(t, []byte("abcdefg"))
}

func TestLiteralGolden(t *testing.T) {
	// "abc" cannot contain a 4-byte match: expect uvarint(3), tag literal
	// len 3 ((3-1)<<2 = 0x08), then the bytes.
	enc := Encode([]byte("abc"))
	want := []byte{3, 0x08, 'a', 'b', 'c'}
	if !bytes.Equal(enc, want) {
		t.Fatalf("Encode(abc) = %v, want %v", enc, want)
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("0123456789"), 1000)
	enc := Encode(src)
	if len(enc) >= len(src)/5 {
		t.Fatalf("repetitive input should compress >5x: %d -> %d", len(src), len(enc))
	}
	roundTrip(t, src)
}

func TestRoundTripAllZero(t *testing.T) {
	// Snappy copies carry at most 64 bytes per 3-byte element, so zero runs
	// cap out near 64/3 ≈ 21x.
	src := make([]byte, 100000)
	enc := Encode(src)
	if len(enc) >= len(src)/15 {
		t.Fatalf("zeros should compress >15x: %d -> %d", len(src), len(enc))
	}
	roundTrip(t, src)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 100, 1000, 65535, 65536, 65537, 200000} {
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
	}
}

func TestRoundTripMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var b bytes.Buffer
	for i := 0; i < 50; i++ {
		switch rng.Intn(3) {
		case 0:
			b.WriteString(strings.Repeat("x", rng.Intn(300)))
		case 1:
			chunk := make([]byte, rng.Intn(300))
			rng.Read(chunk)
			b.Write(chunk)
		default:
			b.WriteString("the quick brown fox jumps over the lazy dog ")
		}
	}
	roundTrip(t, b.Bytes())
}

func TestRoundTripLongMatches(t *testing.T) {
	// Matches longer than 64 exercise the chunked copy emission.
	src := append([]byte("HEADER--"), bytes.Repeat([]byte("Z"), 500)...)
	src = append(src, []byte("TRAILER")...)
	roundTrip(t, src)
	// Length exactly at the 68/64 chunking boundaries.
	for _, n := range []int{63, 64, 65, 66, 67, 68, 69, 127, 128, 132} {
		s := append([]byte("abcdefgh"), bytes.Repeat([]byte("abcdefgh"), (n/8)+2)...)
		roundTrip(t, s[:8+n])
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		got, err := Decode(Encode(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property over compressible structured data (closer to DEN matrix bytes).
func TestRoundTripStructuredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocab := make([][]byte, 4)
		for i := range vocab {
			vocab[i] = make([]byte, 8+rng.Intn(24))
			rng.Read(vocab[i])
		}
		var b bytes.Buffer
		for i := 0; i < 200; i++ {
			b.Write(vocab[rng.Intn(len(vocab))])
		}
		src := b.Bytes()
		got, err := Decode(Encode(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x80},                  // truncated uvarint
		{5, 0x08, 'a'},          // literal shorter than declared
		{2, 0xF0},               // literal tag with missing length bytes
		{8, 0x00, 'a', 0x01, 0}, // copy1 with offset 0 / beyond written
		{4, 0x0C, 'a', 'b', 'c', 'd', 0x01, 0xFF}, // copy1 offset too large
		{3, 0x08, 'a', 'b', 'c', 0x08, 'd', 'e'},  // writes past declared len
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecodeCopy4(t *testing.T) {
	// Hand-built stream using a copy4 element, which the encoder never
	// emits but the decoder must accept: literal "abcd", then copy len 4
	// offset 4 (via 4-byte offset).
	src := []byte{
		8,                        // decoded length 8
		0x0C, 'a', 'b', 'c', 'd', // literal len 4
		3<<2 | tagCopy4, 4, 0, 0, 0, // copy len 4, offset 4
	}
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdabcd" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeOverlappingCopy(t *testing.T) {
	// RLE via overlapping copy: literal "ab", copy len 6 offset 2.
	src := []byte{
		8,
		0x04, 'a', 'b', // literal len 2
		5<<2 | tagCopy2, 2, 0, // copy len 6, offset 2
	}
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abababab" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodedLen(t *testing.T) {
	src := bytes.Repeat([]byte("q"), 12345)
	n, err := DecodedLen(Encode(src))
	if err != nil || n != 12345 {
		t.Fatalf("DecodedLen = %d, %v", n, err)
	}
	if _, err := DecodedLen([]byte{0x80}); err == nil {
		t.Fatal("truncated preamble should error")
	}
}

func TestMaxEncodedLenBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 100, 65536, 300000} {
		src := make([]byte, n)
		rng.Read(src)
		if got := len(Encode(src)); got > MaxEncodedLen(n) {
			t.Fatalf("encoded %d bytes for input %d exceeds bound %d", got, n, MaxEncodedLen(n))
		}
	}
}
