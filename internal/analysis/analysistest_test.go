package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// expectation is one "// want `regex`" comment: the fixture author's
// claim that the analyzer reports a matching diagnostic on that line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// runFixture loads testdata/<dir>, runs one analyzer over it, and
// compares the diagnostics against the fixture's want comments — the
// same contract as golang.org/x/tools' analysistest, minimized.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	path := filepath.Join("testdata", dir)
	pkg, err := LoadDir(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	pass := &Pass{Analyzer: a, Pkg: pkg}
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, path, err)
	}

	wants := collectWants(t, path)
	matched := make([]bool, len(wants))
	for _, d := range pass.diags {
		ok := false
		for i, w := range wants {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses the fixture's comments for want expectations.
func collectWants(t *testing.T, dir string) []expectation {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
					if !ok {
						continue
					}
					rest = strings.TrimSpace(rest)
					if len(rest) < 2 || rest[0] != '`' || rest[len(rest)-1] != '`' {
						t.Fatalf("%s: want pattern must be back-quoted: %s", fset.Position(c.Pos()), c.Text)
					}
					re, err := regexp.Compile(rest[1 : len(rest)-1])
					if err != nil {
						t.Fatalf("%s: bad want pattern: %v", fset.Position(c.Pos()), err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

func TestGuardedByFixture(t *testing.T) { runFixture(t, GuardedBy, "guardedby") }

func TestDetCheckFixture(t *testing.T) { runFixture(t, DetCheck, "detcheck") }

// TestDetCheckAppliesOnlyToDetPackages pins the package filter: the
// analyzer must cover exactly the determinism-critical set.
func TestDetCheckAppliesOnlyToDetPackages(t *testing.T) {
	for _, pkg := range []string{
		"toc/internal/core", "toc/internal/engine", "toc/internal/ml", "toc/internal/checkpoint",
		"toc/internal/dist",
	} {
		if !DetCheck.Applies(pkg) {
			t.Errorf("DetCheck must apply to %s", pkg)
		}
	}
	for _, pkg := range []string{"toc/internal/storage", "toc/internal/bench", "toc/cmd/tocbench"} {
		if DetCheck.Applies(pkg) {
			t.Errorf("DetCheck must not apply to %s", pkg)
		}
	}
}

// TestDirectives pins the "//toc:" comment syntax: no space after the
// slashes, name then arguments.
func TestDirectives(t *testing.T) {
	src := "// plain comment\n//toc:guardedby mu\n//toc:timing\n// toc:guardedby spaced (not a directive)\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n"+src+"var V int\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var groups []*ast.CommentGroup
	groups = append(groups, f.Comments...)
	got := directives(groups...)
	want := []directive{
		{name: "guardedby", args: []string{"mu"}},
		{name: "timing", args: nil},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("directives = %v, want %v", got, want)
	}
	if !hasDirective("timing", groups...) {
		t.Error("hasDirective(timing) = false")
	}
	if args := directiveArgs("guardedby", groups...); len(args) != 1 || args[0] != "mu" {
		t.Errorf("directiveArgs(guardedby) = %v", args)
	}
}
