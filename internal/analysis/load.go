package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Pkg is one parsed and type-checked package.
type Pkg struct {
	Path  string // import path, e.g. "toc/internal/storage"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage mirrors the go list -json fields the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList shells out to the go tool — the only way to resolve import
// paths and obtain compiled export data without golang.org/x/tools,
// which this repo deliberately does not depend on. -export makes the
// build cache produce an export-data file per package; type-checking
// against those is how the analyzers see across package boundaries.
func goList(workDir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, args...)...)
	cmd.Dir = workDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			return pkgs, nil
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", args, err)
		}
		pkgs = append(pkgs, &p)
	}
}

// Load lists the packages matching the patterns (relative to workDir, "" =
// current directory), type-checks each against the export data of its
// dependencies, and returns them sorted by import path. The tree must
// compile; a package whose dependencies failed to build is a load error,
// not a finding.
func Load(workDir string, patterns ...string) ([]*Pkg, error) {
	listed, err := goList(workDir, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	pkgs := make([]*Pkg, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, name := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, name)
		}
		pkg, err := typeCheck(t.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files that is not part of the
// module's package graph — an analysistest fixture. Only standard-library
// imports are resolved (fixtures need nothing else); their export data
// comes from the build cache via go list, exactly like Load's.
func LoadDir(dir string) (*Pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Pre-parse to collect the imports go list must resolve.
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, spec := range parsed.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[path] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(dir, append([]string{"-deps", "-export"}, imports...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheck("fixture/"+filepath.Base(dir), files, exports)
}

// typeCheck parses the files with comments and type-checks them, pulling
// imports from the export-data map.
func typeCheck(pkgPath string, files []string, exports map[string]string) (*Pkg, error) {
	fset := token.NewFileSet()
	syntax := make([]*ast.File, 0, len(files))
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, parsed)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the tree build?)", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", pkgPath, err)
	}
	return &Pkg{Path: pkgPath, Fset: fset, Files: syntax, Types: tpkg, Info: info}, nil
}
