package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardedBy enforces the "//toc:guardedby <mu>" field annotation: every
// read or write of an annotated field must be dominated by a Lock/RLock
// of the named mutex earlier in the same function (an Unlock outside a
// defer re-arms the requirement), or the enclosing function must declare
// "//toc:locked <mu>" — the repo's convention for xxxLocked helpers whose
// callers hold the lock.
//
// The check is flow-insensitive and positional, by design: it scans each
// function body in source order, toggling a per-mutex "held" flag at
// Lock/Unlock calls, and flags annotated-field accesses made while the
// flag is down. Mutexes are matched by their final name (s.mu.Lock()
// guards fields annotated "mu"), which is exactly the repo's layout — a
// guard lives in the same struct as the fields it protects.
//
// Two deliberate escapes keep the signal high:
//
//   - Accesses through a value the function itself created (x := &T{...})
//     are exempt — constructors initialize fields before the value can
//     be shared, and demanding locks there would teach people to
//     annotate less.
//   - Function literals start with no locks held and no exemptions, even
//     when the enclosing function holds the lock at the literal's
//     definition: a closure may run on another goroutine long after the
//     lock is released, so it must take (or be handed) the lock itself.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "check that fields annotated //toc:guardedby <mu> are only accessed " +
		"with the named mutex held (or inside a //toc:locked <mu> function)",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annot := map[string]bool{}
			for _, mu := range directiveArgs("locked", fd.Doc) {
				annot[mu] = true
			}
			checkFuncBody(pass, fd.Body, guards, annot)
		}
	}
	return nil
}

// collectGuards maps each annotated field object to its mutex name.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args := directiveArgs("guardedby", field.Doc, field.Comment)
				if len(args) == 0 {
					continue
				}
				mu := args[0]
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// funcScope is the positional lock state of one function body (a
// FuncDecl's or a FuncLit's — literals get a fresh scope).
type funcScope struct {
	body  *ast.BlockStmt
	held  map[string]bool       // mutex name -> positionally held
	local map[types.Object]bool // values created in this function
	annot map[string]bool       // //toc:locked declarations
}

// checkFuncBody walks one function body in source order. ast.Inspect's
// pre-order traversal visits nodes in position order, which is what makes
// the positional held/cleared bookkeeping line up with the source.
func checkFuncBody(pass *Pass, body *ast.BlockStmt, guards map[types.Object]string, annot map[string]bool) {
	root := &funcScope{body: body, held: map[string]bool{}, local: map[types.Object]bool{}, annot: annot}
	scopes := []*funcScope{root}
	var stack []ast.Node
	deferCalls := map[*ast.CallExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			popped := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fl, ok := popped.(*ast.FuncLit); ok && scopes[len(scopes)-1].body == fl.Body {
				scopes = scopes[:len(scopes)-1]
			}
			return true
		}
		stack = append(stack, n)
		scope := scopes[len(scopes)-1]

		switch x := n.(type) {
		case *ast.FuncLit:
			scopes = append(scopes, &funcScope{
				body:  x.Body,
				held:  map[string]bool{},
				local: map[types.Object]bool{},
				annot: map[string]bool{},
			})

		case *ast.DeferStmt:
			deferCalls[x.Call] = true

		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				mu := lockReceiverName(sel.X)
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if mu != "" {
						scope.held[mu] = true
					}
				case "Unlock", "RUnlock":
					// A deferred Unlock runs at return, after every
					// access in the body; it must not clear the flag.
					// Neither does an Unlock on a path that leaves the
					// function (if stopped { mu.Unlock(); return }):
					// code after that block runs only when the branch
					// was not taken, i.e. with the lock still held.
					if mu != "" && !deferCalls[x] && !unlockPathTerminates(stack) {
						scope.held[mu] = false
					}
				}
			}

		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if isCreationExpr(x.Rhs[i]) {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							scope.local[obj] = true
						}
					}
				}
			}

		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, id := range x.Names {
					if isCreationExpr(x.Values[i]) {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							scope.local[obj] = true
						}
					}
				}
			}

		case *ast.SelectorExpr:
			obj := pass.Pkg.Info.Uses[x.Sel]
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			if scope.held[mu] || scope.annot[mu] {
				return true
			}
			if base := baseIdent(x.X); base != nil {
				if bobj := pass.Pkg.Info.Uses[base]; bobj != nil && scope.local[bobj] {
					return true
				}
			}
			pass.Reportf(x.Sel.Pos(),
				"access to %s requires %s held: dominate it with %s.Lock()/RLock(), or annotate the function //toc:locked %s",
				obj.Name(), mu, mu, mu)
		}
		return true
	})
}

// unlockPathTerminates reports whether the Unlock call on top of the
// traversal stack sits in a block whose remaining statements end by
// leaving the enclosing function — a return, a break/continue/goto, or a
// panic. The stack runs root..current; the call itself is on top.
func unlockPathTerminates(stack []ast.Node) bool {
	// Find the innermost enclosing block and the statement within it that
	// contains the call.
	for i := len(stack) - 1; i > 0; i-- {
		block, ok := stack[i-1].(*ast.BlockStmt)
		if !ok {
			continue
		}
		stmt, ok := stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		idx := -1
		for j, s := range block.List {
			if s == stmt {
				idx = j
				break
			}
		}
		if idx < 0 {
			return false
		}
		last := block.List[len(block.List)-1]
		switch t := last.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := t.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
		return false
	}
	return false
}

// lockReceiverName returns the final name of a Lock/Unlock receiver
// chain: s.mu -> "mu", run.mu -> "mu", mu -> "mu".
func lockReceiverName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lockReceiverName(x.X)
	case *ast.UnaryExpr:
		return lockReceiverName(x.X)
	}
	return ""
}

// isCreationExpr reports whether the expression constructs a fresh value:
// &T{...}, T{...}, or new(T).
func isCreationExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}
