package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetPackages are the determinism-critical packages: everything on the
// path from a (seed, config) pair to a trained parameter vector. The
// repo's identity tests pin trajectories bitwise across worker counts and
// crash/resume; these packages must therefore never consult a
// nondeterministic source outside the annotated epoch timers.
var DetPackages = map[string]bool{
	"toc/internal/core":       true,
	"toc/internal/engine":     true,
	"toc/internal/ml":         true,
	"toc/internal/checkpoint": true,
	"toc/internal/dist":       true,
}

// DetCheck enforces the determinism rules in DetPackages:
//
//   - No map-range iteration whose body writes to state declared outside
//     the loop. Go randomizes map iteration order, so such a loop bakes
//     scheduler entropy into whatever it writes — including a float
//     accumulator, where even commutative adds round differently per
//     order. (Reads are fine; building a set or summing ints into a
//     body-local is flagged too because proving commutativity is harder
//     than sorting the keys first, which is the expected fix.)
//   - No time.Now/time.Since, and no math/rand package-level functions
//     (the process-global, randomly-seeded source), outside functions
//     annotated "//toc:timing". The engines' epoch timers carry the
//     annotation; anything else is a bug. Explicitly seeded generators —
//     rand.New(rand.NewSource(seed)) and the methods of the *rand.Rand
//     they return — are the repo's sanctioned randomness and stay legal.
//
// Test files are not analyzed (toclint loads only GoFiles), so tests may
// time and randomize freely.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc: "forbid nondeterminism in determinism-critical packages: map-range " +
		"loops with externally visible writes, and time.Now/global math/rand " +
		"outside //toc:timing functions",
	Applies: func(pkgPath string) bool { return DetPackages[pkgPath] },
	Run:     runDetCheck,
}

func runDetCheck(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			timing := hasDirective("timing", fd.Doc)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					checkNondetCall(pass, x, timing)
				case *ast.RangeStmt:
					if t := pass.Pkg.Info.TypeOf(x.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							checkMapRange(pass, x)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkNondetCall flags references to time.Now/time.Since and to
// math/rand's package-level functions (except the seeded constructors
// New/NewSource) outside //toc:timing functions.
func checkNondetCall(pass *Pass, sel *ast.SelectorExpr, timing bool) {
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() != "Now" && fn.Name() != "Since" {
			return
		}
	case "math/rand", "math/rand/v2":
		if fn.Name() == "New" || fn.Name() == "NewSource" {
			return // seeded construction is the sanctioned pattern
		}
	default:
		return
	}
	if timing {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s.%s in a determinism-critical package: annotate the function //toc:timing if this is an epoch timer, otherwise derive the value from the seed",
		fn.Pkg().Name(), fn.Name())
}

// checkMapRange flags writes inside a map-range body whose target is
// declared outside the loop.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	report := func(e ast.Expr) {
		base := baseIdent(e)
		if base == nil {
			pass.Reportf(e.Pos(),
				"write through a computed expression inside map-range iteration: order is nondeterministic")
			return
		}
		if base.Name == "_" {
			return
		}
		obj := pass.Pkg.Info.Uses[base]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[base]
		}
		// Local to the loop (including the key/value variables a :=
		// range declares): the write cannot outlive an iteration.
		if obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.Body.End() {
			return
		}
		pass.Reportf(base.Pos(),
			"write to %s inside map-range iteration: iteration order is nondeterministic; iterate sorted keys instead",
			base.Name)
	}
	if rs.Tok == token.ASSIGN {
		// for k = range m with a pre-declared k: after the loop k holds
		// an order-dependent key.
		if rs.Key != nil {
			report(rs.Key)
		}
		if rs.Value != nil {
			report(rs.Value)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true // fresh locals
			}
			for _, lhs := range x.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(x.X)
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && len(x.Args) > 0 {
				if b, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "delete" {
					report(x.Args[0])
				}
			}
		}
		return true
	})
}
