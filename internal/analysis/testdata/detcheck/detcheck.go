// Package fixture exercises the detcheck analyzer: no wall-clock reads
// or global math/rand outside //toc:timing functions, and no map-range
// loops with externally visible writes.
package fixture

import (
	"math/rand"
	"time"
)

var sink float64

// wallClock reads the clock without the timing annotation.
func wallClock() {
	t := time.Now()                // want `time.Now in a determinism-critical package`
	sink = time.Since(t).Seconds() // want `time.Since in a determinism-critical package`
}

// epochTimer is an annotated timer: the same calls are fine.
//
//toc:timing
func epochTimer() {
	t := time.Now()
	sink = time.Since(t).Seconds()
}

// globalRand draws from the process-global, randomly seeded source.
func globalRand() int {
	return rand.Intn(10) // want `rand.Intn in a determinism-critical package`
}

// seededRand constructs an explicit generator from a seed — the
// sanctioned pattern — and its methods stay legal.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// mapRangeOuterWrite accumulates into state declared outside the loop:
// iteration order leaks into the result.
func mapRangeOuterWrite(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `write to total inside map-range iteration`
	}
	return total
}

// mapRangeOuterKey leaves an order-dependent key behind after the loop.
func mapRangeOuterKey(m map[string]int) string {
	var last string
	for last = range m { // want `write to last inside map-range iteration`
	}
	return last
}

// mapRangeDelete mutates the map itself mid-iteration.
func mapRangeDelete(m map[string]int) {
	for k := range m {
		if k == "" {
			delete(m, k) // want `write to m inside map-range iteration`
		}
	}
}

// mapRangeLocalOnly writes only loop-local state: fine.
func mapRangeLocalOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		w := v * 2
		w++
		if w > n { // reads of outer state are fine; n is written outside the loop
			return w
		}
	}
	return n
}

// sliceRangeOuterWrite ranges a slice, not a map: order is fixed, so
// accumulating is fine.
func sliceRangeOuterWrite(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}
