// Package fixture exercises the guardedby analyzer: fields annotated
// //toc:guardedby mu must only be accessed with mu held.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	//toc:guardedby mu
	n int
	//toc:guardedby mu
	m map[int]int

	unguarded int // no annotation: never flagged
}

// lockedAccess holds the lock across the access: fine.
func (c *counter) lockedAccess() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// rlockedAccess reads under the read lock: fine.
func (c *counter) rlockedAccess() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// bareAccess touches guarded state with no lock at all.
func (c *counter) bareAccess() {
	c.n++ // want `access to n requires mu held`
}

// unlockThenAccess releases the lock and keeps going: the access after
// the Unlock is no longer protected.
func (c *counter) unlockThenAccess() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `access to n requires mu held`
}

// earlyReturnUnlock unlocks only on the branch that leaves the
// function; the fall-through still holds the lock and must not be
// flagged.
func (c *counter) earlyReturnUnlock(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// bumpLocked documents its precondition instead of locking.
//
//toc:locked mu
func (c *counter) bumpLocked() {
	c.n++
	c.m[c.n] = c.n
}

// helperWithoutAnnotation has the same shape but no annotation.
func (c *counter) helperWithoutAnnotation() {
	c.n++ // want `access to n requires mu held`
}

// closureMustLockItself: the literal may run on another goroutine after
// the enclosing function released the lock, so the enclosing Lock does
// not cover it.
func (c *counter) closureMustLockItself() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 1
	return func() {
		c.n = 2 // want `access to n requires mu held`
	}
}

// closureLocking takes the lock inside the literal: fine.
func (c *counter) closureLocking() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n = 2
	}
}

// newCounter initializes fields on a value it just created; nothing else
// can see it yet, so no lock is needed.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.m = map[int]int{}
	return c
}

// escapedParam is not a fresh value: the caller may share it.
func initCounter(c *counter) {
	c.n = 0 // want `access to n requires mu held`
}

// unguardedAccess touches only unannotated state: never flagged.
func (c *counter) unguardedAccess() {
	c.unguarded++
}

// supervisor mirrors the async engine's crash-recovery loop: membership
// counters and the panic chain are locked per event — never across the
// blocking channel operations — and spawned worker closures must take
// the lock themselves because they outlive the spawning scope.
type supervisor struct {
	mu sync.Mutex
	//toc:guardedby mu
	live int
	//toc:guardedby mu
	chain []string

	events chan string
	done   chan struct{}
}

// superviseLoop locks around each event's bookkeeping and releases
// before blocking on the next receive: fine.
func (s *supervisor) superviseLoop() {
	for {
		select {
		case <-s.done:
			return
		case ev := <-s.events:
			s.mu.Lock()
			s.live--
			s.chain = append(s.chain, ev)
			dead := s.live == 0
			s.mu.Unlock()
			if dead {
				return
			}
		}
	}
}

// recount lets an access trail past the unlock: no longer protected.
func (s *supervisor) recount(ev string) {
	s.mu.Lock()
	s.live++
	s.chain = append(s.chain, ev)
	s.mu.Unlock()
	s.chain = nil // want `access to chain requires mu held`
}

// spawn's goroutine bodies run after spawn returns, so the enclosing
// lock does not cover them: each closure must lock for itself.
func (s *supervisor) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live++
	go func() {
		s.mu.Lock()
		s.live--
		s.mu.Unlock()
	}()
	go func() {
		s.live-- // want `access to live requires mu held`
	}()
}

// drainLocked documents its precondition like the supervisor's helpers.
//
//toc:locked mu
func (s *supervisor) drainLocked() []string {
	out := s.chain
	s.chain = nil
	return out
}
