// Package analysis is the repo's static-analysis toolkit: a minimal
// go/analysis-style framework (built on the standard library's go/ast and
// go/types, so it needs no external modules) plus the custom analyzers
// cmd/toclint compiles into a multichecker.
//
// The analyzers mechanically enforce the invariants the codebase
// otherwise guarantees only by convention and by tests that must happen
// to exercise the race:
//
//   - guardedby: fields annotated "//toc:guardedby <mu>" may only be
//     accessed while that mutex is held (see guardedby.go).
//   - detcheck: determinism-critical packages must not iterate maps with
//     side effects and must not read wall-clock time or the global
//     math/rand source outside "//toc:timing" functions (see detcheck.go).
//
// The third invariant class — hot kernel loops staying bounds-check-free
// — is enforced by cmd/bcecheck, which diffs the compiler's
// -d=ssa/check_bce inventory against a committed golden baseline rather
// than inspecting the AST.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check; a subset of golang.org/x/tools'
// analysis.Analyzer, enough for the repo's own linters.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string
	// Doc is the one-paragraph description toclint -help prints.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(pkgPath string) bool
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// Pass connects an Analyzer run to one loaded package and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Pkg

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers that apply to each package and returns every
// diagnostic, sorted by position.
func Run(pkgs []*Pkg, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// A directive is one machine-readable "//toc:<name> <args>" comment. The
// no-space-after-slashes form mirrors //go:build: gofmt leaves it alone
// and godoc hides it from rendered documentation.
type directive struct {
	name string // "guardedby", "locked", "timing"
	args []string
}

// directives extracts the //toc: directives from the given comment
// groups (nil groups are skipped).
func directives(groups ...*ast.CommentGroup) []directive {
	var out []directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, "//toc:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			out = append(out, directive{name: fields[0], args: fields[1:]})
		}
	}
	return out
}

// directiveArgs returns the concatenated arguments of every //toc:<name>
// directive in the groups — e.g. the mutex names of "//toc:locked mu".
func directiveArgs(name string, groups ...*ast.CommentGroup) []string {
	var out []string
	for _, d := range directives(groups...) {
		if d.name == name {
			out = append(out, d.args...)
		}
	}
	return out
}

// hasDirective reports whether any group carries //toc:<name>.
func hasDirective(name string, groups ...*ast.CommentGroup) bool {
	for _, d := range directives(groups...) {
		if d.name == name {
			return true
		}
	}
	return false
}

// baseIdent chases a selector/index/deref chain to its base identifier:
// s.stats.ResidentBytes -> s, (*p).cache[i] -> p. It returns nil when the
// base is not a plain identifier (a call result, a literal, ...).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Analyzers is the multichecker's suite, in the order cmd/toclint runs
// them.
var Analyzers = []*Analyzer{GuardedBy, DetCheck}
