// Package faultpoint is the fault-injection layer behind the repo's
// crash/resume identity tests: named points in the storage and engine
// code (spill writes, checkpoint renames, the gap between a parameter
// update and its clock publish) call Hit or Err, and a test — or the
// toctrain -faultpoint debug flag — arms an action at a point to kill,
// delay or fail the process exactly there.
//
// Disarmed (the production state) a Hit or Err is one atomic load; no
// registration, no allocation, no lock. Armed actions:
//
//   - crash: terminate the process immediately with CrashExitCode, the
//     moral equivalent of kill -9 at that line — no deferred cleanup
//     runs, which is the point: recovery must cope with whatever a real
//     crash leaves behind (a half-written spill span, an orphaned
//     checkpoint temp file).
//   - delay: sleep for a duration, stretching the window between two
//     events so a racing signal or writer lands inside it.
//   - errorAfter: return an injected *Error from Err on exactly the
//     Nth hit — a one-shot transient fault; hits before and after
//     succeed, so a bounded retry is expected to recover.
//   - errorEvery: return an injected *Error from Err on each hit
//     independently with probability p, drawn from a stream seeded at
//     arm time — deterministic given the seed and the hit sequence.
//     Probability 1 is a permanent fault.
//
// Crash and delay fire on the Nth Hit of their point and on every hit
// past it (N = 1 fires on the first), so a test can let two spill
// writes succeed and kill the third. The error actions fire only at
// Err call sites; a plain Hit still counts toward the point's hit
// counter but never observes the injected error.
package faultpoint

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CrashExitCode is the status a crash action exits with; tests assert on
// it to distinguish an injected kill from an ordinary failure.
const CrashExitCode = 7

// EnvVar names the environment variable ArmFromEnv reads; subprocess
// tests use it to arm points in a child they are about to sacrifice.
const EnvVar = "TOC_FAULTPOINTS"

// Action is what an armed point does when its hit count is reached.
type Action int

const (
	// Crash exits the process with CrashExitCode, skipping all deferred
	// cleanup — a simulated kill -9.
	Crash Action = iota
	// Delay sleeps for the armed duration on every hit at or past the
	// threshold, stretching the window the point sits in.
	Delay
	// ErrorAfter makes Err return an injected *Error on exactly the Nth
	// hit: a one-shot transient fault that a bounded retry recovers.
	ErrorAfter
	// ErrorEvery makes Err return an injected *Error on each hit
	// independently with the armed probability, from a seeded stream.
	// Probability 1 is a permanent fault.
	ErrorEvery
)

// Error is the failure an error-mode point injects. It is typed so
// callers and tests can unwrap an error chain and distinguish an
// injected fault from a real one.
type Error struct {
	Point string // the armed point that fired
	Hit   int64  // the 1-based hit it fired on
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultpoint: injected error at %s (hit %d)", e.Point, e.Hit)
}

// point is one armed fault.
type point struct {
	action Action
	after  int64 // fire on the Nth hit (1-based); ErrorAfter fires only on it
	delay  time.Duration
	prob   float64    // ErrorEvery firing probability
	rng    *rand.Rand // ErrorEvery's seeded stream
	hits   int64
}

var (
	// armedAny short-circuits Hit when nothing is armed, keeping the
	// production cost of an instrumented line to one atomic load.
	armedAny atomic.Bool

	mu     sync.Mutex
	points map[string]*point

	// exit is swapped out by unit tests that need to observe a crash
	// without dying; everything else really exits.
	exit = os.Exit
)

// install registers p under name; callers hold no locks.
func install(name string, p *point) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = p
	armedAny.Store(true)
}

// Arm installs an action at a named point, firing on the Nth hit
// (after <= 0 means the first). Delay actions use d; crash actions
// ignore it. Re-arming a point resets its hit count.
func Arm(name string, action Action, after int, d time.Duration) {
	if after <= 0 {
		after = 1
	}
	install(name, &point{action: action, after: int64(after), delay: d})
}

// ArmError installs a one-shot error fault: Err returns an injected
// *Error on exactly the nth hit (n <= 0 means the first) and nil on
// every other hit. Re-arming a point resets its hit count.
func ArmError(name string, after int) {
	if after <= 0 {
		after = 1
	}
	install(name, &point{action: ErrorAfter, after: int64(after)})
}

// ArmErrorEvery installs a probabilistic error fault: each Err hit
// fails independently with probability p, drawn from a stream seeded by
// seed so the failure pattern is reproducible. p >= 1 fails every hit
// (a permanent fault); p <= 0 never fires but still counts hits.
func ArmErrorEvery(name string, p float64, seed int64) {
	install(name, &point{action: ErrorEvery, prob: p, rng: rand.New(rand.NewSource(seed))})
}

// Reset disarms every point. Tests that arm in-process must Reset on
// cleanup or later tests inherit the faults.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armedAny.Store(false)
}

// Armed reports whether the named point currently has an action
// installed (fired or not). Instrumented code may branch on it to set up
// a more adversarial path — e.g. splitting one write in two so a crash
// can land between the halves — that would be pointless in production.
func Armed(name string) bool {
	if !armedAny.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[name]
	return ok
}

// HitCount returns how many times the named point has been passed (by
// Hit or Err) since it was armed; disarmed points report 0. Tests and
// stat printers use it to assert an injected fault actually exercised
// its code path.
func HitCount(name string) int64 {
	if !armedAny.Load() {
		return 0
	}
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// HitCounts returns a snapshot of every armed point's hit counter,
// keyed by point name. The map is a copy; mutating it has no effect.
func HitCounts() map[string]int64 {
	if !armedAny.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	if len(points) == 0 {
		return nil
	}
	out := make(map[string]int64, len(points))
	for name, p := range points {
		out[name] = p.hits
	}
	return out
}

// pass records one hit at name and decides what fires. fired is false
// when the point is disarmed or its condition did not trigger; err is
// non-nil only for error-mode points that fired.
func pass(name string) (fired bool, action Action, d time.Duration, err error) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		return false, 0, 0, nil
	}
	p.hits++
	action = p.action
	d = p.delay
	switch p.action {
	case Crash, Delay:
		fired = p.hits >= p.after
	case ErrorAfter:
		fired = p.hits == p.after
	case ErrorEvery:
		fired = p.rng.Float64() < p.prob
	}
	if fired && (p.action == ErrorAfter || p.action == ErrorEvery) {
		err = &Error{Point: name, Hit: p.hits}
	}
	return fired, action, d, err
}

// Hit marks execution passing the named point. Disarmed points (and the
// whole registry when nothing is armed) are no-ops. Error-mode points
// count the hit but never fire here — only Err call sites can observe
// an injected error.
func Hit(name string) {
	if !armedAny.Load() {
		return
	}
	fired, action, d, _ := pass(name)
	if !fired {
		return
	}
	switch action {
	case Crash:
		exit(CrashExitCode)
	case Delay:
		time.Sleep(d)
	}
}

// Err marks execution passing the named error-capable point and returns
// the injected failure, if any. Disarmed points cost one atomic load
// and return nil. Points armed with Crash or Delay behave exactly as at
// a Hit site (and return nil), so one instrumented line serves every
// action.
func Err(name string) error {
	if !armedAny.Load() {
		return nil
	}
	fired, action, d, err := pass(name)
	if !fired {
		return nil
	}
	switch action {
	case Crash:
		exit(CrashExitCode)
	case Delay:
		time.Sleep(d)
	}
	return err
}

// ArmSpec arms points from a comma-separated spec, the grammar the
// toctrain -faultpoint flag and the EnvVar variable share:
//
//	name=crash               crash on the first hit
//	name=crash:3             crash on the third hit
//	name=delay:50ms          sleep 50ms on every hit
//	name=delay:50ms:2        sleep 50ms from the second hit on
//	name=errorAfter:3        inject one error on exactly the third hit
//	name=errorEvery:0.2      each hit errors with probability 0.2 (seed 1)
//	name=errorEvery:0.2:7    same, jitter stream seeded with 7
//
// An empty spec arms nothing and is not an error. Parse errors name the
// offending token so a long spec pinpoints its typo.
func ArmSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad spec entry %q (want name=action[:arg[:afterN]])", part)
		}
		fields := strings.Split(rest, ":")
		switch fields[0] {
		case "crash":
			after := 1
			if len(fields) > 2 {
				return fmt.Errorf("faultpoint: bad crash spec %q: extra token %q (want name=crash[:afterN])", part, fields[2])
			}
			if len(fields) == 2 {
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return fmt.Errorf("faultpoint: bad crash hit count %q in %q: %v", fields[1], part, err)
				}
				after = n
			}
			Arm(name, Crash, after, 0)
		case "delay":
			if len(fields) < 2 || len(fields) > 3 {
				return fmt.Errorf("faultpoint: bad delay spec %q (want name=delay:dur[:afterN])", part)
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return fmt.Errorf("faultpoint: bad delay duration %q in %q: %v", fields[1], part, err)
			}
			after := 1
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					return fmt.Errorf("faultpoint: bad delay hit count %q in %q: %v", fields[2], part, err)
				}
				after = n
			}
			Arm(name, Delay, after, d)
		case "errorAfter":
			if len(fields) != 2 {
				return fmt.Errorf("faultpoint: bad errorAfter spec %q (want name=errorAfter:n)", part)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("faultpoint: bad errorAfter hit count %q in %q: %v", fields[1], part, err)
			}
			ArmError(name, n)
		case "errorEvery":
			if len(fields) < 2 || len(fields) > 3 {
				return fmt.Errorf("faultpoint: bad errorEvery spec %q (want name=errorEvery:p[:seed])", part)
			}
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return fmt.Errorf("faultpoint: bad errorEvery probability %q in %q: %v", fields[1], part, err)
			}
			if p < 0 || p > 1 {
				return fmt.Errorf("faultpoint: errorEvery probability %q in %q out of range [0,1]", fields[1], part)
			}
			seed := int64(1)
			if len(fields) == 3 {
				s, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return fmt.Errorf("faultpoint: bad errorEvery seed %q in %q: %v", fields[2], part, err)
				}
				seed = s
			}
			ArmErrorEvery(name, p, seed)
		default:
			return fmt.Errorf("faultpoint: unknown action %q in %q", fields[0], part)
		}
	}
	return nil
}

// ArmFromEnv arms points from the EnvVar spec, for subprocesses that
// cannot be reached by an in-process Arm. An unset variable arms
// nothing.
func ArmFromEnv() error {
	return ArmSpec(os.Getenv(EnvVar))
}
