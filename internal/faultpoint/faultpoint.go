// Package faultpoint is the fault-injection layer behind the repo's
// crash/resume identity tests: named points in the storage and engine
// code (spill writes, checkpoint renames, the gap between a parameter
// update and its clock publish) call Hit, and a test — or the toctrain
// -faultpoint debug flag — arms an action at a point to kill, delay or
// fail the process exactly there.
//
// Disarmed (the production state) a Hit is one atomic load; no
// registration, no allocation, no lock. Armed actions:
//
//   - crash: terminate the process immediately with CrashExitCode, the
//     moral equivalent of kill -9 at that line — no deferred cleanup
//     runs, which is the point: recovery must cope with whatever a real
//     crash leaves behind (a half-written spill span, an orphaned
//     checkpoint temp file).
//   - delay: sleep for a duration, stretching the window between two
//     events so a racing signal or writer lands inside it.
//
// An action fires on the Nth Hit of its point (N = 1 fires on the
// first), so a test can let two spill writes succeed and kill the third.
package faultpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CrashExitCode is the status a crash action exits with; tests assert on
// it to distinguish an injected kill from an ordinary failure.
const CrashExitCode = 7

// EnvVar names the environment variable ArmFromEnv reads; subprocess
// tests use it to arm points in a child they are about to sacrifice.
const EnvVar = "TOC_FAULTPOINTS"

// Action is what an armed point does when its hit count is reached.
type Action int

const (
	// Crash exits the process with CrashExitCode, skipping all deferred
	// cleanup — a simulated kill -9.
	Crash Action = iota
	// Delay sleeps for the armed duration on every hit at or past the
	// threshold, stretching the window the point sits in.
	Delay
)

// point is one armed fault.
type point struct {
	action Action
	after  int64 // fire on the Nth hit (1-based)
	delay  time.Duration
	hits   int64
}

var (
	// armedAny short-circuits Hit when nothing is armed, keeping the
	// production cost of an instrumented line to one atomic load.
	armedAny atomic.Bool

	mu     sync.Mutex
	points map[string]*point

	// exit is swapped out by unit tests that need to observe a crash
	// without dying; everything else really exits.
	exit = os.Exit
)

// Arm installs an action at a named point, firing on the Nth hit
// (after <= 0 means the first). Delay actions use d; crash actions
// ignore it. Re-arming a point resets its hit count.
func Arm(name string, action Action, after int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if after <= 0 {
		after = 1
	}
	points[name] = &point{action: action, after: int64(after), delay: d}
	armedAny.Store(true)
}

// Reset disarms every point. Tests that arm in-process must Reset on
// cleanup or later tests inherit the faults.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armedAny.Store(false)
}

// Armed reports whether the named point currently has an action
// installed (fired or not). Instrumented code may branch on it to set up
// a more adversarial path — e.g. splitting one write in two so a crash
// can land between the halves — that would be pointless in production.
func Armed(name string) bool {
	if !armedAny.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[name]
	return ok
}

// Hit marks execution passing the named point. Disarmed points (and the
// whole registry when nothing is armed) are no-ops.
func Hit(name string) {
	if !armedAny.Load() {
		return
	}
	mu.Lock()
	p := points[name]
	var fire bool
	var action Action
	var d time.Duration
	if p != nil {
		p.hits++
		fire = p.hits >= p.after
		action = p.action
		d = p.delay
	}
	mu.Unlock()
	if !fire {
		return
	}
	switch action {
	case Crash:
		exit(CrashExitCode)
	case Delay:
		time.Sleep(d)
	}
}

// ArmSpec arms points from a comma-separated spec, the grammar the
// toctrain -faultpoint flag and the EnvVar variable share:
//
//	name=crash          crash on the first hit
//	name=crash:3        crash on the third hit
//	name=delay:50ms     sleep 50ms on every hit
//	name=delay:50ms:2   sleep 50ms from the second hit on
//
// An empty spec arms nothing and is not an error.
func ArmSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad spec entry %q (want name=action[:arg[:afterN]])", part)
		}
		fields := strings.Split(rest, ":")
		switch fields[0] {
		case "crash":
			after := 1
			if len(fields) > 2 {
				return fmt.Errorf("faultpoint: bad crash spec %q", part)
			}
			if len(fields) == 2 {
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return fmt.Errorf("faultpoint: bad crash hit count in %q: %v", part, err)
				}
				after = n
			}
			Arm(name, Crash, after, 0)
		case "delay":
			if len(fields) < 2 || len(fields) > 3 {
				return fmt.Errorf("faultpoint: bad delay spec %q (want name=delay:dur[:afterN])", part)
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return fmt.Errorf("faultpoint: bad delay duration in %q: %v", part, err)
			}
			after := 1
			if len(fields) == 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					return fmt.Errorf("faultpoint: bad delay hit count in %q: %v", part, err)
				}
				after = n
			}
			Arm(name, Delay, after, d)
		default:
			return fmt.Errorf("faultpoint: unknown action %q in %q", fields[0], part)
		}
	}
	return nil
}

// ArmFromEnv arms points from the EnvVar spec, for subprocesses that
// cannot be reached by an in-process Arm. An unset variable arms
// nothing.
func ArmFromEnv() error {
	return ArmSpec(os.Getenv(EnvVar))
}
