package faultpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// captureExit swaps the process-exit hook for a recorder, restoring it
// (and the registry) on cleanup.
func captureExit(t *testing.T) *[]int {
	t.Helper()
	old := exit
	var codes []int
	exit = func(code int) { codes = append(codes, code) }
	t.Cleanup(func() {
		exit = old
		Reset()
	})
	return &codes
}

func TestDisarmedHitIsNoop(t *testing.T) {
	Reset()
	Hit("nothing.armed.here") // must not panic, block, or exit
	if Armed("nothing.armed.here") {
		t.Fatal("unarmed point reported armed")
	}
}

func TestCrashFiresOnNthHit(t *testing.T) {
	codes := captureExit(t)
	Arm("p", Crash, 3, 0)
	Hit("p")
	Hit("p")
	if len(*codes) != 0 {
		t.Fatalf("crash fired before the configured hit: %v", *codes)
	}
	Hit("p")
	if len(*codes) != 1 || (*codes)[0] != CrashExitCode {
		t.Fatalf("crash exit codes = %v, want [%d]", *codes, CrashExitCode)
	}
}

func TestDelayFires(t *testing.T) {
	defer Reset()
	Arm("d", Delay, 1, 30*time.Millisecond)
	start := time.Now()
	Hit("d")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay point slept only %v", elapsed)
	}
}

func TestResetDisarms(t *testing.T) {
	codes := captureExit(t)
	Arm("p", Crash, 1, 0)
	Reset()
	Hit("p")
	if len(*codes) != 0 {
		t.Fatalf("hit after Reset fired: %v", *codes)
	}
}

func TestArmSpec(t *testing.T) {
	codes := captureExit(t)
	if err := ArmSpec("a=crash:2, b=delay:1ms, c=crash"); err != nil {
		t.Fatal(err)
	}
	if !Armed("a") || !Armed("b") || !Armed("c") {
		t.Fatal("spec did not arm all points")
	}
	Hit("c")
	if len(*codes) != 1 {
		t.Fatalf("c=crash did not fire on first hit: %v", *codes)
	}
	Hit("a")
	if len(*codes) != 1 {
		t.Fatal("a=crash:2 fired on first hit")
	}
	Hit("a")
	if len(*codes) != 2 {
		t.Fatal("a=crash:2 did not fire on second hit")
	}
}

func TestArmSpecEmptyAndErrors(t *testing.T) {
	defer Reset()
	if err := ArmSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"noequals", "=crash", "p=explode", "p=crash:x", "p=delay", "p=delay:zzz",
		"p=errorAfter", "p=errorAfter:x", "p=errorEvery", "p=errorEvery:nope", "p=errorEvery:2", "p=errorEvery:0.5:s"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("spec %q: want error, got nil", bad)
		}
	}
}

func TestArmSpecErrorsNameBadToken(t *testing.T) {
	defer Reset()
	for _, tc := range []struct{ spec, token string }{
		{"p=crash:x", `"x"`},
		{"p=delay:zzz", `"zzz"`},
		{"p=errorAfter:x", `"x"`},
		{"p=errorEvery:nope", `"nope"`},
		{"p=errorEvery:0.5:s", `"s"`},
		{"p=crash:1:2", `"2"`},
	} {
		err := ArmSpec(tc.spec)
		if err == nil {
			t.Errorf("spec %q: want error, got nil", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.token) {
			t.Errorf("spec %q: error %q does not name bad token %s", tc.spec, err, tc.token)
		}
	}
}

func TestErrorAfterFiresExactlyOnce(t *testing.T) {
	defer Reset()
	ArmError("e", 3)
	for i := 1; i <= 5; i++ {
		err := Err("e")
		if i == 3 {
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("hit 3: got %v, want *Error", err)
			}
			if fe.Point != "e" || fe.Hit != 3 {
				t.Fatalf("fired error = %+v, want point e hit 3", fe)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := HitCount("e"); got != 5 {
		t.Fatalf("HitCount = %d, want 5", got)
	}
}

func TestErrorEveryIsSeededAndDeterministic(t *testing.T) {
	defer Reset()
	fires := func(seed int64) []bool {
		ArmErrorEvery("e", 0.5, seed)
		out := make([]bool, 32)
		for i := range out {
			out[i] = Err("e") != nil
		}
		return out
	}
	a, b := fires(7), fires(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	any := false
	for _, f := range a {
		any = any || f
	}
	if !any {
		t.Fatal("p=0.5 over 32 hits never fired")
	}
	// Permanent fault: p=1 fires on every hit.
	ArmErrorEvery("perm", 1, 1)
	for i := 0; i < 4; i++ {
		if Err("perm") == nil {
			t.Fatalf("p=1 hit %d did not fire", i+1)
		}
	}
	// p=0 never fires but still counts hits.
	ArmErrorEvery("never", 0, 1)
	for i := 0; i < 4; i++ {
		if Err("never") != nil {
			t.Fatal("p=0 fired")
		}
	}
	if got := HitCount("never"); got != 4 {
		t.Fatalf("HitCount(never) = %d, want 4", got)
	}
}

func TestHitDoesNotFireErrorModes(t *testing.T) {
	defer Reset()
	ArmError("e", 1)
	Hit("e") // consumes the firing hit without observing it
	if err := Err("e"); err != nil {
		t.Fatalf("errorAfter:1 fired on hit 2 after a plain Hit: %v", err)
	}
	if got := HitCount("e"); got != 2 {
		t.Fatalf("HitCount = %d, want 2", got)
	}
}

func TestErrHonorsCrashAndDelay(t *testing.T) {
	codes := captureExit(t)
	Arm("c", Crash, 1, 0)
	if err := Err("c"); err != nil {
		t.Fatalf("crash point returned error %v from Err", err)
	}
	if len(*codes) != 1 || (*codes)[0] != CrashExitCode {
		t.Fatalf("Err at crash point exits = %v, want [%d]", *codes, CrashExitCode)
	}
	Arm("d", Delay, 1, 30*time.Millisecond)
	start := time.Now()
	if err := Err("d"); err != nil {
		t.Fatalf("delay point returned error %v from Err", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Err at delay point slept only %v", elapsed)
	}
}

func TestHitCounts(t *testing.T) {
	defer Reset()
	if HitCounts() != nil {
		t.Fatal("disarmed HitCounts should be nil")
	}
	ArmError("a", 100)
	ArmErrorEvery("b", 0, 1)
	Err("a")
	Err("a")
	Err("b")
	got := HitCounts()
	if got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("HitCounts = %v, want a:2 b:1", got)
	}
	if HitCount("missing") != 0 {
		t.Fatal("HitCount of unarmed point != 0")
	}
}

func TestArmSpecErrorModes(t *testing.T) {
	defer Reset()
	if err := ArmSpec("a=errorAfter:2, b=errorEvery:1, c=errorEvery:0.5:9"); err != nil {
		t.Fatal(err)
	}
	if !Armed("a") || !Armed("b") || !Armed("c") {
		t.Fatal("spec did not arm all points")
	}
	if err := Err("a"); err != nil {
		t.Fatalf("a hit 1: %v", err)
	}
	if err := Err("a"); err == nil {
		t.Fatal("a=errorAfter:2 did not fire on hit 2")
	}
	if err := Err("b"); err == nil {
		t.Fatal("b=errorEvery:1 did not fire")
	}
}
