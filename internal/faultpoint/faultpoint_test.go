package faultpoint

import (
	"testing"
	"time"
)

// captureExit swaps the process-exit hook for a recorder, restoring it
// (and the registry) on cleanup.
func captureExit(t *testing.T) *[]int {
	t.Helper()
	old := exit
	var codes []int
	exit = func(code int) { codes = append(codes, code) }
	t.Cleanup(func() {
		exit = old
		Reset()
	})
	return &codes
}

func TestDisarmedHitIsNoop(t *testing.T) {
	Reset()
	Hit("nothing.armed.here") // must not panic, block, or exit
	if Armed("nothing.armed.here") {
		t.Fatal("unarmed point reported armed")
	}
}

func TestCrashFiresOnNthHit(t *testing.T) {
	codes := captureExit(t)
	Arm("p", Crash, 3, 0)
	Hit("p")
	Hit("p")
	if len(*codes) != 0 {
		t.Fatalf("crash fired before the configured hit: %v", *codes)
	}
	Hit("p")
	if len(*codes) != 1 || (*codes)[0] != CrashExitCode {
		t.Fatalf("crash exit codes = %v, want [%d]", *codes, CrashExitCode)
	}
}

func TestDelayFires(t *testing.T) {
	defer Reset()
	Arm("d", Delay, 1, 30*time.Millisecond)
	start := time.Now()
	Hit("d")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay point slept only %v", elapsed)
	}
}

func TestResetDisarms(t *testing.T) {
	codes := captureExit(t)
	Arm("p", Crash, 1, 0)
	Reset()
	Hit("p")
	if len(*codes) != 0 {
		t.Fatalf("hit after Reset fired: %v", *codes)
	}
}

func TestArmSpec(t *testing.T) {
	codes := captureExit(t)
	if err := ArmSpec("a=crash:2, b=delay:1ms, c=crash"); err != nil {
		t.Fatal(err)
	}
	if !Armed("a") || !Armed("b") || !Armed("c") {
		t.Fatal("spec did not arm all points")
	}
	Hit("c")
	if len(*codes) != 1 {
		t.Fatalf("c=crash did not fire on first hit: %v", *codes)
	}
	Hit("a")
	if len(*codes) != 1 {
		t.Fatal("a=crash:2 fired on first hit")
	}
	Hit("a")
	if len(*codes) != 2 {
		t.Fatal("a=crash:2 did not fire on second hit")
	}
}

func TestArmSpecEmptyAndErrors(t *testing.T) {
	defer Reset()
	if err := ArmSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"noequals", "=crash", "p=explode", "p=crash:x", "p=delay", "p=delay:zzz"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("spec %q: want error, got nil", bad)
		}
	}
}
