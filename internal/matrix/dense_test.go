package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, rows, cols int, sparsity float64) *Dense {
	d := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				d.Set(i, j, math.Round(rng.NormFloat64()*100)/100)
			}
		}
	}
	return d
}

func TestNewDenseShape(t *testing.T) {
	d := NewDense(3, 4)
	if d.Rows() != 3 || d.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", d.Rows(), d.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if d.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 7.5)
	if got := d.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := d.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestNewDenseFromRows(t *testing.T) {
	d := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if d.Rows() != 3 || d.Cols() != 2 {
		t.Fatalf("shape %dx%d, want 3x2", d.Rows(), d.Cols())
	}
	if d.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", d.At(2, 1))
	}
}

func TestNewDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewDenseFromRows([][]float64{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	d := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	c := d.Clone()
	c.Set(0, 0, 99)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestSliceRows(t *testing.T) {
	d := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	s := d.SliceRows(1, 3)
	want := NewDenseFromRows([][]float64{{3, 4}, {5, 6}})
	if !s.Equal(want) {
		t.Fatalf("SliceRows = %v, want %v", s, want)
	}
	// copies, not aliases
	s.Set(0, 0, -1)
	if d.At(1, 0) != 3 {
		t.Fatal("SliceRows aliases original")
	}
}

func TestNNZAndSparsity(t *testing.T) {
	d := NewDenseFromRows([][]float64{{1, 0}, {0, 2}})
	if d.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", d.NNZ())
	}
	if d.Sparsity() != 0.5 {
		t.Fatalf("Sparsity = %v, want 0.5", d.Sparsity())
	}
	if NewDense(0, 0).Sparsity() != 0 {
		t.Fatal("empty matrix sparsity should be 0")
	}
}

func TestTranspose(t *testing.T) {
	d := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := d.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestVecMul(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.VecMul([]float64{1, -1})
	want := []float64{-2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VecMul = %v, want %v", got, want)
		}
	}
}

func TestMulMat(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	m := NewDenseFromRows([][]float64{{1, 0}, {0, 1}})
	if !a.MulMat(m).Equal(a) {
		t.Fatal("A·I != A")
	}
	m2 := NewDenseFromRows([][]float64{{2}, {3}})
	got := a.MulMat(m2)
	want := NewDenseFromRows([][]float64{{8}, {18}})
	if !got.Equal(want) {
		t.Fatalf("MulMat = %v, want %v", got, want)
	}
}

func TestMatMul(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	m := NewDenseFromRows([][]float64{{1, 1}})
	got := m.Clone() // keep m
	_ = got
	r := a.MatMul(m)
	want := NewDenseFromRows([][]float64{{4, 6}})
	if !r.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", r, want)
	}
}

// MulMat against MatMul via transpose identity: (M·A)ᵀ = Aᵀ·Mᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 9, 5, 0.6)
	m := randDense(rng, 3, 9, 0.9)
	left := a.MatMul(m).Transpose()
	right := a.Transpose().MulMat(m.Transpose())
	if !left.EqualApprox(right, 1e-12) {
		t.Fatal("(M·A)ᵀ != Aᵀ·Mᵀ")
	}
}

func TestScaleAndAddScalar(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 0}, {0, 2}})
	s := a.Scale(3)
	if s.At(0, 0) != 3 || s.At(1, 1) != 6 || s.At(0, 1) != 0 {
		t.Fatalf("Scale wrong: %v", s)
	}
	p := a.AddScalar(1)
	if p.At(0, 1) != 1 || p.At(0, 0) != 2 {
		t.Fatalf("AddScalar wrong: %v", p)
	}
	// originals untouched
	if a.At(0, 0) != 1 {
		t.Fatal("Scale mutated receiver")
	}
}

func TestAddSubMulElem(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}})
	b := NewDenseFromRows([][]float64{{3, 5}})
	if got := a.Add(b); got.At(0, 0) != 4 || got.At(0, 1) != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got.At(0, 0) != 2 || got.At(0, 1) != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.MulElem(b); got.At(0, 0) != 3 || got.At(0, 1) != 10 {
		t.Fatalf("MulElem = %v", got)
	}
}

func TestApply(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 4}, {9, 16}})
	got := a.Apply(math.Sqrt)
	want := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Apply = %v", got)
	}
	a.ApplyInPlace(func(v float64) float64 { return -v })
	if a.At(1, 1) != -16 {
		t.Fatal("ApplyInPlace failed")
	}
}

func TestDotAxpy(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	dst := []float64{1, 1}
	Axpy(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("Axpy = %v", dst)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{0, 0}, {1, 1}, {3, 7}, {50, 20}} {
		d := randDense(rng, shape[0], shape[1], 0.5)
		got, err := DeserializeDense(d.Serialize())
		if err != nil {
			t.Fatalf("round trip %v: %v", shape, err)
		}
		if !got.Equal(d) {
			t.Fatalf("round trip %v: mismatch", shape)
		}
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := DeserializeDense(nil); err == nil {
		t.Fatal("nil image should error")
	}
	if _, err := DeserializeDense(make([]byte, 10)); err == nil {
		t.Fatal("short image should error")
	}
	d := NewDense(2, 2)
	img := d.Serialize()
	if _, err := DeserializeDense(img[:len(img)-1]); err == nil {
		t.Fatal("truncated image should error")
	}
}

// Property: MulVec matches a scalar re-implementation.
func TestMulVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randDense(rng, rows, cols, 0.7)
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		got := a.MulVec(v)
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += a.At(i, j) * v[j]
			}
			if math.Abs(s-got[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: VecMul(v) == Transpose().MulVec(v).
func TestVecMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randDense(rng, rows, cols, 0.7)
		v := make([]float64, rows)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		got := a.VecMul(v)
		want := a.Transpose().MulVec(v)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a := NewDense(2, 3)
	cases := []func(){
		func() { a.MulVec(make([]float64, 2)) },
		func() { a.VecMul(make([]float64, 3)) },
		func() { a.MulMat(NewDense(2, 2)) },
		func() { a.MatMul(NewDense(2, 3)) },
		func() { a.Add(NewDense(3, 2)) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}
