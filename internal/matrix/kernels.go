package matrix

import "fmt"

// The functions in this file are the uncompressed execution techniques the
// paper calls DEN: plain dense kernels used both as the DEN baseline and as
// the ground truth that every compressed kernel is tested against.

// MulVec computes A·v for a dense A, returning a new vector of length Rows.
func (d *Dense) MulVec(v []float64) []float64 {
	if len(v) != d.cols {
		panic(fmt.Sprintf("matrix: MulVec dim mismatch %d != %d", len(v), d.cols))
	}
	r := make([]float64, d.rows)
	for i := 0; i < d.rows; i++ {
		row := d.Row(i)
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		r[i] = s
	}
	return r
}

// VecMul computes v·A for a dense A, returning a new vector of length Cols.
func (d *Dense) VecMul(v []float64) []float64 {
	if len(v) != d.rows {
		panic(fmt.Sprintf("matrix: VecMul dim mismatch %d != %d", len(v), d.rows))
	}
	r := make([]float64, d.cols)
	for i := 0; i < d.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := d.Row(i)
		for j, a := range row {
			r[j] += vi * a
		}
	}
	return r
}

// MulMat computes A·M, where M is cols x p. The result is rows x p.
func (d *Dense) MulMat(m *Dense) *Dense {
	if d.cols != m.rows {
		panic(fmt.Sprintf("matrix: MulMat dim mismatch %d != %d", d.cols, m.rows))
	}
	r := NewDense(d.rows, m.cols)
	for i := 0; i < d.rows; i++ {
		ri := r.Row(i)
		ai := d.Row(i)
		for k, a := range ai {
			if a == 0 {
				continue
			}
			mk := m.Row(k)
			for j, b := range mk {
				ri[j] += a * b
			}
		}
	}
	return r
}

// MatMul computes M·A, where M is p x rows. The result is p x cols.
func (d *Dense) MatMul(m *Dense) *Dense {
	if m.cols != d.rows {
		panic(fmt.Sprintf("matrix: MatMul dim mismatch %d != %d", m.cols, d.rows))
	}
	r := NewDense(m.rows, d.cols)
	for i := 0; i < m.rows; i++ {
		ri := r.Row(i)
		mi := m.Row(i)
		for k, b := range mi {
			if b == 0 {
				continue
			}
			ak := d.Row(k)
			for j, a := range ak {
				ri[j] += b * a
			}
		}
	}
	return r
}

// Scale returns a new matrix c*A (the sparse-safe element-wise A.*c).
func (d *Dense) Scale(c float64) *Dense {
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = v * c
	}
	return r
}

// ScaleInPlace multiplies every element by c in place.
func (d *Dense) ScaleInPlace(c float64) {
	for i := range d.data {
		d.data[i] *= c
	}
}

// AddScalar returns a new matrix A.+c (the sparse-unsafe element-wise op).
func (d *Dense) AddScalar(c float64) *Dense {
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = v + c
	}
	return r
}

// Add returns a new matrix A+B.
func (d *Dense) Add(o *Dense) *Dense {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: Add shape mismatch %dx%d vs %dx%d", d.rows, d.cols, o.rows, o.cols))
	}
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = v + o.data[i]
	}
	return r
}

// Sub returns a new matrix A-B.
func (d *Dense) Sub(o *Dense) *Dense {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: Sub shape mismatch %dx%d vs %dx%d", d.rows, d.cols, o.rows, o.cols))
	}
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = v - o.data[i]
	}
	return r
}

// AddInPlace adds o into d element-wise.
func (d *Dense) AddInPlace(o *Dense) {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: AddInPlace shape mismatch %dx%d vs %dx%d", d.rows, d.cols, o.rows, o.cols))
	}
	for i, v := range o.data {
		d.data[i] += v
	}
}

// AddScaledInPlace adds c*o into d element-wise (axpy).
func (d *Dense) AddScaledInPlace(c float64, o *Dense) {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: AddScaledInPlace shape mismatch %dx%d vs %dx%d", d.rows, d.cols, o.rows, o.cols))
	}
	for i, v := range o.data {
		d.data[i] += c * v
	}
}

// Apply returns a new matrix with f applied to every element.
func (d *Dense) Apply(f func(float64) float64) *Dense {
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = f(v)
	}
	return r
}

// ApplyInPlace applies f to every element in place.
func (d *Dense) ApplyInPlace(f func(float64) float64) {
	for i, v := range d.data {
		d.data[i] = f(v)
	}
}

// MulElem returns the Hadamard (element-wise) product A.*B.
func (d *Dense) MulElem(o *Dense) *Dense {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: MulElem shape mismatch %dx%d vs %dx%d", d.rows, d.cols, o.rows, o.cols))
	}
	r := NewDense(d.rows, d.cols)
	for i, v := range d.data {
		r.data[i] = v * o.data[i]
	}
	return r
}

// Dot computes the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst += c*src for equal-length vectors.
func Axpy(dst []float64, c float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("matrix: Axpy length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += c * v
	}
}
