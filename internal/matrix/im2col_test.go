package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIm2ColShape(t *testing.T) {
	img := NewDense(5, 6)
	out := Im2Col(img, 3, 2)
	if out.Rows() != 3*5 || out.Cols() != 6 {
		t.Fatalf("shape = %dx%d, want 15x6", out.Rows(), out.Cols())
	}
}

func TestIm2ColContent(t *testing.T) {
	img := NewDenseFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	})
	out := Im2Col(img, 2, 2)
	// windows row-major: (0,0) (0,1) (1,0) (1,1)
	want := NewDenseFromRows([][]float64{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	})
	if !out.Equal(want) {
		t.Fatalf("Im2Col = %v, want %v", out, want)
	}
}

// §6 claim: convolution == Im2Col(img)·vec(kernel), for any image/kernel.
func TestIm2ColConvEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 3+rng.Intn(8), 3+rng.Intn(8)
		kh, kw := 1+rng.Intn(3), 1+rng.Intn(3)
		img := NewDense(h, w)
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				img.Set(i, j, math.Round(rng.NormFloat64()*4)/4)
			}
		}
		kernel := NewDense(kh, kw)
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				kernel.Set(i, j, rng.NormFloat64())
			}
		}
		vec := make([]float64, kh*kw)
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				vec[i*kw+j] = kernel.At(i, j)
			}
		}
		got := Im2Col(img, kh, kw).MulVec(vec)
		want := Conv2DDense(img, kernel)
		idx := 0
		for y := 0; y < want.Rows(); y++ {
			for x := 0; x < want.Cols(); x++ {
				if math.Abs(got[idx]-want.At(y, x)) > 1e-9 {
					return false
				}
				idx++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColBadKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized kernel")
		}
	}()
	Im2Col(NewDense(3, 3), 4, 1)
}
