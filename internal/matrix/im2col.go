package matrix

import "fmt"

// Im2Col implements the image-to-column transform the paper's §6 proposes
// for applying TOC to convolutional neural networks: every kh × kw sliding
// window of a h × w image becomes one row of the output (stride 1, no
// padding), so convolution with a kernel is the matrix-vector product
// Im2Col(img) · vec(kernel). The replication duplicates pixels across
// windows, which is exactly the cross-row redundancy TOC exploits — the
// paper predicts (and the Im2Col bench confirms) higher compression ratios
// on the replicated matrix.
//
// img is a h × w matrix; the result has (h-kh+1)*(w-kw+1) rows and kh*kw
// columns, window pixels in row-major order.
func Im2Col(img *Dense, kh, kw int) *Dense {
	h, w := img.Rows(), img.Cols()
	if kh < 1 || kw < 1 || kh > h || kw > w {
		panic(fmt.Sprintf("matrix: Im2Col kernel %dx%d does not fit image %dx%d", kh, kw, h, w))
	}
	outRows := (h - kh + 1) * (w - kw + 1)
	out := NewDense(outRows, kh*kw)
	r := 0
	for y := 0; y+kh <= h; y++ {
		for x := 0; x+kw <= w; x++ {
			row := out.Row(r)
			for dy := 0; dy < kh; dy++ {
				copy(row[dy*kw:(dy+1)*kw], img.Row(y + dy)[x:x+kw])
			}
			r++
		}
	}
	return out
}

// Conv2DDense convolves img with a kh × kw kernel (stride 1, no padding)
// using plain dense arithmetic; it is the ground truth for the Im2Col +
// compressed-MulVec path.
func Conv2DDense(img *Dense, kernel *Dense) *Dense {
	kh, kw := kernel.Rows(), kernel.Cols()
	h, w := img.Rows(), img.Cols()
	out := NewDense(h-kh+1, w-kw+1)
	for y := 0; y < out.Rows(); y++ {
		for x := 0; x < out.Cols(); x++ {
			var s float64
			for dy := 0; dy < kh; dy++ {
				for dx := 0; dx < kw; dx++ {
					s += img.At(y+dy, x+dx) * kernel.At(dy, dx)
				}
			}
			out.Set(y, x, s)
		}
	}
	return out
}
