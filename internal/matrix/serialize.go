package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The DEN wire format, per the paper's baseline: the matrix is stored row by
// row with each value in IEEE-754 double format, preceded by a small header
// carrying the dimensions.

const denHeaderSize = 16 // two uint64 dims

// SerializedSize returns the number of bytes Serialize produces.
func (d *Dense) SerializedSize() int {
	return denHeaderSize + 8*len(d.data)
}

// Serialize encodes the matrix in the DEN binary format.
func (d *Dense) Serialize() []byte {
	buf := make([]byte, d.SerializedSize())
	binary.LittleEndian.PutUint64(buf[0:8], uint64(d.rows))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(d.cols))
	off := denHeaderSize
	for _, v := range d.data {
		binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(v))
		off += 8
	}
	return buf
}

// DeserializeDense decodes a DEN binary image produced by Serialize.
func DeserializeDense(buf []byte) (*Dense, error) {
	if len(buf) < denHeaderSize {
		return nil, fmt.Errorf("matrix: DEN image too short: %d bytes", len(buf))
	}
	rows := int(binary.LittleEndian.Uint64(buf[0:8]))
	cols := int(binary.LittleEndian.Uint64(buf[8:16]))
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: DEN image has negative dims %dx%d", rows, cols)
	}
	want := denHeaderSize + 8*rows*cols
	if rows > 0 && cols > 0 && (want/rows/8 != cols+denHeaderSize/8/rows || want < 0) {
		// overflow guard; recompute carefully below
	}
	if len(buf) != want {
		return nil, fmt.Errorf("matrix: DEN image size %d != expected %d for %dx%d", len(buf), want, rows, cols)
	}
	d := NewDense(rows, cols)
	off := denHeaderSize
	for i := range d.data {
		d.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	return d, nil
}
