// Package matrix provides the dense row-major matrix type shared by every
// compression scheme in this repository, together with the uncompressed
// (baseline) matrix kernels the paper calls DEN execution.
//
// All compressed execution techniques in internal/core and internal/formats
// are verified against the kernels in this package.
package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
// The zero value is an empty 0x0 matrix.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense allocates a rows x cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFromSlice wraps data (row-major, len rows*cols) without copying.
func NewDenseFromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// NewDenseFromRows builds a matrix from per-row slices, copying them.
// All rows must have equal length.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	d := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: len %d != %d", i, len(r), c))
		}
		copy(d.data[i*c:(i+1)*c], r)
	}
	return d
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// At returns the element at row i, column j.
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set assigns the element at row i, column j.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (d *Dense) Row(i int) []float64 { return d.data[i*d.cols : (i+1)*d.cols] }

// Data returns the underlying row-major storage (aliased, not copied).
func (d *Dense) Data() []float64 { return d.data }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.rows, d.cols)
	copy(c.data, d.data)
	return c
}

// SliceRows returns a new matrix holding rows [from, to) (copied).
func (d *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to > d.rows || from > to {
		panic(fmt.Sprintf("matrix: bad row slice [%d,%d) of %d", from, to, d.rows))
	}
	s := NewDense(to-from, d.cols)
	copy(s.data, d.data[from*d.cols:to*d.cols])
	return s
}

// NNZ counts the non-zero entries.
func (d *Dense) NNZ() int {
	n := 0
	for _, v := range d.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns nnz / (rows*cols), matching the paper's Table 5 definition.
// An empty matrix reports 0.
func (d *Dense) Sparsity() float64 {
	if len(d.data) == 0 {
		return 0
	}
	return float64(d.NNZ()) / float64(len(d.data))
}

// Equal reports whether two matrices have the same shape and identical values.
func (d *Dense) Equal(o *Dense) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports shape equality and element-wise |a-b| <= tol.
func (d *Dense) EqualApprox(o *Dense, tol float64) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging.
func (d *Dense) String() string {
	s := fmt.Sprintf("Dense %dx%d", d.rows, d.cols)
	if d.rows*d.cols <= 64 {
		s += " ["
		for i := 0; i < d.rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < d.cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%g", d.At(i, j))
			}
		}
		s += "]"
	}
	return s
}

// Transpose returns a new matrix that is the transpose of d.
func (d *Dense) Transpose() *Dense {
	t := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		ri := d.Row(i)
		for j, v := range ri {
			t.data[j*d.rows+i] = v
		}
	}
	return t
}
