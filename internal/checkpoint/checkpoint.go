// Package checkpoint is the versioned, CRC-guarded training snapshot
// behind the repo's crash/resume guarantee: a State captures everything
// the engines need to continue a run's exact trajectory — the model's
// flat parameter vector, the position inside the epoch schedule (epoch,
// batch position, async clock), the partially-accumulated epoch loss,
// the run configuration whose mismatch would silently fork the
// trajectory (seed, shuffle, group size, staleness bound, learning
// rate), and the async engine's staleness frontier (the archived
// parameter versions its delayed-gradient mode replays from).
//
// The epoch permutation and "RNG state" need no bytes of their own: the
// engines derive every epoch's order from the pure function
// epochPerm(seed, epoch), so seed + position *is* the RNG state.
//
// The wire format is a single little-endian image with a trailing
// CRC-32C, written atomically: temp file in the destination directory,
// fsync, rename, directory fsync. A reader therefore sees either the
// previous checkpoint or the complete new one, never a torn middle;
// anything torn anyway (truncation, bit flips) fails the length check
// or the CRC and is reported as an error, never resumed from. Decode
// validates the image's self-described lengths against the actual byte
// count before allocating, so corrupt input cannot drive allocation
// (the FuzzCheckpointDecode target leans on this).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"toc/internal/faultpoint"
)

// Kind says which engine wrote a checkpoint; resuming with the other
// engine is a validation error, not a silent trajectory fork.
type Kind uint8

const (
	// KindSync is the synchronous group-step engine.
	KindSync Kind = 1
	// KindAsync is the bounded-staleness async engine.
	KindAsync Kind = 2
	// KindDist is the distributed parameter server (internal/dist).
	KindDist Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindSync:
		return "sync"
	case KindAsync:
		return "async"
	case KindDist:
		return "dist"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// State is one training snapshot. Config fields (Kind through
// NumBatches) identify the run; position fields (Epoch, Pos, Clock,
// PartialLoss, EpochLoss) locate the trajectory point; Params (and for
// async deterministic runs, Archive) restore it.
type State struct {
	// Kind is the engine that wrote the snapshot.
	Kind Kind
	// Seed is the engine's permutation seed; with Epoch/Pos it fully
	// determines the remaining visit order (epochPerm is pure).
	Seed int64
	// LR is the learning rate; resume validates it bit-for-bit.
	LR float64
	// Shuffle mirrors the engine's per-epoch permutation switch.
	Shuffle bool
	// Deterministic marks an async run in delayed-gradient replay mode
	// (the only async mode with a bitwise-resumable trajectory at
	// staleness > 0).
	Deterministic bool
	// Group is the sync engine's gradients-per-update count (0 for async).
	Group int
	// Staleness is the async bound (-1 unbounded; 0 for sync).
	Staleness int
	// NumBatches is the per-epoch batch count of the source.
	NumBatches int

	// Epoch and Pos locate the sync trajectory: the next update starts
	// at batch position Pos of epoch Epoch. Pos is always a group
	// boundary (a checkpoint is only taken between updates).
	Epoch int
	Pos   int
	// Clock is the async position: applied updates so far (the next
	// position to apply). Epoch-major: Clock = epoch*NumBatches + pos.
	Clock int64
	// PartialLoss is the running loss sum of the in-progress epoch, so
	// the resumed epoch's reported loss is bitwise what the
	// uninterrupted run would have reported.
	PartialLoss float64
	// EpochLoss holds the completed epochs' mean losses.
	EpochLoss []float64

	// Params is the model's flat parameter vector (ml.SnapshotModel
	// layout) at the snapshot point.
	Params []float64
	// Archive holds the async deterministic mode's staleness frontier:
	// the parameter vectors of versions Clock-len(Archive) .. Clock-1,
	// oldest first (Params itself is version Clock). Empty for sync
	// runs, staleness 0, and nondeterministic async runs.
	Archive [][]float64
}

// Step is the snapshot's global update-position, used to order
// checkpoint files: applied updates for async, visited batch positions
// for sync.
func (s *State) Step() int64 {
	if s.Kind == KindAsync || s.Kind == KindDist {
		return s.Clock
	}
	return int64(s.Epoch)*int64(s.NumBatches) + int64(s.Pos)
}

const (
	magic             = "TOCK"
	version           = 1
	flagShuffle       = 1 << 0
	flagDeterministic = 1 << 1

	// headerLen is the fixed-size prefix before the variable sections:
	// magic(4) version(1) kind(1) flags(1) reserved(1) seed(8) lr(8)
	// group(4) staleness(4) nbatches(4) epoch(4) pos(4) clock(8)
	// partial(8) nEpochLoss(4) nParams(4) nArchive(4).
	headerLen = 4 + 1 + 1 + 1 + 1 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4 + 4
	// trailerLen is the trailing CRC-32C.
	trailerLen = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the state into its canonical wire image (including
// the trailing CRC). Decode(Encode(s)) is the identity, and the
// encoding is canonical: a successfully decoded image re-encodes to the
// same bytes.
func Encode(s *State) []byte {
	size := headerLen + 8*len(s.EpochLoss) + 8*len(s.Params) + 8*len(s.Params)*len(s.Archive) + trailerLen
	img := make([]byte, 0, size)
	img = append(img, magic...)
	img = append(img, version, byte(s.Kind))
	var flags byte
	if s.Shuffle {
		flags |= flagShuffle
	}
	if s.Deterministic {
		flags |= flagDeterministic
	}
	img = append(img, flags, 0)
	img = binary.LittleEndian.AppendUint64(img, uint64(s.Seed))
	img = binary.LittleEndian.AppendUint64(img, math.Float64bits(s.LR))
	img = binary.LittleEndian.AppendUint32(img, uint32(s.Group))
	img = binary.LittleEndian.AppendUint32(img, uint32(int32(s.Staleness)))
	img = binary.LittleEndian.AppendUint32(img, uint32(s.NumBatches))
	img = binary.LittleEndian.AppendUint32(img, uint32(s.Epoch))
	img = binary.LittleEndian.AppendUint32(img, uint32(s.Pos))
	img = binary.LittleEndian.AppendUint64(img, uint64(s.Clock))
	img = binary.LittleEndian.AppendUint64(img, math.Float64bits(s.PartialLoss))
	img = binary.LittleEndian.AppendUint32(img, uint32(len(s.EpochLoss)))
	img = binary.LittleEndian.AppendUint32(img, uint32(len(s.Params)))
	img = binary.LittleEndian.AppendUint32(img, uint32(len(s.Archive)))
	for _, v := range s.EpochLoss {
		img = binary.LittleEndian.AppendUint64(img, math.Float64bits(v))
	}
	for _, v := range s.Params {
		img = binary.LittleEndian.AppendUint64(img, math.Float64bits(v))
	}
	for _, vec := range s.Archive {
		if len(vec) != len(s.Params) {
			panic(fmt.Sprintf("checkpoint: archive vector has %d params, model has %d", len(vec), len(s.Params)))
		}
		for _, v := range vec {
			img = binary.LittleEndian.AppendUint64(img, math.Float64bits(v))
		}
	}
	return binary.LittleEndian.AppendUint32(img, crc32.Checksum(img, castagnoli))
}

// Decode parses and validates a checkpoint image. Every length the
// image claims is checked against the actual byte count before any
// section is allocated, and the trailing CRC-32C must match; corrupt or
// truncated images return an error, never a partial State.
func Decode(img []byte) (*State, error) {
	if len(img) < headerLen+trailerLen {
		return nil, fmt.Errorf("checkpoint: image truncated (%d bytes, header needs %d)", len(img), headerLen+trailerLen)
	}
	if string(img[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", img[:4])
	}
	if img[4] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", img[4])
	}
	kind := Kind(img[5])
	if kind != KindSync && kind != KindAsync && kind != KindDist {
		return nil, fmt.Errorf("checkpoint: unknown engine kind %d", img[5])
	}
	flags := img[6]
	if flags&^(flagShuffle|flagDeterministic) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown flags %#x", flags)
	}
	le := binary.LittleEndian
	nEpochLoss := uint64(le.Uint32(img[headerLen-12:]))
	nParams := uint64(le.Uint32(img[headerLen-8:]))
	nArchive := uint64(le.Uint32(img[headerLen-4:]))
	want := uint64(headerLen) + 8*(nEpochLoss+nParams+nArchive*nParams) + trailerLen
	if uint64(len(img)) != want {
		return nil, fmt.Errorf("checkpoint: image is %d bytes, header describes %d", len(img), want)
	}
	body := img[:len(img)-trailerLen]
	if got, stored := crc32.Checksum(body, castagnoli), le.Uint32(img[len(img)-trailerLen:]); got != stored {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (stored %08x, computed %08x)", stored, got)
	}
	s := &State{
		Kind:          kind,
		Shuffle:       flags&flagShuffle != 0,
		Deterministic: flags&flagDeterministic != 0,
		Seed:          int64(le.Uint64(img[8:])),
		LR:            math.Float64frombits(le.Uint64(img[16:])),
		Group:         int(le.Uint32(img[24:])),
		Staleness:     int(int32(le.Uint32(img[28:]))),
		NumBatches:    int(le.Uint32(img[32:])),
		Epoch:         int(le.Uint32(img[36:])),
		Pos:           int(le.Uint32(img[40:])),
		Clock:         int64(le.Uint64(img[44:])),
		PartialLoss:   math.Float64frombits(le.Uint64(img[52:])),
	}
	off := headerLen
	readVec := func(n uint64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(le.Uint64(img[off:]))
			off += 8
		}
		return out
	}
	if nEpochLoss > 0 {
		s.EpochLoss = readVec(nEpochLoss)
	}
	if nParams > 0 {
		s.Params = readVec(nParams)
	}
	if nArchive > 0 {
		s.Archive = make([][]float64, nArchive)
		for i := range s.Archive {
			s.Archive[i] = readVec(nParams)
		}
	}
	return s, nil
}

// Save writes the state atomically to path: temp file in the same
// directory, fsync, rename over path, fsync the directory. A crash at
// any point leaves either the old file or the complete new one.
func Save(path string, s *State) error {
	img := Encode(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	// Cleanup of the temp file on error is explicit rather than
	// deferred: an injected crash (faultpoint) must leave exactly the
	// debris a real kill would.
	name := tmp.Name()
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	faultpoint.Hit("checkpoint.rename")
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// Load reads and validates one checkpoint file.
func Load(path string) (*State, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(img)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// FileName is the checkpoint file name for a snapshot at global update
// position step; zero-padding makes lexical order the step order.
func FileName(step int64) string {
	return fmt.Sprintf("ckpt-%016d.toc", step)
}

// Latest loads the newest checkpoint in dir (the highest step number).
// It returns os.ErrNotExist when the directory holds no checkpoints,
// and fails loudly — it does not fall back to an older file — when the
// newest one is corrupt: silently resuming from an earlier snapshot
// than the caller believes would be correct here (any valid checkpoint
// resumes the same trajectory) but would mask real corruption bugs.
func Latest(dir string) (*State, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if len(n) == len("ckpt-0000000000000000.toc") && n[:5] == "ckpt-" && filepath.Ext(n) == ".toc" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("checkpoint: no checkpoints in %s: %w", dir, os.ErrNotExist)
	}
	sort.Strings(names)
	return Load(filepath.Join(dir, names[len(names)-1]))
}
