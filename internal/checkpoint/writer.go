package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultKeep is how many checkpoint files a Writer retains; older ones
// are pruned after each successful save. Any retained checkpoint
// resumes the same trajectory, so keeping a few is purely insurance
// against losing the newest one to a crash mid-rename.
const DefaultKeep = 3

// Writer owns one checkpoint directory and takes the serialize-and-
// write work off the training hot path: SaveAsync hands the snapshot to
// a background goroutine and returns immediately, coalescing — if a new
// snapshot arrives while the previous one is still being written, the
// unwritten one is replaced, never queued. Dropping a snapshot is safe
// because any persisted checkpoint resumes the exact trajectory; only
// the resume point moves.
//
// Save is the synchronous variant (the engines use it for the final
// checkpoint on Halt, where the process is about to exit and the write
// must not race it). SetSynchronous makes SaveAsync block too, which
// the identity tests use to pin the set of files a run produces.
type Writer struct {
	dir string

	mu sync.Mutex
	//toc:guardedby mu
	keep int
	//toc:guardedby mu
	pending *State // newest unwritten snapshot (coalesced)
	//toc:guardedby mu
	err error // first background write failure
	//toc:guardedby mu
	syncMode bool
	kick     chan struct{}
	done     chan struct{}
	idle     *sync.Cond // signaled when pending drains
	//toc:guardedby mu
	closed bool
}

// NewWriter creates (if needed) the checkpoint directory and starts the
// background writer goroutine.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	w := &Writer{
		dir:  dir,
		keep: DefaultKeep,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	w.idle = sync.NewCond(&w.mu)
	go w.loop()
	return w, nil
}

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.dir }

// SetKeep sets how many checkpoint files are retained (minimum 1).
func (w *Writer) SetKeep(n int) {
	if n < 1 {
		n = 1
	}
	w.mu.Lock()
	w.keep = n
	w.mu.Unlock()
}

// SetSynchronous makes SaveAsync write before returning — deterministic
// checkpoint cadence for tests and debugging, at hot-path cost.
func (w *Writer) SetSynchronous(on bool) {
	w.mu.Lock()
	w.syncMode = on
	w.mu.Unlock()
}

// Save writes one checkpoint synchronously (atomic rename) and prunes
// old files past the retention count.
func (w *Writer) Save(s *State) error {
	if err := Save(filepath.Join(w.dir, FileName(s.Step())), s); err != nil {
		return err
	}
	return w.prune()
}

// SaveAsync hands the snapshot to the background writer and returns.
// The caller must not mutate s afterwards (the engines always pass a
// freshly-copied State). If a previous snapshot is still unwritten it
// is replaced. A background write error is reported by the next Flush
// or Close.
func (w *Writer) SaveAsync(s *State) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if w.syncMode {
		w.mu.Unlock()
		w.recordErr(w.Save(s))
		return
	}
	w.pending = s
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default: // writer already has a wakeup queued
	}
}

// Flush blocks until no snapshot is pending or in flight, then returns
// (and clears) the first background write error.
func (w *Writer) Flush() error {
	w.mu.Lock()
	for w.pending != nil {
		w.idle.Wait()
	}
	err := w.err
	w.err = nil
	w.mu.Unlock()
	return err
}

// Close flushes and stops the background writer. The Writer is unusable
// afterwards.
func (w *Writer) Close() error {
	err := w.Flush()
	w.mu.Lock()
	alreadyClosed := w.closed
	w.closed = true
	w.mu.Unlock()
	if !alreadyClosed {
		close(w.done)
	}
	return err
}

func (w *Writer) recordErr(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// loop is the background writer: take the newest pending snapshot,
// write it, repeat. pending is cleared only after the write completes,
// so Flush's "pending == nil" means durably on disk.
func (w *Writer) loop() {
	for {
		select {
		case <-w.done:
			return
		case <-w.kick:
		}
		for {
			w.mu.Lock()
			s := w.pending
			w.mu.Unlock()
			if s == nil {
				break
			}
			err := w.Save(s)
			w.mu.Lock()
			w.recordErrLocked(err)
			// A newer snapshot may have replaced s mid-write; only
			// clear the slot if it still holds what was written.
			if w.pending == s {
				w.pending = nil
				w.idle.Broadcast()
			}
			w.mu.Unlock()
		}
	}
}

// recordErrLocked keeps the first background failure. Must be called
// with w.mu held.
//
//toc:locked mu
func (w *Writer) recordErrLocked(err error) {
	if err != nil && w.err == nil {
		w.err = err
	}
}

// prune removes the oldest checkpoint files beyond the retention count.
func (w *Writer) prune() error {
	w.mu.Lock()
	keep := w.keep
	w.mu.Unlock()
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: prune scan: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if len(n) == len("ckpt-0000000000000000.toc") && n[:5] == "ckpt-" && filepath.Ext(n) == ".toc" {
			names = append(names, n)
		}
	}
	if len(names) <= keep {
		return nil
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-keep] {
		if err := os.Remove(filepath.Join(w.dir, n)); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	return nil
}
