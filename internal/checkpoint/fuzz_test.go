package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode drives Decode with arbitrary bytes. The safety
// property is that corrupt input never panics or drives allocation
// (lengths are validated against the byte count before any section is
// allocated); the correctness property is that any image Decode accepts
// is canonical — re-encoding the decoded state reproduces the input
// byte for byte, so Decode accepts exactly Encode's range.
func FuzzCheckpointDecode(f *testing.F) {
	for v := 0; v < 3; v++ {
		f.Add(Encode(sampleState(v)))
	}
	// Corrupt seeds point the fuzzer at the rejection paths.
	img := Encode(sampleState(1))
	f.Add(img[:len(img)-3])
	flip := append([]byte(nil), img...)
	flip[headerLen-6] ^= 0xff // inflate a claimed length
	f.Add(flip)
	f.Add([]byte("TOCK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if got := Encode(s); !bytes.Equal(got, data) {
			t.Fatalf("accepted image is not canonical: re-encode differs (%d vs %d bytes)", len(got), len(data))
		}
	})
}
