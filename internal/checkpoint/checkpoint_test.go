package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleState builds a representative snapshot; variant tweaks the
// fields so distinct samples stay distinct.
func sampleState(variant int) *State {
	s := &State{
		Kind:        KindSync,
		Seed:        42 + int64(variant),
		LR:          0.3,
		Group:       8,
		NumBatches:  16,
		Epoch:       2,
		Pos:         8,
		PartialLoss: 1.25,
		EpochLoss:   []float64{0.9, 0.7},
		Params:      []float64{1, -2.5, math.Pi, 0},
	}
	switch variant {
	case 1:
		s.Kind = KindAsync
		s.Shuffle = true
		s.Deterministic = true
		s.Group = 0
		s.Staleness = 4
		s.Clock = 40
		s.Archive = [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	case 2:
		s.Kind = KindAsync
		s.Staleness = -1
		s.Clock = 7
		s.EpochLoss = nil
		s.Params = nil
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for v := 0; v < 3; v++ {
		in := sampleState(v)
		img := Encode(in)
		out, err := Decode(img)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("variant %d: round trip mismatch\n in: %+v\nout: %+v", v, in, out)
		}
		// Canonical encoding: re-encoding the decoded state reproduces
		// the image byte for byte.
		if !bytes.Equal(img, Encode(out)) {
			t.Fatalf("variant %d: re-encode differs from original image", v)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	img := Encode(sampleState(1))
	if _, err := Decode(img[:len(img)-1]); err == nil {
		t.Error("truncated image decoded")
	}
	if _, err := Decode(img[:10]); err == nil {
		t.Error("header-only image decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty image decoded")
	}
	// Flip one bit in every byte position; every mutation must be
	// rejected (CRC or structural check), never silently accepted.
	for i := range img {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded without error", i)
		}
	}
}

func TestDecodeRejectsHugeClaimedLengths(t *testing.T) {
	img := Encode(sampleState(0))
	// Claim ~4 billion params: the length check must fail before any
	// allocation is attempted.
	mut := append([]byte(nil), img...)
	for i := headerLen - 8; i < headerLen-4; i++ {
		mut[i] = 0xff
	}
	if _, err := Decode(mut); err == nil {
		t.Fatal("image with absurd param count decoded")
	}
}

func TestSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for step, v := range []int{0, 1} {
		s := sampleState(v)
		s.Pos = step // distinct Step() values
		if err := Save(filepath.Join(dir, FileName(s.Step())), s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindAsync {
		t.Fatalf("Latest returned step %d kind %v, want the async variant", got.Step(), got.Kind)
	}
	// No checkpoints → os.ErrNotExist.
	if _, err := Latest(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Latest on empty dir: %v, want not-exist", err)
	}
}

func TestLatestFailsLoudlyOnCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	good := sampleState(0)
	if err := Save(filepath.Join(dir, FileName(good.Step())), good); err != nil {
		t.Fatal(err)
	}
	// A newer, corrupt checkpoint: Latest must error, not fall back.
	bad := Encode(sampleState(0))
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, FileName(good.Step()+100)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Latest(dir); err == nil {
		t.Fatal("Latest returned an older checkpoint instead of failing on the corrupt newest")
	}
}

func TestWriterSaveAsyncAndPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.SetKeep(2)
	for i := 0; i < 6; i++ {
		s := sampleState(0)
		s.Epoch, s.Pos = 0, i
		w.SaveAsync(s)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retained %d files, want 2 (keep)", len(entries))
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 5 {
		t.Fatalf("latest pos = %d, want 5", got.Pos)
	}
}

func TestWriterCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burst of snapshots without an intervening Flush: intermediate
	// ones may be dropped, but the final Flush must persist the newest.
	for i := 0; i < 50; i++ {
		s := sampleState(0)
		s.Epoch, s.Pos = 1, i
		w.SaveAsync(s)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pos != 49 {
		t.Fatalf("after flush the newest snapshot is pos %d, want 49", got.Pos)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterSynchronousMode(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetSynchronous(true)
	s := sampleState(0)
	w.SaveAsync(s)
	// Synchronous mode: the file exists the moment SaveAsync returns.
	if _, err := os.Stat(filepath.Join(dir, FileName(s.Step()))); err != nil {
		t.Fatalf("synchronous SaveAsync did not write immediately: %v", err)
	}
}
