package formats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toc/internal/matrix"
)

func redundantMatrix(rng *rand.Rand, rows, cols int, sparsity float64, poolSize int) *matrix.Dense {
	pool := make([]float64, poolSize)
	for i := range pool {
		pool[i] = math.Round(rng.NormFloat64()*8) / 4
		if pool[i] == 0 {
			pool[i] = 0.25
		}
	}
	templates := make([][]float64, 3)
	for t := range templates {
		row := make([]float64, cols)
		for j := range row {
			if rng.Float64() < sparsity {
				row[j] = pool[rng.Intn(poolSize)]
			}
		}
		templates[t] = row
	}
	d := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		copy(d.Row(i), templates[rng.Intn(len(templates))])
		if cols > 0 {
			j := rng.Intn(cols)
			d.Set(i, j, pool[rng.Intn(poolSize)])
		}
	}
	return d
}

func TestRegistryHasPaperMethods(t *testing.T) {
	for _, name := range PaperMethods() {
		if _, ok := Get(name); !ok {
			t.Errorf("method %q not registered", name)
		}
	}
	for _, name := range []string{"TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC_FULL"} {
		if _, ok := Get(name); !ok {
			t.Errorf("ablation variant %q not registered", name)
		}
	}
	if _, ok := Get("NOPE"); ok {
		t.Error("unknown method should not resolve")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGet("NOPE")
}

func TestAllMethodsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := redundantMatrix(rng, 60, 25, 0.4, 4)
	for _, name := range Names() {
		enc := MustGet(name)
		c := enc(a)
		if c.Rows() != 60 || c.Cols() != 25 {
			t.Errorf("%s: dims %dx%d", name, c.Rows(), c.Cols())
		}
		if !c.Decode().Equal(a) {
			t.Errorf("%s: decode mismatch", name)
		}
		if c.CompressedSize() <= 0 {
			t.Errorf("%s: non-positive size", name)
		}
	}
}

// Every method must produce identical results for every op.
func TestAllMethodsOpsMatchDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(25)
		cols := 1 + rng.Intn(15)
		a := redundantMatrix(rng, rows, cols, 0.2+rng.Float64()*0.6, 3)
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		u := make([]float64, rows)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		p := 1 + rng.Intn(3)
		mr := matrix.NewDense(cols, p)
		ml := matrix.NewDense(p, rows)
		for i := 0; i < cols; i++ {
			for j := 0; j < p; j++ {
				mr.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < p; i++ {
			for j := 0; j < rows; j++ {
				ml.Set(i, j, rng.NormFloat64())
			}
		}
		wantMulVec := a.MulVec(v)
		wantVecMul := a.VecMul(u)
		wantMulMat := a.MulMat(mr)
		wantMatMul := a.MatMul(ml)
		scale := rng.NormFloat64()
		wantScale := a.Scale(scale)

		for _, name := range Names() {
			c := MustGet(name)(a)
			if !vecEq(c.MulVec(v), wantMulVec) {
				return false
			}
			if !vecEq(c.VecMul(u), wantVecMul) {
				return false
			}
			if !c.MulMat(mr).EqualApprox(wantMulMat, 1e-9) {
				return false
			}
			if !c.MatMul(ml).EqualApprox(wantMatMul, 1e-9) {
				return false
			}
			if !c.Scale(scale).Decode().EqualApprox(wantScale, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// On moderately sparse, redundant data the paper's Figure 5 ordering must
// hold: TOC beats CSR and CSR beats DEN; the GC schemes also beat DEN.
func TestCompressionRatioShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := redundantMatrix(rng, 250, 60, 0.35, 3)
	size := func(name string) int { return MustGet(name)(a).CompressedSize() }

	den := size("DEN")
	csr := size("CSR")
	tocSize := size("TOC")
	gzip := size("Gzip")
	snappySize := size("Snappy")

	if !(tocSize < csr && csr < den) {
		t.Errorf("want TOC < CSR < DEN, got TOC=%d CSR=%d DEN=%d", tocSize, csr, den)
	}
	if gzip >= den || snappySize >= den {
		t.Errorf("GC should beat DEN: gzip=%d snappy=%d den=%d", gzip, snappySize, den)
	}
}

// DEN must report exactly the paper's dense binary size.
func TestDENSize(t *testing.T) {
	a := matrix.NewDense(250, 68)
	if got, want := MustGet("DEN")(a).CompressedSize(), 16+8*250*68; got != want {
		t.Fatalf("DEN size = %d, want %d", got, want)
	}
}

// Scale must not mutate the original encoding (needed because MGD reuses
// cached mini-batches across epochs).
func TestScaleDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := redundantMatrix(rng, 20, 10, 0.5, 3)
	for _, name := range Names() {
		c := MustGet(name)(a)
		_ = c.Scale(7.5)
		if !c.Decode().Equal(a) {
			t.Errorf("%s: Scale mutated the receiver", name)
		}
	}
}
