package formats

import (
	"toc/internal/core"
	"toc/internal/matrix"
)

// TOC adapts core.Batch (the paper's contribution) to the CompressedMatrix
// interface, together with the ablation variants of Figures 6 and 10.
type TOC struct {
	*core.Batch
}

// deserializeTOC decodes any TOC variant (the image self-describes it).
func deserializeTOC(img []byte) (CompressedMatrix, error) {
	b, err := core.Deserialize(img)
	if err != nil {
		return nil, err
	}
	return TOC{b}, nil
}

func init() {
	Register("TOC", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.Compress(d)}
	}, deserializeTOC)
	Register("TOC_SPARSE", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.SparseOnly)}
	}, deserializeTOC)
	Register("TOC_SPARSE_AND_LOGICAL", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.SparseLogical)}
	}, deserializeTOC)
	Register("TOC_FULL", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.Full)}
	}, deserializeTOC)
}

// Scale computes A.*c via Algorithm 3, adapting the concrete return type.
func (t TOC) Scale(c float64) CompressedMatrix { return TOC{t.Batch.Scale(c)} }

// NewKernelPlan builds the batch's decode tree C' once and returns the
// plan sharing it across kernel calls, adapting the concrete return type.
func (t TOC) NewKernelPlan() KernelPlan { return t.Batch.NewKernelPlan() }

// TOC's kernels shard across goroutines with bitwise-identical results
// (core's *Parallel methods promote through the embedded Batch), and its
// per-batch plans amortize the decode-tree build across a step's kernels.
var _ ParallelOps = TOC{}
