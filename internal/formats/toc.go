package formats

import (
	"toc/internal/core"
	"toc/internal/matrix"
)

// TOC adapts core.Batch (the paper's contribution) to the CompressedMatrix
// interface, together with the ablation variants of Figures 6 and 10.
type TOC struct {
	*core.Batch
}

// deserializeTOC decodes any TOC variant (the image self-describes it).
func deserializeTOC(img []byte) (CompressedMatrix, error) {
	b, err := core.Deserialize(img)
	if err != nil {
		return nil, err
	}
	return TOC{b}, nil
}

func init() {
	Register("TOC", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.Compress(d)}
	}, deserializeTOC)
	Register("TOC_SPARSE", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.SparseOnly)}
	}, deserializeTOC)
	Register("TOC_SPARSE_AND_LOGICAL", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.SparseLogical)}
	}, deserializeTOC)
	Register("TOC_FULL", func(d *matrix.Dense) CompressedMatrix {
		return TOC{core.CompressVariant(d, core.Full)}
	}, deserializeTOC)
}

// Scale computes A.*c via Algorithm 3, adapting the concrete return type.
func (t TOC) Scale(c float64) CompressedMatrix { return TOC{t.Batch.Scale(c)} }

// TOC's kernels shard across goroutines with bitwise-identical results
// (core's *Parallel methods promote through the embedded Batch).
var _ ParallelOps = TOC{}
