package formats

import (
	"fmt"

	"toc/internal/bitpack"
	"toc/internal/matrix"
)

// CVI is CSR-VI (Kourtis et al., cited as [21]): CSR whose non-zero values
// are dictionary-encoded with value indexing. The sparse-safe element-wise
// ops touch only the dictionary, which is why CVI matches TOC on A.*c in
// the paper's Figure 8.
type CVI struct {
	rows, cols int
	starts     []uint32
	colIdx     []uint32
	valIdx     []uint32  // per-nonzero dictionary index
	dict       []float64 // unique values
	size       int       // cached len(Serialize())
}

func init() {
	Register("CVI",
		func(d *matrix.Dense) CompressedMatrix {
			starts, cols, vals := csrParts(d)
			vi := bitpack.BuildValueIndex(vals)
			return &CVI{
				rows: d.Rows(), cols: d.Cols(),
				starts: starts, colIdx: cols,
				valIdx: vi.Indexes(), dict: vi.Values(),
			}
		},
		deserializeCVI)
}

// Serialize writes header, row starts, column indexes, the bit-packed
// value indexes and the value dictionary.
func (e *CVI) Serialize() []byte {
	out := putHeader(make([]byte, 0, e.CompressedSize()), magicCVI, e.rows, e.cols, len(e.valIdx))
	out = appendU32s(out, e.starts)
	out = appendU32s(out, e.colIdx)
	out = bitpack.Pack(e.valIdx).AppendTo(out)
	out = appendU32s(out, []uint32{uint32(len(e.dict))})
	return appendF64s(out, e.dict)
}

func deserializeCVI(img []byte) (CompressedMatrix, error) {
	rows, cols, nnz, buf, err := readHeader(img, magicCVI)
	if err != nil {
		return nil, err
	}
	starts, buf, err := takeU32s(buf, rows+1)
	if err != nil {
		return nil, err
	}
	colIdx, buf, err := takeU32s(buf, nnz)
	if err != nil {
		return nil, err
	}
	idxArr, buf, err := bitpack.ReadArray(buf)
	if err != nil {
		return nil, err
	}
	cnt, buf, err := takeU32s(buf, 1)
	if err != nil {
		return nil, err
	}
	dict, buf, err := takeF64s(buf, int(cnt[0]))
	if err != nil {
		return nil, err
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("formats: CVI image has %d trailing bytes", len(buf))
	}
	if err := validateCSRParts(rows, cols, starts, colIdx, nnz); err != nil {
		return nil, err
	}
	valIdx := idxArr.Unpack()
	if len(valIdx) != nnz {
		return nil, fmt.Errorf("formats: CVI value indexes %d != nnz %d", len(valIdx), nnz)
	}
	for i, ix := range valIdx {
		if int(ix) >= len(dict) {
			return nil, fmt.Errorf("formats: CVI dict index %d out of range %d at %d", ix, len(dict), i)
		}
	}
	return &CVI{rows: rows, cols: cols, starts: starts, colIdx: colIdx,
		valIdx: valIdx, dict: dict, size: len(img)}, nil
}

// Rows returns the number of tuples.
func (e *CVI) Rows() int { return e.rows }

// Cols returns the number of columns.
func (e *CVI) Cols() int { return e.cols }

// CompressedSize counts the header, row starts, column indexes, the
// bit-packed value indexes and the value dictionary — len(Serialize()).
func (e *CVI) CompressedSize() int {
	if e.size == 0 {
		idxBytes := bitpack.Pack(e.valIdx).EncodedSize()
		e.size = wireHeaderSize + 4*len(e.starts) + 4*len(e.colIdx) + idxBytes + 4 + 8*len(e.dict)
	}
	return e.size
}

// Decode expands to a dense matrix via dictionary lookups.
func (e *CVI) Decode() *matrix.Dense {
	d := matrix.NewDense(e.rows, e.cols)
	for i := 0; i < e.rows; i++ {
		row := d.Row(i)
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			row[e.colIdx[k]] = e.dict[e.valIdx[k]]
		}
	}
	return d
}

// Scale computes A.*c by scaling only the value dictionary.
func (e *CVI) Scale(c float64) CompressedMatrix {
	dict := make([]float64, len(e.dict))
	for i, v := range e.dict {
		dict[i] = v * c
	}
	return &CVI{rows: e.rows, cols: e.cols, starts: e.starts,
		colIdx: e.colIdx, valIdx: e.valIdx, dict: dict, size: e.size}
}

// MulVec computes A·v.
func (e *CVI) MulVec(v []float64) []float64 {
	if len(v) != e.cols {
		panic(fmt.Sprintf("formats: CVI MulVec dim mismatch %d != %d", len(v), e.cols))
	}
	r := make([]float64, e.rows)
	for i := 0; i < e.rows; i++ {
		var s float64
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			s += e.dict[e.valIdx[k]] * v[e.colIdx[k]]
		}
		r[i] = s
	}
	return r
}

// VecMul computes v·A.
func (e *CVI) VecMul(v []float64) []float64 {
	if len(v) != e.rows {
		panic(fmt.Sprintf("formats: CVI VecMul dim mismatch %d != %d", len(v), e.rows))
	}
	r := make([]float64, e.cols)
	for i := 0; i < e.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			r[e.colIdx[k]] += vi * e.dict[e.valIdx[k]]
		}
	}
	return r
}

// MulMat computes A·M.
func (e *CVI) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != e.cols {
		panic(fmt.Sprintf("formats: CVI MulMat dim mismatch %d != %d", m.Rows(), e.cols))
	}
	r := matrix.NewDense(e.rows, m.Cols())
	for i := 0; i < e.rows; i++ {
		ri := r.Row(i)
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			val := e.dict[e.valIdx[k]]
			mrow := m.Row(int(e.colIdx[k]))
			for j, mv := range mrow {
				ri[j] += val * mv
			}
		}
	}
	return r
}

// MatMul computes M·A.
func (e *CVI) MatMul(m *matrix.Dense) *matrix.Dense {
	if m.Cols() != e.rows {
		panic(fmt.Sprintf("formats: CVI MatMul dim mismatch %d != %d", m.Cols(), e.rows))
	}
	p := m.Rows()
	r := matrix.NewDense(p, e.cols)
	for i := 0; i < e.rows; i++ {
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			col := int(e.colIdx[k])
			val := e.dict[e.valIdx[k]]
			for row := 0; row < p; row++ {
				r.Set(row, col, r.At(row, col)+m.At(row, i)*val)
			}
		}
	}
	return r
}
