package formats

import (
	"fmt"

	"toc/internal/bitpack"
	"toc/internal/matrix"
)

// DVI is DEN plus value indexing: every cell (zeros included) stores a
// bit-packed index into a dictionary of unique values. It shines when the
// whole matrix has few distinct values regardless of sparsity.
type DVI struct {
	rows, cols int
	idx        []uint32  // rows*cols dictionary indexes, row-major
	dict       []float64 // unique values
	size       int       // cached len(Serialize())
}

func init() {
	Register("DVI",
		func(d *matrix.Dense) CompressedMatrix {
			vi := bitpack.BuildValueIndex(d.Data())
			return &DVI{rows: d.Rows(), cols: d.Cols(), idx: vi.Indexes(), dict: vi.Values()}
		},
		deserializeDVI)
}

// Serialize writes header, the bit-packed cell indexes and the dictionary.
func (e *DVI) Serialize() []byte {
	out := putHeader(make([]byte, 0, e.CompressedSize()), magicDVI, e.rows, e.cols, len(e.dict))
	out = bitpack.Pack(e.idx).AppendTo(out)
	return appendF64s(out, e.dict)
}

func deserializeDVI(img []byte) (CompressedMatrix, error) {
	rows, cols, dictLen, buf, err := readHeader(img, magicDVI)
	if err != nil {
		return nil, err
	}
	idxArr, buf, err := bitpack.ReadArray(buf)
	if err != nil {
		return nil, err
	}
	dict, buf, err := takeF64s(buf, dictLen)
	if err != nil {
		return nil, err
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("formats: DVI image has %d trailing bytes", len(buf))
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("formats: DVI negative dims %dx%d", rows, cols)
	}
	idx := idxArr.Unpack()
	if len(idx) != rows*cols {
		return nil, fmt.Errorf("formats: DVI has %d indexes for %dx%d", len(idx), rows, cols)
	}
	for i, ix := range idx {
		if int(ix) >= dictLen {
			return nil, fmt.Errorf("formats: DVI dict index %d out of range %d at %d", ix, dictLen, i)
		}
	}
	return &DVI{rows: rows, cols: cols, idx: idx, dict: dict, size: len(img)}, nil
}

// Rows returns the number of tuples.
func (e *DVI) Rows() int { return e.rows }

// Cols returns the number of columns.
func (e *DVI) Cols() int { return e.cols }

// CompressedSize counts the header, the bit-packed cell indexes and the
// value dictionary — exactly len(Serialize()).
func (e *DVI) CompressedSize() int {
	if e.size == 0 {
		e.size = wireHeaderSize + bitpack.Pack(e.idx).EncodedSize() + 8*len(e.dict)
	}
	return e.size
}

// Decode expands to a dense matrix via dictionary lookups.
func (e *DVI) Decode() *matrix.Dense {
	d := matrix.NewDense(e.rows, e.cols)
	data := d.Data()
	for i, ix := range e.idx {
		data[i] = e.dict[ix]
	}
	return d
}

// Scale computes A.*c by scaling only the dictionary.
func (e *DVI) Scale(c float64) CompressedMatrix {
	dict := make([]float64, len(e.dict))
	for i, v := range e.dict {
		dict[i] = v * c
	}
	return &DVI{rows: e.rows, cols: e.cols, idx: e.idx, dict: dict, size: e.size}
}

// MulVec computes A·v with per-cell dictionary lookups.
func (e *DVI) MulVec(v []float64) []float64 {
	if len(v) != e.cols {
		panic(fmt.Sprintf("formats: DVI MulVec dim mismatch %d != %d", len(v), e.cols))
	}
	r := make([]float64, e.rows)
	for i := 0; i < e.rows; i++ {
		var s float64
		base := i * e.cols
		for j := 0; j < e.cols; j++ {
			s += e.dict[e.idx[base+j]] * v[j]
		}
		r[i] = s
	}
	return r
}

// VecMul computes v·A with per-cell dictionary lookups.
func (e *DVI) VecMul(v []float64) []float64 {
	if len(v) != e.rows {
		panic(fmt.Sprintf("formats: DVI VecMul dim mismatch %d != %d", len(v), e.rows))
	}
	r := make([]float64, e.cols)
	for i := 0; i < e.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		base := i * e.cols
		for j := 0; j < e.cols; j++ {
			r[j] += vi * e.dict[e.idx[base+j]]
		}
	}
	return r
}

// MulMat computes A·M.
func (e *DVI) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != e.cols {
		panic(fmt.Sprintf("formats: DVI MulMat dim mismatch %d != %d", m.Rows(), e.cols))
	}
	r := matrix.NewDense(e.rows, m.Cols())
	for i := 0; i < e.rows; i++ {
		ri := r.Row(i)
		base := i * e.cols
		for k := 0; k < e.cols; k++ {
			val := e.dict[e.idx[base+k]]
			if val == 0 {
				continue
			}
			mrow := m.Row(k)
			for j, mv := range mrow {
				ri[j] += val * mv
			}
		}
	}
	return r
}

// MatMul computes M·A.
func (e *DVI) MatMul(m *matrix.Dense) *matrix.Dense {
	if m.Cols() != e.rows {
		panic(fmt.Sprintf("formats: DVI MatMul dim mismatch %d != %d", m.Cols(), e.rows))
	}
	p := m.Rows()
	r := matrix.NewDense(p, e.cols)
	for row := 0; row < p; row++ {
		rr := r.Row(row)
		for i := 0; i < e.rows; i++ {
			mv := m.At(row, i)
			if mv == 0 {
				continue
			}
			base := i * e.cols
			for j := 0; j < e.cols; j++ {
				rr[j] += mv * e.dict[e.idx[base+j]]
			}
		}
	}
	return r
}
