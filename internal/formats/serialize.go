package formats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Shared little-endian wire helpers. Every scheme's image starts with a
// 16-byte header: one magic byte identifying the scheme, three reserved
// bytes, rows u32, cols u32, and a scheme-specific u32 (usually nnz).

const wireHeaderSize = 16

const (
	magicCSR    = 0x11
	magicCVI    = 0x12
	magicDVI    = 0x13
	magicGzip   = 0x14
	magicSnappy = 0x15
)

func putHeader(dst []byte, magic byte, rows, cols, extra int) []byte {
	var h [wireHeaderSize]byte
	h[0] = magic
	binary.LittleEndian.PutUint32(h[4:8], uint32(rows))
	binary.LittleEndian.PutUint32(h[8:12], uint32(cols))
	binary.LittleEndian.PutUint32(h[12:16], uint32(extra))
	return append(dst, h[:]...)
}

// maxWireDim bounds deserialized dimensions so corrupt headers cannot
// trigger enormous allocations downstream.
const maxWireDim = 1 << 27

func readHeader(img []byte, magic byte) (rows, cols, extra int, rest []byte, err error) {
	if len(img) < wireHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("formats: image too short: %d bytes", len(img))
	}
	if img[0] != magic {
		return 0, 0, 0, nil, fmt.Errorf("formats: wrong magic %#x, want %#x", img[0], magic)
	}
	rows = int(binary.LittleEndian.Uint32(img[4:8]))
	cols = int(binary.LittleEndian.Uint32(img[8:12]))
	extra = int(binary.LittleEndian.Uint32(img[12:16]))
	if rows > maxWireDim || cols > maxWireDim {
		return 0, 0, 0, nil, fmt.Errorf("formats: implausible dims %dx%d", rows, cols)
	}
	return rows, cols, extra, img[wireHeaderSize:], nil
}

func appendU32s(dst []byte, vals []uint32) []byte {
	for _, v := range vals {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

func appendF64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

func takeU32s(buf []byte, n int) ([]uint32, []byte, error) {
	if len(buf) < 4*n {
		return nil, nil, fmt.Errorf("formats: truncated u32 section: have %d, need %d", len(buf), 4*n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, buf[4*n:], nil
}

func takeF64s(buf []byte, n int) ([]float64, []byte, error) {
	if len(buf) < 8*n {
		return nil, nil, fmt.Errorf("formats: truncated f64 section: have %d, need %d", len(buf), 8*n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, buf[8*n:], nil
}

// validateCSRParts checks the shared invariants of CSR-shaped arrays.
func validateCSRParts(rows, cols int, starts, colIdx []uint32, nnz int) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("formats: negative dims %dx%d", rows, cols)
	}
	if len(starts) != rows+1 {
		return fmt.Errorf("formats: starts length %d != rows+1", len(starts))
	}
	prev := uint32(0)
	for i, s := range starts {
		if s < prev {
			return fmt.Errorf("formats: starts not monotone at %d", i)
		}
		prev = s
	}
	if starts[0] != 0 || int(starts[rows]) != nnz {
		return fmt.Errorf("formats: starts endpoints invalid")
	}
	for i, c := range colIdx {
		if int(c) >= cols {
			return fmt.Errorf("formats: column %d out of range %d at %d", c, cols, i)
		}
	}
	return nil
}
