package formats

import (
	"math/rand"
	"testing"
)

// Every scheme must serialize to exactly CompressedSize bytes and round
// trip through its registered decoder.
func TestWireRoundTripAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := redundantMatrix(rng, 45, 18, 0.4, 4)
	for _, name := range Names() {
		codec := MustGetCodec(name)
		c := codec.Encode(a)
		img := c.Serialize()
		if len(img) != c.CompressedSize() {
			t.Errorf("%s: image %d bytes != CompressedSize %d", name, len(img), c.CompressedSize())
		}
		got, err := codec.Decode(img)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if got.Rows() != 45 || got.Cols() != 18 {
			t.Errorf("%s: round-trip dims %dx%d", name, got.Rows(), got.Cols())
		}
		if !got.Decode().Equal(a) {
			t.Errorf("%s: round-trip matrix mismatch", name)
		}
		if got.CompressedSize() != c.CompressedSize() {
			t.Errorf("%s: round-trip size %d != %d", name, got.CompressedSize(), c.CompressedSize())
		}
	}
}

// Decoders must reject images of the wrong scheme and truncations.
func TestWireRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := redundantMatrix(rng, 20, 10, 0.5, 3)
	images := map[string][]byte{}
	for _, name := range Names() {
		images[name] = MustGetCodec(name).Encode(a).Serialize()
	}
	for _, name := range Names() {
		codec := MustGetCodec(name)
		if _, err := codec.Decode(nil); err == nil {
			t.Errorf("%s: nil image should error", name)
		}
		img := images[name]
		for cut := 1; cut < len(img); cut += 97 {
			if _, err := codec.Decode(img[:cut]); err == nil {
				t.Errorf("%s: truncation at %d should error", name, cut)
				break
			}
		}
		// Cross-scheme confusion: feed every other scheme's image.
		for other, oimg := range images {
			if other == name || isTOCFamily(name) && isTOCFamily(other) {
				continue
			}
			if _, err := codec.Decode(oimg); err == nil {
				t.Errorf("%s: accepted a %s image", name, other)
			}
		}
	}
}

func isTOCFamily(name string) bool {
	switch name {
	case "TOC", "TOC_FULL", "TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL":
		return true
	}
	return false
}

// Single-byte flips must never panic in Decode (error or valid parse only).
func TestWireByteFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := redundantMatrix(rng, 12, 6, 0.5, 3)
	for _, name := range Names() {
		codec := MustGetCodec(name)
		img := codec.Encode(a).Serialize()
		step := 1
		if len(img) > 600 {
			step = len(img) / 300
		}
		for pos := 0; pos < len(img); pos += step {
			bad := append([]byte(nil), img...)
			bad[pos] ^= 0xff
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic at byte %d: %v", name, pos, r)
					}
				}()
				c, err := codec.Decode(bad)
				if err == nil {
					c.Decode()
				}
			}()
		}
	}
}
