package formats

import (
	"toc/internal/cla"
	"toc/internal/matrix"
)

// CLA adapts the internal/cla compressed linear algebra implementation to
// the CompressedMatrix interface.
type CLA struct {
	*cla.Matrix
}

func init() {
	Register("CLA",
		func(d *matrix.Dense) CompressedMatrix { return CLA{cla.Compress(d)} },
		func(img []byte) (CompressedMatrix, error) {
			m, err := cla.Deserialize(img)
			if err != nil {
				return nil, err
			}
			return CLA{m}, nil
		})
}

// Scale computes A.*c by scaling the group dictionaries.
func (c CLA) Scale(s float64) CompressedMatrix { return CLA{c.Matrix.Scale(s)} }
