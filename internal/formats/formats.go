// Package formats provides the compared mini-batch encoding methods of the
// paper's §5 evaluation behind one interface: the DEN baseline, the
// light-weight matrix compression schemes CSR, CVI (CSR-VI), DVI and CLA,
// the general compression schemes Snappy and Gzip, and TOC itself
// (including its ablation variants).
//
// Light-weight schemes and TOC execute matrix operations directly on the
// encoded data; the general schemes must decompress the whole mini-batch
// before every operation — exactly the decompression overhead the paper
// measures.
package formats

import (
	"fmt"
	"sort"

	"toc/internal/matrix"
)

// CompressedMatrix is the contract every mini-batch encoding implements.
type CompressedMatrix interface {
	// Rows returns the number of tuples in the mini-batch.
	Rows() int
	// Cols returns the number of columns of the original matrix.
	Cols() int
	// CompressedSize returns the encoded size in bytes — exactly
	// len(Serialize()) — the quantity the paper's compression ratios and
	// memory budgets are based on.
	CompressedSize() int
	// Serialize returns the wire image of the encoded mini-batch; the
	// scheme's registered Decoder inverts it.
	Serialize() []byte
	// Decode losslessly reconstructs the original dense mini-batch.
	Decode() *matrix.Dense
	// Scale computes the sparse-safe element-wise A.*c.
	Scale(c float64) CompressedMatrix
	// MulVec computes A·v.
	MulVec(v []float64) []float64
	// VecMul computes v·A.
	VecMul(v []float64) []float64
	// MulMat computes A·M.
	MulMat(m *matrix.Dense) *matrix.Dense
	// MatMul computes M·A.
	MatMul(m *matrix.Dense) *matrix.Dense
}

// ParallelOps is the optional interface of encodings whose multiplication
// kernels can shard across goroutines. The contract is strict: each
// parallel kernel must return results bitwise identical to its sequential
// counterpart for any worker count (workers <= 0 picks GOMAXPROCS), so
// callers may flip between the two freely without ever changing a
// training trajectory. TOC implements it; schemes that decompress before
// every operation gain nothing from it and do not.
type ParallelOps interface {
	CompressedMatrix
	// MulVecParallel computes A·v with the row scan sharded.
	MulVecParallel(v []float64, workers int) []float64
	// MulMatParallel computes A·M with the H scan sharded over result
	// columns and the row scan sharded over result rows.
	MulMatParallel(m *matrix.Dense, workers int) *matrix.Dense
	// VecMulParallel computes v·A with the accumulator space sharded.
	VecMulParallel(v []float64, workers int) []float64
	// MatMulParallel computes M·A with the p dimension sharded.
	MatMulParallel(m *matrix.Dense, workers int) *matrix.Dense
	// NewKernelPlan returns a plan caching the per-batch decode state
	// (TOC's decode tree C') so the 2-3 kernel calls a gradient step makes
	// on one mini-batch share a single build instead of paying the per-op
	// rebuild. The plan is tied to this batch and safe for concurrent use.
	NewKernelPlan() KernelPlan
}

// KernelPlan is the per-batch kernel plan of ParallelOps.NewKernelPlan.
// Each method takes the worker count directly — workers <= 1 runs the
// sequential kernel body — and inherits the strict parallel contract:
// for any workers value the result is bitwise identical to the
// corresponding CompressedMatrix method, so callers may thread a plan
// through a step's forward and backward multiplications without ever
// changing a training trajectory.
type KernelPlan interface {
	// MulVec computes A·v on the planned batch.
	MulVec(v []float64, workers int) []float64
	// MulMat computes A·M on the planned batch.
	MulMat(m *matrix.Dense, workers int) *matrix.Dense
	// VecMul computes v·A on the planned batch.
	VecMul(v []float64, workers int) []float64
	// MatMul computes M·A on the planned batch.
	MatMul(m *matrix.Dense, workers int) *matrix.Dense
}

// KernelPlanInto is optionally implemented by kernel plans whose kernels
// can write into caller-owned destinations, eliminating the per-call
// result allocation. A nil dst allocates (matching the KernelPlan
// method); a non-nil dst must have the result's exact shape and is
// returned. The bitwise contract carries over: for any dst and workers
// value the result bits match the corresponding KernelPlan method, so a
// training loop can reuse its gradient buffers across steps without
// changing a trajectory.
type KernelPlanInto interface {
	KernelPlan
	// MulVecInto computes A·v into dst (length rows, fully overwritten).
	MulVecInto(dst, v []float64, workers int) []float64
	// MulMatInto computes A·M into dst (rows × m.Cols(), zeroed first).
	MulMatInto(dst *matrix.Dense, m *matrix.Dense, workers int) *matrix.Dense
	// VecMulInto computes v·A into dst (length cols, zeroed first).
	VecMulInto(dst, v []float64, workers int) []float64
	// MatMulInto computes M·A into dst (m.Rows() × cols, zeroed first).
	MatMulInto(dst *matrix.Dense, m *matrix.Dense, workers int) *matrix.Dense
}

// Encoder compresses a dense mini-batch with one scheme.
type Encoder func(*matrix.Dense) CompressedMatrix

// Decoder reconstructs a compressed mini-batch from its wire image.
type Decoder func([]byte) (CompressedMatrix, error)

// Codec pairs a scheme's encoder with its wire decoder.
type Codec struct {
	Encode Encoder
	Decode Decoder
}

var registry = map[string]Codec{}

// Register adds a codec under the given method name. It is called from
// init functions of this package and of scheme packages (e.g. CLA, TOC).
func Register(name string, enc Encoder, dec Decoder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("formats: duplicate method %q", name))
	}
	registry[name] = Codec{Encode: enc, Decode: dec}
}

// Get returns the encoder registered under name.
func Get(name string) (Encoder, bool) {
	c, ok := registry[name]
	return c.Encode, ok
}

// MustGet returns the encoder registered under name, panicking if missing.
func MustGet(name string) Encoder {
	c, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("formats: unknown method %q", name))
	}
	return c.Encode
}

// GetCodec returns the full codec registered under name.
func GetCodec(name string) (Codec, bool) {
	c, ok := registry[name]
	return c, ok
}

// MustGetCodec returns the codec registered under name, panicking if
// missing.
func MustGetCodec(name string) Codec {
	c, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("formats: unknown method %q", name))
	}
	return c
}

// Names returns all registered method names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperMethods lists the seven compared methods plus TOC in the order the
// paper's figures use.
func PaperMethods() []string {
	return []string{"DEN", "CSR", "CVI", "DVI", "CLA", "Snappy", "Gzip", "TOC"}
}

// csrParts extracts CSR arrays from a dense matrix; shared by CSR and CVI.
func csrParts(d *matrix.Dense) (starts []uint32, cols []uint32, vals []float64) {
	rows := d.Rows()
	starts = make([]uint32, rows+1)
	nnz := d.NNZ()
	cols = make([]uint32, 0, nnz)
	vals = make([]float64, 0, nnz)
	for i := 0; i < rows; i++ {
		starts[i] = uint32(len(cols))
		for j, v := range d.Row(i) {
			if v != 0 {
				cols = append(cols, uint32(j))
				vals = append(vals, v)
			}
		}
	}
	starts[rows] = uint32(len(cols))
	return starts, cols, vals
}
