package formats

import "toc/internal/matrix"

// DEN is the paper's uncompressed baseline: the matrix stored row by row,
// each value in IEEE-754 double format. Operations run the plain dense
// kernels.
type DEN struct {
	d *matrix.Dense
}

func init() {
	Register("DEN",
		func(d *matrix.Dense) CompressedMatrix { return &DEN{d: d.Clone()} },
		func(img []byte) (CompressedMatrix, error) {
			d, err := matrix.DeserializeDense(img)
			if err != nil {
				return nil, err
			}
			return &DEN{d: d}, nil
		})
}

// Serialize returns the DEN binary image (row-major IEEE-754 doubles).
func (e *DEN) Serialize() []byte { return e.d.Serialize() }

// Rows returns the number of tuples.
func (e *DEN) Rows() int { return e.d.Rows() }

// Cols returns the number of columns.
func (e *DEN) Cols() int { return e.d.Cols() }

// CompressedSize returns the DEN binary size (header + 8 bytes per value).
func (e *DEN) CompressedSize() int { return e.d.SerializedSize() }

// Decode returns a copy of the stored matrix.
func (e *DEN) Decode() *matrix.Dense { return e.d.Clone() }

// Scale computes A.*c.
func (e *DEN) Scale(c float64) CompressedMatrix { return &DEN{d: e.d.Scale(c)} }

// MulVec computes A·v.
func (e *DEN) MulVec(v []float64) []float64 { return e.d.MulVec(v) }

// VecMul computes v·A.
func (e *DEN) VecMul(v []float64) []float64 { return e.d.VecMul(v) }

// MulMat computes A·M.
func (e *DEN) MulMat(m *matrix.Dense) *matrix.Dense { return e.d.MulMat(m) }

// MatMul computes M·A.
func (e *DEN) MatMul(m *matrix.Dense) *matrix.Dense { return e.d.MatMul(m) }
