package formats

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"toc/internal/matrix"
	"toc/internal/snappy"
)

// The general compression schemes (GC): the serialized DEN bytes are
// compressed as an opaque blob. Every matrix operation must decompress the
// whole mini-batch first — the decompression overhead that makes GC a poor
// fit for MGD (paper Figure 1B and §5.2).

// gcCodec abstracts the byte compressor a gcMatrix uses.
type gcCodec interface {
	name() string
	compress([]byte) []byte
	decompress([]byte) ([]byte, error)
}

// gcMatrix is a mini-batch stored as compressed DEN bytes.
type gcMatrix struct {
	rows, cols int
	codec      gcCodec
	blob       []byte
}

func init() {
	Register("Gzip",
		func(d *matrix.Dense) CompressedMatrix { return newGC(d, gzipCodec{}) },
		func(img []byte) (CompressedMatrix, error) { return deserializeGC(img, magicGzip, gzipCodec{}) })
	Register("Snappy",
		func(d *matrix.Dense) CompressedMatrix { return newGC(d, snappyCodec{}) },
		func(img []byte) (CompressedMatrix, error) { return deserializeGC(img, magicSnappy, snappyCodec{}) })
}

func newGC(d *matrix.Dense, c gcCodec) *gcMatrix {
	return &gcMatrix{rows: d.Rows(), cols: d.Cols(), codec: c, blob: c.compress(d.Serialize())}
}

func (e *gcMatrix) magic() byte {
	if e.codec.name() == "Gzip" {
		return magicGzip
	}
	return magicSnappy
}

// Serialize writes a header plus the compressed DEN blob.
func (e *gcMatrix) Serialize() []byte {
	out := putHeader(make([]byte, 0, wireHeaderSize+len(e.blob)), e.magic(), e.rows, e.cols, len(e.blob))
	return append(out, e.blob...)
}

func deserializeGC(img []byte, magic byte, c gcCodec) (CompressedMatrix, error) {
	rows, cols, blobLen, buf, err := readHeader(img, magic)
	if err != nil {
		return nil, err
	}
	if len(buf) != blobLen {
		return nil, fmt.Errorf("formats: %s blob is %d bytes, want %d", c.name(), len(buf), blobLen)
	}
	e := &gcMatrix{rows: rows, cols: cols, codec: c, blob: append([]byte(nil), buf...)}
	// Validate eagerly so corrupt images error here instead of panicking
	// inside a later matrix operation.
	raw, err := c.decompress(e.blob)
	if err != nil {
		return nil, fmt.Errorf("formats: %s payload: %w", c.name(), err)
	}
	d, err := matrix.DeserializeDense(raw)
	if err != nil {
		return nil, fmt.Errorf("formats: %s payload: %w", c.name(), err)
	}
	if d.Rows() != rows || d.Cols() != cols {
		return nil, fmt.Errorf("formats: %s payload dims %dx%d != header %dx%d",
			c.name(), d.Rows(), d.Cols(), rows, cols)
	}
	return e, nil
}

// Rows returns the number of tuples.
func (e *gcMatrix) Rows() int { return e.rows }

// Cols returns the number of columns.
func (e *gcMatrix) Cols() int { return e.cols }

// CompressedSize returns the wire size (header + compressed blob).
func (e *gcMatrix) CompressedSize() int { return wireHeaderSize + len(e.blob) }

// Decode decompresses the blob and deserializes the DEN bytes.
func (e *gcMatrix) Decode() *matrix.Dense {
	raw, err := e.codec.decompress(e.blob)
	if err != nil {
		panic(fmt.Sprintf("formats: %s decompress: %v", e.codec.name(), err))
	}
	d, err := matrix.DeserializeDense(raw)
	if err != nil {
		panic(fmt.Sprintf("formats: %s payload: %v", e.codec.name(), err))
	}
	return d
}

// Scale decompresses, scales and recompresses — GC has no direct path even
// for sparse-safe ops.
func (e *gcMatrix) Scale(c float64) CompressedMatrix {
	return newGC(e.Decode().Scale(c), e.codec)
}

// MulVec decompresses, then runs the dense kernel.
func (e *gcMatrix) MulVec(v []float64) []float64 { return e.Decode().MulVec(v) }

// VecMul decompresses, then runs the dense kernel.
func (e *gcMatrix) VecMul(v []float64) []float64 { return e.Decode().VecMul(v) }

// MulMat decompresses, then runs the dense kernel.
func (e *gcMatrix) MulMat(m *matrix.Dense) *matrix.Dense { return e.Decode().MulMat(m) }

// MatMul decompresses, then runs the dense kernel.
func (e *gcMatrix) MatMul(m *matrix.Dense) *matrix.Dense { return e.Decode().MatMul(m) }

type gzipCodec struct{}

func (gzipCodec) name() string { return "Gzip" }

func (gzipCodec) compress(b []byte) []byte {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(b); err != nil {
		panic(fmt.Sprintf("formats: gzip write: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("formats: gzip close: %v", err))
	}
	return buf.Bytes()
}

func (gzipCodec) decompress(b []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

type snappyCodec struct{}

func (snappyCodec) name() string { return "Snappy" }

func (snappyCodec) compress(b []byte) []byte { return snappy.Encode(b) }

func (snappyCodec) decompress(b []byte) ([]byte, error) { return snappy.Decode(b) }
