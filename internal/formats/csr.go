package formats

import (
	"fmt"

	"toc/internal/matrix"
)

// CSR is the standard compressed sparse row encoding: per row, only the
// non-zero values and their column indexes are stored.
type CSR struct {
	rows, cols int
	starts     []uint32
	colIdx     []uint32
	vals       []float64
}

func init() {
	Register("CSR",
		func(d *matrix.Dense) CompressedMatrix {
			starts, cols, vals := csrParts(d)
			return &CSR{rows: d.Rows(), cols: d.Cols(), starts: starts, colIdx: cols, vals: vals}
		},
		deserializeCSR)
}

// Serialize writes header, row starts, column indexes and values.
func (e *CSR) Serialize() []byte {
	out := putHeader(make([]byte, 0, e.CompressedSize()), magicCSR, e.rows, e.cols, len(e.vals))
	out = appendU32s(out, e.starts)
	out = appendU32s(out, e.colIdx)
	return appendF64s(out, e.vals)
}

func deserializeCSR(img []byte) (CompressedMatrix, error) {
	rows, cols, nnz, buf, err := readHeader(img, magicCSR)
	if err != nil {
		return nil, err
	}
	starts, buf, err := takeU32s(buf, rows+1)
	if err != nil {
		return nil, err
	}
	colIdx, buf, err := takeU32s(buf, nnz)
	if err != nil {
		return nil, err
	}
	vals, buf, err := takeF64s(buf, nnz)
	if err != nil {
		return nil, err
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("formats: CSR image has %d trailing bytes", len(buf))
	}
	if err := validateCSRParts(rows, cols, starts, colIdx, nnz); err != nil {
		return nil, err
	}
	return &CSR{rows: rows, cols: cols, starts: starts, colIdx: colIdx, vals: vals}, nil
}

// Rows returns the number of tuples.
func (e *CSR) Rows() int { return e.rows }

// Cols returns the number of columns.
func (e *CSR) Cols() int { return e.cols }

// CompressedSize counts the header, row starts (4 B each), column indexes
// (4 B each) and values (8 B each) — exactly len(Serialize()).
func (e *CSR) CompressedSize() int {
	return wireHeaderSize + 4*len(e.starts) + 4*len(e.colIdx) + 8*len(e.vals)
}

// Decode expands the sparse rows into a dense matrix.
func (e *CSR) Decode() *matrix.Dense {
	d := matrix.NewDense(e.rows, e.cols)
	for i := 0; i < e.rows; i++ {
		row := d.Row(i)
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			row[e.colIdx[k]] = e.vals[k]
		}
	}
	return d
}

// Scale computes A.*c by scaling the stored non-zero values.
func (e *CSR) Scale(c float64) CompressedMatrix {
	vals := make([]float64, len(e.vals))
	for i, v := range e.vals {
		vals[i] = v * c
	}
	return &CSR{rows: e.rows, cols: e.cols, starts: e.starts, colIdx: e.colIdx, vals: vals}
}

// MulVec computes A·v with one pass over the non-zeros.
func (e *CSR) MulVec(v []float64) []float64 {
	if len(v) != e.cols {
		panic(fmt.Sprintf("formats: CSR MulVec dim mismatch %d != %d", len(v), e.cols))
	}
	r := make([]float64, e.rows)
	for i := 0; i < e.rows; i++ {
		var s float64
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			s += e.vals[k] * v[e.colIdx[k]]
		}
		r[i] = s
	}
	return r
}

// VecMul computes v·A with one pass over the non-zeros.
func (e *CSR) VecMul(v []float64) []float64 {
	if len(v) != e.rows {
		panic(fmt.Sprintf("formats: CSR VecMul dim mismatch %d != %d", len(v), e.rows))
	}
	r := make([]float64, e.cols)
	for i := 0; i < e.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			r[e.colIdx[k]] += vi * e.vals[k]
		}
	}
	return r
}

// MulMat computes A·M row by row over the non-zeros.
func (e *CSR) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != e.cols {
		panic(fmt.Sprintf("formats: CSR MulMat dim mismatch %d != %d", m.Rows(), e.cols))
	}
	r := matrix.NewDense(e.rows, m.Cols())
	for i := 0; i < e.rows; i++ {
		ri := r.Row(i)
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			val := e.vals[k]
			mrow := m.Row(int(e.colIdx[k]))
			for j, mv := range mrow {
				ri[j] += val * mv
			}
		}
	}
	return r
}

// MatMul computes M·A over the non-zeros.
func (e *CSR) MatMul(m *matrix.Dense) *matrix.Dense {
	if m.Cols() != e.rows {
		panic(fmt.Sprintf("formats: CSR MatMul dim mismatch %d != %d", m.Cols(), e.rows))
	}
	p := m.Rows()
	r := matrix.NewDense(p, e.cols)
	for i := 0; i < e.rows; i++ {
		for k := e.starts[i]; k < e.starts[i+1]; k++ {
			col := int(e.colIdx[k])
			val := e.vals[k]
			for row := 0; row < p; row++ {
				r.Set(row, col, r.At(row, col)+m.At(row, i)*val)
			}
		}
	}
	return r
}
