package bench

import (
	"fmt"
	"time"

	"toc/internal/data"
	"toc/internal/ml"
	"toc/internal/storage"
)

// End-to-end MGD runtime experiments: Figure 9 (runtime vs dataset size),
// Figure 10 (TOC-layer ablation on runtimes), Table 6 (imagenet/mnist) and
// Table 7 (census/kdd99).
//
// The memory-budget regimes mirror the paper: the "1m" datasets fit in
// RAM for every encoding; the "25m" datasets fit only for the formats with
// the best ratios (TOC, Gzip, Snappy) — everything else spills to disk and
// pays IO every epoch. storage.Store simulates the paper's ~150 MB/s cloud
// disk so the page cache does not hide the cost at laptop scale.

func init() {
	register("fig9", "end-to-end MGD runtime vs dataset size (imagenet-like)", runFig9)
	register("fig10", "TOC ablation on end-to-end MGD runtimes", runFig10)
	register("table6", "end-to-end MGD runtimes on imagenet/mnist (in-RAM and spill)", runTable6)
	register("table7", "end-to-end MGD runtimes on census/kdd99 (in-RAM and spill)", runTable7)
}

// simulatedDiskBandwidth models the paper's out-of-core regime. The
// paper's machines read spilled data through a thrashing OS page cache
// (24 GB working set on 15 GB RAM), whose effective throughput is far
// below the disk's nominal 150-200 MB/s; 25 MB/s keeps our IO:compute
// ratio aligned with the paper's (their C++ kernels are also several
// times faster than these Go kernels). See EXPERIMENTS.md.
const simulatedDiskBandwidth = 25 << 20 // bytes/s

// storeSource wraps a storage.Store for training plus cleanup.
type storeSource struct {
	*storage.Store
}

func (s storeSource) close() { _ = s.Close() }

// newStoreSource loads a dataset into a budgeted store, honoring the
// Config's spill knobs (disk model, eviction policy, shard directories).
func newStoreSource(cfg Config, d *data.Dataset, batchSize int, method string, budget int64) (storeSource, error) {
	opts, err := cfg.spillOptions(0, storage.PerRequest)
	if err != nil {
		return storeSource{}, err
	}
	st, err := storage.NewStore(cfg.Dir, method, budget, opts...)
	if err != nil {
		return storeSource{}, err
	}
	st.SetReadBandwidth(simulatedDiskBandwidth)
	for i := 0; i < d.NumBatches(batchSize); i++ {
		x, y := d.Batch(i, batchSize)
		if err := st.Add(x, y); err != nil {
			st.Close()
			return storeSource{}, err
		}
	}
	return storeSource{st}, nil
}

// trainOnce measures the wall-clock training time of a model over a store.
func trainOnce(cfg Config, d *data.Dataset, method, modelName string, budget int64, epochs int) (time.Duration, error) {
	src, err := newStoreSource(cfg, d, 250, method, budget)
	if err != nil {
		return 0, err
	}
	defer src.close()
	m, err := ml.NewModel(modelName, d.X.Cols(), d.Classes, 0.12, cfg.Seed+31)
	if err != nil {
		return 0, err
	}
	res := ml.Train(m, src, epochs, 0.2, nil)
	return res.Total, nil
}

var e2eMethods = []string{"TOC", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip"}

func runFig9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "end-to-end MGD runtime (ms) vs dataset rows, imagenet-like",
		Columns: append([]string{"model", "rows"}, e2eMethods...),
		Notes: []string{
			"fixed memory budget; simulated 25 MB/s effective spill bandwidth",
			"paper shape: runtime jumps once an encoding spills; TOC spills last",
			"  and stays fastest; the gap is larger for LR than NN (NN is compute-heavy)",
		},
	}
	sizes := []int{500, 1000, 2000, 4000}
	// Budget: comfortably holds TOC at the largest size; DEN spills early.
	base, err := getDataset("imagenet", cfg.rows(sizes[len(sizes)-1]), cfg.Seed)
	if err != nil {
		return nil, err
	}
	budget := int64(float64(totalCompressed(base, 250, "TOC")) * 1.3)
	for _, modelName := range []string{"nn", "lr"} {
		epochs := 2
		if modelName == "nn" {
			epochs = 1
		}
		for _, n := range sizes {
			d, err := getDataset("imagenet", cfg.rows(n), cfg.Seed)
			if err != nil {
				return nil, err
			}
			row := []string{modelName, fmt.Sprint(d.X.Rows())}
			for _, method := range e2eMethods {
				dur, err := trainOnce(cfg, d, method, modelName, budget, epochs)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", dur.Seconds()*1e3))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func runFig10(cfg Config) (*Table, error) {
	variants := []string{"DEN", "TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC_FULL"}
	t := &Table{
		ID:      "fig10",
		Title:   "end-to-end MGD runtime (ms) ablation of TOC encoding layers",
		Columns: append([]string{"model", "rows"}, variants...),
		Notes: []string{
			"paper shape: each added encoding layer reduces runtime (smaller",
			"  footprint spills later and reads less)",
		},
	}
	sizes := []int{1000, 2000, 4000}
	base, err := getDataset("imagenet", cfg.rows(sizes[len(sizes)-1]), cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Budget between TOC_FULL and TOC_SPARSE footprints so the ablation
	// layers change the spill point.
	budget := int64(float64(totalCompressed(base, 250, "TOC_SPARSE_AND_LOGICAL")) * 1.1)
	for _, modelName := range []string{"nn", "lr"} {
		epochs := 2
		if modelName == "nn" {
			epochs = 1
		}
		for _, n := range sizes {
			d, err := getDataset("imagenet", cfg.rows(n), cfg.Seed)
			if err != nil {
				return nil, err
			}
			row := []string{modelName, fmt.Sprint(d.X.Rows())}
			for _, v := range variants {
				dur, err := trainOnce(cfg, d, v, modelName, budget, epochs)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0f", dur.Seconds()*1e3))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// runEndToEndTable builds a Table 6/7-style table for two datasets.
func runEndToEndTable(cfg Config, id, title string, datasets []string) (*Table, error) {
	models := []string{"nn", "lr", "svm"}
	systems := []string{
		"BismarckTOC", "BismarckDEN", "BismarckCSR",
		"ScikitLearnDEN", "ScikitLearnCSR",
		"TensorFlowDEN", "TensorFlowCSR",
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"method", "regime", "dataset", "nn_ms", "lr_ms", "svm_ms"},
		Notes: []string{
			"regime small = fits in RAM for all encodings (the paper's *1m);",
			"regime large = only TOC/Gzip/Snappy resident (the paper's *25m, 15GB RAM)",
			"system rows (Bismarck/ScikitLearn/TensorFlow) are modeled from the native",
			"  runs via documented multipliers; see internal/bench/systems.go",
			"paper shape: small regime TOC ~ CVI best; large regime TOC wins by",
			"  multiples on LR/SVM and clearly on NN",
		},
	}
	type regime struct {
		name   string
		rows   int
		budget func(d *data.Dataset) int64
	}
	regimes := []regime{
		{"small", 1200, func(*data.Dataset) int64 { return 1 << 40 }},
		{"large", 4000, func(d *data.Dataset) int64 {
			return int64(float64(totalCompressed(d, 250, "TOC")) * 1.1)
		}},
	}
	native := map[string]time.Duration{} // method/regime/dataset/model -> duration
	key := func(method, reg, ds, model string) string {
		return method + "/" + reg + "/" + ds + "/" + model
	}
	for _, ds := range datasets {
		for _, reg := range regimes {
			d, err := getDataset(ds, cfg.rows(reg.rows), cfg.Seed)
			if err != nil {
				return nil, err
			}
			budget := reg.budget(d)
			for _, method := range e2eMethods {
				row := []string{method, reg.name, ds}
				for _, modelName := range models {
					epochs := 2
					if modelName == "nn" {
						epochs = 1
					}
					dur, err := trainOnce(cfg, d, method, modelName, budget, epochs)
					if err != nil {
						return nil, err
					}
					native[key(method, reg.name, ds, modelName)] = dur
					row = append(row, fmt.Sprintf("%.0f", dur.Seconds()*1e3))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	// Modeled system rows.
	for _, ds := range datasets {
		for _, reg := range regimes {
			for _, sys := range systems {
				row := []string{sys + "*", reg.name, ds}
				for _, modelName := range models {
					if !systemSupports(sys, modelName) {
						row = append(row, "N/A")
						continue
					}
					base := native[key(systemBase(sys), reg.name, ds, modelName)]
					row = append(row, fmt.Sprintf("%.0f", modelSystemTime(sys, modelName, base).Seconds()*1e3))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t, nil
}

func runTable6(cfg Config) (*Table, error) {
	return runEndToEndTable(cfg, "table6",
		"end-to-end MGD runtimes (ms): imagenet-like and mnist-like",
		[]string{"imagenet", "mnist"})
}

func runTable7(cfg Config) (*Table, error) {
	return runEndToEndTable(cfg, "table7",
		"end-to-end MGD runtimes (ms): census-like and kdd99-like",
		[]string{"census", "kdd99"})
}
