package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"toc/internal/data"
	"toc/internal/dist"
	"toc/internal/formats"
	"toc/internal/ml"
)

// Distributed gradient-exchange scaling — the network counterpart of
// spillscale (disk) and asyncscale (scheduling). The sweep crosses the
// gradient codec with the simulated link bandwidth: every run trains the
// same schedule through the parameter server, but dense ships the full
// float image both directions while top-k and quantization ship a few
// percent of it, so on a slow link the codec converts wire bytes saved
// directly into epoch time. Per-batch compute is a deterministic sleep
// (as in asyncscale), which makes the speedups a property of the
// bytes-vs-bandwidth arithmetic rather than of the runner's FLOPs: on
// the slow link dense is wire-bound and the compressed codecs win by
// multiples; on the unmetered wire everything converges to the compute
// floor and the speedup column collapses to ~1. wire_ratio is the
// measured payload bytes as a fraction of what dense would have shipped
// for the same transfers; loss_delta_pct shows what the lossy codecs
// paid for it (error feedback keeps it small once the schedule is long
// enough for the residuals to drain — see the note).

func init() {
	register("netscale", "compressed gradient exchange vs link bandwidth in the distributed engine", runNetScale)
}

const (
	// netScaleCompute is the simulated per-batch gradient cost.
	netScaleCompute = 2 * time.Millisecond
	// netScaleTrainers is the cluster size of every run.
	netScaleTrainers = 2
	// netScaleStaleness is the server's admission bound.
	netScaleStaleness = 4
	// 80 batches/epoch × 8 epochs = 640 steps: enough schedule for
	// topk:0.01's error feedback to drain (steps × ratio ≈ 6 full-vector
	// passes), so the loss delta lands in the low single digits.
	netScaleEpochs = 8
	netScaleBatch  = 25
)

// pacedSource charges the deterministic compute cost on the consuming
// trainer's goroutine, so epoch time is sleep-dominated and the
// codec/link tradeoff — not scheduler jitter — sets the table's shape.
type pacedSource struct {
	ml.BatchSource
}

func (s *pacedSource) Batch(i int) (formats.CompressedMatrix, []float64) {
	x, y := s.BatchSource.Batch(i)
	time.Sleep(netScaleCompute)
	return x, y
}

type netScaleRun struct {
	epochSec  float64
	wireRatio float64
	loss      float64
}

// runNetCluster trains one (codec, link) cell: a parameter server and
// netScaleTrainers trainers over in-process pipes, the same wire path
// the dist package serves over TCP.
func runNetCluster(cfg Config, d *data.Dataset, spec string, mbps float64) (*netScaleRun, error) {
	codec, err := dist.ParseCodec(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	m, err := ml.NewModel("lr", d.X.Cols(), d.Classes, 0.12, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	sm, ok := m.(ml.SnapshotModel)
	if !ok {
		return nil, fmt.Errorf("netscale: model %T does not implement SnapshotModel", m)
	}
	src := &pacedSource{BatchSource: ml.NewMemorySource(d, netScaleBatch, formats.MustGet("TOC"))}
	srv, err := dist.NewServer(dist.ServerConfig{
		Epochs: netScaleEpochs, NumBatches: src.NumBatches(), LR: 0.2,
		Seed: cfg.Seed, Staleness: netScaleStaleness,
		Codec: codec, Link: dist.NewLinkMbps(mbps),
	}, sm)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	terrs := make([]error, netScaleTrainers)
	for i := 0; i < netScaleTrainers; i++ {
		server, client := net.Pipe()
		go srv.ServeConn(server)
		tr := dist.NewTrainer(client, sm.Clone(), src, dist.TrainerConfig{Codec: codec.Clone()})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			terrs[i] = tr.Run()
		}(i)
	}
	res, err := srv.Wait()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for i, terr := range terrs {
		if terr != nil {
			return nil, fmt.Errorf("netscale: trainer %d: %v", i, terr)
		}
	}
	st := srv.Stats()
	return &netScaleRun{
		epochSec:  res.Total.Seconds() / netScaleEpochs,
		wireRatio: st.WireRatio(),
		loss:      res.EpochLoss[len(res.EpochLoss)-1],
	}, nil
}

func runNetScale(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "netscale",
		Title: "gradient codecs vs link bandwidth (parameter-server training)",
		Columns: []string{"codec", "link_mbps", "epoch_ms", "speedup_vs_dense",
			"wire_ratio", "final_loss", "loss_delta_pct"},
		Notes: []string{
			fmt.Sprintf("%d trainers, staleness %d, %v simulated compute per batch; the link is a",
				netScaleTrainers, netScaleStaleness, netScaleCompute),
			"  shared per-direction token bucket, so payload bytes buy wall-clock directly.",
			"  speedup_vs_dense compares equal link speeds; wire_ratio is payload bytes over",
			"  what dense ships for the same transfers. The lossy codecs' loss_delta_pct",
			"  shrinks as the schedule grows (error feedback re-delivers what a round",
			"  drops); the dist convergence test pins the long-schedule bound.",
		},
	}
	d, err := getDataset("mnist", cfg.rows(2000), cfg.Seed)
	if err != nil {
		return nil, err
	}
	codecs := []string{"dense", "topk:0.01", "dsq:4"}
	for _, mbps := range []float64{25, 100, 0} {
		label := "inf"
		if mbps > 0 {
			label = fmt.Sprintf("%.0f", mbps)
		}
		var dense *netScaleRun
		for _, spec := range codecs {
			r, err := runNetCluster(cfg, d, spec, mbps)
			if err != nil {
				return nil, err
			}
			if dense == nil {
				dense = r
			}
			t.Rows = append(t.Rows, []string{
				spec, label,
				fmt.Sprintf("%.0f", r.epochSec*1e3),
				f2(dense.epochSec / r.epochSec),
				fmt.Sprintf("%.4f", r.wireRatio),
				fmt.Sprintf("%.6f", r.loss),
				fmt.Sprintf("%+.2f", (r.loss-dense.loss)/dense.loss*100),
			})
		}
	}
	return t, nil
}
