package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryHasEveryPaperArtifact(t *testing.T) {
	want := []string{"asyncscale", "fig2", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "kernelspeed", "netscale",
		"rightmul", "scaling", "spillscale", "table6", "table7"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() = %v, want %d experiments", IDs(), len(want))
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a    bb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// Fast experiments run end-to-end at tiny scale and emit well-formed
// tables (the training-heavy ones are exercised by bench_test.go at the
// repo root).
func TestFastExperimentsRun(t *testing.T) {
	cfg := Config{Scale: 0.2, Seed: 1, Dir: t.TempDir()}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig12"} {
		e, _ := Get(id)
		table, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Columns) {
				t.Fatalf("%s: row width %d != %d columns", id, len(row), len(table.Columns))
			}
		}
	}
}

// The spillscale acceptance shape: with the aggregate bandwidth fixed by
// the shared token bucket, 4 spill shards must turn an epoch around
// faster than 1 shard at 4+ workers (seeks overlap across shards), and
// the measured aggregate read throughput must never exceed the cap —
// the honesty the bucket exists for. (The finer-grained mechanism tests
// live in internal/storage; this pins the user-visible bench output.)
func TestSpillScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	// Scale 0.6 keeps 1-shard epochs in the tens of milliseconds, so the
	// expected ~2.5x sharding gap dwarfs scheduler jitter on CI runners.
	e, _ := Get("spillscale")
	table, err := e.Run(Config{Scale: 0.6, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	epoch := map[[2]string]float64{} // (shards, workers) -> epoch_ms
	loss := map[string]bool{}
	for _, row := range table.Rows {
		ms, err := strconv.ParseFloat(row[col["epoch_ms"]], 64)
		if err != nil {
			t.Fatalf("bad epoch_ms %q", row[col["epoch_ms"]])
		}
		epoch[[2]string{row[col["shards"]], row[col["workers"]]}] = ms
		agg, err := strconv.ParseFloat(row[col["agg_MBps"]], 64)
		if err != nil {
			t.Fatalf("bad agg_MBps %q", row[col["agg_MBps"]])
		}
		if cap := float64(spillScaleBandwidth) / (1 << 20); agg > cap*1.06 {
			t.Errorf("shards=%s workers=%s: aggregate %.2f MB/s exceeds the %.0f MB/s bucket cap",
				row[col["shards"]], row[col["workers"]], agg, cap)
		}
		loss[row[col["final_loss"]]] = true
	}
	if len(loss) != 1 {
		t.Errorf("final_loss varies across the sweep: %v", loss)
	}
	for _, w := range []string{"4", "8"} {
		one, four := epoch[[2]string{"1", w}], epoch[[2]string{"4", w}]
		if one == 0 || four == 0 {
			t.Fatalf("missing sweep rows for workers=%s", w)
		}
		// The mechanism typically yields ~2.5x; 0.9 only filters jitter.
		if four >= one*0.9 {
			t.Errorf("workers=%s: 4-shard epoch %.0fms not faster than 1-shard %.0fms", w, four, one)
		}
	}
}

// The asyncscale acceptance shape: under skewed batch costs the sync
// barrier pays the straggler every group step, so at 8 workers the async
// engine with a staleness window covering the skew period must turn an
// epoch around faster than the synchronous engine; staleness 0 is the
// serial chain and must never report nonzero observed staleness. The
// batch costs are deterministic sleeps, so the gap is stable even on a
// single core (sleeps overlap; the barrier's serialization does not).
func TestAsyncScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	e, _ := Get("asyncscale")
	table, err := e.Run(Config{Scale: 0.4, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	type key struct{ config, staleness, workers string }
	epoch := map[key]float64{}
	for _, row := range table.Rows {
		ms, err := strconv.ParseFloat(row[col["epoch_ms"]], 64)
		if err != nil {
			t.Fatalf("bad epoch_ms %q", row[col["epoch_ms"]])
		}
		epoch[key{row[col["config"]], row[col["staleness"]], row[col["workers"]]}] = ms
		if row[col["config"]] == "async" && row[col["staleness"]] == "0" && row[col["stale_max"]] != "0" {
			t.Errorf("staleness-0 row observed stale_max %s", row[col["stale_max"]])
		}
	}
	sync8 := epoch[key{"sync", "-", "8"}]
	async8 := epoch[key{"async", "8", "8"}]
	if sync8 == 0 || async8 == 0 {
		t.Fatalf("missing sweep rows: %v", epoch)
	}
	// The mechanism typically yields ~1.6x at the window = skew period;
	// 0.95 only filters jitter.
	if async8 >= sync8*0.95 {
		t.Errorf("workers=8: async staleness-8 epoch %.0fms not faster than sync barrier %.0fms", async8, sync8)
	}
}

// The netscale acceptance shape: on the slow link the compressed codecs
// must beat dense (their payloads are a few percent of the dense image,
// and the link is the bottleneck there), the measured wire ratios must
// sit in their codecs' expected bands, and dense must ship ~exactly its
// own byte count. Sleeps dominate every run, so the speedups survive CI
// jitter.
func TestNetScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	e, _ := Get("netscale")
	table, err := e.Run(Config{Scale: 0.4, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	for _, row := range table.Rows {
		codec, link := row[col["codec"]], row[col["link_mbps"]]
		speedup, err := strconv.ParseFloat(row[col["speedup_vs_dense"]], 64)
		if err != nil {
			t.Fatalf("bad speedup %q", row[col["speedup_vs_dense"]])
		}
		ratio, err := strconv.ParseFloat(row[col["wire_ratio"]], 64)
		if err != nil {
			t.Fatalf("bad wire_ratio %q", row[col["wire_ratio"]])
		}
		switch codec {
		case "dense":
			if speedup != 1.0 {
				t.Errorf("dense/%s: speedup %v, want its own baseline 1.00", link, speedup)
			}
			if ratio < 0.99 || ratio > 1.01 {
				t.Errorf("dense/%s: wire ratio %v, want ~1", link, ratio)
			}
		case "topk:0.01":
			if ratio > 0.05 {
				t.Errorf("topk/%s: wire ratio %v exceeds 5%% of dense", link, ratio)
			}
		default: // dsq:4
			if ratio > 0.10 {
				t.Errorf("dsq/%s: wire ratio %v exceeds 10%% of dense", link, ratio)
			}
		}
		// The regime's headline: on the wire-bound link, compression wins.
		if link == "25" && codec != "dense" && speedup < 1.3 {
			t.Errorf("%s/%s: speedup %v, want the compressed codec to beat dense on the slow link", codec, link, speedup)
		}
	}
}

// The fig5 shape assertions the reproduction stands on: at 250 rows TOC
// must beat CSR/CVI/DVI/CLA on the moderate-sparsity datasets, track CSR
// on rcv1, and nothing should compress deep1b.
func TestFig5Shapes(t *testing.T) {
	e, _ := Get("fig5")
	table, err := e.Run(Config{Scale: 1, Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// columns: dataset rows CSR CVI DVI Snappy Gzip TOC CLA
	col := map[string]int{}
	for i, c := range table.Columns {
		col[c] = i
	}
	ratios := map[string]map[string]float64{}
	for _, row := range table.Rows {
		if row[1] != "250" {
			continue
		}
		m := map[string]float64{}
		for _, name := range []string{"CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC", "CLA"} {
			v, err := strconv.ParseFloat(row[col[name]], 64)
			if err != nil {
				t.Fatalf("bad cell %q", row[col[name]])
			}
			m[name] = v
		}
		ratios[row[0]] = m
	}
	for _, ds := range []string{"census", "imagenet", "kdd99"} {
		r := ratios[ds]
		for _, other := range []string{"CSR", "CVI", "DVI", "CLA", "Snappy"} {
			if r["TOC"] <= r[other] {
				t.Errorf("%s: TOC %.2f should beat %s %.2f", ds, r["TOC"], other, r[other])
			}
		}
		if r["TOC"] < r["Gzip"]*0.95 {
			t.Errorf("%s: TOC %.2f should be at least ~Gzip %.2f", ds, r["TOC"], r["Gzip"])
		}
	}
	if m := ratios["mnist"]; m["Gzip"] <= m["TOC"] {
		t.Errorf("mnist: Gzip %.2f should beat TOC %.2f (paper)", m["Gzip"], m["TOC"])
	}
	if r := ratios["rcv1"]; r["TOC"] < r["CSR"]*0.8 || r["TOC"] > r["CSR"]*1.5 {
		t.Errorf("rcv1: TOC %.2f should track CSR %.2f", r["TOC"], r["CSR"])
	}
	for name, v := range ratios["deep1b"] {
		if v > 1.2 {
			t.Errorf("deep1b: %s ratio %.2f should be ~1", name, v)
		}
	}
}
