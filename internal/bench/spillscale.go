package bench

import (
	"fmt"
	"time"

	"toc/internal/engine"
	"toc/internal/storage"
)

// Sharded spill scaling — the storage-layer counterpart of the `scaling`
// experiment. Every batch spills; the simulated disk is a shared token
// bucket (one aggregate bandwidth cap however many readers pile on) plus
// a per-read seek that serializes within a shard. The sweep crosses spill
// shard count with engine worker count under that one fixed aggregate
// bandwidth, so the table shows exactly what sharding buys: the transfer
// bytes cost the same everywhere (the bucket is honest — agg_MBps never
// exceeds the cap), but the seeks overlap across shards, so 4 shards turn
// an epoch around faster than 1 at the same worker count. The per-request
// disk model would instead show throughput growing with queue depth —
// run with -disk-model per-request to see the cloud-block-store regime.

func init() {
	register("spillscale", "sharded spill scaling under one aggregate disk bandwidth", runSpillScale)
}

const (
	// spillScaleBandwidth is the aggregate token-bucket cap shared by all
	// shards of the simulated device.
	spillScaleBandwidth = 6 << 20 // bytes/s
	// spillScaleSeek is the per-read access latency; it serializes within
	// a shard and overlaps across shards, so it is the term sharding
	// amortizes.
	spillScaleSeek = 1500 * time.Microsecond
)

func runSpillScale(cfg Config) (*Table, error) {
	const batchSize, epochs = 250, 2
	t := &Table{
		ID:      "spillscale",
		Title:   "sharded spill scaling (all batches spilled, shared-bucket disk)",
		Columns: []string{"shards", "workers", "encode_ms", "epoch_ms", "agg_MBps", "speedup_vs_1shard", "final_loss"},
		Notes: []string{
			fmt.Sprintf("aggregate bandwidth fixed at %d MB/s (shared token bucket), seek %v per read",
				spillScaleBandwidth>>20, spillScaleSeek),
			"agg_MBps = spilled bytes read / wall clock; the bucket keeps it at or",
			"  below the cap at every queue depth — sharding buys seek overlap, not",
			"  extra bandwidth. final_loss is identical across the whole sweep.",
		},
	}
	d, err := getDataset("census", cfg.rows(6000), cfg.Seed)
	if err != nil {
		return nil, err
	}
	shardCounts := addCount([]int{1, 2, 4}, cfg.SpillShards)
	workerCounts := addCount([]int{1, 4, 8}, cfg.Workers)
	for _, w := range workerCounts {
		var oneShardEpoch float64
		for _, sc := range shardCounts {
			opts, err := cfg.spillOptions(sc, storage.SharedBucket)
			if err != nil {
				return nil, err
			}
			opts = append(opts,
				storage.WithReadBandwidth(spillScaleBandwidth),
				storage.WithAccessLatency(spillScaleSeek))
			st, err := storage.NewStore(cfg.Dir, "TOC", 1, opts...) // 1-byte budget: all spilled
			if err != nil {
				return nil, err
			}
			eng := engine.New(engine.Config{Workers: w, GroupSize: 8, Seed: cfg.Seed})
			encStart := time.Now()
			if err := eng.FillStore(st, d, batchSize); err != nil {
				st.Close()
				return nil, err
			}
			encodeTime := time.Since(encStart)
			// The aggregate-throughput window opens with the prefetcher:
			// it starts reading (and drawing bucket tokens) immediately,
			// before Train's own clock.
			ioStart := time.Now()
			pf := eng.NewPrefetcher(st, 16, 0)
			m, err := scalingModel(cfg, d)
			if err != nil {
				pf.Close()
				st.Close()
				return nil, err
			}
			res := eng.Train(m, pf, epochs, 0.2, nil)
			// Close drains the queued wrap-around prefetches, which also
			// count toward BytesRead — the window must cover them.
			pf.Close()
			ioWall := time.Since(ioStart)
			stats := st.Stats()
			st.Close()
			epochSec := res.Total.Seconds() / epochs
			if sc == 1 {
				oneShardEpoch = epochSec
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(sc), fmt.Sprint(w),
				fmt.Sprintf("%.0f", encodeTime.Seconds()*1e3),
				fmt.Sprintf("%.0f", epochSec*1e3),
				fmt.Sprintf("%.2f", float64(stats.BytesRead)/ioWall.Seconds()/(1<<20)),
				fmt.Sprintf("%.2f", oneShardEpoch/epochSec),
				fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
			})
		}
	}
	return t, nil
}

// addCount appends extra to counts unless it is unset or already present.
func addCount(counts []int, extra int) []int {
	if extra <= 0 {
		return counts
	}
	for _, c := range counts {
		if c == extra {
			return counts
		}
	}
	return append(counts, extra)
}
