package bench

import (
	"fmt"
	"runtime"
	"time"

	"toc/internal/data"
	"toc/internal/engine"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
	"toc/internal/storage"
)

// Multi-core scaling of the concurrent training engine — the paper's §6
// scalability direction — in the two regimes that matter:
//
//   - in-RAM: every batch resident, so the engine's win is sharding
//     gradient compute across cores (bounded by GOMAXPROCS);
//   - spill: batches on throttled disk, so the win is the async
//     prefetcher overlapping Figure 1A's IO time with compute and issuing
//     reads concurrently — this one pays off even on a single core;
//   - leftmul: GroupSize 1, so the only parallelism is the kernels inside
//     each gradient — the left multiplications v·A (linear-model gradient
//     aggregation) and M·A (NN input-layer backward), plus the right-mul
//     forward passes, sharded across the pool.
//
// The forward direction has its own regime, "rightmul" (rightmul.go):
// A·v/A·M kernel throughput across worker counts with per-step
// decode-tree (KernelPlan) reuse.
//
// Each regime has one serial ml.Train baseline row and one engine row per
// worker count over the same seeded trajectory. Because the engine merges
// each step's shard gradients in batch order — and the parallel kernels
// are bitwise identical to the sequential ones — the engine rows of a
// regime report identical final_loss: worker count buys wall-clock, never
// a different model. In the leftmul regime even the serial row shares the
// loss, since group 1 reproduces the serial schedule exactly.

func init() {
	register("scaling", "multi-core scaling of the concurrent training engine", runScaling)
}

// scalingSpillBandwidth throttles the spill regime's simulated disk hard
// enough that per-epoch IO rivals compute, as in the paper's out-of-core
// runs; the prefetcher's concurrent reads then model real device queue
// depth.
const scalingSpillBandwidth = 2 << 20 // bytes/s

func runScaling(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "scaling",
		Title:   "concurrent engine scaling (TOC-compressed batches, lr model)",
		Columns: []string{"regime", "config", "workers", "encode_ms", "train_ms", "speedup", "final_loss"},
		Notes: []string{
			"serial rows = ml.Train / storage.Store.Add; engine rows share one",
			"  group size, so final_loss is identical across worker counts",
			fmt.Sprintf("  (GOMAXPROCS=%d; in-RAM gains need cores, spill gains need only IO overlap)", runtime.GOMAXPROCS(0)),
			fmt.Sprintf("spill regime: everything spilled, %d MB/s simulated disk", scalingSpillBandwidth>>20),
			"leftmul regime: group 1, workers shard each gradient's kernels (v·A, M·A);",
			"  every row, serial included, reports the same loss bitwise",
		},
	}
	counts := addCount([]int{1, 2, 4, 8}, cfg.Workers)
	if err := scalingInRAM(cfg, t, counts); err != nil {
		return nil, err
	}
	if err := scalingSpill(cfg, t, counts); err != nil {
		return nil, err
	}
	if err := scalingLeftMul(cfg, t, counts); err != nil {
		return nil, err
	}
	return t, nil
}

func scalingModel(cfg Config, d *data.Dataset) (ml.GradModel, error) {
	m, err := ml.NewModel("lr", d.X.Cols(), d.Classes, 0.12, cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	return m.(ml.GradModel), nil
}

func scalingInRAM(cfg Config, t *Table, counts []int) error {
	const batchSize, epochs = 250, 3
	d, err := getDataset("imagenet", cfg.rows(2500), cfg.Seed)
	if err != nil {
		return err
	}
	n := d.NumBatches(batchSize)
	dense := make([]*matrix.Dense, n)
	for i := 0; i < n; i++ {
		dense[i], _ = d.Batch(i, batchSize)
	}
	enc := formats.MustGet("TOC")

	// Serial baseline: one-at-a-time encode, ml.Train loop.
	encStart := time.Now()
	for _, x := range dense {
		enc(x)
	}
	serialEncode := time.Since(encStart)
	src := ml.NewMemorySource(d, batchSize, enc)
	m, err := scalingModel(cfg, d)
	if err != nil {
		return err
	}
	serial := ml.Train(m, src, epochs, 0.2, nil)
	t.Rows = append(t.Rows, []string{
		"in-RAM", "serial", "1",
		fmt.Sprintf("%.0f", serialEncode.Seconds()*1e3),
		fmt.Sprintf("%.0f", serial.Total.Seconds()*1e3),
		"1.00",
		fmt.Sprintf("%.6f", serial.EpochLoss[epochs-1]),
	})
	for _, w := range counts {
		eng := engine.New(engine.Config{Workers: w, GroupSize: 8, Seed: cfg.Seed})
		encStart := time.Now()
		eng.EncodeAll(enc, dense)
		encodeTime := time.Since(encStart)
		m, err := scalingModel(cfg, d)
		if err != nil {
			return err
		}
		res := eng.Train(m, src, epochs, 0.2, nil)
		t.Rows = append(t.Rows, []string{
			"in-RAM", "engine", fmt.Sprint(w),
			fmt.Sprintf("%.0f", encodeTime.Seconds()*1e3),
			fmt.Sprintf("%.0f", res.Total.Seconds()*1e3),
			fmt.Sprintf("%.2f", serial.Total.Seconds()/res.Total.Seconds()),
			fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
		})
	}
	return nil
}

// scalingLeftMul isolates kernel-level parallelism: large TOC batches,
// GroupSize 1 (the serial update schedule), workers sharding the
// multiplications inside each gradient. "lr" leans on v·A for its
// gradient aggregation; "nn" on the A·M forward and the M·A backward of
// the input layer.
func scalingLeftMul(cfg Config, t *Table, counts []int) error {
	const batchSize, epochs = 1000, 2
	d, err := getDataset("imagenet", cfg.rows(4000), cfg.Seed)
	if err != nil {
		return err
	}
	src := ml.NewMemorySource(d, batchSize, formats.MustGet("TOC"))
	for _, modelName := range []string{"lr", "nn"} {
		mk := func() (ml.GradModel, error) {
			m, err := ml.NewModel(modelName, d.X.Cols(), d.Classes, 0.5, cfg.Seed+43)
			if err != nil {
				return nil, err
			}
			return m.(ml.GradModel), nil
		}
		regime := "leftmul-" + modelName
		m, err := mk()
		if err != nil {
			return err
		}
		serial := ml.Train(m, src, epochs, 0.2, nil)
		t.Rows = append(t.Rows, []string{
			regime, "serial", "1", "-",
			fmt.Sprintf("%.0f", serial.Total.Seconds()*1e3),
			"1.00",
			fmt.Sprintf("%.6f", serial.EpochLoss[epochs-1]),
		})
		for _, w := range counts {
			eng := engine.New(engine.Config{Workers: w, GroupSize: 1, Seed: cfg.Seed})
			m, err := mk()
			if err != nil {
				return err
			}
			res := eng.Train(m, src, epochs, 0.2, nil)
			t.Rows = append(t.Rows, []string{
				regime, "engine", fmt.Sprint(w), "-",
				fmt.Sprintf("%.0f", res.Total.Seconds()*1e3),
				fmt.Sprintf("%.2f", serial.Total.Seconds()/res.Total.Seconds()),
				fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
			})
		}
	}
	return nil
}

func scalingSpill(cfg Config, t *Table, counts []int) error {
	const batchSize, epochs = 250, 2
	d, err := getDataset("mnist", cfg.rows(1500), cfg.Seed)
	if err != nil {
		return err
	}
	// Serial baseline: Store.Add ingest, ml.Train reading every spilled
	// batch synchronously on the critical path. The historical regime is
	// per-request bandwidth on one shard; -disk-model/-evict/-spill-dirs
	// override it through the Config.
	spillOpts, err := cfg.spillOptions(0, storage.PerRequest)
	if err != nil {
		return err
	}
	st, err := storage.NewStore(cfg.Dir, "TOC", 1, spillOpts...) // 1-byte budget: all spilled
	if err != nil {
		return err
	}
	defer st.Close()
	st.SetReadBandwidth(scalingSpillBandwidth)
	encStart := time.Now()
	for i := 0; i < d.NumBatches(batchSize); i++ {
		x, y := d.Batch(i, batchSize)
		if err := st.Add(x, y); err != nil {
			return err
		}
	}
	serialEncode := time.Since(encStart)
	m, err := scalingModel(cfg, d)
	if err != nil {
		return err
	}
	serial := ml.Train(m, st, epochs, 0.2, nil)
	t.Rows = append(t.Rows, []string{
		"spill", "serial", "1",
		fmt.Sprintf("%.0f", serialEncode.Seconds()*1e3),
		fmt.Sprintf("%.0f", serial.Total.Seconds()*1e3),
		"1.00",
		fmt.Sprintf("%.6f", serial.EpochLoss[epochs-1]),
	})
	for _, w := range counts {
		eng := engine.New(engine.Config{Workers: w, GroupSize: 8, Seed: cfg.Seed})
		est, err := storage.NewStore(cfg.Dir, "TOC", 1, spillOpts...)
		if err != nil {
			return err
		}
		est.SetReadBandwidth(scalingSpillBandwidth)
		encStart := time.Now()
		if err := eng.FillStore(est, d, batchSize); err != nil {
			est.Close()
			return err
		}
		encodeTime := time.Since(encStart)
		pf := storage.NewPrefetcher(est, 12, w)
		m, err := scalingModel(cfg, d)
		if err != nil {
			pf.Close()
			est.Close()
			return err
		}
		res := eng.Train(m, pf, epochs, 0.2, nil)
		pf.Close()
		est.Close()
		t.Rows = append(t.Rows, []string{
			"spill", "engine", fmt.Sprint(w),
			fmt.Sprintf("%.0f", encodeTime.Seconds()*1e3),
			fmt.Sprintf("%.0f", res.Total.Seconds()*1e3),
			fmt.Sprintf("%.2f", serial.Total.Seconds()/res.Total.Seconds()),
			fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
		})
	}
	return nil
}
