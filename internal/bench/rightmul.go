package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// The rightmul regime of the scaling bench family isolates the forward
// kernels — the right multiplications A·v (linear-model scoring) and A·M
// (NN input layer) that every model's forward pass runs. Each measured
// "step" mimics what a gradient step does on one compressed batch: build
// one KernelPlan (a single decode-tree build) and push both forward
// kernels through it at the configured worker count. The serial baseline
// is the historical path: sequential kernels, one tree rebuild per op.
//
// Because the sharded kernels and the plan are bitwise identical to the
// sequential per-op path, every row reports the same checksum — worker
// count and plan reuse buy wall-clock, never different numbers.

func init() {
	register("rightmul", "right-multiplication (forward) kernel scaling with per-step plan reuse", runRightMul)
}

func runRightMul(cfg Config) (*Table, error) {
	const batchSize, p = 1000, 32
	t := &Table{
		ID:    "rightmul",
		Title: "right-mul kernel scaling (A·v + A·M per step, TOC batches)",
		Columns: []string{"config", "workers", "steps", "kernel_ms", "per_step_us",
			"speedup", "checksum"},
		Notes: []string{
			"each step = one batch's forward pair A·v + A·M; plan rows build C' once",
			"  per step (KernelPlan), serial row rebuilds it per op",
			fmt.Sprintf("  (GOMAXPROCS=%d; identical checksum across rows = bitwise-identical results)",
				runtime.GOMAXPROCS(0)),
		},
	}
	d, err := getDataset("imagenet", cfg.rows(4000), cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := d.NumBatches(batchSize)
	enc := formats.MustGet("TOC")
	batches := make([]formats.ParallelOps, n)
	for i := 0; i < n; i++ {
		x, _ := d.Batch(i, batchSize)
		po, ok := enc(x).(formats.ParallelOps)
		if !ok {
			return nil, fmt.Errorf("rightmul: TOC does not implement ParallelOps")
		}
		batches[i] = po
	}
	cols := d.X.Cols()
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	v := make([]float64, cols)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	m := matrix.NewDense(cols, p)
	for i := 0; i < cols; i++ {
		for j := 0; j < p; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	steps := int(10 * cfg.Scale)
	if steps < 2 {
		steps = 2
	}

	// checksum folds every result element in a fixed order, so it is
	// bit-for-bit identical across configs exactly when the kernels are.
	measure := func(workers int, plan bool) (time.Duration, float64) {
		var sum float64
		start := time.Now()
		for s := 0; s < steps; s++ {
			for _, b := range batches {
				var r1 []float64
				var r2 *matrix.Dense
				if plan {
					kp := b.NewKernelPlan()
					r1 = kp.MulVec(v, workers)
					r2 = kp.MulMat(m, workers)
				} else {
					r1 = b.MulVec(v)
					r2 = b.MulMat(m)
				}
				for _, x := range r1 {
					sum += x
				}
				for _, x := range r2.Data() {
					sum += x
				}
			}
		}
		return time.Since(start), sum
	}

	serialDur, serialSum := measure(1, false)
	row := func(config string, workers int, dur time.Duration, sum float64) {
		totalSteps := steps * len(batches)
		t.Rows = append(t.Rows, []string{
			config, fmt.Sprint(workers), fmt.Sprint(totalSteps),
			fmt.Sprintf("%.0f", dur.Seconds()*1e3),
			fmt.Sprintf("%.0f", dur.Seconds()*1e6/float64(totalSteps)),
			fmt.Sprintf("%.2f", serialDur.Seconds()/dur.Seconds()),
			fmt.Sprintf("%016x", math.Float64bits(sum)),
		})
	}
	row("serial", 1, serialDur, serialSum)
	for _, w := range addCount([]int{1, 2, 4, 8}, cfg.Workers) {
		dur, sum := measure(w, true)
		row("plan", w, dur, sum)
	}
	return t, nil
}
