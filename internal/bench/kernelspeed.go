package bench

import (
	"fmt"
	"math"
	"time"

	"toc/internal/core"
	"toc/internal/matrix"
)

// The kernelspeed regime measures raw single-core kernel speed: ns per
// unit of useful work (nonzero element processed, times the p result
// columns for the matrix kernels) for each of the four compressed
// multiplications, next to a dense-float64 roofline — the same
// multiplication run by the DEN kernels over the decompressed matrix.
//
// The roofline-relative column (vs_roofline = compressed ns/work ÷ dense
// ns/element) is what CI gates: it is a ratio of two loops measured
// back-to-back on the same machine and the same data, so it transfers
// across runner generations the way raw nanoseconds never do. The
// speedup-ratio baselines of the other regimes deliberately cannot see a
// single-core regression — if every worker count slows down by the same
// factor, every speedup ratio is unchanged — which is exactly the gap
// this regime closes (ROADMAP item 4).
//
// All rows run at workers=1 through a KernelPlan, so the numbers isolate
// the inner decode loops: no goroutine fan-out, no per-op tree rebuild.
// The checksum column folds every result element in a fixed order; it is
// the in-run evidence that a loop rewrite changed wall-clock only.

func init() {
	register("kernelspeed", "single-core kernel ns/nonzero vs dense roofline", runKernelSpeed)
}

// ksReps returns the measurement repetition count for the configured
// scale, never below 3 so the min-of-reps has something to minimize over.
func ksReps(scale float64) int {
	reps := int(6 * scale)
	if reps < 3 {
		reps = 3
	}
	return reps
}

// minDuration runs fn reps times and returns the fastest run — the
// standard noise filter for microbenchmarks on shared runners, where the
// minimum approximates the uninterrupted execution.
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func runKernelSpeed(cfg Config) (*Table, error) {
	const batchSize, p = 1000, 32
	t := &Table{
		ID:    "kernelspeed",
		Title: "single-core kernel ns/nonzero vs dense roofline (workers=1, plan reuse)",
		Columns: []string{"kernel", "variant", "rows", "nnz", "ns_per_nnz",
			"roofline_ns_per_elem", "vs_roofline", "checksum"},
		Notes: []string{
			"ns_per_nnz: kernel time / nonzeros processed (x p result columns for A*M, M*A)",
			"  roofline: the same multiplication by the dense DEN kernel over the decompressed",
			"  matrix, per dense element; vs_roofline = ns_per_nnz / roofline (lower is better,",
			"  and portable across runners — both loops run on the same machine and data)",
		},
	}
	d, err := getDataset("imagenet", cfg.rows(4000), cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Only full-size batches: every row then shares the operand shapes,
	// and a partial tail batch cannot skew the per-work normalization.
	var dense []*matrix.Dense
	nnz := 0
	for i := 0; i < d.NumBatches(batchSize) && len(dense) < 4; i++ {
		x, _ := d.Batch(i, batchSize)
		if x.Rows() != batchSize {
			continue
		}
		dense = append(dense, x)
		nnz += x.NNZ()
	}
	if len(dense) == 0 {
		return nil, fmt.Errorf("kernelspeed: dataset smaller than one %d-row batch", batchSize)
	}
	n := len(dense)
	cols := d.X.Cols()
	rows := n * batchSize
	elems := rows * cols

	// Deterministic operand vectors/matrices (no global rand).
	vr := make([]float64, cols)
	for i := range vr {
		vr[i] = float64(i%7) - 3.2
	}
	vl := make([]float64, batchSize)
	for i := range vl {
		vl[i] = float64(i%5) - 1.7
	}
	mr := matrix.NewDense(cols, p)
	for i := 0; i < cols; i++ {
		for j := 0; j < p; j++ {
			mr.Set(i, j, float64((i+3*j)%11)-4.8)
		}
	}
	ml := matrix.NewDense(p, batchSize)
	for i := 0; i < p; i++ {
		for j := 0; j < batchSize; j++ {
			ml.Set(i, j, float64((2*i+j)%9)-3.9)
		}
	}
	reps := ksReps(cfg.Scale)

	sumVec := func(r []float64) float64 {
		var s float64
		for _, x := range r {
			s += x
		}
		return s
	}

	type kernelCase struct {
		name string
		// work is the denominator of ns_per_nnz for this kernel.
		work int
		// run executes the compressed kernel over every batch's plan,
		// folding results into a checksum.
		run func(plans []*core.KernelPlan) float64
		// roofline executes the dense counterpart over every batch.
		roofline func() float64
		// roofElems is the dense work denominator.
		roofElems int
	}
	cases := []kernelCase{
		{
			name: "MulVec", work: nnz, roofElems: elems,
			run: func(plans []*core.KernelPlan) float64 {
				var s float64
				for _, kp := range plans {
					s += sumVec(kp.MulVec(vr, 1))
				}
				return s
			},
			roofline: func() float64 {
				var s float64
				for _, x := range dense {
					s += sumVec(x.MulVec(vr))
				}
				return s
			},
		},
		{
			name: "VecMul", work: nnz, roofElems: elems,
			run: func(plans []*core.KernelPlan) float64 {
				var s float64
				for _, kp := range plans {
					s += sumVec(kp.VecMul(vl, 1))
				}
				return s
			},
			roofline: func() float64 {
				var s float64
				for _, x := range dense {
					s += sumVec(x.VecMul(vl))
				}
				return s
			},
		},
		{
			name: "MulMat", work: nnz * p, roofElems: elems * p,
			run: func(plans []*core.KernelPlan) float64 {
				var s float64
				for _, kp := range plans {
					s += sumVec(kp.MulMat(mr, 1).Data())
				}
				return s
			},
			roofline: func() float64 {
				var s float64
				for _, x := range dense {
					s += sumVec(x.MulMat(mr).Data())
				}
				return s
			},
		},
		{
			name: "MatMul", work: nnz * p, roofElems: elems * p,
			run: func(plans []*core.KernelPlan) float64 {
				var s float64
				for _, kp := range plans {
					s += sumVec(kp.MatMul(ml, 1).Data())
				}
				return s
			},
			roofline: func() float64 {
				var s float64
				for _, x := range dense {
					s += sumVec(ml.MulMat(x).Data())
				}
				return s
			},
		},
	}

	for _, variant := range []core.Variant{core.Full, core.SparseOnly} {
		plans := make([]*core.KernelPlan, n)
		for i, x := range dense {
			plans[i] = core.CompressVariant(x, variant).NewKernelPlan()
		}
		vname := "full"
		if variant == core.SparseOnly {
			vname = "sparse"
		}
		for _, kc := range cases {
			var sum float64
			kdur := minDuration(reps, func() { sum = kc.run(plans) })
			var roofSum float64
			rdur := minDuration(reps, func() { roofSum = kc.roofline() })
			// The dense kernel computes the same multiplication with a
			// different float association, so the checksums agree only to
			// rounding; the bitwise contract is vs the sequential TOC
			// kernels (pinned by the core equivalence tests), while this
			// guards against a rewrite computing the wrong thing outright.
			if diff := math.Abs(sum - roofSum); diff > 1e-6*(1+math.Abs(roofSum)) {
				return nil, fmt.Errorf("kernelspeed: %s/%s checksum %g vs dense %g",
					kc.name, vname, sum, roofSum)
			}
			nsPerNnz := float64(kdur.Nanoseconds()) / float64(kc.work)
			roofNs := float64(rdur.Nanoseconds()) / float64(kc.roofElems)
			t.Rows = append(t.Rows, []string{
				kc.name, vname, fmt.Sprint(rows), fmt.Sprint(nnz),
				fmt.Sprintf("%.3f", nsPerNnz),
				fmt.Sprintf("%.3f", roofNs),
				fmt.Sprintf("%.2f", nsPerNnz/roofNs),
				fmt.Sprintf("%016x", math.Float64bits(sum)),
			})
		}
	}
	return t, nil
}
