package bench

import "time"

// System overhead model for the paper's Bismarck / ScikitLearn /
// TensorFlow rows (Tables 6-7, Figure 11). The systems rows of the paper
// differ from the C++ rows by per-batch dispatch overheads and encoding
// choice, not by algorithm; this model applies multipliers — calibrated to
// the paper's reported same-regime gaps — to our measured native runtimes.
// DESIGN.md §4 documents the substitution; the modeled rows are marked in
// every table that uses them.

// systemMultiplier returns the runtime multiplier of a system
// configuration relative to the native run of its underlying encoding.
func systemMultiplier(system, model string) float64 {
	switch system {
	case "BismarckTOC":
		// "typically less than 10 percent overhead compared with running
		// TOC in our c++ program" (§5.3) — storage fudge factor.
		return 1.08
	case "BismarckDEN", "BismarckCSR":
		return 1.10
	case "ScikitLearnDEN":
		return 1.6
	case "ScikitLearnCSR":
		if model == "nn" {
			return 2.8 // paper: ScikitLearn NN on CSR is ~3x TensorFlow
		}
		return 1.25
	case "TensorFlowDEN":
		if model == "nn" {
			return 0.92 // paper: TF's parallel NN beats the C++ loop
		}
		return 1.35
	case "TensorFlowCSR":
		if model == "nn" {
			return 1.35
		}
		return 1.5
	default:
		return 1.0
	}
}

// systemBase maps a system configuration to the native encoding whose
// measured runtime it scales.
func systemBase(system string) string {
	switch system {
	case "BismarckTOC":
		return "TOC"
	case "BismarckDEN", "ScikitLearnDEN", "TensorFlowDEN":
		return "DEN"
	case "BismarckCSR", "ScikitLearnCSR", "TensorFlowCSR":
		return "CSR"
	default:
		return system
	}
}

// systemSupports reports whether the paper ran this combination (Bismarck
// has no NN implementation — its Table 6 NN cells are N/A).
func systemSupports(system, model string) bool {
	if model == "nn" && (system == "BismarckDEN" || system == "BismarckCSR") {
		return false
	}
	return true
}

func modelSystemTime(system, model string, native time.Duration) time.Duration {
	return time.Duration(float64(native) * systemMultiplier(system, model))
}
