// Package bench is the experiment harness: one runner per table and
// figure of the paper's §5 evaluation, each regenerating the same rows or
// series the paper reports. cmd/tocbench runs them by id and prints
// paper-style tables; bench_test.go wraps the same runners as testing.B
// benchmarks.
//
// Absolute numbers differ from the paper (Go on a laptop vs C++ on a 2019
// cloud VM, synthetic stand-in datasets, scaled-down sizes); what each
// experiment reproduces is the paper's *shape*: which method wins, by
// roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured for every experiment.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"toc/internal/data"
	"toc/internal/storage"
)

// Config controls experiment sizing.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the default laptop scale.
	Scale float64
	// Seed makes every experiment deterministic.
	Seed int64
	// Dir is where spill files are created ("" = OS temp).
	Dir string
	// Workers adds an extra worker count to the scaling experiments'
	// sweeps (0 keeps each experiment's default sweep).
	Workers int
	// SpillShards adds an extra shard count to the spillscale sweep
	// (0 keeps the default 1/2/4 sweep).
	SpillShards int
	// SpillDirs, when non-empty, places spill shards across these
	// directories (modeling distinct devices) in the spill experiments.
	SpillDirs []string
	// DiskModel overrides the bandwidth model of the spill experiments
	// ("per-request" or "shared-bucket"; "" keeps each experiment's
	// default).
	DiskModel string
	// Evict overrides the spill experiments' residency policy
	// ("first-fit", "largest-first", "access-order"; "" = first-fit).
	Evict string
	// Staleness adds an extra staleness bound to the asyncscale sweep
	// (0 keeps the default sweep; negative adds the unbounded regime).
	Staleness int
}

// spillOptions translates the Config's spill knobs into store options for
// the experiments that exercise the out-of-core path. shards <= 0 defers
// to the Config's SpillShards (so -spill-shards reaches every spill
// experiment), then to the store's own default layout; defaultModel
// applies when the Config does not override it.
func (c Config) spillOptions(shards int, defaultModel storage.BandwidthModel) ([]storage.Option, error) {
	model := defaultModel
	if c.DiskModel != "" {
		m, err := storage.ParseBandwidthModel(c.DiskModel)
		if err != nil {
			return nil, err
		}
		model = m
	}
	policy, err := storage.NewEvictionPolicy(c.Evict)
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = c.SpillShards
	}
	opts := []storage.Option{
		storage.WithBandwidthModel(model),
		storage.WithEviction(policy),
		storage.WithShards(shards),
	}
	if len(c.SpillDirs) > 0 {
		opts = append(opts, storage.WithShardDirs(c.SpillDirs...))
	}
	return opts, nil
}

// DefaultConfig returns the sizing used by cmd/tocbench and bench_test.go.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

func (c Config) rows(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV appends the table to w as CSV: a header row of "experiment"
// plus the column names, then one record per row prefixed with the
// experiment id. Concatenating several tables into one file keeps each
// self-describing, which is what the CI artifact comparison wants.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Columns...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Table, error)

// Experiment is a registered paper artifact reproduction.
type Experiment struct {
	ID    string // paper artifact id: fig5, table6, ...
	Title string
	Run   Runner
}

var (
	mu          sync.Mutex
	experiments = map[string]Experiment{}
)

func register(id, title string, run Runner) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := experiments[id]; dup {
		panic(fmt.Sprintf("bench: duplicate experiment %q", id))
	}
	experiments[id] = Experiment{ID: id, Title: title, Run: run}
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := experiments[id]
	return e, ok
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dataset cache so repeated experiments don't regenerate.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*data.Dataset{}
)

func getDataset(name string, rows int, seed int64) (*data.Dataset, error) {
	key := fmt.Sprintf("%s/%d/%d", name, rows, seed)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d, err := data.Generate(name, rows, seed)
	if err != nil {
		return nil, err
	}
	d.ShuffleOnce(seed + 1)
	dsCache[key] = d
	return d, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
