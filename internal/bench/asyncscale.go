package bench

import (
	"fmt"
	"time"

	"toc/internal/engine"
	"toc/internal/formats"
	"toc/internal/ml"
)

// Async bounded-staleness scaling — the scheduling counterpart of the
// spillscale and rightmul regimes. Batch costs are deterministically
// skewed (every slowEvery-th batch costs slowFactor× the unit), the
// regime where a synchronous merge barrier caps speedup: each group step
// waits for its slowest member, so the whole pool idles behind one cold
// batch. The sweep crosses the async engine's staleness bound with the
// worker count against the synchronous group-step engine at the same
// worker count. Staleness 0 is the serial chain (one gradient in flight —
// the floor), the barrier rows show what synchrony costs, and a staleness
// window ≥ the skew period lets workers flow around stragglers, so async
// beats the barrier as workers grow. stale_max never exceeds the bound:
// the updater's admission check is part of what this regime measures.

func init() {
	register("asyncscale", "async bounded-staleness vs the synchronous barrier under skewed batch costs", runAsyncScale)
}

const (
	// asyncScaleUnit is the simulated cost of a fast batch.
	asyncScaleUnit = 1500 * time.Microsecond
	// asyncScaleSlowEvery marks every k-th batch as a straggler.
	asyncScaleSlowEvery = 8
	// asyncScaleSlowFactor is the straggler's cost multiple.
	asyncScaleSlowFactor = 8
)

// skewedSource adds the deterministic per-batch delay to a BatchSource on
// the consumer's goroutine, so a slow batch occupies whichever worker
// drew it — exactly how a spill miss or a cold decode behaves.
type skewedSource struct {
	ml.BatchSource
}

func (s *skewedSource) Batch(i int) (formats.CompressedMatrix, []float64) {
	x, y := s.BatchSource.Batch(i)
	delay := asyncScaleUnit
	if i%asyncScaleSlowEvery == 0 {
		delay *= asyncScaleSlowFactor
	}
	time.Sleep(delay)
	return x, y
}

func runAsyncScale(cfg Config) (*Table, error) {
	const batchSize, epochs, group = 100, 2, 8
	t := &Table{
		ID:    "asyncscale",
		Title: "async bounded-staleness vs sync group steps (skewed batch costs)",
		Columns: []string{"config", "staleness", "workers", "epoch_ms", "speedup_vs_sync",
			"updates", "rejected", "stale_max", "stale_mean", "final_loss"},
		Notes: []string{
			fmt.Sprintf("every %dth batch costs %dx the %v unit; the sync engine merges group=%d",
				asyncScaleSlowEvery, asyncScaleSlowFactor, asyncScaleUnit, group),
			"  gradients per update so each step waits for its slowest batch, while the",
			"  async engine applies per-batch updates whose snapshots may trail by at most",
			"  'staleness' updates (-1 = unbounded). speedup_vs_sync compares equal worker",
			"  counts. sync and async walk different update schedules, so final_loss",
			"  differs between configs (staleness 0 = the serial per-batch trajectory).",
		},
	}
	d, err := getDataset("census", cfg.rows(4000), cfg.Seed)
	if err != nil {
		return nil, err
	}
	src := &skewedSource{BatchSource: ml.NewMemorySource(d, batchSize, formats.MustGet("TOC"))}
	n := src.NumBatches()
	stalenessSweep := addCount([]int{0, group, 4 * group}, cfg.Staleness)
	if cfg.Staleness < 0 {
		stalenessSweep = append(stalenessSweep, engine.StalenessUnbounded)
	}
	for _, w := range addCount([]int{1, 4, 8}, cfg.Workers) {
		m, err := scalingModel(cfg, d)
		if err != nil {
			return nil, err
		}
		sync := engine.New(engine.Config{Workers: w, GroupSize: group, Seed: cfg.Seed})
		res := sync.Train(m, src, epochs, 0.2, nil)
		syncEpoch := res.Total.Seconds() / epochs
		t.Rows = append(t.Rows, []string{
			"sync", "-", fmt.Sprint(w),
			fmt.Sprintf("%.0f", syncEpoch*1e3), "1.00",
			fmt.Sprint(epochs * ((n + group - 1) / group)), "-", "-", "-",
			fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
		})
		for _, s := range stalenessSweep {
			m, err := scalingModel(cfg, d)
			if err != nil {
				return nil, err
			}
			sm, ok := m.(ml.SnapshotModel)
			if !ok {
				return nil, fmt.Errorf("asyncscale: model %T does not implement SnapshotModel", m)
			}
			a := engine.NewAsync(engine.AsyncConfig{Workers: w, Staleness: s, Seed: cfg.Seed})
			res, err := a.Train(sm, src, epochs, 0.2, nil)
			if err != nil {
				return nil, err
			}
			st := a.Stats()
			asyncEpoch := res.Total.Seconds() / epochs
			label := fmt.Sprint(s)
			if s < 0 {
				label = "inf"
			}
			t.Rows = append(t.Rows, []string{
				"async", label, fmt.Sprint(w),
				fmt.Sprintf("%.0f", asyncEpoch*1e3),
				fmt.Sprintf("%.2f", syncEpoch/asyncEpoch),
				fmt.Sprint(st.Updates), fmt.Sprint(st.Rejected),
				fmt.Sprint(st.MaxStaleness), fmt.Sprintf("%.2f", st.MeanStaleness()),
				fmt.Sprintf("%.6f", res.EpochLoss[epochs-1]),
			})
		}
	}
	return t, nil
}
