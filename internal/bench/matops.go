package bench

import (
	"fmt"
	"math/rand"
	"time"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// Figure 8: average runtimes of matrix operations on compressed
// mini-batches (250 rows, M with 20 columns/rows, per the paper's §5.2).

func init() {
	register("fig8", "matrix operation runtimes on compressed mini-batches", runFig8)
	register("fig12", "compression and decompression runtimes (Snappy/Gzip/TOC)", runFig12)
}

var fig8Methods = []string{"CLA", "DEN", "CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC"}

// timeOp reports the average duration of f over reps runs after one warm-up.
func timeOp(f func(), reps int) time.Duration {
	f() // warm up (and populate lazy caches)
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

func runFig8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "avg runtimes (µs) of matrix ops on compressed 250-row mini-batches",
		Columns: append([]string{"dataset", "op"}, fig8Methods...),
		Notes: []string{
			"paper shape: Gzip/Snappy are orders of magnitude slower (decompression per op);",
			"  A*c is near-free for CVI/DVI/TOC (dictionary-only);",
			"  TOC fastest on A*M and M*A for the moderate-sparsity datasets",
		},
	}
	reps := 5
	rows := 250
	p := 20 // columns of M in A·M, rows of M in M·A (paper: 20)
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	for _, ds := range datasetList() {
		d, err := getDataset(ds, rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		batch := d.X.SliceRows(0, rows)
		cols := batch.Cols()
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		u := make([]float64, rows)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		mRight := matrix.NewDense(cols, p)
		for i := 0; i < cols; i++ {
			for j := 0; j < p; j++ {
				mRight.Set(i, j, rng.NormFloat64())
			}
		}
		mLeft := matrix.NewDense(p, rows)
		for i := 0; i < p; i++ {
			for j := 0; j < rows; j++ {
				mLeft.Set(i, j, rng.NormFloat64())
			}
		}
		encoded := map[string]formats.CompressedMatrix{}
		for _, m := range fig8Methods {
			encoded[m] = formats.MustGet(m)(batch)
		}
		ops := []struct {
			name string
			run  func(c formats.CompressedMatrix)
		}{
			{"A*c", func(c formats.CompressedMatrix) { c.Scale(1.5) }},
			{"A*v", func(c formats.CompressedMatrix) { c.MulVec(v) }},
			{"A*M", func(c formats.CompressedMatrix) { c.MulMat(mRight) }},
			{"v*A", func(c formats.CompressedMatrix) { c.VecMul(u) }},
			{"M*A", func(c formats.CompressedMatrix) { c.MatMul(mLeft) }},
		}
		for _, op := range ops {
			row := []string{ds, op.name}
			for _, m := range fig8Methods {
				c := encoded[m]
				dur := timeOp(func() { op.run(c) }, reps)
				row = append(row, fmt.Sprintf("%.1f", float64(dur.Nanoseconds())/1e3))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure 12: compression and decompression time of Snappy, Gzip and TOC on
// 250-row mini-batches. "Decompression" for TOC means full decoding to a
// dense matrix (the operation TOC's kernels exist to avoid).
func runFig12(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "compression/decompression time (ms) on 250-row mini-batches",
		Columns: []string{"dataset", "comp Snappy", "comp Gzip", "comp TOC", "decomp Snappy", "decomp Gzip", "decomp TOC"},
		Notes: []string{
			"paper shape: compression Snappy < TOC < Gzip; decompression TOC < Snappy < Gzip",
		},
	}
	reps := 5
	for _, ds := range datasetList() {
		d, err := getDataset(ds, 250, cfg.Seed)
		if err != nil {
			return nil, err
		}
		batch := d.X.SliceRows(0, 250)
		row := []string{ds}
		for _, m := range []string{"Snappy", "Gzip", "TOC"} {
			enc := formats.MustGet(m)
			dur := timeOp(func() { enc(batch) }, reps)
			row = append(row, fmt.Sprintf("%.3f", dur.Seconds()*1e3))
		}
		for _, m := range []string{"Snappy", "Gzip", "TOC"} {
			c := formats.MustGet(m)(batch)
			dur := timeOp(func() { c.Decode() }, reps)
			row = append(row, fmt.Sprintf("%.3f", dur.Seconds()*1e3))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
