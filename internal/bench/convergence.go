package bench

import (
	"fmt"
	"time"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/ml"
)

// Figure 2: optimization efficiencies of BGD, SGD and MGD for a neural
// network with one hidden layer on the mnist-like dataset. Figure 11: test
// error rate as a function of training time under memory pressure.

func init() {
	register("fig2", "optimization efficiency of BGD/SGD/MGD (accuracy per epoch)", runFig2)
	register("fig11", "test error rate vs training time under memory budgets", runFig11)
}

func runFig2(cfg Config) (*Table, error) {
	rows := cfg.rows(1000)
	d, err := getDataset("mnist", rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	type variant struct {
		name  string
		batch int
	}
	variants := []variant{
		{"BGD", rows},
		{"SGD", 1},
		{"MGD(250)", 250},
		{"MGD-20%", rows / 5},
		{"MGD-50%", rows / 2},
		{"MGD-80%", rows * 4 / 5},
	}
	epochs := 60
	logEvery := 6
	t := &Table{
		ID:      "fig2",
		Title:   "training accuracy per epoch: NN (one hidden layer) on mnist-like",
		Columns: []string{"epoch"},
		Notes: []string{
			"paper shape: MGD(250) converges fastest and stably; BGD needs many",
			"  more epochs; SGD is noisy; huge mini-batches approach BGD",
		},
	}
	curves := make([][]float64, len(variants))
	for vi, v := range variants {
		t.Columns = append(t.Columns, v.name)
		// One hidden layer, as in the paper's Figure 2 caption.
		m := ml.NewNN(d.X.Cols(), []int{24}, d.Classes, cfg.Seed+3)
		src := ml.NewMemorySource(d, v.batch, formats.MustGet("DEN"))
		for e := 0; e < epochs; e++ {
			ml.Train(m, src, 1, 0.5, nil)
			curves[vi] = append(curves[vi], 1-ml.EvaluateError(m, src))
		}
	}
	for e := logEvery - 1; e < epochs; e += logEvery {
		row := []string{fmt.Sprint(e + 1)}
		for vi := range variants {
			row = append(row, f2(curves[vi][e]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig11 trains NN and LR on mnist-like data under a small memory budget
// (the 15 GB RAM analog: only TOC stays resident) and reports test error
// against cumulative training time per epoch for the system
// configurations of the paper's Figure 11.
func runFig11(cfg Config) (*Table, error) {
	rows := cfg.rows(2000)
	d, err := getDataset("mnist", rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	train, test := splitDataset(d, rows*4/5)
	t := &Table{
		ID:      "fig11",
		Title:   "test error (%) vs cumulative training time under a small RAM budget",
		Columns: []string{"model", "system", "epoch", "time_ms", "err_pct"},
		Notes: []string{
			"budget fits only TOC resident (the paper's 15GB-RAM Mnist25m regime)",
			"paper shape: all systems converge to the same error; BismarckTOC",
			"  gets there first because its data alone stays in memory",
			"system rows are modeled from native runs; see EXPERIMENTS.md",
		},
	}
	// Budget: 1.3x the TOC footprint, so TOC is resident, others spill.
	budget := int64(float64(totalCompressed(train, 250, "TOC")) * 1.3)
	systems := []struct {
		system string
		method string
	}{
		{"BismarckTOC", "TOC"},
		{"TensorFlowDEN", "DEN"},
		{"ScikitLearnCSR", "CSR"},
	}
	epochs := 8
	for _, modelName := range []string{"nn", "lr"} {
		for _, sys := range systems {
			src, err := newStoreSource(cfg, train, 250, sys.method, budget)
			if err != nil {
				return nil, err
			}
			m, err := ml.NewModel(modelName, train.X.Cols(), train.Classes, 0.15, cfg.Seed+9)
			if err != nil {
				return nil, err
			}
			testSrc := ml.NewMemorySource(test, 250, formats.MustGet("DEN"))
			var elapsed time.Duration
			for e := 0; e < epochs; e++ {
				res := ml.Train(m, src, 1, 1.0, nil)
				elapsed += res.Total
				modeled := modelSystemTime(sys.system, modelName, elapsed)
				errPct := ml.EvaluateError(m, testSrc) * 100
				t.Rows = append(t.Rows, []string{
					modelName, sys.system, fmt.Sprint(e + 1),
					fmt.Sprintf("%.0f", modeled.Seconds()*1e3), f1(errPct),
				})
			}
			src.close()
		}
	}
	return t, nil
}

// splitDataset cuts a dataset into train/test at row k.
func splitDataset(d *data.Dataset, k int) (train, test *data.Dataset) {
	train = &data.Dataset{Name: d.Name, X: d.X.SliceRows(0, k), Y: d.Y[:k], Classes: d.Classes}
	test = &data.Dataset{Name: d.Name, X: d.X.SliceRows(k, d.X.Rows()), Y: d.Y[k:], Classes: d.Classes}
	return train, test
}

// totalCompressed sums a dataset's compressed size under a method.
func totalCompressed(d *data.Dataset, batchSize int, method string) int64 {
	enc := formats.MustGet(method)
	var total int64
	for i := 0; i < d.NumBatches(batchSize); i++ {
		x, _ := d.Batch(i, batchSize)
		total += int64(enc(x).CompressedSize())
	}
	return total
}
