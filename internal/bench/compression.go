package bench

import (
	"fmt"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// Compression-ratio experiments: Figure 5 (mini-batches of 50..250 rows),
// Figure 6 (TOC ablation) and Figure 7 (large mini-batches). Ratio is
// uncompressed DEN size over compressed size, the paper's §5.1 definition.

func init() {
	register("fig5", "compression ratios on mini-batches (50-250 rows)", runFig5)
	register("fig6", "TOC ablation: sparse / +logical / full encoding ratios", runFig6)
	register("fig7", "compression ratios on large mini-batches", runFig7)
}

func ratioFor(method string, batch *matrix.Dense) float64 {
	c := formats.MustGet(method)(batch)
	den := batch.SerializedSize()
	return float64(den) / float64(c.CompressedSize())
}

var fig5Methods = []string{"CSR", "CVI", "DVI", "Snappy", "Gzip", "TOC", "CLA"}

func runFig5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "compression ratios of different methods on mini-batches with varying sizes",
		Columns: append([]string{"dataset", "rows"}, fig5Methods...),
		Notes: []string{
			"ratio = DEN bytes / compressed bytes (higher is better)",
			"paper shape: TOC best on census/imagenet/kdd99; Gzip edges TOC on mnist;",
			"  TOC~CSR on rcv1 (extreme sparsity); everyone ~1x on deep1b (dense unique)",
		},
	}
	sizes := []int{50, 100, 150, 200, 250}
	for _, ds := range datasetList() {
		d, err := getDataset(ds, cfg.rows(250), cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			if n > d.X.Rows() {
				n = d.X.Rows()
			}
			batch := d.X.SliceRows(0, n)
			row := []string{ds, fmt.Sprint(n)}
			for _, m := range fig5Methods {
				row = append(row, f2(ratioFor(m, batch)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func datasetList() []string {
	return []string{"census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b"}
}

func runFig6(cfg Config) (*Table, error) {
	variants := []string{"TOC_SPARSE", "TOC_SPARSE_AND_LOGICAL", "TOC_FULL"}
	t := &Table{
		ID:      "fig6",
		Title:   "compression ratios of TOC variants (encoding-layer ablation)",
		Columns: append([]string{"dataset", "rows"}, variants...),
		Notes: []string{
			"paper shape: each added layer improves the ratio on every dataset",
		},
	}
	sizes := []int{50, 150, 250}
	for _, ds := range datasetList() {
		d, err := getDataset(ds, cfg.rows(250), cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, n := range sizes {
			if n > d.X.Rows() {
				n = d.X.Rows()
			}
			batch := d.X.SliceRows(0, n)
			row := []string{ds, fmt.Sprint(n)}
			for _, v := range variants {
				row = append(row, f2(ratioFor(v, batch)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func runFig7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "compression ratios on large mini-batches (fraction of the dataset)",
		Columns: append([]string{"dataset", "pct"}, fig5Methods...),
		Notes: []string{
			"paper shape: TOC becomes more competitive as the batch grows;",
			"  at 100% (BGD) TOC has the best ratio on the moderate-sparsity sets",
		},
	}
	percents := []int{10, 25, 50, 100}
	for _, ds := range []string{"census", "imagenet", "mnist", "kdd99"} {
		d, err := getDataset(ds, cfg.rows(2000), cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, p := range percents {
			n := d.X.Rows() * p / 100
			if n < 1 {
				n = 1
			}
			batch := d.X.SliceRows(0, n)
			row := []string{ds, fmt.Sprint(p)}
			for _, m := range fig5Methods {
				row = append(row, f2(ratioFor(m, batch)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
