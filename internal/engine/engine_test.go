package engine

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
	"toc/internal/storage"
	"toc/internal/testutil"
)

func testSource(t testing.TB, name string, rows int) (*data.Dataset, *ml.MemorySource) {
	t.Helper()
	d, err := data.Generate(name, rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(2)
	return d, ml.NewMemorySource(d, 50, formats.MustGet("TOC"))
}

func newModel(t testing.TB, name string, d *data.Dataset, seed int64) ml.GradModel {
	t.Helper()
	m, err := ml.NewModel(name, d.X.Cols(), d.Classes, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	gm, ok := m.(ml.GradModel)
	if !ok {
		t.Fatalf("model %q (%T) does not implement GradModel", name, m)
	}
	return gm
}

// flatParams snapshots a model's parameters by unpacking each concrete
// model type's weight fields.
func flatParams(t testing.TB, m ml.Model) []float64 {
	t.Helper()
	switch v := m.(type) {
	case *ml.LinReg:
		return append(append([]float64(nil), v.W...), v.B)
	case *ml.LogReg:
		return append(append([]float64(nil), v.W...), v.B)
	case *ml.SVM:
		return append(append([]float64(nil), v.W...), v.B)
	case *ml.OneVsRest:
		var out []float64
		for _, sub := range v.Models {
			out = append(out, flatParams(t, sub)...)
		}
		return out
	case *ml.NN:
		var out []float64
		for l := range v.W {
			out = append(out, v.W[l].Data()...)
			out = append(out, v.B[l]...)
		}
		return out
	default:
		t.Fatalf("flatParams: unsupported model %T", m)
		return nil
	}
}

func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// GroupSize 1 makes the engine a serial MGD driver; its trajectory must
// match ml.Train exactly for every model family.
func TestEngineGroupOneMatchesSerialTrain(t *testing.T) {
	for _, name := range []string{"linreg", "lr", "svm", "nn"} {
		d, src := testSource(t, "census", 400)
		serial := newModel(t, name, d, 7)
		resS := ml.Train(serial, src, 3, 0.2, nil)

		eng := New(Config{Workers: 4, GroupSize: 1})
		parallel := newModel(t, name, d, 7)
		resP := eng.Train(parallel, src, 3, 0.2, nil)

		if diff := maxAbsDiff(flatParams(t, serial), flatParams(t, parallel)); diff > 1e-12 {
			t.Errorf("%s: weights diverge from serial ml.Train by %g", name, diff)
		}
		for e := range resS.EpochLoss {
			if math.Abs(resS.EpochLoss[e]-resP.EpochLoss[e]) > 1e-12 {
				t.Errorf("%s: epoch %d loss %g != serial %g", name, e, resP.EpochLoss[e], resS.EpochLoss[e])
			}
		}
	}
}

// The acceptance determinism property: for a fixed seed and group size,
// workers=1 and workers=8 converge to the same weights.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, name := range []string{"lr", "nn"} {
		d, src := testSource(t, "mnist", 600)

		m1 := newModel(t, name, d, 11)
		res1 := New(Config{Workers: 1, GroupSize: 8, Seed: 5, Shuffle: true}).Train(m1, src, 3, 0.2, nil)

		m8 := newModel(t, name, d, 11)
		res8 := New(Config{Workers: 8, GroupSize: 8, Seed: 5, Shuffle: true}).Train(m8, src, 3, 0.2, nil)

		if diff := maxAbsDiff(flatParams(t, m1), flatParams(t, m8)); diff > 1e-12 {
			t.Errorf("%s: workers=1 vs workers=8 final weights differ by %g", name, diff)
		}
		for e := range res1.EpochLoss {
			if math.Abs(res1.EpochLoss[e]-res8.EpochLoss[e]) > 1e-12 {
				t.Errorf("%s: epoch %d loss curve differs: %g vs %g", name, e,
					res1.EpochLoss[e], res8.EpochLoss[e])
			}
		}
	}
}

// Exercised under -race in CI: eight workers training over a spilled store
// behind the async prefetcher.
func TestEngineConcurrentOverPrefetchedStore(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, err := data.Generate("census", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	st, err := storage.NewStore(t.TempDir(), "TOC", 1) // 1-byte budget: all spilled
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := New(Config{Workers: 8, GroupSize: 8, Seed: 9, Shuffle: true})
	if err := eng.FillStore(st, d, 50); err != nil {
		t.Fatal(err)
	}
	if !st.Spilled() {
		t.Fatal("expected every batch to spill")
	}
	pf := storage.NewPrefetcher(st, 6, 3)
	defer pf.Close()

	m := newModel(t, "lr", d, 13)
	res := eng.Train(m, pf, 3, 0.3, nil)
	if len(res.EpochLoss) != 3 {
		t.Fatalf("epochs = %d", len(res.EpochLoss))
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Errorf("loss did not decrease: %v", res.EpochLoss)
	}
	if ps := pf.Stats(); ps.Hits == 0 {
		t.Errorf("prefetcher never hit: %+v", ps)
	}
}

// The headline win: workers=8 plus the async prefetcher beats the serial
// training loop on an out-of-core store. The store's IO cost is
// deterministic bandwidth sleeps, so overlapping them with compute (and
// with each other, across readers) is a stable speedup even on one core.
func TestEngineBeatsSerialOnSpilledStore(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	const batchSize, epochs, bandwidth = 100, 2, 2 << 20
	d, err := data.Generate("mnist", 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)

	serialStore, err := storage.NewStore(t.TempDir(), "TOC", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer serialStore.Close()
	serialStore.SetReadBandwidth(bandwidth)
	for i := 0; i < d.NumBatches(batchSize); i++ {
		x, y := d.Batch(i, batchSize)
		if err := serialStore.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	serialRes := ml.Train(newModel(t, "lr", d, 17), serialStore, epochs, 0.2, nil)

	engineStore, err := storage.NewStore(t.TempDir(), "TOC", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer engineStore.Close()
	engineStore.SetReadBandwidth(bandwidth)
	eng := New(Config{Workers: 8, GroupSize: 8})
	if err := eng.FillStore(engineStore, d, batchSize); err != nil {
		t.Fatal(err)
	}
	pf := storage.NewPrefetcher(engineStore, 12, 8)
	defer pf.Close()
	engineRes := eng.Train(newModel(t, "lr", d, 17), pf, epochs, 0.2, nil)

	if engineRes.Total >= serialRes.Total*9/10 {
		t.Errorf("engine (workers=8, prefetch) took %v, serial %v — expected a clear win",
			engineRes.Total, serialRes.Total)
	}
}

// GroupSize 1 with a large pool routes all workers into the kernels
// inside each gradient (the parallel left/right multiplications). Those
// kernels are bitwise identical to the sequential ones, so the engine
// must still walk exactly the serial ml.Train trajectory.
func TestEngineKernelParallelMatchesSerialTrain(t *testing.T) {
	for _, name := range []string{"lr", "svm", "nn"} {
		d, src := testSource(t, "imagenet", 400)
		serial := newModel(t, name, d, 21)
		ml.Train(serial, src, 2, 0.2, nil)

		eng := New(Config{Workers: 16, GroupSize: 1})
		parallel := newModel(t, name, d, 21)
		eng.Train(parallel, src, 2, 0.2, nil)

		if diff := maxAbsDiff(flatParams(t, serial), flatParams(t, parallel)); diff != 0 {
			t.Errorf("%s: kernel-parallel weights diverge from serial by %g (want bitwise identity)", name, diff)
		}
	}
}

// With Shuffle on, Train announces the next epoch's permutation so the
// prefetch window crosses epoch boundaries into the right batches
// (the window mechanics are pinned down by the white-box
// TestPrefetcherWindowCrossesBoundaryIntoNextOrder); end to end, shuffled
// training over a throttled spilled store must stay essentially all-hits.
func TestEngineShuffleBoundaryPrefetch(t *testing.T) {
	// Many more batches than the window depth, so a window wrapped into
	// the *wrong* permutation head almost never covers the right one by
	// accident.
	const epochs, depth = 4, 8
	d, err := data.Generate("census", 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(6)
	st, err := storage.NewStore(t.TempDir(), "TOC", 1) // all spilled
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := New(Config{Workers: 2, GroupSize: 2, Seed: 17, Shuffle: true})
	if err := eng.FillStore(st, d, 10); err != nil { // 60 batches
		t.Fatal(err)
	}
	// Slow the simulated disk so wrongly-aimed boundary prefetches stay in
	// flight across the epoch switch instead of draining unnoticed.
	st.SetReadBandwidth(100 << 10)
	pf := storage.NewPrefetcher(st, depth, 2)
	defer pf.Close()
	eng.Train(newModel(t, "lr", d, 23), pf, epochs, 0.2, nil)
	// Allow a little startup scramble (the window is primed sequentially
	// before the first SetOrder); the un-announced boundaries would cost
	// roughly depth misses per epoch on top of that.
	if ps := pf.Stats(); ps.Misses > 6 {
		t.Errorf("shuffled training missed %d times (boundary prefetch broken): %+v", ps.Misses, ps)
	}
}

// FillStore announces the first epoch's visit order to the store before
// ingest, so an access-order (Belady-style) eviction policy keeps exactly
// the head of the epoch-0 permutation resident — the batches the
// prefetcher has no lead time to fetch.
func TestFillStoreAnnouncesShuffleOrderToEviction(t *testing.T) {
	const seed, batchSize, keep = 41, 25, 3
	d, err := data.Generate("census", 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumBatches(batchSize)
	// DEN batches of equal shape have equal compressed size, so the
	// budget holds exactly `keep` batches and evictions are exact swaps.
	x, _ := d.Batch(0, batchSize)
	size := int64(formats.MustGet("DEN")(x).CompressedSize())
	st, err := storage.NewStore(t.TempDir(), "DEN", keep*size,
		storage.WithEviction(storage.AccessOrder()))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := New(Config{Workers: 4, Seed: seed, Shuffle: true})
	if err := eng.FillStore(st, d, batchSize); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	want := map[int]bool{}
	for _, i := range perm[:keep] {
		want[i] = true
	}
	for i := 0; i < n; i++ {
		if st.Resident(i) != want[i] {
			t.Errorf("batch %d resident=%v, want %v (epoch-0 head %v)",
				i, st.Resident(i), want[i], perm[:keep])
		}
	}
}

// Engine-built prefetchers cover every spill shard and honor the byte
// budget; training through one over a 4-shard store must walk the same
// trajectory as the single-file layout.
func TestEngineNewPrefetcherOverShardedStore(t *testing.T) {
	d, err := data.Generate("census", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(8)
	eng := New(Config{Workers: 4, GroupSize: 4, Seed: 3})

	train := func(st *storage.Store) []float64 {
		t.Helper()
		if err := eng.FillStore(st, d, 25); err != nil {
			t.Fatal(err)
		}
		avgSpan := st.Stats().SpilledBytes / int64(st.NumBatches())
		pf := eng.NewPrefetcher(st, 0, 4*avgSpan) // ~4 average batches in flight
		defer pf.Close()
		m := newModel(t, "lr", d, 29)
		res := eng.Train(m, pf, 3, 0.2, nil)
		if ps := pf.Stats(); ps.Hits == 0 {
			t.Errorf("engine prefetcher never hit: %+v", ps)
		}
		return res.EpochLoss
	}

	one, err := storage.NewStore(t.TempDir(), "TOC", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	four, err := storage.NewStore(t.TempDir(), "TOC", 1, storage.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()
	lossOne, lossFour := train(one), train(four)
	for e := range lossOne {
		if lossOne[e] != lossFour[e] {
			t.Errorf("epoch %d: 4-shard loss %g != 1-shard %g", e, lossFour[e], lossOne[e])
		}
	}
}

// EncodeAll must equal batch-at-a-time encoding, byte for byte.
func TestEncodeAllMatchesSerial(t *testing.T) {
	d, err := data.Generate("kdd99", 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dense []*matrix.Dense
	for i := 0; i < d.NumBatches(25); i++ {
		x, _ := d.Batch(i, 25)
		dense = append(dense, x)
	}
	enc := formats.MustGet("TOC")
	got := New(Config{Workers: 8}).EncodeAll(enc, dense)
	for i, x := range dense {
		want := enc(x).Serialize()
		if !bytes.Equal(got[i].Serialize(), want) {
			t.Fatalf("batch %d: parallel encoding differs from serial", i)
		}
	}
}

// FillStore must produce the same layout and contents as serial Add.
func TestFillStoreMatchesSerialAdd(t *testing.T) {
	d, err := data.Generate("census", 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := storage.NewStore(t.TempDir(), "TOC", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for i := 0; i < d.NumBatches(50); i++ {
		x, y := d.Batch(i, 50)
		if err := serial.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	parallel, err := storage.NewStore(t.TempDir(), "TOC", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.Close()
	if err := New(Config{Workers: 8}).FillStore(parallel, d, 50); err != nil {
		t.Fatal(err)
	}
	ss, ps := serial.Stats(), parallel.Stats()
	if ss.ResidentBatches != ps.ResidentBatches || ss.SpilledBatches != ps.SpilledBatches ||
		ss.ResidentBytes != ps.ResidentBytes || ss.SpilledBytes != ps.SpilledBytes {
		t.Fatalf("layout differs: serial %+v parallel %+v", ss, ps)
	}
	for i := 0; i < serial.NumBatches(); i++ {
		a, ya := serial.Batch(i)
		b, yb := parallel.Batch(i)
		if !a.Decode().Equal(b.Decode()) {
			t.Fatalf("batch %d contents differ", i)
		}
		for k := range ya {
			if ya[k] != yb[k] {
				t.Fatalf("batch %d labels differ", i)
			}
		}
	}
}

// Parallel right-mul kernels + per-Grad plan reuse must leave the
// trajectory untouched: Workers=8/GroupSize=1 routes all eight goroutines
// into each gradient's kernels (the A·v/A·M forward now sharded, the
// decode tree built once per Grad through the shared plan), and the loss
// sequence must still equal serial ml.Train bit for bit.
func TestEngineRightMulPlanTrajectoryIdentity(t *testing.T) {
	for _, name := range []string{"lr", "nn"} {
		d, src := testSource(t, "mnist", 500)
		serial := newModel(t, name, d, 13)
		resS := ml.Train(serial, src, 3, 0.2, nil)

		eng := New(Config{Workers: 8, GroupSize: 1})
		parallel := newModel(t, name, d, 13)
		resP := eng.Train(parallel, src, 3, 0.2, nil)

		for e := range resS.EpochLoss {
			if math.Float64bits(resS.EpochLoss[e]) != math.Float64bits(resP.EpochLoss[e]) {
				t.Errorf("%s: epoch %d loss %v != serial %v (want bitwise identity)",
					name, e, resP.EpochLoss[e], resS.EpochLoss[e])
			}
		}
		if diff := maxAbsDiff(flatParams(t, serial), flatParams(t, parallel)); diff != 0 {
			t.Errorf("%s: weights diverge from serial by %g (want bitwise identity)", name, diff)
		}
	}
}
