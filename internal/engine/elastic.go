package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ElasticEvent is one membership change in an elastic schedule: once
// Step updates have been applied, add (Delta > 0) or remove (Delta < 0)
// that many workers.
type ElasticEvent struct {
	Step  int64
	Delta int
}

// ParseElasticSchedule parses the toctrain -elastic grammar: a
// comma-separated list of step:delta entries, where delta is a signed
// worker count —
//
//	200:+4,500:-2
//
// adds four workers after 200 applied updates and removes two after
// 500. The sign may be omitted for joins. Entries are returned sorted
// by step (input order breaks ties); a zero delta, a negative step, or
// a malformed token is an error naming the offending token. An empty
// spec is an empty schedule, not an error.
func ParseElasticSchedule(spec string) ([]ElasticEvent, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var events []ElasticEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stepTok, deltaTok, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("engine: bad elastic entry %q (want step:±delta)", part)
		}
		step, err := strconv.ParseInt(stepTok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("engine: bad elastic step %q in %q: %v", stepTok, part, err)
		}
		if step < 0 {
			return nil, fmt.Errorf("engine: negative elastic step %q in %q", stepTok, part)
		}
		delta, err := strconv.Atoi(deltaTok)
		if err != nil {
			return nil, fmt.Errorf("engine: bad elastic delta %q in %q: %v", deltaTok, part, err)
		}
		if delta == 0 {
			return nil, fmt.Errorf("engine: zero elastic delta %q in %q", deltaTok, part)
		}
		events = append(events, ElasticEvent{Step: step, Delta: delta})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	return events, nil
}

// SetOnStep installs (or replaces) the per-update observer configured
// by AsyncConfig.OnStep. It must be called between runs — the callback
// executes on the updater goroutine, and swapping it mid-run would
// race. Its main use is wiring an ElasticHook, which needs the engine
// to exist first.
func (a *Async) SetOnStep(fn func(step int64, loss float64)) { a.onStep = fn }

// ElasticHook turns a schedule into an OnStep callback that applies
// each event as training passes its step, chaining to next (which may
// be nil) afterwards. An event at step S fires once S updates have been
// applied — immediately after the update at position S−1 lands, before
// the next one does — so two runs with the same schedule fire at
// identical points in the trajectory. The callback runs on the updater
// goroutine; AddWorkers/RemoveWorkers relay to the supervisor, so the
// updater never blocks on pool surgery.
//
// The returned counts are accumulated into the run's AsyncStats by the
// engine (Joined/Departed), so the hook itself keeps no observable
// state.
func (a *Async) ElasticHook(events []ElasticEvent, next func(step int64, loss float64)) func(step int64, loss float64) {
	idx := 0
	return func(step int64, loss float64) {
		// step is the just-applied position (0-based): step+1 updates
		// have now landed.
		for idx < len(events) && events[idx].Step <= step+1 {
			if d := events[idx].Delta; d > 0 {
				a.AddWorkers(d)
			} else {
				a.RemoveWorkers(-d)
			}
			idx++
		}
		if next != nil {
			next(step, loss)
		}
	}
}
