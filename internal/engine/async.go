package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"toc/internal/checkpoint"
	"toc/internal/data"
	"toc/internal/faultpoint"
	"toc/internal/ml"
	"toc/internal/storage"
)

// Asynchronous bounded-staleness training — the alternative to Train's
// synchronous group steps. The synchronous engine merges gradients at a
// barrier every step, so one slow batch (a spill miss, a skewed shard, a
// cold decode) stalls the whole pool. Here workers pull batch positions
// from a shared queue, compute each gradient on a private model clone
// refreshed from a versioned parameter snapshot, and hand the result to a
// single updater goroutine that applies updates in position order. The
// parameter clock counts applied updates; a gradient computed against
// snapshot version v and applied as update p has staleness p−v — the
// number of updates it failed to see.
//
// The staleness bound is enforced twice. The queue releases position p
// only once the clock has reached p−staleness, so at most staleness+1
// positions are ever in flight and no worker computes against parameters
// older than the bound allows; and the updater independently re-checks
// every gradient at apply time, rejecting and recomputing any whose
// snapshot has fallen more than staleness updates behind (the defensive
// half: with the gate intact it never fires, but it makes the bound a
// property of the updater, not of scheduler timing).
//
// Staleness 0 forces a fully serial chain — each gradient is computed at
// exactly the version it is applied to — so the trajectory is bitwise
// identical to the synchronous engine at GroupSize 1 (and to serial
// ml.Train), for any worker count: the repo's identity-test discipline.
// StalenessUnbounded is Hogwild-style free-running: every position is
// released immediately (throttled only by the pipeline's resource cap)
// and workers never wait on the clock, so a straggler delays only its own
// position's update, never another worker's compute.
type Async struct {
	workers   int
	staleness int
	seed      int64
	shuffle   bool
	det       bool
	ck        *checkpoint.Writer
	ckEvery   int
	onStep    func(step int64, loss float64)
	halted    atomic.Bool

	// restartBudget and restartWindow bound crash recovery: a worker
	// panic is recovered and the worker replaced as long as fewer than
	// restartBudget replacements happened within the trailing
	// restartWindow; past the budget the pool degrades instead (the
	// crashed worker is not replaced) until no workers remain, at which
	// point the run fails with the accumulated panic chain. A budget of
	// 0 disables replacement entirely: every panic degrades.
	restartBudget int
	restartWindow time.Duration

	// releaseSlack widens the release gate past the staleness bound
	// without loosening the updater's admission check, forcing the
	// reject-and-recompute path to fire. Tests only: production runs keep
	// it 0, where the gate makes rejection impossible.
	releaseSlack int

	// runMu guards cur, the active TrainFrom's shared run state;
	// AddWorkers and RemoveWorkers reach a running pool through it.
	runMu sync.Mutex
	//toc:guardedby runMu
	cur *asyncRun

	statsMu sync.Mutex
	//toc:guardedby statsMu
	stats AsyncStats
}

// StalenessUnbounded disables the staleness bound: workers free-run
// against whatever snapshot is current when they start (Hogwild-style).
// Updates are still applied in position order by the single updater, so
// the run remains race-free; only the gradient *values* depend on timing.
const StalenessUnbounded = -1

// DefaultRestartBudget and DefaultRestartWindow are the crash-recovery
// bounds a run gets when AsyncConfig leaves them zero: up to 8 worker
// replacements per trailing minute before the pool starts degrading.
const (
	DefaultRestartBudget = 8
	DefaultRestartWindow = time.Minute
)

// maxLiveWorkers caps the pool size AddWorkers can grow to; a join past
// it is clamped, not an error. It exists so a buggy elastic schedule
// cannot fork an unbounded goroutine herd.
const maxLiveWorkers = 1024

// AsyncConfig sizes the asynchronous engine.
type AsyncConfig struct {
	// Workers is the goroutine pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Staleness bounds how many parameter updates a gradient's snapshot
	// may miss and still be applied. 0 reproduces the synchronous
	// GroupSize-1 trajectory bitwise; StalenessUnbounded (-1, or any
	// negative value) free-runs.
	Staleness int
	// Seed drives the per-epoch visit permutation when Shuffle is set.
	Seed int64
	// Shuffle revisits batches in a fresh seeded permutation every epoch,
	// using the same permutations as the synchronous engine.
	Shuffle bool

	// Deterministic switches a bounded Staleness > 0 run to delayed-
	// gradient SGD: the gradient for position p is always computed
	// against the archived parameters of version max(0, p−Staleness) —
	// the oldest version the staleness bound admits — instead of
	// whatever snapshot is current when a worker picks p up. Every
	// gradient still respects the bound, but the trajectory becomes a
	// pure function of (Seed, Staleness), bitwise reproducible for any
	// worker count and across crash/resume. The updater keeps a ring of
	// Staleness+1 archived parameter vectors to serve those reads.
	// Ignored when Staleness <= 0 (0 is already deterministic, unbounded
	// has no defined delay).
	Deterministic bool

	// RestartBudget bounds crash recovery: a worker panic is recovered
	// and the worker replaced as long as fewer than RestartBudget
	// replacements happened within the trailing RestartWindow. Past the
	// budget the pool degrades — the crashed worker is not replaced —
	// until no workers remain, at which point the run fails with every
	// recovered panic preserved in the returned error chain. 0 uses
	// DefaultRestartBudget; a negative value disables replacement (every
	// panic degrades the pool).
	RestartBudget int
	// RestartWindow is the sliding window RestartBudget counts
	// replacements in; <= 0 uses DefaultRestartWindow.
	RestartWindow time.Duration

	// Checkpoint, CheckpointEvery and OnStep mirror Config: snapshots
	// are captured on the updater goroutine between applied updates and
	// written off the hot path. Only Deterministic (or Staleness 0) runs
	// resume bitwise identically; a free-running resume is merely valid.
	Checkpoint *checkpoint.Writer
	// CheckpointEvery is the update-count cadence; <= 0 snapshots once
	// per epoch.
	CheckpointEvery int
	// OnStep observes every applied update with its global position
	// (stable across crash/resume) and admitted mini-batch loss.
	OnStep func(step int64, loss float64)
}

// AsyncStats describes one asynchronous training run.
type AsyncStats struct {
	// Updates counts applied gradients (epochs × batches on a clean run).
	Updates int64
	// Rejected counts gradients the updater refused because their
	// snapshot exceeded the staleness bound; each rejection requeues the
	// batch for recompute against fresher parameters.
	Rejected int64
	// MaxStaleness is the largest clock−version gap among applied
	// gradients; it never exceeds the configured bound.
	MaxStaleness int64
	// StaleSum accumulates the staleness of every applied gradient;
	// StaleSum/Updates is the mean.
	StaleSum int64
	// WorkerPanics counts worker panics the supervisor recovered; each
	// one's position was requeued and recomputed.
	WorkerPanics int64
	// Restarts counts crashed workers the supervisor replaced within the
	// restart budget.
	Restarts int64
	// Degraded counts crashed workers the supervisor did not replace
	// because the budget was exhausted — permanent pool shrinkage.
	Degraded int64
	// Joined and Departed count mid-run membership changes: workers
	// added by AddWorkers (plus any floor-restoring respawn) and workers
	// that left cleanly via RemoveWorkers.
	Joined, Departed int64
}

// MeanStaleness is the average number of updates an applied gradient's
// snapshot missed.
func (s AsyncStats) MeanStaleness() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.StaleSum) / float64(s.Updates)
}

// NewAsync builds an asynchronous bounded-staleness engine from cfg.
func NewAsync(cfg AsyncConfig) *Async {
	w := cfg.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	s := cfg.Staleness
	if s < 0 {
		s = StalenessUnbounded
	}
	rb := cfg.RestartBudget
	if rb == 0 {
		rb = DefaultRestartBudget
	} else if rb < 0 {
		rb = 0
	}
	rw := cfg.RestartWindow
	if rw <= 0 {
		rw = DefaultRestartWindow
	}
	return &Async{
		workers: w, staleness: s, seed: cfg.Seed, shuffle: cfg.Shuffle,
		det:           cfg.Deterministic && s > 0,
		restartBudget: rb, restartWindow: rw,
		ck: cfg.Checkpoint, ckEvery: cfg.CheckpointEvery, onStep: cfg.OnStep,
	}
}

// Deterministic reports whether the engine runs in delayed-gradient
// mode (see AsyncConfig.Deterministic; always false at staleness <= 0).
func (a *Async) Deterministic() bool { return a.det }

// Halt asks a running Train/TrainFrom to stop after the update the
// updater is currently applying: a final checkpoint is written
// synchronously (when a Writer is configured) and the run returns
// ErrHalted. Safe to call from any goroutine.
func (a *Async) Halt() { a.halted.Store(true) }

// Workers returns the configured (initial) pool size.
func (a *Async) Workers() int { return a.workers }

// LiveWorkers returns the active run's current pool size — initial
// workers, plus joins, minus clean departures and unreplaced crashes.
// Between runs it reports the configured size.
func (a *Async) LiveWorkers() int {
	a.runMu.Lock()
	run := a.cur
	a.runMu.Unlock()
	if run == nil {
		return a.workers
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	return run.live
}

// AddWorkers grows a running Train's pool by n mid-run: new workers are
// cloned from the live model and start pulling queued positions
// immediately. It returns how many workers were actually added — 0 when
// no run is active, n <= 0, or the pool is at its size cap. Safe to
// call from any goroutine, including an OnStep callback. Deterministic
// runs produce bitwise-identical trajectories regardless of when (or
// whether) workers join.
func (a *Async) AddWorkers(n int) int { return a.resize(n) }

// RemoveWorkers shrinks a running Train's pool by up to n mid-run:
// departing workers finish their in-flight position (or leave straight
// from the idle queue) and exit cleanly, so nothing is lost or
// recomputed. The pool never shrinks below one worker; the return value
// is how many departures were actually granted — 0 when no run is
// active or n <= 0.
func (a *Async) RemoveWorkers(n int) int { return a.resize(-n) }

// resize relays a membership request to the active run's supervisor and
// waits for its verdict.
func (a *Async) resize(delta int) int {
	if delta == 0 {
		return 0
	}
	a.runMu.Lock()
	run := a.cur
	a.runMu.Unlock()
	if run == nil {
		return 0
	}
	reply := make(chan int, 1)
	select {
	case run.ctl <- asyncCtl{delta: delta, reply: reply}:
		// ctl is unbuffered: the supervisor has the request and always
		// replies without blocking on anything but run.mu.
		return <-reply
	case <-run.done:
		return 0
	}
}

// Staleness returns the configured bound (StalenessUnbounded = none).
func (a *Async) Staleness() int { return a.staleness }

// Stats returns the counters of the most recent Train run.
func (a *Async) Stats() AsyncStats {
	a.statsMu.Lock()
	defer a.statsMu.Unlock()
	return a.stats
}

// inflightCap bounds how many positions may be released but not yet
// applied: the staleness window when one is configured, and a resource
// ceiling (gradient buffers, queued tasks) either way.
func (a *Async) inflightCap() int {
	limit := 4*a.workers + 4
	if a.staleness >= 0 && a.staleness+1+a.releaseSlack < limit {
		limit = a.staleness + 1 + a.releaseSlack
	}
	return limit
}

// KernelWorkers returns the goroutine count each in-flight gradient's
// kernels get: with a tight staleness window fewer gradients are in
// flight than the pool holds, so the spare workers shard the kernels
// inside each gradient (staleness 0 puts the whole pool into the one
// running gradient, mirroring the synchronous GroupSize-1 split).
func (a *Async) KernelWorkers() int {
	concurrent := a.inflightCap()
	if concurrent > a.workers {
		concurrent = a.workers
	}
	per := a.workers / concurrent
	if per < 1 {
		per = 1
	}
	return per
}

// RequestSource is a BatchSource that accepts explicit single-batch
// prefetch requests; storage.Prefetcher implements it. The async engine
// uses it whenever its dispatch queue deviates from the announced epoch
// permutation — a rejected gradient's batch is re-read for the recompute
// — so the prefetch stream follows the queue, not a fixed permutation.
type RequestSource interface {
	Request(idx int)
}

// NewPrefetcher sizes a spill prefetcher for asynchronous training the
// way Engine.NewPrefetcher does for group steps: readers cover every
// spill shard and the whole worker pool, and depth <= 0 defaults to two
// pipeline windows' worth of batches. maxBytes > 0 bounds the window by
// compressed bytes.
func (a *Async) NewPrefetcher(st *storage.Store, depth int, maxBytes int64) *storage.Prefetcher {
	if depth <= 0 {
		depth = 2 * a.inflightCap()
		if depth < 8 {
			depth = 8
		}
	}
	readers := a.workers
	if sh := st.Shards(); readers < sh {
		readers = sh
	}
	var opts []storage.PrefetchOption
	if maxBytes > 0 {
		opts = append(opts, storage.WithPrefetchBytes(maxBytes))
	}
	return storage.NewPrefetcher(st, depth, readers, opts...)
}

// FillStore ingests a dataset exactly like Engine.FillStore (sharded
// compression across the pool, in-order admission, epoch-0 order
// announced to the eviction policy), using this engine's pool and seed.
func (a *Async) FillStore(st *storage.Store, d *data.Dataset, batchSize int) error {
	return New(Config{Workers: a.workers, Seed: a.seed, Shuffle: a.shuffle}).FillStore(st, d, batchSize)
}

// asyncTask is one queued unit of work: global position p (epoch-major)
// and the batch index that position visits.
type asyncTask struct {
	pos   int64
	batch int
}

// asyncResult is a computed gradient waiting for the updater.
type asyncResult struct {
	pos     int64
	batch   int
	version int64 // parameter clock at snapshot time
	loss    float64
	grad    []float64
}

// asyncRun is the shared state of one Train call, kept off the Async
// struct so Train stays reentrant.
type asyncRun struct {
	mu   sync.Mutex
	cond *sync.Cond
	//toc:guardedby mu
	clock int64 // applied updates = next position to apply
	//toc:guardedby mu
	stopped bool

	// det mode: ring of bound+1 archived parameter vectors; slot
	// v mod (bound+1) holds version v. Written only by the updater (at
	// clock publish, under mu); read by workers under mu. The slot of
	// version v is not overwritten until update v+bound lands, which
	// cannot happen before every position reading v has submitted its
	// gradient, so a gated read is always of an intact vector.
	//toc:guardedby mu
	arch [][]float64

	// ctl carries AddWorkers/RemoveWorkers requests to the supervisor;
	// unbuffered, so an accepted send guarantees a reply.
	ctl chan asyncCtl
	//toc:guardedby mu
	live int // workers currently in the pool (supervisor-maintained)
	//toc:guardedby mu
	chain []error // recovered worker panics, oldest first
	//toc:guardedby mu
	elastic elasticCounters

	done chan struct{}
	once sync.Once

	errMu sync.Mutex
	//toc:guardedby errMu
	err error
}

// elasticCounters is the supervisor's share of AsyncStats, folded into
// the run's stats after the pool joins.
type elasticCounters struct {
	panics, restarts, degraded, joined, departed int64
}

// asyncCtl is one membership request relayed to a run's supervisor.
type asyncCtl struct {
	delta int      // workers to add (> 0) or remove (< 0)
	reply chan int // how many were actually granted
}

// workerEvent is a worker's report to the supervisor: a clean departure
// (left), or a crash carrying the in-flight task, the gradient buffer
// held at panic time (nil when none was held) and the recovered panic
// value.
type workerEvent struct {
	left bool
	task asyncTask
	buf  []float64
	val  any
}

// asyncShared bundles the channels and dimensions one TrainFrom call's
// goroutines share, so the worker and supervisor logic live in methods
// instead of giant closures.
type asyncShared struct {
	run     *asyncRun
	m       ml.SnapshotModel
	src     ml.BatchSource
	tasks   chan asyncTask
	requeue chan asyncTask
	results chan asyncResult
	bufs    chan []float64
	events  chan workerEvent // worker -> supervisor crash/leave reports
	leave   chan struct{}    // departure tokens granted by RemoveWorkers
	np      int
	kw      int
	bound   int
	wg      *sync.WaitGroup
}

// stop wakes every goroutine gated on the clock or the done channel;
// err != nil records the first failure.
func (r *asyncRun) stop(err error) {
	if err != nil {
		r.errMu.Lock()
		if r.err == nil {
			r.err = err
		}
		r.errMu.Unlock()
	}
	r.once.Do(func() { close(r.done) })
	r.mu.Lock()
	r.stopped = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *asyncRun) failure() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// recoverTo converts a panic escaping the updater, the releaser, the
// supervisor, or a worker's dispatch loop into a run error so Train can
// drain the pool and report instead of crashing the process mid-epoch.
// Worker *compute* panics never reach it: computeTask recovers those
// into crash reports the supervisor absorbs under the restart budget.
func (r *asyncRun) recoverTo(role string) {
	if p := recover(); p != nil {
		r.stop(fmt.Errorf("engine: async %s panicked: %v", role, p))
	}
}

// Train runs asynchronous bounded-staleness MGD for the given epochs:
// every epoch visits all batches (in the seeded permutation when Shuffle
// is set), each batch's gradient is one parameter update, and updates are
// applied in visit order with the staleness discipline of the package
// doc. The per-epoch losses sum each update's admitted mini-batch loss,
// exactly as the serial driver accounts them. cb may be nil; it runs on
// the updater goroutine as each epoch's last update lands.
//
// A panic in a worker (a poisoned batch, a failed storage read, a model
// bug) does not abort the run: the supervisor recovers it, requeues the
// lost position, and restarts the worker within the configured restart
// budget. Only when the budget is exhausted and the pool has degraded
// to nothing does the run fail, returning an error that chains every
// recovered panic (errors.Is/As reach the original values).
func (a *Async) Train(m ml.SnapshotModel, src ml.BatchSource, epochs int, lr float64, cb ml.EpochCallback) (*ml.TrainResult, error) {
	return a.TrainFrom(m, src, epochs, lr, cb, nil)
}

// TrainFrom is Train with crash/resume support: with a non-nil resume
// it validates configuration compatibility, restores the parameters,
// the update clock, the partial epoch loss and (in Deterministic mode)
// the archived version window, and continues the run. Deterministic and
// staleness-0 runs resume bitwise identically to an uninterrupted run;
// free-running resumes are valid but timing-dependent. AsyncStats
// counts only the updates applied by this call.
//
//toc:timing
func (a *Async) TrainFrom(m ml.SnapshotModel, src ml.BatchSource, epochs int, lr float64, cb ml.EpochCallback, resume *checkpoint.State) (*ml.TrainResult, error) {
	a.halted.Store(false)
	res := &ml.TrainResult{}
	start := time.Now()
	n := src.NumBatches()
	total := int64(epochs) * int64(n)
	a.statsMu.Lock()
	a.stats = AsyncStats{}
	a.statsMu.Unlock()
	if total == 0 {
		res.Total = time.Since(start)
		return res, nil
	}
	np := m.NumParams()
	bound := a.staleness // < 0 = unbounded
	inflight := a.inflightCap()

	startClock := int64(0)
	var partial float64
	if resume != nil {
		if err := a.validateAsyncResume(resume, n, np, lr); err != nil {
			return nil, err
		}
		m.SetParams(resume.Params)
		res.EpochLoss = append(res.EpochLoss, resume.EpochLoss...)
		// Wall-clock of pre-crash epochs is gone; zero placeholders keep
		// EpochTime's epoch indices aligned with EpochLoss.
		res.EpochTime = make([]time.Duration, len(resume.EpochLoss))
		startClock, partial = resume.Clock, resume.PartialLoss
		if startClock >= total {
			res.Total = time.Since(start)
			return res, nil
		}
	}

	run := &asyncRun{done: make(chan struct{}), clock: startClock}
	run.cond = sync.NewCond(&run.mu)
	if a.det {
		run.arch = make([][]float64, bound+1)
		for i := range run.arch {
			run.arch[i] = make([]float64, np)
		}
		// The current params are version startClock; a resume restores
		// the older versions still inside the staleness window.
		m.Params(run.arch[int(startClock%int64(bound+1))])
		if resume != nil {
			for i, vec := range resume.Archive {
				v := startClock - int64(len(resume.Archive)) + int64(i)
				copy(run.arch[int(v%int64(bound+1))], vec)
			}
		}
	}

	tasks := make(chan asyncTask, inflight)
	// Every requeued task is an in-flight position (released, not yet
	// applied), so sizing the requeue at the in-flight cap makes both
	// the updater's rejection sends and the supervisor's crash-recovery
	// sends non-blocking in aggregate.
	requeue := make(chan asyncTask, inflight)
	results := make(chan asyncResult, inflight+a.workers)
	bufs := make(chan []float64, inflight+a.workers)
	for i := 0; i < inflight+a.workers; i++ {
		bufs <- make([]float64, np)
	}

	var wg sync.WaitGroup
	run.ctl = make(chan asyncCtl)
	run.live = a.workers
	sh := &asyncShared{
		run: run, m: m, src: src,
		tasks: tasks, requeue: requeue, results: results, bufs: bufs,
		events: make(chan workerEvent, 64),
		leave:  make(chan struct{}, maxLiveWorkers),
		np:     np, kw: a.KernelWorkers(), bound: bound, wg: &wg,
	}
	// Publish the run so AddWorkers/RemoveWorkers can reach it; torn
	// down before Train returns so late calls see no run and no-op.
	a.runMu.Lock()
	a.cur = run
	a.runMu.Unlock()
	defer func() {
		a.runMu.Lock()
		a.cur = nil
		a.runMu.Unlock()
	}()

	// Releaser: feeds the queue in epoch-major position order, gated so
	// no position outruns the staleness window, announcing each epoch's
	// permutation to an order-aware source as the queue enters it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(tasks)
		order := identityOrder(n)
		first := true
		for p := startClock; p < total; p++ {
			epoch := int(p / int64(n))
			pos := int(p % int64(n))
			// first covers a mid-epoch resume: the source still needs
			// this epoch's permutation even though pos != 0.
			if pos == 0 || first {
				first = false
				if a.shuffle {
					order = epochPerm(a.seed, epoch, n)
				}
				if os, ok := src.(OrderedSource); ok {
					os.SetOrder(order)
					if ns, ok := src.(NextOrderedSource); ok && a.shuffle && epoch+1 < epochs {
						ns.SetNextOrder(epochPerm(a.seed, epoch+1, n))
					}
				}
			}
			if bound >= 0 {
				gate := p - int64(bound) - int64(a.releaseSlack)
				run.mu.Lock()
				for run.clock < gate && !run.stopped {
					run.cond.Wait()
				}
				stopped := run.stopped
				run.mu.Unlock()
				if stopped {
					return
				}
			}
			select {
			case tasks <- asyncTask{pos: p, batch: order[pos]}:
			case <-run.done:
				return
			}
		}
	}()

	// Workers: pull positions (requeues first — a rejected position
	// blocks the clock until recomputed), refresh a private clone from
	// the versioned snapshot, and compute the gradient on the clone so
	// reads never race the updater's writes. The supervisor owns the
	// pool: it replaces crashed workers within the restart budget and
	// applies mid-run membership changes.
	for w := 0; w < a.workers; w++ {
		a.spawnClone(sh)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer run.recoverTo("supervisor")
		a.supervise(sh)
	}()

	// Updater: the single writer. Applies gradients in position order,
	// admitting each only if its snapshot is within the staleness bound
	// of the clock, and rejecting the rest back to the queue.
	stats := a.runUpdater(run, m, src, res, start, n, total, int64(bound), startClock, partial, lr, cb, results, requeue, bufs)

	run.stop(nil) // normal completion, or echo of an abort
	wg.Wait()

	// Fold the supervisor's membership and crash accounting into the
	// run's stats now that every goroutine has joined.
	run.mu.Lock()
	stats.WorkerPanics = run.elastic.panics
	stats.Restarts = run.elastic.restarts
	stats.Degraded = run.elastic.degraded
	stats.Joined = run.elastic.joined
	stats.Departed = run.elastic.departed
	run.mu.Unlock()

	a.statsMu.Lock()
	a.stats = stats
	a.statsMu.Unlock()
	res.Total = time.Since(start)
	return res, run.failure()
}

// spawnClone adds one worker goroutine to a run's pool, cloning the
// model under the run lock so the clone's parameter read cannot race
// the updater's in-place apply.
func (a *Async) spawnClone(sh *asyncShared) {
	sh.run.mu.Lock()
	clone := sh.m.Clone()
	sh.run.mu.Unlock()
	if kp, ok := clone.(ml.KernelParallel); ok {
		kp.SetKernelWorkers(sh.kw)
	}
	sh.wg.Add(1)
	go func() {
		defer sh.wg.Done()
		defer sh.run.recoverTo("worker")
		a.workerLoop(sh, clone)
	}()
}

// workerLoop pulls queued positions until the run ends, the task queue
// drains, or the worker is asked to leave. Each task's compute is
// isolated by computeTask: a panic there becomes a crash report to the
// supervisor, not the end of the run.
func (a *Async) workerLoop(sh *asyncShared, clone ml.SnapshotModel) {
	run := sh.run
	snap := make([]float64, sh.np)
	in := sh.tasks
	for {
		// Honor a departure token between tasks: the worker leaves
		// cleanly and its would-be work stays in the queue for the rest
		// of the pool.
		select {
		case <-sh.leave:
			a.notify(sh, workerEvent{left: true})
			return
		default:
		}
		var tk asyncTask
		select {
		case tk = <-sh.requeue:
		default:
			select {
			case tk = <-sh.requeue:
			case t, ok := <-in:
				if !ok {
					in = nil // drained; keep serving requeues
					continue
				}
				tk = t
			case <-sh.leave:
				a.notify(sh, workerEvent{left: true})
				return
			case <-run.done:
				return
			}
		}
		crash, exit := a.computeTask(sh, clone, snap, tk)
		if exit {
			return
		}
		if crash != nil {
			// Report and retire: the supervisor decides whether a
			// replacement spawns, so a crashing worker never loops on a
			// poisoned state.
			a.notify(sh, *crash)
			return
		}
	}
}

// notify delivers a worker's event to the supervisor unless the run is
// already over.
func (a *Async) notify(sh *asyncShared, ev workerEvent) {
	select {
	case sh.events <- ev:
	case <-sh.run.done:
	}
}

// computeTask runs one queued position on the worker's private clone,
// converting any panic — a poisoned batch, a storage read that
// exhausted its retries, an injected engine.async.worker fault — into a
// crash report for the supervisor instead of killing the run. exit
// means the run stopped mid-task and the worker should simply return.
func (a *Async) computeTask(sh *asyncShared, clone ml.SnapshotModel, snap []float64, tk asyncTask) (crash *workerEvent, exit bool) {
	run := sh.run
	var g []float64
	defer func() {
		if p := recover(); p != nil {
			crash = &workerEvent{task: tk, buf: g, val: p}
			exit = false
		}
	}()
	// The canonical worker-kill injection point: chaos tests arm it to
	// fell a worker at an exact task count.
	if err := faultpoint.Err("engine.async.worker"); err != nil {
		panic(err)
	}
	x, y := sh.src.Batch(tk.batch)
	var version int64
	if a.det {
		// Delayed-gradient read: exactly version max(0, pos−bound) from
		// the archive ring, waiting out the (test-only) release slack if
		// the version has not been published yet.
		target := tk.pos - int64(sh.bound)
		if target < 0 {
			target = 0
		}
		run.mu.Lock()
		for run.clock < target && !run.stopped {
			run.cond.Wait()
		}
		if run.stopped {
			run.mu.Unlock()
			return nil, true
		}
		copy(snap, run.arch[int(target%int64(sh.bound+1))])
		run.mu.Unlock()
		version = target
	} else {
		run.mu.Lock()
		version = run.clock
		sh.m.Params(snap)
		run.mu.Unlock()
	}
	clone.SetParams(snap)
	select {
	case g = <-sh.bufs:
	case <-run.done:
		return nil, true
	}
	loss := clone.Grad(x, y, g)
	select {
	case sh.results <- asyncResult{pos: tk.pos, batch: tk.batch, version: version, loss: loss, grad: g}:
	case <-run.done:
		return nil, true
	}
	return nil, false
}

// supervise is a run's membership and crash authority: it grants
// AddWorkers/RemoveWorkers requests, replaces crashed workers within
// the sliding-window restart budget, degrades the pool past it, and
// fails the run — panic chain intact — when no workers remain. It runs
// until the run stops.
//
//toc:timing
func (a *Async) supervise(sh *asyncShared) {
	run := sh.run
	var restarts []time.Time // replacement times inside the sliding window
	leaving := 0             // departure tokens granted but not yet consumed
	for {
		select {
		case <-run.done:
			return
		case c := <-run.ctl:
			c.reply <- a.applyCtl(sh, c.delta, &leaving)
		case ev := <-sh.events:
			if ev.left {
				if leaving > 0 {
					leaving--
				}
				run.mu.Lock()
				run.live--
				run.elastic.departed++
				floor := run.live == 0
				run.mu.Unlock()
				if floor {
					// A crash degraded the pool while departure tokens
					// were already granted: restore the floor of one so
					// queued positions keep training.
					a.spawnClone(sh)
					run.mu.Lock()
					run.live++
					run.elastic.joined++
					run.mu.Unlock()
				}
				continue
			}
			if !a.handleCrash(sh, ev, &restarts) {
				return
			}
		}
	}
}

// applyCtl grants a membership request: joins spawn immediately (capped
// at maxLiveWorkers); departures hand out leave tokens, clamped so the
// pool keeps at least one worker even after every granted token is
// consumed.
func (a *Async) applyCtl(sh *asyncShared, delta int, leaving *int) int {
	run := sh.run
	if delta > 0 {
		run.mu.Lock()
		live := run.live
		run.mu.Unlock()
		if delta > maxLiveWorkers-live {
			delta = maxLiveWorkers - live
		}
		if delta <= 0 {
			return 0
		}
		for i := 0; i < delta; i++ {
			a.spawnClone(sh)
		}
		run.mu.Lock()
		run.live += delta
		run.elastic.joined += int64(delta)
		run.mu.Unlock()
		return delta
	}
	run.mu.Lock()
	most := run.live - 1 - *leaving
	run.mu.Unlock()
	n := -delta
	if n > most {
		n = most
	}
	granted := 0
	for granted < n {
		select {
		case sh.leave <- struct{}{}:
			granted++
		default:
			n = granted // token queue full: grant what fit
		}
	}
	*leaving += granted
	return granted
}

// handleCrash absorbs one worker panic: the held gradient buffer goes
// back to the pool, the worker is replaced if the sliding-window budget
// allows (degrading the pool otherwise), and the lost position re-enters
// the queue through the same path a staleness rejection uses. It
// returns false when the pool is exhausted and the run has been failed.
//
//toc:timing
func (a *Async) handleCrash(sh *asyncShared, ev workerEvent, restarts *[]time.Time) bool {
	run := sh.run
	if ev.buf != nil {
		sh.bufs <- ev.buf // the pool is sized to hold every buffer: never blocks
	}
	err := asyncPanicError(ev.val)
	now := time.Now()
	keep := (*restarts)[:0]
	for _, ts := range *restarts {
		if now.Sub(ts) < a.restartWindow {
			keep = append(keep, ts)
		}
	}
	*restarts = keep
	replace := len(keep) < a.restartBudget
	run.mu.Lock()
	run.elastic.panics++
	run.chain = append(run.chain, err)
	if replace {
		run.elastic.restarts++
	} else {
		run.live--
		run.elastic.degraded++
	}
	dead := run.live == 0
	chain := append([]error(nil), run.chain...)
	run.mu.Unlock()
	if replace {
		*restarts = append(*restarts, now)
		a.spawnClone(sh)
	} else if dead {
		run.stop(fmt.Errorf("engine: async worker pool exhausted after %d worker panics (restart budget %d per %v): %w",
			len(chain), a.restartBudget, a.restartWindow, errors.Join(chain...)))
		return false
	}
	// Requeue the crashed worker's position. Its batch may have been
	// consumed from the prefetch stream already, so ask for a re-read
	// exactly like the updater's rejection path does.
	if rs, ok := sh.src.(RequestSource); ok {
		rs.Request(ev.task.batch)
	}
	select {
	case sh.requeue <- ev.task:
	case <-run.done:
		return false
	}
	return true
}

// asyncPanicError converts a recovered worker panic value into an
// error, preserving error panics (an injected faultpoint.Error, a
// storage.ReadError) for errors.Is/As inspection of the final chain.
func asyncPanicError(v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("engine: async worker panicked: %w", err)
	}
	return fmt.Errorf("engine: async worker panicked: %v", v)
}

// runUpdater executes the updater loop on the caller's goroutine and
// returns the run's staleness accounting. It is the only goroutine that
// mutates the model.
//
//toc:timing
func (a *Async) runUpdater(run *asyncRun, m ml.SnapshotModel, src ml.BatchSource, res *ml.TrainResult,
	start time.Time, n int, total, bound, startClock int64, partial, lr float64, cb ml.EpochCallback,
	results chan asyncResult, requeue chan asyncTask, bufs chan []float64) AsyncStats {

	defer run.recoverTo("updater")
	var stats AsyncStats
	pendingByPos := make(map[int64]asyncResult, cap(results))
	epochStart := start
	epochLoss := partial
	sinceCkpt := 0
	// snapshot runs on this goroutine between updates: the updater is
	// the only writer of the model and the archive, so plain reads here
	// cannot race.
	snapshot := func(clock int64, partial float64) *checkpoint.State {
		params := make([]float64, m.NumParams())
		m.Params(params)
		st := &checkpoint.State{
			Kind: checkpoint.KindAsync, Seed: a.seed, LR: lr,
			Shuffle: a.shuffle, Deterministic: a.det,
			Staleness: a.staleness, NumBatches: n,
			Epoch: int(clock / int64(n)), Pos: int(clock % int64(n)),
			Clock: clock, PartialLoss: partial,
			EpochLoss: append([]float64(nil), res.EpochLoss...),
			Params:    params,
		}
		if a.det {
			// The versions still inside the staleness window,
			// oldest first: max(0, clock−bound) .. clock−1.
			cnt := bound
			if clock < cnt {
				cnt = clock
			}
			// The updater (the caller) is the only writer of arch, but
			// workers read it under run.mu concurrently; copying the
			// window under the lock keeps every arch access guarded.
			run.mu.Lock()
			for v := clock - cnt; v < clock; v++ {
				st.Archive = append(st.Archive,
					append([]float64(nil), run.arch[int(v%int64(bound+1))]...))
			}
			run.mu.Unlock()
		}
		return st
	}
	for next := startClock; next < total; {
		var r asyncResult
		if buffered, ok := pendingByPos[next]; ok {
			r = buffered
			delete(pendingByPos, next)
		} else {
			select {
			case r = <-results:
			case <-run.done: // aborted by a worker panic
				return stats
			}
			if r.pos != next {
				pendingByPos[r.pos] = r
				continue
			}
		}
		stale := next - r.version
		reject := bound >= 0 && stale > bound
		if a.det {
			// Delayed-gradient admission: the version must be exactly
			// max(0, next−bound). Workers always compute there, so this
			// is defensive, like the bound re-check below.
			expected := next - bound
			if expected < 0 {
				expected = 0
			}
			reject = r.version != expected
		}
		if reject {
			// The snapshot missed more updates than the bound allows:
			// refuse it and recompute against current parameters. The
			// clock cannot advance past this position meanwhile, so the
			// recompute's snapshot is exact and always admitted.
			stats.Rejected++
			bufs <- r.grad
			if rs, ok := src.(RequestSource); ok {
				rs.Request(r.batch)
			}
			select {
			case requeue <- asyncTask{pos: r.pos, batch: r.batch}:
			case <-run.done:
				return stats
			}
			continue
		}
		run.mu.Lock()
		m.ApplyGrad(r.grad, lr)
		faultpoint.Hit("engine.async.applied")
		run.clock = next + 1
		if a.det {
			// Publish version next+1 into its ring slot before waking
			// the gated readers.
			m.Params(run.arch[int((next+1)%int64(bound+1))])
		}
		run.cond.Broadcast()
		run.mu.Unlock()
		bufs <- r.grad
		stats.Updates++
		stats.StaleSum += stale
		if stale > stats.MaxStaleness {
			stats.MaxStaleness = stale
		}
		if a.onStep != nil {
			a.onStep(next, r.loss)
		}
		epochLoss += r.loss
		next++
		boundary := next%int64(n) == 0
		if boundary {
			epoch := int(next/int64(n)) - 1
			loss := epochLoss / float64(n)
			res.EpochLoss = append(res.EpochLoss, loss)
			res.EpochTime = append(res.EpochTime, time.Since(epochStart))
			if cb != nil {
				cb(epoch, time.Since(start), loss)
			}
			epochLoss = 0
			epochStart = time.Now()
		}
		if a.ck != nil {
			sinceCkpt++
			if (a.ckEvery > 0 && sinceCkpt >= a.ckEvery) ||
				(a.ckEvery <= 0 && boundary) || next == total {
				a.ck.SaveAsync(snapshot(next, epochLoss))
				sinceCkpt = 0
			}
		}
		if a.halted.Load() && next < total {
			if a.ck != nil {
				if err := a.ck.Save(snapshot(next, epochLoss)); err != nil {
					run.stop(err)
					return stats
				}
			}
			run.stop(ErrHalted)
			return stats
		}
	}
	return stats
}

// validateAsyncResume rejects a checkpoint that was not taken by a run
// with this exact configuration: resuming it would silently train a
// different trajectory.
func (a *Async) validateAsyncResume(st *checkpoint.State, n, np int, lr float64) error {
	switch {
	case st.Kind != checkpoint.KindAsync:
		return fmt.Errorf("engine: checkpoint kind %v, want %v", st.Kind, checkpoint.KindAsync)
	case st.NumBatches != n:
		return fmt.Errorf("engine: checkpoint has %d batches, source has %d", st.NumBatches, n)
	case st.Seed != a.seed:
		return fmt.Errorf("engine: checkpoint seed %d, engine uses %d", st.Seed, a.seed)
	case st.Shuffle != a.shuffle:
		return fmt.Errorf("engine: checkpoint shuffle=%v, engine uses %v", st.Shuffle, a.shuffle)
	case st.Staleness != a.staleness:
		return fmt.Errorf("engine: checkpoint staleness %d, engine uses %d", st.Staleness, a.staleness)
	case st.Deterministic != a.det:
		return fmt.Errorf("engine: checkpoint deterministic=%v, engine uses %v", st.Deterministic, a.det)
	case math.Float64bits(st.LR) != math.Float64bits(lr):
		return fmt.Errorf("engine: checkpoint learning rate %v, run uses %v", st.LR, lr)
	case len(st.Params) != np:
		return fmt.Errorf("engine: checkpoint has %d params, model has %d", len(st.Params), np)
	case st.Clock < 0:
		return fmt.Errorf("engine: checkpoint clock %d out of range", st.Clock)
	case n > 0 && len(st.EpochLoss) != int(st.Clock/int64(n)):
		return fmt.Errorf("engine: checkpoint has %d epoch losses at clock %d", len(st.EpochLoss), st.Clock)
	}
	if a.det {
		want := int64(a.staleness)
		if st.Clock < want {
			want = st.Clock
		}
		if int64(len(st.Archive)) != want {
			return fmt.Errorf("engine: checkpoint archives %d versions, want %d", len(st.Archive), want)
		}
		for i, vec := range st.Archive {
			if len(vec) != np {
				return fmt.Errorf("engine: archived version %d has %d params, model has %d", i, len(vec), np)
			}
		}
	} else if len(st.Archive) != 0 {
		return fmt.Errorf("engine: checkpoint archives %d versions but the engine is not deterministic", len(st.Archive))
	}
	return nil
}

// identityOrder is the in-order visit sequence used when Shuffle is off.
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
