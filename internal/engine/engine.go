// Package engine is the concurrent mini-batch training engine: it shards
// compression of incoming dense mini-batches across a worker pool, runs
// data-parallel MGD where each worker computes gradients on its shard of
// compressed batches through the on-compressed-form ops, and drives the
// storage prefetcher so spilled-batch IO overlaps compute — the multi-core
// headroom of the paper's §6 scalability discussion.
//
// Parallel training uses synchronous group steps: every step freezes the
// parameters, evaluates the gradients of the next GroupSize mini-batches
// concurrently into per-slot buffers (lock-free — each in-flight batch
// owns a disjoint buffer), merges them in batch order, and applies the
// merged gradient once. Because the merge order is the batch order — never
// the completion order — the trajectory is bitwise identical for any
// worker count: workers=8 walks exactly the loss curve of workers=1.
//
// Workers left over after the group's slots are claimed shard the kernels
// *inside* each gradient — both multiplication directions: the row- and
// column-sharded right multiplications A·v/A·M (the forward pass) and the
// accumulator-sharded left multiplications v·A/M·A (gradient
// aggregation), all bitwise identical to the sequential kernels — so a
// GroupSize-1 configuration still uses the whole pool without giving up
// the serial trajectory. Within each gradient the ml layer additionally
// threads one core.KernelPlan through the step's kernels, so the decode
// tree C' is built once per (batch, Grad) instead of once per operation.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"toc/internal/checkpoint"
	"toc/internal/data"
	"toc/internal/faultpoint"
	"toc/internal/formats"
	"toc/internal/matrix"
	"toc/internal/ml"
	"toc/internal/storage"
)

// ErrHalted is returned by TrainFrom when Halt interrupted the run: the
// partial result is valid, a final checkpoint (if a Writer is
// configured) has been written synchronously, and resuming from it
// continues the exact trajectory.
var ErrHalted = errors.New("engine: halted before completion")

// DefaultGroupSize is the number of mini-batch gradients merged per
// parameter update when Config.GroupSize is unset. It is deliberately
// independent of Workers so changing the worker count never changes the
// math, only the wall-clock.
const DefaultGroupSize = 8

// Config sizes the engine.
type Config struct {
	// Workers is the goroutine pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// GroupSize is the number of mini-batch gradients computed against
	// frozen parameters and merged per update step; <= 0 uses
	// DefaultGroupSize. GroupSize 1 reproduces serial ml.Train exactly.
	GroupSize int
	// Seed drives the per-epoch visit permutation when Shuffle is set.
	Seed int64
	// Shuffle revisits batches in a fresh seeded permutation every epoch.
	// Off by default: the paper shuffles once upfront (§2.1.3) and epochs
	// scan in order, which also keeps the spill prefetcher's predictions
	// trivially right.
	Shuffle bool

	// Checkpoint, when non-nil, snapshots the run into the writer's
	// directory so a crash (or Halt) can resume the exact trajectory.
	// The snapshot is captured between updates (workers idle, params
	// frozen) and serialized/written off the hot path by the writer's
	// background goroutine. Requires the model to be an
	// ml.SnapshotModel.
	Checkpoint *checkpoint.Writer
	// CheckpointEvery is the update-count cadence between snapshots;
	// <= 0 snapshots once per epoch.
	CheckpointEvery int
	// OnStep, when non-nil, observes every applied update: step is the
	// global update index from the run's origin (stable across
	// crash/resume) and loss is the update's summed mini-batch loss.
	// The identity tests compare these sequences bitwise.
	OnStep func(step int64, loss float64)
}

// Engine executes training and compression work over a bounded pool.
type Engine struct {
	workers int
	group   int
	seed    int64
	shuffle bool
	ck      *checkpoint.Writer
	ckEvery int
	onStep  func(step int64, loss float64)
	halted  atomic.Bool
}

// defaultWorkers is the pool size when a config leaves Workers unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// New builds an engine from cfg.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	g := cfg.GroupSize
	if g <= 0 {
		g = DefaultGroupSize
	}
	return &Engine{
		workers: w, group: g, seed: cfg.Seed, shuffle: cfg.Shuffle,
		ck: cfg.Checkpoint, ckEvery: cfg.CheckpointEvery, onStep: cfg.OnStep,
	}
}

// Halt asks a running Train/TrainFrom to stop after the update it is
// currently applying. The run writes a final checkpoint synchronously
// (when a Writer is configured) and returns ErrHalted. Safe to call
// from any goroutine, e.g. a signal handler.
func (e *Engine) Halt() { e.halted.Store(true) }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// GroupSize returns the configured gradients-per-update count (the
// default applied); Train additionally clamps it to the batch count.
func (e *Engine) GroupSize() int { return e.group }

// KernelWorkers returns the goroutine count Train gives each gradient's
// kernels when training over n batches — the pool split of the package
// doc. n <= 0 means "unclamped" (use the configured group size).
func (e *Engine) KernelWorkers(n int) int {
	group := e.group
	if n > 0 && group > n {
		group = n
	}
	per := e.workers / group
	if per < 1 {
		per = 1
	}
	return per
}

// epochPerm is the single definition of the engine's per-epoch visit
// permutation. Train (current and next epoch announcements) and
// FillStore (the eviction policy's upcoming order) must all derive it
// here, or an order-aware eviction policy would pin batches Train never
// visits first.
func epochPerm(seed int64, epoch, n int) []int {
	return rand.New(rand.NewSource(seed + int64(epoch))).Perm(n)
}

// EpochPerm exposes the per-epoch visit permutation to the other
// training drivers (internal/dist's parameter server), so a distributed
// run at the same seed walks exactly the schedule a local run walks.
func EpochPerm(seed int64, epoch, n int) []int { return epochPerm(seed, epoch, n) }

// OrderedSource is a BatchSource that accepts visit-order hints;
// storage.Prefetcher implements it. Train announces each epoch's
// permutation through it so prefetching stays ahead of the loop.
type OrderedSource interface {
	ml.BatchSource
	SetOrder(order []int)
}

// NextOrderedSource is an OrderedSource that can additionally be told the
// epoch after the announced one, so a prefetch window that wraps past the
// epoch boundary aims at the next epoch's head instead of re-reading the
// current epoch's — which matters exactly when Shuffle gives every epoch
// a fresh permutation. storage.Prefetcher implements it.
type NextOrderedSource interface {
	SetNextOrder(order []int)
}

// NewPrefetcher wraps a fully-loaded store with a spill prefetcher sized
// for this engine and the store's shard layout: the reader pool covers
// every spill shard (at least one reader per shard, and no fewer readers
// than the engine has workers) so sharded stores serve truly concurrent
// reads, and depth <= 0 defaults to two groups' worth of batches — deep
// enough to cover the next merge step while the current one computes.
// maxBytes > 0 additionally bounds the window by compressed bytes
// (storage.WithPrefetchBytes), so deep prefetch on large batches cannot
// outgrow the memory budget the store is protecting.
func (e *Engine) NewPrefetcher(st *storage.Store, depth int, maxBytes int64) *storage.Prefetcher {
	if depth <= 0 {
		depth = 2 * e.group
	}
	readers := e.workers
	if sh := st.Shards(); readers < sh {
		readers = sh
	}
	var opts []storage.PrefetchOption
	if maxBytes > 0 {
		opts = append(opts, storage.WithPrefetchBytes(maxBytes))
	}
	return storage.NewPrefetcher(st, depth, readers, opts...)
}

// Train runs data-parallel MGD for the given epochs: per step it fans the
// next GroupSize batch gradients out over the worker pool and applies
// their deterministic merge. The result is reproducible for a fixed
// (Seed, GroupSize) regardless of Workers. cb may be nil.
//
// Train panics on a configuration error (a Checkpoint writer with a
// model that is not an ml.SnapshotModel) and swallows ErrHalted,
// returning the partial result; use TrainFrom for the error-aware form.
func (e *Engine) Train(m ml.GradModel, src ml.BatchSource, epochs int, lr float64, cb ml.EpochCallback) *ml.TrainResult {
	res, err := e.TrainFrom(m, src, epochs, lr, cb, nil)
	if err != nil && !errors.Is(err, ErrHalted) {
		panic(err)
	}
	return res
}

// TrainFrom is Train with crash/resume support. With resume nil it
// starts fresh; otherwise it validates that the checkpoint was taken by
// a compatible run (same kind, seed, shuffle, group size, batch count,
// learning-rate bits and parameter dimension), restores the model
// parameters and the exact epoch/position/partial-loss cursor, and
// continues the trajectory: the completed run is bitwise identical to
// one that was never interrupted.
//
//toc:timing
func (e *Engine) TrainFrom(m ml.GradModel, src ml.BatchSource, epochs int, lr float64, cb ml.EpochCallback, resume *checkpoint.State) (*ml.TrainResult, error) {
	e.halted.Store(false)
	res := &ml.TrainResult{}
	start := time.Now()
	n := src.NumBatches()
	np := m.NumParams()
	group := e.group
	if group > n && n > 0 {
		group = n
	}

	var sm ml.SnapshotModel
	if e.ck != nil || resume != nil {
		var ok bool
		if sm, ok = m.(ml.SnapshotModel); !ok {
			return nil, fmt.Errorf("engine: checkpoint/resume needs an ml.SnapshotModel, %T is not one", m)
		}
	}
	startEpoch, startPos := 0, 0
	var partial float64
	if resume != nil {
		if err := e.validateSyncResume(resume, n, np, group, lr); err != nil {
			return nil, err
		}
		sm.SetParams(resume.Params)
		res.EpochLoss = append(res.EpochLoss, resume.EpochLoss...)
		// Wall-clock of pre-crash epochs is gone; zero placeholders keep
		// the epoch indices of EpochTime aligned with EpochLoss.
		res.EpochTime = make([]time.Duration, len(resume.EpochLoss))
		startEpoch, startPos, partial = resume.Epoch, resume.Pos, resume.PartialLoss
		if startEpoch >= epochs {
			res.Total = time.Since(start)
			return res, nil
		}
	}

	// snapshot captures the run between updates — workers are idle and
	// the params frozen — so reading the model here needs no locking.
	snapshot := func(epoch, pos int, partial float64) *checkpoint.State {
		params := make([]float64, np)
		sm.Params(params)
		return &checkpoint.State{
			Kind: checkpoint.KindSync, Seed: e.seed, LR: lr,
			Shuffle: e.shuffle, Group: group, NumBatches: n,
			Epoch: epoch, Pos: pos, PartialLoss: partial,
			EpochLoss: append([]float64(nil), res.EpochLoss...),
			Params:    params,
		}
	}
	// saveFinal is the Halt path: write synchronously so the checkpoint
	// is durable before TrainFrom returns.
	saveFinal := func(epoch, pos int, partial float64) error {
		if e.ck == nil {
			return nil
		}
		return e.ck.Save(snapshot(epoch, pos, partial))
	}

	// step is the global update index from the run's origin, not the
	// resume point, so OnStep sequences line up across crash/resume.
	// startPos is a multiple of group (validated above), so the division
	// is exact.
	updatesPerEpoch := (n + group - 1) / group
	step := int64(startEpoch)*int64(updatesPerEpoch) + int64(startPos/group)
	sinceCkpt := 0
	// Split the pool between batch-level and kernel-level parallelism: the
	// group's in-flight gradients claim workers first, and any leftover
	// goroutines shard the kernels inside each gradient — both the
	// forward right multiplications and the backward left multiplications
	// (workers=8 with group=1 puts all eight into every kernel call). The
	// parallel kernels are bitwise identical to the sequential ones, so
	// this split never changes the trajectory, only the wall-clock. (The
	// left-mul kernels replicate their read scan across shards to keep
	// that identity, so the split trades some aggregate CPU for latency;
	// with group >= workers it stays 1 and nothing changes.)
	if kp, ok := m.(ml.KernelParallel); ok {
		kp.SetKernelWorkers(e.KernelWorkers(n))
	}

	// Per-slot gradient buffers: slot s of the current group writes only
	// grads[s]/losses[s], so workers never contend.
	grads := make([][]float64, group)
	for s := range grads {
		grads[s] = make([]float64, np)
	}
	losses := make([]float64, group)
	merged := make([]float64, np)

	type job struct{ slot, batch int }
	jobs := make(chan job)
	var pending sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		go func() {
			for j := range jobs {
				x, y := src.Batch(j.batch)
				losses[j.slot] = m.Grad(x, y, grads[j.slot])
				pending.Done()
			}
		}()
	}
	defer close(jobs)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := startEpoch; epoch < epochs; epoch++ {
		if e.shuffle {
			copy(order, epochPerm(e.seed, epoch, n))
		}
		// Announced unconditionally — also when resuming mid-epoch
		// (startPos > 0), where the source still needs this epoch's
		// permutation even though the epoch did not start at position 0.
		if os, ok := src.(OrderedSource); ok {
			os.SetOrder(order)
			// With Shuffle on, the source's wrap-around window would
			// otherwise prefetch this epoch's head at the boundary while
			// the next epoch starts on a fresh permutation; announce that
			// permutation so boundary reads stay hits.
			if ns, ok := src.(NextOrderedSource); ok && e.shuffle && epoch+1 < epochs {
				ns.SetNextOrder(epochPerm(e.seed, epoch+1, n))
			}
		}
		epochStart := time.Now()
		var loss float64
		lo0 := 0
		if epoch == startEpoch {
			lo0, loss = startPos, partial
		}
		for lo := lo0; lo < n; lo += group {
			hi := lo + group
			if hi > n {
				hi = n
			}
			cnt := hi - lo
			pending.Add(cnt)
			for s := 0; s < cnt; s++ {
				jobs <- job{slot: s, batch: order[lo+s]}
			}
			pending.Wait()
			// Merge in batch order, never completion order, so the sum is
			// identical for any worker count.
			for j := range merged {
				merged[j] = 0
			}
			var stepLoss float64
			for s := 0; s < cnt; s++ {
				gs := grads[s]
				for j, v := range gs {
					merged[j] += v
				}
				stepLoss += losses[s]
			}
			loss += stepLoss
			inv := 1 / float64(cnt)
			for j := range merged {
				merged[j] *= inv
			}
			m.ApplyGrad(merged, lr)
			faultpoint.Hit("engine.sync.applied")
			if e.onStep != nil {
				e.onStep(step, stepLoss)
			}
			step++
			sinceCkpt++
			if hi < n {
				if e.ck != nil && e.ckEvery > 0 && sinceCkpt >= e.ckEvery {
					e.ck.SaveAsync(snapshot(epoch, hi, loss))
					sinceCkpt = 0
				}
				if e.halted.Load() {
					if err := saveFinal(epoch, hi, loss); err != nil {
						return res, err
					}
					res.Total = time.Since(start)
					return res, ErrHalted
				}
			}
		}
		if n > 0 {
			loss /= float64(n)
		}
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochTime = append(res.EpochTime, time.Since(epochStart))
		if cb != nil {
			cb(epoch, time.Since(start), loss)
		}
		if e.ck != nil && (e.ckEvery <= 0 || sinceCkpt >= e.ckEvery || epoch+1 == epochs) {
			e.ck.SaveAsync(snapshot(epoch+1, 0, 0))
			sinceCkpt = 0
		}
		if e.halted.Load() && epoch+1 < epochs {
			if err := saveFinal(epoch+1, 0, 0); err != nil {
				return res, err
			}
			res.Total = time.Since(start)
			return res, ErrHalted
		}
	}
	res.Total = time.Since(start)
	return res, nil
}

// validateSyncResume rejects a checkpoint that was not taken by a run
// with this exact configuration — resuming it would produce a silently
// different trajectory, which is worse than an error.
func (e *Engine) validateSyncResume(st *checkpoint.State, n, np, group int, lr float64) error {
	switch {
	case st.Kind != checkpoint.KindSync:
		return fmt.Errorf("engine: checkpoint kind %v, want %v", st.Kind, checkpoint.KindSync)
	case st.NumBatches != n:
		return fmt.Errorf("engine: checkpoint has %d batches, source has %d", st.NumBatches, n)
	case st.Group != group:
		return fmt.Errorf("engine: checkpoint group size %d, engine uses %d", st.Group, group)
	case st.Seed != e.seed:
		return fmt.Errorf("engine: checkpoint seed %d, engine uses %d", st.Seed, e.seed)
	case st.Shuffle != e.shuffle:
		return fmt.Errorf("engine: checkpoint shuffle=%v, engine uses %v", st.Shuffle, e.shuffle)
	case math.Float64bits(st.LR) != math.Float64bits(lr):
		return fmt.Errorf("engine: checkpoint learning rate %v, run uses %v", st.LR, lr)
	case len(st.Params) != np:
		return fmt.Errorf("engine: checkpoint has %d params, model has %d", len(st.Params), np)
	case st.Epoch < 0 || st.Pos < 0 || st.Pos >= n && st.Pos != 0:
		return fmt.Errorf("engine: checkpoint cursor epoch=%d pos=%d out of range", st.Epoch, st.Pos)
	case group > 0 && st.Pos%group != 0:
		return fmt.Errorf("engine: checkpoint position %d is not a group-step boundary (group %d)", st.Pos, group)
	case len(st.EpochLoss) != st.Epoch:
		return fmt.Errorf("engine: checkpoint has %d epoch losses at epoch %d", len(st.EpochLoss), st.Epoch)
	}
	return nil
}

// EncodeAll compresses dense mini-batches across the worker pool,
// returning results in input order.
func (e *Engine) EncodeAll(enc formats.Encoder, batches []*matrix.Dense) []formats.CompressedMatrix {
	out := make([]formats.CompressedMatrix, len(batches))
	workers := e.workers
	if workers > len(batches) {
		workers = len(batches)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(batches) {
					return
				}
				out[i] = enc(batches[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// FillStore slices the dataset into batchSize mini-batches, compresses
// them concurrently across the pool, and appends them to the store in
// order — the sharded-ingest counterpart of calling storage.Store.Add in
// a loop. Each worker materializes its dense batch copy only for the
// duration of its encode, so peak uncompressed overhead is one batch per
// worker, not one per dataset; only the compressed forms are retained
// until the in-order Add pass.
func (e *Engine) FillStore(st *storage.Store, d *data.Dataset, batchSize int) error {
	n := d.NumBatches(batchSize)
	// Aim the store's eviction policy at the first epoch before anything
	// is admitted: with Shuffle on, epoch 0 visits the seeded permutation
	// Train will announce to the prefetcher, and an order-aware policy
	// (storage.AccessOrder) keeps exactly its head resident. Without
	// Shuffle epochs scan in ingest order, which is the announcement too.
	if e.shuffle {
		st.SetUpcomingOrder(epochPerm(e.seed, 0, n))
	} else {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		st.SetUpcomingOrder(order)
	}
	encoded := make([]formats.CompressedMatrix, n)
	labels := make([][]float64, n)
	workers := e.workers
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				x, y := d.Batch(i, batchSize)
				encoded[i] = st.Encode(x)
				labels[i] = y
			}
		}()
	}
	wg.Wait()
	for i, c := range encoded {
		if err := st.AddCompressed(c, labels[i]); err != nil {
			return err
		}
	}
	return nil
}
