package engine

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/ml"
	"toc/internal/storage"
	"toc/internal/testutil"
)

func newSnapshotModel(t testing.TB, name string, d *data.Dataset, seed int64) ml.SnapshotModel {
	t.Helper()
	m := newModel(t, name, d, seed)
	sm, ok := m.(ml.SnapshotModel)
	if !ok {
		t.Fatalf("model %q (%T) does not implement SnapshotModel", name, m)
	}
	return sm
}

// The identity contract: staleness 0 forces every gradient to be computed
// at exactly the version it is applied to, so the async engine walks the
// serial per-batch trajectory (= the synchronous engine at GroupSize 1)
// bitwise, for any worker count.
func TestAsyncStalenessZeroMatchesSerialBitwise(t *testing.T) {
	for _, name := range []string{"lr", "nn"} {
		d, src := testSource(t, "mnist", 500)
		serial := newModel(t, name, d, 13)
		resS := ml.Train(serial, src, 3, 0.2, nil)

		for _, workers := range []int{1, 4, 8} {
			a := NewAsync(AsyncConfig{Workers: workers, Staleness: 0})
			am := newSnapshotModel(t, name, d, 13)
			resA, err := a.Train(am, src, 3, 0.2, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for e := range resS.EpochLoss {
				if math.Float64bits(resS.EpochLoss[e]) != math.Float64bits(resA.EpochLoss[e]) {
					t.Errorf("%s workers=%d: epoch %d loss %v != serial %v (want bitwise identity)",
						name, workers, e, resA.EpochLoss[e], resS.EpochLoss[e])
				}
			}
			if diff := maxAbsDiff(flatParams(t, serial), flatParams(t, am)); diff != 0 {
				t.Errorf("%s workers=%d: weights diverge from serial by %g (want bitwise identity)",
					name, workers, diff)
			}
			st := a.Stats()
			if st.Updates != int64(3*src.NumBatches()) {
				t.Errorf("%s workers=%d: %d updates, want %d", name, workers, st.Updates, 3*src.NumBatches())
			}
			if st.MaxStaleness != 0 {
				t.Errorf("%s workers=%d: max staleness %d under bound 0", name, workers, st.MaxStaleness)
			}
		}
	}
}

// Shuffled epochs use the same seeded permutations as the synchronous
// engine, so staleness 0 with Shuffle matches the synchronous GroupSize-1
// shuffled trajectory bitwise.
func TestAsyncStalenessZeroShuffleMatchesSyncEngine(t *testing.T) {
	d, src := testSource(t, "census", 400)
	sync := newModel(t, "lr", d, 31)
	resSync := New(Config{Workers: 4, GroupSize: 1, Seed: 11, Shuffle: true}).Train(sync, src, 3, 0.2, nil)

	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 0, Seed: 11, Shuffle: true})
	am := newSnapshotModel(t, "lr", d, 31)
	resA, err := a.Train(am, src, 3, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for e := range resSync.EpochLoss {
		if math.Float64bits(resSync.EpochLoss[e]) != math.Float64bits(resA.EpochLoss[e]) {
			t.Errorf("epoch %d: async loss %v != sync group-1 %v (want bitwise identity)",
				e, resA.EpochLoss[e], resSync.EpochLoss[e])
		}
	}
	if diff := maxAbsDiff(flatParams(t, sync), flatParams(t, am)); diff != 0 {
		t.Errorf("weights diverge from sync group-1 by %g (want bitwise identity)", diff)
	}
}

// The staleness bound is a hard property of the run: no applied gradient
// may have missed more updates than configured, and every position still
// trains exactly once.
func TestAsyncBoundedStalenessRespectsBound(t *testing.T) {
	const bound = 2
	d, src := testSource(t, "census", 500)
	a := NewAsync(AsyncConfig{Workers: 8, Staleness: bound})
	m := newSnapshotModel(t, "lr", d, 3)
	res, err := a.Train(m, src, 3, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.MaxStaleness > bound {
		t.Errorf("max staleness %d exceeds bound %d", st.MaxStaleness, bound)
	}
	if want := int64(3 * src.NumBatches()); st.Updates != want {
		t.Errorf("%d updates, want %d", st.Updates, want)
	}
	if mean := st.MeanStaleness(); mean < 0 || mean > bound {
		t.Errorf("mean staleness %v outside [0, %d]", mean, bound)
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Errorf("loss did not decrease: %v", res.EpochLoss)
	}
}

// StalenessUnbounded free-runs (Hogwild-style): the run must still apply
// every update exactly once, in position order, and converge.
func TestAsyncUnboundedCompletes(t *testing.T) {
	d, src := testSource(t, "mnist", 500)
	meanLoss := func(mm ml.Model) float64 {
		var sum float64
		for i := 0; i < src.NumBatches(); i++ {
			x, y := src.Batch(i)
			sum += mm.Loss(x, y)
		}
		return sum / float64(src.NumBatches())
	}
	m := newSnapshotModel(t, "lr", d, 5)
	initLoss := meanLoss(m)

	a := NewAsync(AsyncConfig{Workers: 8, Staleness: StalenessUnbounded})
	res, err := a.Train(m, src, 3, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if want := int64(3 * src.NumBatches()); st.Updates != want {
		t.Errorf("%d updates, want %d", st.Updates, want)
	}
	if st.Rejected != 0 {
		t.Errorf("unbounded run rejected %d gradients (no bound to violate)", st.Rejected)
	}
	if len(res.EpochLoss) != 3 {
		t.Fatalf("epochs = %d", len(res.EpochLoss))
	}
	// Free-running workers may compute every recorded loss against early
	// snapshots (the per-epoch loss sequence reflects snapshot freshness,
	// not the live parameters), so assert on the trained model itself.
	if got := meanLoss(m); got >= initLoss {
		t.Errorf("evaluated loss did not improve: %v -> %v", initLoss, got)
	}
}

// White box: widening the release gate past the staleness bound lets
// workers compute against snapshots the updater must refuse, so the
// reject-and-recompute path actually runs — and because every admitted
// gradient still has staleness 0, the trajectory stays bitwise serial.
// This pins the bound as the updater's property, not the scheduler's.
func TestAsyncRejectionPreservesStalenessZeroTrajectory(t *testing.T) {
	d, src := testSource(t, "census", 500)
	serial := newModel(t, "lr", d, 19)
	resS := ml.Train(serial, src, 3, 0.2, nil)

	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 0})
	a.releaseSlack = 8
	m := newSnapshotModel(t, "lr", d, 19)
	resA, err := a.Train(m, src, 3, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Rejected == 0 {
		t.Errorf("release slack 8 with 4 workers never tripped the admission check: %+v", st)
	}
	if st.MaxStaleness != 0 {
		t.Errorf("admitted staleness %d under bound 0", st.MaxStaleness)
	}
	for e := range resS.EpochLoss {
		if math.Float64bits(resS.EpochLoss[e]) != math.Float64bits(resA.EpochLoss[e]) {
			t.Errorf("epoch %d: loss %v != serial %v despite staleness-0 admission", e, resA.EpochLoss[e], resS.EpochLoss[e])
		}
	}
	if diff := maxAbsDiff(flatParams(t, serial), flatParams(t, m)); diff != 0 {
		t.Errorf("weights diverge from serial by %g", diff)
	}
}

// panicGradModel panics on the nth Grad call across all clones — a
// poisoned batch mid-epoch.
type panicGradModel struct {
	ml.SnapshotModel
	calls *int64
	after int64
}

func (p *panicGradModel) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	if atomic.AddInt64(p.calls, 1) > p.after {
		panic("poisoned batch")
	}
	return p.SnapshotModel.Grad(x, y, out)
}

func (p *panicGradModel) Clone() ml.SnapshotModel {
	return &panicGradModel{SnapshotModel: p.SnapshotModel.Clone(), calls: p.calls, after: p.after}
}

// A worker panic mid-epoch must abort the run cleanly: Train returns an
// error instead of crashing, and the whole pool (workers, releaser)
// drains — no goroutine leaks, no deadlock on the gated queue.
func TestAsyncWorkerPanicDrainsPool(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, src := testSource(t, "census", 500)

	var calls int64
	m := &panicGradModel{SnapshotModel: newSnapshotModel(t, "lr", d, 7), calls: &calls, after: 5}
	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 4})
	done := make(chan error, 1)
	go func() {
		_, err := a.Train(m, src, 3, 0.2, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Train returned nil error after a worker panic")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Train did not return after a worker panic (pool not drained)")
	}
	// testutil.CheckGoroutineLeak's cleanup asserts the pool drained.
}

// Exercised under -race in CI: asynchronous training over a spilled store
// behind the prefetcher, with shuffled epochs — the queue announces each
// epoch's permutation so the window stays aimed.
func TestAsyncOverPrefetchedSpilledStore(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, err := data.Generate("census", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	st, err := storage.NewStore(t.TempDir(), "TOC", 1, storage.WithShards(2)) // all spilled
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a := NewAsync(AsyncConfig{Workers: 8, Staleness: 4, Seed: 9, Shuffle: true})
	if err := a.FillStore(st, d, 50); err != nil {
		t.Fatal(err)
	}
	if !st.Spilled() {
		t.Fatal("expected every batch to spill")
	}
	pf := a.NewPrefetcher(st, 0, 0)
	defer pf.Close()

	m := newSnapshotModel(t, "lr", d, 13)
	res, err := a.Train(m, pf, 3, 0.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochLoss) != 3 {
		t.Fatalf("epochs = %d", len(res.EpochLoss))
	}
	if res.EpochLoss[2] >= res.EpochLoss[0] {
		t.Errorf("loss did not decrease: %v", res.EpochLoss)
	}
	if ps := pf.Stats(); ps.Hits == 0 {
		t.Errorf("prefetcher never hit: %+v", ps)
	}
}
