package engine

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"toc/internal/checkpoint"
	"toc/internal/data"
	"toc/internal/ml"
	"toc/internal/testutil"
)

// The resume-identity discipline: a run that checkpoints must walk the
// exact trajectory of one that doesn't, and a run resumed from ANY of
// its checkpoints must finish with bitwise-identical per-step losses,
// epoch losses, and final parameters. These tests enumerate every
// checkpoint a run writes and resume from each; the crash matrix in
// crash_test.go proves the same property across real process kills.

const (
	resumeEpochs = 3
	resumeLR     = 0.2
	resumeGroup  = 4
)

// stepLog records the per-step loss sequence keyed by global step index.
type stepLog map[int64]float64

func (l stepLog) record(step int64, loss float64) { l[step] = loss }

type resumeRunner struct {
	name string
	run  func(t *testing.T, d *data.Dataset, src ml.BatchSource, ck *checkpoint.Writer, log stepLog, resume *checkpoint.State) (*ml.TrainResult, []float64, error)
	// stepOf maps a checkpoint's cursor to the global step index of the
	// first update a resume from it will apply.
	stepOf func(st *checkpoint.State, n int) int64
}

func snapshotParams(t *testing.T, m ml.GradModel) []float64 {
	t.Helper()
	sm, ok := m.(ml.SnapshotModel)
	if !ok {
		t.Fatalf("%T is not an ml.SnapshotModel", m)
	}
	out := make([]float64, sm.NumParams())
	sm.Params(out)
	return out
}

func syncResumeRunner(shuffle bool) resumeRunner {
	name := "sync"
	if shuffle {
		name = "sync-shuffle"
	}
	return resumeRunner{
		name: name,
		run: func(t *testing.T, d *data.Dataset, src ml.BatchSource, ck *checkpoint.Writer, log stepLog, resume *checkpoint.State) (*ml.TrainResult, []float64, error) {
			m := newModel(t, "lr", d, 7)
			eng := New(Config{
				Workers: 4, GroupSize: resumeGroup, Seed: 11, Shuffle: shuffle,
				Checkpoint: ck, CheckpointEvery: 2, OnStep: log.record,
			})
			res, err := eng.TrainFrom(m, src, resumeEpochs, resumeLR, nil, resume)
			return res, snapshotParams(t, m), err
		},
		stepOf: func(st *checkpoint.State, n int) int64 {
			upe := (n + resumeGroup - 1) / resumeGroup
			return int64(st.Epoch)*int64(upe) + int64(st.Pos/resumeGroup)
		},
	}
}

func asyncResumeRunner(staleness int, shuffle bool) resumeRunner {
	name := "async-staleness0"
	if staleness > 0 {
		name = "async-det-shuffle"
	}
	return resumeRunner{
		name: name,
		run: func(t *testing.T, d *data.Dataset, src ml.BatchSource, ck *checkpoint.Writer, log stepLog, resume *checkpoint.State) (*ml.TrainResult, []float64, error) {
			m := newModel(t, "lr", d, 7).(ml.SnapshotModel)
			a := NewAsync(AsyncConfig{
				Workers: 4, Staleness: staleness, Deterministic: true,
				Seed: 11, Shuffle: shuffle,
				Checkpoint: ck, CheckpointEvery: 2, OnStep: log.record,
			})
			res, err := a.TrainFrom(m, src, resumeEpochs, resumeLR, nil, resume)
			params := make([]float64, m.NumParams())
			m.Params(params)
			return res, params, err
		},
		stepOf: func(st *checkpoint.State, n int) int64 { return st.Clock },
	}
}

func resumeRunners() []resumeRunner {
	return []resumeRunner{
		syncResumeRunner(false),
		syncResumeRunner(true),
		asyncResumeRunner(0, false),
		asyncResumeRunner(4, true),
	}
}

func assertBitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %x, want %x (not bitwise identical)",
				what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestCheckpointResumeIdentity(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	for _, r := range resumeRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			d, src := testSource(t, "census", 600)
			n := src.NumBatches()

			// Baseline: no checkpointing at all.
			baseLog := stepLog{}
			baseRes, baseParams, err := r.run(t, d, src, nil, baseLog, nil)
			if err != nil {
				t.Fatal(err)
			}

			// Checkpointing must not perturb the trajectory. Synchronous
			// mode + unbounded keep makes every snapshot durable and
			// enumerable.
			dir := t.TempDir()
			w, err := checkpoint.NewWriter(dir)
			if err != nil {
				t.Fatal(err)
			}
			w.SetSynchronous(true)
			w.SetKeep(1 << 20)
			ckLog := stepLog{}
			ckRes, ckParams, err := r.run(t, d, src, w, ckLog, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, "checkpointed params", ckParams, baseParams)
			assertBitsEqual(t, "checkpointed epoch losses", ckRes.EpochLoss, baseRes.EpochLoss)
			if len(ckLog) != len(baseLog) {
				t.Fatalf("checkpointed run logged %d steps, baseline %d", len(ckLog), len(baseLog))
			}
			for s, v := range ckLog {
				if math.Float64bits(v) != math.Float64bits(baseLog[s]) {
					t.Fatalf("checkpointed step %d loss differs from baseline", s)
				}
			}

			// Resume from every snapshot the run wrote; each must land on
			// the baseline's exact trajectory.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) < 3 {
				t.Fatalf("run wrote only %d checkpoints; the cadence should produce more", len(entries))
			}
			for _, e := range entries {
				st, err := checkpoint.Load(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatalf("load %s: %v", e.Name(), err)
				}
				rLog := stepLog{}
				rRes, rParams, err := r.run(t, d, src, nil, rLog, st)
				if err != nil {
					t.Fatalf("resume from %s: %v", e.Name(), err)
				}
				assertBitsEqual(t, "resumed params ("+e.Name()+")", rParams, baseParams)
				assertBitsEqual(t, "resumed epoch losses ("+e.Name()+")", rRes.EpochLoss, baseRes.EpochLoss)
				from := r.stepOf(st, n)
				if want := len(baseLog) - int(from); len(rLog) != want {
					t.Fatalf("resume from %s applied %d updates, want %d", e.Name(), len(rLog), want)
				}
				for s, v := range rLog {
					if s < from {
						t.Fatalf("resume from %s replayed step %d before its cursor %d", e.Name(), s, from)
					}
					bv, ok := baseLog[s]
					if !ok {
						t.Fatalf("resume from %s produced step %d the baseline never ran", e.Name(), s)
					}
					if math.Float64bits(v) != math.Float64bits(bv) {
						t.Fatalf("resume from %s: step %d loss %x, baseline %x", e.Name(), s, math.Float64bits(v), math.Float64bits(bv))
					}
				}
			}
		})
	}
}

// Halt must cut the run after the in-flight update, persist a final
// checkpoint synchronously, and leave a state that resumes onto the
// uninterrupted trajectory.
func TestHaltWritesResumableCheckpoint(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	for _, r := range resumeRunners() {
		r := r
		t.Run(r.name, func(t *testing.T) {
			d, src := testSource(t, "census", 600)
			baseLog := stepLog{}
			_, baseParams, err := r.run(t, d, src, nil, baseLog, nil)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			w, err := checkpoint.NewWriter(dir)
			if err != nil {
				t.Fatal(err)
			}
			w.SetSynchronous(true)
			hLog := stepLog{}
			var halter interface{ Halt() }
			haltAt := int64(3)
			log := stepLog{}
			record := func(step int64, loss float64) {
				log.record(step, loss)
				if step == haltAt {
					halter.Halt()
				}
			}
			// Re-build the runner inline so the halt hook can reach the
			// engine: runner funcs construct their own engines, so for
			// this test we drive the two engine kinds directly.
			var haltedErr error
			var haltedParams []float64
			switch r.name {
			case "sync", "sync-shuffle":
				m := newModel(t, "lr", d, 7)
				eng := New(Config{Workers: 4, GroupSize: resumeGroup, Seed: 11,
					Shuffle: r.name == "sync-shuffle", Checkpoint: w, CheckpointEvery: 2, OnStep: record})
				halter = eng
				_, haltedErr = eng.TrainFrom(m, src, resumeEpochs, resumeLR, nil, nil)
				haltedParams = snapshotParams(t, m)
			default:
				m := newModel(t, "lr", d, 7).(ml.SnapshotModel)
				staleness := 0
				if r.name == "async-det-shuffle" {
					staleness = 4
				}
				a := NewAsync(AsyncConfig{Workers: 4, Staleness: staleness, Deterministic: true,
					Seed: 11, Shuffle: r.name == "async-det-shuffle", Checkpoint: w, CheckpointEvery: 2, OnStep: record})
				halter = a
				_, haltedErr = a.TrainFrom(m, src, resumeEpochs, resumeLR, nil, nil)
				haltedParams = snapshotParams(t, m.(ml.GradModel))
			}
			if haltedErr != ErrHalted {
				t.Fatalf("halted run returned %v, want ErrHalted", haltedErr)
			}
			_ = haltedParams
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			st, err := checkpoint.Latest(dir)
			if err != nil {
				t.Fatalf("no final checkpoint after Halt: %v", err)
			}
			_, rParams, err := r.run(t, d, src, nil, hLog, st)
			if err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, "post-halt resumed params", rParams, baseParams)
		})
	}
}

// Deterministic delayed-gradient mode makes bounded staleness a pure
// function of (Seed, Staleness): any worker count must walk the same
// trajectory bitwise.
func TestAsyncDeterministicAcrossWorkerCounts(t *testing.T) {
	d, src := testSource(t, "census", 600)
	var ref []float64
	var refLoss []float64
	for _, workers := range []int{1, 2, 8} {
		m := newModel(t, "lr", d, 7).(ml.SnapshotModel)
		a := NewAsync(AsyncConfig{Workers: workers, Staleness: 3, Deterministic: true, Seed: 11, Shuffle: true})
		res, err := a.TrainFrom(m, src, 2, resumeLR, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		params := make([]float64, m.NumParams())
		m.Params(params)
		if ref == nil {
			ref, refLoss = params, res.EpochLoss
			continue
		}
		assertBitsEqual(t, "params", params, ref)
		assertBitsEqual(t, "epoch losses", res.EpochLoss, refLoss)
	}
}

// A checkpoint from an incompatible run must be refused, never silently
// trained into a different trajectory.
func TestResumeRejectsIncompatibleCheckpoint(t *testing.T) {
	d, src := testSource(t, "census", 600)
	dir := t.TempDir()
	w, err := checkpoint.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSynchronous(true)
	m := newModel(t, "lr", d, 7)
	eng := New(Config{Workers: 2, GroupSize: resumeGroup, Seed: 11, Checkpoint: w, CheckpointEvery: 2})
	if _, err := eng.TrainFrom(m, src, 1, resumeLR, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() ml.GradModel { return newModel(t, "lr", d, 7) }
	cases := []struct {
		name string
		run  func() error
	}{
		{"wrong seed", func() error {
			_, err := New(Config{Workers: 2, GroupSize: resumeGroup, Seed: 99}).TrainFrom(fresh(), src, 2, resumeLR, nil, st)
			return err
		}},
		{"wrong group", func() error {
			_, err := New(Config{Workers: 2, GroupSize: 2, Seed: 11}).TrainFrom(fresh(), src, 2, resumeLR, nil, st)
			return err
		}},
		{"wrong lr", func() error {
			_, err := New(Config{Workers: 2, GroupSize: resumeGroup, Seed: 11}).TrainFrom(fresh(), src, 2, 0.3, nil, st)
			return err
		}},
		{"wrong shuffle", func() error {
			_, err := New(Config{Workers: 2, GroupSize: resumeGroup, Seed: 11, Shuffle: true}).TrainFrom(fresh(), src, 2, resumeLR, nil, st)
			return err
		}},
		{"wrong kind", func() error {
			m := fresh().(ml.SnapshotModel)
			_, err := NewAsync(AsyncConfig{Workers: 2, Staleness: 0, Seed: 11}).TrainFrom(m, src, 2, resumeLR, nil, st)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: resume accepted an incompatible checkpoint", tc.name)
		}
	}
}

// benchTrain runs one full checkpointed (or plain) training; the ratio
// of the two benchmarks is the epoch-cadence checkpoint overhead. Only
// TrainFrom is timed — writer setup and teardown happen off the clock,
// but the background coalescing writer's work during training is paid
// where it belongs, inside the timed region.
func benchTrain(b *testing.B, withCheckpoint bool) {
	d, src := testSource(b, "census", 20000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := Config{Workers: 4, GroupSize: resumeGroup, Seed: 11}
		var ck *checkpoint.Writer
		if withCheckpoint {
			var err error
			if ck, err = checkpoint.NewWriter(b.TempDir()); err != nil {
				b.Fatal(err)
			}
			cfg.Checkpoint = ck
		}
		m := newModel(b, "lr", d, 7).(ml.SnapshotModel)
		b.StartTimer()
		if _, err := New(cfg).TrainFrom(m, src, resumeEpochs, resumeLR, nil, nil); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if ck != nil {
			if err := ck.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}

func BenchmarkSyncTrainNoCheckpoint(b *testing.B)    { benchTrain(b, false) }
func BenchmarkSyncTrainEpochCheckpoint(b *testing.B) { benchTrain(b, true) }
