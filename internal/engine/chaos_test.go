package engine

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"toc/internal/data"
	"toc/internal/faultpoint"
	"toc/internal/ml"
	"toc/internal/storage"
	"toc/internal/testutil"
)

// elasticRun trains one deterministic async run under a join/leave
// schedule (and optionally an injected worker crash), returning the
// final parameters, the per-step loss log, and the run's stats.
func elasticRun(t *testing.T, d *data.Dataset, src ml.BatchSource, schedule string, crashAfter int) ([]float64, []float64, AsyncStats) {
	t.Helper()
	defer faultpoint.Reset()
	if crashAfter > 0 {
		faultpoint.ArmError("engine.async.worker", crashAfter)
	}
	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 3, Deterministic: true})
	events, err := ParseElasticSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	a.SetOnStep(a.ElasticHook(events, func(step int64, loss float64) {
		losses = append(losses, loss) // updater goroutine, in position order
	}))
	m := newSnapshotModel(t, "lr", d, 11)
	if _, err := a.Train(m, src, 3, 0.2, nil); err != nil {
		t.Fatal(err)
	}
	return flatParams(t, m), losses, a.Stats()
}

func assertBitwise(t *testing.T, label string, gotP, wantP, gotL, wantL []float64) {
	t.Helper()
	if len(gotL) != len(wantL) {
		t.Fatalf("%s: %d step losses, want %d", label, len(gotL), len(wantL))
	}
	for i := range wantL {
		if math.Float64bits(gotL[i]) != math.Float64bits(wantL[i]) {
			t.Fatalf("%s: step %d loss %v != baseline %v", label, i, gotL[i], wantL[i])
		}
	}
	if diff := maxAbsDiff(gotP, wantP); diff != 0 {
		t.Fatalf("%s: final params diverge from baseline by %g", label, diff)
	}
}

// The headline elasticity guarantee: a Deterministic run's trajectory —
// final parameters and the per-step loss log — is bitwise identical
// across any join/leave schedule, and even when a worker crashes
// mid-run and its position is recomputed by a replacement. Delayed
// gradients are version-exact, so membership is invisible to the math.
func TestDeterministicBitwiseAcrossElasticSchedules(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, src := testSource(t, "census", 500)

	baseP, baseL, _ := elasticRun(t, d, src, "", 0)
	if len(baseL) != 30 { // 10 batches x 3 epochs
		t.Fatalf("baseline logged %d steps, want 30", len(baseL))
	}
	for _, spec := range []string{"4:+3", "6:-2,15:+4", "2:+1,9:-1,18:+2"} {
		p, l, st := elasticRun(t, d, src, spec, 0)
		assertBitwise(t, "schedule "+spec, p, baseP, l, baseL)
		if st.Joined == 0 {
			t.Errorf("schedule %s: no workers joined: %+v", spec, st)
		}
	}
	// Same guarantee with a worker kill layered on top of churn: the
	// injected fault fells one worker at its 7th task, the supervisor
	// restarts it, and the lost position re-enters the queue.
	p, l, st := elasticRun(t, d, src, "5:+2,12:-1", 7)
	assertBitwise(t, "schedule 5:+2,12:-1 with crash", p, baseP, l, baseL)
	if st.WorkerPanics != 1 || st.Restarts != 1 {
		t.Errorf("crash not absorbed by restart: %+v", st)
	}
}

// chaosStore spills every batch of d to disk behind a retrying store.
func chaosStore(t *testing.T, a *Async, d *data.Dataset, retry storage.RetryPolicy) *storage.Store {
	t.Helper()
	st, err := storage.NewStore(t.TempDir(), "TOC", 1, storage.WithShards(2), storage.WithReadRetry(retry))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := a.FillStore(st, d, 50); err != nil {
		t.Fatal(err)
	}
	if !st.Spilled() {
		t.Fatal("chaos store must spill every batch")
	}
	return st
}

// The chaos matrix: worker kills crossed with transient storage faults
// (flaky reads plus a one-shot CRC corruption), over two engine
// configurations. Every cell must finish with parameters bitwise
// identical to its fault-free baseline, absorbing the injected failures
// through restarts and read retries rather than surfacing them.
func TestChaosMatrixSurvivesWorkerKillsAndStorageFaults(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, err := data.Generate("census", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	retry := storage.RetryPolicy{Attempts: 5, Base: time.Microsecond, Max: 20 * time.Microsecond, Seed: 1}

	configs := []AsyncConfig{
		// Staleness 0 reproduces the serial trajectory; Deterministic
		// delayed gradients pin the staleness-3 one. Both are bitwise
		// reproducible, so "correct final params" is an exact check.
		{Workers: 4, Staleness: 0, RestartBudget: 64},
		{Workers: 4, Staleness: 3, Deterministic: true, RestartBudget: 64},
	}
	for ci, cfg := range configs {
		run := func(chaos bool) ([]float64, AsyncStats, storage.Stats) {
			defer faultpoint.Reset()
			a := NewAsync(cfg)
			st := chaosStore(t, a, d, retry)
			pf := a.NewPrefetcher(st, 0, 0)
			defer pf.Close()
			if chaos {
				// One guaranteed worker kill, a flaky read layer, and a
				// single CRC corruption. A read that exhausts its retries
				// panics in the worker and is absorbed as one more crash.
				faultpoint.ArmError("engine.async.worker", 5)
				faultpoint.ArmErrorEvery("storage.read.error", 0.4, 3)
				faultpoint.ArmError("storage.read.crc", 3)
			}
			m := newSnapshotModel(t, "lr", d, 17)
			if _, err := a.Train(m, pf, 3, 0.2, nil); err != nil {
				t.Fatalf("config %d chaos=%v: %v", ci, chaos, err)
			}
			return flatParams(t, m), a.Stats(), st.Stats()
		}
		base, _, _ := run(false)
		got, ast, sst := run(true)
		if diff := maxAbsDiff(got, base); diff != 0 {
			t.Errorf("config %d: chaos run params diverge from fault-free baseline by %g", ci, diff)
		}
		if ast.WorkerPanics == 0 || ast.Restarts == 0 {
			t.Errorf("config %d: worker kill not exercised: %+v", ci, ast)
		}
		if sst.Retries == 0 {
			t.Errorf("config %d: storage retry not exercised: %+v", ci, sst)
		}
	}
}

// Exhausting the restart budget must fail the run loudly, with every
// recovered panic — including the typed injected fault — preserved in
// the returned error chain.
func TestRestartBudgetExhaustionPreservesPanicChain(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	defer faultpoint.Reset()
	d, src := testSource(t, "census", 500)
	faultpoint.ArmErrorEvery("engine.async.worker", 1, 1) // every task panics
	a := NewAsync(AsyncConfig{Workers: 2, Staleness: 2, RestartBudget: 2})
	m := newSnapshotModel(t, "lr", d, 7)
	_, err := a.Train(m, src, 2, 0.2, nil)
	if err == nil {
		t.Fatal("Train survived a poisoned pool past its restart budget")
	}
	if !strings.Contains(err.Error(), "restart budget") {
		t.Errorf("error does not explain the budget: %v", err)
	}
	var fe *faultpoint.Error
	if !errors.As(err, &fe) {
		t.Errorf("injected *faultpoint.Error not reachable through the chain: %v", err)
	}
	// 2 workers + 2 replacements all crash: 4 panics, 2 restarts, then
	// 2 unreplaced crashes drain the pool to zero.
	st := a.Stats()
	if st.WorkerPanics != 4 || st.Restarts != 2 || st.Degraded != 2 {
		t.Errorf("stats = %+v, want 4 panics, 2 restarts, 2 degraded", st)
	}
}

// A negative budget disables replacement outright: every panic degrades
// the pool, and the run fails once the last worker is gone.
func TestNegativeRestartBudgetDisablesReplacement(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	defer faultpoint.Reset()
	d, src := testSource(t, "census", 500)
	faultpoint.ArmErrorEvery("engine.async.worker", 1, 1)
	a := NewAsync(AsyncConfig{Workers: 3, Staleness: 2, RestartBudget: -1})
	m := newSnapshotModel(t, "lr", d, 7)
	if _, err := a.Train(m, src, 2, 0.2, nil); err == nil {
		t.Fatal("Train survived with replacement disabled and every worker dead")
	}
	st := a.Stats()
	if st.Restarts != 0 || st.Degraded != 3 || st.WorkerPanics != 3 {
		t.Errorf("stats = %+v, want 0 restarts, 3 degraded, 3 panics", st)
	}
}
