package engine

import (
	"strings"
	"testing"

	"toc/internal/testutil"
)

func TestParseElasticSchedule(t *testing.T) {
	ev, err := ParseElasticSchedule(" 500:-2, 200:+4, 200:1 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []ElasticEvent{{200, 4}, {200, 1}, {500, -2}}
	if len(ev) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(ev), len(want))
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v (sorted by step, input order on ties)", i, ev[i], want[i])
		}
	}
	if ev, err := ParseElasticSchedule("  "); err != nil || ev != nil {
		t.Errorf("blank spec = (%v, %v), want empty schedule", ev, err)
	}
}

// Every malformed schedule error must quote the offending token, so a
// typo in a long -elastic flag is findable.
func TestParseElasticScheduleErrorsNameBadToken(t *testing.T) {
	cases := []struct{ spec, tok string }{
		{"200", `"200"`},
		{"abc:+4", `"abc"`},
		{"200:four", `"four"`},
		{"-3:+4", `"-3"`},
		{"200:0", `"0"`},
		{"200:+4,500:", `""`},
	}
	for _, c := range cases {
		_, err := ParseElasticSchedule(c.spec)
		if err == nil {
			t.Errorf("spec %q: no error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.tok) {
			t.Errorf("spec %q: error %q does not name token %s", c.spec, err, c.tok)
		}
	}
}

// Membership calls against an idle engine are no-ops, not panics: there
// is no run to resize.
func TestMembershipNoOpWhenIdle(t *testing.T) {
	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 2})
	if got := a.AddWorkers(3); got != 0 {
		t.Errorf("idle AddWorkers(3) = %d, want 0", got)
	}
	if got := a.RemoveWorkers(2); got != 0 {
		t.Errorf("idle RemoveWorkers(2) = %d, want 0", got)
	}
	if got := a.AddWorkers(-1); got != 0 {
		t.Errorf("AddWorkers(-1) = %d, want 0", got)
	}
	if got := a.LiveWorkers(); got != 4 {
		t.Errorf("idle LiveWorkers() = %d, want configured 4", got)
	}
}

// Mid-run, removals clamp to a floor of one worker and joins report the
// exact count spawned; the run's stats account every granted change.
func TestMembershipClampsMidRun(t *testing.T) {
	testutil.CheckGoroutineLeak(t)
	d, src := testSource(t, "census", 500)
	a := NewAsync(AsyncConfig{Workers: 4, Staleness: 3, Deterministic: true})
	var removed, added, liveAfter int
	a.SetOnStep(func(step int64, loss float64) {
		switch step {
		case 5:
			removed = a.RemoveWorkers(1000) // clamp: pool keeps >= 1
		case 15:
			added = a.AddWorkers(2)
		case 25:
			liveAfter = a.LiveWorkers()
		}
	})
	m := newSnapshotModel(t, "lr", d, 11)
	if _, err := a.Train(m, src, 3, 0.2, nil); err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Errorf("RemoveWorkers(1000) on a pool of 4 granted %d, want 3", removed)
	}
	if added != 2 {
		t.Errorf("AddWorkers(2) = %d, want 2", added)
	}
	if liveAfter != 3 {
		t.Errorf("LiveWorkers() after -3/+2 = %d, want 3", liveAfter)
	}
	st := a.Stats()
	if st.Departed != 3 || st.Joined != 2 {
		t.Errorf("stats Departed=%d Joined=%d, want 3 and 2", st.Departed, st.Joined)
	}
	if got := a.LiveWorkers(); got != 4 {
		t.Errorf("LiveWorkers() between runs = %d, want configured 4", got)
	}
}
