package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"toc/internal/checkpoint"
	"toc/internal/data"
	"toc/internal/faultpoint"
	"toc/internal/ml"
	"toc/internal/storage"
)

// The crash matrix: for every training configuration and every armed
// fault point — mid-spill-write, mid-manifest-rename, mid-checkpoint-
// rename, and between gradient apply and clock publish — a subprocess
// is killed (os.Exit, no deferred cleanup runs) at the fault, restarted
// against whatever the filesystem holds, and must finish with epoch
// losses and final parameters bitwise identical to a run that was never
// interrupted. TestMain re-execs the test binary as the victim.

func TestMain(m *testing.M) {
	if os.Getenv("TOC_CRASH_HELPER") == "1" {
		if err := runCrashHelper(os.Getenv("TOC_CRASH_CONFIG"), os.Getenv("TOC_CRASH_DIR")); err != nil {
			fmt.Fprintln(os.Stderr, "crash helper:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCrashHelper is one victim process: ingest (or recover) the spill
// store, resume from the newest checkpoint if any, train, and write the
// run's bitwise result. Any armed fault point kills it mid-flight.
func runCrashHelper(cfgName, dir string) error {
	if err := faultpoint.ArmFromEnv(); err != nil {
		return err
	}
	d, err := data.Generate("census", 600, 1)
	if err != nil {
		return err
	}
	d.ShuffleOnce(2)
	shuffle := cfgName == "sync-shuffle" || cfgName == "async4"

	// Spill store: recovered from the manifest when one survived, else
	// re-ingested from scratch (a crash before the manifest rename loses
	// only ingest work, never trajectory fidelity). The small budget
	// forces spills so training reads CRC-verified spans.
	storeDir := filepath.Join(dir, "store")
	manifest := filepath.Join(dir, "store.manifest")
	var st *storage.Store
	if _, serr := os.Stat(manifest); serr == nil {
		if st, err = storage.OpenStore(manifest); err != nil {
			return err
		}
	} else {
		if err = os.MkdirAll(storeDir, 0o755); err != nil {
			return err
		}
		if st, err = storage.NewStore(storeDir, "TOC", 2000, storage.WithShards(2)); err != nil {
			return err
		}
		ing := New(Config{Workers: 2, Seed: 11, Shuffle: shuffle})
		if err = ing.FillStore(st, d, 50); err != nil {
			return err
		}
		if err = st.WriteManifest(manifest); err != nil {
			return err
		}
	}
	defer st.Close()

	w, err := checkpoint.NewWriter(filepath.Join(dir, "ckpt"))
	if err != nil {
		return err
	}
	w.SetSynchronous(true)
	w.SetKeep(1 << 20)
	defer w.Close()

	var resume *checkpoint.State
	if s, lerr := checkpoint.Latest(w.Dir()); lerr == nil {
		resume = s
	} else if !errors.Is(lerr, os.ErrNotExist) {
		return lerr
	}

	mdl, err := ml.NewModel("lr", d.X.Cols(), d.Classes, 0.1, 7)
	if err != nil {
		return err
	}
	m := mdl.(ml.GradModel)

	var res *ml.TrainResult
	switch cfgName {
	case "sync", "sync-shuffle":
		eng := New(Config{Workers: 4, GroupSize: 4, Seed: 11, Shuffle: shuffle,
			Checkpoint: w, CheckpointEvery: 2})
		res, err = eng.TrainFrom(m, st, 3, 0.2, nil, resume)
	case "async0", "async4":
		staleness := 0
		if cfgName == "async4" {
			staleness = 4
		}
		a := NewAsync(AsyncConfig{Workers: 4, Staleness: staleness, Deterministic: true,
			Seed: 11, Shuffle: shuffle, Checkpoint: w, CheckpointEvery: 2})
		res, err = a.TrainFrom(m.(ml.SnapshotModel), st, 3, 0.2, nil, resume)
	default:
		return fmt.Errorf("unknown config %q", cfgName)
	}
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	for _, l := range res.EpochLoss {
		fmt.Fprintf(&buf, "epoch %016x\n", math.Float64bits(l))
	}
	sm := m.(ml.SnapshotModel)
	params := make([]float64, sm.NumParams())
	sm.Params(params)
	for _, p := range params {
		fmt.Fprintf(&buf, "param %016x\n", math.Float64bits(p))
	}
	return os.WriteFile(filepath.Join(dir, "result"), buf.Bytes(), 0o644)
}

// runVictim executes the helper as a subprocess and returns its exit
// code and combined output.
func runVictim(t *testing.T, cfg, dir, faults string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"TOC_CRASH_HELPER=1",
		"TOC_CRASH_CONFIG="+cfg,
		"TOC_CRASH_DIR="+dir,
		faultpoint.EnvVar+"="+faults,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("victim did not run: %v\n%s", err, out)
	return -1, ""
}

// crashFaults lists the adversarial kill points for a configuration.
func crashFaults(cfg string) map[string]string {
	applied := "engine.sync.applied"
	hits := 4
	if cfg == "async0" || cfg == "async4" {
		applied = "engine.async.applied"
		hits = 7
	}
	return map[string]string{
		"spill-mid":         "storage.spill.mid=crash:2",
		"manifest-rename":   "storage.manifest.rename=crash:1",
		"checkpoint-rename": "checkpoint.rename=crash:2",
		"applied":           fmt.Sprintf("%s=crash:%d", applied, hits),
	}
}

func TestCrashMatrixResumeIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is not -short")
	}
	for _, cfg := range []string{"sync", "sync-shuffle", "async0", "async4"} {
		cfg := cfg
		t.Run(cfg, func(t *testing.T) {
			// Uninterrupted baseline for this configuration.
			baseDir := t.TempDir()
			if code, out := runVictim(t, cfg, baseDir, ""); code != 0 {
				t.Fatalf("baseline run exited %d\n%s", code, out)
			}
			baseline, err := os.ReadFile(filepath.Join(baseDir, "result"))
			if err != nil {
				t.Fatal(err)
			}
			for name, spec := range crashFaults(cfg) {
				name, spec := name, spec
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					code, out := runVictim(t, cfg, dir, spec)
					if code != faultpoint.CrashExitCode {
						t.Fatalf("armed %q: victim exited %d, want crash code %d\n%s",
							spec, code, faultpoint.CrashExitCode, out)
					}
					if _, err := os.Stat(filepath.Join(dir, "result")); err == nil {
						t.Fatal("crashed victim wrote a result file")
					}
					// Restart against the crashed filesystem state.
					if code, out := runVictim(t, cfg, dir, ""); code != 0 {
						t.Fatalf("resume run exited %d\n%s", code, out)
					}
					got, err := os.ReadFile(filepath.Join(dir, "result"))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, baseline) {
						t.Fatalf("resumed run's result is not bitwise identical to the uninterrupted baseline\nbaseline:\n%s\nresumed:\n%s", baseline, got)
					}
				})
			}
		})
	}
}
