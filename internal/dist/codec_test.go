package dist

import (
	"math"
	"math/rand"
	"testing"
)

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Dense encodes bit-exactly: decode(encode(g)) == g down to the last
// float bit, on both the gradient and the snapshot path — the property
// the single-trainer identity test stands on.
func TestDenseRoundTripBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := &Dense{}
	g := randomVec(rng, 257)
	g[0], g[1], g[2] = 0, math.SmallestNonzeroFloat64, -math.MaxFloat64
	payload := c.EncodeGrad(g, nil)
	out := make([]float64, len(g))
	if err := c.DecodeGrad(payload, out); err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(out[i]) {
			t.Fatalf("grad coord %d: %x != %x", i, math.Float64bits(out[i]), math.Float64bits(g[i]))
		}
	}

	params := randomVec(rng, 257)
	prev := randomVec(rng, 257)
	snap := c.EncodeSnap(params, prev, nil)
	got := make([]float64, len(params))
	if err := c.DecodeSnap(snap, got); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if math.Float64bits(params[i]) != math.Float64bits(got[i]) {
			t.Fatalf("snap coord %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(params[i]))
		}
	}
	// EncodeSnap advances prev to the shipped image.
	for i := range params {
		if prev[i] != params[i] {
			t.Fatalf("prev coord %d not advanced", i)
		}
	}
}

// Error feedback conserves gradient mass: across a sequence of encodes,
// everything delivered plus the residual still held equals everything
// fed in — nothing is lost, only delayed.
func TestTopKErrorFeedbackConservation(t *testing.T) {
	const np, rounds = 200, 20
	rng := rand.New(rand.NewSource(2))
	c := &TopK{ratio: 0.05}
	delivered := make([]float64, np)
	fedIn := make([]float64, np)
	out := make([]float64, np)
	var payload []byte
	for r := 0; r < rounds; r++ {
		g := randomVec(rng, np)
		for i := range g {
			fedIn[i] += g[i]
		}
		payload = c.EncodeGrad(g, payload[:0])
		if err := c.DecodeGrad(payload, out); err != nil {
			t.Fatal(err)
		}
		nz := 0
		for i := range out {
			if out[i] != 0 {
				nz++
			}
			delivered[i] += out[i]
		}
		if want := c.kOf(np); nz > want {
			t.Fatalf("round %d: %d nonzero coords, ratio admits %d", r, nz, want)
		}
	}
	// delivered + residual == fedIn, coordinate-wise.
	for i := range fedIn {
		if diff := math.Abs(delivered[i] + c.gradRes[i] - fedIn[i]); diff > 1e-9 {
			t.Fatalf("coord %d leaks %g gradient mass", i, diff)
		}
	}
}

// ReturnGrad undoes an encode: after crediting a rejected payload back,
// the next encode re-delivers the refused mass, so a reject-recompute
// cycle still conserves.
func TestTopKReturnGradConservation(t *testing.T) {
	const np = 100
	rng := rand.New(rand.NewSource(3))
	c := &TopK{ratio: 0.1}
	g := randomVec(rng, np)
	payload := c.EncodeGrad(g, nil)
	if err := c.ReturnGrad(payload); err != nil {
		t.Fatal(err)
	}
	// All of g must now sit in the residual.
	for i := range g {
		if diff := math.Abs(c.gradRes[i] - g[i]); diff > 1e-12 {
			t.Fatalf("coord %d: residual %g after return, fed %g", i, c.gradRes[i], g[i])
		}
	}
	zero := make([]float64, np)
	payload = c.EncodeGrad(zero, payload[:0])
	out := make([]float64, np)
	if err := c.DecodeGrad(payload, out); err != nil {
		t.Fatal(err)
	}
	if sum(out) == 0 {
		t.Fatal("returned mass not re-delivered on the next encode")
	}
}

func TestTopKReturnBeforeEncode(t *testing.T) {
	c := &TopK{ratio: 0.5}
	if err := c.ReturnGrad([]byte{tagTopK}); err == nil {
		t.Fatal("ReturnGrad before any EncodeGrad must error")
	}
}

// DSQ quantization error is bounded by one level step, and error
// feedback conserves mass the same way top-k does.
func TestDSQBoundedErrorAndConservation(t *testing.T) {
	const np, rounds = 128, 10
	rng := rand.New(rand.NewSource(4))
	c := &DSQ{bits: 4, seed: 9}
	delivered := make([]float64, np)
	fedIn := make([]float64, np)
	out := make([]float64, np)
	var payload []byte
	for r := 0; r < rounds; r++ {
		g := randomVec(rng, np)
		for i := range g {
			fedIn[i] += g[i]
		}
		payload = c.EncodeGrad(g, payload[:0])
		if err := c.DecodeGrad(payload, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			delivered[i] += out[i]
		}
		for i, v := range c.gradRes {
			if math.Abs(v) > 1e6 {
				t.Fatalf("round %d: residual coord %d blew up to %g", r, i, v)
			}
		}
	}
	for i := range fedIn {
		if diff := math.Abs(delivered[i] + c.gradRes[i] - fedIn[i]); diff > 1e-9 {
			t.Fatalf("coord %d leaks %g gradient mass", i, diff)
		}
	}
}

// DSQ per-encode quantization error never exceeds one quantization step
// (scale / levels) on any coordinate.
func TestDSQStepError(t *testing.T) {
	const np = 64
	rng := rand.New(rand.NewSource(5))
	for _, bits := range []int{2, 4, 8} {
		c := &DSQ{bits: bits, seed: 1}
		g := randomVec(rng, np)
		acc := append([]float64(nil), g...) // residual starts empty
		payload := c.EncodeGrad(g, nil)
		out := make([]float64, np)
		if err := c.DecodeGrad(payload, out); err != nil {
			t.Fatal(err)
		}
		scale := 0.0
		for _, v := range acc {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		step := scale / float64(dsqLevels(bits))
		for i := range out {
			if diff := math.Abs(out[i] - acc[i]); diff > step+1e-12 {
				t.Fatalf("bits=%d coord %d: error %g exceeds step %g", bits, i, diff, step)
			}
		}
	}
}

// Snapshot-side error feedback: iterating EncodeSnap/DecodeSnap tracks
// the true parameters — the receiver's image converges to the sender's
// even though each delta is lossy.
func TestTopKSnapshotTracking(t *testing.T) {
	const np = 150
	rng := rand.New(rand.NewSource(6))
	c := &TopK{ratio: 0.1}
	params := randomVec(rng, np)
	senderPrev := append([]float64(nil), params...)
	receiver := append([]float64(nil), params...)
	var payload []byte
	for r := 0; r < 60; r++ {
		for i := range params {
			params[i] += 0.01 * rng.NormFloat64()
		}
		payload = c.EncodeSnap(params, senderPrev, payload[:0])
		if err := c.DecodeSnap(payload, receiver); err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(receiver, senderPrev); diff != 0 {
			t.Fatalf("round %d: sender prev and receiver image disagree by %g", r, diff)
		}
	}
	// With error feedback the image must stay within a small multiple of
	// the per-round drift, not diverge.
	if diff := maxAbsDiff(receiver, params); diff > 0.5 {
		t.Fatalf("receiver image drifted %g from true params", diff)
	}
}

func TestParseCodec(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"dense", "dense"},
		{"", "dense"},
		{"topk", "topk:0.01"},
		{"topk:0.05", "topk:0.05"},
		{"dsq", "dsq:4"},
		{"dsq:2", "dsq:2"},
	}
	for _, tc := range cases {
		c, err := ParseCodec(tc.spec, 1)
		if err != nil {
			t.Errorf("ParseCodec(%q): %v", tc.spec, err)
			continue
		}
		if c.Name() != tc.want {
			t.Errorf("ParseCodec(%q).Name() = %q, want %q", tc.spec, c.Name(), tc.want)
		}
		// Clone must be independent and same-named.
		if cl := c.Clone(); cl.Name() != c.Name() {
			t.Errorf("clone of %q renamed to %q", c.Name(), cl.Name())
		}
	}
	for _, spec := range []string{"gzip", "topk:0", "topk:1.5", "topk:x", "dsq:1", "dsq:9", "dsq:x"} {
		if _, err := ParseCodec(spec, 1); err == nil {
			t.Errorf("ParseCodec(%q) accepted", spec)
		}
	}
}

// Decoders reject truncated, oversized and cross-codec payloads instead
// of panicking or silently mis-scattering.
func TestDecodeRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomVec(rng, 50)
	codecs := []GradCodec{&Dense{}, &TopK{ratio: 0.1}, &DSQ{bits: 4, seed: 1}}
	payloads := make([][]byte, len(codecs))
	for i, c := range codecs {
		payloads[i] = c.EncodeGrad(append([]float64(nil), g...), nil)
	}
	out := make([]float64, 50)
	for i, c := range codecs {
		for j, p := range payloads {
			if i == j {
				if err := c.DecodeGrad(p, out); err != nil {
					t.Errorf("%s rejects its own payload: %v", c.Name(), err)
				}
				continue
			}
			if err := c.DecodeGrad(p, out); err == nil {
				t.Errorf("%s decoded %s payload", c.Name(), codecs[j].Name())
			}
		}
		// Truncations of a valid payload must all fail cleanly.
		own := payloads[i]
		for cut := 0; cut < len(own); cut++ {
			if err := c.DecodeGrad(own[:cut], out); err == nil {
				t.Errorf("%s decoded %d-byte truncation of %d-byte payload", c.Name(), cut, len(own))
			}
		}
		// Wrong-size output vector.
		small := make([]float64, 49)
		if err := c.DecodeGrad(own, small); err == nil {
			t.Errorf("%s decoded into short output", c.Name())
		}
	}
}
