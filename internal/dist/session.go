package dist

import (
	"fmt"
	"sync"
)

// The wire protocol: five RPCs on service "PS". A trainer Joins (codec
// and shape handshake, bootstrap parameter image), then loops Next
// (blocks until a position is admissible under the staleness bound —
// the async engine's release gate over the wire), optionally Pull (a
// compressed delta bringing its image to the current version), computes,
// and Pushes the compressed gradient tagged with the snapshot version it
// was computed at; the server rejects pushes staler than the bound and
// the trainer recomputes against a fresh pull. Bye leaves cleanly;
// vanishing without it is a crash and the trainer's in-flight positions
// are requeued.
//
// Trainers call strictly serially (net/rpc's synchronous Call), so each
// session has at most one RPC in flight; the session lock still guards
// its state so a misbehaving client cannot corrupt the server.

// JoinArgs is the trainer's handshake: the server validates that both
// sides agree on the codec and the schedule shape before any traffic.
type JoinArgs struct {
	Codec      string
	NumParams  int
	NumBatches int
}

// JoinReply carries the trainer id, the staleness bound, and the
// bootstrap parameter image (raw, uncompressed: the downlink codec's
// delta chain starts from this exact shared image).
type JoinReply struct {
	Trainer   int
	Staleness int
	Version   int64
	Params    []float64
}

// NextArgs requests the next position to compute.
type NextArgs struct{ Trainer int }

// NextReply is a released position (and its epoch batch index), or
// Done when the schedule is complete.
type NextReply struct {
	Done  bool
	Pos   int64
	Batch int
}

// PullArgs requests a parameter refresh.
type PullArgs struct{ Trainer int }

// PullReply is the compressed delta from the trainer's last-known image
// to the server's current parameters, tagged with the version (server
// clock) it brings the trainer to.
type PullReply struct {
	Version int64
	Payload []byte
}

// PushArgs submits one computed gradient: the position it was assigned,
// the version of the snapshot it was computed against, its mini-batch
// loss, and the codec payload.
type PushArgs struct {
	Trainer int
	Pos     int64
	Version int64
	Loss    float64
	Payload []byte
}

// PushReply reports admission: Rejected means the snapshot exceeded the
// staleness bound and the trainer must pull and recompute.
type PushReply struct {
	Rejected bool
	Clock    int64
}

// ByeArgs announces a clean departure.
type ByeArgs struct{ Trainer int }

// ByeReply is empty.
type ByeReply struct{}

// session is one trainer's server-side state: its identity and the
// downlink codec clone tracking the parameter image this trainer holds.
type session struct {
	srv *Server

	mu sync.Mutex
	//toc:guardedby mu
	id int // -1 until Join
	//toc:guardedby mu
	left bool // clean Bye received
	//toc:guardedby mu
	down GradCodec // per-trainer downlink codec (residual + prev chain)
	//toc:guardedby mu
	prev []float64 // the image the trainer currently holds
	//toc:guardedby mu
	paramsBuf []float64
	//toc:guardedby mu
	payloadBuf []byte
}

// Join implements the handshake RPC.
func (x *session) Join(args *JoinArgs, reply *JoinReply) error {
	s := x.srv
	if args.NumParams != s.np {
		return fmt.Errorf("dist: trainer model has %d params, server has %d", args.NumParams, s.np)
	}
	if args.NumBatches != s.n {
		return fmt.Errorf("dist: trainer source has %d batches, schedule has %d", args.NumBatches, s.n)
	}
	if want := s.proto.Name(); args.Codec != want {
		return fmt.Errorf("dist: trainer codec %q, server uses %q", args.Codec, want)
	}
	s.mu.Lock()
	if err := s.failed; err != nil {
		s.mu.Unlock()
		return err
	}
	id := s.nextID
	s.nextID++
	s.stats.Joined++
	params := make([]float64, s.np)
	s.m.Params(params)
	version := s.clock
	s.stats.DownBytes += int64(8 * s.np)
	s.stats.DenseDownBytes += int64(8 * s.np)
	s.mu.Unlock()
	s.link.Down(8 * s.np)

	x.mu.Lock()
	x.id = id
	x.down = s.proto.Clone()
	x.prev = append([]float64(nil), params...)
	x.mu.Unlock()

	reply.Trainer = id
	reply.Staleness = s.bound
	reply.Version = version
	reply.Params = params
	return nil
}

// Next implements the position-release RPC: it blocks until a requeued
// position is available, a fresh one is admissible, or the schedule is
// done.
func (x *session) Next(args *NextArgs, reply *NextReply) error {
	s := x.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := s.failed; err != nil {
			return err
		}
		if len(s.requeue) > 0 {
			pos := s.requeue[0]
			s.requeue = s.requeue[1:]
			s.assignLocked(pos, x)
			reply.Pos, reply.Batch = pos, s.batchOfLocked(pos)
			return nil
		}
		if s.finishedLocked() {
			reply.Done = true
			return nil
		}
		if !s.halted && s.nextRelease < s.total && s.admissibleLocked(s.nextRelease) {
			pos := s.nextRelease
			s.nextRelease++
			s.assignLocked(pos, x)
			reply.Pos, reply.Batch = pos, s.batchOfLocked(pos)
			return nil
		}
		s.cond.Wait()
	}
}

// Pull implements the parameter-refresh RPC.
func (x *session) Pull(args *PullArgs, reply *PullReply) error {
	s := x.srv
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.id < 0 {
		return fmt.Errorf("dist: Pull before Join")
	}
	s.mu.Lock()
	if err := s.failed; err != nil {
		s.mu.Unlock()
		return err
	}
	if len(x.paramsBuf) != s.np {
		x.paramsBuf = make([]float64, s.np)
	}
	s.m.Params(x.paramsBuf)
	version := s.clock
	s.stats.Pulls++
	s.mu.Unlock()

	x.payloadBuf = x.down.EncodeSnap(x.paramsBuf, x.prev, x.payloadBuf[:0])
	payload := x.payloadBuf

	s.mu.Lock()
	s.stats.DownBytes += int64(len(payload))
	s.stats.DenseDownBytes += int64(8 * s.np)
	s.mu.Unlock()
	s.link.Down(len(payload))

	reply.Version = version
	// The buffer is reused only after the client's next call, which it
	// cannot issue before reading this reply.
	reply.Payload = payload
	return nil
}

// Push implements the gradient-submission RPC.
func (x *session) Push(args *PushArgs, reply *PushReply) error {
	s := x.srv
	s.link.Up(len(args.Payload))
	// Decode outside the server lock: GradCodec decode methods are
	// stateless, so the shared prototype serves every session.
	grad := s.getGradBuf()
	if err := s.proto.DecodeGrad(args.Payload, grad); err != nil {
		err = fmt.Errorf("dist: push from trainer %d: %w", args.Trainer, err)
		s.fail(err)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Pushes++
	s.stats.UpBytes += int64(len(args.Payload))
	s.stats.DenseUpBytes += int64(8 * s.np)
	s.unassignLocked(args.Pos, x)
	if args.Pos < s.clock {
		// Already applied: a crash-requeued duplicate finished twice.
		s.stats.Duplicates++
		s.putGradBufLocked(grad)
		reply.Clock = s.clock
		return nil
	}
	if stale := args.Pos - args.Version; s.bound >= 0 && stale > int64(s.bound) {
		s.stats.Rejected++
		s.putGradBufLocked(grad)
		// The position stays this trainer's: the reply tells it to pull
		// fresh parameters and recompute, and re-recording the
		// assignment keeps the position recoverable if it crashes
		// mid-recompute.
		s.assignLocked(args.Pos, x)
		reply.Rejected = true
		reply.Clock = s.clock
		return nil
	} else if _, dup := s.pending[args.Pos]; dup {
		s.stats.Duplicates++
		s.putGradBufLocked(grad)
		reply.Clock = s.clock
		return nil
	} else {
		s.pending[args.Pos] = pendingGrad{grad: grad, loss: args.Loss, stale: stale}
	}
	s.drainLocked()
	reply.Clock = s.clock
	return nil
}

// Bye implements the clean-departure RPC.
func (x *session) Bye(args *ByeArgs, reply *ByeReply) error {
	s := x.srv
	x.mu.Lock()
	x.left = true
	x.mu.Unlock()
	s.mu.Lock()
	s.stats.Left++
	s.mu.Unlock()
	return nil
}
