package dist

import (
	"fmt"
	"io"
	"net/rpc"

	"toc/internal/faultpoint"
	"toc/internal/ml"
)

// TrainerConfig sizes one trainer process.
type TrainerConfig struct {
	// Codec must match the server's spec; nil is the dense baseline.
	Codec GradCodec
	// PullSlack is a test-only knob: the trainer tolerates a cached
	// snapshot up to PullSlack updates staler than the bound before
	// refreshing, deliberately pushing gradients the server must
	// reject — the distributed mirror of the async engine's
	// releaseSlack, exercising the reject-recompute path on demand.
	PullSlack int
}

// TrainerStats counts one trainer's run; read it after Run returns.
type TrainerStats struct {
	// Steps counts assigned positions computed (including recomputes).
	Steps int64
	// Recomputes counts server rejections this trainer recovered from.
	Recomputes int64
	// Pulls counts parameter refreshes.
	Pulls int64
	// UpBytes/DownBytes are payload bytes from this trainer's view
	// (excluding the bootstrap image).
	UpBytes   int64
	DownBytes int64
}

// Trainer is one worker process of a distributed run: it owns a local
// model replica (shape-identical to the server's), a batch source
// serving the shared schedule, and the uplink half of the codec. It is
// single-goroutine; run one Trainer per connection.
type Trainer struct {
	c     *rpc.Client
	m     ml.SnapshotModel
	src   ml.BatchSource
	codec GradCodec
	slack int

	id      int
	bound   int
	version int64
	params  []float64
	grad    []float64
	payload []byte
	stats   TrainerStats
}

// NewTrainer wraps a connection to a Server. m must have the server
// model's parameter count; src must serve the schedule's batch count.
func NewTrainer(conn io.ReadWriteCloser, m ml.SnapshotModel, src ml.BatchSource, cfg TrainerConfig) *Trainer {
	codec := cfg.Codec
	if codec == nil {
		codec = &Dense{}
	}
	return &Trainer{c: rpc.NewClient(conn), m: m, src: src, codec: codec, slack: cfg.PullSlack, id: -1}
}

// Stats returns the trainer's counters; call it after Run returns.
func (t *Trainer) Stats() TrainerStats { return t.stats }

// Run joins the server and computes positions until the schedule is
// done. It returns nil on a clean finish; a returned error means this
// trainer is dead (the server requeues its in-flight work for the
// survivors).
func (t *Trainer) Run() error {
	defer t.c.Close()
	np := t.m.NumParams()
	var jr JoinReply
	err := t.c.Call("PS.Join", &JoinArgs{
		Codec: t.codec.Name(), NumParams: np, NumBatches: t.src.NumBatches(),
	}, &jr)
	if err != nil {
		return err
	}
	if len(jr.Params) != np {
		return fmt.Errorf("dist: join image has %d params, model has %d", len(jr.Params), np)
	}
	t.id, t.bound, t.version = jr.Trainer, jr.Staleness, jr.Version
	t.params = jr.Params
	t.m.SetParams(t.params)
	t.grad = make([]float64, np)

	for {
		var nr NextReply
		if err := t.c.Call("PS.Next", &NextArgs{Trainer: t.id}, &nr); err != nil {
			return err
		}
		if nr.Done {
			var br ByeReply
			// The run is complete either way; a lost Bye only miscounts
			// a clean exit as a crash with nothing left to requeue.
			_ = t.c.Call("PS.Bye", &ByeArgs{Trainer: t.id}, &br)
			return nil
		}
		// The crash-injection point sits after the assignment, so an
		// injected death always leaves a position for the server to
		// requeue — what the CI crash run grep-gates.
		if err := faultpoint.Err("dist.trainer.compute"); err != nil {
			return err
		}
		if t.stalePull(nr.Pos) {
			if err := t.pull(); err != nil {
				return err
			}
		}
		loss := t.compute(nr.Batch)
		var pr PushReply
		if err := t.push(nr.Pos, loss, &pr); err != nil {
			return err
		}
		if pr.Rejected {
			// Reject-recompute: credit the refused payload back to the
			// residual, refresh to a version the bound admits (a fresh
			// pull's version is at most pos behind — guaranteed
			// admissible), and recompute.
			t.stats.Recomputes++
			if err := t.codec.ReturnGrad(t.payload); err != nil {
				return err
			}
			if err := t.pull(); err != nil {
				return err
			}
			loss = t.compute(nr.Batch)
			if err := t.push(nr.Pos, loss, &pr); err != nil {
				return err
			}
			if pr.Rejected {
				return fmt.Errorf("dist: position %d rejected after a fresh pull (version %d, clock %d)", nr.Pos, t.version, pr.Clock)
			}
		}
	}
}

// stalePull decides whether the cached image is too old to compute pos
// against. With slack 0 a pull happens whenever admission is not
// guaranteed, so a healthy trainer is never rejected; slack > 0
// deliberately under-pulls.
func (t *Trainer) stalePull(pos int64) bool {
	if t.bound < 0 {
		// Unbounded staleness: refresh every step anyway — a free-running
		// trainer that never pulled would train on frozen parameters.
		return true
	}
	return pos-t.version > int64(t.bound)+int64(t.slack)
}

// compute evaluates one mini-batch gradient at the current replica.
func (t *Trainer) compute(batch int) float64 {
	x, y := t.src.Batch(batch)
	t.stats.Steps++
	return t.m.Grad(x, y, t.grad)
}

// push encodes and submits the gradient for pos.
func (t *Trainer) push(pos int64, loss float64, pr *PushReply) error {
	// Zero the reply: gob omits zero-valued fields, so a reused reply
	// struct would keep a previous push's Rejected=true.
	*pr = PushReply{}
	t.payload = t.codec.EncodeGrad(t.grad, t.payload[:0])
	err := t.c.Call("PS.Push", &PushArgs{
		Trainer: t.id, Pos: pos, Version: t.version, Loss: loss, Payload: t.payload,
	}, pr)
	if err != nil {
		return err
	}
	t.stats.UpBytes += int64(len(t.payload))
	return nil
}

// pull refreshes the local replica to the server's current version.
func (t *Trainer) pull() error {
	var pr PullReply
	if err := t.c.Call("PS.Pull", &PullArgs{Trainer: t.id}, &pr); err != nil {
		return err
	}
	if err := t.codec.DecodeSnap(pr.Payload, t.params); err != nil {
		return err
	}
	t.version = pr.Version
	t.m.SetParams(t.params)
	t.stats.Pulls++
	t.stats.DownBytes += int64(len(pr.Payload))
	return nil
}
