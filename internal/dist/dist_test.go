package dist

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"

	"toc/internal/checkpoint"
	"toc/internal/data"
	"toc/internal/engine"
	"toc/internal/faultpoint"
	"toc/internal/formats"
	"toc/internal/ml"
)

func testSource(t testing.TB, name string, rows int) (*data.Dataset, *ml.MemorySource) {
	t.Helper()
	d, err := data.Generate(name, rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(2)
	return d, ml.NewMemorySource(d, 50, formats.MustGet("TOC"))
}

func newSnapshotModel(t testing.TB, name string, d *data.Dataset, seed int64) ml.SnapshotModel {
	t.Helper()
	m, err := ml.NewModel(name, d.X.Cols(), d.Classes, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := m.(ml.SnapshotModel)
	if !ok {
		t.Fatalf("model %q (%T) does not implement SnapshotModel", name, m)
	}
	return sm
}

func paramsOf(m ml.SnapshotModel) []float64 {
	out := make([]float64, m.NumParams())
	m.Params(out)
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// runCluster wires n trainers to srv over in-process pipes, runs the
// schedule to completion, and returns the result, the server error, the
// per-trainer Run errors, and the trainers.
func runCluster(t *testing.T, srv *Server, n int, mk func(i int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig)) (*ml.TrainResult, error, []error, []*Trainer) {
	t.Helper()
	trainers := make([]*Trainer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		m, src, cfg := mk(i)
		client, server := net.Pipe()
		go srv.ServeConn(server)
		trainers[i] = NewTrainer(client, m, src, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = trainers[i].Run()
		}(i)
	}
	res, err := srv.Wait()
	wg.Wait()
	return res, err, errs, trainers
}

// The tentpole identity contract: one trainer, dense codec, staleness 0
// walks the local async engine's serial trajectory bitwise — parameters,
// per-step loss log, and epoch losses.
func TestSingleTrainerDenseMatchesAsyncBitwise(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		d, src := testSource(t, "mnist", 400)

		var asyncSteps []float64
		a := engine.NewAsync(engine.AsyncConfig{
			Workers: 1, Staleness: 0, Seed: 11, Shuffle: shuffle,
			OnStep: func(step int64, loss float64) { asyncSteps = append(asyncSteps, loss) },
		})
		am := newSnapshotModel(t, "lr", d, 13)
		resA, err := a.Train(am, src, 3, 0.2, nil)
		if err != nil {
			t.Fatal(err)
		}

		var distSteps []float64
		sm := newSnapshotModel(t, "lr", d, 13)
		srv, err := NewServer(ServerConfig{
			Epochs: 3, NumBatches: src.NumBatches(), LR: 0.2,
			Seed: 11, Shuffle: shuffle, Staleness: 0,
			OnStep: func(step int64, loss float64) { distSteps = append(distSteps, loss) },
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		resD, werr, errs, _ := runCluster(t, srv, 1, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
			return newSnapshotModel(t, "lr", d, 13), src, TrainerConfig{}
		})
		if werr != nil {
			t.Fatalf("shuffle=%v: %v", shuffle, werr)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("shuffle=%v: trainer %d: %v", shuffle, i, e)
			}
		}
		if diff := maxAbsDiff(paramsOf(am), paramsOf(sm)); diff != 0 {
			t.Errorf("shuffle=%v: params diverge from async by %g (want bitwise identity)", shuffle, diff)
		}
		if len(distSteps) != len(asyncSteps) {
			t.Fatalf("shuffle=%v: %d dist steps, async logged %d", shuffle, len(distSteps), len(asyncSteps))
		}
		for i := range asyncSteps {
			if math.Float64bits(distSteps[i]) != math.Float64bits(asyncSteps[i]) {
				t.Fatalf("shuffle=%v: step %d loss %v != async %v (want bitwise identity)",
					shuffle, i, distSteps[i], asyncSteps[i])
			}
		}
		for e := range resA.EpochLoss {
			if math.Float64bits(resA.EpochLoss[e]) != math.Float64bits(resD.EpochLoss[e]) {
				t.Errorf("shuffle=%v: epoch %d loss %v != async %v (want bitwise identity)",
					shuffle, e, resD.EpochLoss[e], resA.EpochLoss[e])
			}
		}
		st := srv.Stats()
		if want := int64(3 * src.NumBatches()); st.Updates != want {
			t.Errorf("shuffle=%v: %d updates, want %d", shuffle, st.Updates, want)
		}
		if st.MaxStaleness != 0 {
			t.Errorf("shuffle=%v: max staleness %d under bound 0", shuffle, st.MaxStaleness)
		}
		if st.Rejected != 0 {
			t.Errorf("shuffle=%v: %d rejections with slack 0 (pull policy guarantees admission)", shuffle, st.Rejected)
		}
	}
}

// Multiple trainers under a bounded staleness window: every position
// applies exactly once, no admitted gradient exceeds the bound, and the
// run converges.
func TestMultiTrainerBoundedStaleness(t *testing.T) {
	const bound = 3
	d, src := testSource(t, "census", 500)
	sm := newSnapshotModel(t, "lr", d, 3)
	srv, err := NewServer(ServerConfig{
		Epochs: 3, NumBatches: src.NumBatches(), LR: 0.2, Staleness: bound,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	res, werr, errs, _ := runCluster(t, srv, 4, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
		return newSnapshotModel(t, "lr", d, 3), src, TrainerConfig{}
	})
	if werr != nil {
		t.Fatal(werr)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("trainer %d: %v", i, e)
		}
	}
	st := srv.Stats()
	if want := int64(3 * src.NumBatches()); st.Updates != want {
		t.Errorf("%d updates, want %d", st.Updates, want)
	}
	if st.MaxStaleness > bound {
		t.Errorf("max staleness %d exceeds bound %d", st.MaxStaleness, bound)
	}
	if st.Joined != 4 || st.Left != 4 || st.Disconnects != 0 {
		t.Errorf("membership joined=%d left=%d disconnects=%d, want 4/4/0", st.Joined, st.Left, st.Disconnects)
	}
	if len(res.EpochLoss) != 3 || !(res.EpochLoss[2] < res.EpochLoss[0]) {
		t.Errorf("epoch losses %v do not decrease", res.EpochLoss)
	}
}

// PullSlack makes a trainer push snapshots the bound forbids, forcing
// the server's reject path; the trainer recomputes against a fresh pull
// and the run still applies every position exactly once.
func TestRejectRecompute(t *testing.T) {
	const bound = 1
	d, src := testSource(t, "census", 400)
	sm := newSnapshotModel(t, "lr", d, 3)
	srv, err := NewServer(ServerConfig{
		Epochs: 2, NumBatches: src.NumBatches(), LR: 0.2, Staleness: bound,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	_, werr, errs, trainers := runCluster(t, srv, 1, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
		return newSnapshotModel(t, "lr", d, 3), src, TrainerConfig{PullSlack: 2}
	})
	if werr != nil {
		t.Fatal(werr)
	}
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	st := srv.Stats()
	if st.Rejected == 0 {
		t.Error("no rejections despite PullSlack over-holding stale snapshots")
	}
	if st.MaxStaleness > bound {
		t.Errorf("max admitted staleness %d exceeds bound %d", st.MaxStaleness, bound)
	}
	if want := int64(2 * src.NumBatches()); st.Updates != want {
		t.Errorf("%d updates, want %d", st.Updates, want)
	}
	if ts := trainers[0].Stats(); ts.Recomputes != st.Rejected {
		t.Errorf("trainer recomputed %d, server rejected %d", ts.Recomputes, st.Rejected)
	}
}

// A trainer that dies mid-run (injected) must not sink the run: the
// server requeues its in-flight position and the surviving trainer
// finishes the whole schedule.
func TestTrainerCrashReassignment(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.ArmError("dist.trainer.compute", 5)
	d, src := testSource(t, "census", 400)
	sm := newSnapshotModel(t, "lr", d, 3)
	srv, err := NewServer(ServerConfig{
		Epochs: 2, NumBatches: src.NumBatches(), LR: 0.2, Staleness: 4,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	_, werr, errs, _ := runCluster(t, srv, 2, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
		return newSnapshotModel(t, "lr", d, 3), src, TrainerConfig{}
	})
	if werr != nil {
		t.Fatal(werr)
	}
	crashed := 0
	for _, e := range errs {
		if e != nil {
			var ferr *faultpoint.Error
			if !errors.As(e, &ferr) {
				t.Fatalf("trainer error %v is not the injected fault", e)
			}
			crashed++
		}
	}
	if crashed != 1 {
		t.Fatalf("%d trainers crashed, armed exactly one", crashed)
	}
	st := srv.Stats()
	if want := int64(2 * src.NumBatches()); st.Updates != want {
		t.Errorf("%d updates after crash, want %d", st.Updates, want)
	}
	if st.Disconnects != 1 {
		t.Errorf("%d disconnects, want 1", st.Disconnects)
	}
	if st.Reassigned == 0 {
		t.Error("crash left no reassigned positions; the injection point sits after assignment")
	}
}

// The Join handshake rejects a codec mismatch instead of silently
// decoding one codec's payloads with another.
func TestJoinRejectsCodecMismatch(t *testing.T) {
	d, src := testSource(t, "census", 200)
	sm := newSnapshotModel(t, "lr", d, 3)
	codec, err := ParseCodec("topk:0.05", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Epochs: 1, NumBatches: src.NumBatches(), LR: 0.2, Codec: codec,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	tr := NewTrainer(client, newSnapshotModel(t, "lr", d, 3), src, TrainerConfig{})
	if err := tr.Run(); err == nil {
		t.Fatal("dense trainer joined a topk server")
	}
	srv.Halt()
	if _, err := srv.Wait(); !errors.Is(err, engine.ErrHalted) {
		t.Fatalf("Wait after halt: %v, want ErrHalted", err)
	}
}

// Checkpoint/resume: a dense staleness-0 run interrupted mid-schedule
// and resumed from its latest checkpoint finishes with bitwise the same
// parameters as an uninterrupted run.
func TestCheckpointResumeBitwise(t *testing.T) {
	d, src := testSource(t, "mnist", 300)
	n := src.NumBatches()
	runOne := func(srv *Server) error {
		t.Helper()
		_, werr, errs, _ := runCluster(t, srv, 1, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
			return newSnapshotModel(t, "lr", d, 13), src, TrainerConfig{}
		})
		for i, e := range errs {
			if e != nil {
				t.Fatalf("trainer %d: %v", i, e)
			}
		}
		return werr
	}

	full := newSnapshotModel(t, "lr", d, 13)
	srv, err := NewServer(ServerConfig{Epochs: 3, NumBatches: n, LR: 0.2, Staleness: 0}, full)
	if err != nil {
		t.Fatal(err)
	}
	if werr := runOne(srv); werr != nil {
		t.Fatal(werr)
	}

	dir := t.TempDir()
	ck, err := checkpoint.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := newSnapshotModel(t, "lr", d, 13)
	var srv2 *Server
	halt := make(chan struct{})
	var once sync.Once
	srv2, err = NewServer(ServerConfig{
		Epochs: 3, NumBatches: n, LR: 0.2, Staleness: 0,
		Checkpoint: ck, CheckpointEvery: 5,
		OnStep: func(step int64, loss float64) {
			if step >= int64(3*n)/2 {
				once.Do(func() { close(halt) })
			}
		},
	}, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	go func() { <-halt; srv2.Halt() }()
	// Halt races the (fast, in-process) schedule: the run may drain fully
	// before it lands. Either way the final synchronous checkpoint is the
	// resume point, so both outcomes exercise the path under test.
	if werr := runOne(srv2); werr != nil && !errors.Is(werr, engine.ErrHalted) {
		t.Fatal(werr)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != checkpoint.KindDist {
		t.Fatalf("checkpoint kind %v, want dist", st.Kind)
	}
	resumed := newSnapshotModel(t, "lr", d, 13)
	srv3, err := NewServer(ServerConfig{
		Epochs: 3, NumBatches: n, LR: 0.2, Staleness: 0, Resume: st,
	}, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if werr := runOne(srv3); werr != nil {
		t.Fatal(werr)
	}
	if diff := maxAbsDiff(paramsOf(full), paramsOf(resumed)); diff != 0 {
		t.Errorf("resumed params diverge by %g (want bitwise identity)", diff)
	}
}

// Resume validation refuses configuration drift.
func TestResumeValidation(t *testing.T) {
	good := &checkpoint.State{
		Kind: checkpoint.KindDist, Seed: 1, LR: 0.2, Staleness: 2,
		NumBatches: 8, Clock: 8, Epoch: 1,
		EpochLoss: []float64{0.5}, Params: make([]float64, 4),
	}
	base := ServerConfig{Epochs: 3, NumBatches: 8, LR: 0.2, Seed: 1, Staleness: 2}
	if _, err := NewServer(withResume(base, good), &stubModel{np: 4}); err != nil {
		t.Fatalf("valid resume rejected: %v", err)
	}
	bad := []func(s *checkpoint.State){
		func(s *checkpoint.State) { s.Kind = checkpoint.KindAsync },
		func(s *checkpoint.State) { s.Seed = 99 },
		func(s *checkpoint.State) { s.LR = 0.3 },
		func(s *checkpoint.State) { s.Staleness = 5 },
		func(s *checkpoint.State) { s.NumBatches = 9 },
		func(s *checkpoint.State) { s.Params = make([]float64, 5) },
		func(s *checkpoint.State) { s.Clock = 999 },
		func(s *checkpoint.State) { s.EpochLoss = nil },
	}
	for i, mutate := range bad {
		st := *good
		st.EpochLoss = append([]float64(nil), good.EpochLoss...)
		st.Params = append([]float64(nil), good.Params...)
		mutate(&st)
		if _, err := NewServer(withResume(base, &st), &stubModel{np: 4}); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func withResume(cfg ServerConfig, st *checkpoint.State) ServerConfig {
	cfg.Resume = st
	return cfg
}

// stubModel is a minimal SnapshotModel for validation-only tests.
type stubModel struct {
	np     int
	params []float64
}

func (m *stubModel) NumParams() int        { return m.np }
func (m *stubModel) Params(out []float64)  { copy(out, m.params) }
func (m *stubModel) SetParams(p []float64) { m.params = append(m.params[:0], p...) }
func (m *stubModel) Clone() ml.SnapshotModel {
	return &stubModel{np: m.np, params: append([]float64(nil), m.params...)}
}
func (m *stubModel) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	for i := range out {
		out[i] = 0
	}
	return 0
}
func (m *stubModel) ApplyGrad(g []float64, lr float64) {}
func (m *stubModel) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	return 0
}
func (m *stubModel) Loss(x formats.CompressedMatrix, y []float64) float64 { return 0 }
func (m *stubModel) Predict(x formats.CompressedMatrix) []float64         { return nil }

// Top-k at 1% density still converges close to dense while moving a
// small fraction of the bytes — the acceptance criterion the netscale
// regime gates in CI. Error-feedback coverage scales with steps×ratio,
// so the schedule must be long enough for the residual tail to deliver:
// at 1280 steps the gap is ~0.3%; at 160 it would still be ~20%.
func TestTopKConvergenceAndWireRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a long schedule for error feedback to drain")
	}
	d, src := testSource(t, "mnist", 4000)
	run := func(spec string) (float64, ServerStats) {
		var codec GradCodec
		if spec != "" {
			var err error
			codec, err = ParseCodec(spec, 7)
			if err != nil {
				t.Fatal(err)
			}
		}
		sm := newSnapshotModel(t, "lr", d, 13)
		srv, err := NewServer(ServerConfig{
			Epochs: 16, NumBatches: src.NumBatches(), LR: 0.2, Staleness: 2, Codec: codec,
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		res, werr, errs, _ := runCluster(t, srv, 2, func(int) (ml.SnapshotModel, ml.BatchSource, TrainerConfig) {
			var c GradCodec
			if codec != nil {
				c = codec.Clone()
			}
			return newSnapshotModel(t, "lr", d, 13), src, TrainerConfig{Codec: c}
		})
		if werr != nil {
			t.Fatal(werr)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("trainer %d: %v", i, e)
			}
		}
		return res.EpochLoss[len(res.EpochLoss)-1], srv.Stats()
	}
	denseLoss, _ := run("")
	topkLoss, st := run("topk:0.01")
	if ratio := st.WireRatio(); ratio > 0.05 {
		t.Errorf("topk:0.01 wire ratio %.4f, want <= 0.05 of dense bytes", ratio)
	}
	if delta := math.Abs(topkLoss-denseLoss) / denseLoss; delta > 0.02 {
		t.Errorf("topk final loss %.6f vs dense %.6f: delta %.2f%% exceeds 2%%", topkLoss, denseLoss, 100*delta)
	}
}
