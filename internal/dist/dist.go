package dist

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/rpc"
	"sync"
	"time"

	"toc/internal/checkpoint"
	"toc/internal/engine"
	"toc/internal/ml"
)

// ServerConfig sizes a parameter-server run. The server owns the model,
// the update clock and the visit schedule; trainers own the data (every
// trainer must serve the same NumBatches batch schedule).
type ServerConfig struct {
	// Epochs and NumBatches define the schedule: Epochs×NumBatches
	// global positions, applied in order.
	Epochs     int
	NumBatches int
	// LR is the learning rate applied per admitted gradient.
	LR float64
	// Seed drives the per-epoch visit permutation when Shuffle is set —
	// the same engine.EpochPerm schedule the local engines walk.
	Seed    int64
	Shuffle bool
	// Staleness bounds how many parameter updates a pushed gradient's
	// snapshot version may trail the server clock; 0 reproduces the
	// serial trajectory (with one trainer and the dense codec,
	// bitwise), negative free-runs Hogwild-style.
	Staleness int
	// Codec compresses gradient traffic; nil is the dense baseline.
	// The server clones it once per trainer for downlink state.
	Codec GradCodec
	// Link, when non-nil, meters every payload through the simulated
	// NIC, so compression shows up as wall-clock.
	Link *Link
	// Checkpoint, CheckpointEvery and Resume mirror the local engines:
	// snapshots are taken between applied updates (the server model is
	// only mutated under its lock) and a resume continues the schedule
	// at the checkpointed clock. Codec residual state is deliberately
	// not checkpointed — error feedback makes a dropped residual an
	// accuracy rounding, never corruption — so only dense (or
	// staleness-0 single-trainer) resumes are bitwise.
	Checkpoint      *checkpoint.Writer
	CheckpointEvery int
	Resume          *checkpoint.State
	// OnStep observes every applied update with its global position and
	// admitted mini-batch loss, under the server lock: it must not call
	// back into the server. The identity tests compare these sequences
	// bitwise against the local async engine's.
	OnStep func(step int64, loss float64)
}

// ServerStats counts one distributed run.
type ServerStats struct {
	// Updates counts applied gradients; Rejected counts pushes refused
	// for exceeding the staleness bound (the trainer recomputes), and
	// Duplicates counts pushes for positions already applied or already
	// pending (crash-reassignment races, dropped idempotently).
	Updates    int64
	Rejected   int64
	Duplicates int64
	// MaxStaleness and StaleSum describe the admitted updates'
	// version lag.
	MaxStaleness int64
	StaleSum     int64
	// Joined/Left/Disconnects/Reassigned: trainer membership. A
	// disconnect without Bye is a crash; its in-flight positions are
	// requeued (Reassigned) to surviving trainers.
	Joined      int64
	Left        int64
	Disconnects int64
	Reassigned  int64
	Pulls       int64
	Pushes      int64
	// Wire accounting: payload bytes actually moved per direction, and
	// what the dense baseline (8 bytes/coordinate per message) would
	// have moved for the same message sequence.
	UpBytes        int64
	DownBytes      int64
	DenseUpBytes   int64
	DenseDownBytes int64
}

// MeanStaleness is the average version lag of admitted updates.
func (s ServerStats) MeanStaleness() float64 {
	if s.Updates == 0 {
		return 0
	}
	return float64(s.StaleSum) / float64(s.Updates)
}

// WireRatio is payload bytes moved over what dense would have moved —
// the compression win the netscale regime gates.
func (s ServerStats) WireRatio() float64 {
	dense := s.DenseUpBytes + s.DenseDownBytes
	if dense == 0 {
		return 1
	}
	return float64(s.UpBytes+s.DownBytes) / float64(dense)
}

// Server is the parameter server: it owns the model and applies pushed
// gradients strictly in position order (a bounded reorder buffer under
// one lock), which is what makes the distributed trajectory a function
// of the schedule alone — never of which trainer raced which.
type Server struct {
	epochs  int
	n       int
	total   int64
	lr      float64
	seed    int64
	shuffle bool
	bound   int
	proto   GradCodec
	link    *Link
	ck      *checkpoint.Writer
	ckEvery int
	onStep  func(step int64, loss float64)

	m  ml.SnapshotModel
	np int

	mu   sync.Mutex
	cond *sync.Cond
	//toc:guardedby mu
	clock int64 // applied updates = next position to apply
	//toc:guardedby mu
	nextRelease int64 // next never-assigned position
	//toc:guardedby mu
	halted bool
	//toc:guardedby mu
	failed error // first fatal error; fails the run loudly
	//toc:guardedby mu
	finalized bool
	//toc:guardedby mu
	finalErr error // final synchronous checkpoint failure
	//toc:guardedby mu
	requeue []int64 // crashed trainers' positions awaiting reassignment
	//toc:guardedby mu
	assigned []assignment // released positions and who computes them
	//toc:guardedby mu
	pending map[int64]pendingGrad // admitted, awaiting in-order apply
	//toc:guardedby mu
	perms map[int][]int // cached epoch permutations (Shuffle only)
	//toc:guardedby mu
	nextID int
	//toc:guardedby mu
	stats ServerStats
	//toc:guardedby mu
	epochLossAcc float64
	//toc:guardedby mu
	res *ml.TrainResult
	//toc:guardedby mu
	start time.Time
	//toc:guardedby mu
	epochStart time.Time
	//toc:guardedby mu
	sinceCkpt int
	//toc:guardedby mu
	gradFree [][]float64 // decoded-gradient buffer pool
}

type assignment struct {
	pos  int64
	sess *session
}

type pendingGrad struct {
	grad  []float64
	loss  float64
	stale int64
}

// NewServer builds a parameter server around m (which it owns for the
// duration of the run — read the final parameters from m after Wait).
func NewServer(cfg ServerConfig, m ml.SnapshotModel) (*Server, error) {
	if cfg.Epochs < 0 || cfg.NumBatches <= 0 {
		return nil, fmt.Errorf("dist: need Epochs >= 0 and NumBatches > 0, got %d and %d", cfg.Epochs, cfg.NumBatches)
	}
	proto := cfg.Codec
	if proto == nil {
		proto = &Dense{}
	}
	bound := cfg.Staleness
	if bound < 0 {
		bound = -1
	}
	s := &Server{
		epochs: cfg.Epochs, n: cfg.NumBatches,
		total: int64(cfg.Epochs) * int64(cfg.NumBatches),
		lr:    cfg.LR, seed: cfg.Seed, shuffle: cfg.Shuffle, bound: bound,
		proto: proto, link: cfg.Link,
		ck: cfg.Checkpoint, ckEvery: cfg.CheckpointEvery, onStep: cfg.OnStep,
		m: m, np: m.NumParams(),
		pending: map[int64]pendingGrad{},
		res:     &ml.TrainResult{},
	}
	if cfg.Shuffle {
		s.perms = map[int][]int{}
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Resume != nil {
		if err := s.validateResume(cfg.Resume); err != nil {
			return nil, err
		}
		m.SetParams(cfg.Resume.Params)
		s.clock = cfg.Resume.Clock
		s.nextRelease = cfg.Resume.Clock
		s.epochLossAcc = cfg.Resume.PartialLoss
		s.res.EpochLoss = append([]float64(nil), cfg.Resume.EpochLoss...)
		// Wall-clock of pre-crash epochs is gone; zero placeholders keep
		// EpochTime aligned with EpochLoss, as the local engines do.
		s.res.EpochTime = make([]time.Duration, len(cfg.Resume.EpochLoss))
	}
	return s, nil
}

// validateResume rejects a checkpoint a run with this configuration did
// not take — resuming it would silently fork the trajectory.
func (s *Server) validateResume(st *checkpoint.State) error {
	switch {
	case st.Kind != checkpoint.KindDist:
		return fmt.Errorf("dist: checkpoint kind %v, want %v", st.Kind, checkpoint.KindDist)
	case st.NumBatches != s.n:
		return fmt.Errorf("dist: checkpoint has %d batches, schedule has %d", st.NumBatches, s.n)
	case st.Seed != s.seed:
		return fmt.Errorf("dist: checkpoint seed %d, server uses %d", st.Seed, s.seed)
	case st.Shuffle != s.shuffle:
		return fmt.Errorf("dist: checkpoint shuffle=%v, server uses %v", st.Shuffle, s.shuffle)
	case st.Staleness != s.bound:
		return fmt.Errorf("dist: checkpoint staleness %d, server uses %d", st.Staleness, s.bound)
	case math.Float64bits(st.LR) != math.Float64bits(s.lr):
		return fmt.Errorf("dist: checkpoint learning rate %v, run uses %v", st.LR, s.lr)
	case len(st.Params) != s.np:
		return fmt.Errorf("dist: checkpoint has %d params, model has %d", len(st.Params), s.np)
	case st.Clock < 0 || st.Clock > s.total:
		return fmt.Errorf("dist: checkpoint clock %d out of [0, %d]", st.Clock, s.total)
	case len(st.EpochLoss) != int(st.Clock/int64(s.n)):
		return fmt.Errorf("dist: checkpoint has %d epoch losses at clock %d", len(st.EpochLoss), st.Clock)
	}
	return nil
}

// Serve accepts trainer connections until the listener closes. Run it
// on its own goroutine; close the listener after Wait returns.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn runs one trainer's RPC session to completion; it returns
// when the peer disconnects. A disconnect without a clean Bye is
// treated as a trainer crash: the session's in-flight positions are
// requeued for the surviving trainers, so the run still completes —
// node failure is worker failure over a wire.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	sess := &session{srv: s, id: -1}
	rs := rpc.NewServer()
	// RegisterName (not Register) because session is deliberately
	// unexported: the RPC surface is the five methods below, nothing
	// else.
	if err := rs.RegisterName("PS", sess); err != nil {
		panic(fmt.Sprintf("dist: register session: %v", err))
	}
	rs.ServeConn(conn)
	s.sessionGone(sess)
}

// sessionGone requeues a crashed trainer's in-flight positions.
func (s *Server) sessionGone(sess *session) {
	sess.mu.Lock()
	id, left := sess.id, sess.left
	sess.mu.Unlock()
	if id < 0 || left {
		return // never joined, or said goodbye cleanly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Disconnects++
	kept := s.assigned[:0]
	for _, a := range s.assigned {
		if a.sess == sess {
			s.requeue = append(s.requeue, a.pos)
			s.stats.Reassigned++
		} else {
			kept = append(kept, a)
		}
	}
	s.assigned = kept
	s.cond.Broadcast()
}

// Halt asks the run to stop: no new positions are released, in-flight
// and requeued ones still complete, a final checkpoint is written
// synchronously, and Wait returns engine.ErrHalted. Safe from any
// goroutine, e.g. a signal handler.
func (s *Server) Halt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.halted = true
	s.drainLocked() // the schedule may already be fully applied
	s.cond.Broadcast()
}

// Wait blocks until the schedule completes (or Halt drains, or the run
// fails) and returns the result. Read the final parameters from the
// model passed to NewServer.
func (s *Server) Wait() (*ml.TrainResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.failed == nil && !s.finishedLocked() {
		s.cond.Wait()
	}
	if s.failed != nil {
		return s.res, s.failed
	}
	if s.finalErr != nil {
		return s.res, s.finalErr
	}
	if s.halted && s.clock < s.total {
		return s.res, engine.ErrHalted
	}
	return s.res, nil
}

// Stats returns a snapshot of the run counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Clock returns the applied-update count.
func (s *Server) Clock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// targetLocked is the position the run is driving toward: the full
// schedule, or the release frontier once halted.
//
//toc:locked mu
func (s *Server) targetLocked() int64 {
	if s.halted && s.nextRelease < s.total {
		return s.nextRelease
	}
	return s.total
}

//toc:locked mu
func (s *Server) finishedLocked() bool { return s.clock >= s.targetLocked() }

// admissibleLocked reports whether releasing pos now can still yield an
// admissible gradient: a trainer pulling fresh parameters sees at least
// the current clock, so pos is computable within the bound iff
// clock >= pos - bound — the async engine's release gate, carried to
// the wire.
//
//toc:locked mu
func (s *Server) admissibleLocked(pos int64) bool {
	return s.bound < 0 || s.clock >= pos-int64(s.bound)
}

// batchOfLocked maps a global position to its epoch's batch index.
//
//toc:locked mu
func (s *Server) batchOfLocked(pos int64) int {
	i := int(pos % int64(s.n))
	if !s.shuffle {
		return i
	}
	epoch := int(pos / int64(s.n))
	perm, ok := s.perms[epoch]
	if !ok {
		perm = engine.EpochPerm(s.seed, epoch, s.n)
		s.perms[epoch] = perm
	}
	return perm[i]
}

//toc:locked mu
func (s *Server) assignLocked(pos int64, sess *session) {
	s.assigned = append(s.assigned, assignment{pos: pos, sess: sess})
}

//toc:locked mu
func (s *Server) unassignLocked(pos int64, sess *session) {
	for i, a := range s.assigned {
		if a.pos == pos && a.sess == sess {
			last := len(s.assigned) - 1
			s.assigned[i] = s.assigned[last]
			s.assigned = s.assigned[:last]
			return
		}
	}
}

// fail records the first fatal error and wakes everyone.
func (s *Server) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = err
	}
	s.cond.Broadcast()
}

func (s *Server) getGradBuf() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.gradFree); n > 0 {
		b := s.gradFree[n-1]
		s.gradFree = s.gradFree[:n-1]
		return b
	}
	return make([]float64, s.np)
}

//toc:locked mu
func (s *Server) putGradBufLocked(b []float64) {
	s.gradFree = append(s.gradFree, b)
}

// snapshotLocked captures the run between applied updates — the model
// is only ever mutated under mu, so this is a consistent cut.
//
//toc:locked mu
func (s *Server) snapshotLocked() *checkpoint.State {
	params := make([]float64, s.np)
	s.m.Params(params)
	return &checkpoint.State{
		Kind: checkpoint.KindDist, Seed: s.seed, LR: s.lr,
		Shuffle: s.shuffle, Staleness: s.bound, NumBatches: s.n,
		Epoch: int(s.clock / int64(s.n)), Pos: int(s.clock % int64(s.n)),
		Clock: s.clock, PartialLoss: s.epochLossAcc,
		EpochLoss: append([]float64(nil), s.res.EpochLoss...),
		Params:    params,
	}
}

// drainLocked applies every pending gradient whose position is next in
// order, advancing the clock; it is the only place the model mutates.
// Apply order is position order — never push-arrival order — so the
// trajectory is deterministic given the admitted-version schedule.
//
//toc:timing
//toc:locked mu
func (s *Server) drainLocked() {
	for {
		g, ok := s.pending[s.clock]
		if !ok {
			break
		}
		delete(s.pending, s.clock)
		if s.start.IsZero() {
			s.start = time.Now()
		}
		pos := s.clock
		if int(pos%int64(s.n)) == 0 {
			s.epochStart = time.Now()
		}
		s.m.ApplyGrad(g.grad, s.lr)
		s.stats.Updates++
		s.stats.StaleSum += g.stale
		if g.stale > s.stats.MaxStaleness {
			s.stats.MaxStaleness = g.stale
		}
		s.epochLossAcc += g.loss
		if s.onStep != nil {
			s.onStep(pos, g.loss)
		}
		s.clock++
		s.sinceCkpt++
		s.putGradBufLocked(g.grad)
		atBoundary := int(s.clock%int64(s.n)) == 0
		if atBoundary {
			s.res.EpochLoss = append(s.res.EpochLoss, s.epochLossAcc/float64(s.n))
			dt := time.Duration(0)
			if !s.epochStart.IsZero() {
				dt = time.Since(s.epochStart)
			}
			s.res.EpochTime = append(s.res.EpochTime, dt)
			s.epochLossAcc = 0
		}
		if s.ck != nil && s.clock < s.targetLocked() {
			if (s.ckEvery > 0 && s.sinceCkpt >= s.ckEvery) || (s.ckEvery <= 0 && atBoundary) {
				s.ck.SaveAsync(s.snapshotLocked())
				s.sinceCkpt = 0
			}
		}
	}
	if s.finishedLocked() && !s.finalized {
		s.finalized = true
		if !s.start.IsZero() {
			s.res.Total = time.Since(s.start)
		}
		if s.ck != nil {
			// Final checkpoint is synchronous, so it is durable before
			// Wait returns — the Halt contract the local engines keep.
			s.finalErr = s.ck.Save(s.snapshotLocked())
		}
	}
	s.cond.Broadcast()
}
