package dist

import (
	"sync"
	"time"
)

// Link is a simulated network interface: one token bucket per
// direction, shared by every trainer talking to the server — the
// storage layer's SharedBucket idea (aggregate cap at any queue depth)
// applied to a NIC instead of a spindle. The server reserves uplink
// time for every payload it receives and downlink time for every
// payload it sends, so compressing the traffic shows up directly as
// wall-clock saved, measurable in-process without real network
// hardware. A nil *Link is an unmetered wire.
type Link struct {
	upBps, downBps int64
	up, down       linkBucket
}

// NewLink builds a link with the given per-direction byte rates;
// a rate <= 0 leaves that direction unmetered.
func NewLink(upBps, downBps int64) *Link {
	return &Link{upBps: upBps, downBps: downBps}
}

// NewLinkMbps builds a symmetric link from a megabits-per-second rating
// (the -link-mbps flag); <= 0 returns nil, the unmetered wire.
func NewLinkMbps(mbps float64) *Link {
	if mbps <= 0 {
		return nil
	}
	bps := int64(mbps * 1e6 / 8)
	return NewLink(bps, bps)
}

// Up meters n bytes of trainer→server transfer.
func (l *Link) Up(n int) {
	if l != nil {
		l.up.transfer(int64(n), l.upBps)
	}
}

// Down meters n bytes of server→trainer transfer.
func (l *Link) Down(n int) {
	if l != nil {
		l.down.transfer(int64(n), l.downBps)
	}
}

// linkBucket tracks the virtual completion time of the last admitted
// transfer; a reservation extends it and the caller sleeps until its
// own transfer's virtual completion. Idle periods grant no credit
// (next never falls behind the wall clock), so the cap holds at any
// queue depth — the same contract as storage's shared-bucket disk
// model.
type linkBucket struct {
	mu sync.Mutex
	//toc:guardedby mu
	next time.Time
}

// transfer reserves n bytes at rate bps and sleeps out the pacing
// delay on the caller's goroutine.
//
//toc:timing
func (b *linkBucket) transfer(n, bps int64) {
	if n <= 0 || bps <= 0 {
		return
	}
	b.mu.Lock()
	now := time.Now()
	if b.next.Before(now) {
		b.next = now
	}
	b.next = b.next.Add(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
	d := b.next.Sub(now)
	b.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}
