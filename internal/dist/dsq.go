package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"toc/internal/bitpack"
)

// DSQ is DoubleSqueeze-style error-compensated quantization: every
// payload carries all coordinates of residual+input, each stochastically
// rounded to a signed bits-wide integer against the vector's max-abs
// scale, and the rounding error stays in the residual. "Double" is the
// second compression pass: the server compresses its downlink deltas
// with the same scheme and its own per-trainer residual, so both
// directions are error-compensated. Quantized levels travel bitpacked
// (nibbles at ≤4 bits, width-1 bitpack arrays above); one float64 scale
// per payload.
type DSQ struct {
	bits int
	seed int64

	// rng drives stochastic rounding; seeded, so trajectories are
	// reproducible (detcheck allows seeded streams in this package).
	rng *rand.Rand

	gradRes []float64
	acc     []float64
	q       []uint32
}

// Name implements GradCodec.
func (c *DSQ) Name() string { return fmt.Sprintf("dsq:%d", c.bits) }

// Clone implements GradCodec; the clone replays the same rounding
// stream, which costs nothing in accuracy and keeps runs reproducible.
func (c *DSQ) Clone() GradCodec { return &DSQ{bits: c.bits, seed: c.seed} }

// levels is the positive quantization range: q ∈ [-levels, +levels].
func dsqLevels(bits int) int { return 1<<(bits-1) - 1 }

// encode appends the quantized image of acc and subtracts what it
// carries, leaving acc as the new residual.
func (c *DSQ) encode(acc []float64, dst []byte) []byte {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.seed))
	}
	np := len(acc)
	m := float64(dsqLevels(c.bits))
	scale := 0.0
	for _, v := range acc {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	dst = header(dst, tagDSQ, np)
	dst = append(dst, byte(c.bits))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(scale))
	if cap(c.q) < np {
		c.q = make([]uint32, np)
	}
	q := c.q[:np]
	for i, v := range acc {
		lv := 0.0
		if scale > 0 {
			x := v / scale * m
			lv = math.Floor(x)
			// Stochastic rounding: unbiased, and the rng advances once
			// per coordinate regardless of the draw, so the stream
			// position depends only on how many coordinates were encoded.
			if c.rng.Float64() < x-lv {
				lv++
			}
			if lv > m {
				lv = m
			}
			if lv < -m {
				lv = -m
			}
		}
		q[i] = uint32(int(lv) + dsqLevels(c.bits))
		acc[i] = v - lv/m*scale
	}
	if c.bits <= 4 {
		dst = appendNibbles(dst, q)
	} else {
		dst = bitpack.Pack(q).AppendTo(dst)
	}
	return dst
}

// appendNibbles packs one value per 4-bit nibble, low nibble first.
func appendNibbles(dst []byte, q []uint32) []byte {
	for i := 0; i < len(q); i += 2 {
		b := byte(q[i] & 0xf)
		if i+1 < len(q) {
			b |= byte(q[i+1]&0xf) << 4
		}
		dst = append(dst, b)
	}
	return dst
}

// decodeDSQ parses a quantized payload and calls visit with each
// coordinate's dequantized value, validating lengths before allocating.
func decodeDSQ(payload []byte, np int, visit func(i int, v float64)) error {
	body, err := readHeader(payload, tagDSQ, np)
	if err != nil {
		return err
	}
	if len(body) < 1+8 {
		return fmt.Errorf("dist: dsq payload truncated")
	}
	bits := int(body[0])
	if bits < 2 || bits > 8 {
		return fmt.Errorf("dist: dsq bits %d out of [2, 8]", bits)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(body[1:]))
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return fmt.Errorf("dist: dsq scale %v invalid", scale)
	}
	levels := dsqLevels(bits)
	body = body[9:]
	var get func(i int) uint32
	if bits <= 4 {
		if len(body) != (np+1)/2 {
			return fmt.Errorf("dist: dsq payload has %d level bytes, want %d", len(body), (np+1)/2)
		}
		get = func(i int) uint32 {
			v := uint32(body[i/2])
			if i%2 == 1 {
				v >>= 4
			}
			return v & 0xf
		}
	} else {
		arr, rest, err := bitpack.ReadArray(body)
		if err != nil {
			return fmt.Errorf("dist: dsq levels: %v", err)
		}
		if arr.Len() != np || len(rest) != 0 {
			return fmt.Errorf("dist: dsq payload has %d levels and %d trailing bytes, want %d and 0", arr.Len(), len(rest), np)
		}
		get = arr.Get
	}
	// Validate every level before the visit pass, so a malformed payload
	// mutates nothing.
	for i := 0; i < np; i++ {
		if v := get(i); v > uint32(2*levels) {
			return fmt.Errorf("dist: dsq level %d exceeds %d", v, 2*levels)
		}
	}
	m := float64(levels)
	for i := 0; i < np; i++ {
		visit(i, float64(int(get(i))-levels)/m*scale)
	}
	return nil
}

// EncodeGrad implements GradCodec.
func (c *DSQ) EncodeGrad(grad []float64, dst []byte) []byte {
	res := grow(&c.gradRes, len(grad))
	for i, g := range grad {
		res[i] += g
	}
	return c.encode(res, dst)
}

// ReturnGrad implements GradCodec: re-credit a rejected payload.
func (c *DSQ) ReturnGrad(payload []byte) error {
	if len(c.gradRes) == 0 {
		return fmt.Errorf("dist: ReturnGrad before any EncodeGrad")
	}
	res := c.gradRes
	return decodeDSQ(payload, len(res), func(i int, v float64) { res[i] += v })
}

// DecodeGrad implements GradCodec: dequantize every coordinate.
func (c *DSQ) DecodeGrad(payload []byte, out []float64) error {
	return decodeDSQ(payload, len(out), func(i int, v float64) { out[i] = v })
}

// EncodeSnap implements GradCodec: quantize the delta params − prev and
// advance prev by the carried payload. prev only moves by what was
// delivered, so the quantization error stays in the next round's delta —
// the delta is the error-feedback state; a separate residual would
// double-count it.
func (c *DSQ) EncodeSnap(params, prev []float64, dst []byte) []byte {
	acc := grow(&c.acc, len(params))
	for i := range acc {
		acc[i] = params[i] - prev[i]
	}
	mark := len(dst)
	dst = c.encode(acc, dst)
	if err := c.DecodeSnap(dst[mark:], prev); err != nil {
		// Decoding bytes this codec just encoded cannot fail.
		panic(fmt.Sprintf("dist: dsq self-decode: %v", err))
	}
	return dst
}

// DecodeSnap implements GradCodec: add the carried delta.
func (c *DSQ) DecodeSnap(payload []byte, params []float64) error {
	return decodeDSQ(payload, len(params), func(i int, v float64) { params[i] += v })
}
