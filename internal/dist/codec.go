// Package dist is distributed data-parallel training: N trainer
// processes exchange compressed gradients with a parameter server over
// net/rpc (any io.ReadWriteCloser — TCP in cmd/toctrain, net.Pipe in
// tests), reusing the async engine's versioned-snapshot + bounded-
// staleness protocol as the wire contract. The server owns the model
// and the update clock; trainers pull versioned parameter images,
// compute mini-batch gradients against them, and push the gradients
// back. A push whose snapshot version trails the server clock by more
// than the staleness bound is rejected and recomputed against fresh
// parameters — the same admission rule the local async updater applies,
// carried across the wire.
//
// Gradient traffic is compressed by a GradCodec on both directions:
// dense (the exact baseline — a single trainer at staleness 0 walks the
// serial trajectory bitwise), top-k sparsification with error-feedback
// residuals (ScaleCom-style), and double-pass error-compensated
// quantization (DoubleSqueeze-style, the server compressing its
// downlink deltas per trainer with its own residual). A simulated link
// (the storage layer's SharedBucket token-bucket idea applied to a NIC)
// converts bytes saved into wall-clock saved, so the netscale bench
// regime can gate the compression-ratio × convergence trade-off in CI.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"toc/internal/bitpack"
)

// Payload tags make every codec's wire image self-describing, so a
// payload decoded by the wrong codec (or fuzzed garbage) fails loudly
// instead of scattering noise into the parameters.
const (
	tagDense = 'D'
	tagTopK  = 'K'
	tagDSQ   = 'Q'
)

// GradCodec compresses the two directions of parameter-server traffic.
// Encode methods append to dst and return the extended slice; Decode
// methods validate untrusted wire bytes and never panic on malformed
// input (FuzzGradCodecDecode leans on this).
//
// A codec instance is stateful — error-feedback residuals accumulate
// what past payloads dropped — and is confined to one goroutine: the
// trainer owns its uplink instance, the server owns one downlink clone
// per trainer.
type GradCodec interface {
	// Name is the flag-friendly spec ("dense", "topk:0.01", "dsq:4");
	// ParseCodec(Name(), seed) reconstructs an equivalent codec.
	Name() string

	// EncodeGrad compresses one gradient for the uplink, folding the
	// error-feedback residual in first and retaining whatever the
	// payload drops, so the residual plus everything delivered sums to
	// the exact gradient history.
	EncodeGrad(grad []float64, dst []byte) []byte
	// ReturnGrad folds an encoded-but-never-applied payload back into
	// the residual — the reject-recompute path, where the server refused
	// the push and the information the payload carried must not be lost.
	ReturnGrad(payload []byte) error
	// DecodeGrad reconstructs a full (dense) gradient vector from an
	// uplink payload into out, which sizes the expected vector.
	DecodeGrad(payload []byte, out []float64) error

	// EncodeSnap compresses the server→trainer parameter image: the
	// delta of params against prev (the image the receiving trainer
	// currently holds) — DoubleSqueeze's second compression pass,
	// error-compensated because prev is advanced by exactly what the
	// payload carries, so whatever a lossy payload dropped stays in the
	// next delta. The dense codec ships the full image instead — exact,
	// which is what anchors the bitwise-identity contract.
	EncodeSnap(params, prev []float64, dst []byte) []byte
	// DecodeSnap applies a downlink payload to the trainer's image.
	DecodeSnap(payload []byte, params []float64) error

	// Clone returns a fresh codec of the same spec with empty residual
	// state; the server clones its configured codec once per trainer.
	Clone() GradCodec
}

// ParseCodec resolves a codec spec: "dense", "topk:<ratio>" (fraction
// of coordinates kept, e.g. topk:0.01), or "dsq:<bits>" (quantization
// width, 2–8 bits per coordinate). seed drives the only randomness any
// codec uses — dsq's stochastic rounding — through a seeded stream, so
// runs stay reproducible.
func ParseCodec(spec string, seed int64) (GradCodec, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "dense":
		return &Dense{}, nil
	case "topk":
		ratio := 0.01
		if arg != "" {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("dist: bad topk ratio %q: %v", arg, err)
			}
			ratio = v
		}
		if !(ratio > 0 && ratio <= 1) {
			return nil, fmt.Errorf("dist: topk ratio %v out of (0, 1]", ratio)
		}
		return &TopK{ratio: ratio}, nil
	case "dsq":
		bits := 4
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("dist: bad dsq bits %q: %v", arg, err)
			}
			bits = v
		}
		if bits < 2 || bits > 8 {
			return nil, fmt.Errorf("dist: dsq bits %d out of [2, 8]", bits)
		}
		return &DSQ{bits: bits, seed: seed}, nil
	default:
		return nil, fmt.Errorf("dist: unknown codec %q (want dense, topk:<ratio> or dsq:<bits>)", spec)
	}
}

// header appends a payload's tag and coordinate count.
func header(dst []byte, tag byte, np int) []byte {
	dst = append(dst, tag)
	return bitpack.AppendUvarint(dst, uint64(np))
}

// readHeader validates a payload's tag and coordinate count against the
// caller's vector and returns the remaining bytes.
func readHeader(payload []byte, tag byte, np int) ([]byte, error) {
	if len(payload) == 0 || payload[0] != tag {
		return nil, fmt.Errorf("dist: payload is not a %q image", tag)
	}
	n, used, err := bitpack.Uvarint(payload[1:])
	if err != nil {
		return nil, fmt.Errorf("dist: payload length: %v", err)
	}
	if n != uint64(np) {
		return nil, fmt.Errorf("dist: payload carries %d coordinates, vector has %d", n, np)
	}
	return payload[1+used:], nil
}

// appendFloats appends raw little-endian float64 bits.
func appendFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Dense is the uncompressed baseline codec: raw float64 coordinates in
// both directions, and the downlink ships the full parameter image (not
// a delta), so what the trainer decodes is bit-for-bit what the server
// holds — the property the single-trainer identity tests anchor on.
type Dense struct{}

// Name implements GradCodec.
func (*Dense) Name() string { return "dense" }

// Clone implements GradCodec; Dense carries no residual state.
func (*Dense) Clone() GradCodec { return &Dense{} }

// EncodeGrad implements GradCodec: the exact gradient, no residual.
func (*Dense) EncodeGrad(grad []float64, dst []byte) []byte {
	return appendFloats(header(dst, tagDense, len(grad)), grad)
}

// ReturnGrad implements GradCodec: a dense payload dropped nothing, so
// there is nothing to feed back.
func (*Dense) ReturnGrad([]byte) error { return nil }

// DecodeGrad implements GradCodec.
func (*Dense) DecodeGrad(payload []byte, out []float64) error {
	return denseDecode(payload, out)
}

// EncodeSnap implements GradCodec: the full parameter image, exact.
func (d *Dense) EncodeSnap(params, prev []float64, dst []byte) []byte {
	copy(prev, params)
	return d.EncodeGrad(params, dst)
}

// DecodeSnap implements GradCodec: overwrite with the exact image.
func (*Dense) DecodeSnap(payload []byte, params []float64) error {
	return denseDecode(payload, params)
}

func denseDecode(payload []byte, out []float64) error {
	body, err := readHeader(payload, tagDense, len(out))
	if err != nil {
		return err
	}
	if len(body) != 8*len(out) {
		return fmt.Errorf("dist: dense payload body is %d bytes, want %d", len(body), 8*len(out))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return nil
}
