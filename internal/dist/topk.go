package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"toc/internal/bitpack"
)

// TopK is ScaleCom-style sparsification with error feedback: each
// payload carries only the k = ceil(ratio·NumParams) largest-magnitude
// coordinates of residual+input, and the coordinates it drops stay in
// the residual, so over time everything the gradients contained is
// delivered — the residual plus the payload history sums exactly to the
// input history (the property test pins this). The same scheme
// compresses the downlink as the delta of the parameter image against
// what the trainer last received.
//
// Selection is deterministic: magnitude descending, index ascending on
// ties, so a run is reproducible regardless of sort internals. Indices
// travel bitpacked (internal/bitpack width-minimal arrays), values as
// raw float64.
type TopK struct {
	ratio float64

	// gradRes is the uplink error-feedback residual, sized lazily at
	// first use; acc and sel are scratch. The downlink needs no separate
	// residual: undelivered snapshot mass lives in the params−prev delta.
	gradRes []float64
	acc     []float64
	sel     []int
}

// Name implements GradCodec.
func (c *TopK) Name() string { return fmt.Sprintf("topk:%g", c.ratio) }

// Clone implements GradCodec.
func (c *TopK) Clone() GradCodec { return &TopK{ratio: c.ratio} }

// kOf is the payload coordinate budget for an np-wide vector.
func (c *TopK) kOf(np int) int {
	k := int(math.Ceil(c.ratio * float64(np)))
	if k < 1 {
		k = 1
	}
	if k > np {
		k = np
	}
	return k
}

// grow sizes a residual (or scratch) vector for np coordinates.
func grow(buf *[]float64, np int) []float64 {
	if len(*buf) != np {
		*buf = make([]float64, np)
	}
	return *buf
}

// encode appends the top-k image of acc and zeroes the sent
// coordinates, leaving acc as the new residual.
func (c *TopK) encode(acc []float64, dst []byte) []byte {
	np := len(acc)
	k := c.kOf(np)
	if cap(c.sel) < np {
		c.sel = make([]int, np)
	}
	sel := c.sel[:np]
	for i := range sel {
		sel[i] = i
	}
	sort.Slice(sel, func(a, b int) bool {
		ma, mb := math.Abs(acc[sel[a]]), math.Abs(acc[sel[b]])
		if ma != mb {
			return ma > mb
		}
		return sel[a] < sel[b]
	})
	sel = sel[:k]
	sort.Ints(sel)

	dst = header(dst, tagTopK, np)
	dst = bitpack.AppendUvarint(dst, uint64(k))
	idx := make([]uint32, k)
	for i, j := range sel {
		idx[i] = uint32(j)
	}
	dst = bitpack.Pack(idx).AppendTo(dst)
	for _, j := range sel {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(acc[j]))
		acc[j] = 0
	}
	return dst
}

// decode parses a top-k payload and calls visit for each carried
// coordinate, validating every length before any allocation.
func decodeTopK(payload []byte, np int, visit func(i int, v float64)) error {
	body, err := readHeader(payload, tagTopK, np)
	if err != nil {
		return err
	}
	k64, used, err := bitpack.Uvarint(body)
	if err != nil {
		return fmt.Errorf("dist: topk count: %v", err)
	}
	if k64 == 0 || k64 > uint64(np) {
		return fmt.Errorf("dist: topk count %d out of [1, %d]", k64, np)
	}
	k := int(k64)
	arr, rest, err := bitpack.ReadArray(body[used:])
	if err != nil {
		return fmt.Errorf("dist: topk indices: %v", err)
	}
	if arr.Len() != k {
		return fmt.Errorf("dist: topk payload has %d indices, header says %d", arr.Len(), k)
	}
	if len(rest) != 8*k {
		return fmt.Errorf("dist: topk payload has %d value bytes, want %d", len(rest), 8*k)
	}
	for i := 0; i < k; i++ {
		j := arr.Get(i)
		if j >= uint32(np) {
			return fmt.Errorf("dist: topk index %d out of range %d", j, np)
		}
		visit(int(j), math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:])))
	}
	return nil
}

// EncodeGrad implements GradCodec.
func (c *TopK) EncodeGrad(grad []float64, dst []byte) []byte {
	res := grow(&c.gradRes, len(grad))
	for i, g := range grad {
		res[i] += g
	}
	return c.encode(res, dst)
}

// ReturnGrad implements GradCodec: re-credit a rejected payload.
func (c *TopK) ReturnGrad(payload []byte) error {
	res := grow(&c.gradRes, len(c.gradRes))
	if len(res) == 0 {
		return fmt.Errorf("dist: ReturnGrad before any EncodeGrad")
	}
	return decodeTopK(payload, len(res), func(i int, v float64) { res[i] += v })
}

// DecodeGrad implements GradCodec: scatter into a zeroed vector.
func (c *TopK) DecodeGrad(payload []byte, out []float64) error {
	// Validate fully before mutating out, so a malformed payload cannot
	// leave a half-scattered gradient behind.
	if err := decodeTopK(payload, len(out), func(int, float64) {}); err != nil {
		return err
	}
	for i := range out {
		out[i] = 0
	}
	return decodeTopK(payload, len(out), func(i int, v float64) { out[i] = v })
}

// EncodeSnap implements GradCodec: top-k of the delta params − prev,
// advancing prev by exactly what the payload carries. The delta itself
// is the error-feedback state — prev only moves by what was delivered,
// so every undelivered coordinate stays in the next round's delta; a
// separate residual would double-count it.
func (c *TopK) EncodeSnap(params, prev []float64, dst []byte) []byte {
	acc := grow(&c.acc, len(params))
	for i := range acc {
		acc[i] = params[i] - prev[i]
	}
	mark := len(dst)
	dst = c.encode(acc, dst)
	// Apply the payload to prev so it tracks the trainer-side image.
	if err := c.DecodeSnap(dst[mark:], prev); err != nil {
		// Decoding bytes this codec just encoded cannot fail.
		panic(fmt.Sprintf("dist: topk self-decode: %v", err))
	}
	return dst
}

// DecodeSnap implements GradCodec: add the carried delta coordinates.
func (c *TopK) DecodeSnap(payload []byte, params []float64) error {
	if err := decodeTopK(payload, len(params), func(int, float64) {}); err != nil {
		return err
	}
	return decodeTopK(payload, len(params), func(i int, v float64) { params[i] += v })
}
