package dist

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzGradCodecDecode throws arbitrary bytes at every codec's two decode
// paths. The contract under fuzz: decoders never panic, and a decode
// that reports success must have produced only finite values from a
// payload that re-encodes to the same coordinate count — malformed input
// fails loudly, it never half-applies.
func FuzzGradCodecDecode(f *testing.F) {
	const np = 40
	rng := rand.New(rand.NewSource(1))
	g := make([]float64, np)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	// Seed with one valid payload per codec so the fuzzer starts from
	// structurally plausible inputs.
	f.Add((&Dense{}).EncodeGrad(g, nil))
	f.Add((&TopK{ratio: 0.1}).EncodeGrad(append([]float64(nil), g...), nil))
	f.Add((&DSQ{bits: 4, seed: 1}).EncodeGrad(append([]float64(nil), g...), nil))
	f.Add((&DSQ{bits: 8, seed: 1}).EncodeGrad(append([]float64(nil), g...), nil))
	f.Add([]byte{})
	f.Add([]byte{tagTopK, np, 0})
	f.Add([]byte{tagDSQ, np, 9, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, c := range []GradCodec{&Dense{}, &TopK{ratio: 0.1}, &DSQ{bits: 4, seed: 1}} {
			out := make([]float64, np)
			_ = c.DecodeGrad(payload, out)
			params := make([]float64, np)
			_ = c.DecodeSnap(payload, params)
		}
		// DSQ validates its scale, so a successful quantized decode is
		// always finite — raw-float codecs legitimately carry any bits.
		c := &DSQ{bits: 4, seed: 1}
		out := make([]float64, np)
		if err := c.DecodeGrad(payload, out); err == nil {
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("dsq decoded non-finite coord %d = %v", i, v)
				}
			}
		}
	})
}
