package ml

import (
	"fmt"
	"math"
	"sync"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// GradModel separates gradient computation from the parameter update so a
// data-parallel driver (internal/engine) can evaluate shards of a step's
// mini-batches concurrently against frozen parameters and merge the
// results deterministically before applying them once. For every model in
// this package, Step(x, y, lr) is exactly Grad into a buffer followed by
// ApplyGrad of that buffer — the serial and parallel drivers walk the same
// trajectory.
type GradModel interface {
	Model
	// NumParams returns the length of the model's flat parameter vector.
	NumParams() int
	// Grad computes the averaged mini-batch gradient (Equation 2) of (x, y)
	// against the current parameters, overwriting out (length NumParams())
	// with the flat gradient including any regularization terms, and
	// returns the mini-batch loss. It must not mutate the model, so
	// concurrent Grad calls on one model are safe.
	Grad(x formats.CompressedMatrix, y []float64, out []float64) float64
	// ApplyGrad performs the update params -= lr·g for a flat gradient g
	// laid out as Grad writes it.
	ApplyGrad(g []float64, lr float64)
}

// stepBuf returns a cached gradient buffer for Step's Grad+ApplyGrad
// round trip. Step mutates the model, so it is inherently serial and one
// buffer per model is safe; Grad itself never touches it, keeping
// concurrent Grad calls race-free.
func stepBuf(buf *[]float64, np int) []float64 {
	if len(*buf) != np {
		*buf = make([]float64, np)
	}
	return *buf
}

// linScratch holds the two per-call row vectors of linGrad (the A·w
// scores and the residuals). Grad must stay safe for concurrent calls on
// one model, so the buffers are pooled rather than model-owned.
type linScratch struct {
	s, r []float64
}

var linScratchPool = sync.Pool{New: func() any { return new(linScratch) }}

func (sc *linScratch) vec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// linGrad runs the shared GLM gradient shape — score the batch with A·w,
// turn per-row residuals into r, aggregate with r·A — writing the flat
// [dW..., dB] gradient into out and returning the mean loss. residual maps
// (score+bias, label) to (loss contribution, residual numerator). Both
// multiplications shard across workers goroutines when the encoding
// supports it and share the caller's kernel plan (one decode-tree build
// for the forward and backward passes); the gradient is bitwise
// independent of both the worker count and the plan.
//
// When the plan writes into caller-owned buffers (formats.KernelPlanInto,
// which TOC's plans implement), the whole gradient runs allocation-free:
// the score and residual vectors come from a pool and the v·A aggregation
// lands directly in out's weight slice (pinned by TestLinGradAllocs).
func linGrad(x formats.CompressedMatrix, plan formats.KernelPlan, y, w []float64, bias, l2 float64,
	workers int, out []float64, residual func(z, yi float64) (loss, r float64)) float64 {
	n := float64(x.Rows())
	sc := linScratchPool.Get().(*linScratch)
	defer linScratchPool.Put(sc)
	s := mulVecInto(sc.vec(&sc.s, x.Rows()), x, plan, w, workers)
	var loss, rsum float64
	r := sc.vec(&sc.r, len(s))
	for i := range s {
		li, ri := residual(s[i]+bias, y[i])
		loss += li
		rv := 0.0
		if ri != 0 {
			rv = ri / n
			rsum += rv
		}
		r[i] = rv
	}
	// g aliases out's weight slice on the Into path, so the l2 fold below
	// reads each g[j] before overwriting that same element — identical
	// arithmetic to folding from a fresh vector.
	g := vecMulInto(out[:len(w):len(w)], x, plan, r, workers)
	for j := range g {
		out[j] = g[j] + l2*w[j]
	}
	out[len(g)] = rsum
	return loss / n
}

// applyLinGrad is the shared GLM update for the [dW..., dB] layout.
func applyLinGrad(w []float64, b *float64, g []float64, lr float64) {
	for j := range w {
		w[j] -= lr * g[j]
	}
	*b -= lr * g[len(w)]
}

// planGrad lets a wrapper model (one-vs-rest) thread one shared kernel
// plan through every per-class gradient it computes on the same batch, so
// a whole multi-class Grad costs a single decode-tree build.
type planGrad interface {
	gradPlan(x formats.CompressedMatrix, plan formats.KernelPlan, y, out []float64) float64
}

// NumParams returns len(W)+1 (weights plus bias).
func (m *LinReg) NumParams() int { return len(m.W) + 1 }

// Grad writes the flat [dW..., dB] squared-loss gradient of Equation 3.
func (m *LinReg) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	return m.gradPlan(x, planFor(x), y, out)
}

func (m *LinReg) gradPlan(x formats.CompressedMatrix, plan formats.KernelPlan, y, out []float64) float64 {
	return linGrad(x, plan, y, m.W, m.B, m.L2, m.Workers, out, func(z, yi float64) (float64, float64) {
		d := z - yi
		return 0.5 * d * d, d
	})
}

// ApplyGrad updates weights and bias from a Grad-layout gradient.
func (m *LinReg) ApplyGrad(g []float64, lr float64) { applyLinGrad(m.W, &m.B, g, lr) }

// NumParams returns len(W)+1 (weights plus bias).
func (m *LogReg) NumParams() int { return len(m.W) + 1 }

// Grad writes the flat [dW..., dB] logistic gradient (σ(Ah) − y)ᵀA.
func (m *LogReg) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	return m.gradPlan(x, planFor(x), y, out)
}

func (m *LogReg) gradPlan(x formats.CompressedMatrix, plan formats.KernelPlan, y, out []float64) float64 {
	return linGrad(x, plan, y, m.W, m.B, m.L2, m.Workers, out, func(z, yi float64) (float64, float64) {
		p := sigmoid(z)
		pc := clampProb(p)
		return -(yi*math.Log(pc) + (1-yi)*math.Log(1-pc)), p - yi
	})
}

// ApplyGrad updates weights and bias from a Grad-layout gradient.
func (m *LogReg) ApplyGrad(g []float64, lr float64) { applyLinGrad(m.W, &m.B, g, lr) }

// NumParams returns len(W)+1 (weights plus bias).
func (m *SVM) NumParams() int { return len(m.W) + 1 }

// Grad writes the flat [dW..., dB] hinge subgradient: rows inside the
// margin contribute −y·x.
func (m *SVM) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	return m.gradPlan(x, planFor(x), y, out)
}

func (m *SVM) gradPlan(x formats.CompressedMatrix, plan formats.KernelPlan, y, out []float64) float64 {
	return linGrad(x, plan, y, m.W, m.B, m.L2, m.Workers, out, func(z, yi float64) (float64, float64) {
		s := 2*yi - 1 // {0,1} -> {-1,+1}
		if margin := s * z; margin < 1 {
			return 1 - margin, -s
		}
		return 0, 0
	})
}

// ApplyGrad updates weights and bias from a Grad-layout gradient.
func (m *SVM) ApplyGrad(g []float64, lr float64) { applyLinGrad(m.W, &m.B, g, lr) }

// gradModels asserts every per-class model supports the gradient split;
// NewOneVsRest only ever builds LogReg/SVM ensembles, which do.
func (o *OneVsRest) gradModels() []GradModel {
	out := make([]GradModel, len(o.Models))
	for c, m := range o.Models {
		gm, ok := m.(GradModel)
		if !ok {
			panic(fmt.Sprintf("ml: one-vs-rest class %d model %T does not implement GradModel", c, m))
		}
		out[c] = gm
	}
	return out
}

// NumParams sums the per-class parameter counts.
func (o *OneVsRest) NumParams() int {
	total := 0
	for _, gm := range o.gradModels() {
		total += gm.NumParams()
	}
	return total
}

// Grad concatenates the per-class gradients on rest-relabelled copies of
// the batch, returning the mean per-class loss. One kernel plan is shared
// across every per-class gradient, so the whole multi-class Grad builds
// the batch's decode tree once instead of once per class and direction.
func (o *OneVsRest) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	plan := planFor(x)
	yc := make([]float64, len(y))
	var total float64
	off := 0
	for c, gm := range o.gradModels() {
		for i, yi := range y {
			if int(yi) == c {
				yc[i] = 1
			} else {
				yc[i] = 0
			}
		}
		np := gm.NumParams()
		if pg, ok := gm.(planGrad); ok {
			total += pg.gradPlan(x, plan, yc, out[off:off+np])
		} else {
			total += gm.Grad(x, yc, out[off:off+np])
		}
		off += np
	}
	return total / float64(len(o.Models))
}

// ApplyGrad applies each per-class slice of the concatenated gradient.
func (o *OneVsRest) ApplyGrad(g []float64, lr float64) {
	off := 0
	for _, gm := range o.gradModels() {
		np := gm.NumParams()
		gm.ApplyGrad(g[off:off+np], lr)
		off += np
	}
}

// NumParams sums every layer's weight matrix and bias vector.
func (n *NN) NumParams() int {
	total := 0
	for l := range n.W {
		total += n.Sizes[l]*n.Sizes[l+1] + n.Sizes[l+1]
	}
	return total
}

// Grad runs one forward/backward pass without updating, writing the flat
// gradient laid out layer by layer as [dW0..., dB0..., dW1..., dB1...,
// ...] (dW row-major). The backward pass reads each W[l] before ApplyGrad
// would mutate it, so Grad-then-ApplyGrad reproduces Step exactly. One
// kernel plan spans the input layer's forward A·M and backward M·A, so
// the step builds the batch's decode tree once.
func (n *NN) Grad(x formats.CompressedMatrix, y []float64, out []float64) float64 {
	if x.Rows() != len(y) {
		panic(fmt.Sprintf("ml: NN batch %d rows but %d labels", x.Rows(), len(y)))
	}
	plan := planFor(x)
	acts := n.forward(x, plan)
	outAct := acts[len(acts)-1]
	target := n.oneHot(y)
	loss := n.crossEntropy(outAct, target)

	// Layer l's slice of out starts after all earlier layers.
	offs := make([]int, len(n.W))
	off := 0
	for l := range n.W {
		offs[l] = off
		off += n.Sizes[l]*n.Sizes[l+1] + n.Sizes[l+1]
	}

	nRows := float64(x.Rows())
	// For sigmoid+CE and softmax+CE alike: delta_out = (P − T)/n.
	delta := outAct.Sub(target)
	delta.ScaleInPlace(1 / nRows)

	for l := len(n.W) - 1; l >= 0; l-- {
		var dW *matrix.Dense
		if l == 0 {
			// dW0 = Aᵀ·delta = (deltaᵀ·A)ᵀ — M·A on the compressed input.
			dW = matMul(x, plan, delta.Transpose(), n.Workers).Transpose()
		} else {
			dW = acts[l-1].Transpose().MulMat(delta)
		}
		db := columnSums(delta)
		if l > 0 {
			back := delta.MulMat(n.W[l].Transpose())
			h := acts[l-1]
			for i := 0; i < back.Rows(); i++ {
				br := back.Row(i)
				hr := h.Row(i)
				for j := range br {
					br[j] *= hr[j] * (1 - hr[j]) // sigmoid'
				}
			}
			delta = back
		}
		wlen := n.Sizes[l] * n.Sizes[l+1]
		copy(out[offs[l]:offs[l]+wlen], dW.Data())
		copy(out[offs[l]+wlen:offs[l]+wlen+len(db)], db)
	}
	return loss
}

// ApplyGrad subtracts lr·g from every layer's weights and biases.
func (n *NN) ApplyGrad(g []float64, lr float64) {
	off := 0
	for l := range n.W {
		wd := n.W[l].Data()
		for j := range wd {
			wd[j] -= lr * g[off+j]
		}
		off += len(wd)
		for j := range n.B[l] {
			n.B[l][j] -= lr * g[off+j]
		}
		off += len(n.B[l])
	}
}
