package ml

import (
	"fmt"
	"math"
	"time"

	"toc/internal/formats"
)

// Learning-rate schedules and momentum for the MGD driver. The paper
// trains with a constant rate (its §5.3 setup); these are the standard
// MGD refinements its §2.1.2 background points at, provided as library
// extensions and exercised by the ablation benches.

// Schedule maps a 0-based epoch to a learning rate.
type Schedule func(epoch int) float64

// ConstantLR returns the paper's fixed learning rate.
func ConstantLR(lr float64) Schedule {
	return func(int) float64 { return lr }
}

// StepDecayLR halves the rate every `every` epochs.
func StepDecayLR(lr float64, every int) Schedule {
	if every <= 0 {
		every = 1
	}
	return func(epoch int) float64 {
		return lr * math.Pow(0.5, float64(epoch/every))
	}
}

// InverseDecayLR returns lr / (1 + k·epoch), the classical Robbins-Monro
// style decay.
func InverseDecayLR(lr, k float64) Schedule {
	return func(epoch int) float64 { return lr / (1 + k*float64(epoch)) }
}

// TrainSchedule is Train with a per-epoch learning-rate schedule.
//
//toc:timing
func TrainSchedule(m Model, src BatchSource, epochs int, sched Schedule, cb EpochCallback) *TrainResult {
	res := &TrainResult{}
	start := time.Now()
	n := src.NumBatches()
	for e := 0; e < epochs; e++ {
		epochStart := time.Now()
		lr := sched(e)
		var loss float64
		for i := 0; i < n; i++ {
			x, y := src.Batch(i)
			loss += m.Step(x, y, lr)
		}
		if n > 0 {
			loss /= float64(n)
		}
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochTime = append(res.EpochTime, time.Since(epochStart))
		if cb != nil {
			cb(e, time.Since(start), loss)
		}
	}
	res.Total = time.Since(start)
	return res
}

// Momentum wraps a linear model's updates with classical (heavy-ball)
// momentum: velocity = mu·velocity − lr·grad; w += velocity. It observes
// the wrapped model's parameters before and after each Step to recover
// the applied update, so it composes with any of the linear models
// without changing their gradient code.
type Momentum struct {
	Model Model
	Mu    float64

	velocity []float64
}

// NewMomentum wraps model with momentum coefficient mu (typically 0.9).
func NewMomentum(model Model, mu float64) *Momentum {
	return &Momentum{Model: model, Mu: mu}
}

// params returns the wrapped model's parameter slice (weights ++ bias) as
// views that allow in-place modification, or nil if unsupported.
func (m *Momentum) params() ([]float64, *float64) {
	switch v := m.Model.(type) {
	case *LinReg:
		return v.W, &v.B
	case *LogReg:
		return v.W, &v.B
	case *SVM:
		return v.W, &v.B
	default:
		return nil, nil
	}
}

// Step applies one momentum-accelerated MGD update: it runs the wrapped
// model's plain step, recovers the applied update −lr·grad from the
// parameter delta, and replaces it with the velocity-smoothed update.
func (m *Momentum) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	w, b := m.params()
	if w == nil {
		// Unsupported model (e.g. NN): fall back to the plain step.
		return m.Model.Step(x, y, lr)
	}
	if m.velocity == nil {
		m.velocity = make([]float64, len(w)+1)
	}
	if len(m.velocity) != len(w)+1 {
		panic(fmt.Sprintf("ml: momentum state %d does not match %d params", len(m.velocity), len(w)+1))
	}
	before := append([]float64(nil), w...)
	bBefore := *b
	loss := m.Model.Step(x, y, lr)
	for i := range w {
		update := w[i] - before[i] // −lr·grad_i
		m.velocity[i] = m.Mu*m.velocity[i] + update
		w[i] = before[i] + m.velocity[i]
	}
	vb := &m.velocity[len(w)]
	*vb = m.Mu*(*vb) + (*b - bBefore)
	*b = bBefore + *vb
	return loss
}

// Loss delegates to the wrapped model.
func (m *Momentum) Loss(x formats.CompressedMatrix, y []float64) float64 {
	return m.Model.Loss(x, y)
}

// Predict delegates to the wrapped model.
func (m *Momentum) Predict(x formats.CompressedMatrix) []float64 {
	return m.Model.Predict(x)
}
