package ml

import (
	"math"

	"toc/internal/formats"
)

// The three generalized linear models. Each Step is two compressed ops —
// a right multiplication A·w to score the batch and a left multiplication
// r·A to aggregate gradients — exactly the Table 1 usage.

// LinReg is linear regression with mean squared loss
// (§2.1.4: l(h,z) = ½(y − xᵀh)²).
type LinReg struct {
	W  []float64 // weight vector, one per feature
	B  float64   // bias
	L2 float64   // optional ridge penalty coefficient
	// Workers is the goroutine count each compressed-kernel call may use
	// (0 or 1 = sequential). Parallel kernels are bitwise identical to
	// sequential ones, so it changes wall-clock only.
	Workers int

	step []float64 // cached Step gradient buffer
}

// SetKernelWorkers sets the per-kernel goroutine count (KernelParallel).
func (m *LinReg) SetKernelWorkers(workers int) { m.Workers = workers }

// NewLinReg creates a zero-initialized linear regression model.
func NewLinReg(dims int) *LinReg { return &LinReg{W: make([]float64, dims)} }

// Step implements Equation 3: grad = ((Ah − Y)ᵀA)ᵀ, averaged over the
// batch. It is Grad followed by ApplyGrad, so the parallel engine's
// split-step training walks the same trajectory.
func (m *LinReg) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	g := stepBuf(&m.step, m.NumParams())
	loss := m.Grad(x, y, g)
	m.ApplyGrad(g, lr)
	return loss
}

// Loss evaluates mean squared loss.
func (m *LinReg) Loss(x formats.CompressedMatrix, y []float64) float64 {
	p := mulVec(x, nil, m.W, m.Workers)
	var loss float64
	for i := range p {
		d := p[i] + m.B - y[i]
		loss += 0.5 * d * d
	}
	return loss / float64(len(p))
}

// Predict returns the real-valued scores A·w + b.
func (m *LinReg) Predict(x formats.CompressedMatrix) []float64 {
	p := mulVec(x, nil, m.W, m.Workers)
	for i := range p {
		p[i] += m.B
	}
	return p
}

// LogReg is binary logistic regression with logistic loss; labels are 0/1.
type LogReg struct {
	W  []float64
	B  float64
	L2 float64
	// Workers is the goroutine count each compressed-kernel call may use
	// (0 or 1 = sequential).
	Workers int

	step []float64 // cached Step gradient buffer
}

// SetKernelWorkers sets the per-kernel goroutine count (KernelParallel).
func (m *LogReg) SetKernelWorkers(workers int) { m.Workers = workers }

// NewLogReg creates a zero-initialized logistic regression model.
func NewLogReg(dims int) *LogReg { return &LogReg{W: make([]float64, dims)} }

// Step performs one MGD update with the logistic gradient (σ(Ah) − y)ᵀA.
func (m *LogReg) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	g := stepBuf(&m.step, m.NumParams())
	loss := m.Grad(x, y, g)
	m.ApplyGrad(g, lr)
	return loss
}

// Loss evaluates mean logistic loss.
func (m *LogReg) Loss(x formats.CompressedMatrix, y []float64) float64 {
	s := mulVec(x, nil, m.W, m.Workers)
	var loss float64
	for i := range s {
		p := clampProb(sigmoid(s[i] + m.B))
		loss += -(y[i]*math.Log(p) + (1-y[i])*math.Log(1-p))
	}
	return loss / float64(len(s))
}

// Score returns the probability of class 1 per row (used by one-vs-rest).
func (m *LogReg) Score(x formats.CompressedMatrix) []float64 {
	s := mulVec(x, nil, m.W, m.Workers)
	for i := range s {
		s[i] = sigmoid(s[i] + m.B)
	}
	return s
}

// Predict returns 0/1 labels at the 0.5 threshold.
func (m *LogReg) Predict(x formats.CompressedMatrix) []float64 {
	s := m.Score(x)
	for i := range s {
		if s[i] > 0.5 {
			s[i] = 1
		} else {
			s[i] = 0
		}
	}
	return s
}

// SVM is a linear support vector machine with hinge loss; labels are 0/1
// (mapped internally to ±1).
type SVM struct {
	W  []float64
	B  float64
	L2 float64
	// Workers is the goroutine count each compressed-kernel call may use
	// (0 or 1 = sequential).
	Workers int

	step []float64 // cached Step gradient buffer
}

// SetKernelWorkers sets the per-kernel goroutine count (KernelParallel).
func (m *SVM) SetKernelWorkers(workers int) { m.Workers = workers }

// NewSVM creates a zero-initialized linear SVM.
func NewSVM(dims int) *SVM { return &SVM{W: make([]float64, dims), L2: 1e-4} }

// Step performs one MGD update with the hinge subgradient: rows inside the
// margin contribute −y·x.
func (m *SVM) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	g := stepBuf(&m.step, m.NumParams())
	loss := m.Grad(x, y, g)
	m.ApplyGrad(g, lr)
	return loss
}

// Loss evaluates mean hinge loss.
func (m *SVM) Loss(x formats.CompressedMatrix, y []float64) float64 {
	s := mulVec(x, nil, m.W, m.Workers)
	var loss float64
	for i := range s {
		yi := 2*y[i] - 1
		if margin := yi * (s[i] + m.B); margin < 1 {
			loss += 1 - margin
		}
	}
	return loss / float64(len(s))
}

// Score returns the signed margins per row (used by one-vs-rest).
func (m *SVM) Score(x formats.CompressedMatrix) []float64 {
	s := mulVec(x, nil, m.W, m.Workers)
	for i := range s {
		s[i] += m.B
	}
	return s
}

// Predict returns 0/1 labels by margin sign.
func (m *SVM) Predict(x formats.CompressedMatrix) []float64 {
	s := m.Score(x)
	for i := range s {
		if s[i] > 0 {
			s[i] = 1
		} else {
			s[i] = 0
		}
	}
	return s
}
