package ml

import (
	"fmt"
	"time"

	"toc/internal/data"
	"toc/internal/formats"
)

// BatchSource supplies compressed mini-batches to the MGD driver. The
// in-memory implementation below serves the fits-in-RAM regime; the
// spill-to-disk implementation lives in internal/storage.
type BatchSource interface {
	// NumBatches returns how many mini-batches one epoch visits.
	NumBatches() int
	// Batch returns mini-batch i and its labels; implementations may incur
	// IO (reading spilled batches back from disk).
	Batch(i int) (formats.CompressedMatrix, []float64)
}

// MemorySource keeps every compressed mini-batch in memory.
type MemorySource struct {
	batches []formats.CompressedMatrix
	labels  [][]float64
}

// NewMemorySource slices the dataset into batchSize mini-batches and
// encodes each one with enc. The dataset should already be shuffled once
// (§2.1.3).
func NewMemorySource(d *data.Dataset, batchSize int, enc formats.Encoder) *MemorySource {
	src := &MemorySource{}
	n := d.NumBatches(batchSize)
	for i := 0; i < n; i++ {
		x, y := d.Batch(i, batchSize)
		src.batches = append(src.batches, enc(x))
		src.labels = append(src.labels, y)
	}
	return src
}

// NumBatches returns the number of mini-batches.
func (s *MemorySource) NumBatches() int { return len(s.batches) }

// Batch returns mini-batch i.
func (s *MemorySource) Batch(i int) (formats.CompressedMatrix, []float64) {
	return s.batches[i], s.labels[i]
}

// CompressedBytes totals the encoded size of all batches.
func (s *MemorySource) CompressedBytes() int {
	total := 0
	for _, b := range s.batches {
		total += b.CompressedSize()
	}
	return total
}

// TrainResult records the trajectory of one training run.
type TrainResult struct {
	// EpochLoss is the mean per-batch training loss of each epoch.
	EpochLoss []float64
	// EpochTime is the wall-clock duration of each epoch.
	EpochTime []time.Duration
	// Total is the end-to-end training time.
	Total time.Duration
}

// EpochCallback observes training after every epoch; elapsed is the
// cumulative wall-clock time since training started.
type EpochCallback func(epoch int, elapsed time.Duration, avgLoss float64)

// Train runs MGD for the given number of epochs: every epoch visits all
// mini-batches in order (the data was shuffled once upfront) and applies
// Equation 2 per batch. cb may be nil.
//
//toc:timing
func Train(m Model, src BatchSource, epochs int, lr float64, cb EpochCallback) *TrainResult {
	res := &TrainResult{}
	start := time.Now()
	n := src.NumBatches()
	for e := 0; e < epochs; e++ {
		epochStart := time.Now()
		var loss float64
		for i := 0; i < n; i++ {
			x, y := src.Batch(i)
			loss += m.Step(x, y, lr)
		}
		if n > 0 {
			loss /= float64(n)
		}
		res.EpochLoss = append(res.EpochLoss, loss)
		res.EpochTime = append(res.EpochTime, time.Since(epochStart))
		if cb != nil {
			cb(e, time.Since(start), loss)
		}
	}
	res.Total = time.Since(start)
	return res
}

// NewModel constructs a model by the paper's short name ("linreg", "lr",
// "svm", "nn") for a dims-wide input with the given class count. LR and
// SVM use one-vs-rest when classes > 2; the NN uses the paper's two hidden
// layers of 200 and 50 neurons scaled by hiddenScale (1.0 = paper size).
func NewModel(name string, dims, classes int, hiddenScale float64, seed int64) (Model, error) {
	switch name {
	case "linreg":
		return NewLinReg(dims), nil
	case "lr":
		if classes > 2 {
			return NewOneVsRest(classes, func() BinaryClassifier { return NewLogReg(dims) }), nil
		}
		return NewLogReg(dims), nil
	case "svm":
		if classes > 2 {
			return NewOneVsRest(classes, func() BinaryClassifier { return NewSVM(dims) }), nil
		}
		return NewSVM(dims), nil
	case "nn":
		h1 := int(200 * hiddenScale)
		h2 := int(50 * hiddenScale)
		if h1 < 2 {
			h1 = 2
		}
		if h2 < 2 {
			h2 = 2
		}
		return NewNN(dims, []int{h1, h2}, classes, seed), nil
	default:
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
}

// ErrorRate returns the fraction of predictions differing from labels.
func ErrorRate(pred, y []float64) float64 {
	if len(pred) != len(y) {
		panic(fmt.Sprintf("ml: ErrorRate length mismatch %d != %d", len(pred), len(y)))
	}
	if len(y) == 0 {
		return 0
	}
	wrong := 0
	for i := range y {
		if pred[i] != y[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(y))
}

// Accuracy is 1 − ErrorRate.
func Accuracy(pred, y []float64) float64 { return 1 - ErrorRate(pred, y) }

// EvaluateError runs the model over a source and returns the error rate.
func EvaluateError(m Model, src BatchSource) float64 {
	var wrong, total int
	for i := 0; i < src.NumBatches(); i++ {
		x, y := src.Batch(i)
		pred := m.Predict(x)
		for k := range y {
			if pred[k] != y[k] {
				wrong++
			}
		}
		total += len(y)
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}
