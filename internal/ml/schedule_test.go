package ml

import (
	"math"
	"testing"

	"toc/internal/data"
	"toc/internal/formats"
)

func TestSchedules(t *testing.T) {
	c := ConstantLR(0.5)
	if c(0) != 0.5 || c(99) != 0.5 {
		t.Fatal("ConstantLR wrong")
	}
	s := StepDecayLR(1.0, 2)
	for _, tc := range []struct {
		epoch int
		want  float64
	}{{0, 1}, {1, 1}, {2, 0.5}, {3, 0.5}, {4, 0.25}} {
		if got := s(tc.epoch); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("StepDecayLR(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
	if StepDecayLR(1, 0)(5) <= 0 {
		t.Fatal("StepDecayLR with every<=0 must stay positive")
	}
	inv := InverseDecayLR(1.0, 1.0)
	if math.Abs(inv(0)-1) > 1e-12 || math.Abs(inv(1)-0.5) > 1e-12 {
		t.Fatal("InverseDecayLR wrong")
	}
}

func TestTrainScheduleMatchesTrainForConstant(t *testing.T) {
	d, _ := data.Generate("census", 300, 21)
	d.ShuffleOnce(22)
	a := NewLogReg(d.X.Cols())
	b := NewLogReg(d.X.Cols())
	src := NewMemorySource(d, 50, formats.MustGet("TOC"))
	Train(a, src, 3, 0.3, nil)
	TrainSchedule(b, src, 3, ConstantLR(0.3), nil)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("constant schedule must equal plain Train")
		}
	}
}

func TestMomentumMatchesManualRecurrence(t *testing.T) {
	d, _ := data.Generate("census", 200, 23)
	d.ShuffleOnce(24)
	src := NewMemorySource(d, 50, formats.MustGet("DEN"))

	// Reference: manual heavy-ball on a parallel plain model.
	ref := NewLogReg(d.X.Cols())
	vel := make([]float64, d.X.Cols()+1)
	const mu, lr = 0.9, 0.2
	for i := 0; i < src.NumBatches(); i++ {
		x, y := src.Batch(i)
		before := append([]float64(nil), ref.W...)
		bBefore := ref.B
		ref.Step(x, y, lr)
		for j := range ref.W {
			vel[j] = mu*vel[j] + (ref.W[j] - before[j])
			ref.W[j] = before[j] + vel[j]
		}
		vel[len(ref.W)] = mu*vel[len(ref.W)] + (ref.B - bBefore)
		ref.B = bBefore + vel[len(ref.W)]
	}

	m := NewMomentum(NewLogReg(d.X.Cols()), mu)
	for i := 0; i < src.NumBatches(); i++ {
		x, y := src.Batch(i)
		m.Step(x, y, lr)
	}
	got := m.Model.(*LogReg)
	for j := range ref.W {
		if math.Abs(got.W[j]-ref.W[j]) > 1e-12 {
			t.Fatalf("W[%d] = %v, want %v", j, got.W[j], ref.W[j])
		}
	}
	if math.Abs(got.B-ref.B) > 1e-12 {
		t.Fatalf("B = %v, want %v", got.B, ref.B)
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	d, _ := data.Generate("census", 800, 25)
	d.ShuffleOnce(26)
	src := NewMemorySource(d, 100, formats.MustGet("TOC"))

	plain := NewLogReg(d.X.Cols())
	Train(plain, src, 5, 0.1, nil)
	mom := NewMomentum(NewLogReg(d.X.Cols()), 0.9)
	Train(mom, src, 5, 0.1, nil)
	if mom.Loss(src.batches[0], src.labels[0]) >= plain.Loss(src.batches[0], src.labels[0]) {
		t.Fatal("momentum should reach lower loss at this budget")
	}
}

func TestMomentumNNFallback(t *testing.T) {
	d, _ := data.Generate("mnist", 200, 27)
	nn := NewNN(d.X.Cols(), []int{8}, d.Classes, 1)
	m := NewMomentum(nn, 0.9)
	src := NewMemorySource(d, 50, formats.MustGet("CSR"))
	// must not panic, falls back to plain steps
	Train(m, src, 1, 0.3, nil)
	if len(m.Predict(src.batches[0])) != 50 {
		t.Fatal("predict delegation broken")
	}
}
