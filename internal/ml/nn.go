package ml

import (
	"math"
	"math/rand"

	"toc/internal/formats"
	"toc/internal/matrix"
)

// NN is the paper's feed-forward neural network (§5.3): hidden layers with
// sigmoid activations, and a sigmoid output for binary targets or a
// softmax output with cross-entropy for multi-class targets.
//
// The input layer touches the compressed mini-batch through exactly two
// ops: the forward pass uses A·M (Algorithm 7) and the input-weight
// gradient uses M·A (Algorithm 8) — the Table 1 usage for neural networks.
type NN struct {
	// Sizes lists layer widths from input to output, e.g. [900 200 50 10].
	Sizes []int
	// W[l] is the Sizes[l] × Sizes[l+1] weight matrix of layer l.
	W []*matrix.Dense
	// B[l] is the bias vector of layer l (length Sizes[l+1]).
	B [][]float64
	// Classes is the number of classes (2 with a single sigmoid output).
	Classes int
	// Workers is the goroutine count the compressed input-layer kernels
	// (A·M forward, M·A backward) may use; 0 or 1 = sequential. Parallel
	// kernels are bitwise identical, so it changes wall-clock only.
	Workers int

	step []float64 // cached Step gradient buffer
}

// SetKernelWorkers sets the per-kernel goroutine count (KernelParallel).
func (n *NN) SetKernelWorkers(workers int) { n.Workers = workers }

// NewNN builds a network with the given hidden layer widths for an input
// of dims features. For classes == 2 the output is one sigmoid unit; for
// classes > 2 it is a softmax over classes units. Weights use scaled
// Gaussian init seeded deterministically.
func NewNN(dims int, hidden []int, classes int, seed int64) *NN {
	out := 1
	if classes > 2 {
		out = classes
	}
	sizes := append([]int{dims}, hidden...)
	sizes = append(sizes, out)
	rng := rand.New(rand.NewSource(seed))
	n := &NN{Sizes: sizes, Classes: classes}
	for l := 0; l+1 < len(sizes); l++ {
		w := matrix.NewDense(sizes[l], sizes[l+1])
		scale := 1 / math.Sqrt(float64(sizes[l]))
		for i := 0; i < sizes[l]; i++ {
			for j := 0; j < sizes[l+1]; j++ {
				w.Set(i, j, rng.NormFloat64()*scale)
			}
		}
		n.W = append(n.W, w)
		n.B = append(n.B, make([]float64, sizes[l+1]))
	}
	return n
}

// forward runs the network on a compressed batch, returning the
// post-activation output of every layer (acts[0] is the first hidden
// layer; the input stays compressed). plan, when non-nil, carries the
// step's shared kernel plan into the input-layer A·M so Grad's backward
// M·A reuses the same decode-tree build.
func (n *NN) forward(x formats.CompressedMatrix, plan formats.KernelPlan) []*matrix.Dense {
	acts := make([]*matrix.Dense, len(n.W))
	var h *matrix.Dense
	for l := range n.W {
		var z *matrix.Dense
		if l == 0 {
			z = mulMat(x, plan, n.W[0], n.Workers) // A·M on the compressed input
		} else {
			z = h.MulMat(n.W[l])
		}
		addBias(z, n.B[l])
		if l == len(n.W)-1 {
			n.outputActivation(z)
		} else {
			z.ApplyInPlace(sigmoid)
		}
		acts[l] = z
		h = z
	}
	return acts
}

func addBias(z *matrix.Dense, b []float64) {
	for i := 0; i < z.Rows(); i++ {
		row := z.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
}

// outputActivation applies sigmoid (binary) or row-softmax (multi-class).
func (n *NN) outputActivation(z *matrix.Dense) {
	if n.Classes <= 2 {
		z.ApplyInPlace(sigmoid)
		return
	}
	for i := 0; i < z.Rows(); i++ {
		row := z.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// oneHot expands class ids into the network's target matrix.
func (n *NN) oneHot(y []float64) *matrix.Dense {
	out := n.Sizes[len(n.Sizes)-1]
	t := matrix.NewDense(len(y), out)
	for i, yi := range y {
		if out == 1 {
			t.Set(i, 0, yi)
		} else {
			t.Set(i, int(yi), 1)
		}
	}
	return t
}

// Step runs one forward/backward pass and SGD update; it returns the
// cross-entropy loss before the update. It is Grad followed by ApplyGrad
// (the backward pass never reads a weight it has already updated), so the
// parallel engine's split-step training walks the same trajectory.
func (n *NN) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	g := stepBuf(&n.step, n.NumParams())
	loss := n.Grad(x, y, g)
	n.ApplyGrad(g, lr)
	return loss
}

func columnSums(d *matrix.Dense) []float64 {
	s := make([]float64, d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j, v := range d.Row(i) {
			s[j] += v
		}
	}
	return s
}

// crossEntropy computes the mean cross-entropy of predictions vs targets.
func (n *NN) crossEntropy(p, t *matrix.Dense) float64 {
	var loss float64
	rows := p.Rows()
	if n.Classes <= 2 {
		for i := 0; i < rows; i++ {
			pi := clampProb(p.At(i, 0))
			yi := t.At(i, 0)
			loss += -(yi*math.Log(pi) + (1-yi)*math.Log(1-pi))
		}
	} else {
		for i := 0; i < rows; i++ {
			for j := 0; j < p.Cols(); j++ {
				if t.At(i, j) == 1 {
					loss += -math.Log(clampProb(p.At(i, j)))
				}
			}
		}
	}
	return loss / float64(rows)
}

// Loss evaluates mean cross-entropy without updating.
func (n *NN) Loss(x formats.CompressedMatrix, y []float64) float64 {
	acts := n.forward(x, nil)
	return n.crossEntropy(acts[len(acts)-1], n.oneHot(y))
}

// Predict returns class ids (argmax for softmax, 0.5 threshold for the
// binary sigmoid output).
func (n *NN) Predict(x formats.CompressedMatrix) []float64 {
	acts := n.forward(x, nil)
	out := acts[len(acts)-1]
	pred := make([]float64, out.Rows())
	if n.Classes <= 2 {
		for i := range pred {
			if out.At(i, 0) > 0.5 {
				pred[i] = 1
			}
		}
		return pred
	}
	for i := range pred {
		best, bestV := 0, out.At(i, 0)
		for j := 1; j < out.Cols(); j++ {
			if v := out.At(i, j); v > bestV {
				best, bestV = j, v
			}
		}
		pred[i] = float64(best)
	}
	return pred
}
