package ml

import (
	"fmt"

	"toc/internal/formats"
)

// BinaryClassifier is a Model that also exposes real-valued per-row scores
// so one-vs-rest can compare class confidences.
type BinaryClassifier interface {
	Model
	Score(x formats.CompressedMatrix) []float64
}

// OneVsRest performs multi-class classification with per-class binary
// models — the paper's §5.3 "standard one-versus-the-other technique" for
// LR and SVM. Training Mnist's 10 classes therefore runs 10× the matrix
// operations of a binary model, which is why CVI edges out TOC on Mnist1m
// in Table 6.
type OneVsRest struct {
	Models []BinaryClassifier
}

// NewOneVsRest builds classes binary models with the given constructor.
func NewOneVsRest(classes int, newModel func() BinaryClassifier) *OneVsRest {
	if classes < 2 {
		panic(fmt.Sprintf("ml: one-vs-rest needs >=2 classes, got %d", classes))
	}
	o := &OneVsRest{}
	for c := 0; c < classes; c++ {
		o.Models = append(o.Models, newModel())
	}
	return o
}

// SetKernelWorkers forwards the per-kernel goroutine count to every
// per-class model that supports it (KernelParallel).
func (o *OneVsRest) SetKernelWorkers(workers int) {
	for _, m := range o.Models {
		if kp, ok := m.(KernelParallel); ok {
			kp.SetKernelWorkers(workers)
		}
	}
}

// Step updates every per-class model on its rest-relabelled copy of the
// batch, returning the mean of the per-class losses.
func (o *OneVsRest) Step(x formats.CompressedMatrix, y []float64, lr float64) float64 {
	yc := make([]float64, len(y))
	var total float64
	for c, m := range o.Models {
		for i, yi := range y {
			if int(yi) == c {
				yc[i] = 1
			} else {
				yc[i] = 0
			}
		}
		total += m.Step(x, yc, lr)
	}
	return total / float64(len(o.Models))
}

// Loss returns the mean per-class binary loss.
func (o *OneVsRest) Loss(x formats.CompressedMatrix, y []float64) float64 {
	yc := make([]float64, len(y))
	var total float64
	for c, m := range o.Models {
		for i, yi := range y {
			if int(yi) == c {
				yc[i] = 1
			} else {
				yc[i] = 0
			}
		}
		total += m.Loss(x, yc)
	}
	return total / float64(len(o.Models))
}

// Predict returns the class whose model scores highest per row.
func (o *OneVsRest) Predict(x formats.CompressedMatrix) []float64 {
	scores := make([][]float64, len(o.Models))
	for c, m := range o.Models {
		scores[c] = m.Score(x)
	}
	pred := make([]float64, x.Rows())
	for i := range pred {
		best, bestV := 0, scores[0][i]
		for c := 1; c < len(scores); c++ {
			if scores[c][i] > bestV {
				best, bestV = c, scores[c][i]
			}
		}
		pred[i] = float64(best)
	}
	return pred
}
