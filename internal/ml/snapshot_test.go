package ml

import (
	"math"
	"testing"

	"toc/internal/data"
	"toc/internal/formats"
)

// snapshotFixture trains a model a little so its parameters are away from
// the initial point, then returns it with one batch to probe gradients.
func snapshotFixture(t *testing.T, name string) (SnapshotModel, formats.CompressedMatrix, []float64) {
	t.Helper()
	d, err := data.Generate("mnist", 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	src := NewMemorySource(d, 50, formats.MustGet("TOC"))
	m, err := NewModel(name, d.X.Cols(), d.Classes, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	Train(m, src, 1, 0.2, nil)
	sm, ok := m.(SnapshotModel)
	if !ok {
		t.Fatalf("model %q (%T) does not implement SnapshotModel", name, m)
	}
	x, y := src.Batch(1)
	return sm, x, y
}

var snapshotModelNames = []string{"linreg", "lr", "svm", "nn"}

// Params/SetParams must round-trip bit for bit through a fresh model of
// the same shape: the restored model's gradient on any batch is bitwise
// identical to the original's.
func TestSnapshotParamsRoundTrip(t *testing.T) {
	for _, name := range snapshotModelNames {
		sm, x, y := snapshotFixture(t, name)
		np := sm.NumParams()
		p := make([]float64, np)
		sm.Params(p)

		fresh := sm.Clone() // same shape; parameters overwritten below
		zero := make([]float64, np)
		fresh.SetParams(zero)
		fresh.SetParams(p)

		back := make([]float64, np)
		fresh.Params(back)
		for i := range p {
			if math.Float64bits(p[i]) != math.Float64bits(back[i]) {
				t.Errorf("%s: param %d round-trips %v -> %v", name, i, p[i], back[i])
				break
			}
		}

		g1 := make([]float64, np)
		g2 := make([]float64, np)
		l1 := sm.Grad(x, y, g1)
		l2 := fresh.Grad(x, y, g2)
		if math.Float64bits(l1) != math.Float64bits(l2) {
			t.Errorf("%s: restored model loss %v != original %v", name, l2, l1)
		}
		for i := range g1 {
			if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
				t.Errorf("%s: restored model gradient diverges at %d: %v != %v", name, i, g2[i], g1[i])
				break
			}
		}
	}
}

// A clone must be fully independent: updating the original never moves
// the clone, and vice versa.
func TestSnapshotCloneIndependence(t *testing.T) {
	for _, name := range snapshotModelNames {
		sm, x, y := snapshotFixture(t, name)
		np := sm.NumParams()
		clone := sm.Clone()

		before := make([]float64, np)
		clone.Params(before)

		g := make([]float64, np)
		sm.Grad(x, y, g)
		sm.ApplyGrad(g, 0.5) // move the original only

		after := make([]float64, np)
		clone.Params(after)
		for i := range before {
			if before[i] != after[i] {
				t.Errorf("%s: clone moved with the original at param %d", name, i)
				break
			}
		}

		orig := make([]float64, np)
		sm.Params(orig)
		clone.ApplyGrad(g, 0.5) // move the clone only
		now := make([]float64, np)
		sm.Params(now)
		for i := range orig {
			if orig[i] != now[i] {
				t.Errorf("%s: original moved with the clone at param %d", name, i)
				break
			}
		}
	}
}

// A clone refreshed from a snapshot computes the same gradient as the
// model the snapshot was taken from — the async engine's worker contract.
func TestSnapshotCloneTracksPublishedParams(t *testing.T) {
	for _, name := range snapshotModelNames {
		sm, x, y := snapshotFixture(t, name)
		np := sm.NumParams()
		clone := sm.Clone()

		// Move the original a few steps past the clone, snapshot, refresh.
		g := make([]float64, np)
		for i := 0; i < 3; i++ {
			sm.Grad(x, y, g)
			sm.ApplyGrad(g, 0.1)
		}
		snap := make([]float64, np)
		sm.Params(snap)
		clone.SetParams(snap)

		g1 := make([]float64, np)
		g2 := make([]float64, np)
		l1 := sm.Grad(x, y, g1)
		l2 := clone.Grad(x, y, g2)
		if math.Float64bits(l1) != math.Float64bits(l2) {
			t.Errorf("%s: refreshed clone loss %v != original %v", name, l2, l1)
		}
		for i := range g1 {
			if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
				t.Errorf("%s: refreshed clone gradient diverges at %d", name, i)
				break
			}
		}
	}
}
