package ml

import (
	"toc/internal/formats"
	"toc/internal/matrix"
)

// Kernel dispatch: every model reaches the compressed mini-batch through
// these four helpers, which route a Table 1 multiplication to the
// encoding's parallel kernel when one exists (formats.ParallelOps) and
// the model's worker knob asks for more than one goroutine. The parallel
// kernels are bitwise identical to the sequential ones, so the knob
// changes wall-clock only — a trajectory computed at Workers=8 matches
// Workers=1 exactly.

// KernelParallel is implemented by models whose compressed-kernel calls
// can use multiple goroutines per gradient. Every model NewModel returns
// implements it.
type KernelParallel interface {
	// SetKernelWorkers sets the goroutine count each kernel call may use;
	// 0 or 1 keeps the kernels sequential.
	SetKernelWorkers(workers int)
}

func mulVec(x formats.CompressedMatrix, v []float64, workers int) []float64 {
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MulVecParallel(v, workers)
		}
	}
	return x.MulVec(v)
}

func vecMul(x formats.CompressedMatrix, v []float64, workers int) []float64 {
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.VecMulParallel(v, workers)
		}
	}
	return x.VecMul(v)
}

func mulMat(x formats.CompressedMatrix, m *matrix.Dense, workers int) *matrix.Dense {
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MulMatParallel(m, workers)
		}
	}
	return x.MulMat(m)
}

func matMul(x formats.CompressedMatrix, m *matrix.Dense, workers int) *matrix.Dense {
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MatMulParallel(m, workers)
		}
	}
	return x.MatMul(m)
}
