package ml

import (
	"toc/internal/formats"
	"toc/internal/matrix"
)

// Kernel dispatch: every model reaches the compressed mini-batch through
// these four helpers, which route a Table 1 multiplication to the
// encoding's parallel kernel when one exists (formats.ParallelOps) and
// the model's worker knob asks for more than one goroutine. The parallel
// kernels are bitwise identical to the sequential ones, so the knob
// changes wall-clock only — a trajectory computed at Workers=8 matches
// Workers=1 exactly.
//
// When the encoding supports per-batch kernel plans, each helper also
// takes the step's shared plan: the 2-3 multiplications a gradient makes
// on one batch (the A·v/A·M forward and the v·A/M·A aggregation) then
// share a single decode-tree build instead of paying the O(|I|+|D|)
// rebuild per operation. planFor builds one per (batch, call);
// core.TreeBuilds is the white-box counter proving the amortization.

// KernelParallel is implemented by models whose compressed-kernel calls
// can use multiple goroutines per gradient. Every model NewModel returns
// implements it.
type KernelParallel interface {
	// SetKernelWorkers sets the goroutine count each kernel call may use;
	// 0 or 1 keeps the kernels sequential.
	SetKernelWorkers(workers int)
}

// planFor returns a shared per-batch kernel plan when the encoding
// supports one, nil otherwise (the dispatchers then fall back to the
// per-op interface methods).
func planFor(x formats.CompressedMatrix) formats.KernelPlan {
	if p, ok := x.(formats.ParallelOps); ok {
		return p.NewKernelPlan()
	}
	return nil
}

// mulVecInto is mulVec writing into dst when the plan supports
// caller-owned destinations (formats.KernelPlanInto); otherwise it falls
// back to the allocating path and returns the fresh slice. Callers treat
// the return value as the result either way.
func mulVecInto(dst []float64, x formats.CompressedMatrix, plan formats.KernelPlan, v []float64, workers int) []float64 {
	if pi, ok := plan.(formats.KernelPlanInto); ok {
		return pi.MulVecInto(dst, v, workers)
	}
	return mulVec(x, plan, v, workers)
}

// vecMulInto is vecMul writing into dst when the plan supports it.
func vecMulInto(dst []float64, x formats.CompressedMatrix, plan formats.KernelPlan, v []float64, workers int) []float64 {
	if pi, ok := plan.(formats.KernelPlanInto); ok {
		return pi.VecMulInto(dst, v, workers)
	}
	return vecMul(x, plan, v, workers)
}

func mulVec(x formats.CompressedMatrix, plan formats.KernelPlan, v []float64, workers int) []float64 {
	if plan != nil {
		return plan.MulVec(v, workers)
	}
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MulVecParallel(v, workers)
		}
	}
	return x.MulVec(v)
}

func vecMul(x formats.CompressedMatrix, plan formats.KernelPlan, v []float64, workers int) []float64 {
	if plan != nil {
		return plan.VecMul(v, workers)
	}
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.VecMulParallel(v, workers)
		}
	}
	return x.VecMul(v)
}

func mulMat(x formats.CompressedMatrix, plan formats.KernelPlan, m *matrix.Dense, workers int) *matrix.Dense {
	if plan != nil {
		return plan.MulMat(m, workers)
	}
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MulMatParallel(m, workers)
		}
	}
	return x.MulMat(m)
}

func matMul(x formats.CompressedMatrix, plan formats.KernelPlan, m *matrix.Dense, workers int) *matrix.Dense {
	if plan != nil {
		return plan.MatMul(m, workers)
	}
	if workers > 1 {
		if p, ok := x.(formats.ParallelOps); ok {
			return p.MatMulParallel(m, workers)
		}
	}
	return x.MatMul(m)
}
