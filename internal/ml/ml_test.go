package ml

import (
	"math"
	"testing"
	"time"

	"toc/internal/core"
	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/matrix"
)

func denseBatch(x *matrix.Dense) formats.CompressedMatrix {
	return formats.MustGet("DEN")(x)
}

// analytic gradient via one tiny Step: grad = (W_before − W_after)/lr.
func stepGradient(t *testing.T, mk func() Model, getW func(Model) []float64,
	x *matrix.Dense, y []float64) []float64 {
	t.Helper()
	const lr = 1e-6
	m := mk()
	before := append([]float64(nil), getW(m)...)
	m.Step(denseBatch(x), y, lr)
	after := getW(m)
	g := make([]float64, len(before))
	for i := range g {
		g[i] = (before[i] - after[i]) / lr
	}
	return g
}

// numeric gradient of the loss via central differences on each weight.
func numericGradient(t *testing.T, mk func() Model, getW func(Model) []float64,
	x *matrix.Dense, y []float64) []float64 {
	t.Helper()
	const eps = 1e-6
	m := mk()
	w := getW(m)
	g := make([]float64, len(w))
	for i := range w {
		orig := w[i]
		w[i] = orig + eps
		lp := m.Loss(denseBatch(x), y)
		w[i] = orig - eps
		lm := m.Loss(denseBatch(x), y)
		w[i] = orig
		g[i] = (lp - lm) / (2 * eps)
	}
	return g
}

func gradCheck(t *testing.T, name string, mk func() Model, getW func(Model) []float64,
	x *matrix.Dense, y []float64, tol float64) {
	t.Helper()
	ga := stepGradient(t, mk, getW, x, y)
	gn := numericGradient(t, mk, getW, x, y)
	for i := range ga {
		if math.Abs(ga[i]-gn[i]) > tol*(1+math.Abs(gn[i])) {
			t.Errorf("%s: grad[%d] analytic %v vs numeric %v", name, i, ga[i], gn[i])
		}
	}
}

func smallProblem() (*matrix.Dense, []float64) {
	x := matrix.NewDenseFromRows([][]float64{
		{1, 0.5, 0},
		{0, 1.5, 1},
		{1, 0, 1},
		{0.5, 0.5, 0.5},
	})
	y := []float64{1, 0, 1, 0}
	return x, y
}

func TestLinRegGradient(t *testing.T) {
	x, y := smallProblem()
	mk := func() Model {
		m := NewLinReg(3)
		m.W = []float64{0.3, -0.2, 0.1}
		return m
	}
	gradCheck(t, "linreg", mk, func(m Model) []float64 { return m.(*LinReg).W }, x, y, 1e-5)
}

func TestLogRegGradient(t *testing.T) {
	x, y := smallProblem()
	mk := func() Model {
		m := NewLogReg(3)
		m.W = []float64{0.3, -0.2, 0.1}
		return m
	}
	gradCheck(t, "logreg", mk, func(m Model) []float64 { return m.(*LogReg).W }, x, y, 1e-5)
}

func TestSVMGradient(t *testing.T) {
	x, y := smallProblem()
	mk := func() Model {
		m := NewSVM(3)
		m.L2 = 0 // hinge only; L2 would shift Step vs Loss comparison
		m.W = []float64{0.05, -0.02, 0.01}
		return m
	}
	gradCheck(t, "svm", mk, func(m Model) []float64 { return m.(*SVM).W }, x, y, 1e-4)
}

func TestNNGradientFirstLayer(t *testing.T) {
	x, y := smallProblem()
	mk := func() Model { return NewNN(3, []int{4}, 2, 42) }
	getW := func(m Model) []float64 { return m.(*NN).W[0].Data() }
	gradCheck(t, "nn-W0", mk, getW, x, y, 1e-4)
}

func TestNNGradientOutputLayerMulticlass(t *testing.T) {
	x, _ := smallProblem()
	y := []float64{2, 0, 1, 2}
	mk := func() Model { return NewNN(3, []int{4}, 3, 7) }
	getW := func(m Model) []float64 { return m.(*NN).W[1].Data() }
	gradCheck(t, "nn-Wout", mk, getW, x, y, 1e-4)
	getW0 := func(m Model) []float64 { return m.(*NN).W[0].Data() }
	gradCheck(t, "nn-W0-mc", mk, getW0, x, y, 1e-4)
}

// Training with compressed batches must produce exactly the same model as
// training with dense batches: the strongest end-to-end check that every
// compressed kernel is correct in context.
func TestCompressedTrainingMatchesDense(t *testing.T) {
	d, err := data.Generate("census", 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(2)
	for _, model := range []string{"lr", "svm", "linreg", "nn"} {
		ref, _ := NewModel(model, d.X.Cols(), d.Classes, 0.1, 5)
		denSrc := NewMemorySource(d, 50, formats.MustGet("DEN"))
		Train(ref, denSrc, 3, 0.1, nil)

		for _, format := range []string{"TOC", "CSR", "CVI", "CLA", "Gzip"} {
			m2, _ := NewModel(model, d.X.Cols(), d.Classes, 0.1, 5)
			src := NewMemorySource(d, 50, formats.MustGet(format))
			Train(m2, src, 3, 0.1, nil)
			if !modelsClose(ref, m2, 1e-8) {
				t.Errorf("%s trained with %s differs from DEN", model, format)
			}
		}
	}
}

func modelsClose(a, b Model, tol float64) bool {
	va, vb := flattenParams(a), flattenParams(b)
	if len(va) != len(vb) {
		return false
	}
	for i := range va {
		if math.Abs(va[i]-vb[i]) > tol {
			return false
		}
	}
	return true
}

func flattenParams(m Model) []float64 {
	switch v := m.(type) {
	case *LinReg:
		return append(append([]float64(nil), v.W...), v.B)
	case *LogReg:
		return append(append([]float64(nil), v.W...), v.B)
	case *SVM:
		return append(append([]float64(nil), v.W...), v.B)
	case *NN:
		var out []float64
		for l := range v.W {
			out = append(out, v.W[l].Data()...)
			out = append(out, v.B[l]...)
		}
		return out
	case *OneVsRest:
		var out []float64
		for _, sub := range v.Models {
			out = append(out, flattenParams(sub)...)
		}
		return out
	}
	return nil
}

func TestLogRegLearnsSeparableData(t *testing.T) {
	d, _ := data.Generate("census", 1500, 3)
	d.ShuffleOnce(4)
	m := NewLogReg(d.X.Cols())
	src := NewMemorySource(d, 100, formats.MustGet("TOC"))
	res := Train(m, src, 8, 0.5, nil)
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}
	if err := EvaluateError(m, src); err > 0.25 {
		t.Fatalf("training error %.3f too high", err)
	}
}

func TestSVMLearns(t *testing.T) {
	d, _ := data.Generate("kdd99", 1200, 5)
	d.ShuffleOnce(6)
	m := NewSVM(d.X.Cols())
	src := NewMemorySource(d, 100, formats.MustGet("TOC"))
	Train(m, src, 10, 0.2, nil)
	if err := EvaluateError(m, src); err > 0.3 {
		t.Fatalf("training error %.3f too high", err)
	}
}

func TestNNLearnsMulticlass(t *testing.T) {
	d, _ := data.Generate("mnist", 1200, 7)
	d.ShuffleOnce(8)
	m := NewNN(d.X.Cols(), []int{20, 10}, d.Classes, 9)
	src := NewMemorySource(d, 100, formats.MustGet("TOC"))
	res := Train(m, src, 15, 0.8, nil)
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Fatalf("NN loss did not decrease: first %.4f last %.4f", first, last)
	}
	base := 1.0 - 1.0/float64(d.Classes) // error of random guessing
	if err := EvaluateError(m, src); err > base*0.9 {
		t.Fatalf("NN training error %.3f barely beats chance %.3f", err, base)
	}
}

func TestOneVsRestPredictsAllClasses(t *testing.T) {
	d, _ := data.Generate("mnist", 800, 10)
	d.ShuffleOnce(11)
	m := NewOneVsRest(d.Classes, func() BinaryClassifier { return NewLogReg(d.X.Cols()) })
	src := NewMemorySource(d, 100, formats.MustGet("CSR"))
	Train(m, src, 6, 0.5, nil)
	pred := m.Predict(src.batches[0])
	for _, p := range pred {
		if p < 0 || p >= float64(d.Classes) {
			t.Fatalf("prediction %v out of class range", p)
		}
	}
	if err := EvaluateError(m, src); err > 0.6 {
		t.Fatalf("OVR error %.3f too high", err)
	}
}

func TestMGDSpectrumBatchSizes(t *testing.T) {
	// MGD must run for batch sizes 1 (SGD) and |S| (BGD) as §2.1.2 notes.
	d, _ := data.Generate("census", 120, 13)
	for _, bs := range []int{1, 10, 120} {
		m := NewLogReg(d.X.Cols())
		src := NewMemorySource(d, bs, formats.MustGet("TOC"))
		res := Train(m, src, 2, 0.3, nil)
		if len(res.EpochLoss) != 2 {
			t.Fatalf("batch size %d: %d epochs recorded", bs, len(res.EpochLoss))
		}
	}
}

func TestTrainCallback(t *testing.T) {
	d, _ := data.Generate("census", 100, 14)
	m := NewLogReg(d.X.Cols())
	src := NewMemorySource(d, 50, formats.MustGet("DEN"))
	var calls int
	res := Train(m, src, 3, 0.1, func(epoch int, _ time.Duration, _ float64) { calls++ })
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
	if len(res.EpochTime) != 3 || res.Total <= 0 {
		t.Fatalf("result timings malformed: %+v", res)
	}
}

func TestErrorRateAndAccuracy(t *testing.T) {
	if got := ErrorRate([]float64{1, 0, 1}, []float64{1, 1, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("ErrorRate = %v", got)
	}
	if got := Accuracy([]float64{1, 0, 1}, []float64{1, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	if ErrorRate(nil, nil) != 0 {
		t.Fatal("empty ErrorRate should be 0")
	}
}

func TestNewModelNames(t *testing.T) {
	for _, name := range []string{"linreg", "lr", "svm", "nn"} {
		if _, err := NewModel(name, 10, 2, 1, 1); err != nil {
			t.Errorf("NewModel(%q): %v", name, err)
		}
	}
	if _, err := NewModel("nope", 10, 2, 1, 1); err == nil {
		t.Error("unknown model should error")
	}
	// multiclass dispatch
	m, _ := NewModel("lr", 10, 5, 1, 1)
	if _, ok := m.(*OneVsRest); !ok {
		t.Error("multiclass lr should be OneVsRest")
	}
	m2, _ := NewModel("nn", 10, 5, 1, 1)
	if nn := m2.(*NN); nn.Sizes[len(nn.Sizes)-1] != 5 {
		t.Error("multiclass nn output width wrong")
	}
}

// The kernel-worker knob must never change a gradient: every model's Grad
// at Workers=N is bitwise identical to Workers=1 on a TOC batch, because
// the parallel kernels are bitwise identical to the sequential ones. DEN
// does not implement formats.ParallelOps, so the dispatch must also fall
// back cleanly.
func TestKernelWorkersGradBitwiseIdentical(t *testing.T) {
	d, err := data.Generate("imagenet", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	x, y := d.Batch(0, 200)
	for _, method := range []string{"TOC", "DEN"} {
		c := formats.MustGet(method)(x)
		for _, name := range []string{"linreg", "lr", "svm", "nn"} {
			mk := func() GradModel {
				m, err := NewModel(name, x.Cols(), d.Classes, 0.2, 11)
				if err != nil {
					t.Fatal(err)
				}
				return m.(GradModel)
			}
			serial := mk()
			want := make([]float64, serial.NumParams())
			wantLoss := serial.Grad(c, y, want)
			for _, workers := range []int{2, 7, 16} {
				m := mk()
				kp, ok := m.(KernelParallel)
				if !ok {
					t.Fatalf("%s does not implement KernelParallel", name)
				}
				kp.SetKernelWorkers(workers)
				got := make([]float64, m.NumParams())
				gotLoss := m.Grad(c, y, got)
				if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
					t.Fatalf("%s/%s workers=%d: loss %g != %g", method, name, workers, gotLoss, wantLoss)
				}
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s/%s workers=%d: gradient differs at %d", method, name, workers, i)
					}
				}
			}
		}
	}
}

// The per-step KernelPlan amortization, proven white-box: one Grad call
// on a TOC batch builds the decode tree C' exactly once — for every model
// family, including one-vs-rest, whose 10 per-class gradients (20
// compressed multiplications on mnist) historically paid 20 builds.
func TestGradBuildsDecodeTreeOncePerBatch(t *testing.T) {
	d, err := data.Generate("mnist", 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(6)
	x, y := d.Batch(0, 150)
	c := formats.MustGet("TOC")(x)
	for _, name := range []string{"linreg", "lr", "svm", "nn"} {
		for _, workers := range []int{1, 8} {
			m, err := NewModel(name, x.Cols(), d.Classes, 0.2, 9)
			if err != nil {
				t.Fatal(err)
			}
			gm := m.(GradModel)
			m.(KernelParallel).SetKernelWorkers(workers)
			g := make([]float64, gm.NumParams())
			gm.Grad(c, y, g) // warm any lazy state
			before := core.TreeBuilds()
			gm.Grad(c, y, g)
			if got := core.TreeBuilds() - before; got != 1 {
				t.Errorf("%s workers=%d: Grad built C' %d times, want exactly 1", name, workers, got)
			}
		}
	}
}
