package ml

import (
	"testing"

	"toc/internal/data"
	"toc/internal/formats"
	"toc/internal/testutil"
)

// TestLinGradAllocs pins the allocation-free steady state promised by
// linGrad: with a warm kernel plan (tree already built) and a reused out
// buffer, every GLM gradient on a TOC batch allocates nothing — the
// score/residual vectors come from the pool and both multiplications
// write into caller-owned memory through formats.KernelPlanInto.
func TestLinGradAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector, so the pool-hit pin cannot hold")
	}
	d, err := data.Generate("imagenet", 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(4)
	x, y := d.Batch(0, 128)
	c := formats.MustGet("TOC")(x)
	plan := c.(formats.ParallelOps).NewKernelPlan()
	yb := make([]float64, len(y))
	for i, yi := range y {
		if yi != 0 {
			yb[i] = 1
		}
	}
	models := map[string]planGrad{
		"linreg": NewLinReg(x.Cols()),
		"logreg": NewLogReg(x.Cols()),
		"svm":    NewSVM(x.Cols()),
	}
	for name, pg := range models {
		out := make([]float64, x.Cols()+1)
		pg.gradPlan(c, plan, yb, out) // build the tree, warm the scratch pool
		got := testing.AllocsPerRun(50, func() { pg.gradPlan(c, plan, yb, out) })
		if got != 0 {
			t.Errorf("%s: gradPlan allocates %.0f objects/op, want 0", name, got)
		}
	}
}
