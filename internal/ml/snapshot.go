package ml

import (
	"fmt"

	"toc/internal/matrix"
)

// SnapshotModel is a GradModel whose flat parameter vector can be
// exported, restored and cloned. This is what an asynchronous training
// driver (internal/engine's bounded-staleness mode) needs: the updater
// goroutine owns the live model, and each worker owns a private clone
// whose parameters it refreshes from a versioned snapshot before every
// gradient, so gradient reads never race parameter writes.
//
// Params and SetParams use exactly the flat layout Grad writes and
// ApplyGrad consumes, so a parameter vector round-trips bit for bit:
// SetParams(Params()) is the identity, and a clone's Grad on the same
// snapshot is bitwise identical to the original model's. Every model
// NewModel returns implements SnapshotModel.
type SnapshotModel interface {
	GradModel
	// Params writes the current flat parameter vector into out, which
	// must have length NumParams().
	Params(out []float64)
	// SetParams overwrites the parameters from a flat vector laid out as
	// Params writes it.
	SetParams(p []float64)
	// Clone returns an independent model with identical parameters and
	// hyperparameters; mutating either side never affects the other.
	Clone() SnapshotModel
}

// checkParamsLen panics when a Params/SetParams buffer does not match the
// model's flat parameter count — silently truncating a snapshot would
// corrupt asynchronous training in ways that surface much later.
func checkParamsLen(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("ml: %s params buffer has %d elements, model has %d", name, got, want))
	}
}

// linParams is the shared [W..., B] export for the linear models.
func linParams(out, w []float64, b float64) {
	copy(out, w)
	out[len(w)] = b
}

// setLinParams is the shared [W..., B] import for the linear models.
func setLinParams(p, w []float64, b *float64) {
	copy(w, p)
	*b = p[len(w)]
}

// Params writes the flat [W..., B] vector.
func (m *LinReg) Params(out []float64) {
	checkParamsLen("LinReg", len(out), m.NumParams())
	linParams(out, m.W, m.B)
}

// SetParams restores the flat [W..., B] vector.
func (m *LinReg) SetParams(p []float64) {
	checkParamsLen("LinReg", len(p), m.NumParams())
	setLinParams(p, m.W, &m.B)
}

// Clone returns an independent copy with the same weights and knobs.
func (m *LinReg) Clone() SnapshotModel {
	c := *m
	c.W = append([]float64(nil), m.W...)
	c.step = nil
	return &c
}

// Params writes the flat [W..., B] vector.
func (m *LogReg) Params(out []float64) {
	checkParamsLen("LogReg", len(out), m.NumParams())
	linParams(out, m.W, m.B)
}

// SetParams restores the flat [W..., B] vector.
func (m *LogReg) SetParams(p []float64) {
	checkParamsLen("LogReg", len(p), m.NumParams())
	setLinParams(p, m.W, &m.B)
}

// Clone returns an independent copy with the same weights and knobs.
func (m *LogReg) Clone() SnapshotModel {
	c := *m
	c.W = append([]float64(nil), m.W...)
	c.step = nil
	return &c
}

// Params writes the flat [W..., B] vector.
func (m *SVM) Params(out []float64) {
	checkParamsLen("SVM", len(out), m.NumParams())
	linParams(out, m.W, m.B)
}

// SetParams restores the flat [W..., B] vector.
func (m *SVM) SetParams(p []float64) {
	checkParamsLen("SVM", len(p), m.NumParams())
	setLinParams(p, m.W, &m.B)
}

// Clone returns an independent copy with the same weights and knobs.
func (m *SVM) Clone() SnapshotModel {
	c := *m
	c.W = append([]float64(nil), m.W...)
	c.step = nil
	return &c
}

// snapshotModel asserts one per-class model supports snapshotting;
// NewOneVsRest only ever builds LogReg/SVM ensembles, which do. The
// per-element assertion keeps Params/SetParams allocation-free: the
// async engine calls Params under its run-wide lock on every gradient.
func snapshotModel(class int, m BinaryClassifier) SnapshotModel {
	sm, ok := m.(SnapshotModel)
	if !ok {
		panic(fmt.Sprintf("ml: one-vs-rest class %d model %T does not implement SnapshotModel", class, m))
	}
	return sm
}

// Params concatenates the per-class [W..., B] vectors in class order —
// the same layout Grad and ApplyGrad use. The length check accumulates
// in the walk rather than calling NumParams (which materializes a
// per-class slice): this runs under the async engine's run-wide lock on
// every gradient.
func (o *OneVsRest) Params(out []float64) {
	off := 0
	for c, m := range o.Models {
		sm := snapshotModel(c, m)
		np := sm.NumParams()
		if off+np > len(out) {
			checkParamsLen("OneVsRest", len(out), o.NumParams())
		}
		sm.Params(out[off : off+np])
		off += np
	}
	checkParamsLen("OneVsRest", len(out), off)
}

// SetParams restores every per-class slice of the concatenated vector.
func (o *OneVsRest) SetParams(p []float64) {
	off := 0
	for c, m := range o.Models {
		sm := snapshotModel(c, m)
		np := sm.NumParams()
		if off+np > len(p) {
			checkParamsLen("OneVsRest", len(p), o.NumParams())
		}
		sm.SetParams(p[off : off+np])
		off += np
	}
	checkParamsLen("OneVsRest", len(p), off)
}

// Clone clones every per-class model.
func (o *OneVsRest) Clone() SnapshotModel {
	c := &OneVsRest{Models: make([]BinaryClassifier, len(o.Models))}
	for i, m := range o.Models {
		clone := snapshotModel(i, m).Clone()
		bc, ok := clone.(BinaryClassifier)
		if !ok {
			panic(fmt.Sprintf("ml: one-vs-rest class %d clone %T is not a BinaryClassifier", i, clone))
		}
		c.Models[i] = bc
	}
	return c
}

// Params writes the layer-by-layer [dW0..., dB0..., dW1..., dB1..., ...]
// vector (dW row-major) — the same layout Grad and ApplyGrad use.
func (n *NN) Params(out []float64) {
	checkParamsLen("NN", len(out), n.NumParams())
	off := 0
	for l := range n.W {
		wd := n.W[l].Data()
		copy(out[off:off+len(wd)], wd)
		off += len(wd)
		copy(out[off:off+len(n.B[l])], n.B[l])
		off += len(n.B[l])
	}
}

// SetParams restores every layer's weights and biases.
func (n *NN) SetParams(p []float64) {
	checkParamsLen("NN", len(p), n.NumParams())
	off := 0
	for l := range n.W {
		wd := n.W[l].Data()
		copy(wd, p[off:off+len(wd)])
		off += len(wd)
		copy(n.B[l], p[off:off+len(n.B[l])])
		off += len(n.B[l])
	}
}

// Clone deep-copies every layer.
func (n *NN) Clone() SnapshotModel {
	c := *n
	c.Sizes = append([]int(nil), n.Sizes...)
	c.W = make([]*matrix.Dense, len(n.W))
	for l := range n.W {
		c.W[l] = n.W[l].Clone()
	}
	c.B = make([][]float64, len(n.B))
	for l := range n.B {
		c.B[l] = append([]float64(nil), n.B[l]...)
	}
	c.step = nil
	return &c
}
