// Package ml implements the paper's §2.1 machine-learning training setting:
// empirical risk minimization with mini-batch stochastic gradient descent
// (MGD) for the four evaluated models — linear regression, logistic
// regression, linear SVM and a feed-forward neural network.
//
// Every gradient is expressed through the core matrix operations of Table
// 1 (A·v, v·A, A·M, M·A) applied to the *compressed* mini-batch, so any
// scheme implementing formats.CompressedMatrix trains identically; the
// schemes differ only in speed and size. MGD covers the whole gradient
// descent spectrum (§2.1.2): batch size 1 is SGD and batch size |S| is BGD.
package ml

import (
	"math"

	"toc/internal/formats"
)

// Model is one empirical-risk model trained by mini-batch gradient steps.
type Model interface {
	// Step computes the averaged mini-batch gradient (Equation 2) on
	// (x, y), updates the parameters with learning rate lr, and returns
	// the mini-batch loss evaluated before the update.
	Step(x formats.CompressedMatrix, y []float64, lr float64) float64
	// Loss evaluates the mean loss on a batch without updating.
	Loss(x formats.CompressedMatrix, y []float64) float64
	// Predict returns predicted labels: class ids for classifiers,
	// real-valued outputs for regression.
	Predict(x formats.CompressedMatrix) []float64
}

func sigmoid(z float64) float64 {
	// Numerically stable on both tails.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// clampProb keeps probabilities away from 0/1 so cross-entropy stays finite.
func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
