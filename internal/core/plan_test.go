package core

import (
	"math/rand"
	"sync"
	"testing"

	"toc/internal/matrix"
)

// A plan call must be bitwise identical to the corresponding Batch method
// for every variant and every worker count — the contract that lets the
// ml layer thread one plan through a step's kernels without changing any
// trajectory.
func TestKernelPlanMatchesBatchKernels(t *testing.T) {
	workerCounts := []int{0, 1, 2, 7, 16}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		rows := 8 + rng.Intn(100)
		cols := 2 + rng.Intn(30)
		for name, b := range rightMulBatches(rng, rows, cols) {
			plan := b.NewKernelPlan()
			vr := randVec(rng, cols)
			vl := randVec(rng, rows)
			mr := matrix.NewDense(cols, 5)
			fillRand(rng, mr)
			ml := matrix.NewDense(5, rows)
			fillRand(rng, ml)
			wantMulVec := b.MulVec(vr)
			wantVecMul := b.VecMul(vl)
			wantMulMat := b.MulMat(mr)
			wantMatMul := b.MatMul(ml)
			for _, w := range workerCounts {
				if !bitsEqual(plan.MulVec(vr, w), wantMulVec) {
					t.Fatalf("seed %d %s workers=%d: plan MulVec differs", seed, name, w)
				}
				if !bitsEqual(plan.VecMul(vl, w), wantVecMul) {
					t.Fatalf("seed %d %s workers=%d: plan VecMul differs", seed, name, w)
				}
				if !bitsEqual(plan.MulMat(mr, w).Data(), wantMulMat.Data()) {
					t.Fatalf("seed %d %s workers=%d: plan MulMat differs", seed, name, w)
				}
				if !bitsEqual(plan.MatMul(ml, w).Data(), wantMatMul.Data()) {
					t.Fatalf("seed %d %s workers=%d: plan MatMul differs", seed, name, w)
				}
			}
		}
	}
}

// One plan hammered from many goroutines (each mixing all four kernels
// and worker counts) must keep returning bitwise-correct results: the
// cached tree is read-only and accumulators are pooled per call. CI runs
// this under -race at GOMAXPROCS=2, where shard interleavings are
// nastiest.
func TestKernelPlanConcurrentReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, b := range rightMulBatches(rng, 120, 24) {
		plan := b.NewKernelPlan()
		vr := randVec(rng, 24)
		vl := randVec(rng, 120)
		mr := matrix.NewDense(24, 6)
		fillRand(rng, mr)
		ml := matrix.NewDense(6, 120)
		fillRand(rng, ml)
		wantMulVec := b.MulVec(vr)
		wantVecMul := b.VecMul(vl)
		wantMulMat := b.MulMat(mr)
		wantMatMul := b.MatMul(ml)

		const goroutines, iters = 8, 20
		errs := make(chan string, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for it := 0; it < iters; it++ {
					w := (g + it) % 5 // 0..4 workers, mixed per call
					if !bitsEqual(plan.MulVec(vr, w), wantMulVec) {
						errs <- name + ": concurrent plan MulVec diverged"
						return
					}
					if !bitsEqual(plan.VecMul(vl, w), wantVecMul) {
						errs <- name + ": concurrent plan VecMul diverged"
						return
					}
					if !bitsEqual(plan.MulMat(mr, w).Data(), wantMulMat.Data()) {
						errs <- name + ": concurrent plan MulMat diverged"
						return
					}
					if !bitsEqual(plan.MatMul(ml, w).Data(), wantMatMul.Data()) {
						errs <- name + ": concurrent plan MatMul diverged"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

// The white-box build counter: constructing a plan costs exactly one C'
// build for the logical variants (zero for SparseOnly, which has no
// tree), and kernel calls through the plan cost zero more — while the
// plain Batch kernels pay one build per call.
func TestKernelPlanBuildCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := redundantMatrix(rng, 60, 12, 0.5, 4)
	v := randVec(rng, 12)
	u := randVec(rng, 60)

	b := Compress(a)
	before := TreeBuilds()
	plan := b.NewKernelPlan()
	if got := TreeBuilds() - before; got != 1 {
		t.Fatalf("NewKernelPlan: %d tree builds, want 1", got)
	}
	before = TreeBuilds()
	plan.MulVec(v, 1)
	plan.VecMul(u, 4)
	plan.MulMat(matrix.NewDense(12, 3), 2)
	plan.MatMul(matrix.NewDense(3, 60), 2)
	if got := TreeBuilds() - before; got != 0 {
		t.Fatalf("plan kernel calls: %d tree builds, want 0", got)
	}
	before = TreeBuilds()
	b.MulVec(v)
	b.VecMul(u)
	if got := TreeBuilds() - before; got != 2 {
		t.Fatalf("plain kernel calls: %d tree builds, want 2 (one per op)", got)
	}

	sp := CompressVariant(a, SparseOnly)
	before = TreeBuilds()
	spPlan := sp.NewKernelPlan()
	spPlan.MulVec(v, 2)
	if got := TreeBuilds() - before; got != 0 {
		t.Fatalf("SparseOnly plan: %d tree builds, want 0", got)
	}
}

func TestKernelPlanDimMismatchPanics(t *testing.T) {
	plan := Compress(matrix.NewDense(30, 4)).NewKernelPlan()
	for name, call := range map[string]func(){
		"MulVec": func() { plan.MulVec(make([]float64, 3), 2) },
		"VecMul": func() { plan.VecMul(make([]float64, 3), 2) },
		"MulMat": func() { plan.MulMat(matrix.NewDense(3, 2), 2) },
		"MatMul": func() { plan.MatMul(matrix.NewDense(2, 3), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			call()
		}()
	}
}

// BenchmarkKernelPlanStep measures one model step's kernel pair (A·v
// forward + v·A backward) with and without a shared plan — the per-step
// decode-tree amortization the plan exists for.
func BenchmarkKernelPlanStep(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	batch := Compress(redundantMatrix(rng, 2000, 120, 0.6, 5))
	v := randVec(rng, 120)
	u := randVec(rng, 2000)
	b.Run("per-op-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MulVec(v)
			batch.VecMul(u)
		}
	})
	b.Run("shared-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := batch.NewKernelPlan()
			plan.MulVec(v, 1)
			plan.VecMul(u, 1)
		}
	})
}
