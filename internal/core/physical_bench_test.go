package core

import (
	"math/rand"
	"testing"
)

// Before/after benchmarks for the physical codec hot paths: buildImage
// (Serialize on a batch whose image is stale — the spill-ingest cost) and
// Deserialize (the spill-read decode cost). The exact-size preallocation
// plus bulk little-endian section writes cut both allocations and copies
// versus the historical append-per-element loops.

func benchVariantBatches(b *testing.B) map[string]*Batch {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	a := redundantMatrix(rng, 500, 120, 0.5, 5)
	out := map[string]*Batch{}
	for _, v := range allVariants {
		out[v.String()] = CompressVariant(a, v)
	}
	return out
}

func BenchmarkSerialize(b *testing.B) {
	for name, batch := range benchVariantBatches(b) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(batch.Serialize())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Rebuild the image each iteration, as spill ingest of a
				// freshly scaled/encoded batch would.
				batch.img = nil
				batch.Serialize()
			}
		})
	}
}

func BenchmarkDeserialize(b *testing.B) {
	for name, batch := range benchVariantBatches(b) {
		img := batch.Serialize()
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(img)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Deserialize(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
