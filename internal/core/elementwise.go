package core

import "toc/internal/matrix"

// Element-wise operations. Sparse-safe ops (zero stays zero) touch only
// the unique values — Algorithm 3 scans I. Sparse-unsafe ops (zero may
// become non-zero) must fully decode first — Algorithm 6.

// Scale returns a new batch representing A.*c (Algorithm 3). Only the
// unique column-index:value pairs are touched, so the cost is O(|I|)
// regardless of the matrix size; the encoded table D is shared with the
// receiver, not copied.
func (b *Batch) Scale(c float64) *Batch {
	nb := &Batch{rows: b.rows, cols: b.cols, variant: b.variant}
	if b.variant == SparseOnly {
		nb.srStarts = b.srStarts
		nb.srCols = b.srCols
		nb.srVals = make([]float64, len(b.srVals))
		for i, v := range b.srVals {
			nb.srVals[i] = v * c
		}
		return nb
	}
	nb.d = b.d
	nb.i = make([]Pair, len(b.i))
	for i, p := range b.i {
		nb.i[i] = Pair{Col: p.Col, Val: p.Val * c}
	}
	return nb
}

// Square returns a new batch representing A.^2 element-wise (sparse-safe).
func (b *Batch) Square() *Batch {
	nb := &Batch{rows: b.rows, cols: b.cols, variant: b.variant}
	if b.variant == SparseOnly {
		nb.srStarts = b.srStarts
		nb.srCols = b.srCols
		nb.srVals = make([]float64, len(b.srVals))
		for i, v := range b.srVals {
			nb.srVals[i] = v * v
		}
		return nb
	}
	nb.d = b.d
	nb.i = make([]Pair, len(b.i))
	for i, p := range b.i {
		nb.i[i] = Pair{Col: p.Col, Val: p.Val * p.Val}
	}
	return nb
}

// AddScalar computes the sparse-unsafe A.+c (Algorithm 6): the batch is
// fully decoded by backtracking the decode tree, then the dense op runs on
// the reconstruction.
func (b *Batch) AddScalar(c float64) *matrix.Dense {
	return b.Decode().AddScalar(c)
}

// AddDense computes the sparse-unsafe A+M via full decoding.
func (b *Batch) AddDense(m *matrix.Dense) *matrix.Dense {
	return b.Decode().Add(m)
}
