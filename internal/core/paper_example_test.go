package core

import (
	"reflect"
	"testing"

	"toc/internal/matrix"
)

// figure3Input is the original table A of the paper's Figure 3 running
// example. The paper's column indexes are 1-based; this implementation is
// 0-based, so every column index below is the paper's minus one.
func figure3Input() *matrix.Dense {
	return matrix.NewDenseFromRows([][]float64{
		{1.1, 2, 3, 1.4},
		{1.1, 2, 3, 0},
		{0, 1.1, 3, 1.4},
		{1.1, 2, 0, 0},
	})
}

func TestFigure3SparseEncoding(t *testing.T) {
	b := SparseEncode(figure3Input())
	want := []SparseRow{
		{{0, 1.1}, {1, 2}, {2, 3}, {3, 1.4}},
		{{0, 1.1}, {1, 2}, {2, 3}},
		{{1, 1.1}, {2, 3}, {3, 1.4}},
		{{0, 1.1}, {1, 2}},
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("sparse encoded table = %v, want %v", b, want)
	}
}

// TestFigure3RunningExample checks the exact logical encoding outputs of
// Figure 3: the first layer I (nodes 1..5) and the encoded table D.
func TestFigure3RunningExample(t *testing.T) {
	I, D := PrefixTreeEncode(SparseEncode(figure3Input()))

	wantI := []Pair{{0, 1.1}, {1, 2}, {2, 3}, {3, 1.4}, {1, 1.1}}
	if !reflect.DeepEqual(I, wantI) {
		t.Errorf("I = %v, want %v", I, wantI)
	}

	wantD := [][]uint32{{1, 2, 3, 4}, {6, 3}, {5, 8}, {6}}
	if !reflect.DeepEqual(D, wantD) {
		t.Errorf("D = %v, want %v", D, wantD)
	}
}

// TestAlgorithm1TraceTable2 reproduces the paper's Table 2: every
// iteration of the phase-II while loop on the Figure 3 example.
func TestAlgorithm1TraceTable2(t *testing.T) {
	_, _, trace := PrefixTreeEncodeTrace(SparseEncode(figure3Input()))

	type row struct {
		tuple, i int
		match    uint32
		app      uint32
		added    uint32
		addedSeq []Pair
	}
	want := []row{
		// R1
		{0, 0, 1, 1, 6, []Pair{{0, 1.1}, {1, 2}}},
		{0, 1, 2, 2, 7, []Pair{{1, 2}, {2, 3}}},
		{0, 2, 3, 3, 8, []Pair{{2, 3}, {3, 1.4}}},
		{0, 3, 4, 4, 0, nil}, // AddNode NOT called
		// R2
		{1, 0, 6, 6, 9, []Pair{{0, 1.1}, {1, 2}, {2, 3}}},
		{1, 2, 3, 3, 0, nil},
		// R3
		{2, 0, 5, 5, 10, []Pair{{1, 1.1}, {2, 3}}},
		{2, 1, 8, 8, 0, nil},
		// R4
		{3, 0, 6, 6, 0, nil},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace has %d steps, want %d", len(trace), len(want))
	}
	for k, w := range want {
		g := trace[k]
		if g.Tuple != w.tuple || g.I != w.i || g.MatchNode != w.match ||
			g.Appended != w.app || g.AddedNode != w.added ||
			!reflect.DeepEqual(g.AddedSeq, w.addedSeq) {
			t.Errorf("step %d = %+v, want %+v", k, g, w)
		}
	}
}

// TestBuildPrefixTreeTable4 reproduces the paper's Table 4: the decode
// tree C' rebuilt from I and D for the running example.
func TestBuildPrefixTreeTable4(t *testing.T) {
	I, D := PrefixTreeEncode(SparseEncode(figure3Input()))
	tree := BuildPrefixTree(I, flattenD(D))

	if tree.Len() != 11 {
		t.Fatalf("C' has %d nodes, want 11 (root + 10)", tree.Len())
	}
	wantKey := []Pair{
		{},                                           // root, unused
		{0, 1.1}, {1, 2}, {2, 3}, {3, 1.4}, {1, 1.1}, // first layer
		{1, 2}, {2, 3}, {3, 1.4}, {2, 3}, {2, 3}, // rebuilt phase-II nodes
	}
	wantParent := []uint32{0, 0, 0, 0, 0, 0, 1, 2, 3, 6, 5}
	for i := 1; i < tree.Len(); i++ {
		if tree.Key[i] != wantKey[i] {
			t.Errorf("Key[%d] = %v, want %v", i, tree.Key[i], wantKey[i])
		}
		if tree.Parent[i] != wantParent[i] {
			t.Errorf("Parent[%d] = %d, want %d", i, tree.Parent[i], wantParent[i])
		}
	}
}

// TestDecodeTreeSequences checks §3.1.1's sequence semantics on the
// running example: node 9 represents [1:1.1, 2:2, 3:3] (paper indexes).
func TestDecodeTreeSequences(t *testing.T) {
	I, D := PrefixTreeEncode(SparseEncode(figure3Input()))
	tree := BuildPrefixTree(I, flattenD(D))

	want := map[uint32][]Pair{
		1:  {{0, 1.1}},
		5:  {{1, 1.1}},
		6:  {{0, 1.1}, {1, 2}},
		9:  {{0, 1.1}, {1, 2}, {2, 3}},
		10: {{1, 1.1}, {2, 3}},
	}
	for idx, seq := range want {
		if got := tree.Seq(idx); !reflect.DeepEqual(got, seq) {
			t.Errorf("Seq(%d) = %v, want %v", idx, got, seq)
		}
	}
}

// TestFigure3PhysicalSections checks the Figure 3 physical encoding: the
// concatenated tree node indexes, the tuple start indexes, the column
// indexes of I, and the value dictionary.
func TestFigure3PhysicalSections(t *testing.T) {
	b := Compress(figure3Input())

	if got := b.d.Nodes; !reflect.DeepEqual(got, []uint32{1, 2, 3, 4, 6, 3, 5, 8, 6}) {
		t.Errorf("concatenated node indexes = %v", got)
	}
	// Figure 3 shows starts 0,4,6,8; our layout appends the total (9) as a
	// sentinel in place of a separate element count.
	if got := b.d.Starts; !reflect.DeepEqual(got, []uint32{0, 4, 6, 8, 9}) {
		t.Errorf("tuple start indexes = %v", got)
	}
	wantI := []Pair{{0, 1.1}, {1, 2}, {2, 3}, {3, 1.4}, {1, 1.1}}
	if !reflect.DeepEqual(b.i, wantI) {
		t.Errorf("I = %v, want %v", b.i, wantI)
	}
}

// TestFigure3OpsMatchDense runs every compressed kernel on the running
// example and compares against dense execution.
func TestFigure3OpsMatchDense(t *testing.T) {
	a := figure3Input()
	b := Compress(a)

	if !b.Decode().Equal(a) {
		t.Fatal("Decode != original")
	}

	v := []float64{1, -2, 0.5, 3}
	checkVec(t, "A·v", b.MulVec(v), a.MulVec(v))

	u := []float64{0.5, 1, -1, 2}
	checkVec(t, "v·A", b.VecMul(u), a.VecMul(u))

	m := matrix.NewDenseFromRows([][]float64{{1, 2}, {0, 1}, {3, 0}, {1, 1}})
	if got, want := b.MulMat(m), a.MulMat(m); !got.EqualApprox(want, 1e-12) {
		t.Errorf("A·M = %v, want %v", got, want)
	}

	m2 := matrix.NewDenseFromRows([][]float64{{1, 0, 2, -1}, {0.5, 1, 0, 0}})
	if got, want := b.MatMul(m2), a.MatMul(m2); !got.EqualApprox(want, 1e-12) {
		t.Errorf("M·A = %v, want %v", got, want)
	}

	if got, want := b.Scale(2.5).Decode(), a.Scale(2.5); !got.EqualApprox(want, 1e-12) {
		t.Errorf("A.*c = %v, want %v", got, want)
	}

	if got, want := b.AddScalar(1.5), a.AddScalar(1.5); !got.EqualApprox(want, 1e-12) {
		t.Errorf("A.+c = %v, want %v", got, want)
	}
}

func checkVec(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		diff := got[i] - want[i]
		if diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
			return
		}
	}
}

// TestSelfReferencingCode exercises the subtle Algorithm-2 case where a
// tuple's code references the node created by its own previous element.
// Within a matrix row column indexes strictly increase, so a (col,val)
// pair never repeats inside one tuple — but PrefixTreeEncode itself is
// more general (it accepts any tuple of pairs, like LZW accepts any
// string), and the replay in BuildPrefixTree must handle the
// self-referencing code that repeated pairs produce: [a,a,a] encodes to
// [1,2] where node 2 = [a,a] is created mid-tuple by element 0 and then
// referenced by element 1.
func TestSelfReferencingCode(t *testing.T) {
	a := Pair{Col: 0, Val: 5}
	I, D := PrefixTreeEncode([]SparseRow{{a, a, a}})
	if !reflect.DeepEqual(I, []Pair{a}) {
		t.Fatalf("I = %v, want [%v]", I, a)
	}
	if !reflect.DeepEqual(D, [][]uint32{{1, 2}}) {
		t.Fatalf("D = %v, want [[1 2]]", D)
	}
	tree := BuildPrefixTree(I, flattenD(D))
	if tree.Len() != 3 {
		t.Fatalf("tree has %d nodes, want 3", tree.Len())
	}
	if tree.Parent[2] != 1 || tree.Key[2] != a {
		t.Fatalf("node 2 = key %v parent %d, want key %v parent 1", tree.Key[2], tree.Parent[2], a)
	}
	if got := tree.Seq(2); !reflect.DeepEqual(got, []Pair{a, a}) {
		t.Fatalf("Seq(2) = %v, want [a a]", got)
	}
}
