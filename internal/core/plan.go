package core

import (
	"fmt"

	"toc/internal/matrix"
)

// KernelPlan caches the decode tree C' of one Batch so the 2-3 kernel
// calls a gradient step makes on the same mini-batch — the A·v or A·M
// forward pass plus the v·A or M·A gradient aggregation — share a single
// O(|I|+|D|) build instead of paying it per operation. The paper's cost
// model charges every kernel a rebuild of C'; a plan amortizes that
// charge across the step without changing any result: every plan method
// honors the parallel-kernel contract and returns bits identical to the
// corresponding Batch method for any workers value.
//
// The cached tree is read-only after construction and accumulators come
// from the shared scratch pool per call, so one plan is safe for
// concurrent use by multiple goroutines. A plan is tied to the batch it
// was built from; batches are immutable (Scale returns a new Batch), so
// it never goes stale.
//
// Each kernel has an Into variant that writes to a caller-owned
// destination, eliminating the last per-op allocation: a training loop
// that reuses its gradient buffers runs every step at zero steady-state
// allocations (pinned by TestPlanIntoAllocs).
type KernelPlan struct {
	b    *Batch
	tree *DecodeTree // nil for SparseOnly, which has no logical layer
}

// NewKernelPlan builds the batch's decode tree once and returns a plan
// sharing it across kernel calls. TreeBuilds exposes the white-box build
// counter that proves the amortization.
func (b *Batch) NewKernelPlan() *KernelPlan {
	p := &KernelPlan{b: b}
	if b.variant != SparseOnly {
		p.tree = BuildPrefixTree(b.i, b.d)
	}
	return p
}

// Batch returns the batch the plan was built for.
func (p *KernelPlan) Batch() *Batch { return p.b }

// intoVec validates or allocates a float destination of length n. The
// clear flag zeroes a caller-provided buffer for kernels that accumulate
// rather than overwrite; fresh allocations are already zero.
func intoVec(dst []float64, n int, clear bool, kernel string) []float64 {
	if dst == nil {
		return make([]float64, n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("core: KernelPlan.%s dst length %d != %d", kernel, len(dst), n))
	}
	if clear {
		for i := range dst {
			dst[i] = 0
		}
	}
	return dst
}

// intoMat validates or allocates a matrix destination of shape rows×cols,
// zeroing a caller-provided one (every matrix kernel accumulates).
func intoMat(dst *matrix.Dense, rows, cols int, kernel string) *matrix.Dense {
	if dst == nil {
		return matrix.NewDense(rows, cols)
	}
	if dst.Rows() != rows || dst.Cols() != cols {
		panic(fmt.Sprintf("core: KernelPlan.%s dst shape %dx%d != %dx%d",
			kernel, dst.Rows(), dst.Cols(), rows, cols))
	}
	d := dst.Data()
	for i := range d {
		d[i] = 0
	}
	return dst
}

// MulVec computes A·v with the cached tree; workers > 1 shards the D scan
// over result rows, workers <= 1 runs sequentially. Bitwise identical to
// Batch.MulVec either way.
func (p *KernelPlan) MulVec(v []float64, workers int) []float64 {
	return p.MulVecInto(nil, v, workers)
}

// MulVecInto is MulVec writing into dst (length rows, fully overwritten;
// nil allocates). It returns dst.
func (p *KernelPlan) MulVecInto(dst, v []float64, workers int) []float64 {
	b := p.b
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: KernelPlan.MulVec dim mismatch %d != %d", len(v), b.cols))
	}
	if workers < 1 {
		workers = 1
	}
	workers = rightWorkers(workers, b.rows)
	r := intoVec(dst, b.rows, false, "MulVecInto")
	if b.variant == SparseOnly {
		b.mulVecSparsePar(v, r, workers)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	b.mulVecTree(p.tree, sc, v, r, workers)
	return r
}

// MulMat computes A·M with the cached tree; workers > 1 shards the H scan
// over result columns and the D scan over result rows, workers <= 1 runs
// sequentially. Bitwise identical to Batch.MulMat either way.
func (p *KernelPlan) MulMat(m *matrix.Dense, workers int) *matrix.Dense {
	return p.MulMatInto(nil, m, workers)
}

// MulMatInto is MulMat accumulating into dst (rows × m.Cols(), zeroed
// first; nil allocates). It returns dst.
func (p *KernelPlan) MulMatInto(dst *matrix.Dense, m *matrix.Dense, workers int) *matrix.Dense {
	b := p.b
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: KernelPlan.MulMat dim mismatch %d != %d", m.Rows(), b.cols))
	}
	if workers < 1 {
		workers = 1
	}
	workers = rightWorkers(workers, b.rows)
	r := intoMat(dst, b.rows, m.Cols(), "MulMatInto")
	if b.variant == SparseOnly {
		b.mulMatSparsePar(m, r, workers)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	b.mulMatTree(p.tree, sc, m, r, workers)
	return r
}

// VecMul computes v·A with the cached tree; workers > 1 uses the
// accumulator-sharded kernel, workers <= 1 the sequential one. Bitwise
// identical to Batch.VecMul either way.
func (p *KernelPlan) VecMul(v []float64, workers int) []float64 {
	return p.VecMulInto(nil, v, workers)
}

// VecMulInto is VecMul accumulating into dst (length cols, zeroed first;
// nil allocates). It returns dst.
func (p *KernelPlan) VecMulInto(dst, v []float64, workers int) []float64 {
	b := p.b
	if len(v) != b.rows {
		panic(fmt.Sprintf("core: KernelPlan.VecMul dim mismatch %d != %d", len(v), b.rows))
	}
	r := intoVec(dst, b.cols, true, "VecMulInto")
	if b.variant == SparseOnly {
		if workers > 1 {
			b.vecMulSparseParallel(v, r, workers)
		} else {
			b.vecMulSparseSeq(v, r)
		}
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	if workers > 1 && b.rows >= 2*workers {
		b.vecMulTreePar(p.tree, sc, v, r, workers)
	} else {
		b.vecMulTree(p.tree, sc, v, r)
	}
	return r
}

// MatMul computes M·A with the cached tree; workers > 1 shards the p
// dimension, workers <= 1 runs sequentially. Bitwise identical to
// Batch.MatMul either way.
func (p *KernelPlan) MatMul(m *matrix.Dense, workers int) *matrix.Dense {
	return p.MatMulInto(nil, m, workers)
}

// MatMulInto is MatMul accumulating into dst (m.Rows() × cols, zeroed
// first; nil allocates). It returns dst.
func (p *KernelPlan) MatMulInto(dst *matrix.Dense, m *matrix.Dense, workers int) *matrix.Dense {
	b := p.b
	if m.Cols() != b.rows {
		panic(fmt.Sprintf("core: KernelPlan.MatMul dim mismatch %d != %d", m.Cols(), b.rows))
	}
	if workers > m.Rows() {
		workers = m.Rows()
	}
	r := intoMat(dst, m.Rows(), b.cols, "MatMulInto")
	if b.variant == SparseOnly {
		if workers > 1 {
			forEachSpan(m.Rows(), workers, func(klo, khi int) { b.matMulSparseRange(m, r, klo, khi) })
		} else {
			b.matMulSparseRange(m, r, 0, m.Rows())
		}
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	if workers > 1 {
		b.matMulTreePar(p.tree, sc, m, r, workers)
	} else {
		b.matMulTree(p.tree, sc, m, r)
	}
	return r
}
