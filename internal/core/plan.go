package core

import (
	"fmt"

	"toc/internal/matrix"
)

// KernelPlan caches the decode tree C' of one Batch so the 2-3 kernel
// calls a gradient step makes on the same mini-batch — the A·v or A·M
// forward pass plus the v·A or M·A gradient aggregation — share a single
// O(|I|+|D|) build instead of paying it per operation. The paper's cost
// model charges every kernel a rebuild of C'; a plan amortizes that
// charge across the step without changing any result: every plan method
// honors the parallel-kernel contract and returns bits identical to the
// corresponding Batch method for any workers value.
//
// The cached tree is read-only after construction and accumulators come
// from the shared scratch pool per call, so one plan is safe for
// concurrent use by multiple goroutines. A plan is tied to the batch it
// was built from; batches are immutable (Scale returns a new Batch), so
// it never goes stale.
type KernelPlan struct {
	b    *Batch
	tree *DecodeTree // nil for SparseOnly, which has no logical layer
}

// NewKernelPlan builds the batch's decode tree once and returns a plan
// sharing it across kernel calls. TreeBuilds exposes the white-box build
// counter that proves the amortization.
func (b *Batch) NewKernelPlan() *KernelPlan {
	p := &KernelPlan{b: b}
	if b.variant != SparseOnly {
		p.tree = BuildPrefixTree(b.i, b.d)
	}
	return p
}

// Batch returns the batch the plan was built for.
func (p *KernelPlan) Batch() *Batch { return p.b }

// MulVec computes A·v with the cached tree; workers > 1 shards the D scan
// over result rows, workers <= 1 runs sequentially. Bitwise identical to
// Batch.MulVec either way.
func (p *KernelPlan) MulVec(v []float64, workers int) []float64 {
	b := p.b
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: KernelPlan.MulVec dim mismatch %d != %d", len(v), b.cols))
	}
	if workers < 1 {
		workers = 1
	}
	workers = rightWorkers(workers, b.rows)
	if b.variant == SparseOnly {
		return b.mulVecSparsePar(v, workers)
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	return b.mulVecTree(p.tree, sc, v, workers)
}

// MulMat computes A·M with the cached tree; workers > 1 shards the H scan
// over result columns and the D scan over result rows, workers <= 1 runs
// sequentially. Bitwise identical to Batch.MulMat either way.
func (p *KernelPlan) MulMat(m *matrix.Dense, workers int) *matrix.Dense {
	b := p.b
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: KernelPlan.MulMat dim mismatch %d != %d", m.Rows(), b.cols))
	}
	if workers < 1 {
		workers = 1
	}
	workers = rightWorkers(workers, b.rows)
	if b.variant == SparseOnly {
		return b.mulMatSparsePar(m, workers)
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	return b.mulMatTree(p.tree, sc, m, workers)
}

// VecMul computes v·A with the cached tree; workers > 1 uses the
// accumulator-sharded kernel, workers <= 1 the sequential one. Bitwise
// identical to Batch.VecMul either way.
func (p *KernelPlan) VecMul(v []float64, workers int) []float64 {
	b := p.b
	if len(v) != b.rows {
		panic(fmt.Sprintf("core: KernelPlan.VecMul dim mismatch %d != %d", len(v), b.rows))
	}
	if b.variant == SparseOnly {
		if workers > 1 {
			return b.vecMulSparseParallel(v, workers)
		}
		return b.vecMulSparseSeq(v)
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	if workers > 1 && b.rows >= 2*workers {
		return b.vecMulTreePar(p.tree, sc, v, workers)
	}
	return b.vecMulTree(p.tree, sc, v)
}

// MatMul computes M·A with the cached tree; workers > 1 shards the p
// dimension, workers <= 1 runs sequentially. Bitwise identical to
// Batch.MatMul either way.
func (p *KernelPlan) MatMul(m *matrix.Dense, workers int) *matrix.Dense {
	b := p.b
	if m.Cols() != b.rows {
		panic(fmt.Sprintf("core: KernelPlan.MatMul dim mismatch %d != %d", m.Cols(), b.rows))
	}
	if workers > m.Rows() {
		workers = m.Rows()
	}
	if b.variant == SparseOnly {
		r := matrix.NewDense(m.Rows(), b.cols)
		if workers > 1 {
			forEachSpan(m.Rows(), workers, func(klo, khi int) { b.matMulSparseRange(m, r, klo, khi) })
		} else {
			b.matMulSparseRange(m, r, 0, m.Rows())
		}
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	if workers > 1 {
		return b.matMulTreePar(p.tree, sc, m, workers)
	}
	return b.matMulTree(p.tree, sc, m)
}
