package core

import (
	"testing"

	"toc/internal/matrix"
)

// FuzzDeserialize drives adversarial byte images through the physical
// decoder. The contract under fuzz: Deserialize either returns an error
// or returns a Batch whose decode and kernels are safe to execute —
// never a panic, never an out-of-bounds access, regardless of input.
// Seed corpus lives in testdata/fuzz/FuzzDeserialize; CI runs a short
// -fuzz pass over it on every push.
func FuzzDeserialize(f *testing.F) {
	// Valid images of every variant, plus structured corruption, seed
	// the mutator with the real wire layout.
	dense := matrix.NewDense(4, 6)
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			if (r+c)%3 != 0 {
				dense.Set(r, c, float64(r*7+c)/3)
			}
		}
	}
	for _, v := range []Variant{Full, SparseLogical, SparseOnly} {
		f.Add(CompressVariant(dense, v).Serialize())
	}
	good := Compress(dense).Serialize()
	trunc := append([]byte(nil), good[:len(good)/2]...)
	f.Add(trunc)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("TOCB"))

	f.Fuzz(func(t *testing.T, img []byte) {
		b, err := Deserialize(img)
		if err != nil {
			return
		}
		rows, cols := b.Rows(), b.Cols()
		if rows < 0 || cols < 0 {
			t.Fatalf("accepted image with negative dims %dx%d", rows, cols)
		}
		// Header dims are bounded but their product can still be huge;
		// skip kernel execution (not validation) for shapes whose dense
		// buffers would dominate the fuzz worker's memory.
		if int64(rows)*int64(cols) > 1<<20 {
			return
		}
		d := b.Decode()
		if d.Rows() != rows || d.Cols() != cols {
			t.Fatalf("decode shape %dx%d, header says %dx%d", d.Rows(), d.Cols(), rows, cols)
		}
		// The kernels must walk any accepted structure without panicking.
		v := make([]float64, cols)
		for i := range v {
			v[i] = float64(i%5) - 2
		}
		_ = b.MulVec(v)
		u := make([]float64, rows)
		for i := range u {
			u[i] = float64(i%3) - 1
		}
		_ = b.VecMul(u)
		// A batch that deserialized must reserialize to a decodable image.
		if _, err := Deserialize(b.Serialize()); err != nil {
			t.Fatalf("accepted batch does not reserialize: %v", err)
		}
	})
}
