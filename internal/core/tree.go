package core

// The encoding prefix tree of §3.1.1. Every node except the root stores a
// column-index:value pair as its key and represents the sequence of keys on
// the path from the root to itself. Node indexes are assigned from a
// sequence number: the root takes 0, the first added node 1, and so on.
//
// GetIndex uses the standard technique the paper cites from Blelloch: a
// hash map from (parent index, child key) to child index. A single shared
// map replaces the per-node maps without changing behaviour.

type childKey struct {
	parent uint32
	key    Pair
}

type encodeTree struct {
	keys     []Pair // keys[i] is the key of node i; keys[0] (root) is unused
	children map[childKey]uint32
}

func newEncodeTree() *encodeTree {
	return &encodeTree{
		keys:     make([]Pair, 1), // root occupies index 0
		children: make(map[childKey]uint32),
	}
}

// Len returns the number of nodes including the root.
func (t *encodeTree) Len() int { return len(t.keys) }

// AddNode creates a node with key k as a child of node n and returns its
// index (the next sequence number).
func (t *encodeTree) AddNode(n uint32, k Pair) uint32 {
	idx := uint32(len(t.keys))
	t.keys = append(t.keys, k)
	t.children[childKey{parent: n, key: k}] = idx
	return idx
}

// GetIndex looks up the child of node n with key k. The boolean reports
// whether such a node exists (the paper's API returns -1 when it does not).
func (t *encodeTree) GetIndex(n uint32, k Pair) (uint32, bool) {
	idx, ok := t.children[childKey{parent: n, key: k}]
	return idx, ok
}
