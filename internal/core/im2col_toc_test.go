package core

import (
	"math/rand"
	"testing"

	"toc/internal/matrix"
)

// The paper's §6 discussion: applying im2col to an image replicates each
// pixel across sliding windows, and the replicated matrix compresses
// better under TOC than the original image because entire window contents
// repeat as pair sequences.
func TestIm2ColImprovesTOCRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A blocky "image": 28x28 with constant 4x4 tiles from a small palette
	// (flat regions like digit strokes).
	img := matrix.NewDense(28, 28)
	palette := []float64{0, 0, 0.25, 0.5, 1} // mostly background
	for by := 0; by < 7; by++ {
		for bx := 0; bx < 7; bx++ {
			v := palette[rng.Intn(len(palette))]
			for y := by * 4; y < by*4+4; y++ {
				for x := bx * 4; x < bx*4+4; x++ {
					img.Set(y, x, v)
				}
			}
		}
	}
	replicated := matrix.Im2Col(img, 5, 5)

	imgRatio := Compress(img).CompressionRatio()
	repRatio := Compress(replicated).CompressionRatio()
	if repRatio <= imgRatio {
		t.Fatalf("im2col should raise the TOC ratio: image %.2fx vs replicated %.2fx",
			imgRatio, repRatio)
	}

	// And convolution over the compressed replicated matrix equals the
	// dense convolution.
	kernel := matrix.NewDense(5, 5)
	vec := make([]float64, 25)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			k := rng.NormFloat64()
			kernel.Set(i, j, k)
			vec[i*5+j] = k
		}
	}
	got := Compress(replicated).MulVec(vec)
	want := matrix.Conv2DDense(img, kernel)
	idx := 0
	for y := 0; y < want.Rows(); y++ {
		for x := 0; x < want.Cols(); x++ {
			diff := got[idx] - want.At(y, x)
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("conv mismatch at (%d,%d): %v vs %v", y, x, got[idx], want.At(y, x))
			}
			idx++
		}
	}
}

// Scale must keep the serialized image consistent: a scaled batch
// round-trips through Serialize/Deserialize with the scaled values.
func TestScaleSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := redundantMatrix(rng, 25, 12, 0.5, 3)
	for _, v := range allVariants {
		s := CompressVariant(a, v).Scale(3)
		got, err := Deserialize(s.Serialize())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !got.Decode().EqualApprox(a.Scale(3), 1e-12) {
			t.Fatalf("%v: scaled round trip mismatch", v)
		}
	}
}

// Ops must be usable concurrently on the same batch (the scratch pool is
// shared process-wide).
func TestConcurrentOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := redundantMatrix(rng, 60, 30, 0.5, 4)
	b := Compress(a)
	v := randVec(rng, 30)
	want := a.MulVec(v)
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 50; i++ {
				if !vecApproxEq(b.MulVec(v), want) {
					ok = false
					break
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent MulVec returned wrong results")
		}
	}
}
