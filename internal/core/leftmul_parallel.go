package core

import (
	"fmt"
	"runtime"
	"sync"

	"toc/internal/matrix"
)

// Parallel left multiplications: v·A (Algorithm 5) and M·A (Algorithm 8)
// sharded across goroutines. Unlike the right-mul path
// (rightmul_parallel.go), where every output row depends on one tuple of
// D only, the left-mul D scan accumulates into shared per-node state
// H[x] = G(x). Sharding D by rows would give each worker a partial H
// whose per-node sums fold in a different order than the sequential scan,
// so the merged floats could drift from VecMul/MatMul in the last bit —
// and the engine's "worker count never changes the trajectory" guarantee
// would be lost.
//
// The kernels therefore partition the *accumulators*, not the rows, which
// keeps every floating-point reduction in exactly the sequential order:
//
//   - VecMulParallel splits the node space: every worker scans all of D
//     but owns a disjoint slice of H, so each H[x] is accumulated by one
//     worker in sequential row order. The backward C' scan splits in two:
//     the parent pushes (a chain along the tree, inherently sequential)
//     and the r[col] scatter, which shards over disjoint column ranges.
//   - MatMulParallel splits the p dimension (rows of M): worker w owns
//     columns [lo,hi) of every H row and rows [lo,hi) of the result, so
//     both the D scan and the fused backward scan run concurrently with
//     no barrier between them.
//
// Result: both kernels return bits identical to their sequential
// counterparts for any worker count (asserted by TestLeftMulParallel*).

// VecMulParallel computes v·A like VecMul with the D scan sharded over
// disjoint node ranges and the final column scatter sharded over disjoint
// column ranges (workers <= 0 uses GOMAXPROCS). The result is bitwise
// identical to VecMul for any worker count.
func (b *Batch) VecMulParallel(v []float64, workers int) []float64 {
	if len(v) != b.rows {
		panic(fmt.Sprintf("core: VecMulParallel dim mismatch %d != %d", len(v), b.rows))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := make([]float64, b.cols)
	if b.variant == SparseOnly {
		b.vecMulSparseParallel(v, r, workers)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	if workers == 1 || b.rows < 2*workers {
		b.vecMulTree(t, sc, v, r)
	} else {
		b.vecMulTreePar(t, sc, v, r, workers)
	}
	return r
}

// vecMulTreePar is the accumulator-sharded v·A body over a built tree,
// accumulating into r (length cols, caller-zeroed).
func (b *Batch) vecMulTreePar(t *DecodeTree, sc *opScratch, v, r []float64, workers int) {
	h := sc.floatBuf(t.Len())

	// Scan D with the node space partitioned: worker w reads every tuple
	// but accumulates only H[x] for x in its range, so each node's sum
	// folds in the sequential row order. Ranges are equal-width; the scan
	// (shared, read-only) dominates the adds, so width imbalance is minor
	// and each worker's writes stay within one cache-friendly slice of H.
	wd := workers
	if wd > t.Len()-1 {
		wd = t.Len() - 1
	}
	if wd > 1 {
		var wg sync.WaitGroup
		span := (t.Len() - 1 + wd - 1) / wd
		for w := 0; w < wd; w++ {
			nlo := uint32(1 + w*span)
			nhi := uint32(1 + (w+1)*span)
			if nhi > uint32(t.Len()) {
				nhi = uint32(t.Len())
			}
			if nlo >= nhi {
				break
			}
			wg.Add(1)
			go func(nlo, nhi uint32) {
				defer wg.Done()
				nodes, starts := b.d.Nodes, b.d.Starts
				boundsHint(0, b.rows, len(starts), len(v))
				for i := 0; i < b.rows; i++ {
					vi := v[i]
					for _, n := range nodes[starts[i]:starts[i+1]] {
						if n >= nlo && n < nhi {
							h[n] += vi
						}
					}
				}
			}(nlo, nhi)
		}
		wg.Wait()
	} else {
		b.vecMulRows(v, h)
	}

	// The parent pushes walk child→parent chains and must stay sequential;
	// after this pass h[i] holds exactly the value the fused backward scan
	// of VecMul reads at step i (children of i all have larger indexes, so
	// h[i] never changes after its own step in either formulation).
	leftPushSeq(t, h)

	scatterCols(t, h, r, workers)
}

// leftPushSeq accumulates every node's weight onto its parent, back to
// front — the sequential half of the split backward scan.
func leftPushSeq(t *DecodeTree, h []float64) {
	par := t.Parent
	h = h[:len(par)]
	for i := len(par) - 1; i >= 1; i-- {
		h[par[i]] += h[i]
	}
}

// scatterSeq applies the r[col] contributions of the backward scan after
// the parent pushes have run; per column the order matches the fused
// sequential scan (descending node index).
func scatterSeq(t *DecodeTree, h, r []float64) {
	key := t.Key
	h = h[:len(key)]
	for i := len(key) - 1; i >= 1; i-- {
		k := key[i]
		r[k.Col] += k.Val * h[i]
	}
}

// scatterCols is scatterSeq sharded over disjoint column ranges: every
// worker scans C' in the same descending order but applies only its
// columns, so each r[col] accumulates bitwise identically. Benchmarked
// against keeping the scatter sequential in BenchmarkVecMulBackward; the
// sharded form wins once C' outgrows the L1 cache, so it is the default
// above a small size floor.
func scatterCols(t *DecodeTree, h, r []float64, workers int) {
	cols := len(r)
	if workers > cols {
		workers = cols
	}
	if workers <= 1 || t.Len() < 4*workers {
		scatterSeq(t, h, r)
		return
	}
	var wg sync.WaitGroup
	span := (cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		clo := uint32(w * span)
		chi := uint32((w + 1) * span)
		if chi > uint32(cols) {
			chi = uint32(cols)
		}
		if clo >= chi {
			break
		}
		wg.Add(1)
		go func(clo, chi uint32) {
			defer wg.Done()
			key := t.Key
			hw := h[:len(key)]
			for i := len(key) - 1; i >= 1; i-- {
				k := key[i]
				if k.Col >= clo && k.Col < chi {
					r[k.Col] += k.Val * hw[i]
				}
			}
		}(clo, chi)
	}
	wg.Wait()
}

// vecMulSparseParallel is the SparseOnly v·A with the scatter sharded over
// disjoint column ranges, accumulating into r (caller-zeroed); per column
// the accumulation order is the sequential row order, so the result is
// bitwise identical.
func (b *Batch) vecMulSparseParallel(v, r []float64, workers int) {
	if workers > b.cols {
		workers = b.cols
	}
	if workers <= 1 {
		b.vecMulSparseSeq(v, r)
		return
	}
	var wg sync.WaitGroup
	span := (b.cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		clo := uint32(w * span)
		chi := uint32((w + 1) * span)
		if chi > uint32(b.cols) {
			chi = uint32(b.cols)
		}
		if clo >= chi {
			break
		}
		wg.Add(1)
		go func(clo, chi uint32) {
			defer wg.Done()
			starts, cols, vals := b.srStarts, b.srCols, b.srVals
			boundsHint(0, b.rows, len(starts), len(v))
			for i := 0; i < b.rows; i++ {
				vi := v[i]
				if vi == 0 {
					continue
				}
				cs := cols[starts[i]:starts[i+1]]
				vs := vals[starts[i]:starts[i+1]]
				vs = vs[:len(cs)]
				for k, c := range cs {
					if c >= clo && c < chi {
						r[c] += vi * vs[k]
					}
				}
			}
		}(clo, chi)
	}
	wg.Wait()
}

// MatMulParallel computes M·A like MatMul with the p dimension (rows of M
// and of the result) sharded across workers goroutines (workers <= 0 uses
// GOMAXPROCS). Worker w computes result rows [lo,hi) end to end — its
// slice of every H row in the D scan, then its slice of the fused
// backward scan — with every per-element reduction in the sequential
// order, so the result is bitwise identical to MatMul for any worker
// count.
func (b *Batch) MatMulParallel(m *matrix.Dense, workers int) *matrix.Dense {
	if m.Cols() != b.rows {
		panic(fmt.Sprintf("core: MatMulParallel dim mismatch %d != %d", m.Cols(), b.rows))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := m.Rows()
	if workers > p {
		workers = p
	}
	if workers <= 1 {
		return b.MatMul(m)
	}
	r := matrix.NewDense(p, b.cols)
	if b.variant == SparseOnly {
		forEachSpan(p, workers, func(klo, khi int) { b.matMulSparseRange(m, r, klo, khi) })
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.matMulTreePar(t, sc, m, r, workers)
	return r
}

// matMulTreePar is the p-sharded M·A body over a built tree, accumulating
// into r (p × cols, caller-zeroed); callers guarantee 2 <= workers <= p.
// No barrier between the scans: worker w touches only columns [klo,khi)
// of H and rows [klo,khi) of r, so its backward scan depends on nothing
// another worker writes. Each worker gathers its slice of M's column into
// a private contiguous buffer per tuple, as the sequential matMulTree
// does for the whole column.
func (b *Batch) matMulTreePar(t *DecodeTree, sc *opScratch, m *matrix.Dense, r *matrix.Dense, workers int) {
	p := m.Rows()
	h := sc.floatBuf(t.Len() * p)
	md := m.Data()
	mcols := m.Cols()
	rd := r.Data()
	rcols := r.Cols()
	forEachSpan(p, workers, func(klo, khi int) {
		mc := make([]float64, khi-klo)
		nodes, starts := b.d.Nodes, b.d.Starts
		boundsHint(0, b.rows, len(starts), b.rows)
		for i := 0; i < b.rows; i++ {
			row := nodes[starts[i]:starts[i+1]]
			if len(row) == 0 {
				continue
			}
			off := klo*mcols + i
			for k := range mc {
				mc[k] = md[off]
				off += mcols
			}
			for _, n := range row {
				hn := h[int(n)*p+klo : int(n)*p+klo+len(mc)]
				mw := mc
				for len(hn) >= 4 && len(mw) >= 4 {
					hn[0] += mw[0]
					hn[1] += mw[1]
					hn[2] += mw[2]
					hn[3] += mw[3]
					hn, mw = hn[4:], mw[4:]
				}
				for len(hn) >= 1 && len(mw) >= 1 {
					hn[0] += mw[0]
					hn, mw = hn[1:], mw[1:]
				}
			}
		}
		key, par := t.Key, t.Parent
		for i := len(key) - 1; i >= 1; i-- {
			k := key[i]
			hi := h[i*p+klo : i*p+khi]
			hp := h[int(par[i])*p+klo : int(par[i])*p+khi]
			hp = hp[:len(hi)]
			kv := k.Val
			off := klo*rcols + int(k.Col)
			for j := 0; j < len(hi); j++ {
				rd[off] += kv * hi[j]
				hp[j] += hi[j]
				off += rcols
			}
		}
	})
}
