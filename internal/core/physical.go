package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"toc/internal/bitpack"
)

// Physical encoding (§3.2): the logical outputs I and D are serialized to
// bytes. For the Full variant, integer arrays (column indexes of I, value
// indexes, tree-node indexes of D, tuple start indexes) are bit packed and
// the float values of I are value-indexed, exactly as in Figure 3. The
// ablation variants store the same information raw.
//
// Image layout (little-endian):
//
//	header: "TOCB" | version=1 | variant | rows u32 | cols u32
//	Full:          bitpack(I.cols) | valueindex(I.vals) |
//	               bitpack(D.nodes) | bitpack(D.starts)
//	SparseLogical: u32 |I|, raw (u32 col, f64 val)... |
//	               u32 |D.nodes|, raw u32... | raw u32 starts[rows+1]
//	SparseOnly:    u32 nnz | raw u32 starts[rows+1] | raw u32 cols |
//	               raw f64 vals

const (
	imageMagic   = "TOCB"
	imageVersion = 1
	headerSize   = 4 + 1 + 1 + 4 + 4
)

// Serialize returns the physical byte image of the batch.
func (b *Batch) Serialize() []byte {
	if b.img == nil {
		b.img = b.buildImage()
	}
	return b.img
}

// buildImage serializes in one exactly-sized allocation: every section's
// size is computable up front (bitpack arrays expose EncodedSize), so the
// buffer never regrows during spill ingest, and the raw u32/f64 sections
// of the ablation variants are written with bulk little-endian stores
// instead of per-element appends.
func (b *Batch) buildImage() []byte {
	switch b.variant {
	case Full:
		cols := make([]uint32, len(b.i))
		vals := make([]float64, len(b.i))
		for k, p := range b.i {
			cols[k] = p.Col
			vals[k] = p.Val
		}
		pc := bitpack.Pack(cols)
		vi := bitpack.BuildValueIndex(vals)
		pn := bitpack.Pack(b.d.Nodes)
		ps := bitpack.Pack(b.d.Starts)
		out := make([]byte, 0, headerSize+pc.EncodedSize()+vi.EncodedSize()+pn.EncodedSize()+ps.EncodedSize())
		out = b.appendHeader(out)
		out = pc.AppendTo(out)
		out = vi.AppendTo(out)
		out = pn.AppendTo(out)
		return ps.AppendTo(out)

	case SparseLogical:
		size := headerSize + 4 + 12*len(b.i) + 4 + 4*len(b.d.Nodes) + 4*len(b.d.Starts)
		out := b.appendHeader(make([]byte, headerSize, size))[:size]
		off := headerSize
		binary.LittleEndian.PutUint32(out[off:], uint32(len(b.i)))
		off += 4
		for _, p := range b.i {
			binary.LittleEndian.PutUint32(out[off:], p.Col)
			binary.LittleEndian.PutUint64(out[off+4:], math.Float64bits(p.Val))
			off += 12
		}
		binary.LittleEndian.PutUint32(out[off:], uint32(len(b.d.Nodes)))
		off += 4
		off += putU32s(out[off:], b.d.Nodes)
		putU32s(out[off:], b.d.Starts)
		return out

	case SparseOnly:
		nnz := len(b.srCols)
		size := headerSize + 4 + 4*len(b.srStarts) + 4*nnz + 8*nnz
		out := b.appendHeader(make([]byte, headerSize, size))[:size]
		off := headerSize
		binary.LittleEndian.PutUint32(out[off:], uint32(nnz))
		off += 4
		off += putU32s(out[off:], b.srStarts)
		off += putU32s(out[off:], b.srCols)
		putF64s(out[off:], b.srVals)
		return out
	}
	return b.appendHeader(make([]byte, 0, headerSize))
}

// appendHeader writes the shared image header into out[:headerSize]
// (which must have that capacity) and returns out sized to it.
func (b *Batch) appendHeader(out []byte) []byte {
	out = out[:headerSize]
	copy(out, imageMagic)
	out[4] = imageVersion
	out[5] = byte(b.variant)
	binary.LittleEndian.PutUint32(out[6:], uint32(b.rows))
	binary.LittleEndian.PutUint32(out[10:], uint32(b.cols))
	return out
}

// putU32s bulk-writes vals little-endian into dst, returning the byte
// count written.
func putU32s(dst []byte, vals []uint32) int {
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[i*4:], v)
	}
	return 4 * len(vals)
}

// putF64s bulk-writes vals little-endian into dst, returning the byte
// count written.
func putF64s(dst []byte, vals []float64) int {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
	return 8 * len(vals)
}

// Deserialize reconstructs a Batch from a physical image produced by
// Serialize, validating structural invariants so corrupt images return an
// error rather than corrupting kernel execution.
func Deserialize(img []byte) (*Batch, error) {
	if len(img) < headerSize {
		return nil, fmt.Errorf("core: image too short: %d bytes", len(img))
	}
	if string(img[:4]) != imageMagic {
		return nil, fmt.Errorf("core: bad magic %q", img[:4])
	}
	if img[4] != imageVersion {
		return nil, fmt.Errorf("core: unsupported version %d", img[4])
	}
	v := Variant(img[5])
	if v > SparseOnly {
		return nil, fmt.Errorf("core: unknown variant %d", img[5])
	}
	b := &Batch{
		rows:    int(binary.LittleEndian.Uint32(img[6:10])),
		cols:    int(binary.LittleEndian.Uint32(img[10:14])),
		variant: v,
		img:     img,
	}
	// Bound dimensions so corrupt headers cannot trigger enormous
	// allocations in Decode or the kernels.
	const maxDim = 1 << 27
	if b.rows > maxDim || b.cols > maxDim {
		return nil, fmt.Errorf("core: implausible dims %dx%d", b.rows, b.cols)
	}
	buf := img[headerSize:]
	var err error
	switch v {
	case Full:
		err = b.parseFull(buf)
	case SparseLogical:
		err = b.parseSparseLogical(buf)
	case SparseOnly:
		err = b.parseSparseOnly(buf)
	}
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (b *Batch) parseFull(buf []byte) error {
	colsArr, buf, err := bitpack.ReadArray(buf)
	if err != nil {
		return fmt.Errorf("core: I columns: %w", err)
	}
	vi, buf, err := bitpack.ReadValueIndex(buf)
	if err != nil {
		return fmt.Errorf("core: I values: %w", err)
	}
	vals := vi.Decode()
	if colsArr.Len() != len(vals) {
		return fmt.Errorf("core: I columns (%d) and values (%d) disagree", colsArr.Len(), len(vals))
	}
	// Bulk word-at-a-time decode of the column indexes, then zip with the
	// dictionary-decoded values; the temporary is a single sized slice
	// instead of one seek-and-cast Get per pair.
	cols := make([]uint32, len(vals))
	colsArr.UnpackRange(cols, 0, len(cols))
	b.i = make([]Pair, len(vals))
	for k := range b.i {
		b.i[k] = Pair{Col: cols[k], Val: vals[k]}
	}
	nodesArr, buf, err := bitpack.ReadArray(buf)
	if err != nil {
		return fmt.Errorf("core: D nodes: %w", err)
	}
	startsArr, buf, err := bitpack.ReadArray(buf)
	if err != nil {
		return fmt.Errorf("core: D starts: %w", err)
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(buf))
	}
	b.d = dTable{Nodes: nodesArr.Unpack(), Starts: startsArr.Unpack()}
	return b.validateLogical()
}

func (b *Batch) parseSparseLogical(buf []byte) error {
	lenI, buf, err := takeU32(buf)
	if err != nil {
		return fmt.Errorf("core: |I|: %w", err)
	}
	if len(buf) < int(lenI)*12 {
		return fmt.Errorf("core: truncated I section")
	}
	b.i = make([]Pair, lenI)
	for k := range b.i {
		b.i[k] = Pair{
			Col: binary.LittleEndian.Uint32(buf[k*12:]),
			Val: math.Float64frombits(binary.LittleEndian.Uint64(buf[k*12+4:])),
		}
	}
	buf = buf[lenI*12:]
	lenN, buf, err := takeU32(buf)
	if err != nil {
		return fmt.Errorf("core: |D|: %w", err)
	}
	need := int(lenN)*4 + (b.rows+1)*4
	if len(buf) != need {
		return fmt.Errorf("core: D section is %d bytes, want %d", len(buf), need)
	}
	b.d = dTable{Nodes: make([]uint32, lenN), Starts: make([]uint32, b.rows+1)}
	buf = buf[getU32s(b.d.Nodes, buf):]
	getU32s(b.d.Starts, buf)
	return b.validateLogical()
}

func (b *Batch) parseSparseOnly(buf []byte) error {
	nnz, buf, err := takeU32(buf)
	if err != nil {
		return fmt.Errorf("core: nnz: %w", err)
	}
	need := (b.rows+1)*4 + int(nnz)*4 + int(nnz)*8
	if len(buf) != need {
		return fmt.Errorf("core: sparse section is %d bytes, want %d", len(buf), need)
	}
	b.srStarts = make([]uint32, b.rows+1)
	buf = buf[getU32s(b.srStarts, buf):]
	b.srCols = make([]uint32, nnz)
	buf = buf[getU32s(b.srCols, buf):]
	b.srVals = make([]float64, nnz)
	getF64s(b.srVals, buf)
	// Validate.
	prev := uint32(0)
	for k, s := range b.srStarts {
		if s < prev {
			return fmt.Errorf("core: starts not monotone at %d", k)
		}
		prev = s
	}
	if b.srStarts[0] != 0 || b.srStarts[b.rows] != nnz {
		return fmt.Errorf("core: starts endpoints invalid")
	}
	for k, c := range b.srCols {
		if int(c) >= b.cols {
			return fmt.Errorf("core: column index %d out of range %d at %d", c, b.cols, k)
		}
	}
	return nil
}

// validateLogical checks the structural invariants of (I, D): column
// indexes in range, starts well-formed, and every node index referencing
// only nodes that exist at that point of the Algorithm-2 replay.
func (b *Batch) validateLogical() error {
	for k, p := range b.i {
		if int(p.Col) >= b.cols {
			return fmt.Errorf("core: I[%d] column %d out of range %d", k, p.Col, b.cols)
		}
	}
	if len(b.d.Starts) != b.rows+1 {
		return fmt.Errorf("core: starts length %d != rows+1 (%d)", len(b.d.Starts), b.rows+1)
	}
	prev := uint32(0)
	for k, s := range b.d.Starts {
		if s < prev {
			return fmt.Errorf("core: starts not monotone at %d", k)
		}
		prev = s
	}
	if b.d.Starts[0] != 0 || int(b.d.Starts[b.rows]) != len(b.d.Nodes) {
		return fmt.Errorf("core: starts endpoints invalid")
	}
	// Replay node creation: each of a tuple's elements except the last
	// created exactly one node during encoding, so at element j of a tuple,
	// nodes 1..len(I)+created+j are addressable (the +j admits references
	// to nodes created earlier in the same tuple, including the
	// self-referencing code pattern of repeated sequences).
	created := 0
	for r := 0; r < b.rows; r++ {
		row := b.d.row(r)
		for j, n := range row {
			limit := len(b.i) + created + j
			if n == 0 || int(n) > limit {
				return fmt.Errorf("core: node index %d invalid at row %d pos %d (limit %d)", n, r, j, limit)
			}
		}
		if len(row) > 0 {
			created += len(row) - 1
		}
	}
	return nil
}

// getU32s bulk-decodes len(dst) little-endian u32s from src (which the
// caller has length-checked), returning the byte count consumed. The
// explicit reslice hoists the bounds check out of the loop.
func getU32s(dst []uint32, src []byte) int {
	src = src[:4*len(dst)]
	for k := 0; 4*k < len(src); k++ {
		dst[k] = binary.LittleEndian.Uint32(src[4*k:])
	}
	return 4 * len(dst)
}

// getF64s bulk-decodes len(dst) little-endian f64s from src (which the
// caller has length-checked), returning the byte count consumed.
func getF64s(dst []float64, src []byte) int {
	src = src[:8*len(dst)]
	for k := 0; 8*k < len(src); k++ {
		dst[k] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*k:]))
	}
	return 8 * len(dst)
}

func takeU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("truncated uint32")
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}
