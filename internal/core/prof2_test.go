package core

import (
	"testing"

	"toc/internal/data"
)

// BenchmarkMulVecMnist measures A·v on the least TOC-friendly dataset
// shape (mnist-like: large first layer, little sequence reuse).
func BenchmarkMulVecMnist(b *testing.B) {
	d, _ := data.Generate("mnist", 250, 1)
	batch := Compress(d.X)
	v := make([]float64, d.X.Cols())
	for i := range v {
		v[i] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.MulVec(v)
	}
}
