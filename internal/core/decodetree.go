package core

import (
	"sync"
	"sync/atomic"
)

// Algorithm 2: build the prefix tree C' used for decoding and for the
// compressed matrix kernels. C' is a simplified variant of the encoding
// tree C: every node stores its key and the index of its parent, but no
// child links (Table 4). It is rebuilt from I and D by replaying how
// Algorithm 1 grew the tree: scanning D, every element of a tuple except
// the last one caused exactly one AddNode during encoding.

// DecodeTree is C'. Index 0 is the root; Key[0] and Parent[0] are unused.
type DecodeTree struct {
	Key    []Pair   // Key[i]: the column-index:value pair of node i
	Parent []uint32 // Parent[i]: index of node i's parent (0 = root child)
	first  []Pair   // F[i]: first pair of the sequence represented by node i
}

// Len returns the number of nodes including the root.
func (t *DecodeTree) Len() int { return len(t.Key) }

// Seq reconstructs the full pair sequence represented by node idx by
// backtracking parent links (the sequence definition of §3.1.1). One
// counting walk sizes the result exactly, then a second walk fills it
// back to front — a single allocation, no reverse buffer.
func (t *DecodeTree) Seq(idx uint32) []Pair {
	n := 0
	for i := idx; i != 0; i = t.Parent[i] {
		n++
	}
	seq := make([]Pair, n)
	for i := idx; i != 0; i = t.Parent[i] {
		n--
		seq[n] = t.Key[i]
	}
	return seq
}

// dTable is the flattened encoded table D: Nodes holds every tuple's node
// indexes concatenated, Starts[i] is the offset of tuple i (len rows+1,
// with Starts[rows] == len(Nodes)). This is also the physical layout of D
// in Figure 3 ("tree node indexes" + "tuple start indexes").
type dTable struct {
	Nodes  []uint32
	Starts []uint32
}

func flattenD(D [][]uint32) dTable {
	starts := make([]uint32, len(D)+1)
	total := 0
	for i, d := range D {
		starts[i] = uint32(total)
		total += len(d)
	}
	starts[len(D)] = uint32(total)
	nodes := make([]uint32, 0, total)
	for _, d := range D {
		nodes = append(nodes, d...)
	}
	return dTable{Nodes: nodes, Starts: starts}
}

func (d dTable) rows() int { return len(d.Starts) - 1 }

// row returns tuple i's node indexes (aliased).
func (d dTable) row(i int) []uint32 { return d.Nodes[d.Starts[i]:d.Starts[i+1]] }

// opScratch holds reusable buffers for the per-operation tree build and
// accumulator vectors. Rebuilding C' on every op is the paper's model
// (its O(|I|+|D|) cost is part of every kernel's complexity), but the
// backing memory is pooled so the allocator does not dominate the kernels.
type opScratch struct {
	pairs   []Pair
	parents []uint32
	floats  []float64
	gather  []float64
	tree    DecodeTree
}

var scratchPool = sync.Pool{New: func() any { return new(opScratch) }}

// floatBuf returns a zeroed accumulator of length n backed by the arena.
func (s *opScratch) floatBuf(n int) []float64 {
	if cap(s.floats) < n {
		s.floats = make([]float64, n)
	}
	buf := s.floats[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// gatherBuf returns an uninitialized buffer of length n from a second
// arena, disjoint from floatBuf's. Used by matMulTree to stage one column
// of M contiguously; callers overwrite it fully before reading.
func (s *opScratch) gatherBuf(n int) []float64 {
	if cap(s.gather) < n {
		s.gather = make([]float64, n)
	}
	return s.gather[:n]
}

// buildTree builds C' into the arena; the result is valid until the
// arena is reused.
func (s *opScratch) buildTree(I []Pair, D dTable) *DecodeTree {
	size := treeSize(I, D)
	if cap(s.pairs) < 2*size {
		s.pairs = make([]Pair, 2*size)
	}
	if cap(s.parents) < size {
		s.parents = make([]uint32, size)
	}
	s.tree = DecodeTree{
		Key:    s.pairs[:size],
		Parent: s.parents[:size],
		first:  s.pairs[size : 2*size],
	}
	// Reused buffers carry stale data; the build overwrites every node
	// from index 1, and index 0 (the root) must be explicitly cleared
	// because VecMul/MatMul read Parent values.
	s.tree.Key[0] = Pair{}
	s.tree.Parent[0] = 0
	s.tree.first[0] = Pair{}
	fillPrefixTree(&s.tree, I, D)
	return &s.tree
}

// treeSize computes |C'|: root + first layer + one node per non-final
// tuple element, i.e. 1 + |I| + (|D.Nodes| - rows-with-elements).
func treeSize(I []Pair, D dTable) int {
	rows := D.rows()
	starts := D.Starts
	extra := 0
	for i := 0; i < rows; i++ {
		if n := int(starts[i+1] - starts[i]); n > 0 {
			extra += n - 1
		}
	}
	return 1 + len(I) + extra
}

// BuildPrefixTree implements Algorithm 2: phase I initializes C' (and the
// first-pair array F) from I; phase II scans D, adding one node per tuple
// element except the last, mimicking how Algorithm 1 built C.
func BuildPrefixTree(I []Pair, D dTable) *DecodeTree {
	size := treeSize(I, D)
	backing := make([]Pair, 2*size)
	t := &DecodeTree{
		Key:    backing[:size],
		Parent: make([]uint32, size),
		first:  backing[size:],
	}
	fillPrefixTree(t, I, D)
	return t
}

// treeBuilds counts every C' build in the process — the white-box
// counter that proves KernelPlan amortizes the per-op rebuild (one build
// per batch-step in the ml layer instead of one per kernel call).
var treeBuilds atomic.Uint64

// TreeBuilds returns the cumulative number of decode-tree (C') builds.
func TreeBuilds() uint64 { return treeBuilds.Load() }

func fillPrefixTree(t *DecodeTree, I []Pair, D dTable) {
	treeBuilds.Add(1)
	rows := D.rows()
	starts := D.Starts

	// Phase I: initialize with I (lines 4-7). Parents of the first layer
	// are the root; the explicit clear matters when t reuses pooled
	// buffers that carry stale values.
	copy(t.Key[1:], I)
	copy(t.first[1:], I)
	for i := 1; i <= len(I); i++ {
		t.Parent[i] = 0
	}

	// Phase II: build C' from D (lines 8-14). Order matters: F of the new
	// node is set before its key is read, because the key references
	// F[D[i][j+1]] which may be the node being added (self-reference when a
	// tuple repeats its own just-added sequence).
	idx := len(I) + 1
	nodes := D.Nodes
	key, first, parent := t.Key, t.first, t.Parent
	for i := 0; i < rows; i++ {
		end := int(starts[i+1]) - 1
		for j := int(starts[i]); j < end; j++ {
			p := nodes[j]
			parent[idx] = p
			first[idx] = first[p]
			key[idx] = first[nodes[j+1]]
			idx++
		}
	}
}
