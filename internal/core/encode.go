package core

// Algorithm 1: the prefix tree encoding algorithm. It encodes the sparse
// encoded table B into the encoded table D, building the prefix tree C
// along the way. Each tuple is encoded separately (the dictionary is
// shared) so row boundaries are preserved; the compression unit is a whole
// column-index:value pair so column boundaries are preserved (§3.1.3).

// PrefixTreeEncode runs Algorithm 1 on the sparse encoded table b,
// returning the column-index:value pairs in the first layer of the prefix
// tree (I) and the encoded table (D). I[k] is the key of tree node k+1:
// together with D it suffices to rebuild the full tree (Algorithm 2).
func PrefixTreeEncode(b []SparseRow) (I []Pair, D [][]uint32) {
	I, D, _ = prefixTreeEncode(b, false)
	return I, D
}

// TraceStep records one iteration of the phase-II while loop of Algorithm
// 1, in the shape of the paper's Table 2.
type TraceStep struct {
	Tuple     int    // which tuple of B this step processed
	I         int    // matching start position within the tuple
	MatchNode uint32 // longest-match tree node index (column "LMFromTree")
	Appended  uint32 // index appended to D[t] (column "App")
	AddedNode uint32 // newly added node index, 0 if AddNode was NOT called
	AddedSeq  []Pair // sequence represented by the added node (nil if none)
}

// PrefixTreeEncodeTrace is PrefixTreeEncode with a step-by-step trace of
// phase II, used to reproduce the paper's Table 2 exactly.
func PrefixTreeEncodeTrace(b []SparseRow) (I []Pair, D [][]uint32, trace []TraceStep) {
	return prefixTreeEncode(b, true)
}

func prefixTreeEncode(b []SparseRow, traced bool) (I []Pair, D [][]uint32, trace []TraceStep) {
	c := newEncodeTree()

	// Phase I: initialize the tree with all unique column-index:value pairs
	// as children of the root (lines 5-8).
	for _, t := range b {
		for _, p := range t {
			if _, ok := c.GetIndex(0, p); !ok {
				c.AddNode(0, p)
			}
		}
	}
	firstLayer := len(c.keys) - 1

	// Phase II: encode every tuple, extending the tree along the way
	// (lines 9-17).
	D = make([][]uint32, len(b))
	// seq reconstructs node sequences only when tracing.
	var parentOf []uint32
	if traced {
		parentOf = make([]uint32, len(c.keys))
	}
	for ti, t := range b {
		i := 0
		d := make([]uint32, 0, len(t))
		for i < len(t) {
			n, j := longestMatchFromTree(t, i, c)
			d = append(d, n)
			step := TraceStep{Tuple: ti, I: i, MatchNode: n, Appended: n}
			if j < len(t) {
				added := c.AddNode(n, t[j])
				if traced {
					parentOf = append(parentOf, n)
					step.AddedNode = added
					step.AddedSeq = nodeSequence(c, parentOf, added)
				}
			}
			if traced {
				trace = append(trace, step)
			}
			i = j
		}
		D[ti] = d
	}

	I = make([]Pair, firstLayer)
	copy(I, c.keys[1:firstLayer+1])
	return I, D, trace
}

// longestMatchFromTree finds the longest sequence in the prefix tree that
// matches tuple t starting at position i, returning the matched node index
// and the next matching start position (Algorithm 1, lines 21-34). The
// match is always at least one pair long because phase I seeded the first
// layer with every unique pair.
func longestMatchFromTree(t SparseRow, i int, c *encodeTree) (n uint32, j int) {
	j = i
	next, ok := c.GetIndex(0, t[j]) // match the first element
	if !ok {
		// Unreachable after phase I; kept as a defensive invariant.
		panic("core: pair missing from prefix tree first layer")
	}
	for {
		n = next
		j++ // try matching the next element
		if j < len(t) {
			next, ok = c.GetIndex(n, t[j])
		} else {
			ok = false // reached the end of tuple t
		}
		if !ok {
			return n, j
		}
	}
}

// nodeSequence reconstructs the pair sequence represented by node idx using
// the parent links collected during tracing.
func nodeSequence(c *encodeTree, parentOf []uint32, idx uint32) []Pair {
	var rev []Pair
	for idx != 0 {
		rev = append(rev, c.keys[idx])
		if int(idx) < len(parentOf) {
			idx = parentOf[idx]
		} else {
			idx = 0
		}
	}
	seq := make([]Pair, len(rev))
	for i := range rev {
		seq[i] = rev[len(rev)-1-i]
	}
	return seq
}
