package core

import (
	"math"
	"math/rand"
	"testing"

	"toc/internal/matrix"
	"toc/internal/testutil"
)

// The Into kernels inherit the full bitwise contract: for any dst state
// (fresh, dirty, reused) and any worker count, the written bits match the
// allocating plan methods, and with a caller-owned dst the sequential
// path allocates nothing at all.

func dirtyVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.NaN()
	}
	return v
}

func dirtyMat(rows, cols int) *matrix.Dense {
	m := matrix.NewDense(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = math.Inf(-1)
	}
	return m
}

func TestPlanIntoBitwiseIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 7, 16}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		rows := 8 + rng.Intn(100)
		cols := 1 + rng.Intn(40)
		for name, b := range rightMulBatches(rng, rows, cols) {
			plan := b.NewKernelPlan()
			vr := randVec(rng, cols)
			vl := randVec(rng, rows)
			p := 1 + rng.Intn(9)
			mr := matrix.NewDense(cols, p)
			fillRand(rng, mr)
			mml := matrix.NewDense(p, rows)
			fillRand(rng, mml)
			for _, w := range workerCounts {
				if got := plan.MulVecInto(dirtyVec(rows), vr, w); !bitsEqual(got, plan.MulVec(vr, 1)) {
					t.Fatalf("seed %d %s workers=%d: MulVecInto differs", seed, name, w)
				}
				if got := plan.VecMulInto(dirtyVec(cols), vl, w); !bitsEqual(got, plan.VecMul(vl, 1)) {
					t.Fatalf("seed %d %s workers=%d: VecMulInto differs", seed, name, w)
				}
				if got := plan.MulMatInto(dirtyMat(rows, p), mr, w); !got.Equal(plan.MulMat(mr, 1)) {
					t.Fatalf("seed %d %s workers=%d: MulMatInto differs", seed, name, w)
				}
				if got := plan.MatMulInto(dirtyMat(p, cols), mml, w); !got.Equal(plan.MatMul(mml, 1)) {
					t.Fatalf("seed %d %s workers=%d: MatMulInto differs", seed, name, w)
				}
			}
			// nil dst allocates, like the plain methods.
			if got := plan.MulVecInto(nil, vr, 1); !bitsEqual(got, plan.MulVec(vr, 1)) {
				t.Fatalf("seed %d %s: MulVecInto(nil) differs", seed, name)
			}
		}
	}
}

func TestPlanIntoShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	b := Compress(redundantMatrix(rng, 16, 8, 0.9, 3))
	plan := b.NewKernelPlan()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with wrong-shape dst should panic", name)
			}
		}()
		fn()
	}
	mustPanic("MulVecInto", func() { plan.MulVecInto(make([]float64, 3), randVec(rng, 8), 1) })
	mustPanic("VecMulInto", func() { plan.VecMulInto(make([]float64, 3), randVec(rng, 16), 1) })
	mustPanic("MulMatInto", func() { plan.MulMatInto(matrix.NewDense(2, 2), matrix.NewDense(8, 4), 1) })
	mustPanic("MatMulInto", func() { plan.MatMulInto(matrix.NewDense(2, 2), matrix.NewDense(4, 16), 1) })
}

// TestPlanIntoAllocs pins the zero-allocation steady state: with a
// caller-owned destination and workers=1, no kernel allocates — the tree
// is cached in the plan, accumulators come from the scratch pool, and
// the result lands in dst.
func TestPlanIntoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector, so the pool-hit pin cannot hold")
	}
	rng := rand.New(rand.NewSource(720))
	rows, cols := 64, 16
	for name, b := range rightMulBatches(rng, rows, cols) {
		plan := b.NewKernelPlan()
		vr := randVec(rng, cols)
		vl := randVec(rng, rows)
		mr := matrix.NewDense(cols, 4)
		fillRand(rng, mr)
		mml := matrix.NewDense(4, rows)
		fillRand(rng, mml)
		dv := make([]float64, rows)
		dc := make([]float64, cols)
		dmr := matrix.NewDense(rows, 4)
		dml := matrix.NewDense(4, cols)

		if got := testing.AllocsPerRun(50, func() { plan.MulVecInto(dv, vr, 1) }); got != 0 {
			t.Errorf("%s: MulVecInto allocates %.0f objects/op, want 0", name, got)
		}
		if got := testing.AllocsPerRun(50, func() { plan.VecMulInto(dc, vl, 1) }); got != 0 {
			t.Errorf("%s: VecMulInto allocates %.0f objects/op, want 0", name, got)
		}
		if got := testing.AllocsPerRun(50, func() { plan.MulMatInto(dmr, mr, 1) }); got != 0 {
			t.Errorf("%s: MulMatInto allocates %.0f objects/op, want 0", name, got)
		}
		if got := testing.AllocsPerRun(50, func() { plan.MatMulInto(dml, mml, 1) }); got != 0 {
			t.Errorf("%s: MatMulInto allocates %.0f objects/op, want 0", name, got)
		}
	}
}
