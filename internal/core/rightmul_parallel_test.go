package core

import (
	"math/rand"
	"testing"

	"toc/internal/matrix"
)

// rightMulBatches builds the three variants the parallel right-mul
// kernels must cover: a dense-ish Full batch, a sparse SparseLogical
// batch, and a SparseOnly batch.
func rightMulBatches(rng *rand.Rand, rows, cols int) map[string]*Batch {
	dense := redundantMatrix(rng, rows, cols, 0.95, 4)
	sparse := redundantMatrix(rng, rows, cols, 0.25, 5)
	return map[string]*Batch{
		"full":          Compress(dense),
		"sparseLogical": CompressVariant(sparse, SparseLogical),
		"sparseOnly":    CompressVariant(sparse, SparseOnly),
	}
}

// MulVecParallel must be bitwise identical to MulVec for every worker
// count — each output row is an independent sequential reduction, so
// sharding rows can never reorder a float fold.
func TestRightMulParallelMulVecBitwiseIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 7, 16}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		rows := 8 + rng.Intn(120)
		cols := 1 + rng.Intn(40)
		for name, b := range rightMulBatches(rng, rows, cols) {
			v := randVec(rng, cols)
			want := b.MulVec(v)
			for _, w := range workerCounts {
				got := b.MulVecParallel(v, w)
				if !bitsEqual(got, want) {
					t.Fatalf("seed %d %s workers=%d: MulVecParallel differs from MulVec", seed, name, w)
				}
			}
		}
	}
}

// MulMatParallel must be bitwise identical to MulMat for every worker
// count and every p (columns of M), including p smaller than the worker
// count: the forward H scan shards over result columns (each column's
// parent-chain DP is independent) and the D scan over result rows.
func TestRightMulParallelMulMatBitwiseIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 7, 16}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		rows := 8 + rng.Intn(80)
		cols := 1 + rng.Intn(30)
		for name, b := range rightMulBatches(rng, rows, cols) {
			for _, p := range []int{1, 3, 8, 21} {
				m := matrix.NewDense(cols, p)
				fillRand(rng, m)
				want := b.MulMat(m)
				for _, w := range workerCounts {
					got := b.MulMatParallel(m, w)
					if !bitsEqual(got.Data(), want.Data()) {
						t.Fatalf("seed %d %s p=%d workers=%d: MulMatParallel differs from MulMat",
							seed, name, p, w)
					}
				}
			}
		}
	}
}

// Tiny batches and workers <= 0 (GOMAXPROCS) must take the fallback and
// normalization paths without diverging.
func TestRightMulParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tiny := Compress(redundantMatrix(rng, 3, 5, 0.6, 3))
	v := randVec(rng, 5)
	if !bitsEqual(tiny.MulVecParallel(v, 8), tiny.MulVec(v)) {
		t.Fatal("tiny batch fallback diverges")
	}
	if !bitsEqual(tiny.MulVecParallel(v, 0), tiny.MulVec(v)) {
		t.Fatal("workers=0 (GOMAXPROCS) diverges")
	}
	sp := CompressVariant(redundantMatrix(rng, 40, 12, 0.4, 3), SparseOnly)
	m := matrix.NewDense(12, 1)
	fillRand(rng, m)
	if !bitsEqual(sp.MulMatParallel(m, 7).Data(), sp.MulMat(m).Data()) {
		t.Fatal("p=1 SparseOnly MulMat diverges")
	}
}

func TestRightMulParallelDimMismatchPanics(t *testing.T) {
	b := Compress(matrix.NewDense(30, 4))
	for name, call := range map[string]func(){
		"MulVecParallel": func() { b.MulVecParallel(make([]float64, 3), 4) },
		"MulMatParallel": func() { b.MulMatParallel(matrix.NewDense(3, 2), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			call()
		}()
	}
}

// BenchmarkRightMulParallel compares the sequential and sharded right-mul
// kernels on a batch large enough for the sharding to matter.
func BenchmarkRightMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := redundantMatrix(rng, 4000, 100, 0.55, 5)
	batch := Compress(a)
	v := randVec(rng, 100)
	m := matrix.NewDense(100, 24)
	fillRand(rng, m)
	b.Run("MulVec-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MulVec(v)
		}
	})
	b.Run("MulVec-par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MulVecParallel(v, 0)
		}
	})
	b.Run("MulMat-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MulMat(m)
		}
	})
	b.Run("MulMat-par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MulMatParallel(m, 0)
		}
	})
}
