package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Left multiplication operations: v·A (Algorithm 5, Theorem 2) and M·A
// (Algorithm 8, Theorem 4). D is scanned first to accumulate
// G(x) = Σ_{D[i,j]=x} v[i] (Equation 7), then C' is scanned backwards:
// each node contributes key·G to the result and pushes its accumulated
// weight up to its parent, evaluating Equation 8 without ever
// materializing node sequences.
//
// Like the right multiplications, the kernels are split into
// tree-parameterized bodies shared by the per-call builders here, the
// sharded drivers in leftmul_parallel.go, and KernelPlan (plan.go). The
// bodies accumulate into caller-zeroed destinations and walk D through
// the flat Nodes/Starts arrays with the bounds proven up front
// (boundsHint in rightmul.go), mirroring the right-mul loop shape.

// VecMul computes v·A on the compressed batch.
func (b *Batch) VecMul(v []float64) []float64 {
	if len(v) != b.rows {
		panic(fmt.Sprintf("core: VecMul dim mismatch %d != %d", len(v), b.rows))
	}
	r := make([]float64, b.cols)
	if b.variant == SparseOnly {
		b.vecMulSparseSeq(v, r)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.vecMulTree(t, sc, v, r)
	return r
}

// vecMulTree is v·A over an already-built decode tree, accumulating into
// r (length cols, caller-zeroed).
func (b *Batch) vecMulTree(t *DecodeTree, sc *opScratch, v, r []float64) {
	h := sc.floatBuf(t.Len())
	b.vecMulRows(v, h)
	// Scan C' backwards: children precede parents, so pushing H[i] onto
	// H[parent] visits every implicit sequence element exactly once.
	// key/parent/h share one proven length; the data-dependent r[col] and
	// h[parent] indexes keep their checks.
	key := t.Key
	par := t.Parent[:len(key)]
	h = h[:len(key)]
	for i := len(key) - 1; i >= 1; i-- {
		k := key[i]
		r[k.Col] += k.Val * h[i]
		h[par[i]] += h[i]
	}
}

// vecMulRows scans D to compute H[x] = G(x) = Σ_{D[i,j]=x} v[i]. The walk
// is flat over Nodes/Starts, 4-way unrolled; the unrolled scatters execute
// in program order, so a node repeated within one tuple still accumulates
// in the sequential order.
func (b *Batch) vecMulRows(v, h []float64) {
	nodes, starts := b.d.Nodes, b.d.Starts
	boundsHint(0, b.rows, len(starts), len(v))
	for i := 0; i < b.rows; i++ {
		vi := v[i]
		row := nodes[starts[i]:starts[i+1]]
		for len(row) >= 4 {
			h[row[0]] += vi
			h[row[1]] += vi
			h[row[2]] += vi
			h[row[3]] += vi
			row = row[4:]
		}
		for len(row) >= 1 {
			h[row[0]] += vi
			row = row[1:]
		}
	}
}

// vecMulSparseSeq is the SparseOnly v·A, accumulating into caller-zeroed r.
func (b *Batch) vecMulSparseSeq(v, r []float64) {
	starts, cols, vals := b.srStarts, b.srCols, b.srVals
	boundsHint(0, b.rows, len(starts), len(v))
	for i := 0; i < b.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		cs := cols[starts[i]:starts[i+1]]
		vs := vals[starts[i]:starts[i+1]]
		vs = vs[:len(cs)]
		for k, c := range cs {
			r[c] += vi * vs[k]
		}
	}
}

// MatMul computes M·A on the compressed batch, where M is p × rows.
func (b *Batch) MatMul(m *matrix.Dense) *matrix.Dense {
	if m.Cols() != b.rows {
		panic(fmt.Sprintf("core: MatMul dim mismatch %d != %d", m.Cols(), b.rows))
	}
	r := matrix.NewDense(m.Rows(), b.cols)
	if b.variant == SparseOnly {
		b.matMulSparseRange(m, r, 0, m.Rows())
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.matMulTree(t, sc, m, r)
	return r
}

// matMulTree is M·A over an already-built decode tree, accumulating into
// r (p × cols, caller-zeroed).
func (b *Batch) matMulTree(t *DecodeTree, sc *opScratch, m *matrix.Dense, r *matrix.Dense) {
	p := m.Rows()
	// Scan D to compute H[x,:] = G(x) = Σ_{D[i,j]=x} M[:,i]. H is stored
	// node-major ("transposed" in the paper's wording) so D is scanned
	// once with good locality. Column i of M is gathered into a contiguous
	// buffer once per tuple: the strided column walk runs once instead of
	// once per code, and every accumulation reads sequential memory. The
	// gather changes no addend and no order, only the load addresses.
	h := sc.floatBuf(t.Len() * p)
	mc := sc.gatherBuf(p)
	md := m.Data()
	mcols := m.Cols()
	nodes, starts := b.d.Nodes, b.d.Starts
	boundsHint(0, b.rows, len(starts), b.rows)
	for i := 0; i < b.rows; i++ {
		row := nodes[starts[i]:starts[i+1]]
		if len(row) == 0 {
			continue
		}
		off := i
		for k := range mc {
			mc[k] = md[off]
			off += mcols
		}
		for _, n := range row {
			hn := h[int(n)*p : int(n)*p+len(mc)]
			mw := mc
			for len(hn) >= 4 && len(mw) >= 4 {
				hn[0] += mw[0]
				hn[1] += mw[1]
				hn[2] += mw[2]
				hn[3] += mw[3]
				hn, mw = hn[4:], mw[4:]
			}
			for len(hn) >= 1 && len(mw) >= 1 {
				hn[0] += mw[0]
				hn, mw = hn[1:], mw[1:]
			}
		}
	}
	// Scan C' backwards, pushing accumulated weights to parents. The
	// result element (k, col) strides by r's row width; walking the offset
	// replaces the per-element index multiply.
	rd := r.Data()
	rcols := r.Cols()
	key, par := t.Key, t.Parent
	for i := len(key) - 1; i >= 1; i-- {
		k := key[i]
		hi := h[i*p : i*p+p]
		hp := h[int(par[i])*p : int(par[i])*p+p]
		hp = hp[:len(hi)]
		kv := k.Val
		off := int(k.Col)
		for j := 0; j < len(hi); j++ {
			rd[off] += kv * hi[j]
			hp[j] += hi[j]
			off += rcols
		}
	}
}

// matMulSparseRange is the SparseOnly M·A for result rows [klo,khi). The
// result row is the outer loop: for a fixed output row the (i,k) nonzero
// scan order is unchanged, so every result element folds in the exact
// pre-restructure order, while M's row and the result row become
// contiguous slices instead of strided column walks.
func (b *Batch) matMulSparseRange(m *matrix.Dense, r *matrix.Dense, klo, khi int) {
	starts, cols, vals := b.srStarts, b.srCols, b.srVals
	boundsHint(0, b.rows, len(starts), b.rows)
	for row := klo; row < khi; row++ {
		mrow := m.Row(row)
		rrow := r.Row(row)
		for i := 0; i < b.rows; i++ {
			mi := mrow[i]
			cs := cols[starts[i]:starts[i+1]]
			vs := vals[starts[i]:starts[i+1]]
			vs = vs[:len(cs)]
			for k, c := range cs {
				rrow[c] += mi * vs[k]
			}
		}
	}
}
