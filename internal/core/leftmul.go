package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Left multiplication operations: v·A (Algorithm 5, Theorem 2) and M·A
// (Algorithm 8, Theorem 4). D is scanned first to accumulate
// G(x) = Σ_{D[i,j]=x} v[i] (Equation 7), then C' is scanned backwards:
// each node contributes key·G to the result and pushes its accumulated
// weight up to its parent, evaluating Equation 8 without ever
// materializing node sequences.
//
// Like the right multiplications, the kernels are split into
// tree-parameterized bodies shared by the per-call builders here, the
// sharded drivers in leftmul_parallel.go, and KernelPlan (plan.go).

// VecMul computes v·A on the compressed batch.
func (b *Batch) VecMul(v []float64) []float64 {
	if len(v) != b.rows {
		panic(fmt.Sprintf("core: VecMul dim mismatch %d != %d", len(v), b.rows))
	}
	if b.variant == SparseOnly {
		return b.vecMulSparseSeq(v)
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	return b.vecMulTree(t, sc, v)
}

// vecMulTree is v·A over an already-built decode tree.
func (b *Batch) vecMulTree(t *DecodeTree, sc *opScratch, v []float64) []float64 {
	// Scan D to compute H[x] = G(x).
	h := sc.floatBuf(t.Len())
	for i := 0; i < b.rows; i++ {
		vi := v[i]
		for _, n := range b.d.row(i) {
			h[n] += vi
		}
	}
	// Scan C' backwards: children precede parents, so pushing H[i] onto
	// H[parent] visits every implicit sequence element exactly once.
	r := make([]float64, b.cols)
	for i := t.Len() - 1; i >= 1; i-- {
		k := t.Key[i]
		r[k.Col] += k.Val * h[i]
		h[t.Parent[i]] += h[i]
	}
	return r
}

// vecMulSparseSeq is the SparseOnly v·A.
func (b *Batch) vecMulSparseSeq(v []float64) []float64 {
	r := make([]float64, b.cols)
	for i := 0; i < b.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
			r[b.srCols[k]] += vi * b.srVals[k]
		}
	}
	return r
}

// MatMul computes M·A on the compressed batch, where M is p × rows.
func (b *Batch) MatMul(m *matrix.Dense) *matrix.Dense {
	if m.Cols() != b.rows {
		panic(fmt.Sprintf("core: MatMul dim mismatch %d != %d", m.Cols(), b.rows))
	}
	if b.variant == SparseOnly {
		r := matrix.NewDense(m.Rows(), b.cols)
		b.matMulSparseRange(m, r, 0, m.Rows())
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	return b.matMulTree(t, sc, m)
}

// matMulTree is M·A over an already-built decode tree.
func (b *Batch) matMulTree(t *DecodeTree, sc *opScratch, m *matrix.Dense) *matrix.Dense {
	p := m.Rows()
	r := matrix.NewDense(p, b.cols)
	// Scan D to compute H[x,:] = G(x) = Σ_{D[i,j]=x} M[:,i]. H is stored
	// node-major ("transposed" in the paper's wording) so D is scanned
	// once with good locality.
	h := sc.floatBuf(t.Len() * p)
	for i := 0; i < b.rows; i++ {
		for _, n := range b.d.row(i) {
			hn := h[int(n)*p : int(n)*p+p]
			for k := 0; k < p; k++ {
				hn[k] += m.At(k, i)
			}
		}
	}
	// Scan C' backwards, pushing accumulated weights to parents.
	for i := t.Len() - 1; i >= 1; i-- {
		key := t.Key[i]
		hi := h[i*p : i*p+p]
		hp := h[int(t.Parent[i])*p : int(t.Parent[i])*p+p]
		col := int(key.Col)
		for k := 0; k < p; k++ {
			r.Set(k, col, r.At(k, col)+key.Val*hi[k])
			hp[k] += hi[k]
		}
	}
	return r
}

// matMulSparseRange is the SparseOnly M·A for result rows [klo,khi).
func (b *Batch) matMulSparseRange(m *matrix.Dense, r *matrix.Dense, klo, khi int) {
	for i := 0; i < b.rows; i++ {
		for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
			col := int(b.srCols[k])
			val := b.srVals[k]
			for row := klo; row < khi; row++ {
				r.Set(row, col, r.At(row, col)+m.At(row, i)*val)
			}
		}
	}
}
