package core

import (
	"fmt"
	"runtime"
	"sync"

	"toc/internal/matrix"
)

// Parallel right multiplication (the §5.3 data-parallel NN path, listed as
// an extension in DESIGN.md §7). The decode tree C' and the H table are
// read-only after the forward scan, and every output row of A·M depends on
// one tuple of D only, so the D scan parallelizes across row shards with
// no synchronization beyond a WaitGroup.
//
// Left multiplications accumulate *into* shared per-node state and shard
// over accumulators instead of rows; see leftmul_parallel.go.

// MulMatParallel computes A·M like MulMat, splitting the D scan over
// workers goroutines (workers <= 0 uses GOMAXPROCS). It returns results
// identical to MulMat.
func (b *Batch) MulMatParallel(m *matrix.Dense, workers int) *matrix.Dense {
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: MulMatParallel dim mismatch %d != %d", m.Rows(), b.cols))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || b.rows < 2*workers || b.variant == SparseOnly {
		return b.MulMat(m)
	}
	p := m.Cols()
	r := matrix.NewDense(b.rows, p)

	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	// Forward scan of C' (sequential: each H row depends on its parent).
	h := sc.floatBuf(t.Len() * p)
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		mrow := m.Row(int(k.Col))
		hi := h[i*p : i*p+p]
		hp := h[int(t.Parent[i])*p : int(t.Parent[i])*p+p]
		for j := range hi {
			hi[j] = k.Val*mrow[j] + hp[j]
		}
	}
	// Parallel D scan: disjoint output rows per shard.
	var wg sync.WaitGroup
	shard := (b.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * shard
		hi := lo + shard
		if hi > b.rows {
			hi = b.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ri := r.Row(i)
				for _, n := range b.d.row(i) {
					hn := h[int(n)*p : int(n)*p+p]
					for j := range ri {
						ri[j] += hn[j]
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return r
}

// MulVecParallel computes A·v like MulVec with the D scan sharded across
// workers goroutines.
func (b *Batch) MulVecParallel(v []float64, workers int) []float64 {
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: MulVecParallel dim mismatch %d != %d", len(v), b.cols))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || b.rows < 2*workers || b.variant == SparseOnly {
		return b.MulVec(v)
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	h := sc.floatBuf(t.Len())
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		h[i] = k.Val*v[k.Col] + h[t.Parent[i]]
	}
	r := make([]float64, b.rows)
	var wg sync.WaitGroup
	shard := (b.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * shard
		hiRow := lo + shard
		if hiRow > b.rows {
			hiRow = b.rows
		}
		if lo >= hiRow {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var s float64
				for _, n := range b.d.row(i) {
					s += h[n]
				}
				r[i] = s
			}
		}(lo, hiRow)
	}
	wg.Wait()
	return r
}
