package core

import (
	"math"
	"math/rand"
	"testing"

	"toc/internal/matrix"
)

// bitsEqual reports exact bit-level equality of two float64 slices — the
// parallel left-mul contract is bitwise identity, not approximation.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// leftMulBatches builds the three batch shapes the parallel kernels must
// cover: a dense-ish logical batch, a sparse logical batch, and a
// SparseOnly batch.
func leftMulBatches(rng *rand.Rand, rows, cols int) map[string]*Batch {
	dense := redundantMatrix(rng, rows, cols, 0.95, 4)
	sparse := redundantMatrix(rng, rows, cols, 0.25, 5)
	return map[string]*Batch{
		"dense":      Compress(dense),
		"sparse":     Compress(sparse),
		"sparseOnly": CompressVariant(sparse, SparseOnly),
	}
}

// VecMulParallel must be bitwise identical to VecMul for every worker
// count — the property the engine's trajectory invariance stands on.
func TestLeftMulParallelVecMulBitwiseIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 7, 16}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(120)
		cols := 1 + rng.Intn(40)
		for name, b := range leftMulBatches(rng, rows, cols) {
			v := randVec(rng, rows)
			want := b.VecMul(v)
			for _, w := range workerCounts {
				got := b.VecMulParallel(v, w)
				if !bitsEqual(got, want) {
					t.Fatalf("seed %d %s workers=%d: VecMulParallel differs from VecMul", seed, name, w)
				}
			}
		}
	}
}

// MatMulParallel must be bitwise identical to MatMul for every worker
// count and every p (rows of M), including p smaller than the worker
// count.
func TestLeftMulParallelMatMulBitwiseIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 7, 16}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		rows := 8 + rng.Intn(80)
		cols := 1 + rng.Intn(30)
		for name, b := range leftMulBatches(rng, rows, cols) {
			for _, p := range []int{1, 3, 8, 21} {
				m := matrix.NewDense(p, rows)
				fillRand(rng, m)
				want := b.MatMul(m)
				for _, w := range workerCounts {
					got := b.MatMulParallel(m, w)
					if !bitsEqual(got.Data(), want.Data()) {
						t.Fatalf("seed %d %s p=%d workers=%d: MatMulParallel differs from MatMul",
							seed, name, p, w)
					}
				}
			}
		}
	}
}

// Zero-weight rows and tiny batches must take the fallback paths without
// diverging.
func TestLeftMulParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tiny := Compress(redundantMatrix(rng, 3, 5, 0.6, 3))
	v := []float64{0, -1.5, 0}
	if !bitsEqual(tiny.VecMulParallel(v, 8), tiny.VecMul(v)) {
		t.Fatal("tiny batch fallback diverges")
	}
	sp := CompressVariant(redundantMatrix(rng, 40, 12, 0.4, 3), SparseOnly)
	zeros := make([]float64, 40)
	if !bitsEqual(sp.VecMulParallel(zeros, 7), sp.VecMul(zeros)) {
		t.Fatal("all-zero vector diverges on SparseOnly")
	}
	m := matrix.NewDense(1, 40)
	fillRand(rng, m)
	if !bitsEqual(sp.MatMulParallel(m, 7).Data(), sp.MatMul(m).Data()) {
		t.Fatal("p=1 MatMul fallback diverges")
	}
}

func TestLeftMulParallelDimMismatchPanics(t *testing.T) {
	b := Compress(matrix.NewDense(30, 4))
	for name, call := range map[string]func(){
		"VecMulParallel": func() { b.VecMulParallel(make([]float64, 4), 4) },
		"MatMulParallel": func() { b.MatMulParallel(matrix.NewDense(2, 3), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			call()
		}()
	}
}

// BenchmarkVecMulBackward measures the two backward-scan strategies the
// split kernel can use after the sequential parent pushes: keeping the
// r[col] scatter sequential vs sharding it over disjoint column ranges.
// scatterCols is the default above a small size floor (see its comment).
func BenchmarkVecMulBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := redundantMatrix(rng, 2000, 120, 0.6, 5)
	batch := Compress(a)
	t := batch.buildTree()
	h := make([]float64, t.Len())
	for i := range h {
		h[i] = rng.NormFloat64()
	}
	leftPushSeq(t, h)
	b.Run("sequential", func(b *testing.B) {
		r := make([]float64, batch.cols)
		for i := 0; i < b.N; i++ {
			scatterSeq(t, h, r)
		}
	})
	b.Run("colsharded", func(b *testing.B) {
		r := make([]float64, batch.cols)
		for i := 0; i < b.N; i++ {
			scatterCols(t, h, r, 4)
		}
	})
}

// BenchmarkLeftMulParallel compares the sequential and parallel left-mul
// kernels on a batch large enough for the sharding to matter.
func BenchmarkLeftMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := redundantMatrix(rng, 4000, 100, 0.55, 5)
	batch := Compress(a)
	v := randVec(rng, 4000)
	m := matrix.NewDense(24, 4000)
	fillRand(rng, m)
	b.Run("VecMul-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.VecMul(v)
		}
	})
	b.Run("VecMul-par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.VecMulParallel(v, 0)
		}
	})
	b.Run("MatMul-seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatMul(m)
		}
	})
	b.Run("MatMul-par", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch.MatMulParallel(m, 0)
		}
	})
}
