package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"toc/internal/matrix"
)

func TestParallelOpsMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(20)
		a := redundantMatrix(rng, rows, cols, 0.5, 4)
		b := Compress(a)
		v := randVec(rng, cols)
		for _, workers := range []int{0, 1, 2, 5} {
			if !vecApproxEq(b.MulVecParallel(v, workers), b.MulVec(v)) {
				return false
			}
		}
		p := 1 + rng.Intn(4)
		m := matrix.NewDense(cols, p)
		fillRand(rng, m)
		want := b.MulMat(m)
		for _, workers := range []int{0, 1, 2, 5} {
			if !b.MulMatParallel(m, workers).EqualApprox(want, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSparseOnlyFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := redundantMatrix(rng, 40, 10, 0.5, 3)
	b := CompressVariant(a, SparseOnly)
	v := randVec(rng, 10)
	if !vecApproxEq(b.MulVecParallel(v, 4), a.MulVec(v)) {
		t.Fatal("sparse-only parallel fallback wrong")
	}
}

func TestParallelDimMismatchPanics(t *testing.T) {
	b := Compress(matrix.NewDense(30, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.MulVecParallel(make([]float64, 3), 4)
}
