package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Variant selects which encoding layers a Batch uses. The paper's ablation
// study (Figures 6 and 10) compares the cumulative variants.
type Variant uint8

const (
	// Full uses sparse + logical + physical encoding (TOC_FULL).
	Full Variant = iota
	// SparseLogical uses sparse + logical encoding with raw physical
	// storage (TOC_SPARSE_AND_LOGICAL).
	SparseLogical
	// SparseOnly uses just the sparse encoding (TOC_SPARSE).
	SparseOnly
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Full:
		return "TOC_FULL"
	case SparseLogical:
		return "TOC_SPARSE_AND_LOGICAL"
	case SparseOnly:
		return "TOC_SPARSE"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Batch is a TOC-compressed mini-batch. It holds the logical encoding
// (I, D) in memory for kernel execution plus the physical byte image whose
// length is the batch's compressed size; Serialize returns that image and
// Deserialize reconstructs the batch from it.
//
// Invariants (checked by tests):
//   - lossless: Decode() equals the compressed input exactly;
//   - every node index in D is non-zero and below the decode-tree length;
//   - in the decode tree, Parent[i] < i for every node, which is what makes
//     the single forward scan of Algorithms 4/7 and the single backward
//     scan of Algorithms 5/8 correct.
type Batch struct {
	rows, cols int
	variant    Variant

	// logical layer (Full, SparseLogical)
	i []Pair
	d dTable

	// sparse layer (SparseOnly)
	srStarts []uint32
	srCols   []uint32
	srVals   []float64

	img []byte // serialized physical image; nil when stale (after Scale)
}

// Compress encodes a dense mini-batch with the Full TOC pipeline.
func Compress(m *matrix.Dense) *Batch { return CompressVariant(m, Full) }

// CompressVariant encodes a dense mini-batch using the given layer subset.
func CompressVariant(m *matrix.Dense, v Variant) *Batch {
	b := &Batch{rows: m.Rows(), cols: m.Cols(), variant: v}
	sparse := SparseEncode(m)
	if v == SparseOnly {
		starts := make([]uint32, len(sparse)+1)
		nnz := 0
		for i, sr := range sparse {
			starts[i] = uint32(nnz)
			nnz += len(sr)
		}
		starts[len(sparse)] = uint32(nnz)
		b.srStarts = starts
		b.srCols = make([]uint32, 0, nnz)
		b.srVals = make([]float64, 0, nnz)
		for _, sr := range sparse {
			for _, p := range sr {
				b.srCols = append(b.srCols, p.Col)
				b.srVals = append(b.srVals, p.Val)
			}
		}
	} else {
		I, D := PrefixTreeEncode(sparse)
		b.i = I
		b.d = flattenD(D)
	}
	b.img = b.buildImage()
	return b
}

// Rows returns the number of tuples in the mini-batch.
func (b *Batch) Rows() int { return b.rows }

// Cols returns the number of columns of the original matrix.
func (b *Batch) Cols() int { return b.cols }

// Variant returns the encoding layer subset this batch was built with.
func (b *Batch) Variant() Variant { return b.variant }

// NumFirstLayer returns |I|, the number of unique column-index:value pairs.
func (b *Batch) NumFirstLayer() int { return len(b.i) }

// NumCodes returns the total number of tree-node indexes in D.
func (b *Batch) NumCodes() int { return len(b.d.Nodes) }

// CompressedSize returns the size in bytes of the physical image — the
// number the paper's compression ratios are computed from.
func (b *Batch) CompressedSize() int {
	if b.img == nil {
		b.img = b.buildImage()
	}
	return len(b.img)
}

// UncompressedSize returns the DEN size of the original matrix.
func (b *Batch) UncompressedSize() int {
	return 16 + 8*b.rows*b.cols
}

// CompressionRatio returns UncompressedSize / CompressedSize.
func (b *Batch) CompressionRatio() float64 {
	return float64(b.UncompressedSize()) / float64(b.CompressedSize())
}

// Decode losslessly reconstructs the original dense mini-batch. For the
// logical variants it backtracks the decode tree as in Algorithm 6; for
// SparseOnly it expands the sparse rows.
func (b *Batch) Decode() *matrix.Dense {
	out := matrix.NewDense(b.rows, b.cols)
	if b.variant == SparseOnly {
		for i := 0; i < b.rows; i++ {
			row := out.Row(i)
			for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
				row[b.srCols[k]] = b.srVals[k]
			}
		}
		return out
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	for i := 0; i < b.rows; i++ {
		row := out.Row(i)
		for _, n := range b.d.row(i) {
			for idx := n; idx != 0; idx = t.Parent[idx] {
				k := t.Key[idx]
				row[k.Col] = k.Val
			}
		}
	}
	return out
}

// buildTree builds the decode tree C' for this batch (logical variants).
func (b *Batch) buildTree() *DecodeTree {
	return BuildPrefixTree(b.i, b.d)
}
