package core

import (
	"fmt"
	"runtime"
	"sync"

	"toc/internal/matrix"
)

// Parallel right multiplications: A·v (Algorithm 4) and A·M (Algorithm 7)
// sharded across goroutines — the forward pass of every model, completing
// the kernel-parallelism story the left multiplications started in
// leftmul_parallel.go.
//
// Right multiplications are the easy direction: every output row depends
// on exactly one tuple of D, so the D scan shards over disjoint result-row
// ranges and each row's reduction folds in the sequential order untouched.
// The H table adds one subtlety per kernel:
//
//   - MulVecParallel keeps its scalar H scan sequential. Each H[i] chains
//     on H[parent(i)], and |C'| ≪ |D|·avg-codes, so Amdahl says the chain
//     is not worth breaking.
//   - MulMatParallel shards the H scan over the p result columns: column
//     j of every H row depends only on column j of its parent row, so each
//     column's parent-chain DP is an independent sequential recurrence.
//
// Both kernels therefore return results bitwise identical to MulVec and
// MulMat for any worker count (asserted by TestRightMulParallel*), which
// is what lets the engine flip between them freely without ever changing
// a training trajectory. SparseOnly batches shard over rows the same way.

// rightWorkers normalizes a requested worker count against the row count:
// <= 0 picks GOMAXPROCS, and a shard is only worth a goroutine with at
// least two rows to scan.
func rightWorkers(workers, rows int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (rows + 1) / 2; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachSpan splits [0,n) into equal-width spans and runs fn on each
// concurrently, waiting for all of them.
func forEachSpan(n, workers int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	span := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*span, (w+1)*span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// forEachRowShard is forEachSpan over result rows.
func forEachRowShard(rows, workers int, fn func(lo, hi int)) {
	forEachSpan(rows, workers, fn)
}

// MulVecParallel computes A·v like MulVec with the D scan sharded over
// disjoint result-row ranges (workers <= 0 uses GOMAXPROCS). The result
// is bitwise identical to MulVec for any worker count.
func (b *Batch) MulVecParallel(v []float64, workers int) []float64 {
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: MulVecParallel dim mismatch %d != %d", len(v), b.cols))
	}
	workers = rightWorkers(workers, b.rows)
	r := make([]float64, b.rows)
	if b.variant == SparseOnly {
		b.mulVecSparsePar(v, r, workers)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.mulVecTree(t, sc, v, r, workers)
	return r
}

// mulVecSparsePar is the SparseOnly A·v with rows sharded, writing into r
// (length rows, fully overwritten).
func (b *Batch) mulVecSparsePar(v, r []float64, workers int) {
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulVecSparseRows(v, r, lo, hi) })
	} else {
		b.mulVecSparseRows(v, r, 0, b.rows)
	}
}

// MulMatParallel computes A·M like MulMat with the C' forward scan
// sharded over the p result columns and the D scan sharded over result
// rows (workers <= 0 uses GOMAXPROCS). The result is bitwise identical to
// MulMat for any worker count.
func (b *Batch) MulMatParallel(m *matrix.Dense, workers int) *matrix.Dense {
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: MulMatParallel dim mismatch %d != %d", m.Rows(), b.cols))
	}
	workers = rightWorkers(workers, b.rows)
	r := matrix.NewDense(b.rows, m.Cols())
	if b.variant == SparseOnly {
		b.mulMatSparsePar(m, r, workers)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.mulMatTree(t, sc, m, r, workers)
	return r
}

// mulMatSparsePar is the SparseOnly A·M with rows sharded, accumulating
// into r (rows × p, caller-zeroed).
func (b *Batch) mulMatSparsePar(m *matrix.Dense, r *matrix.Dense, workers int) {
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulMatSparseRows(m, r, lo, hi) })
	} else {
		b.mulMatSparseRows(m, r, 0, b.rows)
	}
}
