// Package core implements tuple-oriented compression (TOC), the primary
// contribution of "Tuple-oriented Compression for Large-scale Mini-batch
// Stochastic Gradient Descent" (Li et al., SIGMOD 2019), together with the
// paper's compressed matrix-operation execution techniques.
//
// TOC compresses a mini-batch (a small dense matrix) in three layers:
//
//  1. Sparse encoding (§3): zeros are dropped and every non-zero value is
//     prefixed with its column index, forming column-index:value pairs.
//  2. Logical encoding (§3.1): an LZW-inspired prefix-tree encoder replaces
//     repeated pair sequences across tuples with tree-node indexes
//     (Algorithm 1). Only the encoded table D and the tree's first layer I
//     are kept; the full tree is rebuilt on demand (Algorithm 2).
//  3. Physical encoding (§3.2): bit packing and value indexing shrink the
//     integer arrays and the float dictionary.
//
// Matrix operations execute directly on (I, D) without decompression:
// sparse-safe element-wise ops (Algorithm 3), right multiplications A·v and
// A·M (Algorithms 4 and 7), and left multiplications v·A and M·A
// (Algorithms 5 and 8). Sparse-unsafe ops decode first (Algorithm 6).
package core

import (
	"sort"

	"toc/internal/matrix"
)

// Pair is a column-index:value pair, the compression unit of TOC (§3).
// Unlike LZW's 8-bit units, encoding whole pairs preserves column
// boundaries in the underlying tabular data (Table 3).
type Pair struct {
	Col uint32
	Val float64
}

// SparseRow is the sparse encoding of one tuple: its non-zero values, each
// prefixed with its column index, in ascending column order.
type SparseRow []Pair

// SparseEncode converts a dense matrix into the sparse encoded table B of
// §3: row R=[1.1, 2, 3, 0] becomes [1:1.1, 2:2, 3:3] (columns are 1-based
// in the paper's figures; here they are 0-based indexes).
func SparseEncode(d *matrix.Dense) []SparseRow {
	b := make([]SparseRow, d.Rows())
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		var sr SparseRow
		for j, v := range row {
			if v != 0 {
				sr = append(sr, Pair{Col: uint32(j), Val: v})
			}
		}
		b[i] = sr
	}
	return b
}

// sparseDecode reconstructs a dense matrix from a sparse encoded table.
func sparseDecode(b []SparseRow, cols int) *matrix.Dense {
	d := matrix.NewDense(len(b), cols)
	for i, sr := range b {
		for _, p := range sr {
			d.Set(i, int(p.Col), p.Val)
		}
	}
	return d
}

// uniquePairs returns the distinct pairs of b in first-appearance order
// (the phase-I initialization order of Algorithm 1).
func uniquePairs(b []SparseRow) []Pair {
	seen := make(map[Pair]struct{})
	var out []Pair
	for _, sr := range b {
		for _, p := range sr {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}

// sortPairsByCol sorts pairs by (column, value); used only by diagnostics.
func sortPairsByCol(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Col != ps[j].Col {
			return ps[i].Col < ps[j].Col
		}
		return ps[i].Val < ps[j].Val
	})
}
