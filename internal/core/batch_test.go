package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toc/internal/matrix"
)

// redundantMatrix generates a matrix with TOC-friendly structure: values
// drawn from a small pool and rows composed from a handful of shared
// segment templates, so pair sequences repeat across tuples.
func redundantMatrix(rng *rand.Rand, rows, cols int, sparsity float64, poolSize int) *matrix.Dense {
	pool := make([]float64, poolSize)
	for i := range pool {
		pool[i] = math.Round(rng.NormFloat64()*8) / 4
		if pool[i] == 0 {
			pool[i] = 0.25
		}
	}
	// A few row templates; each row perturbs one.
	nTemplates := 3
	templates := make([][]float64, nTemplates)
	for t := range templates {
		row := make([]float64, cols)
		for j := range row {
			if rng.Float64() < sparsity {
				row[j] = pool[rng.Intn(poolSize)]
			}
		}
		templates[t] = row
	}
	d := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		base := templates[rng.Intn(nTemplates)]
		row := d.Row(i)
		copy(row, base)
		// perturb a couple of positions
		for k := 0; k < 2 && cols > 0; k++ {
			j := rng.Intn(cols)
			if rng.Float64() < 0.5 {
				row[j] = 0
			} else {
				row[j] = pool[rng.Intn(poolSize)]
			}
		}
	}
	return d
}

var allVariants = []Variant{Full, SparseLogical, SparseOnly}

func TestCompressDecodeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{{1, 1}, {1, 10}, {10, 1}, {7, 13}, {50, 40}, {250, 68}}
	for _, v := range allVariants {
		for _, s := range shapes {
			a := redundantMatrix(rng, s[0], s[1], 0.4, 5)
			b := CompressVariant(a, v)
			if !b.Decode().Equal(a) {
				t.Fatalf("%v %v: decode mismatch", v, s)
			}
		}
	}
}

func TestCompressEdgeCases(t *testing.T) {
	for _, v := range allVariants {
		// all-zero matrix
		z := matrix.NewDense(5, 8)
		b := CompressVariant(z, v)
		if !b.Decode().Equal(z) {
			t.Fatalf("%v: all-zero decode mismatch", v)
		}
		if got := b.MulVec(make([]float64, 8)); len(got) != 5 {
			t.Fatalf("%v: all-zero MulVec length %d", v, len(got))
		}
		// empty matrix
		e := matrix.NewDense(0, 0)
		be := CompressVariant(e, v)
		if be.Rows() != 0 || be.Cols() != 0 {
			t.Fatalf("%v: empty dims wrong", v)
		}
		if !be.Decode().Equal(e) {
			t.Fatalf("%v: empty decode mismatch", v)
		}
		// single dense row
		r := matrix.NewDenseFromRows([][]float64{{1, 2, 3, 4, 5}})
		br := CompressVariant(r, v)
		if !br.Decode().Equal(r) {
			t.Fatalf("%v: single row decode mismatch", v)
		}
	}
}

func TestOpsMatchDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(15)
		a := redundantMatrix(rng, rows, cols, 0.3+rng.Float64()*0.5, 2+rng.Intn(5))
		for _, variant := range allVariants {
			b := CompressVariant(a, variant)
			if !b.Decode().Equal(a) {
				return false
			}
			v := randVec(rng, cols)
			if !vecApproxEq(b.MulVec(v), a.MulVec(v)) {
				return false
			}
			u := randVec(rng, rows)
			if !vecApproxEq(b.VecMul(u), a.VecMul(u)) {
				return false
			}
			p := 1 + rng.Intn(4)
			m := matrix.NewDense(cols, p)
			fillRand(rng, m)
			if !b.MulMat(m).EqualApprox(a.MulMat(m), 1e-9) {
				return false
			}
			m2 := matrix.NewDense(p, rows)
			fillRand(rng, m2)
			if !b.MatMul(m2).EqualApprox(a.MatMul(m2), 1e-9) {
				return false
			}
			c := rng.NormFloat64()
			if !b.Scale(c).Decode().EqualApprox(a.Scale(c), 1e-9) {
				return false
			}
			if !b.Square().Decode().EqualApprox(a.MulElem(a), 1e-9) {
				return false
			}
			if !b.AddScalar(c).EqualApprox(a.AddScalar(c), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func fillRand(rng *rand.Rand, m *matrix.Dense) {
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
}

func vecApproxEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// The decode tree parent index is always smaller than the child index —
// the invariant that makes the one-pass forward/backward kernel scans
// correct. Verify it over random inputs.
func TestTreeTopologicalInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := redundantMatrix(rng, 1+rng.Intn(30), 1+rng.Intn(20), 0.5, 4)
		b := Compress(a)
		tree := b.buildTree()
		for i := 1; i < tree.Len(); i++ {
			if int(tree.Parent[i]) >= i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTripAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := redundantMatrix(rng, 40, 25, 0.45, 4)
	for _, v := range allVariants {
		b := CompressVariant(a, v)
		img := b.Serialize()
		if len(img) != b.CompressedSize() {
			t.Fatalf("%v: image %d bytes != CompressedSize %d", v, len(img), b.CompressedSize())
		}
		got, err := Deserialize(img)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got.Variant() != v || got.Rows() != 40 || got.Cols() != 25 {
			t.Fatalf("%v: header mismatch", v)
		}
		if !got.Decode().Equal(a) {
			t.Fatalf("%v: decode after round trip mismatch", v)
		}
		vec := randVec(rng, 25)
		if !vecApproxEq(got.MulVec(vec), a.MulVec(vec)) {
			t.Fatalf("%v: MulVec after round trip mismatch", v)
		}
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := redundantMatrix(rng, 10, 8, 0.5, 3)
	img := Compress(a).Serialize()

	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil image should error")
	}
	if _, err := Deserialize(img[:5]); err == nil {
		t.Fatal("truncated header should error")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := Deserialize(bad); err == nil {
		t.Fatal("bad magic should error")
	}
	bad = append([]byte(nil), img...)
	bad[4] = 99
	if _, err := Deserialize(bad); err == nil {
		t.Fatal("bad version should error")
	}
	bad = append([]byte(nil), img...)
	bad[5] = 7
	if _, err := Deserialize(bad); err == nil {
		t.Fatal("bad variant should error")
	}
	for cut := headerSize; cut < len(img); cut += 7 {
		if _, err := Deserialize(img[:cut]); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

// Single-byte flips must never panic: either the image still parses (and
// decodes to some matrix) or Deserialize returns an error.
func TestDeserializeByteFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := redundantMatrix(rng, 8, 6, 0.5, 3)
	img := Compress(a).Serialize()
	for pos := 0; pos < len(img); pos++ {
		for _, flip := range []byte{0x01, 0xFF} {
			bad := append([]byte(nil), img...)
			bad[pos] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at byte %d flip %#x: %v", pos, flip, r)
					}
				}()
				b, err := Deserialize(bad)
				if err != nil {
					return
				}
				b.Decode()
			}()
		}
	}
}

func TestValidateRejectsForwardReference(t *testing.T) {
	// Hand-build an image whose D references a node that does not exist
	// yet at replay time: I = [p], D = [[2]] — node 2 was never created
	// (a single-element tuple creates nothing).
	b := &Batch{rows: 1, cols: 2, variant: SparseLogical,
		i: []Pair{{0, 1}},
		d: dTable{Nodes: []uint32{2}, Starts: []uint32{0, 1}},
	}
	if _, err := Deserialize(b.buildImage()); err == nil {
		t.Fatal("forward node reference should be rejected")
	}
	// Node index 0 (the root) is never a valid code either.
	b.d = dTable{Nodes: []uint32{0}, Starts: []uint32{0, 1}}
	if _, err := Deserialize(b.buildImage()); err == nil {
		t.Fatal("root code should be rejected")
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	// On redundant data the full pipeline must beat logical-only, which
	// must beat sparse-only; all must beat DEN (ratio > 1).
	rng := rand.New(rand.NewSource(8))
	a := redundantMatrix(rng, 200, 60, 0.4, 4)
	full := CompressVariant(a, Full).CompressedSize()
	logical := CompressVariant(a, SparseLogical).CompressedSize()
	sparse := CompressVariant(a, SparseOnly).CompressedSize()
	den := 16 + 8*200*60
	if !(full < logical && logical < sparse && sparse < den) {
		t.Fatalf("size ordering violated: full=%d logical=%d sparse=%d den=%d",
			full, logical, sparse, den)
	}
}

func TestScaleSharesD(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := redundantMatrix(rng, 30, 20, 0.5, 3)
	b := Compress(a)
	s := b.Scale(3)
	// Algorithm 3 touches only I; D must be shared, not copied.
	if len(s.d.Nodes) > 0 && &s.d.Nodes[0] != &b.d.Nodes[0] {
		t.Fatal("Scale copied D; Algorithm 3 should only touch I")
	}
	// and the original must be untouched
	if !b.Decode().Equal(a) {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestDimMismatchPanics(t *testing.T) {
	b := Compress(matrix.NewDense(3, 4))
	cases := []func(){
		func() { b.MulVec(make([]float64, 3)) },
		func() { b.VecMul(make([]float64, 4)) },
		func() { b.MulMat(matrix.NewDense(3, 2)) },
		func() { b.MatMul(matrix.NewDense(2, 4)) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}

func TestCompressionRatioValue(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := redundantMatrix(rng, 100, 50, 0.4, 3)
	b := Compress(a)
	want := float64(b.UncompressedSize()) / float64(b.CompressedSize())
	if got := b.CompressionRatio(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
	if b.UncompressedSize() != 16+8*100*50 {
		t.Fatalf("uncompressed size = %d", b.UncompressedSize())
	}
}
