package core

import (
	"math/rand"
	"testing"
)

func BenchmarkMulVecProf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := redundantMatrix(rng, 250, 68, 0.43, 5)
	batch := Compress(a)
	v := make([]float64, 68)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.MulVec(v)
	}
}

func BenchmarkBuildTreeProf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := redundantMatrix(rng, 250, 68, 0.43, 5)
	batch := Compress(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.buildTree()
	}
}
