package core

import (
	"math/rand"
	"testing"

	"toc/internal/matrix"
	"toc/internal/testutil"
)

// The kernel steady state allocates nothing but the result buffer: the
// decode tree is cached in the plan and every accumulator comes from the
// shared scratch pool. These tests pin that property — a kernel change
// that starts allocating per call (a lost pool hit, an accidental
// per-call tree rebuild) fails here long before it shows up as a
// throughput regression.
//
// AllocsPerRun runs at GOMAXPROCS(1); the sequential (workers=1) path is
// the one measured. Parallel shards spawn goroutines, which allocate by
// design.

func TestKernelPlanSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector, so the pool-hit pin cannot hold")
	}
	rng := rand.New(rand.NewSource(900))
	rows, cols := 64, 16
	for name, b := range rightMulBatches(rng, rows, cols) {
		plan := b.NewKernelPlan()
		vr := randVec(rng, cols)
		vl := randVec(rng, rows)
		mr := matrix.NewDense(cols, 4)
		fillRand(rng, mr)
		ml := matrix.NewDense(4, rows)
		fillRand(rng, ml)

		// One allocation: the result slice. Everything else is pooled.
		if got := testing.AllocsPerRun(50, func() { plan.MulVec(vr, 1) }); got > 1 {
			t.Errorf("%s: MulVec allocates %.0f objects/op, want <= 1 (the result)", name, got)
		}
		if got := testing.AllocsPerRun(50, func() { plan.VecMul(vl, 1) }); got > 1 {
			t.Errorf("%s: VecMul allocates %.0f objects/op, want <= 1 (the result)", name, got)
		}
		// Matrix results are a Dense header plus its backing array.
		if got := testing.AllocsPerRun(50, func() { plan.MulMat(mr, 1) }); got > 2 {
			t.Errorf("%s: MulMat allocates %.0f objects/op, want <= 2 (the result)", name, got)
		}
		if got := testing.AllocsPerRun(50, func() { plan.MatMul(ml, 1) }); got > 2 {
			t.Errorf("%s: MatMul allocates %.0f objects/op, want <= 2 (the result)", name, got)
		}
	}
}
