package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Right multiplication operations: A·v (Algorithm 4, Theorem 1) and A·M
// (Algorithm 7, Theorem 3). Both run directly on the TOC output: the
// decode tree C' is built once, scanned once forward to evaluate
// F(x) = C'[x].seq · v by dynamic programming over parent links
// (Equation 6), then D is scanned once to sum F over each tuple's codes
// (Equation 5).
//
// The kernels are split into tree-parameterized bodies so three callers
// share them: the sequential methods here (which build C' per call, the
// paper's cost model), the sharded drivers in rightmul_parallel.go, and
// KernelPlan (plan.go), which builds C' once per batch-step and amortizes
// it over every kernel call of that step.
//
// The inner loops are written for the hardware, not the paper's
// pseudocode: D is walked through the flat Nodes/Starts arrays with the
// shard bounds proven up front (boundsHint) so the compiler drops the
// per-element checks, and the per-row reductions are 4-way unrolled.
// Every unroll keeps the exact sequential fold order — a single
// accumulator chain for scalar sums, per-column independence for the
// matrix rows — so results stay bitwise identical to the pre-rewrite
// loops, which the equivalence tests pin at every worker count.

// boundsHint asserts lo <= hi, hi < len(starts) and hi <= limit, giving
// the compiler the facts it needs to drop the starts[i]/starts[i+1] and
// result-index bounds checks inside a [lo,hi) row loop. The callers'
// shard drivers always satisfy it; a violation is a kernel bug. The
// panic formatting lives in its own function so this guard stays under
// the inline budget — only the inlined form feeds the prove pass.
func boundsHint(lo, hi, startsLen, limit int) {
	if lo < 0 || lo > hi || hi >= startsLen || hi > limit {
		panicShard(lo, hi, startsLen, limit)
	}
}

//go:noinline
func panicShard(lo, hi, startsLen, limit int) {
	panic(fmt.Sprintf("core: row shard [%d,%d) out of range (starts %d, limit %d)", lo, hi, startsLen, limit))
}

// MulVec computes A·v on the compressed batch.
func (b *Batch) MulVec(v []float64) []float64 {
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: MulVec dim mismatch %d != %d", len(v), b.cols))
	}
	r := make([]float64, b.rows)
	if b.variant == SparseOnly {
		b.mulVecSparseRows(v, r, 0, b.rows)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.mulVecTree(t, sc, v, r, 1)
	return r
}

// mulVecTree is A·v over an already-built decode tree, writing into r
// (length rows, fully overwritten). The scalar H scan stays sequential
// for any worker count (each H[i] chains on its parent, and |C'| ≪
// |D|·avg-codes keeps it off the critical path); the D scan shards over
// result rows when workers > 1.
func (b *Batch) mulVecTree(t *DecodeTree, sc *opScratch, v, r []float64, workers int) {
	// Scan C' to compute H[i] = F(i) = C'[i].key·v + H[parent(i)]; parents
	// precede children, so one forward pass suffices. key/parent/h are
	// sliced to one shared length so only the data-dependent v lookup
	// keeps its bounds check.
	h := sc.floatBuf(t.Len())
	key := t.Key
	par := t.Parent[:len(key)]
	h = h[:len(key)]
	for i := 1; i < len(key); i++ {
		k := key[i]
		h[i] = k.Val*v[k.Col] + h[par[i]]
	}
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulVecRows(h, r, lo, hi) })
	} else {
		b.mulVecRows(h, r, 0, b.rows)
	}
}

// mulVecRows scans D for result rows [lo,hi): R[i] = Σ_j H[D[i][j]]. Each
// output row is an independent sequential reduction, so disjoint row
// ranges compute bitwise-identical results concurrently. The walk is flat
// over Nodes/Starts with a 4-way unrolled single-chain accumulation: the
// fold order is exactly the sequential one, only the loop control is
// amortized over four elements. Advancing by re-slicing row (rather than
// indexing with k) is what lets the compiler drop the row element checks;
// only the data-dependent h gathers keep theirs.
func (b *Batch) mulVecRows(h, r []float64, lo, hi int) {
	nodes, starts := b.d.Nodes, b.d.Starts
	boundsHint(lo, hi, len(starts), len(r))
	for i := lo; i < hi; i++ {
		row := nodes[starts[i]:starts[i+1]]
		var s float64
		for len(row) >= 4 {
			s += h[row[0]]
			s += h[row[1]]
			s += h[row[2]]
			s += h[row[3]]
			row = row[4:]
		}
		for len(row) >= 1 {
			s += h[row[0]]
			row = row[1:]
		}
		r[i] = s
	}
}

// mulVecSparseRows is the SparseOnly A·v for result rows [lo,hi), the
// same flat walk over srStarts/srCols/srVals.
func (b *Batch) mulVecSparseRows(v, r []float64, lo, hi int) {
	starts, cols, vals := b.srStarts, b.srCols, b.srVals
	boundsHint(lo, hi, len(starts), len(r))
	for i := lo; i < hi; i++ {
		cs := cols[starts[i]:starts[i+1]]
		vs := vals[starts[i]:starts[i+1]]
		var s float64
		for len(cs) >= 4 && len(vs) >= 4 {
			s += vs[0] * v[cs[0]]
			s += vs[1] * v[cs[1]]
			s += vs[2] * v[cs[2]]
			s += vs[3] * v[cs[3]]
			cs, vs = cs[4:], vs[4:]
		}
		for len(cs) >= 1 && len(vs) >= 1 {
			s += vs[0] * v[cs[0]]
			cs, vs = cs[1:], vs[1:]
		}
		r[i] = s
	}
}

// MulMat computes A·M on the compressed batch, where M is cols × p.
func (b *Batch) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: MulMat dim mismatch %d != %d", m.Rows(), b.cols))
	}
	r := matrix.NewDense(b.rows, m.Cols())
	if b.variant == SparseOnly {
		b.mulMatSparseRows(m, r, 0, b.rows)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	b.mulMatTree(t, sc, m, r, 1)
	return r
}

// mulMatTree is A·M over an already-built decode tree, accumulating into
// r (rows × p, caller-zeroed). With workers > 1 the forward H scan shards
// over the p result columns and the D scan over result rows (see
// rightmul_parallel.go for why both are bitwise-exact).
func (b *Batch) mulMatTree(t *DecodeTree, sc *opScratch, m *matrix.Dense, r *matrix.Dense, workers int) {
	p := m.Cols()
	h := sc.floatBuf(t.Len() * p)
	cw := workers
	if cw > p {
		cw = p
	}
	if cw > 1 {
		forEachSpan(p, cw, func(clo, chi int) { b.mulMatForwardCols(t, m, h, p, clo, chi) })
	} else {
		b.mulMatForwardCols(t, m, h, p, 0, p)
	}
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulMatRows(h, r, p, lo, hi) })
	} else {
		b.mulMatRows(h, r, p, 0, b.rows)
	}
}

// mulMatForwardCols runs the C' forward scan for result columns
// [clo,chi): H[i,j] = key.Val·M[key.Col,j] + H[parent,j]. Column j of
// every H row depends only on column j of its parent row, so each
// column's parent-chain DP is an independent sequential recurrence —
// disjoint column ranges run concurrently with every per-element fold in
// exactly the sequential order. The three operand windows are sliced to
// one length and the column loop 4-way unrolled (columns are independent,
// so unrolling cannot reassociate anything).
func (b *Batch) mulMatForwardCols(t *DecodeTree, m *matrix.Dense, h []float64, p, clo, chi int) {
	key, par := t.Key, t.Parent
	for i := 1; i < len(key); i++ {
		k := key[i]
		hw := h[i*p+clo : i*p+chi]
		hp := h[int(par[i])*p+clo : int(par[i])*p+chi]
		mr := m.Row(int(k.Col))[clo:chi]
		kv := k.Val
		for len(hw) >= 4 && len(hp) >= 4 && len(mr) >= 4 {
			hw[0] = kv*mr[0] + hp[0]
			hw[1] = kv*mr[1] + hp[1]
			hw[2] = kv*mr[2] + hp[2]
			hw[3] = kv*mr[3] + hp[3]
			hw, hp, mr = hw[4:], hp[4:], mr[4:]
		}
		for len(hw) >= 1 && len(hp) >= 1 && len(mr) >= 1 {
			hw[0] = kv*mr[0] + hp[0]
			hw, hp, mr = hw[1:], hp[1:], mr[1:]
		}
	}
}

// mulMatRows scans D for result rows [lo,hi); the loop over result
// columns is innermost for cache friendliness, as the paper notes for
// Algorithm 7. Each output row depends on one tuple of D only; per
// column the adds land in node order, so the 4-way unroll over the
// independent columns changes no fold.
func (b *Batch) mulMatRows(h []float64, r *matrix.Dense, p, lo, hi int) {
	nodes, starts := b.d.Nodes, b.d.Starts
	boundsHint(lo, hi, len(starts), r.Rows())
	for i := lo; i < hi; i++ {
		ri := r.Row(i)
		row := nodes[starts[i]:starts[i+1]]
		for _, n := range row {
			hn := h[int(n)*p : int(n)*p+len(ri)]
			rw := ri
			for len(rw) >= 4 && len(hn) >= 4 {
				rw[0] += hn[0]
				rw[1] += hn[1]
				rw[2] += hn[2]
				rw[3] += hn[3]
				rw, hn = rw[4:], hn[4:]
			}
			for len(rw) >= 1 && len(hn) >= 1 {
				rw[0] += hn[0]
				rw, hn = rw[1:], hn[1:]
			}
		}
	}
}

// mulMatSparseRows is the SparseOnly A·M for result rows [lo,hi): the
// flat sparse walk with the per-column accumulation unrolled like
// mulMatRows.
func (b *Batch) mulMatSparseRows(m *matrix.Dense, r *matrix.Dense, lo, hi int) {
	starts, cols, vals := b.srStarts, b.srCols, b.srVals
	boundsHint(lo, hi, len(starts), r.Rows())
	for i := lo; i < hi; i++ {
		ri := r.Row(i)
		for k := starts[i]; k < starts[i+1]; k++ {
			val := vals[k]
			mr := m.Row(int(cols[k]))
			rw := ri
			for len(rw) >= 4 && len(mr) >= 4 {
				rw[0] += val * mr[0]
				rw[1] += val * mr[1]
				rw[2] += val * mr[2]
				rw[3] += val * mr[3]
				rw, mr = rw[4:], mr[4:]
			}
			for len(rw) >= 1 && len(mr) >= 1 {
				rw[0] += val * mr[0]
				rw, mr = rw[1:], mr[1:]
			}
		}
	}
}
