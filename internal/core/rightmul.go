package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Right multiplication operations: A·v (Algorithm 4, Theorem 1) and A·M
// (Algorithm 7, Theorem 3). Both run directly on the TOC output: the
// decode tree C' is built once, scanned once forward to evaluate
// F(x) = C'[x].seq · v by dynamic programming over parent links
// (Equation 6), then D is scanned once to sum F over each tuple's codes
// (Equation 5).
//
// The kernels are split into tree-parameterized bodies so three callers
// share them: the sequential methods here (which build C' per call, the
// paper's cost model), the sharded drivers in rightmul_parallel.go, and
// KernelPlan (plan.go), which builds C' once per batch-step and amortizes
// it over every kernel call of that step.

// MulVec computes A·v on the compressed batch.
func (b *Batch) MulVec(v []float64) []float64 {
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: MulVec dim mismatch %d != %d", len(v), b.cols))
	}
	if b.variant == SparseOnly {
		r := make([]float64, b.rows)
		b.mulVecSparseRows(v, r, 0, b.rows)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	return b.mulVecTree(t, sc, v, 1)
}

// mulVecTree is A·v over an already-built decode tree. The scalar H scan
// stays sequential for any worker count (each H[i] chains on its parent,
// and |C'| ≪ |D|·avg-codes keeps it off the critical path); the D scan
// shards over result rows when workers > 1.
func (b *Batch) mulVecTree(t *DecodeTree, sc *opScratch, v []float64, workers int) []float64 {
	// Scan C' to compute H[i] = F(i) = C'[i].key·v + H[parent(i)]; parents
	// precede children, so one forward pass suffices.
	h := sc.floatBuf(t.Len())
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		h[i] = k.Val*v[k.Col] + h[t.Parent[i]]
	}
	r := make([]float64, b.rows)
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulVecRows(h, r, lo, hi) })
	} else {
		b.mulVecRows(h, r, 0, b.rows)
	}
	return r
}

// mulVecRows scans D for result rows [lo,hi): R[i] = Σ_j H[D[i][j]]. Each
// output row is an independent sequential reduction, so disjoint row
// ranges compute bitwise-identical results concurrently.
func (b *Batch) mulVecRows(h, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for _, n := range b.d.row(i) {
			s += h[n]
		}
		r[i] = s
	}
}

// mulVecSparseRows is the SparseOnly A·v for result rows [lo,hi).
func (b *Batch) mulVecSparseRows(v, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
			s += b.srVals[k] * v[b.srCols[k]]
		}
		r[i] = s
	}
}

// MulMat computes A·M on the compressed batch, where M is cols × p.
func (b *Batch) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: MulMat dim mismatch %d != %d", m.Rows(), b.cols))
	}
	if b.variant == SparseOnly {
		r := matrix.NewDense(b.rows, m.Cols())
		b.mulMatSparseRows(m, r, 0, b.rows)
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	return b.mulMatTree(t, sc, m, 1)
}

// mulMatTree is A·M over an already-built decode tree. With workers > 1
// the forward H scan shards over the p result columns and the D scan over
// result rows (see rightmul_parallel.go for why both are bitwise-exact).
func (b *Batch) mulMatTree(t *DecodeTree, sc *opScratch, m *matrix.Dense, workers int) *matrix.Dense {
	p := m.Cols()
	h := sc.floatBuf(t.Len() * p)
	cw := workers
	if cw > p {
		cw = p
	}
	if cw > 1 {
		forEachSpan(p, cw, func(clo, chi int) { b.mulMatForwardCols(t, m, h, p, clo, chi) })
	} else {
		b.mulMatForwardCols(t, m, h, p, 0, p)
	}
	r := matrix.NewDense(b.rows, p)
	if workers > 1 {
		forEachRowShard(b.rows, workers, func(lo, hi int) { b.mulMatRows(h, r, p, lo, hi) })
	} else {
		b.mulMatRows(h, r, p, 0, b.rows)
	}
	return r
}

// mulMatForwardCols runs the C' forward scan for result columns
// [clo,chi): H[i,j] = key.Val·M[key.Col,j] + H[parent,j]. Column j of
// every H row depends only on column j of its parent row, so each
// column's parent-chain DP is an independent sequential recurrence —
// disjoint column ranges run concurrently with every per-element fold in
// exactly the sequential order.
func (b *Batch) mulMatForwardCols(t *DecodeTree, m *matrix.Dense, h []float64, p, clo, chi int) {
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		mrow := m.Row(int(k.Col))
		hi := h[i*p : i*p+p]
		hp := h[int(t.Parent[i])*p : int(t.Parent[i])*p+p]
		for j := clo; j < chi; j++ {
			hi[j] = k.Val*mrow[j] + hp[j]
		}
	}
}

// mulMatRows scans D for result rows [lo,hi); the loop over result
// columns is innermost for cache friendliness, as the paper notes for
// Algorithm 7. Each output row depends on one tuple of D only.
func (b *Batch) mulMatRows(h []float64, r *matrix.Dense, p, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := r.Row(i)
		for _, n := range b.d.row(i) {
			hn := h[int(n)*p : int(n)*p+p]
			for j := range ri {
				ri[j] += hn[j]
			}
		}
	}
}

// mulMatSparseRows is the SparseOnly A·M for result rows [lo,hi).
func (b *Batch) mulMatSparseRows(m *matrix.Dense, r *matrix.Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := r.Row(i)
		for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
			val := b.srVals[k]
			mrow := m.Row(int(b.srCols[k]))
			for j, mv := range mrow {
				ri[j] += val * mv
			}
		}
	}
}
