package core

import (
	"fmt"

	"toc/internal/matrix"
)

// Right multiplication operations: A·v (Algorithm 4, Theorem 1) and A·M
// (Algorithm 7, Theorem 3). Both run directly on the TOC output: the
// decode tree C' is built once, scanned once forward to evaluate
// F(x) = C'[x].seq · v by dynamic programming over parent links
// (Equation 6), then D is scanned once to sum F over each tuple's codes
// (Equation 5).

// MulVec computes A·v on the compressed batch.
func (b *Batch) MulVec(v []float64) []float64 {
	if len(v) != b.cols {
		panic(fmt.Sprintf("core: MulVec dim mismatch %d != %d", len(v), b.cols))
	}
	r := make([]float64, b.rows)
	if b.variant == SparseOnly {
		for i := 0; i < b.rows; i++ {
			var s float64
			for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
				s += b.srVals[k] * v[b.srCols[k]]
			}
			r[i] = s
		}
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	// Scan C' to compute H[i] = F(i) = C'[i].key·v + H[parent(i)]; parents
	// precede children, so one forward pass suffices.
	h := sc.floatBuf(t.Len())
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		h[i] = k.Val*v[k.Col] + h[t.Parent[i]]
	}
	// Scan D to accumulate R[i] = Σ_j H[D[i][j]].
	for i := 0; i < b.rows; i++ {
		var s float64
		for _, n := range b.d.row(i) {
			s += h[n]
		}
		r[i] = s
	}
	return r
}

// MulMat computes A·M on the compressed batch, where M is cols × p.
func (b *Batch) MulMat(m *matrix.Dense) *matrix.Dense {
	if m.Rows() != b.cols {
		panic(fmt.Sprintf("core: MulMat dim mismatch %d != %d", m.Rows(), b.cols))
	}
	p := m.Cols()
	r := matrix.NewDense(b.rows, p)
	if b.variant == SparseOnly {
		for i := 0; i < b.rows; i++ {
			ri := r.Row(i)
			for k := b.srStarts[i]; k < b.srStarts[i+1]; k++ {
				val := b.srVals[k]
				mrow := m.Row(int(b.srCols[k]))
				for j, mv := range mrow {
					ri[j] += val * mv
				}
			}
		}
		return r
	}
	sc := scratchPool.Get().(*opScratch)
	defer scratchPool.Put(sc)
	t := sc.buildTree(b.i, b.d)
	// Scan C': H[i,:] = key.val * M[key.col,:] + H[parent,:].
	h := sc.floatBuf(t.Len() * p)
	for i := 1; i < t.Len(); i++ {
		k := t.Key[i]
		mrow := m.Row(int(k.Col))
		hi := h[i*p : i*p+p]
		hp := h[int(t.Parent[i])*p : int(t.Parent[i])*p+p]
		for j := range hi {
			hi[j] = k.Val*mrow[j] + hp[j]
		}
	}
	// Scan D once; the loop over result columns is innermost for cache
	// friendliness, as the paper notes for Algorithm 7.
	for i := 0; i < b.rows; i++ {
		ri := r.Row(i)
		for _, n := range b.d.row(i) {
			hn := h[int(n)*p : int(n)*p+p]
			for j := range ri {
				ri[j] += hn[j]
			}
		}
	}
	return r
}
