package cla

import (
	"fmt"

	"toc/internal/bitpack"
	"toc/internal/matrix"
)

// Matrix operations on CLA groups. The pattern throughout: compute each
// partial product once per distinct dictionary tuple, then distribute it
// through the group's row structure (DDC indexes, OLE offset lists, RLE
// runs), so redundant rows never repeat arithmetic.

// Rows returns the number of tuples in the mini-batch.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns of the original matrix.
func (m *Matrix) Cols() int { return m.cols }

// NumGroups returns the number of column groups chosen by co-coding.
func (m *Matrix) NumGroups() int { return len(m.groups) }

// GroupKinds reports the chosen layout of every group (for diagnostics).
func (m *Matrix) GroupKinds() []string {
	out := make([]string, len(m.groups))
	for i, g := range m.groups {
		out[i] = g.kind.String()
	}
	return out
}

// CompressedSize returns the total encoded size in bytes.
func (m *Matrix) CompressedSize() int {
	total := 16 // matrix header
	offW := bitpack.BytesPerInt(uint32(maxInt(m.rows-1, 0)))
	for _, g := range m.groups {
		w := len(g.cols)
		total += 8 + 4*w // group header + column list
		switch g.kind {
		case kindDDC:
			distinct := len(g.dict) / maxInt(w, 1)
			total += 8*len(g.dict) + bitpack.BytesPerInt(uint32(maxInt(distinct-1, 0)))*len(g.rowIdx)
		case kindOLE:
			total += 8 * len(g.dict)
			for _, lst := range g.offsets {
				total += 4 + offW*len(lst)
			}
		case kindRLE:
			total += 8 * len(g.dict)
			for _, rs := range g.runs {
				total += 4 + 2*offW*len(rs)
			}
		case kindUC:
			total += 8 * len(g.raw)
		}
	}
	return total
}

// Decode losslessly reconstructs the original dense mini-batch.
func (m *Matrix) Decode() *matrix.Dense {
	d := matrix.NewDense(m.rows, m.cols)
	for _, g := range m.groups {
		w := len(g.cols)
		switch g.kind {
		case kindDDC:
			for i, t := range g.rowIdx {
				for k, c := range g.cols {
					d.Set(i, c, g.dict[int(t)*w+k])
				}
			}
		case kindOLE:
			for t, lst := range g.offsets {
				for _, row := range lst {
					for k, c := range g.cols {
						d.Set(int(row), c, g.dict[t*w+k])
					}
				}
			}
		case kindRLE:
			for t, rs := range g.runs {
				for _, r := range rs {
					for row := r.start; row < r.start+r.length; row++ {
						for k, c := range g.cols {
							d.Set(int(row), c, g.dict[t*w+k])
						}
					}
				}
			}
		case kindUC:
			for i := 0; i < m.rows; i++ {
				for k, c := range g.cols {
					d.Set(i, c, g.raw[i*w+k])
				}
			}
		}
	}
	return d
}

// Scale computes the sparse-safe A.*c by scaling dictionaries (and UC raw
// data) only.
func (m *Matrix) Scale(c float64) *Matrix {
	nm := &Matrix{rows: m.rows, cols: m.cols, groups: make([]*group, len(m.groups))}
	for i, g := range m.groups {
		ng := &group{kind: g.kind, cols: g.cols, rowIdx: g.rowIdx, offsets: g.offsets, runs: g.runs}
		if g.dict != nil {
			ng.dict = make([]float64, len(g.dict))
			for k, v := range g.dict {
				ng.dict[k] = v * c
			}
		}
		if g.raw != nil {
			ng.raw = make([]float64, len(g.raw))
			for k, v := range g.raw {
				ng.raw[k] = v * c
			}
		}
		nm.groups[i] = ng
	}
	return nm
}

// MulVec computes A·v: one dot product per dictionary tuple, distributed
// to rows.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("cla: MulVec dim mismatch %d != %d", len(v), m.cols))
	}
	r := make([]float64, m.rows)
	for _, g := range m.groups {
		w := len(g.cols)
		switch g.kind {
		case kindUC:
			for i := 0; i < m.rows; i++ {
				var s float64
				for k, c := range g.cols {
					s += g.raw[i*w+k] * v[c]
				}
				r[i] += s
			}
			continue
		default:
		}
		// per-tuple dot products
		distinct := len(g.dict) / maxInt(w, 1)
		dots := make([]float64, distinct)
		for t := 0; t < distinct; t++ {
			var s float64
			for k, c := range g.cols {
				s += g.dict[t*w+k] * v[c]
			}
			dots[t] = s
		}
		switch g.kind {
		case kindDDC:
			for i, t := range g.rowIdx {
				r[i] += dots[t]
			}
		case kindOLE:
			for t, lst := range g.offsets {
				dt := dots[t]
				for _, row := range lst {
					r[row] += dt
				}
			}
		case kindRLE:
			for t, rs := range g.runs {
				dt := dots[t]
				for _, rn := range rs {
					for row := rn.start; row < rn.start+rn.length; row++ {
						r[row] += dt
					}
				}
			}
		}
	}
	return r
}

// VecMul computes v·A: per-tuple accumulation of v, then one dictionary
// pass.
func (m *Matrix) VecMul(v []float64) []float64 {
	if len(v) != m.rows {
		panic(fmt.Sprintf("cla: VecMul dim mismatch %d != %d", len(v), m.rows))
	}
	r := make([]float64, m.cols)
	for _, g := range m.groups {
		w := len(g.cols)
		if g.kind == kindUC {
			for i := 0; i < m.rows; i++ {
				vi := v[i]
				if vi == 0 {
					continue
				}
				for k, c := range g.cols {
					r[c] += vi * g.raw[i*w+k]
				}
			}
			continue
		}
		distinct := len(g.dict) / maxInt(w, 1)
		acc := make([]float64, distinct)
		switch g.kind {
		case kindDDC:
			for i, t := range g.rowIdx {
				acc[t] += v[i]
			}
		case kindOLE:
			for t, lst := range g.offsets {
				var s float64
				for _, row := range lst {
					s += v[row]
				}
				acc[t] = s
			}
		case kindRLE:
			for t, rs := range g.runs {
				var s float64
				for _, rn := range rs {
					for row := rn.start; row < rn.start+rn.length; row++ {
						s += v[row]
					}
				}
				acc[t] = s
			}
		}
		for t := 0; t < distinct; t++ {
			at := acc[t]
			if at == 0 {
				continue
			}
			for k, c := range g.cols {
				r[c] += g.dict[t*w+k] * at
			}
		}
	}
	return r
}

// MulMat computes A·M (M is cols × p).
func (m *Matrix) MulMat(mm *matrix.Dense) *matrix.Dense {
	if mm.Rows() != m.cols {
		panic(fmt.Sprintf("cla: MulMat dim mismatch %d != %d", mm.Rows(), m.cols))
	}
	p := mm.Cols()
	r := matrix.NewDense(m.rows, p)
	for _, g := range m.groups {
		w := len(g.cols)
		if g.kind == kindUC {
			for i := 0; i < m.rows; i++ {
				ri := r.Row(i)
				for k, c := range g.cols {
					val := g.raw[i*w+k]
					if val == 0 {
						continue
					}
					mrow := mm.Row(c)
					for j, mv := range mrow {
						ri[j] += val * mv
					}
				}
			}
			continue
		}
		distinct := len(g.dict) / maxInt(w, 1)
		// per-tuple partial result rows
		dots := make([]float64, distinct*p)
		for t := 0; t < distinct; t++ {
			dt := dots[t*p : (t+1)*p]
			for k, c := range g.cols {
				val := g.dict[t*w+k]
				if val == 0 {
					continue
				}
				mrow := mm.Row(c)
				for j, mv := range mrow {
					dt[j] += val * mv
				}
			}
		}
		addRow := func(row int, t uint32) {
			ri := r.Row(row)
			dt := dots[int(t)*p : (int(t)+1)*p]
			for j := range ri {
				ri[j] += dt[j]
			}
		}
		switch g.kind {
		case kindDDC:
			for i, t := range g.rowIdx {
				addRow(i, t)
			}
		case kindOLE:
			for t, lst := range g.offsets {
				for _, row := range lst {
					addRow(int(row), uint32(t))
				}
			}
		case kindRLE:
			for t, rs := range g.runs {
				for _, rn := range rs {
					for row := rn.start; row < rn.start+rn.length; row++ {
						addRow(int(row), uint32(t))
					}
				}
			}
		}
	}
	return r
}

// MatMul computes M·A (M is p × rows).
func (m *Matrix) MatMul(mm *matrix.Dense) *matrix.Dense {
	if mm.Cols() != m.rows {
		panic(fmt.Sprintf("cla: MatMul dim mismatch %d != %d", mm.Cols(), m.rows))
	}
	p := mm.Rows()
	r := matrix.NewDense(p, m.cols)
	for _, g := range m.groups {
		w := len(g.cols)
		if g.kind == kindUC {
			for row := 0; row < p; row++ {
				rr := r.Row(row)
				for i := 0; i < m.rows; i++ {
					mv := mm.At(row, i)
					if mv == 0 {
						continue
					}
					for k, c := range g.cols {
						rr[c] += mv * g.raw[i*w+k]
					}
				}
			}
			continue
		}
		distinct := len(g.dict) / maxInt(w, 1)
		// acc[t*p+row] accumulates M[row, i] over rows i carrying tuple t.
		acc := make([]float64, distinct*p)
		addTo := func(t uint32, i int) {
			at := acc[int(t)*p : (int(t)+1)*p]
			for row := 0; row < p; row++ {
				at[row] += mm.At(row, i)
			}
		}
		switch g.kind {
		case kindDDC:
			for i, t := range g.rowIdx {
				addTo(t, i)
			}
		case kindOLE:
			for t, lst := range g.offsets {
				for _, row := range lst {
					addTo(uint32(t), int(row))
				}
			}
		case kindRLE:
			for t, rs := range g.runs {
				for _, rn := range rs {
					for row := rn.start; row < rn.start+rn.length; row++ {
						addTo(uint32(t), int(row))
					}
				}
			}
		}
		for t := 0; t < distinct; t++ {
			at := acc[t*p : (t+1)*p]
			for k, c := range g.cols {
				val := g.dict[t*w+k]
				if val == 0 {
					continue
				}
				for row := 0; row < p; row++ {
					r.Set(row, c, r.At(row, c)+val*at[row])
				}
			}
		}
	}
	return r
}
