package cla

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toc/internal/matrix"
)

func redundantMatrix(rng *rand.Rand, rows, cols int, sparsity float64, poolSize int) *matrix.Dense {
	pool := make([]float64, poolSize)
	for i := range pool {
		pool[i] = math.Round(rng.NormFloat64()*8) / 4
		if pool[i] == 0 {
			pool[i] = 0.25
		}
	}
	d := matrix.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				d.Set(i, j, pool[rng.Intn(poolSize)])
			}
		}
	}
	return d
}

func TestDecodeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][2]int{{1, 1}, {5, 3}, {30, 12}, {100, 20}, {250, 8}}
	for _, s := range shapes {
		a := redundantMatrix(rng, s[0], s[1], 0.4, 4)
		m := Compress(a)
		if !m.Decode().Equal(a) {
			t.Fatalf("shape %v: decode mismatch (kinds %v)", s, m.GroupKinds())
		}
	}
}

func TestDecodeAllZeroAndEmpty(t *testing.T) {
	z := matrix.NewDense(8, 5)
	m := Compress(z)
	if !m.Decode().Equal(z) {
		t.Fatal("all-zero decode mismatch")
	}
	e := matrix.NewDense(0, 0)
	me := Compress(e)
	if me.Rows() != 0 || me.Cols() != 0 || !me.Decode().Equal(e) {
		t.Fatal("empty matrix mishandled")
	}
	// zero columns with rows
	zc := matrix.NewDense(4, 0)
	mzc := Compress(zc)
	if mzc.Rows() != 4 || mzc.Cols() != 0 || !mzc.Decode().Equal(zc) {
		t.Fatal("zero-column matrix mishandled")
	}
}

func TestOpsMatchDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(12)
		a := redundantMatrix(rng, rows, cols, 0.2+rng.Float64()*0.6, 2+rng.Intn(4))
		m := Compress(a)
		if !m.Decode().Equal(a) {
			return false
		}
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		gv, wv := m.MulVec(v), a.MulVec(v)
		for i := range wv {
			if math.Abs(gv[i]-wv[i]) > 1e-9 {
				return false
			}
		}
		u := make([]float64, rows)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		gu, wu := m.VecMul(u), a.VecMul(u)
		for i := range wu {
			if math.Abs(gu[i]-wu[i]) > 1e-9 {
				return false
			}
		}
		p := 1 + rng.Intn(3)
		mr := matrix.NewDense(cols, p)
		for i := 0; i < cols; i++ {
			for j := 0; j < p; j++ {
				mr.Set(i, j, rng.NormFloat64())
			}
		}
		if !m.MulMat(mr).EqualApprox(a.MulMat(mr), 1e-9) {
			return false
		}
		ml := matrix.NewDense(p, rows)
		for i := 0; i < p; i++ {
			for j := 0; j < rows; j++ {
				ml.Set(i, j, rng.NormFloat64())
			}
		}
		if !m.MatMul(ml).EqualApprox(a.MatMul(ml), 1e-9) {
			return false
		}
		c := rng.NormFloat64()
		if !m.Scale(c).Decode().EqualApprox(a.Scale(c), 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoCodingMergesIdenticalColumns(t *testing.T) {
	// Columns that always move together should co-code into one group.
	rows := 100
	d := matrix.NewDense(rows, 4)
	for i := 0; i < rows; i++ {
		v := float64(i % 3)
		d.Set(i, 0, v)
		d.Set(i, 1, v*2)
		d.Set(i, 2, v*3)
		d.Set(i, 3, v*4)
	}
	m := Compress(d)
	if m.NumGroups() != 1 {
		t.Fatalf("identical-structure columns split into %d groups (%v)", m.NumGroups(), m.GroupKinds())
	}
	if !m.Decode().Equal(d) {
		t.Fatal("decode mismatch")
	}
}

func TestRLEChosenForRunStructure(t *testing.T) {
	// Long runs of one repeated tuple favour RLE.
	rows := 200
	d := matrix.NewDense(rows, 1)
	for i := 0; i < rows; i++ {
		if i < 100 {
			d.Set(i, 0, 7)
		} else if i < 150 {
			d.Set(i, 0, 9)
		}
		// rest zero
	}
	m := Compress(d)
	kinds := m.GroupKinds()
	if len(kinds) != 1 || kinds[0] != "RLE" {
		t.Fatalf("expected RLE for run-structured column, got %v", kinds)
	}
	if !m.Decode().Equal(d) {
		t.Fatal("decode mismatch")
	}
}

func TestUCChosenForIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := 64
	d := matrix.NewDense(rows, 1)
	for i := 0; i < rows; i++ {
		d.Set(i, 0, rng.NormFloat64()) // all distinct
	}
	m := Compress(d)
	kinds := m.GroupKinds()
	if len(kinds) != 1 || kinds[0] != "UC" {
		t.Fatalf("expected UC for incompressible column, got %v", kinds)
	}
	if !m.Decode().Equal(d) {
		t.Fatal("decode mismatch")
	}
}

func TestCompressionBeatsDenseOnRedundantData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := redundantMatrix(rng, 250, 30, 0.4, 3)
	m := Compress(a)
	den := 16 + 8*250*30
	if m.CompressedSize() >= den {
		t.Fatalf("CLA size %d >= DEN %d on redundant data", m.CompressedSize(), den)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	m := Compress(matrix.NewDense(3, 4))
	cases := []func(){
		func() { m.MulVec(make([]float64, 3)) },
		func() { m.VecMul(make([]float64, 4)) },
		func() { m.MulMat(matrix.NewDense(3, 2)) },
		func() { m.MatMul(matrix.NewDense(2, 2)) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}
