package cla

import (
	"encoding/binary"
	"fmt"
	"math"

	"toc/internal/bitpack"
)

// Wire format for CLA matrices:
//
//	header: magic 0x16 | reserved×3 | rows u32 | cols u32 | numGroups u32
//	per group:
//	  kind u8 | width u8 | reserved×2 | extra u32   (extra = distinct tuples
//	                                                 or offset-list count)
//	  column indexes: width × u32
//	  DDC: dict 8×width×distinct | rowIdx packed at BytesPerInt(distinct-1)
//	  OLE: dict | per list: u32 count + offsets packed at BytesPerInt(rows-1)
//	  RLE: dict | per list: u32 count + runs (start,len) packed likewise
//	  UC:  raw rows×width float64

const claMagic = 0x16

// Serialize returns the wire image; CompressedSize equals its length.
func (m *Matrix) Serialize() []byte {
	out := make([]byte, 0, m.CompressedSize())
	out = append(out, claMagic, 0, 0, 0)
	out = appendU32(out, uint32(m.rows))
	out = appendU32(out, uint32(m.cols))
	out = appendU32(out, uint32(len(m.groups)))
	offW := bitpack.BytesPerInt(uint32(maxInt(m.rows-1, 0)))
	for _, g := range m.groups {
		w := len(g.cols)
		extra := g.extraCount()
		out = append(out, byte(g.kind), byte(w), 0, 0)
		out = appendU32(out, uint32(extra))
		for _, c := range g.cols {
			out = appendU32(out, uint32(c))
		}
		switch g.kind {
		case kindDDC:
			out = appendF64s(out, g.dict)
			distinct := extra
			dw := bitpack.BytesPerInt(uint32(maxInt(distinct-1, 0)))
			out = appendPacked(out, g.rowIdx, dw)
		case kindOLE:
			out = appendF64s(out, g.dict)
			for _, lst := range g.offsets {
				out = appendU32(out, uint32(len(lst)))
				out = appendPacked(out, lst, offW)
			}
		case kindRLE:
			out = appendF64s(out, g.dict)
			for _, rs := range g.runs {
				out = appendU32(out, uint32(len(rs)))
				for _, r := range rs {
					out = appendPackedOne(out, r.start, offW)
					out = appendPackedOne(out, r.length, offW)
				}
			}
		case kindUC:
			out = appendF64s(out, g.raw)
		}
	}
	return out
}

// extraCount is the group's per-kind count field: distinct tuples for DDC,
// list count for OLE/RLE, 0 for UC.
func (g *group) extraCount() int {
	switch g.kind {
	case kindDDC:
		return len(g.dict) / maxInt(len(g.cols), 1)
	case kindOLE:
		return len(g.offsets)
	case kindRLE:
		return len(g.runs)
	default:
		return 0
	}
}

// Deserialize reconstructs a CLA matrix from its wire image, validating
// structure so corrupt images error rather than panic.
func Deserialize(img []byte) (*Matrix, error) {
	if len(img) < 16 {
		return nil, fmt.Errorf("cla: image too short: %d bytes", len(img))
	}
	if img[0] != claMagic {
		return nil, fmt.Errorf("cla: bad magic %#x", img[0])
	}
	m := &Matrix{
		rows: int(binary.LittleEndian.Uint32(img[4:8])),
		cols: int(binary.LittleEndian.Uint32(img[8:12])),
	}
	nGroups := int(binary.LittleEndian.Uint32(img[12:16]))
	buf := img[16:]
	if m.rows < 0 || m.cols < 0 || nGroups < 0 {
		return nil, fmt.Errorf("cla: negative header fields")
	}
	// Bound dimensions so corrupt headers cannot trigger enormous
	// allocations below.
	const maxDim = 1 << 27
	if m.rows > maxDim || m.cols > maxDim || nGroups > m.cols {
		return nil, fmt.Errorf("cla: implausible header %dx%d, %d groups", m.rows, m.cols, nGroups)
	}
	offW := bitpack.BytesPerInt(uint32(maxInt(m.rows-1, 0)))
	covered := make([]bool, m.cols)
	for gi := 0; gi < nGroups; gi++ {
		if len(buf) < 8 {
			return nil, fmt.Errorf("cla: truncated group %d header", gi)
		}
		g := &group{kind: groupKind(buf[0])}
		w := int(buf[1])
		extra := int(binary.LittleEndian.Uint32(buf[4:8]))
		buf = buf[8:]
		if g.kind > kindUC {
			return nil, fmt.Errorf("cla: group %d has unknown kind %d", gi, g.kind)
		}
		if w <= 0 {
			return nil, fmt.Errorf("cla: group %d has width %d", gi, w)
		}
		cols, rest, err := takeU32s(buf, w)
		if err != nil {
			return nil, fmt.Errorf("cla: group %d columns: %w", gi, err)
		}
		buf = rest
		g.cols = make([]int, w)
		for k, c := range cols {
			if int(c) >= m.cols {
				return nil, fmt.Errorf("cla: group %d column %d out of range %d", gi, c, m.cols)
			}
			if covered[c] {
				return nil, fmt.Errorf("cla: column %d covered twice", c)
			}
			covered[c] = true
			g.cols[k] = int(c)
		}
		switch g.kind {
		case kindDDC:
			g.dict, buf, err = takeF64s(buf, extra*w)
			if err != nil {
				return nil, fmt.Errorf("cla: group %d dict: %w", gi, err)
			}
			dw := bitpack.BytesPerInt(uint32(maxInt(extra-1, 0)))
			g.rowIdx, buf, err = takePacked(buf, m.rows, dw)
			if err != nil {
				return nil, fmt.Errorf("cla: group %d rowIdx: %w", gi, err)
			}
			for _, t := range g.rowIdx {
				if int(t) >= extra {
					return nil, fmt.Errorf("cla: group %d tuple index %d out of range %d", gi, t, extra)
				}
			}
		case kindOLE:
			g.dict, buf, err = takeF64s(buf, extra*w)
			if err != nil {
				return nil, fmt.Errorf("cla: group %d dict: %w", gi, err)
			}
			g.offsets = make([][]uint32, extra)
			for t := range g.offsets {
				var cnt []uint32
				cnt, buf, err = takeU32s(buf, 1)
				if err != nil {
					return nil, fmt.Errorf("cla: group %d list %d: %w", gi, t, err)
				}
				g.offsets[t], buf, err = takePacked(buf, int(cnt[0]), offW)
				if err != nil {
					return nil, fmt.Errorf("cla: group %d list %d: %w", gi, t, err)
				}
				for _, row := range g.offsets[t] {
					if int(row) >= m.rows {
						return nil, fmt.Errorf("cla: group %d offset %d out of range %d", gi, row, m.rows)
					}
				}
			}
		case kindRLE:
			g.dict, buf, err = takeF64s(buf, extra*w)
			if err != nil {
				return nil, fmt.Errorf("cla: group %d dict: %w", gi, err)
			}
			g.runs = make([][]run, extra)
			for t := range g.runs {
				var cnt []uint32
				cnt, buf, err = takeU32s(buf, 1)
				if err != nil {
					return nil, fmt.Errorf("cla: group %d runs %d: %w", gi, t, err)
				}
				rs := make([]run, cnt[0])
				for ri := range rs {
					var vals []uint32
					vals, buf, err = takePacked(buf, 2, offW)
					if err != nil {
						return nil, fmt.Errorf("cla: group %d run %d: %w", gi, ri, err)
					}
					rs[ri] = run{start: vals[0], length: vals[1]}
					if int(vals[0])+int(vals[1]) > m.rows {
						return nil, fmt.Errorf("cla: group %d run %d exceeds rows", gi, ri)
					}
				}
				g.runs[t] = rs
			}
		case kindUC:
			g.raw, buf, err = takeF64s(buf, m.rows*w)
			if err != nil {
				return nil, fmt.Errorf("cla: group %d raw: %w", gi, err)
			}
		}
		m.groups = append(m.groups, g)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("cla: %d trailing bytes", len(buf))
	}
	for c, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("cla: column %d not covered by any group", c)
		}
	}
	return m, nil
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendF64s(dst []byte, vals []float64) []byte {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

func takeU32s(buf []byte, n int) ([]uint32, []byte, error) {
	if n < 0 || len(buf) < 4*n {
		return nil, nil, fmt.Errorf("truncated u32 section (need %d)", n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, buf[4*n:], nil
}

func takeF64s(buf []byte, n int) ([]float64, []byte, error) {
	if n < 0 || len(buf) < 8*n {
		return nil, nil, fmt.Errorf("truncated f64 section (need %d)", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, buf[8*n:], nil
}

// appendPacked writes vals at a fixed byte width without a header (the
// width is derivable from counts already on the wire).
func appendPacked(dst []byte, vals []uint32, width int) []byte {
	for _, v := range vals {
		dst = appendPackedOne(dst, v, width)
	}
	return dst
}

func appendPackedOne(dst []byte, v uint32, width int) []byte {
	switch width {
	case 1:
		return append(dst, byte(v))
	case 2:
		return append(dst, byte(v), byte(v>>8))
	case 3:
		return append(dst, byte(v), byte(v>>8), byte(v>>16))
	default:
		return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

func takePacked(buf []byte, n, width int) ([]uint32, []byte, error) {
	if n < 0 || len(buf) < n*width {
		return nil, nil, fmt.Errorf("truncated packed section (need %d×%d)", n, width)
	}
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		off := i * width
		var v uint32
		for b := 0; b < width; b++ {
			v |= uint32(buf[off+b]) << (8 * b)
		}
		out[i] = v
	}
	return out, buf[n*width:], nil
}
