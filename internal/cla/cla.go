// Package cla is a simplified reimplementation of Compressed Linear
// Algebra (Elgohary et al., VLDB 2016, the paper's citation [14]), the
// state-of-the-art light-weight matrix compression baseline of the
// evaluation. The matrix is partitioned into column groups (co-coding);
// each group stores a dictionary of its distinct value tuples and picks the
// cheapest of four layouts:
//
//	DDC — dense dictionary coding: one dictionary index per row
//	OLE — offset-list encoding: per distinct non-zero tuple, the sorted
//	      list of rows where it occurs
//	RLE — run-length encoding: per distinct non-zero tuple, (start,len) runs
//	UC  — uncompressed fallback
//
// Matrix operations execute directly on the groups: per-tuple partial
// products are computed once against the dictionary and then distributed
// by the row structures. CLA's defining trade-off — an explicit dictionary
// whose cost is amortized over whole-dataset batch gradient descent but
// not over small mini-batches — emerges naturally from this layout and is
// exactly what the paper's Figure 5 exploits.
package cla

import (
	"encoding/binary"
	"math"

	"toc/internal/bitpack"
	"toc/internal/matrix"
)

type groupKind uint8

const (
	kindDDC groupKind = iota
	kindOLE
	kindRLE
	kindUC
)

func (k groupKind) String() string {
	switch k {
	case kindDDC:
		return "DDC"
	case kindOLE:
		return "OLE"
	case kindRLE:
		return "RLE"
	default:
		return "UC"
	}
}

// run is one RLE run: rows [start, start+length).
type run struct {
	start, length uint32
}

// group is one column group with its chosen encoding.
type group struct {
	kind groupKind
	cols []int // column indexes, ascending

	// dictionary of distinct value tuples, tuple-major:
	// dict[t*len(cols)+k] is column cols[k] of tuple t. Unused for UC.
	dict []float64

	rowIdx  []uint32   // DDC: dictionary tuple per row
	offsets [][]uint32 // OLE: rows per non-zero dictionary tuple
	runs    [][]run    // RLE: runs per non-zero dictionary tuple
	raw     []float64  // UC: rows × len(cols), row-major
}

// Matrix is a CLA-compressed mini-batch.
type Matrix struct {
	rows, cols int
	groups     []*group
}

// maxGroupWidth bounds co-coding so dictionary tuples stay small.
const maxGroupWidth = 6

// Compress encodes a dense mini-batch with column co-coding.
func Compress(d *matrix.Dense) *Matrix {
	m := &Matrix{rows: d.Rows(), cols: d.Cols()}
	if d.Cols() == 0 {
		return m
	}
	// Greedy sequential co-coding: extend the current group with the next
	// column while the combined encoding is no larger than encoding them
	// separately.
	cur := []int{0}
	curSize := bestEncodingSize(d, cur)
	for c := 1; c < d.Cols(); c++ {
		single := bestEncodingSize(d, []int{c})
		if len(cur) < maxGroupWidth {
			combined := append(append([]int(nil), cur...), c)
			combSize := bestEncodingSize(d, combined)
			if combSize <= curSize+single {
				cur, curSize = combined, combSize
				continue
			}
		}
		m.groups = append(m.groups, buildGroup(d, cur))
		cur, curSize = []int{c}, single
	}
	m.groups = append(m.groups, buildGroup(d, cur))
	return m
}

// tupleKey packs a group's row values into a comparable string.
func tupleKey(buf []byte, d *matrix.Dense, row int, cols []int) string {
	for k, c := range cols {
		binary.LittleEndian.PutUint64(buf[8*k:], math.Float64bits(d.At(row, c)))
	}
	return string(buf[:8*len(cols)])
}

// groupStats extracts the distinct tuples of a candidate group and the
// per-row tuple assignment.
func groupStats(d *matrix.Dense, cols []int) (dict []float64, rowIdx []uint32, zeroTuple int) {
	w := len(cols)
	buf := make([]byte, 8*w)
	seen := make(map[string]uint32)
	rowIdx = make([]uint32, d.Rows())
	zeroTuple = -1
	for i := 0; i < d.Rows(); i++ {
		key := tupleKey(buf, d, i, cols)
		idx, ok := seen[key]
		if !ok {
			idx = uint32(len(seen))
			seen[key] = idx
			allZero := true
			for _, c := range cols {
				v := d.At(i, c)
				dict = append(dict, v)
				if v != 0 {
					allZero = false
				}
			}
			if allZero {
				zeroTuple = int(idx)
			}
		}
		rowIdx[i] = idx
	}
	return dict, rowIdx, zeroTuple
}

// sizeOf computes the encoded byte size of each layout for a group.
func sizeOf(rows, width, distinct, nonZeroDistinct, nonZeroRows, totalRuns int) (ddc, ole, rle, uc int) {
	offW := bitpack.BytesPerInt(uint32(maxInt(rows-1, 0)))
	dictW := bitpack.BytesPerInt(uint32(maxInt(distinct-1, 0)))
	hdr := 8 + 4*width // group header + column list
	ddc = hdr + 8*width*distinct + dictW*rows
	ole = hdr + 8*width*nonZeroDistinct + 4*nonZeroDistinct + offW*nonZeroRows
	rle = hdr + 8*width*nonZeroDistinct + 4*nonZeroDistinct + 2*offW*totalRuns
	uc = hdr + 8*width*rows
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// layoutCounts derives the quantities the size model needs.
func layoutCounts(rowIdx []uint32, zeroTuple int, distinct int) (nonZeroRows, totalRuns int) {
	prev := uint32(math.MaxUint32)
	for _, t := range rowIdx {
		isZero := zeroTuple >= 0 && t == uint32(zeroTuple)
		if !isZero {
			nonZeroRows++
			if t != prev {
				totalRuns++
			}
		}
		if isZero {
			prev = math.MaxUint32
		} else {
			prev = t
		}
	}
	return
}

func bestEncodingSize(d *matrix.Dense, cols []int) int {
	dict, rowIdx, zeroTuple := groupStats(d, cols)
	distinct := len(dict) / maxInt(len(cols), 1)
	nzd := distinct
	if zeroTuple >= 0 {
		nzd--
	}
	nonZeroRows, totalRuns := layoutCounts(rowIdx, zeroTuple, distinct)
	ddc, ole, rle, uc := sizeOf(d.Rows(), len(cols), distinct, nzd, nonZeroRows, totalRuns)
	return minInt(minInt(ddc, ole), minInt(rle, uc))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// buildGroup constructs the group with its cheapest layout.
func buildGroup(d *matrix.Dense, cols []int) *group {
	dict, rowIdx, zeroTuple := groupStats(d, cols)
	w := len(cols)
	distinct := len(dict) / w
	nzd := distinct
	if zeroTuple >= 0 {
		nzd--
	}
	nonZeroRows, totalRuns := layoutCounts(rowIdx, zeroTuple, distinct)
	ddc, ole, rle, uc := sizeOf(d.Rows(), w, distinct, nzd, nonZeroRows, totalRuns)

	g := &group{cols: append([]int(nil), cols...)}
	best := minInt(minInt(ddc, ole), minInt(rle, uc))
	switch best {
	case ddc:
		g.kind = kindDDC
		g.dict = dict
		g.rowIdx = rowIdx
	case ole:
		g.kind = kindOLE
		g.dict, g.offsets = nonZeroLayout(dict, rowIdx, zeroTuple, w, func(lists [][]uint32, t uint32, row int) {
			lists[t] = append(lists[t], uint32(row))
		})
	case rle:
		g.kind = kindRLE
		g.dict, g.runs = rleLayout(dict, rowIdx, zeroTuple, w)
	default:
		g.kind = kindUC
		g.raw = make([]float64, d.Rows()*w)
		for i := 0; i < d.Rows(); i++ {
			for k, c := range cols {
				g.raw[i*w+k] = d.At(i, c)
			}
		}
	}
	return g
}

// nonZeroLayout remaps the dictionary dropping the zero tuple and collects
// per-tuple row lists.
func nonZeroLayout(dict []float64, rowIdx []uint32, zeroTuple, w int,
	add func(lists [][]uint32, t uint32, row int)) ([]float64, [][]uint32) {
	distinct := len(dict) / w
	remap := make([]int, distinct)
	var nzDict []float64
	next := 0
	for t := 0; t < distinct; t++ {
		if t == zeroTuple {
			remap[t] = -1
			continue
		}
		remap[t] = next
		nzDict = append(nzDict, dict[t*w:(t+1)*w]...)
		next++
	}
	lists := make([][]uint32, next)
	for row, t := range rowIdx {
		if nt := remap[t]; nt >= 0 {
			add(lists, uint32(nt), row)
		}
	}
	return nzDict, lists
}

// rleLayout builds per-tuple run lists (zero tuple dropped).
func rleLayout(dict []float64, rowIdx []uint32, zeroTuple, w int) ([]float64, [][]run) {
	distinct := len(dict) / w
	remap := make([]int, distinct)
	var nzDict []float64
	next := 0
	for t := 0; t < distinct; t++ {
		if t == zeroTuple {
			remap[t] = -1
			continue
		}
		remap[t] = next
		nzDict = append(nzDict, dict[t*w:(t+1)*w]...)
		next++
	}
	runs := make([][]run, next)
	for row := 0; row < len(rowIdx); row++ {
		nt := remap[rowIdx[row]]
		if nt < 0 {
			continue
		}
		rs := runs[nt]
		if n := len(rs); n > 0 && rs[n-1].start+rs[n-1].length == uint32(row) {
			rs[n-1].length++
		} else {
			rs = append(rs, run{start: uint32(row), length: 1})
		}
		runs[nt] = rs
	}
	return nzDict, runs
}
