package cla

import (
	"math/rand"
	"testing"
	"testing/quick"

	"toc/internal/matrix"
)

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range [][2]int{{1, 1}, {20, 5}, {120, 17}, {250, 8}} {
		a := redundantMatrix(rng, shape[0], shape[1], 0.4, 4)
		m := Compress(a)
		img := m.Serialize()
		if len(img) != m.CompressedSize() {
			t.Fatalf("shape %v: image %d bytes != CompressedSize %d (kinds %v)",
				shape, len(img), m.CompressedSize(), m.GroupKinds())
		}
		got, err := Deserialize(img)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if !got.Decode().Equal(a) {
			t.Fatalf("shape %v: round trip decode mismatch", shape)
		}
	}
}

func TestSerializeRoundTripAllKinds(t *testing.T) {
	// Force each layout to appear at least once across these inputs.
	rng := rand.New(rand.NewSource(22))
	inputs := []*matrix.Dense{}
	// RLE-friendly: long runs.
	runM := matrix.NewDense(200, 1)
	for i := 0; i < 120; i++ {
		runM.Set(i, 0, 3)
	}
	inputs = append(inputs, runM)
	// UC-friendly: all distinct.
	ucM := matrix.NewDense(64, 1)
	for i := 0; i < 64; i++ {
		ucM.Set(i, 0, rng.NormFloat64())
	}
	inputs = append(inputs, ucM)
	// DDC/OLE-friendly mixtures.
	inputs = append(inputs, redundantMatrix(rng, 150, 6, 0.5, 3))
	seen := map[string]bool{}
	for i, a := range inputs {
		m := Compress(a)
		for _, k := range m.GroupKinds() {
			seen[k] = true
		}
		got, err := Deserialize(m.Serialize())
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if !got.Decode().Equal(a) {
			t.Fatalf("input %d: decode mismatch", i)
		}
	}
	for _, k := range []string{"RLE", "UC"} {
		if !seen[k] {
			t.Errorf("layout %s never exercised (saw %v)", k, seen)
		}
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := redundantMatrix(rng, 40, 6, 0.5, 3)
	img := Compress(a).Serialize()

	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil should error")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 0x99
	if _, err := Deserialize(bad); err == nil {
		t.Fatal("bad magic should error")
	}
	for cut := 4; cut < len(img); cut += 13 {
		if _, err := Deserialize(img[:cut]); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

func TestDeserializeByteFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := redundantMatrix(rng, 25, 4, 0.5, 3)
	img := Compress(a).Serialize()
	f := func(pos int, flip byte) bool {
		if flip == 0 {
			flip = 0xff
		}
		p := pos % len(img)
		if p < 0 {
			p = -p
		}
		bad := append([]byte(nil), img...)
		bad[p] ^= flip
		defer func() { recover() }()
		m, err := Deserialize(bad)
		if err == nil {
			m.Decode()
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
