package bitpack

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBytesPerInt(t *testing.T) {
	cases := []struct {
		max  uint32
		want int
	}{
		{0, 1}, {1, 1}, {255, 1},
		{256, 2}, {65535, 2},
		{65536, 3}, {1<<24 - 1, 3},
		{1 << 24, 4}, {^uint32(0), 4},
	}
	for _, c := range cases {
		if got := BytesPerInt(c.max); got != c.want {
			t.Errorf("BytesPerInt(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestPackGetAllWidths(t *testing.T) {
	cases := [][]uint32{
		{},                     // empty
		{0, 0, 0},              // all zero -> width 1
		{0, 1, 2, 255},         // width 1
		{0, 256, 65535},        // width 2
		{65536, 1<<24 - 1, 42}, // width 3 (uint24 masking path)
		{1 << 24, 7, 1<<31 + 5},
	}
	wantWidths := []int{1, 1, 1, 2, 3, 4}
	for i, vals := range cases {
		a := Pack(vals)
		if a.Width() != wantWidths[i] {
			t.Errorf("case %d: width = %d, want %d", i, a.Width(), wantWidths[i])
		}
		if a.Len() != len(vals) {
			t.Errorf("case %d: len = %d, want %d", i, a.Len(), len(vals))
		}
		for j, v := range vals {
			if got := a.Get(j); got != v {
				t.Errorf("case %d: Get(%d) = %d, want %d", i, j, got, v)
			}
		}
	}
}

func TestArrayRoundTripBytes(t *testing.T) {
	vals := []uint32{3, 70000, 12, 9}
	a := Pack(vals)
	buf := a.AppendTo(nil)
	if len(buf) != a.EncodedSize() {
		t.Fatalf("encoded size %d != declared %d", len(buf), a.EncodedSize())
	}
	// append trailing garbage to verify rest handling
	buf = append(buf, 0xde, 0xad)
	got, rest, err := ReadArray(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes, want 2", len(rest))
	}
	if !reflect.DeepEqual(got.Unpack(), vals) {
		t.Fatalf("round trip = %v, want %v", got.Unpack(), vals)
	}
}

func TestReadArrayErrors(t *testing.T) {
	if _, _, err := ReadArray(nil); err == nil {
		t.Fatal("nil should error")
	}
	if _, _, err := ReadArray([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("short header should error")
	}
	// invalid width
	if _, _, err := ReadArray([]byte{1, 0, 0, 0, 9, 1}); err == nil {
		t.Fatal("width 9 should error")
	}
	// truncated payload: claims 4 ints of width 2 but has 3 bytes
	if _, _, err := ReadArray([]byte{4, 0, 0, 0, 2, 1, 2, 3}); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		a := Pack(vals)
		back, rest, err := ReadArray(a.AppendTo(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		got := back.Unpack()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueIndexBasics(t *testing.T) {
	vals := []float64{1.1, 2, 1.1, 3, 2, 1.1}
	vi := BuildValueIndex(vals)
	if vi.NumUnique() != 3 {
		t.Fatalf("unique = %d, want 3", vi.NumUnique())
	}
	if !reflect.DeepEqual(vi.Decode(), vals) {
		t.Fatalf("decode = %v, want %v", vi.Decode(), vals)
	}
	if vi.Value(0) != 1.1 || vi.Value(1) != 2 || vi.Value(2) != 3 {
		t.Fatalf("dictionary order wrong: %v", vi.Values())
	}
	// occurrence indexes
	if !reflect.DeepEqual(vi.Indexes(), []uint32{0, 1, 0, 2, 1, 0}) {
		t.Fatalf("indexes = %v", vi.Indexes())
	}
}

func TestValueIndexSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 500)
	pool := []float64{0.5, -1, 3.25, 9, 0.125}
	for i := range vals {
		vals[i] = pool[rng.Intn(len(pool))]
	}
	vi := BuildValueIndex(vals)
	buf := vi.AppendTo(nil)
	if len(buf) != vi.EncodedSize() {
		t.Fatalf("encoded size %d != declared %d", len(buf), vi.EncodedSize())
	}
	got, rest, err := ReadValueIndex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if !reflect.DeepEqual(got.Decode(), vals) {
		t.Fatal("value index round trip mismatch")
	}
}

func TestValueIndexErrors(t *testing.T) {
	if _, _, err := ReadValueIndex(nil); err == nil {
		t.Fatal("nil should error")
	}
	if _, _, err := ReadValueIndex([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated dictionary should error")
	}
	// valid dictionary of 1 value, then a packed array referencing index 3
	vi := &ValueIndex{lookup: map[float64]uint32{}, values: []float64{1}, indexes: []uint32{3}}
	if _, _, err := ReadValueIndex(vi.AppendTo(nil)); err == nil {
		t.Fatal("out-of-range occurrence index should error")
	}
}

func TestValueIndexEmpty(t *testing.T) {
	vi := BuildValueIndex(nil)
	got, _, err := ReadValueIndex(vi.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUnique() != 0 || len(got.Decode()) != 0 {
		t.Fatal("empty value index round trip wrong")
	}
}

func TestUvarint(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 + 9}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		got, n, err := Uvarint(buf)
		if err != nil || n != len(buf) || got != v {
			t.Fatalf("varint %d: got %d (n=%d, err=%v)", v, got, n, err)
		}
	}
	if _, _, err := Uvarint(nil); err == nil {
		t.Fatal("empty varint should error")
	}
	if _, _, err := Uvarint([]byte{0x80, 0x80}); err == nil {
		t.Fatal("truncated varint should error")
	}
	long := make([]byte, 12)
	for i := range long {
		long[i] = 0x80
	}
	if _, _, err := Uvarint(long); err == nil {
		t.Fatal("overlong varint should error")
	}
}

func TestPackVarintRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		got, rest, err := UnpackVarint(PackVarint(vals))
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintSmallerOnSmallValues(t *testing.T) {
	// With values below 128 varint uses 1 byte each, like bit packing, but
	// with a mixed range bit packing pays the max width for everything.
	vals := make([]uint32, 1000)
	vals[0] = 1 << 20 // forces bitpack width 3
	packed := Pack(vals).EncodedSize()
	varint := len(PackVarint(vals))
	if varint >= packed {
		t.Fatalf("varint %d should beat bitpack %d on skewed data", varint, packed)
	}
}
