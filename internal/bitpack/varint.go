package bitpack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Varint encoding — the paper's §3.2 names Varint [12] as a more advanced
// physical encoding and leaves it as future work; it is provided here as an
// optional extension (see the VarintArrays ablation bench in bench_test.go).
// The encoding is the standard LEB128 base-128 scheme used by protocol
// buffers: 7 value bits per byte, high bit set on continuation bytes.
//
// Decoding is word-at-a-time: when 8 input bytes are available, one
// little-endian load finds the terminator byte (the first byte with its
// high bit clear) via a single mask-and-count, then compacts the 7-bit
// payload groups with three branchless SWAR folds. Every varint of up to
// 8 bytes — all uint32 payloads and 56-bit values — decodes without a
// per-byte loop; longer or buffer-tail varints take the byte loop below.

// ErrVarintOverflow reports a 10-byte varint whose final byte carries
// payload bits beyond the 64th — an encoding no uint64 can round-trip to,
// which a canonical encoder never emits. AppendUvarint writes at most one
// payload bit (0 or 1) into the 10th byte, so anything larger there is
// either corruption or an attempt to smuggle a >64-bit value.
var ErrVarintOverflow = errors.New("bitpack: varint overflows 64 bits")

// AppendUvarint appends the varint encoding of v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

const (
	varintCont = 0x8080808080808080 // the 8 continuation bits of a word
	varintMask = 0x7f7f7f7f7f7f7f7f // the 8 payload groups of a word
)

// Uvarint decodes a varint from the front of buf, returning the value and
// the number of bytes consumed. It returns an error on truncated input,
// on encodings longer than 10 bytes, and (as ErrVarintOverflow) on
// 10-byte encodings whose last byte carries bits beyond the 64-bit range.
func Uvarint(buf []byte) (uint64, int, error) {
	if len(buf) >= 8 {
		x := binary.LittleEndian.Uint64(buf)
		if nc := ^x & varintCont; nc != 0 {
			// Terminator inside the word: byte index n, so n+1 bytes of
			// payload. Mask the bytes past it, drop the continuation
			// bits, and fold the 7-bit groups together — 14-bit groups
			// on 16-bit lanes, then 28 on 32, then the full 56 bits.
			n := uint(bits.TrailingZeros64(nc)) >> 3
			x &= ^uint64(0) >> (56 - 8*n)
			x &= varintMask
			x = (x & 0x007f007f007f007f) | (x&0x7f007f007f007f00)>>1
			x = (x & 0x00003fff00003fff) | (x&0x3fff00003fff0000)>>2
			x = (x & 0x000000000fffffff) | (x&0x0fffffff00000000)>>4
			return x, int(n) + 1, nil
		}
		// 8 continuation bytes: the value spills into bytes 9 and 10;
		// fall through to the byte loop, which handles the tail checks.
	}
	var v uint64
	var shift uint
	for i, b := range buf {
		if i == 9 {
			// The 10th byte holds bit 63 only: a continuation bit here
			// would demand an 11th byte no 64-bit encoder writes, and
			// payload bits above 0x01 would shift past the 64th bit.
			if b&0x7f > 1 {
				return 0, 0, ErrVarintOverflow
			}
			if b >= 0x80 {
				return 0, 0, fmt.Errorf("bitpack: varint too long")
			}
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, fmt.Errorf("bitpack: truncated varint")
}

// PackVarint encodes vals using varint coding with a count prefix.
func PackVarint(vals []uint32) []byte {
	out := AppendUvarint(nil, uint64(len(vals)))
	for _, v := range vals {
		out = AppendUvarint(out, uint64(v))
	}
	return out
}

// UnpackVarint decodes a varint-packed array from the front of buf,
// returning the values and the remaining bytes. The group loop rides the
// word-at-a-time Uvarint fast path: away from the buffer tail each value
// costs one 8-byte load and the branchless compaction, no byte loop.
func UnpackVarint(buf []byte) ([]uint32, []byte, error) {
	n, c, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	buf = buf[c:]
	out := make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		v, c, err := Uvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if v > 0xffffffff {
			return nil, nil, fmt.Errorf("bitpack: varint value %d overflows uint32", v)
		}
		buf = buf[c:]
		out = append(out, uint32(v))
	}
	return out, buf, nil
}
