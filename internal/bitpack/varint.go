package bitpack

import "fmt"

// Varint encoding — the paper's §3.2 names Varint [12] as a more advanced
// physical encoding and leaves it as future work; it is provided here as an
// optional extension (see the VarintArrays ablation bench in bench_test.go).
// The encoding is the standard LEB128 base-128 scheme used by protocol
// buffers: 7 value bits per byte, high bit set on continuation bytes.

// AppendUvarint appends the varint encoding of v to dst.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes a varint from the front of buf, returning the value and
// the number of bytes consumed. It returns an error on truncated or
// over-long input.
func Uvarint(buf []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if i == 10 {
			return 0, 0, fmt.Errorf("bitpack: varint too long")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, fmt.Errorf("bitpack: truncated varint")
}

// PackVarint encodes vals using varint coding with a count prefix.
func PackVarint(vals []uint32) []byte {
	out := AppendUvarint(nil, uint64(len(vals)))
	for _, v := range vals {
		out = AppendUvarint(out, uint64(v))
	}
	return out
}

// UnpackVarint decodes a varint-packed array from the front of buf,
// returning the values and the remaining bytes.
func UnpackVarint(buf []byte) ([]uint32, []byte, error) {
	n, c, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	buf = buf[c:]
	out := make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		v, c, err := Uvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if v > 0xffffffff {
			return nil, nil, fmt.Errorf("bitpack: varint value %d overflows uint32", v)
		}
		buf = buf[c:]
		out = append(out, uint32(v))
	}
	return out, buf, nil
}
