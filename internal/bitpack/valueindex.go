package bitpack

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ValueIndex is the §3.2 value-indexing (dictionary) encoding for float64
// values: all unique values are stored once in an array, and occurrences are
// replaced by bit-packed indexes into that array.
type ValueIndex struct {
	values  []float64          // unique values, in first-appearance order
	lookup  map[float64]uint32 // value -> index in values
	indexes []uint32           // one index per input value, in input order
}

// BuildValueIndex dictionary-encodes vals.
func BuildValueIndex(vals []float64) *ValueIndex {
	vi := &ValueIndex{lookup: make(map[float64]uint32)}
	vi.indexes = make([]uint32, 0, len(vals))
	for _, v := range vals {
		vi.indexes = append(vi.indexes, vi.Intern(v))
	}
	return vi
}

// NewValueIndex returns an empty dictionary for incremental interning.
func NewValueIndex() *ValueIndex {
	return &ValueIndex{lookup: make(map[float64]uint32)}
}

// Intern returns the dictionary index for v, adding it if unseen. It does
// not append to the occurrence list; use BuildValueIndex for that.
func (vi *ValueIndex) Intern(v float64) uint32 {
	if idx, ok := vi.lookup[v]; ok {
		return idx
	}
	idx := uint32(len(vi.values))
	vi.values = append(vi.values, v)
	vi.lookup[v] = idx
	return idx
}

// NumUnique returns the dictionary size.
func (vi *ValueIndex) NumUnique() int { return len(vi.values) }

// Value returns the value stored at dictionary index i.
func (vi *ValueIndex) Value(i uint32) float64 { return vi.values[i] }

// Values returns the dictionary contents (aliased).
func (vi *ValueIndex) Values() []float64 { return vi.values }

// Indexes returns the occurrence index list built by BuildValueIndex.
func (vi *ValueIndex) Indexes() []uint32 { return vi.indexes }

// EncodedSize returns the bytes AppendTo writes: the value dictionary
// (uint32 count + 8 bytes per value) plus the bit-packed occurrence
// indexes — computed arithmetically (a max scan, no packing), so callers
// presizing a buffer do not pay AppendTo's O(n) pack twice.
func (vi *ValueIndex) EncodedSize() int {
	var max uint32
	for _, v := range vi.indexes {
		if v > max {
			max = v
		}
	}
	return 4 + 8*len(vi.values) + headerSize + BytesPerInt(max)*len(vi.indexes)
}

// AppendTo appends the encoded dictionary and occurrence indexes to dst.
func (vi *ValueIndex) AppendTo(dst []byte) []byte {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(vi.values)))
	dst = append(dst, cnt[:]...)
	var b [8]byte
	for _, v := range vi.values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return Pack(vi.indexes).AppendTo(dst)
}

// ReadValueIndex decodes a ValueIndex from the front of buf, returning it
// and the remaining bytes.
func ReadValueIndex(buf []byte) (*ValueIndex, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("bitpack: truncated value index header")
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	buf = buf[4:]
	if len(buf) < 8*n {
		return nil, nil, fmt.Errorf("bitpack: truncated value dictionary: have %d, need %d", len(buf), 8*n)
	}
	vi := &ValueIndex{lookup: make(map[float64]uint32, n)}
	vi.values = make([]float64, n)
	for i := 0; i < n; i++ {
		vi.values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		vi.lookup[vi.values[i]] = uint32(i)
	}
	buf = buf[8*n:]
	arr, rest, err := ReadArray(buf)
	if err != nil {
		return nil, nil, fmt.Errorf("bitpack: value index occurrences: %w", err)
	}
	vi.indexes = arr.Unpack()
	for _, idx := range vi.indexes {
		if int(idx) >= n {
			return nil, nil, fmt.Errorf("bitpack: value index %d out of range %d", idx, n)
		}
	}
	return vi, rest, nil
}

// Decode reconstructs the original value sequence from the dictionary and
// the occurrence indexes.
func (vi *ValueIndex) Decode() []float64 {
	out := make([]float64, len(vi.indexes))
	for i, idx := range vi.indexes {
		out[i] = vi.values[idx]
	}
	return out
}
