package bitpack

import (
	"errors"
	"testing"
)

// The word-at-a-time decoders must be bit-for-bit the §4.1.1 access path:
// UnpackRange against Get for every width, with lengths chosen so the
// word loop runs zero, one, and several times and every tail shape
// shorter than one 8-byte load is exercised.

// unpackWidthValues returns values whose maximum forces the given packed
// width, mixing magnitudes around the 1-, 7-, 8- and 32-bit boundaries.
func unpackWidthValues(width, n int) []uint32 {
	max := map[int]uint32{1: 0xff, 2: 0xffff, 3: 0xffffff, 4: 0xffffffff}[width]
	vals := make([]uint32, n)
	for i := range vals {
		switch i % 5 {
		case 0:
			vals[i] = uint32(i) & 1 // 1-bit
		case 1:
			vals[i] = uint32(i*13) & 0x7f // 7-bit
		case 2:
			vals[i] = uint32(i*29) & 0xff & max // 8-bit
		case 3:
			vals[i] = uint32(i*0x9e3779b9) & max // up to 32-bit
		default:
			vals[i] = max - uint32(i)%7
		}
	}
	if n > 0 {
		vals[0] = max // pin the width even for short arrays
	}
	return vals
}

func TestUnpackRangeMatchesGet(t *testing.T) {
	for width := 1; width <= 4; width++ {
		// 0..17 covers empty, tail-only (shorter than one 8-byte word),
		// exactly one word, and word-plus-tail for every width.
		for n := 0; n <= 17; n++ {
			vals := unpackWidthValues(width, n)
			a := Pack(vals)
			if n > 0 && a.Width() != width {
				t.Fatalf("width %d n %d: packed width %d", width, n, a.Width())
			}
			full := a.Unpack()
			if len(full) != n {
				t.Fatalf("width %d n %d: Unpack len %d", width, n, len(full))
			}
			for i, v := range full {
				if g := a.Get(i); v != g {
					t.Fatalf("width %d n %d: Unpack[%d] = %d, Get = %d", width, n, i, v, g)
				}
			}
			dst := make([]uint32, n)
			for lo := 0; lo <= n; lo++ {
				for hi := lo; hi <= n; hi++ {
					buf := dst[:hi-lo]
					for i := range buf {
						buf[i] = 0xdeadbeef
					}
					a.UnpackRange(buf, lo, hi)
					for i := range buf {
						if g := a.Get(lo + i); buf[i] != g {
							t.Fatalf("width %d n %d: UnpackRange[%d,%d)[%d] = %d, Get(%d) = %d",
								width, n, lo, hi, i, buf[i], lo+i, g)
						}
					}
				}
			}
		}
	}
}

func TestUnpackRangeBounds(t *testing.T) {
	a := Pack([]uint32{1, 2, 3})
	for _, tc := range []struct{ lo, hi, dst int }{
		{-1, 2, 4}, {0, 4, 4}, {2, 1, 4}, {0, 3, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UnpackRange(dst[%d], %d, %d) should panic", tc.dst, tc.lo, tc.hi)
				}
			}()
			a.UnpackRange(make([]uint32, tc.dst), tc.lo, tc.hi)
		}()
	}
}

func TestUnpackRangeAllocs(t *testing.T) {
	for width := 1; width <= 4; width++ {
		a := Pack(unpackWidthValues(width, 4096))
		dst := make([]uint32, a.Len())
		got := testing.AllocsPerRun(20, func() {
			a.UnpackRange(dst, 0, a.Len())
		})
		if got != 0 {
			t.Errorf("width %d: UnpackRange allocates %.0f objects/run, want 0", width, got)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 9 continuation bytes put the 10th byte at bit 63: only 0x00 and
	// 0x01 payloads fit a uint64 there.
	pre := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	if v, n, err := Uvarint(append(pre[:9:9], 0x01)); err != nil || v != 1<<63 || n != 10 {
		t.Fatalf("10-byte 1<<63: got %d (n=%d, err=%v)", v, n, err)
	}
	for _, last := range []byte{0x02, 0x03, 0x7f} {
		_, _, err := Uvarint(append(pre[:9:9], last))
		if !errors.Is(err, ErrVarintOverflow) {
			t.Errorf("10th byte 0x%02x: err = %v, want ErrVarintOverflow", last, err)
		}
	}
	// A continuation bit on the 10th byte is "too long", not overflow,
	// even when its payload bits would fit.
	if _, _, err := Uvarint(append(pre[:9:9], 0x81)); err == nil || errors.Is(err, ErrVarintOverflow) {
		t.Errorf("continuation in 10th byte: err = %v, want a too-long error", err)
	}
}

// FuzzUvarint drives adversarial bytes through the varint decoder. The
// contract: Uvarint either errors or returns (v, n) such that re-encoding
// v canonically consumes at most n bytes and decoding is stable — and it
// never panics, never reads past the terminator, and never accepts an
// encoding whose payload bits exceed 64 (the overflow seed below is the
// regression case for ErrVarintOverflow).
func FuzzUvarint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x80})
	f.Add([]byte{0xac, 0x02})
	f.Add(AppendUvarint(nil, 1<<63+9))
	f.Add(AppendUvarint(nil, ^uint64(0)))
	// Non-canonical but in-range: 128 with a redundant byte.
	f.Add([]byte{0x80, 0x81, 0x00})
	// Overflowing 10-byte encoding: the 10th byte carries bits past 64.
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	// 10 continuation bytes: too long no matter the payload.
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00})

	f.Fuzz(func(t *testing.T, buf []byte) {
		v, n, err := Uvarint(buf)
		if err != nil {
			return
		}
		if n < 1 || n > 10 || n > len(buf) {
			t.Fatalf("Uvarint(%x) consumed %d of %d bytes", buf, n, len(buf))
		}
		// The terminator must be inside the consumed bytes and every
		// consumed byte before it must be a continuation.
		for i := 0; i < n-1; i++ {
			if buf[i] < 0x80 {
				t.Fatalf("Uvarint(%x) consumed past terminator at %d", buf, i)
			}
		}
		if buf[n-1] >= 0x80 {
			t.Fatalf("Uvarint(%x) stopped on continuation byte", buf)
		}
		// Canonical re-encoding is never longer than what was consumed,
		// and decoding it gives the value back.
		enc := AppendUvarint(nil, v)
		if len(enc) > n {
			t.Fatalf("Uvarint(%x) = %d: canonical form %x longer than consumed %d", buf, v, enc, n)
		}
		v2, n2, err := Uvarint(enc)
		if err != nil || v2 != v || n2 != len(enc) {
			t.Fatalf("re-decode of %x: got %d,%d,%v want %d", enc, v2, n2, err, v)
		}
	})
}
