// Package bitpack implements the physical-encoding primitives of §3.2 of the
// paper: bit packing of arrays of small non-negative integers and value
// indexing (dictionary encoding) of float64 values.
//
// Per the paper, each non-negative integer in an array is stored using
// ceil((floor(log2 max)+1)/8) bytes — i.e. 1, 2, 3 (uint24) or 4 bytes — and
// every encoded array carries a header recording the number of integers and
// the number of bytes per integer. §4.1.1 describes accessing a packed
// integer by seeking to its position and casting the bytes, masking the
// leading byte for uint24; Get does exactly that.
package bitpack

import (
	"encoding/binary"
	"fmt"
)

// headerSize is the encoded array header: uint32 count + uint8 width.
const headerSize = 5

// BytesPerInt returns the number of bytes bit packing uses per value for
// arrays whose maximum element is max: ceil((floor(log2 max)+1)/8), with the
// paper's convention that an all-zero array still uses one byte per value.
func BytesPerInt(max uint32) int {
	switch {
	case max < 1<<8:
		return 1
	case max < 1<<16:
		return 2
	case max < 1<<24:
		return 3
	default:
		return 4
	}
}

// Array is a bit-packed array of non-negative integers with random access.
// The zero value is an empty array.
type Array struct {
	n     int    // number of integers
	width int    // bytes per integer (1..4)
	data  []byte // n*width payload bytes
}

// Pack encodes vals into a bit-packed array.
func Pack(vals []uint32) *Array {
	var max uint32
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	w := BytesPerInt(max)
	a := &Array{n: len(vals), width: w, data: make([]byte, len(vals)*w)}
	for i, v := range vals {
		a.put(i, v)
	}
	return a
}

func (a *Array) put(i int, v uint32) {
	off := i * a.width
	switch a.width {
	case 1:
		a.data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(a.data[off:], uint16(v))
	case 3:
		a.data[off] = byte(v)
		a.data[off+1] = byte(v >> 8)
		a.data[off+2] = byte(v >> 16)
	default:
		binary.LittleEndian.PutUint32(a.data[off:], v)
	}
}

// Len returns the number of integers in the array.
func (a *Array) Len() int { return a.n }

// Width returns the number of bytes used per integer.
func (a *Array) Width() int { return a.width }

// Get returns the i-th integer. It is the §4.1.1 access path: seek and cast,
// masking the leading byte to zero in the uint24 case.
func (a *Array) Get(i int) uint32 {
	off := i * a.width
	switch a.width {
	case 1:
		return uint32(a.data[off])
	case 2:
		return uint32(binary.LittleEndian.Uint16(a.data[off:]))
	case 3:
		// copy the three bytes into a uint32 and mask the leading byte.
		return uint32(a.data[off]) | uint32(a.data[off+1])<<8 | uint32(a.data[off+2])<<16
	default:
		return binary.LittleEndian.Uint32(a.data[off:])
	}
}

// Unpack decodes the whole array into a fresh slice.
func (a *Array) Unpack() []uint32 {
	out := make([]uint32, a.n)
	a.UnpackRange(out, 0, a.n)
	return out
}

// UnpackRange decodes elements [lo, hi) into dst, which must hold at
// least hi-lo values. It is the bulk counterpart of Get: instead of one
// seek-and-cast per element it decodes word-at-a-time — each 8-byte
// little-endian load yields 8/4/2/2 values for widths 1/2/3/4 with pure
// shift-and-mask extraction, no per-element branching — and allocates
// nothing. Deserialize and ReadValueIndex decode through it.
func (a *Array) UnpackRange(dst []uint32, lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("bitpack: UnpackRange [%d,%d) out of range %d", lo, hi, a.n))
	}
	n := hi - lo
	if len(dst) < n {
		panic(fmt.Sprintf("bitpack: UnpackRange dst holds %d, need %d", len(dst), n))
	}
	dst = dst[:n]
	src := a.data[lo*a.width : hi*a.width]
	switch a.width {
	case 1:
		unpack8(dst, src)
	case 2:
		unpack16(dst, src)
	case 3:
		unpack24(dst, src)
	default:
		unpack32(dst, src)
	}
}

// unpack8 decodes width-1 values: one 8-byte load yields 8 of them. All
// four unpack helpers advance by re-slicing dst and src so every length
// test directly proves the accesses behind it and the compiler drops
// every bounds check in the bodies.
func unpack8(dst []uint32, src []byte) {
	for len(dst) >= 8 && len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		dst[0] = uint32(x) & 0xff
		dst[1] = uint32(x>>8) & 0xff
		dst[2] = uint32(x>>16) & 0xff
		dst[3] = uint32(x>>24) & 0xff
		dst[4] = uint32(x>>32) & 0xff
		dst[5] = uint32(x>>40) & 0xff
		dst[6] = uint32(x>>48) & 0xff
		dst[7] = uint32(x >> 56)
		dst = dst[8:]
		src = src[8:]
	}
	for len(dst) >= 1 && len(src) >= 1 {
		dst[0] = uint32(src[0])
		dst = dst[1:]
		src = src[1:]
	}
}

// unpack16 decodes width-2 values: one 8-byte load yields 4.
func unpack16(dst []uint32, src []byte) {
	for len(dst) >= 4 && len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		dst[0] = uint32(x) & 0xffff
		dst[1] = uint32(x>>16) & 0xffff
		dst[2] = uint32(x>>32) & 0xffff
		dst[3] = uint32(x >> 48)
		dst = dst[4:]
		src = src[8:]
	}
	for len(dst) >= 1 && len(src) >= 2 {
		dst[0] = uint32(binary.LittleEndian.Uint16(src))
		dst = dst[1:]
		src = src[2:]
	}
}

// unpack24 decodes width-3 values: one 8-byte load covers two values
// (6 payload bytes) plus a 2-byte read-ahead, so the word loop stops one
// load short of the end and a byte-at-a-time tail finishes.
func unpack24(dst []uint32, src []byte) {
	for len(dst) >= 2 && len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		dst[0] = uint32(x) & 0xffffff
		dst[1] = uint32(x>>24) & 0xffffff
		dst = dst[2:]
		src = src[6:]
	}
	for len(dst) >= 1 && len(src) >= 3 {
		dst[0] = uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16
		dst = dst[1:]
		src = src[3:]
	}
}

// unpack32 decodes width-4 values: one 8-byte load yields 2.
func unpack32(dst []uint32, src []byte) {
	for len(dst) >= 2 && len(src) >= 8 {
		x := binary.LittleEndian.Uint64(src)
		dst[0] = uint32(x)
		dst[1] = uint32(x >> 32)
		dst = dst[2:]
		src = src[8:]
	}
	for len(dst) >= 1 && len(src) >= 4 {
		dst[0] = binary.LittleEndian.Uint32(src)
		dst = dst[1:]
		src = src[4:]
	}
}

// EncodedSize returns the number of bytes AppendTo writes (header + payload).
func (a *Array) EncodedSize() int { return headerSize + len(a.data) }

// AppendTo appends the encoded array (header + payload) to dst.
func (a *Array) AppendTo(dst []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(a.n))
	hdr[4] = byte(a.width)
	dst = append(dst, hdr[:]...)
	return append(dst, a.data...)
}

// ReadArray decodes an encoded array from the front of buf, returning the
// array and the remaining bytes. The returned Array aliases buf.
func ReadArray(buf []byte) (*Array, []byte, error) {
	if len(buf) < headerSize {
		return nil, nil, fmt.Errorf("bitpack: truncated header: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	w := int(buf[4])
	if w < 1 || w > 4 {
		return nil, nil, fmt.Errorf("bitpack: invalid width %d", w)
	}
	need := n * w
	rest := buf[headerSize:]
	if len(rest) < need {
		return nil, nil, fmt.Errorf("bitpack: truncated payload: have %d, need %d", len(rest), need)
	}
	return &Array{n: n, width: w, data: rest[:need:need]}, rest[need:], nil
}
