package bitpack

import (
	"testing"
)

// The decode hot paths allocate nothing: Get is pure bit arithmetic,
// AppendTo into a sized buffer reuses it, and the varint reader walks
// the input in place. These pins keep the per-batch decode loops
// allocation-free as the kernels above them assume.

func TestGetAllocs(t *testing.T) {
	vals := make([]uint32, 4096)
	for i := range vals {
		vals[i] = uint32(i * 7 % 1000)
	}
	a := Pack(vals)
	var sink uint32
	got := testing.AllocsPerRun(20, func() {
		for i := 0; i < a.Len(); i++ {
			sink += a.Get(i)
		}
	})
	if got != 0 {
		t.Errorf("Array.Get loop allocates %.0f objects/run, want 0", got)
	}
	_ = sink
}

func TestAppendToAllocs(t *testing.T) {
	vals := make([]uint32, 1024)
	for i := range vals {
		vals[i] = uint32(i % 513)
	}
	a := Pack(vals)
	buf := make([]byte, 0, a.EncodedSize())
	got := testing.AllocsPerRun(20, func() {
		buf = a.AppendTo(buf[:0])
	})
	if got != 0 {
		t.Errorf("Array.AppendTo into a sized buffer allocates %.0f objects/run, want 0", got)
	}
}

func TestUvarintAllocs(t *testing.T) {
	var buf []byte
	for i := 0; i < 512; i++ {
		buf = AppendUvarint(buf, uint64(i*i))
	}
	var sink uint64
	got := testing.AllocsPerRun(20, func() {
		rest := buf
		for len(rest) > 0 {
			v, n, err := Uvarint(rest)
			if err != nil {
				t.Fatal(err)
			}
			sink += v
			rest = rest[n:]
		}
	})
	if got != 0 {
		t.Errorf("Uvarint scan allocates %.0f objects/run, want 0", got)
	}
	_ = sink
}

func TestValueIndexLookupAllocs(t *testing.T) {
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = float64(i % 37)
	}
	vi := BuildValueIndex(vals)
	idx := vi.Indexes()
	var sink float64
	got := testing.AllocsPerRun(20, func() {
		for _, ix := range idx {
			sink += vi.Value(ix)
		}
	})
	if got != 0 {
		t.Errorf("ValueIndex.Value loop allocates %.0f objects/run, want 0", got)
	}
	_ = sink
}
