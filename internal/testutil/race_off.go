//go:build !race

package testutil

const RaceEnabled = false
