//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. sync.Pool deliberately drops items at random under it, so
// allocation pins that depend on pool hits cannot hold; such tests
// skip when this is true and stay enforced by the non-race suite.
const RaceEnabled = true
