// Package testutil holds helpers shared by the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutineLeak snapshots the goroutine count when called and
// registers a cleanup that fails the test if the count has not returned
// to within slack of the snapshot shortly after the test body finishes.
// Call it first thing in any test that spins up worker pools,
// prefetchers, background writers or training engines: a pool that
// doesn't drain is a bug even when the test's assertions pass.
//
// The check polls for up to five seconds before failing — goroutine
// exits land asynchronously — and allows a slack of two to tolerate
// runtime housekeeping goroutines coming and going.
func CheckGoroutineLeak(t testing.TB) {
	t.Helper()
	const slack = 2
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+slack {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before test, %d after; stacks:\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}
