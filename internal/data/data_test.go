package data

import (
	"math"
	"testing"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range Names() {
		d, err := Generate(name, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.X.Rows() != 500 {
			t.Errorf("%s: rows = %d", name, d.X.Rows())
		}
		wantCols, _ := DefaultCols(name)
		if d.X.Cols() != wantCols {
			t.Errorf("%s: cols = %d, want %d", name, d.X.Cols(), wantCols)
		}
		if len(d.Y) != 500 {
			t.Errorf("%s: labels = %d", name, len(d.Y))
		}
		for i, y := range d.Y {
			if y < 0 || y >= float64(d.Classes) || y != math.Trunc(y) {
				t.Fatalf("%s: label[%d] = %v outside 0..%d", name, i, y, d.Classes-1)
			}
		}
	}
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := DefaultCols("nope"); err == nil {
		t.Fatal("unknown dataset should error in DefaultCols")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := Generate("census", 200, 7)
	b, _ := Generate("census", 200, 7)
	if !a.X.Equal(b.X) {
		t.Fatal("same seed should reproduce X")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed should reproduce Y")
		}
	}
	c, _ := Generate("census", 200, 8)
	if a.X.Equal(c.X) {
		t.Fatal("different seeds should differ")
	}
}

// Sparsity must land near the Table 5 targets.
func TestSparsityTargets(t *testing.T) {
	targets := map[string][2]float64{ // name -> [min, max] acceptable sparsity
		"census":   {0.33, 0.53},
		"imagenet": {0.21, 0.41},
		"mnist":    {0.15, 0.35},
		"kdd99":    {0.29, 0.49},
		"rcv1":     {0.0005, 0.004},
		"deep1b":   {0.999, 1.0},
	}
	for name, bounds := range targets {
		d, err := Generate(name, 2000, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := d.Sparsity()
		if s < bounds[0] || s > bounds[1] {
			t.Errorf("%s: sparsity %.4f outside [%.4f, %.4f]", name, s, bounds[0], bounds[1])
		}
	}
}

func TestMnistHasTenClasses(t *testing.T) {
	d, _ := Generate("mnist", 3000, 2)
	if d.Classes != 10 {
		t.Fatalf("mnist classes = %d", d.Classes)
	}
	seen := map[float64]bool{}
	for _, y := range d.Y {
		seen[y] = true
	}
	if len(seen) < 8 {
		t.Fatalf("mnist labels cover only %d classes", len(seen))
	}
}

func TestBinaryLabelsBalanced(t *testing.T) {
	d, _ := Generate("census", 2000, 4)
	ones := 0
	for _, y := range d.Y {
		if y == 1 {
			ones++
		}
	}
	frac := float64(ones) / 2000
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("binary labels unbalanced: %.2f positive", frac)
	}
}

func TestShuffleOncePreservesPairs(t *testing.T) {
	d, _ := Generate("kdd99", 300, 5)
	// remember (row content -> label) pairs via a simple checksum
	type pair struct {
		sum float64
		y   float64
	}
	sums := make(map[pair]int)
	key := func(i int) pair {
		var s float64
		for j, v := range d.X.Row(i) {
			s += v * float64(j+1)
		}
		return pair{sum: s, y: d.Y[i]}
	}
	for i := 0; i < 300; i++ {
		sums[key(i)]++
	}
	d.ShuffleOnce(99)
	for i := 0; i < 300; i++ {
		sums[key(i)]--
	}
	for k, c := range sums {
		if c != 0 {
			t.Fatalf("shuffle broke row/label pairing: %v count %d", k, c)
		}
	}
}

func TestReplicate(t *testing.T) {
	d, _ := Generate("census", 100, 6)
	big := d.Replicate(350)
	if big.X.Rows() != 350 || len(big.Y) != 350 {
		t.Fatalf("replicate dims wrong: %d rows %d labels", big.X.Rows(), len(big.Y))
	}
	// row i matches source row i%100
	for _, i := range []int{0, 99, 100, 250, 349} {
		src := i % 100
		for j := 0; j < d.X.Cols(); j++ {
			if big.X.At(i, j) != d.X.At(src, j) {
				t.Fatalf("replicated row %d differs from source %d", i, src)
			}
		}
		if big.Y[i] != d.Y[src] {
			t.Fatalf("replicated label %d differs", i)
		}
	}
}

func TestBatches(t *testing.T) {
	d, _ := Generate("kdd99", 105, 7)
	if got := d.NumBatches(25); got != 5 {
		t.Fatalf("NumBatches = %d, want 5", got)
	}
	if got := d.NumBatches(0); got != 0 {
		t.Fatalf("NumBatches(0) = %d", got)
	}
	x, y := d.Batch(4, 25) // last partial batch
	if x.Rows() != 5 || len(y) != 5 {
		t.Fatalf("last batch %d rows %d labels, want 5/5", x.Rows(), len(y))
	}
	x0, _ := d.Batch(0, 25)
	if x0.Rows() != 25 {
		t.Fatalf("first batch %d rows", x0.Rows())
	}
	// batch content matches the dataset rows
	for j := 0; j < d.X.Cols(); j++ {
		if x.At(0, j) != d.X.At(100, j) {
			t.Fatal("batch rows misaligned")
		}
	}
}

// The generators must produce the redundancy ordering the paper's Figure 5
// depends on: kdd99 most redundant, mnist least (among the moderate ones).
func TestRedundancyCharacter(t *testing.T) {
	distinctPairs := func(name string) float64 {
		d, _ := Generate(name, 1000, 11)
		seen := make(map[[2]float64]struct{})
		total := 0
		for i := 0; i < d.X.Rows(); i++ {
			for j, v := range d.X.Row(i) {
				if v != 0 {
					seen[[2]float64{float64(j), v}] = struct{}{}
					total++
				}
			}
		}
		return float64(len(seen)) / float64(total) // lower = more redundant
	}
	kdd := distinctPairs("kdd99")
	mnist := distinctPairs("mnist")
	if kdd >= mnist {
		t.Fatalf("kdd99 should be more redundant than mnist: %f vs %f", kdd, mnist)
	}
}
