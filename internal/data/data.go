// Package data generates the synthetic stand-ins for the paper's six
// evaluation datasets (Table 5). The real datasets are not redistributable
// (and Deep1Billion alone is 475 GB), so each generator reproduces the
// properties TOC's behaviour actually depends on — sparsity, per-column
// value cardinality, and cross-row repeated-segment structure — at
// laptop-scale dimensions:
//
//	census   2.5M×68   sparsity 0.43  categorical, clustered rows
//	imagenet 1.2M×900  sparsity 0.31  quantized features, moderate reuse
//	mnist    8.1M×784  sparsity 0.25  pixel-like, FEW repeated sequences
//	kdd99    4M×42     sparsity 0.39  tiny cardinality, extreme redundancy
//	rcv1     800K×47K  sparsity 0.0016  extremely sparse, random columns
//	deep1b   1B×96     dense          unique floats, incompressible
//
// The generators are deterministic given a seed, so every experiment in
// the repository is reproducible.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"toc/internal/matrix"
)

// Dataset is a generated dataset: features, labels and label arity.
type Dataset struct {
	Name string
	X    *matrix.Dense
	// Y holds class ids (0..Classes-1) for classification datasets.
	Y []float64
	// Classes is 2 for the binary datasets and 10 for mnist, matching the
	// paper's §5.3 setup.
	Classes int
}

// Names returns the six paper dataset names in Table 5 order.
func Names() []string {
	return []string{"census", "imagenet", "mnist", "kdd99", "rcv1", "deep1b"}
}

// DefaultCols returns the scaled-down column count used for a dataset.
// Census, kdd99 and deep1b keep their true widths; the wide datasets are
// scaled to keep experiment runtimes laptop-sized.
func DefaultCols(name string) (int, error) {
	switch name {
	case "census":
		return 68, nil
	case "imagenet":
		return 180, nil
	case "mnist":
		return 196, nil
	case "kdd99":
		return 42, nil
	case "rcv1":
		return 2362, nil
	case "deep1b":
		return 96, nil
	default:
		return 0, fmt.Errorf("data: unknown dataset %q", name)
	}
}

// Generate builds rows rows of the named dataset with its default width.
func Generate(name string, rows int, seed int64) (*Dataset, error) {
	cols, err := DefaultCols(name)
	if err != nil {
		return nil, err
	}
	return GenerateSized(name, rows, cols, seed)
}

// GenerateSized builds a dataset with an explicit column count.
func GenerateSized(name string, rows, cols int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	var x *matrix.Dense
	classes := 2
	switch name {
	case "census":
		x = genClustered(rng, rows, cols, clusteredSpec{
			slots: 2, variants: 16, cardinality: 6, globalPool: 32,
			comboSkew: 0.8, comboCount: 4, zeroProb: 0.57, mutateProb: 0.008,
			noiseCols: 3, noisePool: 128,
		})
	case "imagenet":
		x = genClustered(rng, rows, cols, clusteredSpec{
			slots: 18, variants: 20, cardinality: 24, zeroProb: 0.69, mutateProb: 0.08,
		})
	case "mnist":
		// Pixel-like: one global pool of 256 quantized levels (8-bit
		// pixels scaled), and high mutation that destroys cross-row pair
		// sequences — so the logical layer helps little and byte-level
		// Gzip stays ahead of TOC (paper Figures 5 and 6).
		x = genClustered(rng, rows, cols, clusteredSpec{
			templates: 48, cardinality: 256, zeroProb: 0.75, mutateProb: 0.5,
			quantized: true,
		})
		classes = 10
	case "kdd99":
		x = genClustered(rng, rows, cols, clusteredSpec{
			slots: 2, variants: 6, cardinality: 4, globalPool: 24,
			comboSkew: 0.94, comboCount: 3, zeroProb: 0.61, mutateProb: 0.004,
		})
	case "rcv1":
		x = genExtremeSparse(rng, rows, cols, 0.0016, 64)
	case "deep1b":
		x = genDenseUnique(rng, rows, cols)
	default:
		return nil, fmt.Errorf("data: unknown dataset %q", name)
	}
	d := &Dataset{Name: name, X: x, Classes: classes}
	d.Y = teacherLabels(rng, x, classes)
	return d, nil
}

// clusteredSpec controls the clustered categorical/quantized generator
// shared by census, imagenet, mnist and kdd99.
type clusteredSpec struct {
	templates   int     // number of whole-row templates (quantized style)
	slots       int     // number of column segments (segment style)
	variants    int     // library size per segment (segment style)
	cardinality int     // distinct non-zero values per column
	globalPool  int     // if >0, column pools draw from this many shared values
	comboSkew   float64 // probability a row uses one of the favored combos
	comboCount  int     // number of favored whole-row combos (default 8)
	noiseCols   int     // continuous-ish columns redrawn per row
	noisePool   int     // distinct quantized values of the noise columns
	zeroProb    float64 // probability a template cell is zero
	mutateProb  float64 // per-cell probability a row deviates from template
	// quantized selects mnist-style generation: whole-row templates over
	// one global pool of cardinality evenly spaced levels (k/255-like
	// pixels) whose repeated byte patterns favour byte-level compressors.
	// When false, the generator composes each row from per-segment
	// variant libraries — redundancy lives in repeated column
	// *subsequences* across rows (the §3.1 structure TOC exploits), not
	// in whole rows, and values are full-entropy random doubles.
	quantized bool
}

// genClustered generates rows with either whole-row-template (quantized)
// or segment-composition structure. Segment composition splits the
// columns into spec.slots contiguous ranges, each with spec.variants
// pre-drawn instances; a row picks one variant per slot independently, so
// whole rows almost never repeat but column segments repeat constantly —
// beyond the reach of a windowed byte compressor, squarely inside the
// reach of TOC's batch-wide prefix tree.
func genClustered(rng *rand.Rand, rows, cols int, spec clusteredSpec) *matrix.Dense {
	// Per-column pools of distinct non-zero values.
	pools := make([][]float64, cols)
	var global []float64
	if spec.quantized {
		global = make([]float64, spec.cardinality)
		for k := range global {
			global[k] = float64(k+1) / float64(spec.cardinality)
		}
	}
	var shared []float64
	if spec.globalPool > 0 {
		// Real categorical/count data (census, kdd99) reuses a small set
		// of values across columns — small integers, codes, rates — so
		// the value-indexing dictionary stays tiny.
		shared = make([]float64, spec.globalPool)
		for k := range shared {
			shared[k] = rng.Float64()
		}
	}
	for c := range pools {
		if spec.quantized {
			pools[c] = global
			continue
		}
		pool := make([]float64, spec.cardinality)
		for k := range pool {
			if shared != nil {
				pool[k] = shared[rng.Intn(len(shared))]
			} else {
				pool[k] = rng.Float64()
			}
		}
		pools[c] = pool
	}
	draw := func(c int) float64 {
		if rng.Float64() < spec.zeroProb {
			return 0
		}
		return pools[c][rng.Intn(len(pools[c]))]
	}
	d := matrix.NewDense(rows, cols)

	if spec.quantized {
		templates := make([][]float64, spec.templates)
		for t := range templates {
			row := make([]float64, cols)
			for c := range row {
				row[c] = draw(c)
			}
			templates[t] = row
		}
		for i := 0; i < rows; i++ {
			row := d.Row(i)
			copy(row, templates[rng.Intn(spec.templates)])
			for c := range row {
				if rng.Float64() < spec.mutateProb {
					row[c] = draw(c)
				}
			}
		}
		return d
	}

	// Segment-composition structure.
	slots := spec.slots
	if slots < 1 {
		slots = 1
	}
	if slots > cols {
		slots = cols
	}
	bounds := make([]int, slots+1)
	for s := 0; s <= slots; s++ {
		bounds[s] = s * cols / slots
	}
	// library[s][v] is variant v of segment s.
	library := make([][][]float64, slots)
	for s := 0; s < slots; s++ {
		library[s] = make([][]float64, spec.variants)
		for v := 0; v < spec.variants; v++ {
			seg := make([]float64, bounds[s+1]-bounds[s])
			for k := range seg {
				seg[k] = draw(bounds[s] + k)
			}
			library[s][v] = seg
		}
	}
	// Continuous-ish columns (ages, counts, rates): redrawn per row from a
	// moderately large quantized pool. They are a small cost for TOC's
	// value dictionary but force a byte compressor to spend literals.
	var noise []float64
	if spec.noiseCols > 0 {
		noise = make([]float64, spec.noisePool)
		for k := range noise {
			noise[k] = rng.Float64()
		}
	}
	// Favored whole-row combinations: real enterprise data is dominated by
	// a handful of full-record patterns with a long tail of free
	// recombinations — kdd99 famously consists almost entirely of the
	// smurf/neptune/normal record shapes.
	nCombos := spec.comboCount
	if nCombos <= 0 {
		nCombos = 8
	}
	combos := make([][]int, nCombos)
	for k := range combos {
		combo := make([]int, slots)
		for s := range combo {
			combo[s] = rng.Intn(spec.variants)
		}
		combos[k] = combo
	}
	// Rows arrive as interleaved bursts: several flows are active at once
	// (kdd99 records multiplex network flows; census blocks interleave
	// districts), each contributing a run of near-identical records. The
	// interleaving matters: identical rows recur a few rows apart rather
	// than adjacently, so a byte-level compressor pays one back-reference
	// per row instead of streaming one continuous match, while TOC's
	// batch-wide dictionary is indifferent to row order.
	const flows = 6
	type burst struct {
		combo []int
		left  int
	}
	active := make([]burst, flows)
	nextBurst := func() burst {
		if rng.Float64() < spec.comboSkew {
			return burst{combo: combos[rng.Intn(nCombos)], left: 2 + rng.Intn(9)}
		}
		return burst{combo: nil, left: 1}
	}
	for f := range active {
		active[f] = nextBurst()
	}
	for i := 0; i < rows; i++ {
		f := rng.Intn(flows)
		if active[f].left == 0 {
			active[f] = nextBurst()
		}
		active[f].left--
		combo := active[f].combo
		row := d.Row(i)
		if combo != nil {
			for s := 0; s < slots; s++ {
				copy(row[bounds[s]:bounds[s+1]], library[s][combo[s]])
			}
		} else {
			for s := 0; s < slots; s++ {
				copy(row[bounds[s]:bounds[s+1]], library[s][rng.Intn(spec.variants)])
			}
		}
		for c := range row {
			if rng.Float64() < spec.mutateProb {
				row[c] = draw(c)
			}
		}
		for k := 0; k < spec.noiseCols; k++ {
			row[noiseAt(k, spec.noiseCols, cols)] = noise[rng.Intn(len(noise))]
		}
	}
	return d
}

// noiseAt spreads the k-th of n noise columns evenly over cols columns.
func noiseAt(k, n, cols int) int {
	return (k*cols + cols/2) / n % cols
}

// genExtremeSparse mimics rcv1: a handful of non-zeros per row at random
// columns with tf-idf-like full-entropy values. Column positions are
// random and values rarely repeat, so neither pair sequences nor value
// dictionaries help — CSR territory, with TOC reducing to roughly CSR.
func genExtremeSparse(rng *rand.Rand, rows, cols int, sparsity float64, _ int) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	mean := sparsity * float64(cols)
	for i := 0; i < rows; i++ {
		// Uniform non-zero count around the sparsity target; at least one
		// non-zero so no row is empty.
		nnz := 1 + rng.Intn(int(2*mean)+1)
		seen := make(map[int]struct{}, nnz)
		for len(seen) < nnz {
			seen[rng.Intn(cols)] = struct{}{}
		}
		colsDrawn := make([]int, 0, nnz)
		for c := range seen {
			colsDrawn = append(colsDrawn, c)
		}
		sort.Ints(colsDrawn)
		for _, c := range colsDrawn {
			d.Set(i, c, rng.Float64())
		}
	}
	return d
}

// genDenseUnique mimics deep1b: fully dense rows of unique floats; no
// compression scheme should find anything to exploit.
func genDenseUnique(rng *rand.Rand, rows, cols int) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	data := d.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return d
}

// teacherLabels assigns learnable labels: binary datasets use the sign of
// a random teacher's score (thresholded at the median so classes are
// balanced); multiclass datasets use the argmax over per-class teachers.
func teacherLabels(rng *rand.Rand, x *matrix.Dense, classes int) []float64 {
	rows, cols := x.Rows(), x.Cols()
	y := make([]float64, rows)
	if rows == 0 {
		return y
	}
	if classes <= 2 {
		w := make([]float64, cols)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		scores := x.MulVec(w)
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		threshold := sorted[rows/2]
		for i, s := range scores {
			if s > threshold {
				y[i] = 1
			}
		}
		return y
	}
	teachers := matrix.NewDense(cols, classes)
	for i := 0; i < cols; i++ {
		for c := 0; c < classes; c++ {
			teachers.Set(i, c, rng.NormFloat64())
		}
	}
	scores := x.MulMat(teachers)
	for i := 0; i < rows; i++ {
		best, bestV := 0, scores.At(i, 0)
		for c := 1; c < classes; c++ {
			if v := scores.At(i, c); v > bestV {
				best, bestV = c, v
			}
		}
		y[i] = float64(best)
	}
	return y
}

// ShuffleOnce permutes rows and labels in place with the given seed — the
// paper's §2.1.3 shuffle-once policy (shuffling every epoch is too
// expensive, so the data is shuffled once upfront).
func (d *Dataset) ShuffleOnce(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rows := d.X.Rows()
	perm := rng.Perm(rows)
	nx := matrix.NewDense(rows, d.X.Cols())
	ny := make([]float64, rows)
	for to, from := range perm {
		copy(nx.Row(to), d.X.Row(from))
		ny[to] = d.Y[from]
	}
	d.X = nx
	d.Y = ny
}

// Replicate scales the dataset by row replication, the technique the paper
// (following its citation [14]) used to build Imagenet1m, Mnist25m, etc.
// Rows are copied round-robin so batch composition stays representative.
func (d *Dataset) Replicate(targetRows int) *Dataset {
	rows := d.X.Rows()
	nx := matrix.NewDense(targetRows, d.X.Cols())
	ny := make([]float64, targetRows)
	for i := 0; i < targetRows; i++ {
		src := i % rows
		copy(nx.Row(i), d.X.Row(src))
		ny[i] = d.Y[src]
	}
	return &Dataset{Name: d.Name, X: nx, Y: ny, Classes: d.Classes}
}

// NumBatches returns the number of size-sized mini-batches (last partial
// batch included).
func (d *Dataset) NumBatches(size int) int {
	if size <= 0 {
		return 0
	}
	return (d.X.Rows() + size - 1) / size
}

// Batch returns mini-batch i as a dense row slice plus its labels.
func (d *Dataset) Batch(i, size int) (*matrix.Dense, []float64) {
	from := i * size
	to := from + size
	if to > d.X.Rows() {
		to = d.X.Rows()
	}
	return d.X.SliceRows(from, to), d.Y[from:to]
}

// Sparsity reports nnz/total of the feature matrix (Table 5 definition).
func (d *Dataset) Sparsity() float64 { return d.X.Sparsity() }
