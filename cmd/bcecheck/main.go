// Command bcecheck is the hot-loop bounds-check gate: it compiles the
// kernel packages with -d=ssa/check_bce, normalizes the compiler's
// bounds-check inventory, and diffs it against the committed golden
// baseline (BCE_BASELINE.txt at the module root).
//
// The decode and multiply kernels in internal/core and internal/bitpack
// are written so the compiler can prove their index expressions in
// bounds; a new IsInBounds/IsSliceInBounds site means a kernel loop
// regressed into per-element checking, which silently costs throughput
// without failing any test. The gate turns that into a CI failure.
//
// Usage:
//
//	bcecheck              # diff against the baseline; exit 1 on any change
//	bcecheck -update      # rewrite the baseline to match the current tree
//	bcecheck -o out.txt   # also write the normalized inventory to a file
//
// A legitimate change (a new kernel, a rewritten loop) is recorded by
// running bcecheck -update and committing the refreshed baseline, which
// makes the diff reviewable like any other golden file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"toc/internal/bce"
)

// kernelPackages are the import paths whose bounds-check inventory is
// pinned. Keep in sync with the README's "Static analysis" section.
var kernelPackages = []string{
	"toc/internal/core",
	"toc/internal/bitpack",
}

func main() {
	baselineFlag := flag.String("baseline", "", "baseline file (default BCE_BASELINE.txt at the module root)")
	update := flag.Bool("update", false, "rewrite the baseline from the current tree instead of diffing")
	out := flag.String("o", "", "also write the normalized inventory to this file")
	flag.Parse()

	root, err := bce.ModuleRoot("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
		os.Exit(2)
	}
	baseline := *baselineFlag
	if baseline == "" {
		baseline = filepath.Join(root, "BCE_BASELINE.txt")
	}

	findings, err := bce.Collect(root, kernelPackages)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
		os.Exit(2)
	}
	report := bce.Format(findings)

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
			os.Exit(2)
		}
	}
	if *update {
		if err := os.WriteFile(baseline, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bcecheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("bcecheck: baseline updated: %d bounds checks in %v\n", len(findings), kernelPackages)
		return
	}

	want, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcecheck: read baseline: %v (run bcecheck -update to create it)\n", err)
		os.Exit(2)
	}
	added, removed := bce.Diff(bce.Parse(string(want)), findings)
	if len(added) == 0 && len(removed) == 0 {
		fmt.Printf("bcecheck: ok: %d bounds checks match %s\n", len(findings), baseline)
		return
	}
	for _, f := range added {
		fmt.Printf("+ %s\n", f)
	}
	for _, f := range removed {
		fmt.Printf("- %s\n", f)
	}
	fmt.Fprintf(os.Stderr,
		"bcecheck: bounds-check inventory changed: %d added, %d removed vs %s\n"+
			"new checks mean a kernel loop lost its bounds-check elimination; fix the loop,\n"+
			"or run bcecheck -update and commit the baseline if the change is intentional\n",
		len(added), len(removed), baseline)
	os.Exit(1)
}
