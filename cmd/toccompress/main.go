// Command toccompress compresses a matrix file with any registered scheme
// and reports ratio breakdowns, or round-trips a file to verify
// losslessness.
//
// The input format is the DEN binary image (see internal/matrix): a
// 16-byte dims header followed by row-major IEEE-754 doubles. Use
// cmd/tocgen to produce dataset files in this format.
//
// Usage:
//
//	toccompress -in batch.den -method TOC -out batch.toc
//	toccompress -in batch.den -report          # ratios for all methods
//	toccompress -in batch.den -method TOC -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"toc"
	"toc/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("toccompress: ")
	var (
		in     = flag.String("in", "", "input matrix file (DEN binary)")
		out    = flag.String("out", "", "output file for the compressed image")
		method = flag.String("method", "TOC", "encoding method")
		report = flag.Bool("report", false, "print ratios for every method")
		verify = flag.Bool("verify", false, "verify lossless round trip")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in (DEN binary matrix file)")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	m, err := matrix.DeserializeDense(raw)
	if err != nil {
		log.Fatalf("%s: %v", *in, err)
	}
	fmt.Printf("%s: %dx%d, %d bytes dense, sparsity %.3f\n",
		*in, m.Rows(), m.Cols(), m.SerializedSize(), m.Sparsity())

	if *report {
		fmt.Printf("%-8s %12s %8s %12s %12s\n", "method", "bytes", "ratio", "comp_ms", "decomp_ms")
		for _, name := range toc.Methods() {
			start := time.Now()
			c := toc.Encode(name, m)
			compMs := time.Since(start).Seconds() * 1e3
			start = time.Now()
			c.Decode()
			decompMs := time.Since(start).Seconds() * 1e3
			fmt.Printf("%-8s %12d %8.2f %12.3f %12.3f\n",
				name, c.CompressedSize(),
				float64(m.SerializedSize())/float64(c.CompressedSize()),
				compMs, decompMs)
		}
		return
	}

	codec, ok := toc.GetCodec(*method)
	if !ok {
		log.Fatalf("unknown method %q (have %v)", *method, toc.Methods())
	}
	c := codec.Encode(m)
	img := c.Serialize()
	fmt.Printf("%s: %d bytes (%.2fx)\n", *method, len(img),
		float64(m.SerializedSize())/float64(len(img)))

	if *verify {
		back, err := codec.Decode(img)
		if err != nil {
			log.Fatalf("decode: %v", err)
		}
		if !back.Decode().Equal(m) {
			log.Fatal("round trip MISMATCH")
		}
		fmt.Println("round trip verified lossless")
	}
	if *out != "" {
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
