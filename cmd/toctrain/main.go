// Command toctrain runs end-to-end MGD training of one model on one
// dataset under one encoding and an optional memory budget — the paper's
// Table 6/7 cell, as a single reproducible run.
//
// Usage:
//
//	toctrain -dataset imagenet -rows 4000 -model lr -method TOC
//	toctrain -dataset mnist -model nn -method CSR -budget 500000
//	toctrain -dataset mnist -model lr -budget 500000 -workers 8
//
// With -workers N (N != 1) the concurrent engine takes over: ingest
// compression is sharded across the pool, training is data-parallel with
// deterministic gradient merging, and spilled batches are read by the
// async prefetcher ahead of the loop. Engine mode merges -group batch
// gradients per parameter update, so its loss trajectory differs from the
// serial per-batch schedule (it depends on -group, never on -workers);
// -group 1 reproduces the serial trajectory exactly. Workers left over
// after the group's slots shard the kernels inside each gradient — the
// parallel left/right multiplications are bitwise identical to the
// sequential ones, so "-workers 8 -group 1" walks the serial trajectory
// on all eight cores.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"toc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("toctrain: ")
	var (
		dataset   = flag.String("dataset", "census", "dataset name")
		rows      = flag.Int("rows", 4000, "dataset rows")
		modelName = flag.String("model", "lr", "model: linreg, lr, svm, nn")
		method    = flag.String("method", "TOC", "mini-batch encoding method")
		batchSize = flag.Int("batch", 250, "mini-batch rows")
		epochs    = flag.Int("epochs", 5, "training epochs")
		lr        = flag.Float64("lr", 0.3, "learning rate")
		budget    = flag.Int64("budget", 0, "memory budget bytes (0 = unlimited)")
		bandwidth = flag.Int64("bw", 150<<20, "simulated disk read bandwidth bytes/s")
		seed      = flag.Int64("seed", 1, "random seed")
		hidden    = flag.Float64("hidden", 0.25, "NN hidden layer scale (1.0 = paper's 200/50)")
		workers   = flag.Int("workers", 1, "worker pool size; != 1 enables the concurrent engine (0 = GOMAXPROCS)")
		prefetch  = flag.Int("prefetch", 16, "spill prefetch window depth (engine mode)")
		group     = flag.Int("group", 8, "engine mode: batch gradients merged per update; changes the update schedule vs serial (1 = serial-equivalent trajectory, with all workers sharding each gradient's kernels)")
	)
	flag.Parse()

	d, err := toc.GenerateDataset(*dataset, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	d.ShuffleOnce(*seed + 1)

	if *budget <= 0 {
		*budget = 1 << 50
	}
	store, err := toc.NewStore("", *method, *budget)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	store.SetReadBandwidth(*bandwidth)

	var eng *toc.Engine
	if *workers != 1 {
		eng = toc.NewEngine(toc.EngineConfig{Workers: *workers, GroupSize: *group, Seed: *seed})
	}
	if eng != nil {
		if err := eng.FillStore(store, d, *batchSize); err != nil {
			log.Fatal(err)
		}
	} else {
		for i := 0; i < d.NumBatches(*batchSize); i++ {
			x, y := d.Batch(i, *batchSize)
			if err := store.Add(x, y); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := store.Stats()
	fmt.Printf("%s %dx%d as %s: %d batches, %d resident (%d KB), %d spilled (%d KB)\n",
		*dataset, d.X.Rows(), d.X.Cols(), *method,
		store.NumBatches(), st.ResidentBatches, st.ResidentBytes/1024,
		st.SpilledBatches, st.SpilledBytes/1024)

	model, err := toc.NewModel(*modelName, d.X.Cols(), d.Classes, *hidden, *seed+7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch  loss      elapsed_ms")
	cb := func(e int, elapsed time.Duration, loss float64) {
		fmt.Printf("%5d  %.6f  %10.1f\n", e+1, loss, elapsed.Seconds()*1e3)
	}
	var res *toc.TrainResult
	var pf *toc.Prefetcher
	if eng != nil {
		gm, ok := model.(toc.GradModel)
		if !ok {
			log.Fatalf("model %q cannot train in parallel", *modelName)
		}
		pf = toc.NewPrefetcher(store, *prefetch, *workers)
		defer pf.Close()
		fmt.Printf("engine: %d workers, group %d, kernel workers %d, prefetch depth %d\n",
			eng.Workers(), eng.GroupSize(), eng.KernelWorkers(store.NumBatches()), *prefetch)
		res = eng.Train(gm, pf, *epochs, *lr, cb)
	} else {
		res = toc.Train(model, store, *epochs, *lr, cb)
	}
	st = store.Stats()
	fmt.Printf("total %.1fms (IO %.1fms, %d spilled reads), final error %.3f\n",
		res.Total.Seconds()*1e3, st.ReadTime.Seconds()*1e3, st.Reads,
		toc.EvaluateError(model, store))
	if pf != nil {
		ps := pf.Stats()
		fmt.Printf("prefetch: %d hits, %d misses, %d issued, stall %.1fms\n",
			ps.Hits, ps.Misses, ps.Prefetched, ps.Stall.Seconds()*1e3)
	}
}
