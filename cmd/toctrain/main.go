// Command toctrain runs end-to-end MGD training of one model on one
// dataset under one encoding and an optional memory budget — the paper's
// Table 6/7 cell, as a single reproducible run.
//
// Usage:
//
//	toctrain -dataset imagenet -rows 4000 -model lr -method TOC
//	toctrain -dataset mnist -model nn -method CSR -budget 500000
//	toctrain -dataset mnist -model lr -budget 500000 -workers 8
//	toctrain -dataset mnist -model lr -budget 500000 -workers 8 \
//	    -spill-shards 4 -disk-model shared-bucket -seek 2ms -evict largest-first
//	toctrain -dataset mnist -model lr -workers 8 -async -staleness 8
//	toctrain -dataset mnist -model lr -workers 8 -async -elastic 200:+4,500:-2
//
// The spill layer is configurable: -spill-shards/-spill-dirs spread the
// spill across files/directories (prefetch reads distinct shards
// concurrently), -disk-model picks how -bw is enforced (per-request:
// aggregate scales with queue depth; shared-bucket: aggregate capped per
// device, with -seek serialized per shard), -evict picks which batches
// stay resident, and -prefetch-bytes bounds the prefetch window by
// compressed bytes.
//
// With -workers N (N != 1) the concurrent engine takes over: ingest
// compression is sharded across the pool, training is data-parallel with
// deterministic gradient merging, and spilled batches are read by the
// async prefetcher ahead of the loop. Engine mode merges -group batch
// gradients per parameter update, so its loss trajectory differs from the
// serial per-batch schedule (it depends on -group, never on -workers);
// -group 1 reproduces the serial trajectory exactly. Workers left over
// after the group's slots shard the kernels inside each gradient — the
// parallel left/right multiplications are bitwise identical to the
// sequential ones, so "-workers 8 -group 1" walks the serial trajectory
// on all eight cores. Each gradient also shares one decode-tree build
// across its kernels (KernelPlan); the run prints the build counter so
// the amortization is visible.
//
// With -async the bounded-staleness engine replaces the group steps:
// every mini-batch gradient is its own parameter update, applied in
// visit order by a single updater that admits a gradient only if its
// parameter snapshot missed at most -staleness updates. There is no
// merge barrier, so one slow batch never idles the other workers;
// -staleness 0 walks the serial trajectory bitwise and -staleness -1
// free-runs Hogwild-style. The run prints the update/rejection counters
// and the observed staleness.
//
// The async pool is elastic and fault tolerant: -elastic applies a
// join/leave schedule ("200:+4,500:-2" adds four workers after 200
// updates and removes two after 500; such runs use delayed gradients so
// the schedule never changes the trajectory), a supervisor replaces
// crashed workers within -restart-budget replacements per
// -restart-window (degrading the pool past it, failing loudly with the
// panic chain once no workers remain), and spilled-batch reads retry
// transient failures with -read-retries attempts backing off from
// -retry-base. The run prints the join/departure, panic/restart and
// storage retry counters.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"math"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"toc"
)

// paramsCRC fingerprints a model's flat parameter vector so two runs can
// be compared for bitwise identity from their output alone.
func paramsCRC(m toc.Model) (uint32, bool) {
	sm, ok := m.(toc.SnapshotModel)
	if !ok {
		return 0, false
	}
	params := make([]float64, sm.NumParams())
	sm.Params(params)
	buf := make([]byte, 8*len(params))
	for i, p := range params {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(p))
	}
	return crc32.ChecksumIEEE(buf), true
}

// distConfig carries the flag values the distributed mode needs.
type distConfig struct {
	d          *toc.Dataset
	n          int
	codecSpec  string
	linkMbps   float64
	modelName  string
	method     string
	batchSize  int
	epochs     int
	lr, hidden float64
	seed       int64
	staleness  int
	ckpt       *toc.CheckpointWriter
	ckptEvery  int
	resume     *toc.CheckpointState
	ckptDir    string
}

// runDist trains with the parameter-server stack: one DistServer owns
// the model and N trainers exchange codec-compressed gradients with it
// over loopback TCP — the full net/rpc wire path, in one process.
func runDist(cfg distConfig) {
	codec, err := toc.ParseGradCodec(cfg.codecSpec, cfg.seed)
	if err != nil {
		log.Fatal(err)
	}
	model, err := toc.NewModel(cfg.modelName, cfg.d.X.Cols(), cfg.d.Classes, cfg.hidden, cfg.seed+7)
	if err != nil {
		log.Fatal(err)
	}
	sm, ok := model.(toc.SnapshotModel)
	if !ok {
		log.Fatalf("model %q cannot train distributed", cfg.modelName)
	}
	src := toc.NewMemorySource(cfg.d, cfg.batchSize, cfg.method)
	link := toc.NewDistLinkMbps(cfg.linkMbps)
	srv, err := toc.NewDistServer(toc.DistServerConfig{
		Epochs: cfg.epochs, NumBatches: src.NumBatches(), LR: cfg.lr,
		Seed: cfg.seed, Staleness: cfg.staleness, Codec: codec, Link: link,
		Checkpoint: cfg.ckpt, CheckpointEvery: cfg.ckptEvery, Resume: cfg.resume,
	}, sm)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	if cfg.ckpt != nil {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			log.Print("signal received: halting after the in-flight updates")
			srv.Halt()
		}()
	}

	bound := "unbounded"
	if cfg.staleness >= 0 {
		bound = fmt.Sprint(cfg.staleness)
	}
	linkDesc := "unmetered link"
	if link != nil {
		linkDesc = fmt.Sprintf("%.0f Mbit/s link", cfg.linkMbps)
	}
	fmt.Printf("dist: %d trainers, codec %s, staleness %s, %s, %d batches/epoch\n",
		cfg.n, codec.Name(), bound, linkDesc, src.NumBatches())

	// Trainers are goroutines dialing real TCP connections; a trainer
	// model is a fresh clone (the Join handshake overwrites its
	// parameters with the server image anyway).
	errs := make([]error, cfg.n)
	trainers := make([]*toc.DistTrainer, cfg.n)
	var wg sync.WaitGroup
	for i := 0; i < cfg.n; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		trainers[i] = toc.NewDistTrainer(conn, sm.Clone(), src,
			toc.DistTrainerConfig{Codec: codec.Clone()})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = trainers[i].Run()
		}(i)
	}
	res, werr := srv.Wait()
	halted := errors.Is(werr, toc.ErrHalted)
	if werr != nil && !halted {
		log.Fatal(werr)
	}
	ln.Close()
	wg.Wait()

	fmt.Println("epoch  loss      elapsed_ms")
	for e, loss := range res.EpochLoss {
		fmt.Printf("%5d  %.6f  %10.1f\n", e+1, loss, res.EpochTime[e].Seconds()*1e3)
	}
	crashed := 0
	for i, e := range errs {
		if e != nil {
			crashed++
			fmt.Printf("trainer %d crashed: %v\n", i, e)
		}
	}
	st := srv.Stats()
	fmt.Printf("dist: %d updates, %d rejected, %d duplicates, staleness max %d mean %.2f\n",
		st.Updates, st.Rejected, st.Duplicates, st.MaxStaleness, st.MeanStaleness())
	fmt.Printf("dist crash recovery: %d trainers crashed, %d disconnects, %d positions reassigned, run completed\n",
		crashed, st.Disconnects, st.Reassigned)
	fmt.Printf("dist wire: %d KB up, %d KB down, ratio %.4f of dense\n",
		st.UpBytes/1024, st.DownBytes/1024, st.WireRatio())
	fmt.Printf("total %.1fms, final error %.3f\n",
		res.Total.Seconds()*1e3, toc.EvaluateError(model, src))
	if crc, ok := paramsCRC(model); ok {
		fmt.Printf("final params crc32 %08x\n", crc)
	}
	if halted {
		if err := cfg.ckpt.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("halted: final checkpoint in %s; rerun with -resume to continue\n", cfg.ckptDir)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("toctrain: ")
	var (
		dataset    = flag.String("dataset", "census", "dataset name")
		rows       = flag.Int("rows", 4000, "dataset rows")
		modelName  = flag.String("model", "lr", "model: linreg, lr, svm, nn")
		method     = flag.String("method", "TOC", "mini-batch encoding method")
		batchSize  = flag.Int("batch", 250, "mini-batch rows")
		epochs     = flag.Int("epochs", 5, "training epochs")
		lr         = flag.Float64("lr", 0.3, "learning rate")
		budget     = flag.Int64("budget", 0, "memory budget bytes (0 = unlimited)")
		bandwidth  = flag.Int64("bw", 150<<20, "simulated disk read bandwidth bytes/s")
		seed       = flag.Int64("seed", 1, "random seed")
		hidden     = flag.Float64("hidden", 0.25, "NN hidden layer scale (1.0 = paper's 200/50)")
		workers    = flag.Int("workers", 1, "worker pool size; != 1 enables the concurrent engine (0 = GOMAXPROCS)")
		prefetch   = flag.Int("prefetch", 16, "spill prefetch window depth in batches (engine mode)")
		prefBytes  = flag.Int64("prefetch-bytes", 0, "bound the prefetch window by compressed bytes instead of only batch count (0 = off)")
		group      = flag.Int("group", 8, "engine mode: batch gradients merged per update; changes the update schedule vs serial (1 = serial-equivalent trajectory, with all workers sharding each gradient's kernels)")
		async      = flag.Bool("async", false, "train with the asynchronous bounded-staleness engine instead of synchronous group steps")
		staleness  = flag.Int("staleness", 8, "async mode: max parameter updates a gradient's snapshot may miss (0 = bitwise-serial trajectory, -1 = unbounded Hogwild-style free-running)")
		elastic    = flag.String("elastic", "", "async mode: worker join/leave schedule as step:±delta pairs, e.g. 200:+4,500:-2")
		restartBud = flag.Int("restart-budget", 0, "async mode: crashed-worker replacements allowed per -restart-window (0 = default, negative = never replace)")
		restartWin = flag.Duration("restart-window", 0, "async mode: sliding window the restart budget counts replacements in (0 = default)")
		readRetry  = flag.Int("read-retries", 0, "spilled-read attempts before a read fails permanently (0 = store default)")
		retryBase  = flag.Duration("retry-base", 0, "initial spilled-read retry backoff, doubled per attempt with seeded jitter (0 = store default)")
		spillShard = flag.Int("spill-shards", 0, "number of spill files, read concurrently by the prefetcher (0 = one, or one per -spill-dirs entry)")
		spillDirs  = flag.String("spill-dirs", "", "comma-separated directories for spill shards (models distinct devices)")
		diskModel  = flag.String("disk-model", "per-request", "bandwidth enforcement: per-request (aggregate scales with queue depth) or shared-bucket (aggregate capped per device)")
		seek       = flag.Duration("seek", 0, "simulated per-read access latency (e.g. 2ms; serialized per shard under shared-bucket)")
		evict      = flag.String("evict", "first-fit", "spill residency policy: first-fit, largest-first or access-order")
		ckptDir    = flag.String("checkpoint-dir", "", "write crash-safe training checkpoints (and the spill-store manifest) into this directory")
		ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint cadence in parameter updates (0 = once per epoch)")
		resumeRun  = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir, recovering the spill store from its manifest instead of re-ingesting")
		faults     = flag.String("faultpoint", "", "arm fault-injection points, e.g. checkpoint.rename=crash:2 (testing only)")
		distN      = flag.Int("dist", 0, "run distributed: N trainer processes exchanging compressed gradients with a parameter server over loopback TCP (uses -staleness as the admission bound)")
		codecSpec  = flag.String("codec", "dense", "dist mode: gradient codec — dense, topk:<ratio> or dsq:<bits>")
		linkMbps   = flag.Float64("link-mbps", 0, "dist mode: simulated symmetric link bandwidth in Mbit/s (0 = unmetered)")
	)
	flag.Parse()
	if *faults != "" {
		if err := toc.ArmFaultpoints(*faults); err != nil {
			log.Fatal(err)
		}
	}
	if *resumeRun && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	elasticEvents, err := toc.ParseElasticSchedule(*elastic)
	if err != nil {
		log.Fatal(err)
	}
	if len(elasticEvents) > 0 && !*async {
		log.Fatal("-elastic needs -async: only the bounded-staleness engine resizes mid-run")
	}
	if *distN > 0 && *async {
		log.Fatal("-dist and -async are exclusive: the parameter server replaces the local async engine")
	}
	if *distN == 0 && (*codecSpec != "dense" || *linkMbps != 0) {
		log.Fatal("-codec and -link-mbps need -dist")
	}

	d, err := toc.GenerateDataset(*dataset, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	d.ShuffleOnce(*seed + 1)

	if *budget <= 0 {
		*budget = 1 << 50
	}
	bwModel, err := toc.ParseBandwidthModel(*diskModel)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := toc.NewEvictionPolicy(*evict)
	if err != nil {
		log.Fatal(err)
	}
	opts := []toc.StoreOption{
		toc.WithShards(*spillShard),
		toc.WithBandwidthModel(bwModel),
		toc.WithReadBandwidth(*bandwidth),
		toc.WithAccessLatency(*seek),
		toc.WithEviction(policy),
	}
	if *spillDirs != "" {
		opts = append(opts, toc.WithShardDirs(strings.Split(*spillDirs, ",")...))
	}
	if *readRetry != 0 || *retryBase != 0 {
		rp := toc.DefaultRetryPolicy()
		if *readRetry != 0 {
			rp.Attempts = *readRetry
		}
		if *retryBase != 0 {
			rp.Base = *retryBase
			if rp.Max < rp.Base {
				rp.Max = rp.Base
			}
		}
		rp.Seed = *seed
		opts = append(opts, toc.WithReadRetry(rp))
	}
	// Checkpointing: snapshots and the spill-store manifest live in
	// -checkpoint-dir. A resume recovers the store from the manifest
	// (shard files reopened and CRC-verified, no re-ingest); a crash
	// before the manifest rename just re-ingests — either way the
	// trajectory is unchanged.
	var ckpt *toc.CheckpointWriter
	var resumeState *toc.CheckpointState
	manifest := ""
	if *ckptDir != "" {
		manifest = filepath.Join(*ckptDir, "store.manifest")
		var err error
		if ckpt, err = toc.NewCheckpointWriter(*ckptDir); err != nil {
			log.Fatal(err)
		}
		defer ckpt.Close()
		if *resumeRun {
			st, err := toc.LatestCheckpoint(*ckptDir)
			switch {
			case err == nil:
				resumeState = st
				fmt.Printf("resuming from checkpoint step %d (epoch %d)\n", st.Step(), st.Epoch)
			case errors.Is(err, os.ErrNotExist):
				fmt.Println("no checkpoint yet; starting fresh")
			default:
				log.Fatal(err) // corrupt newest checkpoint: loud, no fallback
			}
		}
	}

	if *distN > 0 {
		runDist(distConfig{
			d: d, n: *distN, codecSpec: *codecSpec, linkMbps: *linkMbps,
			modelName: *modelName, method: *method, batchSize: *batchSize,
			epochs: *epochs, lr: *lr, hidden: *hidden, seed: *seed,
			staleness: *staleness, ckpt: ckpt, ckptEvery: *ckptEvery,
			resume: resumeState, ckptDir: *ckptDir,
		})
		return
	}

	var store *toc.Store
	recovered := false
	if *resumeRun && manifest != "" {
		if _, statErr := os.Stat(manifest); statErr == nil {
			s, err := toc.OpenStore(manifest, opts...)
			if err != nil {
				log.Fatal(err) // truncated/corrupt shard or manifest: loud
			}
			store = s
			recovered = true
			fmt.Printf("recovered spill store from %s\n", manifest)
		}
	}
	if store == nil {
		s, err := toc.NewStore("", *method, *budget, opts...)
		if err != nil {
			log.Fatal(err)
		}
		store = s
	}
	defer store.Close()

	var eng *toc.Engine
	var aeng *toc.AsyncEngine
	if *async {
		aeng = toc.NewAsyncEngine(toc.AsyncConfig{
			Workers: *workers, Staleness: *staleness, Seed: *seed,
			Deterministic: ckpt != nil || len(elasticEvents) > 0,
			RestartBudget: *restartBud, RestartWindow: *restartWin,
			Checkpoint: ckpt, CheckpointEvery: *ckptEvery,
		})
		if len(elasticEvents) > 0 {
			aeng.SetOnStep(aeng.ElasticHook(elasticEvents, nil))
		}
	} else if *workers != 1 || ckpt != nil {
		// Checkpointing runs through the engine even single-threaded:
		// the engine owns the resumable update schedule.
		eng = toc.NewEngine(toc.EngineConfig{
			Workers: *workers, GroupSize: *group, Seed: *seed,
			Checkpoint: ckpt, CheckpointEvery: *ckptEvery,
		})
	}
	if !recovered {
		switch {
		case aeng != nil:
			if err := aeng.FillStore(store, d, *batchSize); err != nil {
				log.Fatal(err)
			}
		case eng != nil:
			if err := eng.FillStore(store, d, *batchSize); err != nil {
				log.Fatal(err)
			}
		default:
			for i := 0; i < d.NumBatches(*batchSize); i++ {
				x, y := d.Batch(i, *batchSize)
				if err := store.Add(x, y); err != nil {
					log.Fatal(err)
				}
			}
		}
		if manifest != "" {
			if err := store.WriteManifest(manifest); err != nil {
				log.Fatal(err)
			}
		}
	}

	// SIGINT/SIGTERM halt the run after the in-flight update: a final
	// checkpoint is written synchronously, so a later -resume continues
	// the exact trajectory.
	if ckpt != nil {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			log.Print("signal received: halting after the in-flight update")
			if aeng != nil {
				aeng.Halt()
			} else if eng != nil {
				eng.Halt()
			}
		}()
	}
	st := store.Stats()
	fmt.Printf("%s %dx%d as %s: %d batches, %d resident (%d KB), %d spilled (%d KB)\n",
		*dataset, d.X.Rows(), d.X.Cols(), *method,
		store.NumBatches(), st.ResidentBatches, st.ResidentBytes/1024,
		st.SpilledBatches, st.SpilledBytes/1024)
	if store.Spilled() {
		fmt.Printf("spill: %d shards, %s disk model, %s eviction (%d evicted), seek %v\n",
			store.Shards(), bwModel, store.EvictionPolicyName(), st.Evictions, *seek)
	}

	model, err := toc.NewModel(*modelName, d.X.Cols(), d.Classes, *hidden, *seed+7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch  loss      elapsed_ms")
	cb := func(e int, elapsed time.Duration, loss float64) {
		fmt.Printf("%5d  %.6f  %10.1f\n", e+1, loss, elapsed.Seconds()*1e3)
	}
	var res *toc.TrainResult
	var pf *toc.Prefetcher
	halted := false
	treeBuilds := toc.DecodeTreeBuilds()
	switch {
	case aeng != nil:
		sm, ok := model.(toc.SnapshotModel)
		if !ok {
			log.Fatalf("model %q cannot train asynchronously", *modelName)
		}
		pf = aeng.NewPrefetcher(store, *prefetch, *prefBytes)
		defer pf.Close()
		bound := "unbounded"
		if aeng.Staleness() >= 0 {
			bound = fmt.Sprint(aeng.Staleness())
		}
		fmt.Printf("async engine: %d workers, staleness %s, kernel workers %d, prefetch depth %d (byte budget %d)\n",
			aeng.Workers(), bound, aeng.KernelWorkers(), *prefetch, *prefBytes)
		res, err = aeng.TrainFrom(sm, pf, *epochs, *lr, cb, resumeState)
		if errors.Is(err, toc.ErrHalted) {
			halted = true
		} else if err != nil {
			log.Fatal(err)
		}
		as := aeng.Stats()
		fmt.Printf("async: %d updates, %d rejected, staleness max %d mean %.2f\n",
			as.Updates, as.Rejected, as.MaxStaleness, as.MeanStaleness())
		fmt.Printf("elastic: %d joined, %d departed, final pool %d\n",
			as.Joined, as.Departed,
			int64(aeng.Workers())+as.Joined-as.Departed-as.Degraded)
		fmt.Printf("crash recovery: %d worker panics, %d restarts, %d degraded\n",
			as.WorkerPanics, as.Restarts, as.Degraded)
	case eng != nil:
		gm, ok := model.(toc.GradModel)
		if !ok {
			log.Fatalf("model %q cannot train in parallel", *modelName)
		}
		pf = eng.NewPrefetcher(store, *prefetch, *prefBytes)
		defer pf.Close()
		fmt.Printf("engine: %d workers, group %d, kernel workers %d, prefetch depth %d (byte budget %d)\n",
			eng.Workers(), eng.GroupSize(), eng.KernelWorkers(store.NumBatches()), *prefetch, *prefBytes)
		res, err = eng.TrainFrom(gm, pf, *epochs, *lr, cb, resumeState)
		if errors.Is(err, toc.ErrHalted) {
			halted = true
		} else if err != nil {
			log.Fatal(err)
		}
	default:
		res = toc.Train(model, store, *epochs, *lr, cb)
	}
	treeBuilds = toc.DecodeTreeBuilds() - treeBuilds
	st = store.Stats()
	fmt.Printf("total %.1fms (IO %.1fms, %d spilled reads), final error %.3f\n",
		res.Total.Seconds()*1e3, st.ReadTime.Seconds()*1e3, st.Reads,
		toc.EvaluateError(model, store))
	if st.Retries > 0 || st.FailedReads > 0 {
		fmt.Printf("storage retries: %d absorbed, %d reads failed permanently\n",
			st.Retries, st.FailedReads)
	}
	fmt.Printf("decode-tree builds during training: %d (plan reuse: one per batch-gradient, not one per op)\n",
		treeBuilds)
	if pf != nil {
		ps := pf.Stats()
		fmt.Printf("prefetch: %d hits, %d misses, %d issued, stall %.1fms\n",
			ps.Hits, ps.Misses, ps.Prefetched, ps.Stall.Seconds()*1e3)
	}
	if crc, ok := paramsCRC(model); ok {
		fmt.Printf("final params crc32 %08x\n", crc)
	}
	if halted {
		if err := ckpt.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("halted: final checkpoint in %s; rerun with -resume to continue\n", *ckptDir)
	}
}
