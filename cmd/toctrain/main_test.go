package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// These tests drive the built binary end to end: a SIGTERM mid-run must
// exit cleanly with a final checkpoint, and a -resume run must land on
// the bitwise-identical final parameters (compared via the printed
// params CRC). A delay faultpoint stretches every update so the signal
// reliably lands mid-training regardless of machine speed.

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "toctrain")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var crcRe = regexp.MustCompile(`final params crc32 ([0-9a-f]{8})`)

func paramsCRCOf(t *testing.T, out string) string {
	t.Helper()
	m := crcRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("output has no params CRC line:\n%s", out)
	}
	return m[1]
}

func runToctrain(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("toctrain %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestSigtermHaltsWithCheckpointAndResumeMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildBinary(t)
	args := []string{
		"-dataset", "census", "-rows", "1000", "-model", "lr",
		"-budget", "20000", "-workers", "2", "-group", "2", "-epochs", "4",
	}

	// Uninterrupted baseline with the same checkpointed configuration.
	base := runToctrain(t, bin, append(args, "-checkpoint-dir", t.TempDir())...)
	baseCRC := paramsCRCOf(t, base)

	// Slowed run, killed by SIGTERM mid-training.
	dir := t.TempDir()
	cmd := exec.Command(bin, append(args,
		"-checkpoint-dir", dir, "-faultpoint", "engine.sync.applied=delay:200ms")...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("signalled run did not exit cleanly: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "halted: final checkpoint") {
		t.Fatalf("signalled run did not report a final checkpoint:\n%s", buf.String())
	}

	// Resume must finish the run on the exact baseline trajectory.
	resumed := runToctrain(t, bin, append(args, "-checkpoint-dir", dir, "-resume")...)
	if !strings.Contains(resumed, "resuming from checkpoint") {
		t.Fatalf("resume run did not pick up the checkpoint:\n%s", resumed)
	}
	if !strings.Contains(resumed, "recovered spill store") {
		t.Fatalf("resume run did not recover the store from its manifest:\n%s", resumed)
	}
	if got := paramsCRCOf(t, resumed); got != baseCRC {
		t.Fatalf("resumed params CRC %s, baseline %s (not bitwise identical)", got, baseCRC)
	}
}

func TestCrashFaultpointThenResumeMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildBinary(t)
	args := []string{
		"-dataset", "census", "-rows", "1000", "-model", "lr",
		"-budget", "20000", "-workers", "2", "-group", "2", "-epochs", "4",
	}
	base := runToctrain(t, bin, append(args, "-checkpoint-dir", t.TempDir())...)
	baseCRC := paramsCRCOf(t, base)

	dir := t.TempDir()
	out, err := exec.Command(bin, append(args,
		"-checkpoint-dir", dir, "-faultpoint", "checkpoint.rename=crash:2")...).CombinedOutput()
	if err == nil {
		t.Fatalf("armed crash faultpoint did not kill the run:\n%s", out)
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) || ee.ExitCode() != 7 {
		t.Fatalf("crash run exited %v, want crash code 7\n%s", err, out)
	}

	resumed := runToctrain(t, bin, append(args, "-checkpoint-dir", dir, "-resume")...)
	if got := paramsCRCOf(t, resumed); got != baseCRC {
		t.Fatalf("resumed params CRC %s, baseline %s (not bitwise identical)", got, baseCRC)
	}
}

// A single dense trainer behind the parameter server must walk the
// exact trajectory of the local async engine: same final params CRC as
// "-async -workers 1" at the same staleness bound.
func TestDistSingleDenseMatchesAsyncCRC(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildBinary(t)
	args := []string{
		"-dataset", "mnist", "-rows", "400", "-model", "lr",
		"-epochs", "3", "-seed", "11", "-staleness", "0",
	}
	local := runToctrain(t, bin, append(args, "-async", "-workers", "1")...)
	dist := runToctrain(t, bin, append(args, "-dist", "1")...)
	lc, dc := paramsCRCOf(t, local), paramsCRCOf(t, dist)
	if lc != dc {
		t.Fatalf("dist dense CRC %s, local async CRC %s (not bitwise identical)", dc, lc)
	}
	if !strings.Contains(dist, "0 rejected") {
		t.Fatalf("single dense trainer saw rejections:\n%s", dist)
	}
}

// A trainer killed mid-run by a faultpoint must not sink the run: the
// server requeues its positions and the survivor finishes the schedule.
// The printed counters are what the CI dist job grep-gates.
func TestDistTrainerCrashRunCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildBinary(t)
	out := runToctrain(t, bin,
		"-dataset", "mnist", "-rows", "400", "-model", "lr",
		"-epochs", "3", "-seed", "11", "-staleness", "2",
		"-dist", "2", "-codec", "topk:0.05",
		"-faultpoint", "dist.trainer.compute=errorAfter:4")
	for _, want := range []string{
		"1 trainers crashed",
		"1 disconnects",
		"positions reassigned, run completed",
		"final params crc32",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("crash run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0 positions reassigned") {
		t.Fatalf("crash at an assigned position must reassign it:\n%s", out)
	}
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}
