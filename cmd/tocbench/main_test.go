package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenCSVRefusesExistingByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	f, err := openCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("experiment,metric\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := openCSV(path, false); !os.IsExist(err) {
		t.Fatalf("reopening without -force: err = %v, want an exists error", err)
	}
	// The refused open must leave the original contents alone.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "experiment,metric\n" {
		t.Fatalf("existing file mutated by a refused open: %q", got)
	}
}

func TestOpenCSVForceTruncatesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := os.WriteFile(path, []byte("stale baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := openCSV(path, true)
	if err != nil {
		t.Fatalf("-force open failed: %v", err)
	}
	if _, err := f.WriteString("fresh\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh\n" {
		t.Fatalf("file = %q, want stale contents truncated away", got)
	}
	// -force on a fresh path still creates the file.
	fresh := filepath.Join(t.TempDir(), "new.csv")
	f2, err := openCSV(fresh, true)
	if err != nil {
		t.Fatalf("-force on a new path failed: %v", err)
	}
	f2.Close()
}
