package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenResultRefusesExistingByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	f, err := openResult(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("experiment,metric\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := openResult(path, false); !os.IsExist(err) {
		t.Fatalf("reopening without -force: err = %v, want an exists error", err)
	}
	// The refused open must leave the original contents alone.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "experiment,metric\n" {
		t.Fatalf("existing file mutated by a refused open: %q", got)
	}
}

func TestOpenResultForceTruncatesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := os.WriteFile(path, []byte("stale baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := openResult(path, true)
	if err != nil {
		t.Fatalf("-force open failed: %v", err)
	}
	if _, err := f.WriteString("fresh\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh\n" {
		t.Fatalf("file = %q, want stale contents truncated away", got)
	}
	// -force on a fresh path still creates the file.
	fresh := filepath.Join(t.TempDir(), "new.csv")
	f2, err := openResult(fresh, true)
	if err != nil {
		t.Fatalf("-force on a new path failed: %v", err)
	}
	f2.Close()
}

func TestCPUProfileWritesValidProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := startCPUProfile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	stop()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// pprof profiles are gzip-compressed protobufs: check the magic.
	if len(got) < 2 || got[0] != 0x1f || got[1] != 0x8b {
		t.Fatalf("profile does not look like gzip'd pprof data (%d bytes)", len(got))
	}
	// A second profile at the same path must refuse without -force.
	if _, err := startCPUProfile(path, false); !os.IsExist(err) {
		t.Fatalf("reprofile without -force: err = %v, want an exists error", err)
	}
}

func TestMemProfileRefusesExistingByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := writeMemProfile(path, false); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
	if err := writeMemProfile(path, false); !os.IsExist(err) {
		t.Fatalf("rewrite without -force: err = %v, want an exists error", err)
	}
	if err := writeMemProfile(path, true); err != nil {
		t.Fatalf("rewrite with -force failed: %v", err)
	}
}
