// Command tocbench reproduces the paper's tables and figures.
//
// Usage:
//
//	tocbench -list
//	tocbench -run fig5
//	tocbench -run all -scale 0.5
//
// Each experiment prints a paper-style table; EXPERIMENTS.md records the
// expected shapes. -scale trades runtime for fidelity (1.0 = default).
package main

import (
	"flag"
	"fmt"
	"os"

	"toc/internal/bench"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (fig2, fig5, ..., table6, table7, scaling) or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "extra worker count for the scaling experiment's sweep (all regimes, incl. the left-mul kernels)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("  %-8s %s\n", id, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: tocbench -run <id>")
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Workers = *workers

	ids := []string{*run}
	if *run == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tocbench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tocbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
	}
}
