// Command tocbench reproduces the paper's tables and figures.
//
// Usage:
//
//	tocbench -list
//	tocbench -run fig5
//	tocbench -run all -scale 0.5
//	tocbench -run spillscale -csv spillscale.csv
//	tocbench -run kernelspeed -cpuprofile kernels.pprof
//
// Each experiment prints a paper-style table; EXPERIMENTS.md records the
// expected shapes. -scale trades runtime for fidelity (1.0 = default).
// -csv additionally appends every table to a CSV file, which is what CI
// uploads as an artifact so BENCH_* trajectories compare across PRs.
// -cpuprofile and -memprofile capture pprof profiles of the run itself —
// the loop that found this repo's decode-kernel hotspots — without
// having to wrap an experiment in a go test harness.
//
// The spill experiments (scaling's spill regime, spillscale, the
// out-of-core table cells) take the storage layer's knobs:
// -spill-shards/-spill-dirs spread the spill, -disk-model picks how the
// simulated bandwidth is enforced (per-request vs shared-bucket) and
// -evict picks the residency policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"toc/internal/bench"
)

// openResult opens an output file (-csv, -cpuprofile, -memprofile). The
// default is O_EXCL — never silently clobber an existing results file,
// CI baselines compare against these; force opts into truncating it
// instead.
func openResult(path string, force bool) (*os.File, error) {
	mode := os.O_WRONLY | os.O_CREATE | os.O_EXCL
	if force {
		mode = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	return os.OpenFile(path, mode, 0o644)
}

// startCPUProfile begins profiling into path under the same overwrite
// refusal as every other output. The returned stop flushes and closes
// the profile; it must run before the process exits, including on
// experiment failure, so a partial run still leaves a readable profile.
func startCPUProfile(path string, force bool) (stop func(), err error) {
	f, err := openResult(path, force)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the heap to path after a run. The GC pass
// first drops already-dead objects so the profile shows what the
// experiments actually retain, not transient garbage.
func writeMemProfile(path string, force bool) error {
	f, err := openResult(path, force)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runExperiments executes every experiment in order, rendering each
// table to stdout and, when csvFile is non-nil, appending it there.
func runExperiments(experiments []bench.Experiment, cfg bench.Config, csvFile *os.File) error {
	for _, e := range experiments {
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %v", e.ID, err)
		}
		table.Render(os.Stdout)
		if csvFile != nil {
			if err := table.RenderCSV(csvFile); err != nil {
				return fmt.Errorf("csv: %v", err)
			}
		}
	}
	return nil
}

func main() {
	var (
		run        = flag.String("run", "", "experiment id (fig2, fig5, ..., table6, table7, scaling, spillscale) or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "extra worker count for the scaling experiments' sweeps")
		spillShard = flag.Int("spill-shards", 0, "spill shard count for the out-of-core experiments; spillscale adds it to its 1/2/4 sweep")
		spillDirs  = flag.String("spill-dirs", "", "comma-separated spill shard directories (models distinct devices)")
		diskModel  = flag.String("disk-model", "", "override the spill experiments' bandwidth model: per-request or shared-bucket")
		evict      = flag.String("evict", "", "override the spill experiments' residency policy: first-fit, largest-first or access-order")
		staleness  = flag.Int("staleness", 0, "extra staleness bound for the asyncscale sweep (0 keeps the default sweep; negative adds the unbounded regime)")
		csvPath    = flag.String("csv", "", "also append every table to this CSV file (refuses to overwrite an existing file)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (refuses to overwrite an existing file)")
		memProfile = flag.String("memprofile", "", "write a post-run heap profile to this file (refuses to overwrite an existing file)")
		force      = flag.Bool("force", false, "with -csv/-cpuprofile/-memprofile, truncate and overwrite an existing results file")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: tocbench -run <id>")
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.SpillShards = *spillShard
	cfg.DiskModel = *diskModel
	cfg.Evict = *evict
	cfg.Staleness = *staleness
	if *spillDirs != "" {
		cfg.SpillDirs = strings.Split(*spillDirs, ",")
	}

	// Resolve every experiment id before any side effects, so a typo'd
	// -run cannot leave a truncated CSV or empty profile behind.
	ids := []string{*run}
	if *run == "all" {
		ids = bench.IDs()
	}
	experiments := make([]bench.Experiment, len(ids))
	for i, id := range ids {
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tocbench: unknown experiment %q; valid ids: %s (or 'all')\n",
				id, strings.Join(bench.IDs(), ", "))
			os.Exit(1)
		}
		experiments[i] = e
	}

	failOpen := func(what, path string, err error) {
		if os.IsExist(err) {
			fmt.Fprintf(os.Stderr, "tocbench: refusing to overwrite existing %s (rerun with -force, delete it, or pick another %s path)\n", path, what)
		} else {
			fmt.Fprintf(os.Stderr, "tocbench: %s: %v\n", what, err)
		}
		os.Exit(1)
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := openResult(*csvPath, *force)
		if err != nil {
			failOpen("-csv", *csvPath, err)
		}
		defer f.Close()
		csvFile = f
	}

	var stopCPU func()
	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile, *force)
		if err != nil {
			failOpen("-cpuprofile", *cpuProfile, err)
		}
		stopCPU = stop
	}

	runErr := runExperiments(experiments, cfg, csvFile)
	if stopCPU != nil {
		stopCPU()
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tocbench: %v\n", runErr)
		os.Exit(1)
	}

	if *memProfile != "" {
		if err := writeMemProfile(*memProfile, *force); err != nil {
			failOpen("-memprofile", *memProfile, err)
		}
	}
}
