// Command tocgen generates the synthetic evaluation datasets to disk in
// the DEN binary format (plus a labels file of float64 class ids), for
// use with toccompress and toctrain.
//
// Usage:
//
//	tocgen -dataset kdd99 -rows 10000 -out kdd99.den
//	tocgen -list
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"toc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tocgen: ")
	var (
		dataset = flag.String("dataset", "census", "dataset name")
		rows    = flag.Int("rows", 10000, "number of rows")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default <dataset>.den)")
		list    = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range toc.DatasetNames() {
			fmt.Println(n)
		}
		return
	}
	if *out == "" {
		*out = *dataset + ".den"
	}
	d, err := toc.GenerateDataset(*dataset, *rows, *seed)
	if err != nil {
		log.Fatal(err)
	}
	d.ShuffleOnce(*seed + 1)
	if err := os.WriteFile(*out, d.X.Serialize(), 0o644); err != nil {
		log.Fatal(err)
	}
	labels := make([]byte, 8*len(d.Y))
	for i, y := range d.Y {
		binary.LittleEndian.PutUint64(labels[8*i:], math.Float64bits(y))
	}
	labelPath := *out + ".labels"
	if err := os.WriteFile(labelPath, labels, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %dx%d, sparsity %.3f, %d classes -> %s (+%s)\n",
		*dataset, d.X.Rows(), d.X.Cols(), d.Sparsity(), d.Classes, *out, labelPath)
}
