// Command toclint is the repo's multichecker: it runs the custom
// analyzers in internal/analysis over the given packages and fails when
// any invariant they enforce is violated.
//
// Usage:
//
//	toclint ./...
//	toclint ./internal/storage ./internal/engine
//
// Analyzers:
//
//   - guardedby — fields annotated //toc:guardedby <mu> are only
//     accessed with the named mutex held (every package).
//   - detcheck — determinism-critical packages (internal/core, engine,
//     ml, checkpoint) never iterate maps with externally visible writes
//     and never call time.Now or the global math/rand source outside
//     //toc:timing functions.
//
// The companion bounds-check gate is cmd/bcecheck; see the README's
// "Static analysis" section for the annotation conventions.
package main

import (
	"flag"
	"fmt"
	"os"

	"toc/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: toclint [packages]\n\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "%s: %s\n\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "toclint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.Analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "toclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "toclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
