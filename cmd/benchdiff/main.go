// Command benchdiff is the CI benchmark-regression gate: it compares the
// CSV tables cmd/tocbench emits (spillscale, rightmul, asyncscale, ...)
// against committed BENCH_<experiment>.json baselines and fails when any
// row's throughput metric regresses beyond the threshold.
//
// Usage:
//
//	benchdiff -baselines . spillscale.csv rightmul.csv asyncscale.csv
//	benchdiff -baselines . -update asyncscale.csv   # (re)write baselines
//
// Baselines pin the *relative* metrics (the speedup columns), which
// transfer across runners far better than absolute milliseconds: a CSV
// row regresses when its speedup falls more than threshold (default 20%)
// below the committed value (or rises above it, for lower-is-better
// metrics). A baseline may gate extra columns of the same table beyond
// its primary metric (netscale gates speedup_vs_dense AND wire_ratio:
// a codec that got fast by shipping more bytes is still a regression).
// Rows present in the baseline but missing from the CSVs fail the gate
// too — a silently dropped sweep point is a regression in coverage. New
// rows not yet in the baseline are reported but do not fail (as GitHub
// ::notice annotations when running in Actions); run -update to adopt
// them.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"toc/internal/bench"
)

// baseline is one committed BENCH_<experiment>.json.
type baseline struct {
	Experiment string `json:"experiment"`
	// Metric is the CSV column compared against Rows.
	Metric string `json:"metric"`
	// Direction is "higher" (throughput-like: regression = falling below
	// baseline) or "lower" (latency-like: regression = rising above).
	Direction string `json:"direction"`
	// Keys are the CSV columns whose "/"-joined values identify a row.
	Keys []string `json:"keys"`
	// Threshold overrides the command-line threshold when > 0.
	Threshold float64 `json:"threshold,omitempty"`
	// Notes documents the baseline's provenance (which machine produced
	// it, which rows were deliberately left out); benchdiff ignores it.
	Notes string `json:"notes,omitempty"`
	// Extras are additional gated columns of the same table; the gate
	// passes only when the primary Metric and every extra hold.
	Extras []extraMetric `json:"extras,omitempty"`
	// Rows maps each key to its committed metric value.
	Rows map[string]float64 `json:"rows"`
}

// extraMetric is a second gated column: same Keys as the owning
// baseline, its own direction and committed rows. netscale uses one to
// gate the compression ratio alongside the speedup.
type extraMetric struct {
	Metric    string             `json:"metric"`
	Direction string             `json:"direction"`
	Rows      map[string]float64 `json:"rows,omitempty"`
}

// defaultSpecs seeds -update for experiments without a committed
// baseline yet. Every regime gates on a *relative* column — a ratio
// against an in-run reference — so it transfers across runner
// generations where absolute epoch times do not. kernelspeed gates on
// vs_roofline: each decode kernel's single-core ns/nonzero as a multiple
// of the dense kernel's ns/element roofline, measured in the same
// process; lower is better, and a rise means the decode loops drifted
// away from hardware-limited.
var defaultSpecs = map[string]baseline{
	"spillscale":  {Metric: "speedup_vs_1shard", Direction: "higher", Keys: []string{"shards", "workers"}},
	"rightmul":    {Metric: "speedup", Direction: "higher", Keys: []string{"config", "workers"}},
	"asyncscale":  {Metric: "speedup_vs_sync", Direction: "higher", Keys: []string{"config", "staleness", "workers"}},
	"kernelspeed": {Metric: "vs_roofline", Direction: "lower", Keys: []string{"kernel", "variant"}},
	// netscale gates both halves of the codec tradeoff: epoch speedup at
	// each link speed must hold AND the bytes-on-wire ratio must not
	// creep up — a codec that regained throughput by compressing less
	// fails on the extra even when its speedup survives.
	"netscale": {Metric: "speedup_vs_dense", Direction: "higher", Keys: []string{"codec", "link_mbps"},
		Extras: []extraMetric{{Metric: "wire_ratio", Direction: "lower"}}},
}

// table is one experiment's rows as parsed from a tocbench CSV.
type table struct {
	columns []string
	rows    [][]string
}

// parseCSV reads tocbench's concatenated-table CSV format: each table
// starts with a header record ("experiment", columns...) and its data
// records carry the experiment id in the first field.
func parseCSV(r io.Reader) (map[string]*table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	tables := map[string]*table{}
	var columns []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return tables, nil
		}
		if err != nil {
			return nil, err
		}
		if len(rec) == 0 {
			continue
		}
		if rec[0] == "experiment" {
			columns = rec[1:]
			continue
		}
		if columns == nil {
			return nil, fmt.Errorf("data row before any header: %v", rec)
		}
		id := rec[0]
		t := tables[id]
		if t == nil {
			t = &table{columns: columns}
			tables[id] = t
		}
		t.rows = append(t.rows, rec[1:])
	}
}

// metricRows extracts the baseline's keyed primary-metric values from a
// table.
func metricRows(b *baseline, t *table) (map[string]float64, error) {
	return metricRowsFor(b.Metric, b.Keys, t)
}

// metricRowsFor extracts one keyed metric column from a table.
func metricRowsFor(metric string, keys []string, t *table) (map[string]float64, error) {
	col := map[string]int{}
	for i, c := range t.columns {
		col[c] = i
	}
	mi, ok := col[metric]
	if !ok {
		return nil, fmt.Errorf("metric column %q not in CSV columns %v", metric, t.columns)
	}
	out := map[string]float64{}
	for _, row := range t.rows {
		parts := make([]string, len(keys))
		for i, k := range keys {
			ki, ok := col[k]
			if !ok {
				return nil, fmt.Errorf("key column %q not in CSV columns %v", k, t.columns)
			}
			parts[i] = row[ki]
		}
		key := strings.Join(parts, "/")
		v, err := strconv.ParseFloat(row[mi], 64)
		if err != nil {
			return nil, fmt.Errorf("row %q: bad %s value %q", key, metric, row[mi])
		}
		out[key] = v
	}
	return out, nil
}

// compare reports the gate failures of current vs the baseline's
// primary metric, and separately the keys current has that the baseline
// does not.
func compare(b *baseline, current map[string]float64, threshold float64) (failures, newRows []string) {
	return compareMetric(b.Experiment, b.Metric, b.Direction, b.Rows, current,
		effectiveThreshold(b, threshold))
}

// compareMetric gates one metric column against its committed rows.
func compareMetric(exp, metric, direction string, baseRows, current map[string]float64, threshold float64) (failures, newRows []string) {
	keys := make([]string, 0, len(baseRows))
	for k := range baseRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := baseRows[k]
		got, ok := current[k]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s[%s]: baselined row missing from CSV", exp, k))
			continue
		}
		switch direction {
		case "lower":
			if got > base*(1+threshold) {
				failures = append(failures,
					fmt.Sprintf("%s[%s]: %s %.3f regressed >%.0f%% above baseline %.3f",
						exp, k, metric, got, threshold*100, base))
			}
		default: // "higher"
			if got < base*(1-threshold) {
				failures = append(failures,
					fmt.Sprintf("%s[%s]: %s %.3f regressed >%.0f%% below baseline %.3f",
						exp, k, metric, got, threshold*100, base))
			}
		}
	}
	cur := make([]string, 0, len(current))
	for k := range current {
		cur = append(cur, k)
	}
	sort.Strings(cur)
	for _, k := range cur {
		if _, ok := baseRows[k]; !ok {
			newRows = append(newRows, k)
		}
	}
	return failures, newRows
}

func baselinePath(dir, experiment string) string {
	return filepath.Join(dir, "BENCH_"+experiment+".json")
}

// staleBaselines returns the experiments among the baseline file names
// that the registry no longer knows — committed BENCH_*.json files whose
// regime was renamed or removed from internal/bench. names are base
// names; known is the registered-experiment set.
func staleBaselines(names []string, known map[string]bool) []string {
	var stale []string
	for _, name := range names {
		exp, ok := strings.CutPrefix(name, "BENCH_")
		if !ok {
			continue
		}
		exp, ok = strings.CutSuffix(exp, ".json")
		if !ok {
			continue
		}
		if !known[exp] {
			stale = append(stale, exp)
		}
	}
	sort.Strings(stale)
	return stale
}

// warnStaleBaselines is report-only: a stale baseline means the gate
// silently stopped covering a regime, which should be visible in CI logs
// without failing unrelated benchmark runs.
func warnStaleBaselines(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // the per-experiment load reports unreadable dirs
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	known := map[string]bool{}
	for _, id := range bench.IDs() {
		known[id] = true
	}
	for _, exp := range staleBaselines(names, known) {
		fmt.Printf("benchdiff: WARNING: %s names experiment %q, which internal/bench no longer registers; delete the baseline or restore the regime\n",
			baselinePath(dir, exp), exp)
	}
}

func loadBaseline(dir, experiment string) (*baseline, error) {
	data, err := os.ReadFile(baselinePath(dir, experiment))
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", baselinePath(dir, experiment), err)
	}
	if b.Experiment == "" {
		b.Experiment = experiment
	}
	return &b, nil
}

func writeBaseline(dir string, b *baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(baselinePath(dir, b.Experiment), append(data, '\n'), 0o644)
}

func main() {
	var (
		dir       = flag.String("baselines", ".", "directory holding BENCH_<experiment>.json files")
		threshold = flag.Float64("threshold", 0.2, "relative regression that fails the gate (0.2 = 20%)")
		update    = flag.Bool("update", false, "rewrite baselines from the CSVs instead of gating")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no CSV files given")
		os.Exit(2)
	}
	warnStaleBaselines(*dir)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	tables := map[string]*table{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		parsed, err := parseCSV(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %v", path, err))
		}
		for id, t := range parsed {
			if _, dup := tables[id]; dup {
				fail(fmt.Errorf("experiment %q appears in more than one CSV", id))
			}
			tables[id] = t
		}
	}

	ids := make([]string, 0, len(tables))
	for id := range tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var failures []string
	for _, id := range ids {
		b, err := loadBaseline(*dir, id)
		if os.IsNotExist(err) {
			if spec, ok := defaultSpecs[id]; *update && ok {
				spec.Experiment = id
				b, err = &spec, nil
			} else {
				fmt.Printf("benchdiff: %s: no baseline %s, skipping\n", id, baselinePath(*dir, id))
				continue
			}
		}
		if err != nil {
			fail(err)
		}
		current, err := metricRows(b, tables[id])
		if err != nil {
			fail(fmt.Errorf("%s: %v", id, err))
		}
		if *update {
			b.Rows = current
			for i := range b.Extras {
				ex := &b.Extras[i]
				cur, err := metricRowsFor(ex.Metric, b.Keys, tables[id])
				if err != nil {
					fail(fmt.Errorf("%s: %v", id, err))
				}
				ex.Rows = cur
			}
			if err := writeBaseline(*dir, b); err != nil {
				fail(err)
			}
			fmt.Printf("benchdiff: wrote %s (%d rows)\n", baselinePath(*dir, id), len(current))
			continue
		}
		expFails, newRows := compare(b, current, *threshold)
		for i := range b.Extras {
			ex := &b.Extras[i]
			cur, err := metricRowsFor(ex.Metric, b.Keys, tables[id])
			if err != nil {
				fail(fmt.Errorf("%s: %v", id, err))
			}
			efails, _ := compareMetric(id, ex.Metric, ex.Direction, ex.Rows, cur,
				effectiveThreshold(b, *threshold))
			for _, f := range efails {
				// The primary metric already reports dropped sweep rows;
				// extras only add genuine metric regressions.
				if !strings.HasSuffix(f, "missing from CSV") {
					expFails = append(expFails, f)
				}
			}
		}
		failures = append(failures, expFails...)
		for _, k := range newRows {
			notice(fmt.Sprintf("%s[%s]: not in baseline (run -update to adopt)", id, k))
		}
		if len(expFails) == 0 {
			gated := b.Metric
			for _, ex := range b.Extras {
				gated += "+" + ex.Metric
			}
			fmt.Printf("benchdiff: %s: %d rows within %.0f%% of baseline (%s)\n",
				id, len(b.Rows), effectiveThreshold(b, *threshold)*100, gated)
		}
	}
	if *update {
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// notice prints an informational line — as a ::notice workflow
// annotation under GitHub Actions (surfaced on the run summary without
// failing anything), as a plain line elsewhere.
func notice(msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::notice title=benchdiff::%s\n", msg)
		return
	}
	fmt.Printf("benchdiff: %s\n", msg)
}

func effectiveThreshold(b *baseline, flagThreshold float64) float64 {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return flagThreshold
}
