// Command benchdiff is the CI benchmark-regression gate: it compares the
// CSV tables cmd/tocbench emits (spillscale, rightmul, asyncscale, ...)
// against committed BENCH_<experiment>.json baselines and fails when any
// row's throughput metric regresses beyond the threshold.
//
// Usage:
//
//	benchdiff -baselines . spillscale.csv rightmul.csv asyncscale.csv
//	benchdiff -baselines . -update asyncscale.csv   # (re)write baselines
//
// Baselines pin the *relative* metrics (the speedup columns), which
// transfer across runners far better than absolute milliseconds: a CSV
// row regresses when its speedup falls more than threshold (default 20%)
// below the committed value (or rises above it, for lower-is-better
// metrics). Rows present in the baseline but missing from the CSVs fail
// the gate too — a silently dropped sweep point is a regression in
// coverage. New rows not yet in the baseline are reported but do not
// fail; run -update to adopt them.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"toc/internal/bench"
)

// baseline is one committed BENCH_<experiment>.json.
type baseline struct {
	Experiment string `json:"experiment"`
	// Metric is the CSV column compared against Rows.
	Metric string `json:"metric"`
	// Direction is "higher" (throughput-like: regression = falling below
	// baseline) or "lower" (latency-like: regression = rising above).
	Direction string `json:"direction"`
	// Keys are the CSV columns whose "/"-joined values identify a row.
	Keys []string `json:"keys"`
	// Threshold overrides the command-line threshold when > 0.
	Threshold float64 `json:"threshold,omitempty"`
	// Notes documents the baseline's provenance (which machine produced
	// it, which rows were deliberately left out); benchdiff ignores it.
	Notes string `json:"notes,omitempty"`
	// Rows maps each key to its committed metric value.
	Rows map[string]float64 `json:"rows"`
}

// defaultSpecs seeds -update for experiments without a committed
// baseline yet. Every regime gates on a *relative* column — a ratio
// against an in-run reference — so it transfers across runner
// generations where absolute epoch times do not. kernelspeed gates on
// vs_roofline: each decode kernel's single-core ns/nonzero as a multiple
// of the dense kernel's ns/element roofline, measured in the same
// process; lower is better, and a rise means the decode loops drifted
// away from hardware-limited.
var defaultSpecs = map[string]baseline{
	"spillscale":  {Metric: "speedup_vs_1shard", Direction: "higher", Keys: []string{"shards", "workers"}},
	"rightmul":    {Metric: "speedup", Direction: "higher", Keys: []string{"config", "workers"}},
	"asyncscale":  {Metric: "speedup_vs_sync", Direction: "higher", Keys: []string{"config", "staleness", "workers"}},
	"kernelspeed": {Metric: "vs_roofline", Direction: "lower", Keys: []string{"kernel", "variant"}},
}

// table is one experiment's rows as parsed from a tocbench CSV.
type table struct {
	columns []string
	rows    [][]string
}

// parseCSV reads tocbench's concatenated-table CSV format: each table
// starts with a header record ("experiment", columns...) and its data
// records carry the experiment id in the first field.
func parseCSV(r io.Reader) (map[string]*table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	tables := map[string]*table{}
	var columns []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return tables, nil
		}
		if err != nil {
			return nil, err
		}
		if len(rec) == 0 {
			continue
		}
		if rec[0] == "experiment" {
			columns = rec[1:]
			continue
		}
		if columns == nil {
			return nil, fmt.Errorf("data row before any header: %v", rec)
		}
		id := rec[0]
		t := tables[id]
		if t == nil {
			t = &table{columns: columns}
			tables[id] = t
		}
		t.rows = append(t.rows, rec[1:])
	}
}

// metricRows extracts the baseline's keyed metric values from a table.
func metricRows(b *baseline, t *table) (map[string]float64, error) {
	col := map[string]int{}
	for i, c := range t.columns {
		col[c] = i
	}
	mi, ok := col[b.Metric]
	if !ok {
		return nil, fmt.Errorf("metric column %q not in CSV columns %v", b.Metric, t.columns)
	}
	out := map[string]float64{}
	for _, row := range t.rows {
		parts := make([]string, len(b.Keys))
		for i, k := range b.Keys {
			ki, ok := col[k]
			if !ok {
				return nil, fmt.Errorf("key column %q not in CSV columns %v", k, t.columns)
			}
			parts[i] = row[ki]
		}
		key := strings.Join(parts, "/")
		v, err := strconv.ParseFloat(row[mi], 64)
		if err != nil {
			return nil, fmt.Errorf("row %q: bad %s value %q", key, b.Metric, row[mi])
		}
		out[key] = v
	}
	return out, nil
}

// compare reports the gate failures of current vs the baseline, and
// separately the keys current has that the baseline does not.
func compare(b *baseline, current map[string]float64, threshold float64) (failures, newRows []string) {
	if b.Threshold > 0 {
		threshold = b.Threshold
	}
	keys := make([]string, 0, len(b.Rows))
	for k := range b.Rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := b.Rows[k]
		got, ok := current[k]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s[%s]: baselined row missing from CSV", b.Experiment, k))
			continue
		}
		switch b.Direction {
		case "lower":
			if got > base*(1+threshold) {
				failures = append(failures,
					fmt.Sprintf("%s[%s]: %s %.3f regressed >%.0f%% above baseline %.3f",
						b.Experiment, k, b.Metric, got, threshold*100, base))
			}
		default: // "higher"
			if got < base*(1-threshold) {
				failures = append(failures,
					fmt.Sprintf("%s[%s]: %s %.3f regressed >%.0f%% below baseline %.3f",
						b.Experiment, k, b.Metric, got, threshold*100, base))
			}
		}
	}
	cur := make([]string, 0, len(current))
	for k := range current {
		cur = append(cur, k)
	}
	sort.Strings(cur)
	for _, k := range cur {
		if _, ok := b.Rows[k]; !ok {
			newRows = append(newRows, k)
		}
	}
	return failures, newRows
}

func baselinePath(dir, experiment string) string {
	return filepath.Join(dir, "BENCH_"+experiment+".json")
}

// staleBaselines returns the experiments among the baseline file names
// that the registry no longer knows — committed BENCH_*.json files whose
// regime was renamed or removed from internal/bench. names are base
// names; known is the registered-experiment set.
func staleBaselines(names []string, known map[string]bool) []string {
	var stale []string
	for _, name := range names {
		exp, ok := strings.CutPrefix(name, "BENCH_")
		if !ok {
			continue
		}
		exp, ok = strings.CutSuffix(exp, ".json")
		if !ok {
			continue
		}
		if !known[exp] {
			stale = append(stale, exp)
		}
	}
	sort.Strings(stale)
	return stale
}

// warnStaleBaselines is report-only: a stale baseline means the gate
// silently stopped covering a regime, which should be visible in CI logs
// without failing unrelated benchmark runs.
func warnStaleBaselines(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // the per-experiment load reports unreadable dirs
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	known := map[string]bool{}
	for _, id := range bench.IDs() {
		known[id] = true
	}
	for _, exp := range staleBaselines(names, known) {
		fmt.Printf("benchdiff: WARNING: %s names experiment %q, which internal/bench no longer registers; delete the baseline or restore the regime\n",
			baselinePath(dir, exp), exp)
	}
}

func loadBaseline(dir, experiment string) (*baseline, error) {
	data, err := os.ReadFile(baselinePath(dir, experiment))
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", baselinePath(dir, experiment), err)
	}
	if b.Experiment == "" {
		b.Experiment = experiment
	}
	return &b, nil
}

func writeBaseline(dir string, b *baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(baselinePath(dir, b.Experiment), append(data, '\n'), 0o644)
}

func main() {
	var (
		dir       = flag.String("baselines", ".", "directory holding BENCH_<experiment>.json files")
		threshold = flag.Float64("threshold", 0.2, "relative regression that fails the gate (0.2 = 20%)")
		update    = flag.Bool("update", false, "rewrite baselines from the CSVs instead of gating")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no CSV files given")
		os.Exit(2)
	}
	warnStaleBaselines(*dir)

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	tables := map[string]*table{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		parsed, err := parseCSV(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %v", path, err))
		}
		for id, t := range parsed {
			if _, dup := tables[id]; dup {
				fail(fmt.Errorf("experiment %q appears in more than one CSV", id))
			}
			tables[id] = t
		}
	}

	ids := make([]string, 0, len(tables))
	for id := range tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var failures []string
	for _, id := range ids {
		b, err := loadBaseline(*dir, id)
		if os.IsNotExist(err) {
			if spec, ok := defaultSpecs[id]; *update && ok {
				spec.Experiment = id
				b, err = &spec, nil
			} else {
				fmt.Printf("benchdiff: %s: no baseline %s, skipping\n", id, baselinePath(*dir, id))
				continue
			}
		}
		if err != nil {
			fail(err)
		}
		current, err := metricRows(b, tables[id])
		if err != nil {
			fail(fmt.Errorf("%s: %v", id, err))
		}
		if *update {
			b.Rows = current
			if err := writeBaseline(*dir, b); err != nil {
				fail(err)
			}
			fmt.Printf("benchdiff: wrote %s (%d rows)\n", baselinePath(*dir, id), len(current))
			continue
		}
		fails, newRows := compare(b, current, *threshold)
		failures = append(failures, fails...)
		for _, k := range newRows {
			fmt.Printf("benchdiff: %s[%s]: not in baseline (run -update to adopt)\n", id, k)
		}
		if len(fails) == 0 {
			fmt.Printf("benchdiff: %s: %d rows within %.0f%% of baseline\n",
				id, len(b.Rows), effectiveThreshold(b, *threshold)*100)
		}
	}
	if *update {
		return
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

func effectiveThreshold(b *baseline, flagThreshold float64) float64 {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return flagThreshold
}
