package main

import (
	"strings"
	"testing"

	"toc/internal/bench"
)

const sampleCSV = `experiment,shards,workers,epoch_ms,speedup_vs_1shard
spillscale,1,8,100,1.00
spillscale,4,8,38,2.63
experiment,config,staleness,workers,epoch_ms,speedup_vs_sync
asyncscale,sync,-,8,25,1.00
asyncscale,async,8,8,15,1.64
`

func parsed(t *testing.T) map[string]*table {
	t.Helper()
	tables, err := parseCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// The concatenated-table format must split into per-experiment tables,
// each keeping the header active when its rows appeared.
func TestParseCSVConcatenatedTables(t *testing.T) {
	tables := parsed(t)
	if len(tables) != 2 {
		t.Fatalf("parsed %d tables, want 2", len(tables))
	}
	if got := tables["spillscale"]; len(got.rows) != 2 || got.columns[3] != "speedup_vs_1shard" {
		t.Errorf("spillscale table malformed: %+v", got)
	}
	if got := tables["asyncscale"]; len(got.rows) != 2 || got.columns[4] != "speedup_vs_sync" {
		t.Errorf("asyncscale table malformed: %+v", got)
	}
	if _, err := parseCSV(strings.NewReader("spillscale,1,8\n")); err == nil {
		t.Error("data row before any header should be an error")
	}
}

func spillBaseline(rows map[string]float64) *baseline {
	return &baseline{
		Experiment: "spillscale",
		Metric:     "speedup_vs_1shard",
		Direction:  "higher",
		Keys:       []string{"shards", "workers"},
		Rows:       rows,
	}
}

// The gate trips on a >threshold drop of a higher-is-better metric, on a
// baselined row missing from the CSV — and on nothing else.
func TestCompareGate(t *testing.T) {
	tables := parsed(t)
	b := spillBaseline(map[string]float64{"1/8": 1.0, "4/8": 2.6})
	current, err := metricRows(b, tables["spillscale"])
	if err != nil {
		t.Fatal(err)
	}
	if fails, _ := compare(b, current, 0.2); len(fails) != 0 {
		t.Errorf("within-threshold run failed the gate: %v", fails)
	}

	// 2.63 measured vs 3.4 committed is a 23% drop: regression.
	b.Rows["4/8"] = 3.4
	fails, _ := compare(b, current, 0.2)
	if len(fails) != 1 || !strings.Contains(fails[0], "4/8") {
		t.Errorf("23%% drop not caught: %v", fails)
	}
	// A per-baseline threshold override loosens the same comparison.
	b.Threshold = 0.5
	if fails, _ := compare(b, current, 0.2); len(fails) != 0 {
		t.Errorf("50%% baseline threshold still failed: %v", fails)
	}
	b.Threshold = 0

	// A dropped sweep point is a coverage regression.
	b.Rows = map[string]float64{"1/8": 1.0, "4/8": 2.6, "16/8": 4.0}
	fails, _ = compare(b, current, 0.2)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Errorf("missing row not caught: %v", fails)
	}

	// Rows the baseline has not adopted yet are reported, never failed.
	b.Rows = map[string]float64{"1/8": 1.0}
	fails, newRows := compare(b, current, 0.2)
	if len(fails) != 0 {
		t.Errorf("new row failed the gate: %v", fails)
	}
	if len(newRows) != 1 || newRows[0] != "4/8" {
		t.Errorf("new rows = %v, want [4/8]", newRows)
	}
}

// Lower-is-better metrics regress upward.
func TestCompareLowerIsBetter(t *testing.T) {
	tables := parsed(t)
	b := &baseline{
		Experiment: "asyncscale",
		Metric:     "epoch_ms",
		Direction:  "lower",
		Keys:       []string{"config", "staleness", "workers"},
		Rows:       map[string]float64{"sync/-/8": 25, "async/8/8": 10},
	}
	current, err := metricRows(b, tables["asyncscale"])
	if err != nil {
		t.Fatal(err)
	}
	// 15ms vs 10ms committed = 50% slower: regression; 25 vs 25: fine.
	fails, _ := compare(b, current, 0.2)
	if len(fails) != 1 || !strings.Contains(fails[0], "async/8/8") {
		t.Errorf("latency regression not caught: %v", fails)
	}
}

// An extra metric gates independently of the primary: a run whose
// speedup holds but whose wire ratio crept up must still fail.
func TestCompareExtraMetric(t *testing.T) {
	csv := `experiment,codec,link_mbps,epoch_ms,speedup_vs_dense,wire_ratio
netscale,dense,25,500,1.00,1.0002
netscale,topk:0.01,25,210,2.38,0.0230
`
	tables, err := parseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	b := &baseline{
		Experiment: "netscale",
		Metric:     "speedup_vs_dense",
		Direction:  "higher",
		Keys:       []string{"codec", "link_mbps"},
		Extras:     []extraMetric{{Metric: "wire_ratio", Direction: "lower", Rows: map[string]float64{"dense/25": 1.0002, "topk:0.01/25": 0.0153}}},
		Rows:       map[string]float64{"dense/25": 1.0, "topk:0.01/25": 2.34},
	}
	current, err := metricRows(b, tables["netscale"])
	if err != nil {
		t.Fatal(err)
	}
	if fails, _ := compare(b, current, 0.2); len(fails) != 0 {
		t.Errorf("primary metric within threshold failed: %v", fails)
	}
	ex := b.Extras[0]
	exCur, err := metricRowsFor(ex.Metric, b.Keys, tables["netscale"])
	if err != nil {
		t.Fatal(err)
	}
	// 0.0230 measured vs 0.0153 committed is +50% wire bytes: regression
	// on the lower-is-better extra even though the speedup held.
	fails, _ := compareMetric(b.Experiment, ex.Metric, ex.Direction, ex.Rows, exCur, 0.2)
	if len(fails) != 1 || !strings.Contains(fails[0], "wire_ratio") {
		t.Errorf("wire-ratio regression not caught: %v", fails)
	}
}

// Bad metric or key columns surface as errors, not silent passes.
func TestMetricRowsErrors(t *testing.T) {
	tables := parsed(t)
	b := spillBaseline(nil)
	b.Metric = "nope"
	if _, err := metricRows(b, tables["spillscale"]); err == nil {
		t.Error("unknown metric column should be an error")
	}
	b = spillBaseline(nil)
	b.Keys = []string{"nope"}
	if _, err := metricRows(b, tables["spillscale"]); err == nil {
		t.Error("unknown key column should be an error")
	}
}

// A committed baseline whose regime left the registry is reported, and
// non-baseline files are ignored.
func TestStaleBaselines(t *testing.T) {
	known := map[string]bool{"spillscale": true, "rightmul": true}
	names := []string{
		"BENCH_spillscale.json", // known: fine
		"BENCH_decodecache.json",
		"BENCH_asyncscale.json",
		"README.md",        // not a baseline
		"BENCH_weird.yaml", // wrong extension
	}
	got := staleBaselines(names, known)
	want := []string{"asyncscale", "decodecache"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("staleBaselines = %v, want %v", got, want)
	}
}

// Every experiment benchdiff seeds a default spec for must exist in the
// registry — otherwise the spec itself is the stale name.
func TestDefaultSpecsMatchRegistry(t *testing.T) {
	known := map[string]bool{}
	for _, id := range bench.IDs() {
		known[id] = true
	}
	if len(known) == 0 {
		t.Fatal("internal/bench registers no experiments")
	}
	for id := range defaultSpecs {
		if !known[id] {
			t.Errorf("defaultSpecs names %q, which internal/bench does not register", id)
		}
	}
}
