package toc

import "testing"

// Facade smoke test: the public API compresses, operates, serializes and
// trains end to end.
func TestFacadeEndToEnd(t *testing.T) {
	a := NewDenseFromRows([][]float64{
		{1.1, 2, 3, 1.4},
		{1.1, 2, 3, 0},
		{0, 1.1, 3, 1.4},
		{1.1, 2, 0, 0},
	})
	b := Compress(a)
	if b.CompressionRatio() <= 1 {
		t.Fatalf("ratio = %v", b.CompressionRatio())
	}
	if got := b.MulVec([]float64{1, 0, 0, 0}); got[0] != 1.1 {
		t.Fatalf("MulVec = %v", got)
	}
	back, err := Deserialize(b.Serialize())
	if err != nil || !back.Decode().Equal(a) {
		t.Fatalf("round trip: %v", err)
	}
	for _, m := range PaperMethods() {
		if !Encode(m, a).Decode().Equal(a) {
			t.Fatalf("%s not lossless", m)
		}
	}
	d, err := GenerateDataset("census", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.ShuffleOnce(2)
	model, err := NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := NewMemorySource(d, 50, "TOC")
	res := Train(model, src, 4, 0.5, nil)
	if res.EpochLoss[3] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}
	store, err := NewStore(t.TempDir(), "TOC", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	x, y := d.Batch(0, 50)
	if err := store.Add(x, y); err != nil {
		t.Fatal(err)
	}
	c, _ := store.Batch(0)
	if !c.Decode().Equal(x) {
		t.Fatal("store round trip mismatch")
	}
	if len(DatasetNames()) != 6 || len(Methods()) < 8 {
		t.Fatal("registry incomplete")
	}
	if _, ok := GetCodec("TOC"); !ok {
		t.Fatal("TOC codec missing")
	}
	// The parallel-kernel surface: TOC shards its kernels, every model
	// takes a kernel-worker knob, and neither changes any result.
	tc := Encode("TOC", a)
	po, ok := tc.(ParallelOps)
	if !ok {
		t.Fatal("TOC should implement ParallelOps")
	}
	seq := tc.VecMul([]float64{1, -2, 3, 0.5})
	par := po.VecMulParallel([]float64{1, -2, 3, 0.5}, 4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("VecMulParallel diverges at %d: %v vs %v", i, par[i], seq[i])
		}
	}
	kp, ok := model.(KernelParallel)
	if !ok {
		t.Fatal("NewModel models should implement KernelParallel")
	}
	kp.SetKernelWorkers(4)
	if e := EvaluateError(model, src); e < 0 || e > 1 {
		t.Fatalf("kernel-parallel evaluation error rate %v", e)
	}
	// The sharded-spill surface: store options, disk models, eviction
	// policies and the byte-bounded prefetch window, all via the facade.
	if m, err := ParseBandwidthModel("shared-bucket"); err != nil || m != SharedBucket {
		t.Fatalf("ParseBandwidthModel: %v, %v", m, err)
	}
	if p, err := NewEvictionPolicy("access-order"); err != nil || p.Name() != "access-order" {
		t.Fatalf("NewEvictionPolicy: %v", err)
	}
	sharded, err := NewStore(t.TempDir(), "TOC", 1,
		WithShards(2), WithBandwidthModel(SharedBucket),
		WithReadBandwidth(0), WithEviction(LargestFirstPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if sharded.Shards() != 2 {
		t.Fatalf("Shards() = %d", sharded.Shards())
	}
	for i := 0; i < 4; i++ {
		bx, by := d.Batch(i, 50)
		if err := sharded.Add(bx, by); err != nil {
			t.Fatal(err)
		}
	}
	if sharded.EvictionPolicyName() != "largest-first" {
		t.Fatalf("EvictionPolicyName() = %s", sharded.EvictionPolicyName())
	}
	pf := NewPrefetcher(sharded, 3, 2, WithPrefetchBytes(1<<20))
	defer pf.Close()
	for i := 0; i < 4; i++ {
		bx, _ := d.Batch(i, 50)
		c, _ := pf.Batch(i)
		if !c.Decode().Equal(bx) {
			t.Fatalf("sharded store batch %d round trip mismatch", i)
		}
	}
	// The async surface: every NewModel model snapshots, TrainAsync runs
	// the bounded-staleness engine, and the staleness bound holds.
	am, err := NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := am.(SnapshotModel); !ok {
		t.Fatal("NewModel models should implement SnapshotModel")
	}
	ares, err := TrainAsync(am, src, 4, 0.5, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ares.EpochLoss) != 4 {
		t.Fatalf("async epochs = %d", len(ares.EpochLoss))
	}
	aeng := NewAsyncEngine(AsyncConfig{Workers: 4, Staleness: 2})
	am2, err := NewModel("lr", d.X.Cols(), d.Classes, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aeng.Train(am2.(SnapshotModel), src, 2, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if st := aeng.Stats(); st.MaxStaleness > 2 || st.Updates != int64(2*src.NumBatches()) {
		t.Fatalf("async stats out of contract: %+v", st)
	}
}
